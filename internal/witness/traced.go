package witness

import (
	"fmt"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/trace"
)

// SolveTraced is Solve with instrumentation: the interpreter records an
// indirect-dispatch event per instruction, a conditional branch per
// linear-combination term (the loop over sparse terms is data-dependent),
// and the gather pattern of witness-vector reads. These are exactly the
// behaviours that make the witness stage control-flow intensive and give
// it the highest LLC MPKI in the paper's analysis.
func SolveTraced(sys *r1cs.System, prog *Program, assign Assignment, rec *trace.Recorder) (*Witness, error) {
	if rec == nil {
		return Solve(sys, prog, assign)
	}
	fr := sys.Fr
	prevCount := fr.Count
	fr.Count = &rec.Ops
	defer func() { fr.Count = prevCount }()

	var w *Witness
	var err error
	var termTouches int64

	// Witness solving is a dependency chain: each instruction may read
	// wires produced by earlier ones. Only small independent runs exist,
	// so the phase grain is low.
	rec.PhaseRun("interp/solve", 2, func() {
		w = nil
		wv := make([]ff.Element, sys.NumVariables())
		fr.One(&wv[0])

		for i, name := range sys.PublicNames {
			if sys.PublicIsOutput[i] {
				continue
			}
			v, ok := assign[name]
			if !ok {
				err = fmt.Errorf("witness: missing input %q", name)
				return
			}
			wv[1+i] = v
		}
		if err == nil {
			for i, name := range sys.PrivateNames {
				v, ok := assign[name]
				if !ok {
					err = fmt.Errorf("witness: missing input %q", name)
					return
				}
				wv[1+sys.NumPublic+i] = v
			}
		}

		for i := range prog.Instructions {
			ins := &prog.Instructions[i]
			rec.Dispatch(1) // opcode dispatch: indirect branch
			nTerms := int64(len(ins.L) + len(ins.R))
			rec.Branch(nTerms) // data-dependent sparse-term loop
			termTouches += nTerms
			switch ins.Op {
			case OpMul:
				l := sys.EvalLC(ins.L, wv)
				r := sys.EvalLC(ins.R, wv)
				fr.Mul(&wv[ins.Out], &l, &r)
			case OpLinear:
				wv[ins.Out] = sys.EvalLC(ins.L, wv)
			case OpInverse:
				l := sys.EvalLC(ins.L, wv)
				if fr.IsZero(&l) {
					err = fmt.Errorf("witness: instruction %d inverts zero", i)
					return
				}
				fr.Inverse(&wv[ins.Out], &l)
			case OpBit:
				l := sys.EvalLC(ins.L, wv)
				bit := fr.BigInt(&l).Bit(ins.Aux)
				fr.SetUint64(&wv[ins.Out], uint64(bit))
			default:
				err = fmt.Errorf("witness: unknown opcode %d at instruction %d", ins.Op, i)
				return
			}
		}

		if bad, ok := sys.IsSatisfied(wv); !ok {
			err = fmt.Errorf("witness: constraint %d not satisfied", bad)
			return
		}
		pub := make([]ff.Element, 1+sys.NumPublic)
		copy(pub, wv[:1+sys.NumPublic])
		w = &Witness{Full: wv, Public: pub}
	})
	if err != nil {
		return nil, err
	}

	nv := int64(sys.NumVariables())
	nIns := int64(len(prog.Instructions))
	// The snarkjs witness calculator interprets WASM: every solved wire
	// costs a few hundred interpreted instructions beyond the field
	// arithmetic itself.
	rec.InstrBulk(nIns*120, nIns*90, nIns*150)
	// Instruction stream: a sequential walk (each instruction record holds
	// its opcode plus pointers to its sparse LCs).
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "prog.code",
		RegionBytes: nIns * 96, ElemSize: 96, Touches: nIns})
	// Sparse-term operand fetches: dependent pointer-style gathers into
	// the witness vector.
	rec.Access(trace.Access{Kind: trace.PointerChase, Region: "witness",
		RegionBytes: nv * 32, ElemSize: 32, Touches: 2 * termTouches})
	// Solved wires written once each; the satisfaction check re-reads the
	// matrices and witness.
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "witness",
		RegionBytes: nv * 32, ElemSize: 32, Touches: nIns, Write: true})
	st := sys.Stats()
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "r1cs.terms",
		RegionBytes: int64(st.NonZeroTerms) * 40, ElemSize: 40, Touches: int64(st.NonZeroTerms)})
	rec.Access(trace.Access{Kind: trace.PointerChase, Region: "witness",
		RegionBytes: nv * 32, ElemSize: 32, Touches: int64(st.NonZeroTerms)})
	return w, nil
}
