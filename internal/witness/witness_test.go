package witness_test

import (
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/ff"
	"zkperf/internal/trace"
	"zkperf/internal/witness"
)

// The witness package is exercised extensively through the circuit tests;
// these tests focus on the traced interpreter and its parity with the
// untraced path.

func compile(t *testing.T, src string) (*ff.Field, func(a witness.Assignment, rec *trace.Recorder) (*witness.Witness, error)) {
	t.Helper()
	fr := ff.NewBN254Fr()
	sys, prog, err := circuit.CompileSource(fr, src)
	if err != nil {
		t.Fatal(err)
	}
	return fr, func(a witness.Assignment, rec *trace.Recorder) (*witness.Witness, error) {
		return witness.SolveTraced(sys, prog, a, rec)
	}
}

func TestTracedMatchesUntraced(t *testing.T) {
	fr, solve := compile(t, circuit.ExponentiateSource(32))
	var x ff.Element
	fr.SetUint64(&x, 5)
	plain, err := solve(witness.Assignment{"x": x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	traced, err := solve(witness.Assignment{"x": x}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Full) != len(traced.Full) {
		t.Fatal("witness lengths differ")
	}
	for i := range plain.Full {
		if !fr.Equal(&plain.Full[i], &traced.Full[i]) {
			t.Fatalf("witness differs at wire %d", i)
		}
	}
}

func TestTracedRecordsInterpreterEvents(t *testing.T) {
	fr, solve := compile(t, circuit.ExponentiateSource(64))
	var x ff.Element
	fr.SetUint64(&x, 2)
	rec := trace.NewRecorder()
	if _, err := solve(witness.Assignment{"x": x}, rec); err != nil {
		t.Fatal(err)
	}
	// One dispatch per instruction (63 muls + 1 output bind = 64).
	if rec.Dispatches != 64 {
		t.Errorf("dispatches = %d, want 64", rec.Dispatches)
	}
	if rec.Branches == 0 {
		t.Error("no sparse-term branches recorded")
	}
	if rec.Ops.Mul == 0 {
		t.Error("no field multiplications recorded")
	}
	if len(rec.Accesses) == 0 {
		t.Error("no access patterns recorded")
	}
	if len(rec.Phases) == 0 {
		t.Error("no phases recorded")
	}
	// The interpreter gathers from the witness region.
	foundChase := false
	for _, a := range rec.Accesses {
		if a.Region == "witness" && a.Kind == trace.PointerChase {
			foundChase = true
		}
	}
	if !foundChase {
		t.Error("witness gather pattern missing")
	}
}

func TestTracedErrors(t *testing.T) {
	fr, solve := compile(t, circuit.ExponentiateSource(8))
	rec := trace.NewRecorder()
	if _, err := solve(witness.Assignment{}, rec); err == nil {
		t.Error("missing input not reported under tracing")
	}
	// Inverse of zero under tracing.
	fr2 := ff.NewBN254Fr()
	b := circuit.NewBuilder(fr2)
	y := b.PublicOutput("y")
	x := b.PrivateInput("x")
	inv := b.Inverse(x)
	if err := b.BindOutput(y, inv); err != nil {
		t.Fatal(err)
	}
	sys, prog := b.Compile()
	var zero ff.Element
	if _, err := witness.SolveTraced(sys, prog, witness.Assignment{"x": zero}, trace.NewRecorder()); err == nil {
		t.Error("zero inverse not reported under tracing")
	}
	_ = fr
}

func TestTracedBitDecomposition(t *testing.T) {
	fr := ff.NewBN254Fr()
	sys, prog, err := circuit.RangeCheckCircuit(fr, 8)
	if err != nil {
		t.Fatal(err)
	}
	var v, slack, max ff.Element
	fr.SetUint64(&v, 100)
	fr.SetUint64(&slack, 28)
	fr.SetUint64(&max, 128)
	rec := trace.NewRecorder()
	w, err := witness.SolveTraced(sys, prog,
		witness.Assignment{"v": v, "slack": slack, "max": max}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("nil witness")
	}
}
