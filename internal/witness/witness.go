// Package witness implements the witness stage of the zk-SNARK workflow:
// given public and private input assignments, it executes the solver
// program emitted by the circuit compiler to fill in every internal wire,
// producing witnessFull (for the prover) and witnessPublic (for the
// verifier).
//
// The solver is a small interpreter over linear-combination instructions —
// deliberately mirroring how circom's generated WASM walks a compiled
// program to solve signals one at a time. That interpretive structure is
// exactly what makes the witness stage control-flow intensive in the
// paper's instruction-mix analysis.
package witness

import (
	"fmt"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
)

// OpKind is the operation an instruction applies to its operands.
type OpKind uint8

const (
	// OpMul computes out = ⟨L,w⟩ · ⟨R,w⟩.
	OpMul OpKind = iota
	// OpLinear computes out = ⟨L,w⟩ (R unused).
	OpLinear
	// OpInverse computes out = ⟨L,w⟩⁻¹ (a solver hint; the corresponding
	// constraint out·⟨L,w⟩ = 1 is checked separately).
	OpInverse
	// OpBit computes out = bit Aux of the canonical value of ⟨L,w⟩ — the
	// bit-decomposition hint used by range checks. The accompanying
	// boolean and recomposition constraints are added by the builder.
	OpBit
)

// Instruction solves one wire.
type Instruction struct {
	Op   OpKind
	L, R r1cs.LinComb
	Out  r1cs.Variable
	Aux  int // OpBit: which bit to extract
}

// Program is the ordered wire-solving schedule for a circuit. Instructions
// only reference wires solved by earlier instructions or inputs.
type Program struct {
	Instructions []Instruction
}

// Assignment maps input names to field-element values.
type Assignment map[string]ff.Element

// Witness holds the solved wire values.
type Witness struct {
	// Full is the complete vector (constant wire, public, private,
	// internal) used by the proving stage.
	Full []ff.Element
	// Public is the prefix [1, public wires] used by the verifying stage.
	Public []ff.Element
}

// Solve executes the program against the constraint system's wire layout,
// producing the full and public witness vectors. It fails if an input is
// missing from the assignment or if the solved witness does not satisfy
// the system.
func Solve(sys *r1cs.System, prog *Program, assign Assignment) (*Witness, error) {
	fr := sys.Fr
	w := make([]ff.Element, sys.NumVariables())
	fr.One(&w[0])

	for i, name := range sys.PublicNames {
		if sys.PublicIsOutput[i] {
			continue // solved by the program, not bound from inputs
		}
		v, ok := assign[name]
		if !ok {
			return nil, fmt.Errorf("witness: missing input %q", name)
		}
		w[1+i] = v
	}
	for i, name := range sys.PrivateNames {
		v, ok := assign[name]
		if !ok {
			return nil, fmt.Errorf("witness: missing input %q", name)
		}
		w[1+sys.NumPublic+i] = v
	}

	for i := range prog.Instructions {
		ins := &prog.Instructions[i]
		switch ins.Op {
		case OpMul:
			l := sys.EvalLC(ins.L, w)
			r := sys.EvalLC(ins.R, w)
			fr.Mul(&w[ins.Out], &l, &r)
		case OpLinear:
			w[ins.Out] = sys.EvalLC(ins.L, w)
		case OpInverse:
			l := sys.EvalLC(ins.L, w)
			if fr.IsZero(&l) {
				return nil, fmt.Errorf("witness: instruction %d inverts zero", i)
			}
			fr.Inverse(&w[ins.Out], &l)
		case OpBit:
			l := sys.EvalLC(ins.L, w)
			bit := fr.BigInt(&l).Bit(ins.Aux)
			fr.SetUint64(&w[ins.Out], uint64(bit))
		default:
			return nil, fmt.Errorf("witness: unknown opcode %d at instruction %d", ins.Op, i)
		}
	}

	if bad, ok := sys.IsSatisfied(w); !ok {
		return nil, fmt.Errorf("witness: constraint %d not satisfied", bad)
	}

	pub := make([]ff.Element, 1+sys.NumPublic)
	copy(pub, w[:1+sys.NumPublic])
	return &Witness{Full: w, Public: pub}, nil
}

// NumWires returns how many wires the program solves.
func (p *Program) NumWires() int { return len(p.Instructions) }
