package witness

import (
	"encoding/binary"
	"fmt"
	"io"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
)

// Program serialization: the compile stage persists the solver program
// alongside the R1CS (circom's generated witness-calculator plays this
// role), so the witness stage can run from files.

const progMagic = uint32(0x5A575047) // "ZWPG"

// WriteProgram serializes a solver program.
func WriteProgram(w io.Writer, fr *ff.Field, p *Program) error {
	writeU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := writeU32(progMagic); err != nil {
		return err
	}
	if err := writeU32(uint32(len(p.Instructions))); err != nil {
		return err
	}
	writeLC := func(lc r1cs.LinComb) error {
		if err := writeU32(uint32(len(lc))); err != nil {
			return err
		}
		for i := range lc {
			if err := writeU32(uint32(lc[i].Var)); err != nil {
				return err
			}
			if _, err := w.Write(fr.Bytes(&lc[i].Coeff)); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range p.Instructions {
		ins := &p.Instructions[i]
		if err := writeU32(uint32(ins.Op)); err != nil {
			return err
		}
		if err := writeU32(uint32(ins.Out)); err != nil {
			return err
		}
		if err := writeU32(uint32(ins.Aux)); err != nil {
			return err
		}
		if err := writeLC(ins.L); err != nil {
			return err
		}
		if err := writeLC(ins.R); err != nil {
			return err
		}
	}
	return nil
}

// ReadProgram deserializes a solver program written by WriteProgram.
func ReadProgram(r io.Reader, fr *ff.Field) (*Program, error) {
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	if m != progMagic {
		return nil, fmt.Errorf("witness: bad program magic %08x", m)
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	elem := make([]byte, fr.ByteLen())
	readLC := func() (r1cs.LinComb, error) {
		ln, err := readU32()
		if err != nil {
			return nil, err
		}
		lc := make(r1cs.LinComb, ln)
		for i := range lc {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			lc[i].Var = r1cs.Variable(v)
			if _, err := io.ReadFull(r, elem); err != nil {
				return nil, err
			}
			fr.SetBytes(&lc[i].Coeff, elem)
		}
		return lc, nil
	}
	p := &Program{Instructions: make([]Instruction, n)}
	for i := range p.Instructions {
		ins := &p.Instructions[i]
		op, err := readU32()
		if err != nil {
			return nil, err
		}
		ins.Op = OpKind(op)
		out, err := readU32()
		if err != nil {
			return nil, err
		}
		ins.Out = r1cs.Variable(out)
		aux, err := readU32()
		if err != nil {
			return nil, err
		}
		ins.Aux = int(aux)
		if ins.L, err = readLC(); err != nil {
			return nil, err
		}
		if ins.R, err = readLC(); err != nil {
			return nil, err
		}
	}
	return p, nil
}
