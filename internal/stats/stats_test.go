package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{1, 4}); !almost(got, 2, 1e-9) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
}

func TestMax(t *testing.T) {
	if Max(nil) != 0 {
		t.Error("Max(nil) != 0")
	}
	if got := Max([]float64{3, 7, 2}); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Max([]float64{-3, -7}); got != -3 {
		t.Errorf("Max = %v, want -3", got)
	}
}

func TestAmdahlLawValues(t *testing.T) {
	// Fully parallel: S(n) = n.
	if got := AmdahlSpeedup(1, 8); !almost(got, 8, 1e-9) {
		t.Errorf("Amdahl(p=1, n=8) = %v", got)
	}
	// Fully serial: S(n) = 1.
	if got := AmdahlSpeedup(0, 8); !almost(got, 1, 1e-9) {
		t.Errorf("Amdahl(p=0, n=8) = %v", got)
	}
	// Half parallel at infinity tends to 2; at n=2: 1/(0.5+0.25) = 1.333.
	if got := AmdahlSpeedup(0.5, 2); !almost(got, 4.0/3.0, 1e-9) {
		t.Errorf("Amdahl(0.5, 2) = %v", got)
	}
}

func TestGustafsonLawValues(t *testing.T) {
	if got := GustafsonSpeedup(1, 8); !almost(got, 8, 1e-9) {
		t.Errorf("Gustafson(1,8) = %v", got)
	}
	if got := GustafsonSpeedup(0, 8); !almost(got, 1, 1e-9) {
		t.Errorf("Gustafson(0,8) = %v", got)
	}
	if got := GustafsonSpeedup(0.5, 9); !almost(got, 5, 1e-9) {
		t.Errorf("Gustafson(0.5,9) = %v", got)
	}
}

// TestFitAmdahlRecovers: fitting data generated from the law recovers p.
func TestFitAmdahlRecovers(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16, 32}
	for _, p := range []float64{0.0, 0.3, 0.5, 0.7167, 0.95, 1.0} {
		sp := make([]float64, len(threads))
		for i, n := range threads {
			sp[i] = AmdahlSpeedup(p, float64(n))
		}
		got := FitAmdahl(threads, sp)
		if !almost(got, p, 0.01) {
			t.Errorf("FitAmdahl recovered %v, want %v", got, p)
		}
	}
}

// TestFitGustafsonRecovers: same for Gustafson's law.
func TestFitGustafsonRecovers(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16, 32}
	for _, p := range []float64{0.0, 0.25, 0.7, 0.99, 1.0} {
		sp := make([]float64, len(threads))
		for i, n := range threads {
			sp[i] = GustafsonSpeedup(p, float64(n))
		}
		got := FitGustafson(threads, sp)
		if !almost(got, p, 1e-6) {
			t.Errorf("FitGustafson recovered %v, want %v", got, p)
		}
	}
}

func TestFitAmdahlNoisy(t *testing.T) {
	// The fit should be robust to mild multiplicative noise.
	threads := []int{1, 2, 4, 8, 16, 32}
	p := 0.8
	noise := []float64{1.02, 0.98, 1.03, 0.97, 1.01, 0.99}
	sp := make([]float64, len(threads))
	for i, n := range threads {
		sp[i] = AmdahlSpeedup(p, float64(n)) * noise[i]
	}
	got := FitAmdahl(threads, sp)
	if !almost(got, p, 0.05) {
		t.Errorf("noisy FitAmdahl = %v, want ≈%v", got, p)
	}
}

func TestFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FitAmdahl should panic on length mismatch")
		}
	}()
	FitAmdahl([]int{1, 2}, []float64{1})
}

func TestFitGustafsonClamps(t *testing.T) {
	// Superlinear data clamps to 1; sublinear-below-1 clamps to 0.
	threads := []int{1, 2, 4}
	if got := FitGustafson(threads, []float64{1, 3, 9}); got != 1 {
		t.Errorf("superlinear fit = %v, want 1", got)
	}
	if got := FitGustafson(threads, []float64{1, 0.8, 0.5}); got != 0 {
		t.Errorf("sublinear fit = %v, want 0", got)
	}
	// Degenerate single point: denominator zero.
	if got := FitGustafson([]int{1}, []float64{1}); got != 0 {
		t.Errorf("degenerate fit = %v, want 0", got)
	}
}

// Property: fitted p is always within [0,1] and the fit of exact curves is
// idempotent.
func TestQuickFitBounds(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16}
	prop := func(raw [5]float64) bool {
		sp := make([]float64, len(threads))
		for i := range sp {
			sp[i] = 1 + math.Abs(raw[i]) // arbitrary positive speedups
		}
		a := FitAmdahl(threads, sp)
		g := FitGustafson(threads, sp)
		return a >= 0 && a <= 1 && g >= 0 && g <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
