// Package stats provides the statistical utilities of the analysis
// framework: means, and least-squares fits of speedup curves to Amdahl's
// and Gustafson's laws — the method the paper uses to extract the serial
// and parallel percentages of Table VI from the Fig. 6/7 scaling data.
package stats

import "math"

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// AmdahlSpeedup evaluates Amdahl's law: S(n) = 1/((1−p) + p/n) where p is
// the parallel fraction.
func AmdahlSpeedup(p float64, n float64) float64 {
	return 1.0 / ((1 - p) + p/n)
}

// GustafsonSpeedup evaluates Gustafson's law: S(n) = (1−p) + p·n.
func GustafsonSpeedup(p float64, n float64) float64 {
	return (1 - p) + p*n
}

// FitAmdahl finds the parallel fraction p ∈ [0,1] minimizing the squared
// error between measured speedups and Amdahl's law, by golden-section
// search (the objective is unimodal in p for monotone speedup data).
// threads and speedups must have equal length.
func FitAmdahl(threads []int, speedups []float64) float64 {
	if len(threads) != len(speedups) {
		panic("stats: FitAmdahl length mismatch")
	}
	sse := func(p float64) float64 {
		var e float64
		for i, n := range threads {
			d := speedups[i] - AmdahlSpeedup(p, float64(n))
			e += d * d
		}
		return e
	}
	return goldenSection(sse, 0, 1)
}

// FitGustafson finds p ∈ [0,1] for S(n) = (1−p) + p·n by closed-form least
// squares on the slope: S(n) − 1 = p·(n − 1).
func FitGustafson(threads []int, speedups []float64) float64 {
	if len(threads) != len(speedups) {
		panic("stats: FitGustafson length mismatch")
	}
	var num, den float64
	for i, n := range threads {
		x := float64(n) - 1
		num += (speedups[i] - 1) * x
		den += x * x
	}
	if den == 0 {
		return 0
	}
	p := num / den
	return clamp01(p)
}

// goldenSection minimizes f over [lo, hi].
func goldenSection(f func(float64) float64, lo, hi float64) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 80; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
