package opcode

import (
	"testing"
	"testing/quick"

	"zkperf/internal/trace"
)

func TestEmptyRecorder(t *testing.T) {
	r := trace.NewRecorder()
	m := FromRecorder(r, 4)
	if m.Total() != 0 {
		t.Errorf("empty recorder mix total = %d", m.Total())
	}
	c, ctl, d := m.Percentages()
	if c != 0 || ctl != 0 || d != 0 {
		t.Error("empty mix percentages should be zero")
	}
}

func TestMulDominatedIsCompute(t *testing.T) {
	r := trace.NewRecorder()
	r.Ops.Mul = 1_000_000
	m := FromRecorder(r, 4)
	if m.Dominant() != "compute" {
		t.Errorf("mul-heavy stream classified %q", m.Dominant())
	}
	c, _, _ := m.Percentages()
	if c < 50 {
		t.Errorf("compute share = %v for a pure-mul stream", c)
	}
}

func TestCopyDominatedIsDataFlow(t *testing.T) {
	r := trace.NewRecorder()
	r.BytesCopied = 100 << 20
	m := FromRecorder(r, 4)
	if m.Dominant() != "data-flow" {
		t.Errorf("copy-heavy stream classified %q", m.Dominant())
	}
}

func TestDispatchHeavyIsControlFlow(t *testing.T) {
	r := trace.NewRecorder()
	r.Dispatches = 1_000_000
	r.Branches = 2_000_000
	m := FromRecorder(r, 4)
	_, ctl, _ := m.Percentages()
	if ctl < 30 {
		t.Errorf("control share = %v for an interpreter-like stream", ctl)
	}
}

func TestLimbScaling(t *testing.T) {
	// 6-limb multiplications cost more than 4-limb ones in every category.
	r := trace.NewRecorder()
	r.Ops.Mul = 1000
	m4 := FromRecorder(r, 4)
	m6 := FromRecorder(r, 6)
	if m6.Compute <= m4.Compute || m6.Total() <= m4.Total() {
		t.Error("6-limb mix should exceed 4-limb mix")
	}
}

func TestExtraInstrIncluded(t *testing.T) {
	r := trace.NewRecorder()
	r.InstrBulk(100, 200, 300)
	m := FromRecorder(r, 4)
	if m.Compute != 100 || m.Control != 200 || m.Data != 300 {
		t.Errorf("bulk instructions not passed through: %+v", m)
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	prop := func(mul, add, disp, br uint32) bool {
		r := trace.NewRecorder()
		r.Ops.Mul = uint64(mul % 10000)
		r.Ops.Add = uint64(add % 10000)
		r.Dispatches = int64(disp % 10000)
		r.Branches = int64(br % 10000)
		m := FromRecorder(r, 4)
		if m.Total() == 0 {
			return true
		}
		c, ctl, d := m.Percentages()
		sum := c + ctl + d
		return sum > 99.999 && sum < 100.001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChainInstructions(t *testing.T) {
	r := trace.NewRecorder()
	if ChainInstructions(r, 4) != 0 {
		t.Error("no muls → no chain instructions")
	}
	r.Ops.Mul = 10
	r.Ops.Sq = 5
	chain4 := ChainInstructions(r, 4)
	chain6 := ChainInstructions(r, 6)
	if chain4 <= 0 || chain6 <= chain4 {
		t.Errorf("chain scaling wrong: %d vs %d", chain4, chain6)
	}
	// Chains never exceed the full compute share of the same ops.
	m := FromRecorder(r, 4)
	if chain4 > m.Compute {
		t.Errorf("chain %d exceeds compute %d", chain4, m.Compute)
	}
}

func TestBranchRate(t *testing.T) {
	r := trace.NewRecorder()
	r.Branches = 100
	r.Dispatches = 50
	r.Ops.Mul = 1000
	m := FromRecorder(r, 4)
	cond, ind := BranchRate(r, m)
	if cond <= 0 || ind <= 0 || cond >= 1 || ind >= 1 {
		t.Errorf("branch rates out of range: %v %v", cond, ind)
	}
	empty := trace.NewRecorder()
	c0, i0 := BranchRate(empty, FromRecorder(empty, 4))
	if c0 != 0 || i0 != 0 {
		t.Error("empty recorder branch rates should be zero")
	}
}

func TestAllocCostsAreDataHeavy(t *testing.T) {
	r := trace.NewRecorder()
	r.AllocN(10000, 64)
	m := FromRecorder(r, 4)
	if m.Dominant() != "data-flow" {
		t.Errorf("allocator-heavy stream classified %q", m.Dominant())
	}
}
