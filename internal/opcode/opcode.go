// Package opcode reproduces the paper's instruction-level code analysis
// (Table V): classifying the executed instruction stream into compute,
// control-flow and data-flow categories.
//
// The paper measures this with DynamoRIO on native x86 streams. The
// portable substitute is a two-part model: the traced run counts dynamic
// *primitives* (field operations, interpreter dispatches, copies,
// allocations, array touches), and a static per-primitive instruction-cost
// table — derived from what a compiled big-integer kernel actually
// executes per limb — expands those counts into the three categories.
// The categories match DynamoRIO's scheme: compute covers arithmetic/logic
// opcodes (add, mul, and, …), control covers transfers (jz, jnb, call, …)
// and data covers moves between registers and memory (mov, push, …).
package opcode

import "zkperf/internal/trace"

// Mix is an instruction-count breakdown by category.
type Mix struct {
	Compute int64
	Control int64
	Data    int64
}

// Cost is the static instruction cost of one primitive.
type Cost struct{ Compute, Control, Data int64 }

// costModel returns the per-primitive costs for a field with the given
// limb count. The numbers follow the instruction sequences of a schoolbook
// CIOS Montgomery multiplier and a carry-chain adder compiled without full
// unrolling (the snarkjs/WASM situation): per limb-product one mul plus
// two carry adds, per inner loop one branch, operand limbs loaded once.
func costModel(limbs int) map[string]Cost {
	// wasmFactor models the instruction expansion of running the bigint
	// kernels under a WASM engine rather than as native code (~3x).
	const wasmFactor = 3
	l := int64(limbs) * wasmFactor
	return map[string]Cost{
		// n² limb products, each mul+2×adc; loop overhead ~n²+n branches
		// plus bounds checks; operands and temporaries spill partially.
		"mul": {Compute: 3*l*l + 2*l, Control: l*l + l, Data: 4*l + l*l/2},
		// carry-chain add/sub: n add + n adc, a compare-and-reduce branch,
		// 2n loads + n stores.
		"add": {Compute: 2*l + 2, Control: 2, Data: 3 * l},
		// Interpreter dispatch: table fetch, bounds check, indirect jump.
		"dispatch": {Compute: 2, Control: 3, Data: 4},
		// Conditional branch with its flag-setting compare.
		"branch": {Compute: 1, Control: 1, Data: 0},
		// Allocator call: size-class lookup, freelist pop, bookkeeping.
		"alloc": {Compute: 12, Control: 10, Data: 30},
		// One array-element touch: address generation + the memory op.
		"touch": {Compute: 1, Control: 0, Data: 2},
		// One 8-byte unit of bulk copy: load+store pair.
		"copyUnit": {Compute: 0, Control: 0, Data: 2},
	}
}

// FromRecorder expands a traced run's primitive counts into an instruction
// mix. limbs is the active field's limb count (4 for BN254, 4/6 for
// BLS12-381 scalar/base operations; pass the dominant one for the stage).
func FromRecorder(r *trace.Recorder, limbs int) Mix {
	cm := costModel(limbs)
	var m Mix
	addN := func(c Cost, n int64) {
		m.Compute += c.Compute * n
		m.Control += c.Control * n
		m.Data += c.Data * n
	}
	addN(cm["mul"], int64(r.Ops.Mul+r.Ops.Sq))
	addN(cm["add"], int64(r.Ops.Add+r.Ops.Sub))
	addN(cm["dispatch"], r.Dispatches)
	addN(cm["branch"], r.Branches)
	addN(cm["alloc"], r.Allocs)
	addN(cm["copyUnit"], r.BytesCopied/8)
	var touches int64
	for i := range r.Accesses {
		touches += r.Accesses[i].Touches
	}
	addN(cm["touch"], touches)
	m.Compute += r.ExtraCompute
	m.Control += r.ExtraControl
	m.Data += r.ExtraData
	return m
}

// Total returns the total instruction count.
func (m Mix) Total() int64 { return m.Compute + m.Control + m.Data }

// Percentages returns the category shares in percent (0 when empty).
func (m Mix) Percentages() (compute, control, data float64) {
	t := float64(m.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return 100 * float64(m.Compute) / t, 100 * float64(m.Control) / t, 100 * float64(m.Data) / t
}

// Dominant returns which category the stage is "intensive" in, following
// the paper's categorization: the largest share wins, with control-flow
// flagged when its share is within 5 points of the leader (the paper calls
// the witness stage control-flow intensive on relative grounds).
func (m Mix) Dominant() string {
	c, ctl, d := m.Percentages()
	switch {
	case c >= ctl && c >= d:
		return "compute"
	case d >= c && d >= ctl:
		return "data-flow"
	default:
		return "control-flow"
	}
}

// ChainInstructions returns the number of executed instructions belonging
// to serial carry/multiply dependency chains — the big-integer
// multiplications. These are the instructions whose latency the top-down
// model charges as back-end core stalls: a serial chain limits IPC no
// matter how wide the machine is.
func ChainInstructions(r *trace.Recorder, limbs int) int64 {
	c := costModel(limbs)["mul"]
	return int64(r.Ops.Mul+r.Ops.Sq) * c.Compute
}

// BranchRate returns conditional+indirect branches per executed
// instruction — the input the top-down model uses for its bad-speculation
// estimate.
func BranchRate(r *trace.Recorder, m Mix) (condPerInstr, indirectPerInstr float64) {
	t := float64(m.Total())
	if t == 0 {
		return 0, 0
	}
	// Control-category instructions are mostly well-predicted loop
	// branches; the recorder's explicit Branches/Dispatches counters mark
	// the data-dependent ones.
	return float64(r.Branches) / t, float64(r.Dispatches) / t
}
