// Package r1cs implements the Rank-1 Constraint System — the intermediate
// representation the compile stage produces from an arithmetic circuit
// (Section II-C of the paper). A constraint is ⟨L,w⟩·⟨R,w⟩ = ⟨O,w⟩ over
// the witness vector w, whose layout follows the Groth16 convention:
//
//	w[0]              = 1  (the constant wire)
//	w[1..NumPublic]   = public inputs/outputs (witnessPublic)
//	w[..+NumPrivate]  = private inputs
//	w[rest]           = internal wires
package r1cs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"zkperf/internal/ff"
)

// Variable is an index into the witness vector. Variable 0 is the constant
// wire fixed to 1.
type Variable int

// ConstOne is the index of the constant-1 wire.
const ConstOne Variable = 0

// Term is one coefficient·variable product inside a linear combination.
type Term struct {
	Coeff ff.Element
	Var   Variable
}

// LinComb is a sparse linear combination Σ Coeffᵢ·w[Varᵢ].
type LinComb []Term

// Constraint is one R1CS row: ⟨L,w⟩ · ⟨R,w⟩ = ⟨O,w⟩.
type Constraint struct {
	L, R, O LinComb
}

// System is a compiled constraint system (the paper's "ccs").
type System struct {
	Fr *ff.Field

	NumPublic   int // public wires, excluding the constant wire
	NumPrivate  int // private input wires
	NumInternal int // internal (intermediate) wires

	Constraints []Constraint

	// PublicNames and PrivateNames give the source-level names of the
	// input wires, in witness order. Used to bind input assignments.
	PublicNames  []string
	PrivateNames []string
	// PublicIsOutput marks which public wires are outputs: computed by the
	// witness solver rather than bound from the input assignment.
	PublicIsOutput []bool
}

// NewSystem returns an empty system over the given scalar field.
func NewSystem(fr *ff.Field) *System {
	return &System{Fr: fr}
}

// NumVariables returns the total witness length, including the constant
// wire.
func (s *System) NumVariables() int {
	return 1 + s.NumPublic + s.NumPrivate + s.NumInternal
}

// NumConstraints returns the number of constraints.
func (s *System) NumConstraints() int { return len(s.Constraints) }

// AddPublic appends a public wire with the given name and returns it.
// isOutput marks wires the solver computes (outputs) rather than wires
// bound from the input assignment.
func (s *System) AddPublic(name string, isOutput bool) Variable {
	if s.NumPrivate > 0 || s.NumInternal > 0 {
		panic("r1cs: public wires must be allocated before private/internal wires")
	}
	s.NumPublic++
	s.PublicNames = append(s.PublicNames, name)
	s.PublicIsOutput = append(s.PublicIsOutput, isOutput)
	return Variable(s.NumPublic)
}

// AddPrivate appends a private wire with the given name and returns it.
func (s *System) AddPrivate(name string) Variable {
	if s.NumInternal > 0 {
		panic("r1cs: private wires must be allocated before internal wires")
	}
	s.NumPrivate++
	s.PrivateNames = append(s.PrivateNames, name)
	return Variable(s.NumPublic + s.NumPrivate)
}

// AddInternal appends an internal wire and returns it.
func (s *System) AddInternal() Variable {
	s.NumInternal++
	return Variable(s.NumPublic + s.NumPrivate + s.NumInternal)
}

// AddConstraint appends the constraint L·R = O.
func (s *System) AddConstraint(l, r, o LinComb) {
	s.Constraints = append(s.Constraints, Constraint{L: l, R: r, O: o})
}

// EvalLC evaluates a linear combination against a witness vector.
func (s *System) EvalLC(lc LinComb, w []ff.Element) ff.Element {
	var acc, t ff.Element
	s.Fr.Zero(&acc)
	for i := range lc {
		v := int(lc[i].Var)
		s.Fr.Mul(&t, &lc[i].Coeff, &w[v])
		s.Fr.Add(&acc, &acc, &t)
	}
	return acc
}

// IsSatisfied checks every constraint against w, returning the index of
// the first violated constraint (or -1) and whether all hold.
func (s *System) IsSatisfied(w []ff.Element) (int, bool) {
	if len(w) != s.NumVariables() {
		return -1, false
	}
	var prod ff.Element
	for i := range s.Constraints {
		c := &s.Constraints[i]
		l := s.EvalLC(c.L, w)
		r := s.EvalLC(c.R, w)
		o := s.EvalLC(c.O, w)
		s.Fr.Mul(&prod, &l, &r)
		if !s.Fr.Equal(&prod, &o) {
			return i, false
		}
	}
	return -1, true
}

// Stats summarizes the system's shape; the analysis framework reports these
// alongside performance numbers.
type Stats struct {
	Constraints  int
	Variables    int
	Public       int
	Private      int
	Internal     int
	NonZeroTerms int // total sparse matrix entries across L, R, O
}

// Stats computes summary statistics.
func (s *System) Stats() Stats {
	nz := 0
	for i := range s.Constraints {
		c := &s.Constraints[i]
		nz += len(c.L) + len(c.R) + len(c.O)
	}
	return Stats{
		Constraints:  len(s.Constraints),
		Variables:    s.NumVariables(),
		Public:       s.NumPublic,
		Private:      s.NumPrivate,
		Internal:     s.NumInternal,
		NonZeroTerms: nz,
	}
}

// ---------- serialization ----------
// The binary format is little-endian and self-describing enough for the
// CLI to round-trip a compiled system between the compile and setup stages,
// mirroring circom's .r1cs artifact.

const magic = uint32(0x52314353) // "R1CS"

// WriteTo serializes the system.
func (s *System) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	writeU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(magic)
	writeU32(uint32(s.NumPublic))
	writeU32(uint32(s.NumPrivate))
	writeU32(uint32(s.NumInternal))
	writeU32(uint32(len(s.Constraints)))
	writeLC := func(lc LinComb) {
		writeU32(uint32(len(lc)))
		for i := range lc {
			writeU32(uint32(lc[i].Var))
			buf.Write(s.Fr.Bytes(&lc[i].Coeff))
		}
	}
	for i := range s.Constraints {
		writeLC(s.Constraints[i].L)
		writeLC(s.Constraints[i].R)
		writeLC(s.Constraints[i].O)
	}
	writeName := func(name string) {
		writeU32(uint32(len(name)))
		buf.WriteString(name)
	}
	for i, n := range s.PublicNames {
		writeName(n)
		if s.PublicIsOutput[i] {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	for _, n := range s.PrivateNames {
		writeName(n)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadFrom deserializes a system previously written with WriteTo. The
// receiver's Fr field must already be set to the matching scalar field.
func (s *System) ReadFrom(r io.Reader) (int64, error) {
	br := &countingReader{r: r}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	m, err := readU32()
	if err != nil {
		return br.n, err
	}
	if m != magic {
		return br.n, fmt.Errorf("r1cs: bad magic %08x", m)
	}
	pub, _ := readU32()
	priv, _ := readU32()
	internal, _ := readU32()
	nc, err := readU32()
	if err != nil {
		return br.n, err
	}
	s.NumPublic, s.NumPrivate, s.NumInternal = int(pub), int(priv), int(internal)
	elemLen := s.Fr.ByteLen()
	readLC := func() (LinComb, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		lc := make(LinComb, n)
		elem := make([]byte, elemLen)
		for i := range lc {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			lc[i].Var = Variable(v)
			if _, err := io.ReadFull(br, elem); err != nil {
				return nil, err
			}
			s.Fr.SetBytes(&lc[i].Coeff, elem)
		}
		return lc, nil
	}
	s.Constraints = make([]Constraint, nc)
	for i := range s.Constraints {
		if s.Constraints[i].L, err = readLC(); err != nil {
			return br.n, err
		}
		if s.Constraints[i].R, err = readLC(); err != nil {
			return br.n, err
		}
		if s.Constraints[i].O, err = readLC(); err != nil {
			return br.n, err
		}
	}
	readName := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	s.PublicNames = make([]string, s.NumPublic)
	s.PublicIsOutput = make([]bool, s.NumPublic)
	flag := make([]byte, 1)
	for i := range s.PublicNames {
		if s.PublicNames[i], err = readName(); err != nil {
			return br.n, err
		}
		if _, err := io.ReadFull(br, flag); err != nil {
			return br.n, err
		}
		s.PublicIsOutput[i] = flag[0] == 1
	}
	s.PrivateNames = make([]string, s.NumPrivate)
	for i := range s.PrivateNames {
		if s.PrivateNames[i], err = readName(); err != nil {
			return br.n, err
		}
	}
	return br.n, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
