package r1cs

import (
	"bytes"
	"testing"

	"zkperf/internal/ff"
)

// buildToy constructs the system for y = x² manually:
// wires: [1, y(pub out), x(priv), t(internal)] with t = x·x and y = t.
func buildToy(fr *ff.Field) *System {
	s := NewSystem(fr)
	y := s.AddPublic("y", true)
	x := s.AddPrivate("x")
	t := s.AddInternal()
	var one ff.Element
	fr.One(&one)
	lc := func(v Variable) LinComb { return LinComb{{Coeff: one, Var: v}} }
	s.AddConstraint(lc(x), lc(x), lc(t))
	s.AddConstraint(lc(t), lc(ConstOne), lc(y))
	return s
}

func TestIsSatisfied(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := buildToy(fr)
	w := make([]ff.Element, 4)
	fr.One(&w[0])
	fr.SetUint64(&w[1], 9) // y
	fr.SetUint64(&w[2], 3) // x
	fr.SetUint64(&w[3], 9) // t
	if bad, ok := s.IsSatisfied(w); !ok {
		t.Fatalf("valid witness rejected at constraint %d", bad)
	}
	fr.SetUint64(&w[1], 10)
	if bad, ok := s.IsSatisfied(w); ok || bad != 1 {
		t.Errorf("invalid witness: ok=%v bad=%d, want false,1", ok, bad)
	}
	// Wrong length is rejected.
	if _, ok := s.IsSatisfied(w[:3]); ok {
		t.Error("short witness accepted")
	}
}

func TestWireLayoutInvariants(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := buildToy(fr)
	if s.NumVariables() != 4 {
		t.Errorf("NumVariables = %d, want 4", s.NumVariables())
	}
	st := s.Stats()
	if st.Constraints != 2 || st.Public != 1 || st.Private != 1 || st.Internal != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.NonZeroTerms != 6 {
		t.Errorf("NonZeroTerms = %d, want 6", st.NonZeroTerms)
	}
}

func TestAllocationOrderEnforced(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := NewSystem(fr)
	s.AddPrivate("x")
	defer func() {
		if recover() == nil {
			t.Error("AddPublic after AddPrivate should panic")
		}
	}()
	s.AddPublic("y", false)
}

func TestSerializationRoundTrip(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := buildToy(fr)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewSystem(fr)
	if _, err := s2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumPublic != s.NumPublic || s2.NumPrivate != s.NumPrivate ||
		s2.NumInternal != s.NumInternal || len(s2.Constraints) != len(s.Constraints) {
		t.Fatal("shape mismatch after round trip")
	}
	if s2.PublicNames[0] != "y" || !s2.PublicIsOutput[0] || s2.PrivateNames[0] != "x" {
		t.Error("names/flags mismatch after round trip")
	}
	for i := range s.Constraints {
		for _, pair := range [][2]LinComb{
			{s.Constraints[i].L, s2.Constraints[i].L},
			{s.Constraints[i].R, s2.Constraints[i].R},
			{s.Constraints[i].O, s2.Constraints[i].O},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatal("LC length mismatch after round trip")
			}
			for j := range pair[0] {
				if pair[0][j].Var != pair[1][j].Var || !fr.Equal(&pair[0][j].Coeff, &pair[1][j].Coeff) {
					t.Fatal("term mismatch after round trip")
				}
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := NewSystem(fr)
	if _, err := s.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage input accepted")
	}
	if _, err := s.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEvalLC(t *testing.T) {
	fr := ff.NewBN254Fr()
	s := buildToy(fr)
	w := make([]ff.Element, 4)
	fr.One(&w[0])
	fr.SetUint64(&w[2], 7)
	var c2 ff.Element
	fr.SetUint64(&c2, 2)
	lc := LinComb{{Coeff: c2, Var: 2}, {Coeff: c2, Var: ConstOne}} // 2x + 2
	got := s.EvalLC(lc, w)
	var want ff.Element
	fr.SetUint64(&want, 16)
	if !fr.Equal(&got, &want) {
		t.Errorf("EvalLC = %s, want 16", fr.String(&got))
	}
	// Empty LC evaluates to zero.
	zero := s.EvalLC(nil, w)
	if !fr.IsZero(&zero) {
		t.Error("empty LC should evaluate to 0")
	}
}
