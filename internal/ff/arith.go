package ff

import "math/bits"

// Mul sets z = x*y mod p using the CIOS (Coarsely Integrated Operand
// Scanning) Montgomery multiplication algorithm. The loop is generic over
// the limb count so that one implementation serves 4-limb (BN254, BLS12-381
// scalar field) and 6-limb (BLS12-381 base field) moduli.
func (f *Field) Mul(z, x, y *Element) *Element {
	if f.Count != nil {
		f.Count.Mul++
	}
	f.mulNoCount(z, x, y)
	return z
}

// Square sets z = x*x mod p using a dedicated SOS squaring: the cross
// products x_i·x_j (i<j) are computed once and doubled by a limb shift,
// so only n(n+1)/2 of the n² limb products remain — ~25% fewer than
// running the full CIOS multiplier on (x, x). The OpCount.Sq counter is
// unchanged, so instrumented runs still see squarings as their own class.
func (f *Field) Square(z, x *Element) *Element {
	if f.Count != nil {
		f.Count.Sq++
	}
	f.sqrNoCount(z, x)
	return z
}

// sqrNoCount is the uncounted SOS (Separated Operand Scanning) Montgomery
// squaring: full 2n-limb square first (triangular products, doubled, plus
// the diagonal), then n Montgomery reduction rounds.
func (f *Field) sqrNoCount(z, x *Element) {
	n := f.n
	var t [2 * MaxLimbs]uint64
	// Triangular cross products Σ_{i<j} x_i·x_j, accumulated at limb i+j.
	for i := 0; i < n-1; i++ {
		var c uint64
		xi := x[i]
		for j := i + 1; j < n; j++ {
			hi, lo := bits.Mul64(xi, x[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[i+j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[i+j] = lo
			c = hi
		}
		t[i+n] = c
	}
	// Double the cross products: one bit-shift across the 2n limbs. The sum
	// is < x²/2, so nothing shifts out of the top limb.
	var carry uint64
	for i := 0; i < 2*n; i++ {
		nc := t[i] >> 63
		t[i] = t[i]<<1 | carry
		carry = nc
	}
	// Add the diagonal x_i² at limb 2i; the carry chain rides positions
	// 2i+1 → 2i+2, which the next iteration's low-limb add continues.
	var c uint64
	for i := 0; i < n; i++ {
		hi, lo := bits.Mul64(x[i], x[i])
		var cc uint64
		t[2*i], cc = bits.Add64(t[2*i], lo, c)
		t[2*i+1], c = bits.Add64(t[2*i+1], hi, cc)
	}
	// Montgomery reduction: n rounds, each zeroing the lowest live limb.
	var extra uint64 // overflow bit out of t[2n-1]
	for i := 0; i < n; i++ {
		m := t[i] * f.inv
		var c uint64
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(m, f.p[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[i+j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[i+j] = lo
			c = hi
		}
		var cc uint64
		t[i+n], cc = bits.Add64(t[i+n], c, 0)
		for k := i + n + 1; cc != 0 && k < 2*n; k++ {
			t[k], cc = bits.Add64(t[k], 0, cc)
		}
		extra += cc
	}
	for i := 0; i < n; i++ {
		z[i] = t[n+i]
	}
	for i := n; i < MaxLimbs; i++ {
		z[i] = 0
	}
	f.reduceOnce(z, extra)
}

// mulNoCount is the uncounted CIOS core shared by Mul, Square and the
// Montgomery-form conversions.
func (f *Field) mulNoCount(z, x, y *Element) {
	var t [MaxLimbs + 2]uint64
	n := f.n
	for i := 0; i < n; i++ {
		// t += x[i] * y
		var c uint64
		xi := x[i]
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j] = lo
			c = hi
		}
		var cc uint64
		t[n], cc = bits.Add64(t[n], c, 0)
		t[n+1] = cc

		// Montgomery reduction step: make t divisible by 2^64.
		m := t[0] * f.inv
		hi, lo := bits.Mul64(m, f.p[0])
		_, cc = bits.Add64(lo, t[0], 0)
		c = hi + cc
		for j := 1; j < n; j++ {
			hi, lo = bits.Mul64(m, f.p[j])
			var c2 uint64
			lo, c2 = bits.Add64(lo, t[j], 0)
			hi += c2
			lo, c2 = bits.Add64(lo, c, 0)
			hi += c2
			t[j-1] = lo
			c = hi
		}
		t[n-1], cc = bits.Add64(t[n], c, 0)
		t[n] = t[n+1] + cc
	}
	for i := 0; i < n; i++ {
		z[i] = t[i]
	}
	for i := n; i < MaxLimbs; i++ {
		z[i] = 0
	}
	f.reduceOnce(z, t[n])
}

// MulUint64 sets z = x * v mod p for a small scalar v.
func (f *Field) MulUint64(z, x *Element, v uint64) *Element {
	var ve Element
	f.SetUint64(&ve, v)
	return f.Mul(z, x, &ve)
}

// Halve sets z = x/2 mod p.
func (f *Field) Halve(z, x *Element) *Element {
	*z = *x
	n := f.n
	if z[0]&1 == 1 {
		var carry uint64
		for i := 0; i < n; i++ {
			z[i], carry = bits.Add64(z[i], f.p[i], carry)
		}
		// shift right including the carry bit
		for i := 0; i < n-1; i++ {
			z[i] = z[i]>>1 | z[i+1]<<63
		}
		z[n-1] = z[n-1]>>1 | carry<<63
		return z
	}
	for i := 0; i < n-1; i++ {
		z[i] = z[i]>>1 | z[i+1]<<63
	}
	z[n-1] >>= 1
	return z
}
