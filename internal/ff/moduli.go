package ff

// Modulus strings for the fields used by the zk-SNARK protocol. The BN254
// curve (called BN128 in circom/snarkjs, after its ~128-bit security target
// at design time) and BLS12-381 are the two curves the paper evaluates.
const (
	// BN254PModulus is the base-field modulus of BN254 / alt_bn128.
	BN254PModulus = "21888242871839275222246405745257275088696311157297823662689037894645226208583"
	// BN254RModulus is the scalar-field (subgroup order) modulus of BN254.
	BN254RModulus = "21888242871839275222246405745257275088548364400416034343698204186575808495617"
	// BLS12381PModulus is the base-field modulus of BLS12-381.
	BLS12381PModulus = "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
	// BLS12381RModulus is the scalar-field modulus of BLS12-381.
	BLS12381RModulus = "0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
)

// NewBN254Fp returns a fresh BN254 base-field context.
func NewBN254Fp() *Field { return NewField("bn254.Fp", BN254PModulus) }

// NewBN254Fr returns a fresh BN254 scalar-field context.
func NewBN254Fr() *Field { return NewField("bn254.Fr", BN254RModulus) }

// NewBLS12381Fp returns a fresh BLS12-381 base-field context.
func NewBLS12381Fp() *Field { return NewField("bls12381.Fp", BLS12381PModulus) }

// NewBLS12381Fr returns a fresh BLS12-381 scalar-field context.
func NewBLS12381Fr() *Field { return NewField("bls12381.Fr", BLS12381RModulus) }
