package ff

import (
	"math/big"
	"testing"
	"testing/quick"
)

var testFields = []*Field{
	NewBN254Fp(),
	NewBN254Fr(),
	NewBLS12381Fp(),
	NewBLS12381Fr(),
}

func randElems(f *Field, n int, seed uint64) []Element {
	rng := NewRNG(seed)
	out := make([]Element, n)
	for i := range out {
		f.Random(&out[i], rng)
	}
	return out
}

func TestFieldConstants(t *testing.T) {
	for _, f := range testFields {
		if f.Bits() == 0 || f.NumLimbs() == 0 {
			t.Fatalf("%s: empty field parameters", f.Name)
		}
		var one Element
		f.One(&one)
		if got := f.BigInt(&one); got.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("%s: One() = %v, want 1", f.Name, got)
		}
		var zero Element
		f.Zero(&zero)
		if !f.IsZero(&zero) {
			t.Errorf("%s: Zero() not zero", f.Name)
		}
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(42)
		for i := 0; i < 50; i++ {
			var a, b, c Element
			f.Random(&a, rng)
			f.Random(&b, rng)
			f.Mul(&c, &a, &b)
			want := new(big.Int).Mul(f.BigInt(&a), f.BigInt(&b))
			want.Mod(want, f.Modulus())
			if got := f.BigInt(&c); got.Cmp(want) != 0 {
				t.Fatalf("%s: mul mismatch at iter %d:\n got %v\nwant %v", f.Name, i, got, want)
			}
		}
	}
}

func TestAddSubMatchesBigInt(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(7)
		for i := 0; i < 50; i++ {
			var a, b, s, d Element
			f.Random(&a, rng)
			f.Random(&b, rng)
			f.Add(&s, &a, &b)
			f.Sub(&d, &a, &b)
			wantS := new(big.Int).Add(f.BigInt(&a), f.BigInt(&b))
			wantS.Mod(wantS, f.Modulus())
			wantD := new(big.Int).Sub(f.BigInt(&a), f.BigInt(&b))
			wantD.Mod(wantD, f.Modulus())
			if got := f.BigInt(&s); got.Cmp(wantS) != 0 {
				t.Fatalf("%s: add mismatch", f.Name)
			}
			if got := f.BigInt(&d); got.Cmp(wantD) != 0 {
				t.Fatalf("%s: sub mismatch", f.Name)
			}
		}
	}
}

func TestInverse(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(9)
		for i := 0; i < 20; i++ {
			var a, inv, prod Element
			f.RandomNonZero(&a, rng)
			f.Inverse(&inv, &a)
			f.Mul(&prod, &a, &inv)
			if !f.IsOne(&prod) {
				t.Fatalf("%s: a * a^-1 != 1", f.Name)
			}
		}
		var zero, invZero Element
		f.Inverse(&invZero, &zero)
		if !f.IsZero(&invZero) {
			t.Errorf("%s: Inverse(0) should be 0", f.Name)
		}
	}
}

func TestNegHalveDouble(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(11)
		for i := 0; i < 20; i++ {
			var a, n, s, h, d Element
			f.Random(&a, rng)
			f.Neg(&n, &a)
			f.Add(&s, &a, &n)
			if !f.IsZero(&s) {
				t.Fatalf("%s: a + (-a) != 0", f.Name)
			}
			f.Halve(&h, &a)
			f.Double(&d, &h)
			if !f.Equal(&d, &a) {
				t.Fatalf("%s: 2*(a/2) != a", f.Name)
			}
		}
	}
}

func TestExp(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(13)
		var a Element
		f.RandomNonZero(&a, rng)
		// Fermat: a^(p-1) == 1.
		e := new(big.Int).Sub(f.Modulus(), big.NewInt(1))
		var r Element
		f.Exp(&r, &a, e)
		if !f.IsOne(&r) {
			t.Fatalf("%s: a^(p-1) != 1", f.Name)
		}
		// x^0 == 1, x^1 == x.
		f.ExpUint64(&r, &a, 0)
		if !f.IsOne(&r) {
			t.Fatalf("%s: a^0 != 1", f.Name)
		}
		f.ExpUint64(&r, &a, 1)
		if !f.Equal(&r, &a) {
			t.Fatalf("%s: a^1 != a", f.Name)
		}
	}
}

func TestSqrt(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(17)
		for i := 0; i < 10; i++ {
			var a, sq, root Element
			f.Random(&a, rng)
			f.Square(&sq, &a)
			if !f.Sqrt(&root, &sq) {
				t.Fatalf("%s: Sqrt failed on a known square", f.Name)
			}
			var check Element
			f.Square(&check, &root)
			if !f.Equal(&check, &sq) {
				t.Fatalf("%s: Sqrt returned a non-root", f.Name)
			}
		}
	}
}

func TestLegendre(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(19)
		var a, sq Element
		f.RandomNonZero(&a, rng)
		f.Square(&sq, &a)
		if f.Legendre(&sq) != 1 {
			t.Errorf("%s: Legendre(square) != 1", f.Name)
		}
		var zero Element
		if f.Legendre(&zero) != 0 {
			t.Errorf("%s: Legendre(0) != 0", f.Name)
		}
		// Exhaustively look for a non-residue among small values to check -1.
		found := false
		for v := uint64(2); v < 50; v++ {
			var e Element
			f.SetUint64(&e, v)
			if f.Legendre(&e) == -1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no small non-residue found (suspicious)", f.Name)
		}
	}
}

func TestBatchInverse(t *testing.T) {
	for _, f := range testFields {
		xs := randElems(f, 33, 23)
		f.Zero(&xs[5]) // include a zero entry
		orig := make([]Element, len(xs))
		copy(orig, xs)
		f.BatchInverse(xs)
		for i := range xs {
			if i == 5 {
				if !f.IsZero(&xs[i]) {
					t.Fatalf("%s: batch inverse of zero entry not zero", f.Name)
				}
				continue
			}
			var prod Element
			f.Mul(&prod, &xs[i], &orig[i])
			if !f.IsOne(&prod) {
				t.Fatalf("%s: batch inverse wrong at %d", f.Name, i)
			}
		}
	}
}

// TestSquareMatchesMul cross-checks the dedicated SOS squaring against the
// generic CIOS multiplier on random elements plus the boundary values the
// doubling/carry chains are most likely to get wrong (0, 1, −1, p−2).
func TestSquareMatchesMul(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(101)
		cases := randElems(f, 200, 103)
		var special Element
		f.Zero(&special)
		cases = append(cases, special)
		f.One(&special)
		cases = append(cases, special)
		var one Element
		f.One(&one)
		f.Neg(&special, &one)
		cases = append(cases, special) // p−1: largest residue
		var two Element
		f.SetUint64(&two, 2)
		f.Sub(&special, &special, &one)
		cases = append(cases, special) // p−2
		for i := 0; i < 50; i++ {
			// All-ones-ish limbs: max out the cross-product carries.
			var e Element
			f.Random(&e, rng)
			f.Mul(&e, &e, &two)
			cases = append(cases, e)
		}
		for i := range cases {
			var sq, mul Element
			f.Square(&sq, &cases[i])
			f.Mul(&mul, &cases[i], &cases[i])
			if !f.Equal(&sq, &mul) {
				t.Fatalf("%s: Square != Mul(x,x) at case %d (x=%s)", f.Name, i, f.String(&cases[i]))
			}
			want := new(big.Int).Mul(f.BigInt(&cases[i]), f.BigInt(&cases[i]))
			want.Mod(want, f.Modulus())
			if got := f.BigInt(&sq); got.Cmp(want) != 0 {
				t.Fatalf("%s: Square mismatch vs big.Int at case %d", f.Name, i)
			}
		}
	}
}

// TestSquareAliasing: Square must tolerate z aliasing x (the NTT twiddle
// chain squares in place).
func TestSquareAliasing(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(107)
		for i := 0; i < 20; i++ {
			var a, b Element
			f.Random(&a, rng)
			f.Set(&b, &a)
			f.Square(&a, &a)
			var want Element
			f.Mul(&want, &b, &b)
			if !f.Equal(&a, &want) {
				t.Fatalf("%s: in-place Square wrong", f.Name)
			}
		}
	}
}

// TestSquareOpCount: the Sq counter still ticks (and Mul does not) on the
// dedicated path.
func TestSquareOpCount(t *testing.T) {
	f := NewBN254Fr()
	var c OpCount
	f.Count = &c
	defer func() { f.Count = nil }()
	var a, z Element
	f.SetUint64(&a, 12345)
	c.Reset()
	f.Square(&z, &a)
	if c.Sq != 1 || c.Mul != 0 {
		t.Errorf("Square counted as Sq=%d Mul=%d, want 1/0", c.Sq, c.Mul)
	}
}

// TestCanonicalLimbs: the direct limb path agrees with the Bytes round
// trip it replaces on the MSM hot path.
func TestCanonicalLimbs(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(109)
		for i := 0; i < 50; i++ {
			var a Element
			f.Random(&a, rng)
			limbs := make([]uint64, f.NumLimbs())
			f.CanonicalLimbs(&a, limbs)
			b := f.Bytes(&a) // canonical big-endian
			for j := 0; j < f.NumLimbs(); j++ {
				var v uint64
				for k := 0; k < 8; k++ {
					v = v<<8 | uint64(b[len(b)-8*(j+1)+k])
				}
				if limbs[j] != v {
					t.Fatalf("%s: limb %d = %#x, Bytes says %#x", f.Name, j, limbs[j], v)
				}
			}
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, f := range testFields {
		rng := NewRNG(29)
		for i := 0; i < 10; i++ {
			var a, b Element
			f.Random(&a, rng)
			data := f.Bytes(&a)
			if len(data) != f.ByteLen() {
				t.Fatalf("%s: Bytes length %d != %d", f.Name, len(data), f.ByteLen())
			}
			f.SetBytes(&b, data)
			if !f.Equal(&a, &b) {
				t.Fatalf("%s: bytes round-trip mismatch", f.Name)
			}
		}
	}
}

func TestSetStringAndString(t *testing.T) {
	f := NewBN254Fr()
	var a Element
	if _, err := f.SetString(&a, "12345"); err != nil {
		t.Fatal(err)
	}
	if got := f.String(&a); got != "12345" {
		t.Errorf("String = %q, want 12345", got)
	}
	if _, err := f.SetString(&a, "0x10"); err != nil {
		t.Fatal(err)
	}
	if got := f.String(&a); got != "16" {
		t.Errorf("String = %q, want 16", got)
	}
	if _, err := f.SetString(&a, "not-a-number"); err == nil {
		t.Error("SetString should reject garbage")
	}
}

func TestUint64(t *testing.T) {
	f := NewBN254Fr()
	var a Element
	f.SetUint64(&a, 77)
	v, ok := f.Uint64(&a)
	if !ok || v != 77 {
		t.Errorf("Uint64 = %d,%v want 77,true", v, ok)
	}
	f.SetString(&a, "340282366920938463463374607431768211456") // 2^128
	if _, ok := f.Uint64(&a); ok {
		t.Error("Uint64 should report overflow for 2^128")
	}
}

func TestCmp(t *testing.T) {
	f := NewBN254Fr()
	var a, b Element
	f.SetUint64(&a, 5)
	f.SetUint64(&b, 9)
	if f.Cmp(&a, &b) != -1 || f.Cmp(&b, &a) != 1 || f.Cmp(&a, &a) != 0 {
		t.Error("Cmp ordering wrong")
	}
}

func TestOpCount(t *testing.T) {
	f := NewBN254Fr()
	var c OpCount
	f.Count = &c
	var a, b, z Element
	f.SetUint64(&a, 3)
	f.SetUint64(&b, 4)
	c.Reset()
	f.Mul(&z, &a, &b)
	f.Add(&z, &a, &b)
	f.Sub(&z, &a, &b)
	f.Square(&z, &a)
	// Inverse is implemented as an exponentiation, so it contributes its
	// internal multiplications and squarings to the tally — exactly what an
	// instruction-level profiler would observe.
	f.Inverse(&z, &a)
	if c.Mul < 1 || c.Add != 1 || c.Sub != 1 || c.Sq < 1 || c.Inv != 1 {
		t.Errorf("unexpected op counts: %+v", c)
	}
	var sum OpCount
	c.AddTo(&sum)
	if sum.Total() != c.Total() {
		t.Errorf("AddTo/Total mismatch")
	}
}

// Property-based tests on algebraic laws.

func TestQuickFieldLaws(t *testing.T) {
	f := NewBN254Fr()
	rng := NewRNG(1234)
	gen := func() Element {
		var e Element
		f.Random(&e, rng)
		return e
	}
	// Commutativity and associativity of multiplication, distributivity.
	prop := func(seed uint64) bool {
		a, b, c := gen(), gen(), gen()
		var ab, ba Element
		f.Mul(&ab, &a, &b)
		f.Mul(&ba, &b, &a)
		if !f.Equal(&ab, &ba) {
			return false
		}
		var abc1, abc2, t1 Element
		f.Mul(&t1, &a, &b)
		f.Mul(&abc1, &t1, &c)
		f.Mul(&t1, &b, &c)
		f.Mul(&abc2, &a, &t1)
		if !f.Equal(&abc1, &abc2) {
			return false
		}
		var bc, aTimesSum, sum, prod1, prod2 Element
		f.Add(&bc, &b, &c)
		f.Mul(&aTimesSum, &a, &bc)
		f.Mul(&prod1, &a, &b)
		f.Mul(&prod2, &a, &c)
		f.Add(&sum, &prod1, &prod2)
		return f.Equal(&aTimesSum, &sum)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMontgomeryRoundTrip(t *testing.T) {
	for _, f := range testFields {
		f := f
		prop := func(lo, hi uint64) bool {
			v := new(big.Int).SetUint64(hi)
			v.Lsh(v, 64)
			v.Or(v, new(big.Int).SetUint64(lo))
			var e Element
			f.SetBigInt(&e, v)
			return f.BigInt(&e).Cmp(v) == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if fv := r.Float64(); fv < 0 || fv >= 1 {
			t.Fatalf("Float64 out of range: %v", fv)
		}
	}
}
