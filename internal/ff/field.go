// Package ff implements prime-field arithmetic for the fields used by the
// zk-SNARK protocol: the base and scalar fields of the BN254 (a.k.a. BN128)
// and BLS12-381 elliptic curves.
//
// Elements are stored in Montgomery form as fixed-size little-endian limb
// arrays. A Field value carries the modulus and the Montgomery constants;
// all arithmetic is performed through Field methods so that one generic
// CIOS implementation serves both 4-limb (≤256-bit) and 6-limb (≤384-bit)
// moduli.
//
// When a Field's Count pointer is non-nil, arithmetic operations increment
// the corresponding operation counters. This is the lowest layer of the
// instrumentation stack used by the performance-analysis framework; it is
// a single predictable branch per operation and is disabled by default.
package ff

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxLimbs is the maximum number of 64-bit limbs an Element can hold.
// BLS12-381's base field needs 6 limbs (381 bits); every other field used
// here fits in 4.
const MaxLimbs = 6

// Element is a prime-field element in Montgomery representation.
// The interpretation of the limbs depends on the owning Field; elements
// from different fields must never be mixed.
type Element [MaxLimbs]uint64

// OpCount tallies field operations. It is deliberately a plain struct with
// no synchronization: instrumented runs are single-threaded (mirroring how
// binary-instrumentation tools such as DynamoRIO serialize execution).
type OpCount struct {
	Mul uint64 // Montgomery multiplications
	Sq  uint64 // squarings
	Add uint64 // additions
	Sub uint64 // subtractions and negations
	Inv uint64 // inversions
}

// Total returns the total number of counted field operations.
func (c *OpCount) Total() uint64 { return c.Mul + c.Sq + c.Add + c.Sub + c.Inv }

// Reset zeroes all counters.
func (c *OpCount) Reset() { *c = OpCount{} }

// AddTo accumulates c into dst.
func (c *OpCount) AddTo(dst *OpCount) {
	dst.Mul += c.Mul
	dst.Sq += c.Sq
	dst.Add += c.Add
	dst.Sub += c.Sub
	dst.Inv += c.Inv
}

// Field describes a prime field GF(p) and owns all arithmetic on its
// elements. Construct one with NewField; the Montgomery constants are
// derived from the modulus at construction time.
type Field struct {
	Name string // human-readable name, e.g. "bn254.Fr"

	n    int      // number of active limbs
	p    Element  // modulus
	inv  uint64   // -p^{-1} mod 2^64
	r    Element  // 2^{64n} mod p (Montgomery R, i.e. One)
	r2   Element  // R^2 mod p, used for conversion into Montgomery form
	pBig *big.Int // modulus as big.Int
	bits int      // bit length of p

	pm2   []uint64 // p-2, little-endian limbs (Fermat inversion exponent)
	sqExp []uint64 // (p+1)/4 when p ≡ 3 (mod 4), else nil

	// Count, when non-nil, receives operation tallies. See OpCount.
	Count *OpCount
}

// NewField constructs a Field from a decimal or 0x-prefixed hexadecimal
// modulus string. It panics on malformed input or a modulus that does not
// fit MaxLimbs, since field moduli are compile-time constants in practice.
func NewField(name, modulus string) *Field {
	p, ok := new(big.Int).SetString(modulus, 0)
	if !ok {
		panic(fmt.Sprintf("ff: invalid modulus for %s", name))
	}
	if p.Sign() <= 0 || p.Bit(0) == 0 {
		panic(fmt.Sprintf("ff: modulus for %s must be an odd prime", name))
	}
	nbits := p.BitLen()
	n := (nbits + 63) / 64
	if n > MaxLimbs {
		panic(fmt.Sprintf("ff: modulus for %s needs %d limbs (max %d)", name, n, MaxLimbs))
	}
	f := &Field{Name: name, n: n, pBig: new(big.Int).Set(p), bits: nbits}
	bigToLimbs(p, f.p[:n])

	// inv = -p^{-1} mod 2^64 via Newton iteration on the low limb.
	pinv := f.p[0] // p^{-1} mod 2 == 1 since p odd
	for i := 0; i < 5; i++ {
		pinv *= 2 - f.p[0]*pinv
	}
	f.inv = -pinv

	one := big.NewInt(1)
	r := new(big.Int).Lsh(one, uint(64*n))
	r.Mod(r, p)
	bigToLimbs(r, f.r[:n])
	r2 := new(big.Int).Lsh(one, uint(128*n))
	r2.Mod(r2, p)
	bigToLimbs(r2, f.r2[:n])

	pm2 := new(big.Int).Sub(p, big.NewInt(2))
	f.pm2 = make([]uint64, n)
	bigToLimbs(pm2, f.pm2)

	if new(big.Int).And(p, big.NewInt(3)).Int64() == 3 {
		e := new(big.Int).Add(p, one)
		e.Rsh(e, 2)
		f.sqExp = make([]uint64, n)
		bigToLimbs(e, f.sqExp)
	}
	return f
}

// NumLimbs returns the number of active 64-bit limbs of the field.
func (f *Field) NumLimbs() int { return f.n }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.bits }

// Modulus returns a copy of the modulus as a big.Int.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.pBig) }

// ByteLen returns the canonical serialized length of an element in bytes.
func (f *Field) ByteLen() int { return f.n * 8 }

// bigToLimbs writes v (which must be non-negative and fit) into dst as
// little-endian 64-bit limbs, zero-padding the tail.
func bigToLimbs(v *big.Int, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	words := v.Bits()
	for i, w := range words {
		if i >= len(dst) {
			panic("ff: value too large for limb slice")
		}
		dst[i] = uint64(w)
	}
}

// limbsToBig converts little-endian limbs to a big.Int.
func limbsToBig(src []uint64) *big.Int {
	v := new(big.Int)
	for i := len(src) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(src[i]))
	}
	return v
}

// Zero sets z to 0 and returns it.
func (f *Field) Zero(z *Element) *Element {
	for i := range z {
		z[i] = 0
	}
	return z
}

// One sets z to the multiplicative identity (Montgomery R) and returns it.
func (f *Field) One(z *Element) *Element {
	*z = f.r
	return z
}

// IsZero reports whether x == 0.
func (f *Field) IsZero(x *Element) bool {
	var acc uint64
	for i := 0; i < f.n; i++ {
		acc |= x[i]
	}
	return acc == 0
}

// IsOne reports whether x == 1.
func (f *Field) IsOne(x *Element) bool { return f.Equal(x, &f.r) }

// Equal reports whether x == y.
func (f *Field) Equal(x, y *Element) bool {
	var acc uint64
	for i := 0; i < f.n; i++ {
		acc |= x[i] ^ y[i]
	}
	return acc == 0
}

// Set copies x into z and returns z.
func (f *Field) Set(z, x *Element) *Element {
	*z = *x
	return z
}

// SetUint64 sets z to the field element v and returns z.
func (f *Field) SetUint64(z *Element, v uint64) *Element {
	f.Zero(z)
	z[0] = v
	f.toMont(z)
	return z
}

// SetBigInt sets z to v mod p and returns z.
func (f *Field) SetBigInt(z *Element, v *big.Int) *Element {
	t := new(big.Int).Mod(v, f.pBig)
	f.Zero(z)
	bigToLimbs(t, z[:f.n])
	f.toMont(z)
	return z
}

// SetString sets z from a decimal or 0x-hex string, reducing mod p.
func (f *Field) SetString(z *Element, s string) (*Element, error) {
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return nil, fmt.Errorf("ff: cannot parse %q as an integer", s)
	}
	return f.SetBigInt(z, v), nil
}

// MustElement parses s as a field element, panicking on error. It is meant
// for compile-time curve constants.
func (f *Field) MustElement(s string) Element {
	var z Element
	if _, err := f.SetString(&z, s); err != nil {
		panic(err)
	}
	return z
}

// BigInt returns the canonical (non-Montgomery) value of x.
func (f *Field) BigInt(x *Element) *big.Int {
	var t Element = *x
	f.fromMont(&t)
	return limbsToBig(t[:f.n])
}

// BigIntInto writes the canonical (non-Montgomery) value of x into z,
// reusing z's storage. The GLV decomposition calls this once per scalar, so
// the per-call big.Int allocation of BigInt would dominate its cost.
func (f *Field) BigIntInto(z *big.Int, x *Element) *big.Int {
	var t Element = *x
	f.fromMont(&t)
	words := z.Bits()
	if cap(words) < f.n {
		words = make([]big.Word, f.n)
	}
	words = words[:f.n]
	for i := 0; i < f.n; i++ {
		words[i] = big.Word(t[i])
	}
	return z.SetBits(words)
}

// Uint64 returns the canonical value of x truncated to 64 bits, along with
// whether x fits in a uint64.
func (f *Field) Uint64(x *Element) (uint64, bool) {
	var t Element = *x
	f.fromMont(&t)
	var hi uint64
	for i := 1; i < f.n; i++ {
		hi |= t[i]
	}
	return t[0], hi == 0
}

// String renders x in canonical decimal form.
func (f *Field) String(x *Element) string { return f.BigInt(x).String() }

// Bytes serializes x canonically as big-endian bytes of length ByteLen.
func (f *Field) Bytes(x *Element) []byte {
	var t Element = *x
	f.fromMont(&t)
	out := make([]byte, f.ByteLen())
	for i := 0; i < f.n; i++ {
		limb := t[i]
		for b := 0; b < 8; b++ {
			out[len(out)-1-(i*8+b)] = byte(limb >> (8 * b))
		}
	}
	return out
}

// CanonicalLimbs writes the canonical (non-Montgomery) value of x into dst
// as little-endian 64-bit limbs. len(dst) must be at least NumLimbs. It is
// the allocation-free path the MSM digit decomposition uses: one Montgomery
// reduction per scalar, no byte round-trip.
func (f *Field) CanonicalLimbs(x *Element, dst []uint64) {
	var t Element = *x
	f.fromMont(&t)
	copy(dst, t[:f.n])
}

// SetBytes deserializes big-endian bytes (as produced by Bytes) into z,
// reducing mod p.
func (f *Field) SetBytes(z *Element, data []byte) *Element {
	v := new(big.Int).SetBytes(data)
	return f.SetBigInt(z, v)
}

// toMont converts a canonical-form element (raw limbs) to Montgomery form.
func (f *Field) toMont(z *Element) { f.mulNoCount(z, z, &f.r2) }

// fromMont converts z from Montgomery form to canonical limbs in place.
func (f *Field) fromMont(z *Element) {
	var one Element
	one[0] = 1
	// Montgomery-multiplying by the raw value 1 divides by R.
	f.mulNoCount(z, z, &one)
}

// Cmp compares the canonical values of x and y, returning -1, 0 or +1.
func (f *Field) Cmp(x, y *Element) int {
	var a, b Element
	a, b = *x, *y
	f.fromMont(&a)
	f.fromMont(&b)
	for i := f.n - 1; i >= 0; i-- {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Add sets z = x + y mod p.
func (f *Field) Add(z, x, y *Element) *Element {
	if f.Count != nil {
		f.Count.Add++
	}
	var carry uint64
	n := f.n
	for i := 0; i < n; i++ {
		z[i], carry = bits.Add64(x[i], y[i], carry)
	}
	f.reduceOnce(z, carry)
	return z
}

// Double sets z = 2x mod p.
func (f *Field) Double(z, x *Element) *Element { return f.Add(z, x, x) }

// Sub sets z = x - y mod p.
func (f *Field) Sub(z, x, y *Element) *Element {
	if f.Count != nil {
		f.Count.Sub++
	}
	var borrow uint64
	n := f.n
	for i := 0; i < n; i++ {
		z[i], borrow = bits.Sub64(x[i], y[i], borrow)
	}
	if borrow != 0 {
		var carry uint64
		for i := 0; i < n; i++ {
			z[i], carry = bits.Add64(z[i], f.p[i], carry)
		}
	}
	return z
}

// Neg sets z = -x mod p.
func (f *Field) Neg(z, x *Element) *Element {
	if f.IsZero(x) {
		return f.Set(z, x)
	}
	if f.Count != nil {
		f.Count.Sub++
	}
	var borrow uint64
	n := f.n
	for i := 0; i < n; i++ {
		z[i], borrow = bits.Sub64(f.p[i], x[i], borrow)
	}
	return z
}

// reduceOnce conditionally subtracts p so that z < p, given an incoming
// carry bit from an addition.
func (f *Field) reduceOnce(z *Element, carry uint64) {
	n := f.n
	if carry == 0 && !f.geP(z) {
		return
	}
	var borrow uint64
	for i := 0; i < n; i++ {
		z[i], borrow = bits.Sub64(z[i], f.p[i], borrow)
	}
	_ = borrow
}

// geP reports whether the raw limb value of z is >= p.
func (f *Field) geP(z *Element) bool {
	for i := f.n - 1; i >= 0; i-- {
		switch {
		case z[i] > f.p[i]:
			return true
		case z[i] < f.p[i]:
			return false
		}
	}
	return true
}
