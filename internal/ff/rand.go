package ff

import "math/big"

// RNG is a small deterministic pseudo-random generator (SplitMix64) used
// for reproducible workload generation and test vectors. It is NOT
// cryptographically secure; the analysis framework needs determinism, not
// secrecy — the paper's toxic-waste randomness is irrelevant to the
// performance being characterized.
type RNG struct{ state uint64 }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("ff: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Random sets z to a pseudo-random field element drawn from rng.
func (f *Field) Random(z *Element, rng *RNG) *Element {
	v := new(big.Int)
	limbs := make([]uint64, f.n+1)
	for i := range limbs {
		limbs[i] = rng.Uint64()
	}
	v = limbsToBig(limbs)
	return f.SetBigInt(z, v)
}

// RandomNonZero sets z to a pseudo-random nonzero field element.
func (f *Field) RandomNonZero(z *Element, rng *RNG) *Element {
	for {
		f.Random(z, rng)
		if !f.IsZero(z) {
			return z
		}
	}
}
