package ff

import "math/big"

// expLimbs sets z = x^e mod p where e is given as little-endian 64-bit
// limbs (canonical integer, not Montgomery form). Plain left-to-right
// square-and-multiply; exponents here are field-sized so the ~1.5·bits
// multiplications are acceptable.
func (f *Field) expLimbs(z, x *Element, e []uint64) *Element {
	var acc Element
	f.One(&acc)
	started := false
	for i := len(e) - 1; i >= 0; i-- {
		w := e[i]
		for b := 63; b >= 0; b-- {
			if started {
				f.Square(&acc, &acc)
			}
			if w>>uint(b)&1 == 1 {
				if started {
					f.Mul(&acc, &acc, x)
				} else {
					f.Set(&acc, x)
					started = true
				}
			}
		}
	}
	if !started {
		f.One(&acc)
	}
	*z = acc
	return z
}

// Exp sets z = x^e mod p for a non-negative big.Int exponent.
func (f *Field) Exp(z, x *Element, e *big.Int) *Element {
	if e.Sign() < 0 {
		var inv Element
		f.Inverse(&inv, x)
		return f.Exp(z, &inv, new(big.Int).Neg(e))
	}
	words := e.Bits()
	limbs := make([]uint64, len(words))
	for i, w := range words {
		limbs[i] = uint64(w)
	}
	return f.expLimbs(z, x, limbs)
}

// ExpUint64 sets z = x^e mod p for a machine-word exponent.
func (f *Field) ExpUint64(z, x *Element, e uint64) *Element {
	return f.expLimbs(z, x, []uint64{e})
}

// Inverse sets z = x^{-1} mod p via Fermat's little theorem (x^{p-2}).
// Inverting zero yields zero, matching the convention of most pairing
// libraries.
func (f *Field) Inverse(z, x *Element) *Element {
	if f.IsZero(x) {
		return f.Zero(z)
	}
	if f.Count != nil {
		f.Count.Inv++
	}
	return f.expLimbs(z, x, f.pm2)
}

// Sqrt sets z to a square root of x if one exists and returns true,
// otherwise returns false and leaves z unspecified. It uses the
// p ≡ 3 (mod 4) shortcut when available and generic Tonelli–Shanks
// otherwise.
func (f *Field) Sqrt(z, x *Element) bool {
	if f.IsZero(x) {
		f.Zero(z)
		return true
	}
	var cand Element
	if f.sqExp != nil {
		f.expLimbs(&cand, x, f.sqExp)
	} else {
		f.tonelliShanks(&cand, x)
	}
	var sq Element
	f.Square(&sq, &cand)
	if !f.Equal(&sq, x) {
		return false
	}
	*z = cand
	return true
}

// Legendre returns 1 if x is a nonzero quadratic residue, -1 if it is a
// non-residue, and 0 if x == 0.
func (f *Field) Legendre(x *Element) int {
	if f.IsZero(x) {
		return 0
	}
	e := new(big.Int).Sub(f.pBig, big.NewInt(1))
	e.Rsh(e, 1)
	var r Element
	f.Exp(&r, x, e)
	if f.IsOne(&r) {
		return 1
	}
	return -1
}

// tonelliShanks computes a candidate square root for odd primes with
// p ≡ 1 (mod 4). The caller verifies the candidate.
func (f *Field) tonelliShanks(z, x *Element) {
	// Write p-1 = q * 2^s with q odd.
	q := new(big.Int).Sub(f.pBig, big.NewInt(1))
	s := 0
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	// Find a non-residue n deterministically.
	var nr Element
	for v := uint64(2); ; v++ {
		f.SetUint64(&nr, v)
		if f.Legendre(&nr) == -1 {
			break
		}
	}
	var c, t, r Element
	f.Exp(&c, &nr, q) // c = n^q
	f.Exp(&t, x, q)   // t = x^q
	e := new(big.Int).Add(q, big.NewInt(1))
	e.Rsh(e, 1)
	f.Exp(&r, x, e) // r = x^{(q+1)/2}
	m := s
	for !f.IsOne(&t) {
		// Find least i such that t^{2^i} == 1.
		var tt Element
		f.Set(&tt, &t)
		i := 0
		for !f.IsOne(&tt) {
			f.Square(&tt, &tt)
			i++
			if i == m {
				// Not a residue; caller's verification will fail.
				*z = r
				return
			}
		}
		var b Element
		f.Set(&b, &c)
		for j := 0; j < m-i-1; j++ {
			f.Square(&b, &b)
		}
		f.Mul(&r, &r, &b)
		f.Square(&c, &b)
		f.Mul(&t, &t, &c)
		m = i
	}
	*z = r
}

// BatchInverse inverts every nonzero element of xs in place using the
// Montgomery batch-inversion trick: 3(n-1) multiplications plus a single
// inversion. Zero entries are left as zero.
func (f *Field) BatchInverse(xs []Element) {
	n := len(xs)
	if n == 0 {
		return
	}
	prefix := make([]Element, n)
	var acc Element
	f.One(&acc)
	for i := range xs {
		prefix[i] = acc
		if !f.IsZero(&xs[i]) {
			f.Mul(&acc, &acc, &xs[i])
		}
	}
	var inv Element
	f.Inverse(&inv, &acc)
	for i := n - 1; i >= 0; i-- {
		if f.IsZero(&xs[i]) {
			continue
		}
		var tmp Element
		f.Mul(&tmp, &inv, &prefix[i])
		f.Mul(&inv, &inv, &xs[i])
		xs[i] = tmp
	}
}
