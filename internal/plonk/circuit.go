package plonk

import (
	"fmt"
	"math/big"

	"zkperf/internal/ff"
)

// PLONK arithmetizes circuits as rows of the constraint
//
//	qL·a + qR·b + qO·c + qM·a·b + qC + PI = 0
//
// over three wire columns a, b, c, with copy constraints (expressed as a
// permutation over the 3n wire slots) tying slots that carry the same
// variable.

// Var is a circuit variable (an index into the witness assignment).
type Var int

// Circuit is a gate-level PLONK circuit under construction.
type Circuit struct {
	fr *ff.Field

	QL, QR, QO, QM, QC []ff.Element
	A, B, C            []Var // wire variable per gate slot

	nVars  int
	nPub   int // public-input gates occupy the first nPub rows
	frozen bool
}

// NewCircuit returns an empty circuit over fr.
func NewCircuit(fr *ff.Field) *Circuit {
	return &Circuit{fr: fr}
}

// NumGates returns the current gate count.
func (c *Circuit) NumGates() int { return len(c.QL) }

// NumPublic returns the number of public inputs.
func (c *Circuit) NumPublic() int { return c.nPub }

// NewVar allocates a fresh variable.
func (c *Circuit) NewVar() Var {
	c.nVars++
	return Var(c.nVars - 1)
}

// PublicInput allocates a variable bound to the next public input. Public
// inputs must be declared before any gate is added (they occupy the first
// rows, where the verifier adds the PI polynomial).
func (c *Circuit) PublicInput() Var {
	if c.NumGates() != c.nPub {
		panic("plonk: public inputs must be declared before gates")
	}
	v := c.NewVar()
	// Row: 1·a + PI = 0 with PI = −x, forcing a = x.
	var one ff.Element
	c.fr.One(&one)
	c.appendGate(one, zero(c.fr), zero(c.fr), zero(c.fr), zero(c.fr), v, v, v)
	c.nPub++
	return v
}

func zero(fr *ff.Field) ff.Element { var z ff.Element; return z }

func (c *Circuit) appendGate(ql, qr, qo, qm, qc ff.Element, a, b, o Var) {
	c.QL = append(c.QL, ql)
	c.QR = append(c.QR, qr)
	c.QO = append(c.QO, qo)
	c.QM = append(c.QM, qm)
	c.QC = append(c.QC, qc)
	c.A = append(c.A, a)
	c.B = append(c.B, b)
	c.C = append(c.C, o)
}

// AddGate appends a fully general gate.
func (c *Circuit) AddGate(ql, qr, qo, qm, qc ff.Element, a, b, o Var) {
	c.appendGate(ql, qr, qo, qm, qc, a, b, o)
}

// Mul appends o = a·b and returns o.
func (c *Circuit) Mul(a, b Var) Var {
	o := c.NewVar()
	fr := c.fr
	var one, negOne ff.Element
	fr.One(&one)
	fr.Neg(&negOne, &one)
	c.appendGate(zero(fr), zero(fr), negOne, one, zero(fr), a, b, o)
	return o
}

// Add appends o = a + b and returns o.
func (c *Circuit) Add(a, b Var) Var {
	o := c.NewVar()
	fr := c.fr
	var one, negOne ff.Element
	fr.One(&one)
	fr.Neg(&negOne, &one)
	c.appendGate(one, one, negOne, zero(fr), zero(fr), a, b, o)
	return o
}

// AssertEqualConst constrains a == k.
func (c *Circuit) AssertEqualConst(a Var, k *big.Int) {
	fr := c.fr
	var one, negK ff.Element
	fr.One(&one)
	fr.SetBigInt(&negK, k)
	fr.Neg(&negK, &negK)
	c.appendGate(one, zero(fr), zero(fr), zero(fr), negK, a, a, a)
}

// Assignment holds per-variable witness values.
type Assignment []ff.Element

// NewAssignment returns a zeroed assignment sized for the circuit.
func (c *Circuit) NewAssignment() Assignment {
	return make(Assignment, c.nVars)
}

// wireValues expands the assignment to the three wire columns, padded to
// the domain size n.
func (c *Circuit) wireValues(w Assignment, n int) (a, b, o []ff.Element, err error) {
	if len(w) != c.nVars {
		return nil, nil, nil, fmt.Errorf("plonk: assignment has %d values, circuit has %d variables", len(w), c.nVars)
	}
	a = make([]ff.Element, n)
	b = make([]ff.Element, n)
	o = make([]ff.Element, n)
	for i := 0; i < c.NumGates(); i++ {
		a[i] = w[c.A[i]]
		b[i] = w[c.B[i]]
		o[i] = w[c.C[i]]
	}
	return a, b, o, nil
}

// checkGates verifies the assignment satisfies every gate (with the
// public-input rows receiving their PI values). Used in tests and as a
// prover-side sanity check.
func (c *Circuit) checkGates(w Assignment, public []ff.Element) error {
	fr := c.fr
	if len(public) != c.nPub {
		return fmt.Errorf("plonk: %d public values for %d public inputs", len(public), c.nPub)
	}
	var t1, t2, acc ff.Element
	for i := 0; i < c.NumGates(); i++ {
		a, b, o := w[c.A[i]], w[c.B[i]], w[c.C[i]]
		fr.Mul(&acc, &c.QL[i], &a)
		fr.Mul(&t1, &c.QR[i], &b)
		fr.Add(&acc, &acc, &t1)
		fr.Mul(&t1, &c.QO[i], &o)
		fr.Add(&acc, &acc, &t1)
		fr.Mul(&t1, &c.QM[i], &a)
		fr.Mul(&t2, &t1, &b)
		fr.Add(&acc, &acc, &t2)
		fr.Add(&acc, &acc, &c.QC[i])
		if i < c.nPub {
			fr.Sub(&acc, &acc, &public[i])
		}
		if !fr.IsZero(&acc) {
			return fmt.Errorf("plonk: gate %d not satisfied", i)
		}
	}
	return nil
}

// ExponentiateCircuit builds the paper's y = x^e benchmark as a PLONK
// circuit: x private, y public. Returns the circuit and the variables.
func ExponentiateCircuit(fr *ff.Field, e int) (*Circuit, Var, Var) {
	c := NewCircuit(fr)
	y := c.PublicInput()
	x := c.NewVar()
	w := x
	for i := 1; i < e; i++ {
		w = c.Mul(w, x)
	}
	// y == w: 1·a − 1·b = 0.
	var one, negOne ff.Element
	fr.One(&one)
	fr.Neg(&negOne, &one)
	c.appendGate(one, negOne, zero(fr), zero(fr), zero(fr), y, w, w)
	return c, x, y
}
