package plonk

import (
	"io"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
)

// Proof serialization: 7 G1 points, 16 scalars and 2 opening proofs in a
// fixed order.

// proofPoints lists the proof's commitments and openings in wire order.
func (p *Proof) proofPoints() []*curve.G1Affine {
	return []*curve.G1Affine{
		&p.CA, &p.CB, &p.CC, &p.CZ, &p.CTlo, &p.CTmid, &p.CThi,
		&p.Wz, &p.Wzw,
	}
}

// proofScalars lists the proof's evaluations in wire order.
func (p *Proof) proofScalars() []*ff.Element {
	return []*ff.Element{
		&p.EvA, &p.EvB, &p.EvC, &p.EvZ, &p.EvZw,
		&p.EvTlo, &p.EvTmid, &p.EvThi,
		&p.EvQl, &p.EvQr, &p.EvQo, &p.EvQm, &p.EvQc,
		&p.EvS1, &p.EvS2, &p.EvS3,
	}
}

// Serialize writes the proof.
func (p *Proof) Serialize(w io.Writer, c *curve.Curve) error {
	for _, pt := range p.proofPoints() {
		if _, err := w.Write(c.G1Bytes(pt)); err != nil {
			return err
		}
	}
	for _, e := range p.proofScalars() {
		if _, err := w.Write(c.Fr.Bytes(e)); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize reads a proof written by Serialize, validating that every
// point lies on the curve.
func (p *Proof) Deserialize(r io.Reader, c *curve.Curve) error {
	buf := make([]byte, c.G1EncodedLen())
	for _, pt := range p.proofPoints() {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		if err := c.G1SetBytes(pt, buf); err != nil {
			return err
		}
	}
	sbuf := make([]byte, c.Fr.ByteLen())
	for _, e := range p.proofScalars() {
		if _, err := io.ReadFull(r, sbuf); err != nil {
			return err
		}
		c.Fr.SetBytes(e, sbuf)
	}
	return nil
}

// EncodedLen returns the byte length of a serialized proof on curve c.
func (p *Proof) EncodedLen(c *curve.Curve) int {
	return 9*c.G1EncodedLen() + 16*c.Fr.ByteLen()
}
