package plonk

import (
	"fmt"
	"io"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/kzg"
	"zkperf/internal/poly"
)

// Proof serialization: 7 G1 points, 16 scalars and 2 opening proofs in a
// fixed order.

// proofPoints lists the proof's commitments and openings in wire order.
func (p *Proof) proofPoints() []*curve.G1Affine {
	return []*curve.G1Affine{
		&p.CA, &p.CB, &p.CC, &p.CZ, &p.CTlo, &p.CTmid, &p.CThi,
		&p.Wz, &p.Wzw,
	}
}

// proofScalars lists the proof's evaluations in wire order.
func (p *Proof) proofScalars() []*ff.Element {
	return []*ff.Element{
		&p.EvA, &p.EvB, &p.EvC, &p.EvZ, &p.EvZw,
		&p.EvTlo, &p.EvTmid, &p.EvThi,
		&p.EvQl, &p.EvQr, &p.EvQo, &p.EvQm, &p.EvQc,
		&p.EvS1, &p.EvS2, &p.EvS3,
	}
}

// Serialize writes the proof.
func (p *Proof) Serialize(w io.Writer, c *curve.Curve) error {
	for _, pt := range p.proofPoints() {
		if _, err := w.Write(c.G1Bytes(pt)); err != nil {
			return err
		}
	}
	for _, e := range p.proofScalars() {
		if _, err := w.Write(c.Fr.Bytes(e)); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize reads a proof written by Serialize, validating that every
// point lies on the curve.
func (p *Proof) Deserialize(r io.Reader, c *curve.Curve) error {
	buf := make([]byte, c.G1EncodedLen())
	for _, pt := range p.proofPoints() {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		if err := c.G1SetBytes(pt, buf); err != nil {
			return err
		}
	}
	sbuf := make([]byte, c.Fr.ByteLen())
	for _, e := range p.proofScalars() {
		if _, err := io.ReadFull(r, sbuf); err != nil {
			return err
		}
		c.Fr.SetBytes(e, sbuf)
	}
	return nil
}

// EncodedLen returns the byte length of a serialized proof on curve c.
func (p *Proof) EncodedLen(c *curve.Curve) int {
	return 9*c.G1EncodedLen() + 16*c.Fr.ByteLen()
}

// Serialize writes the proving key's universal part: the domain size and
// the SRS. PLONK's setup is universal — the selectors, permutation and
// their commitments are deterministic functions of (circuit, SRS) — so
// the circuit-specific tail is rebuilt by Engine.Preprocess after
// Deserialize instead of travelling on the wire. This is the structural
// asymmetry with Groth16, whose .zkey must carry every circuit-specific
// point.
func (pk *ProvingKey) Serialize(w io.Writer, c *curve.Curve) error {
	if err := writeU64(w, uint64(pk.Domain.N)); err != nil {
		return err
	}
	return pk.SRS.Encode(w)
}

// Deserialize reads a proving key written by Serialize. Only the SRS and
// domain size are restored; callers must run Engine.Preprocess with the
// original circuit to obtain a usable key.
func (pk *ProvingKey) Deserialize(r io.Reader, c *curve.Curve) error {
	n, err := readU64(r)
	if err != nil {
		return err
	}
	srs, err := kzg.ReadSRS(r, c)
	if err != nil {
		return err
	}
	// Compare in uint64: a hostile n near 2^64 must not wrap negative
	// through int(n) and slip past the size check.
	if n >= uint64(len(srs.G1)) {
		return fmt.Errorf("plonk: SRS size %d below domain %d", len(srs.G1), n)
	}
	*pk = ProvingKey{SRS: srs}
	pk.Domain = &poly.Domain{N: int(n)}
	return nil
}

// vkPoints lists the verifying key's commitments in wire order.
func (vk *VerifyingKey) vkPoints() []*curve.G1Affine {
	return []*curve.G1Affine{
		&vk.CQl, &vk.CQr, &vk.CQo, &vk.CQm, &vk.CQc,
		&vk.CS1, &vk.CS2, &vk.CS3,
	}
}

// Serialize writes the verifying key. The SRS contributes only [τ]G2 —
// the pairing check never touches the G1 powers.
func (vk *VerifyingKey) Serialize(w io.Writer, c *curve.Curve) error {
	for _, v := range []uint64{uint64(vk.N), uint64(vk.NumPub)} {
		if err := writeU64(w, v); err != nil {
			return err
		}
	}
	for _, e := range []*ff.Element{&vk.K1, &vk.K2, &vk.Omega} {
		if _, err := w.Write(c.Fr.Bytes(e)); err != nil {
			return err
		}
	}
	for _, pt := range vk.vkPoints() {
		if _, err := w.Write(c.G1Bytes(pt)); err != nil {
			return err
		}
	}
	_, err := w.Write(c.G2Bytes(&vk.SRS.G2Tau))
	return err
}

// Deserialize reads a verifying key written by Serialize.
func (vk *VerifyingKey) Deserialize(r io.Reader, c *curve.Curve) error {
	n, err := readU64(r)
	if err != nil {
		return err
	}
	numPub, err := readU64(r)
	if err != nil {
		return err
	}
	// Both sizes are attacker-controlled on the wire: bound them before
	// the int conversions so they can neither wrap negative nor size a
	// later allocation absurdly.
	const maxDomain = 1 << 32
	if n > maxDomain || numPub > n {
		return fmt.Errorf("plonk: malformed verifying key sizes (n=%d, pub=%d)", n, numPub)
	}
	vk.N, vk.NumPub = int(n), int(numPub)
	sbuf := make([]byte, c.Fr.ByteLen())
	for _, e := range []*ff.Element{&vk.K1, &vk.K2, &vk.Omega} {
		if _, err := io.ReadFull(r, sbuf); err != nil {
			return err
		}
		c.Fr.SetBytes(e, sbuf)
	}
	g1buf := make([]byte, c.G1EncodedLen())
	for _, pt := range vk.vkPoints() {
		if _, err := io.ReadFull(r, g1buf); err != nil {
			return err
		}
		if err := c.G1SetBytes(pt, g1buf); err != nil {
			return err
		}
	}
	vk.SRS = &kzg.SRS{C: c}
	g2buf := make([]byte, c.G2EncodedLen())
	if _, err := io.ReadFull(r, g2buf); err != nil {
		return err
	}
	return c.G2SetBytes(&vk.SRS.G2Tau, g2buf)
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
