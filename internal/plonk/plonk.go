package plonk

import (
	"context"
	"errors"
	"fmt"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/kzg"
	"zkperf/internal/pairing"
	"zkperf/internal/parallel"
	"zkperf/internal/poly"
	"zkperf/internal/telemetry"
)

// ErrInvalidProof is returned by Verify when a proof fails one of the
// checks — the constraint identity at ζ or a KZG opening. Wrapped so
// callers can errors.Is it apart from malformed-input errors.
var ErrInvalidProof = errors.New("plonk: invalid proof")

// ProvingKey holds the preprocessed circuit: selector and permutation
// polynomials (coefficient form), the evaluation domain and the SRS.
type ProvingKey struct {
	C      *Circuit
	Domain *poly.Domain
	SRS    *kzg.SRS
	K1, K2 ff.Element

	Ql, Qr, Qo, Qm, Qc []ff.Element // selector polynomials
	S1, S2, S3         []ff.Element // permutation polynomials
	s1v, s2v, s3v      []ff.Element // σ values on H (prover's grand product)
}

// VerifyingKey holds the commitments to the preprocessed polynomials.
type VerifyingKey struct {
	N      int
	NumPub int
	K1, K2 ff.Element
	Omega  ff.Element

	CQl, CQr, CQo, CQm, CQc curve.G1Affine
	CS1, CS2, CS3           curve.G1Affine

	SRS *kzg.SRS
}

// Proof is a PLONK proof in the open-everything variant: 7 commitments,
// 16 evaluations and 2 opening proofs.
type Proof struct {
	CA, CB, CC        curve.G1Affine
	CZ                curve.G1Affine
	CTlo, CTmid, CThi curve.G1Affine

	// Evaluations at ζ (and z at ζω), in transcript order.
	EvA, EvB, EvC                ff.Element
	EvZ, EvZw                    ff.Element
	EvTlo, EvTmid, EvThi         ff.Element
	EvQl, EvQr, EvQo, EvQm, EvQc ff.Element
	EvS1, EvS2, EvS3             ff.Element

	Wz, Wzw curve.G1Affine // KZG openings at ζ and ζω
}

// Engine runs PLONK on one curve.
type Engine struct {
	Curve *curve.Curve
	Pair  *pairing.Engine

	// Threads bounds the parallelism of the MSM commits and the quotient
	// coset evaluation. 1 disables parallelism.
	Threads int
}

// NewEngine creates a PLONK engine.
func NewEngine(c *curve.Curve) *Engine {
	return &Engine{Curve: c, Pair: pairing.NewEngine(c), Threads: 1}
}

// threads returns the effective worker count for one call: a per-job
// thread budget carried by ctx (granted by the serving layer's workload
// scheduler) overrides the engine's configured Threads.
func (e *Engine) threads(ctx context.Context) int {
	n := parallel.ThreadBudget(ctx, e.Threads)
	if n < 1 {
		return 1
	}
	return n
}

// Setup preprocesses the circuit: builds the evaluation domain, the σ
// permutation, interpolates selectors and commits to everything. The SRS
// trusted setup consumes rng.
func (e *Engine) Setup(c *Circuit, rng *ff.RNG) (*ProvingKey, *VerifyingKey, error) {
	return e.SetupCtx(context.Background(), c, rng)
}

// SetupCtx is the cancellable Setup: ctx is threaded into the SRS
// fixed-base batch and the eight preprocessing commits, so a cancelled
// caller stops the setup promptly.
func (e *Engine) SetupCtx(ctx context.Context, c *Circuit, rng *ff.RNG) (*ProvingKey, *VerifyingKey, error) {
	fr := e.Curve.Fr
	if c.NumGates() == 0 {
		return nil, nil, fmt.Errorf("plonk: empty circuit")
	}
	d, err := poly.NewDomain(fr, c.NumGates())
	if err != nil {
		return nil, nil, err
	}

	srs, err := kzg.NewSRSCtx(ctx, e.Curve, d.N+1, rng, e.threads(ctx))
	if err != nil {
		return nil, nil, err
	}
	pk, err := e.Preprocess(c, srs)
	if err != nil {
		return nil, nil, err
	}
	vk, err := e.BuildVK(ctx, pk)
	if err != nil {
		return nil, nil, err
	}
	return pk, vk, nil
}

// Preprocess builds the per-circuit half of the proving key over an
// existing (universal) SRS: the evaluation domain, coset shifts, selector
// interpolations and the σ permutation polynomials. It is deterministic —
// re-running it for the same circuit and SRS reproduces the same key,
// which is what lets the serialized proving key carry only the SRS.
func (e *Engine) Preprocess(c *Circuit, srs *kzg.SRS) (*ProvingKey, error) {
	fr := e.Curve.Fr
	if c.NumGates() == 0 {
		return nil, fmt.Errorf("plonk: empty circuit")
	}
	d, err := poly.NewDomain(fr, c.NumGates())
	if err != nil {
		return nil, err
	}
	n := d.N
	if srs.MaxDegree() < n+1 {
		return nil, fmt.Errorf("plonk: SRS supports degree %d, circuit needs %d", srs.MaxDegree()-1, n)
	}

	pk := &ProvingKey{C: c, Domain: d, SRS: srs}

	// Coset shifts k1, k2: k1·H and k2·H must be disjoint from H and from
	// each other. Small constants work for our fields; verify anyway.
	fr.SetUint64(&pk.K1, 2)
	fr.SetUint64(&pk.K2, 3)
	checkCoset := func(k *ff.Element) error {
		var kn ff.Element
		fr.ExpUint64(&kn, k, uint64(n))
		if fr.IsOne(&kn) {
			return fmt.Errorf("plonk: coset shift lies in the domain")
		}
		return nil
	}
	var ratio ff.Element
	fr.Inverse(&ratio, &pk.K2)
	fr.Mul(&ratio, &ratio, &pk.K1)
	if err := checkCoset(&pk.K1); err != nil {
		return nil, err
	}
	if err := checkCoset(&pk.K2); err != nil {
		return nil, err
	}
	if err := checkCoset(&ratio); err != nil {
		return nil, err
	}

	// Selector polynomials: pad values to N, interpolate.
	interp := func(vals []ff.Element) []ff.Element {
		out := make([]ff.Element, n)
		copy(out, vals)
		d.INTT(out)
		return out
	}
	pk.Ql = interp(c.QL)
	pk.Qr = interp(c.QR)
	pk.Qo = interp(c.QO)
	pk.Qm = interp(c.QM)
	pk.Qc = interp(c.QC)

	// σ permutation over the 3n wire slots: slots carrying the same
	// variable form a cycle; padding slots are fixed points.
	perm := make([]int, 3*n)
	for i := range perm {
		perm[i] = i
	}
	slotsByVar := make([][]int, c.nVars)
	for i := 0; i < c.NumGates(); i++ {
		slotsByVar[c.A[i]] = append(slotsByVar[c.A[i]], i)
		slotsByVar[c.B[i]] = append(slotsByVar[c.B[i]], n+i)
		slotsByVar[c.C[i]] = append(slotsByVar[c.C[i]], 2*n+i)
	}
	for _, slots := range slotsByVar {
		for j := range slots {
			perm[slots[j]] = slots[(j+1)%len(slots)]
		}
	}
	// slotVal(j): the field label of slot j (ω^i, k1·ω^i or k2·ω^i).
	omegaPows := make([]ff.Element, n)
	var acc ff.Element
	fr.One(&acc)
	for i := 0; i < n; i++ {
		omegaPows[i] = acc
		fr.Mul(&acc, &acc, &d.Root)
	}
	slotVal := func(j int) ff.Element {
		var v ff.Element
		switch {
		case j < n:
			v = omegaPows[j]
		case j < 2*n:
			fr.Mul(&v, &pk.K1, &omegaPows[j-n])
		default:
			fr.Mul(&v, &pk.K2, &omegaPows[j-2*n])
		}
		return v
	}
	pk.s1v = make([]ff.Element, n)
	pk.s2v = make([]ff.Element, n)
	pk.s3v = make([]ff.Element, n)
	for i := 0; i < n; i++ {
		pk.s1v[i] = slotVal(perm[i])
		pk.s2v[i] = slotVal(perm[n+i])
		pk.s3v[i] = slotVal(perm[2*n+i])
	}
	pk.S1 = interp(pk.s1v)
	pk.S2 = interp(pk.s2v)
	pk.S3 = interp(pk.s3v)
	return pk, nil
}

// BuildVK commits to the preprocessed polynomials, producing the
// verifying key that pairs with pk.
func (e *Engine) BuildVK(ctx context.Context, pk *ProvingKey) (*VerifyingKey, error) {
	vk := &VerifyingKey{
		N: pk.Domain.N, NumPub: pk.C.nPub, Omega: pk.Domain.Root,
		K1: pk.K1, K2: pk.K2, SRS: pk.SRS,
	}
	var err error
	commit := func(p []ff.Element) (curve.G1Affine, error) {
		return pk.SRS.CommitCtx(ctx, p, e.threads(ctx))
	}
	if vk.CQl, err = commit(pk.Ql); err != nil {
		return nil, err
	}
	if vk.CQr, err = commit(pk.Qr); err != nil {
		return nil, err
	}
	if vk.CQo, err = commit(pk.Qo); err != nil {
		return nil, err
	}
	if vk.CQm, err = commit(pk.Qm); err != nil {
		return nil, err
	}
	if vk.CQc, err = commit(pk.Qc); err != nil {
		return nil, err
	}
	if vk.CS1, err = commit(pk.S1); err != nil {
		return nil, err
	}
	if vk.CS2, err = commit(pk.S2); err != nil {
		return nil, err
	}
	if vk.CS3, err = commit(pk.S3); err != nil {
		return nil, err
	}
	return vk, nil
}

// Prove produces a proof that the assignment satisfies the circuit with
// the given public inputs (the values of the declared PublicInput
// variables, in order).
func (e *Engine) Prove(pk *ProvingKey, w Assignment, public []ff.Element) (*Proof, error) {
	return e.ProveCtx(context.Background(), pk, w, public)
}

// ProveCtx is the cancellable Prove: ctx is threaded into every KZG
// commit and opening (checked at Pippenger-window boundaries) and into
// the coset quotient evaluation (checked at chunk boundaries), and
// re-checked between the NTT passes — so a cancelled or deadline-expired
// PLONK job stops burning cores within one kernel chunk, mirroring
// groth16.ProveCtx.
func (e *Engine) ProveCtx(ctx context.Context, pk *ProvingKey, w Assignment, public []ff.Element) (*Proof, error) {
	fr := e.Curve.Fr
	c := pk.C
	d := pk.Domain
	n := d.N
	if err := c.checkGates(w, public); err != nil {
		return nil, err
	}

	// The probe (if any) is resolved once per prove; the MSM hooks inside
	// the KZG commits fire on their own via the curve layer, so only the
	// NTT blocks are attributed here.
	probe := telemetry.ProbeFromContext(ctx)

	// Wire values on H, then coefficient form.
	av, bv, cv, err := c.wireValues(w, n)
	if err != nil {
		return nil, err
	}
	// inttCtx interpolates values on H into coefficient form
	// (non-destructive), parallel across e.Threads and cancellable at
	// butterfly-layer boundaries.
	inttCtx := func(dm *poly.Domain, vals []ff.Element) ([]ff.Element, error) {
		out := make([]ff.Element, dm.N)
		copy(out, vals)
		if err := dm.INTTCtx(ctx, out, e.threads(ctx)); err != nil {
			return nil, err
		}
		return out, nil
	}

	nttT0 := probe.Begin()
	var aCoef, bCoef, cCoef []ff.Element
	if aCoef, err = inttCtx(d, av); err != nil {
		return nil, err
	}
	if bCoef, err = inttCtx(d, bv); err != nil {
		return nil, err
	}
	if cCoef, err = inttCtx(d, cv); err != nil {
		return nil, err
	}
	probe.Observe(telemetry.KernelNTT, nttT0, n)

	proof := &Proof{}
	if proof.CA, err = pk.SRS.CommitCtx(ctx, aCoef, e.threads(ctx)); err != nil {
		return nil, err
	}
	if proof.CB, err = pk.SRS.CommitCtx(ctx, bCoef, e.threads(ctx)); err != nil {
		return nil, err
	}
	if proof.CC, err = pk.SRS.CommitCtx(ctx, cCoef, e.threads(ctx)); err != nil {
		return nil, err
	}

	tr := newTranscript(e.Curve, "plonk")
	absorbVK(tr, pk, public)
	tr.absorbPoint(&proof.CA)
	tr.absorbPoint(&proof.CB)
	tr.absorbPoint(&proof.CC)
	beta := tr.challenge()
	gamma := tr.challenge()

	// Grand product z over H.
	zv := make([]ff.Element, n)
	fr.One(&zv[0])
	nums := make([]ff.Element, n)
	dens := make([]ff.Element, n)
	var omegaI ff.Element
	fr.One(&omegaI)
	var t1, t2, t3 ff.Element
	factor := func(wv, label *ff.Element) ff.Element {
		var out ff.Element
		fr.Mul(&out, &beta, label)
		fr.Add(&out, &out, wv)
		fr.Add(&out, &out, &gamma)
		return out
	}
	for i := 0; i < n; i++ {
		var k1w, k2w ff.Element
		fr.Mul(&k1w, &pk.K1, &omegaI)
		fr.Mul(&k2w, &pk.K2, &omegaI)
		t1 = factor(&av[i], &omegaI)
		t2 = factor(&bv[i], &k1w)
		t3 = factor(&cv[i], &k2w)
		fr.Mul(&nums[i], &t1, &t2)
		fr.Mul(&nums[i], &nums[i], &t3)
		t1 = factor(&av[i], &pk.s1v[i])
		t2 = factor(&bv[i], &pk.s2v[i])
		t3 = factor(&cv[i], &pk.s3v[i])
		fr.Mul(&dens[i], &t1, &t2)
		fr.Mul(&dens[i], &dens[i], &t3)
		fr.Mul(&omegaI, &omegaI, &d.Root)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fr.BatchInverse(dens)
	for i := 0; i < n-1; i++ {
		fr.Mul(&t1, &nums[i], &dens[i])
		fr.Mul(&zv[i+1], &zv[i], &t1)
	}
	zCoef, err := inttCtx(d, zv)
	if err != nil {
		return nil, err
	}
	if proof.CZ, err = pk.SRS.CommitCtx(ctx, zCoef, e.threads(ctx)); err != nil {
		return nil, err
	}
	tr.absorbPoint(&proof.CZ)
	alpha := tr.challenge()

	// Quotient t(x) on a coset of size 4N.
	d4, err := poly.NewDomain(fr, 4*n)
	if err != nil {
		return nil, err
	}
	// toCoset extends a coefficient vector onto the 4N coset. A
	// cancellation inside any extension latches cosetErr and turns the
	// remaining calls into cheap copies; the error is surfaced once after
	// the block.
	var cosetErr error
	toCoset := func(coef []ff.Element) []ff.Element {
		out := make([]ff.Element, d4.N)
		copy(out, coef)
		if cosetErr == nil {
			cosetErr = d4.CosetNTTCtx(ctx, out, e.threads(ctx))
		}
		return out
	}
	nttT0 = probe.Begin()
	aX := toCoset(aCoef)
	bX := toCoset(bCoef)
	cX := toCoset(cCoef)
	zX := toCoset(zCoef)
	// z(ωx): scale coefficients by ω^i before evaluating.
	zwCoef := make([]ff.Element, n)
	var wp ff.Element
	fr.One(&wp)
	for i := range zwCoef {
		fr.Mul(&zwCoef[i], &zCoef[i], &wp)
		fr.Mul(&wp, &wp, &d.Root)
	}
	zwX := toCoset(zwCoef)
	qlX := toCoset(pk.Ql)
	qrX := toCoset(pk.Qr)
	qoX := toCoset(pk.Qo)
	qmX := toCoset(pk.Qm)
	qcX := toCoset(pk.Qc)
	s1X := toCoset(pk.S1)
	s2X := toCoset(pk.S2)
	s3X := toCoset(pk.S3)

	// PI polynomial: −public_i on the first rows of H.
	piVals := make([]ff.Element, n)
	for i := 0; i < c.nPub; i++ {
		fr.Neg(&piVals[i], &public[i])
	}
	piCoef, err := inttCtx(d, piVals)
	if err != nil {
		return nil, err
	}
	piX := toCoset(piCoef)
	if cosetErr != nil {
		return nil, cosetErr
	}
	// 14 coset extensions over the 4N domain make up the prover's big NTT
	// block; one span covers them all.
	probe.Observe(telemetry.KernelNTT, nttT0, d4.N)

	// Z_H and L1 on the coset; Z_H has period 4 there (ω₄^N has order 4).
	zhVals := make([]ff.Element, 4)
	zhInv := make([]ff.Element, 4)
	var gN, w4N ff.Element
	fr.ExpUint64(&gN, &d4.CosetGen, uint64(n))
	fr.ExpUint64(&w4N, &d4.Root, uint64(n))
	var cur ff.Element
	fr.Set(&cur, &gN)
	var one ff.Element
	fr.One(&one)
	for j := 0; j < 4; j++ {
		fr.Sub(&zhVals[j], &cur, &one)
		zhInv[j] = zhVals[j]
		fr.Mul(&cur, &cur, &w4N)
	}
	fr.BatchInverse(zhInv)
	// L1(x) = Z_H(x) / (N·(x−1)): denominators on the coset.
	l1Den := make([]ff.Element, d4.N)
	var xj, nElem ff.Element
	fr.Set(&xj, &d4.CosetGen)
	fr.SetUint64(&nElem, uint64(n))
	for j := 0; j < d4.N; j++ {
		fr.Sub(&l1Den[j], &xj, &one)
		fr.Mul(&l1Den[j], &l1Den[j], &nElem)
		fr.Mul(&xj, &xj, &d4.Root)
	}
	fr.BatchInverse(l1Den)

	tEval := make([]ff.Element, d4.N)
	var alpha2 ff.Element
	fr.Square(&alpha2, &alpha)
	// The per-point quotient evaluation is embarrassingly parallel: each
	// chunk recomputes its starting coset point g·ω₄^lo and walks its own
	// power chain. ChunksCtx both spreads it across e.Threads workers and
	// bounds the cancellation latency to one chunk.
	if err := parallel.ChunksCtx(ctx, d4.N, e.threads(ctx), func(lo, hi int) {
		var xj, rootLo ff.Element
		fr.ExpUint64(&rootLo, &d4.Root, uint64(lo))
		fr.Mul(&xj, &d4.CosetGen, &rootLo)
		for j := lo; j < hi; j++ {
			// gate = ql·a + qr·b + qo·c + qm·a·b + qc + PI
			var gate, tmp ff.Element
			fr.Mul(&gate, &qlX[j], &aX[j])
			fr.Mul(&tmp, &qrX[j], &bX[j])
			fr.Add(&gate, &gate, &tmp)
			fr.Mul(&tmp, &qoX[j], &cX[j])
			fr.Add(&gate, &gate, &tmp)
			fr.Mul(&tmp, &qmX[j], &aX[j])
			fr.Mul(&tmp, &tmp, &bX[j])
			fr.Add(&gate, &gate, &tmp)
			fr.Add(&gate, &gate, &qcX[j])
			fr.Add(&gate, &gate, &piX[j])

			// perm1 = Π(w + β·id + γ)·z − Π(w + β·σ + γ)·z(ωx)
			var k1x, k2x, p1, p2, f1, f2, f3 ff.Element
			fr.Mul(&k1x, &pk.K1, &xj)
			fr.Mul(&k2x, &pk.K2, &xj)
			f1 = factor(&aX[j], &xj)
			f2 = factor(&bX[j], &k1x)
			f3 = factor(&cX[j], &k2x)
			fr.Mul(&p1, &f1, &f2)
			fr.Mul(&p1, &p1, &f3)
			fr.Mul(&p1, &p1, &zX[j])
			f1 = factor(&aX[j], &s1X[j])
			f2 = factor(&bX[j], &s2X[j])
			f3 = factor(&cX[j], &s3X[j])
			fr.Mul(&p2, &f1, &f2)
			fr.Mul(&p2, &p2, &f3)
			fr.Mul(&p2, &p2, &zwX[j])
			var perm1 ff.Element
			fr.Sub(&perm1, &p1, &p2)

			// perm2 = (z − 1)·L1 with L1(x_j) = Z_H(x_j)/(N(x_j − 1)).
			var perm2, l1v ff.Element
			fr.Sub(&perm2, &zX[j], &one)
			fr.Mul(&l1v, &zhVals[j%4], &l1Den[j])
			fr.Mul(&perm2, &perm2, &l1v)

			// t = (gate + α·perm1 + α²·perm2) / Z_H
			var num ff.Element
			fr.Mul(&tmp, &alpha, &perm1)
			fr.Add(&num, &gate, &tmp)
			fr.Mul(&tmp, &alpha2, &perm2)
			fr.Add(&num, &num, &tmp)
			fr.Mul(&tEval[j], &num, &zhInv[j%4])

			fr.Mul(&xj, &xj, &d4.Root)
		}
	}); err != nil {
		return nil, err
	}
	nttT0 = probe.Begin()
	if err := d4.CosetINTTCtx(ctx, tEval, e.threads(ctx)); err != nil {
		return nil, err
	}
	probe.Observe(telemetry.KernelNTT, nttT0, d4.N)
	// Degree sanity: everything beyond 3N must vanish.
	for j := 3 * n; j < d4.N; j++ {
		if !fr.IsZero(&tEval[j]) {
			return nil, fmt.Errorf("plonk: quotient degree overflow (internal error or unsatisfied constraints)")
		}
	}
	tLo := tEval[:n]
	tMid := tEval[n : 2*n]
	tHi := tEval[2*n : 3*n]
	if proof.CTlo, err = pk.SRS.CommitCtx(ctx, tLo, e.threads(ctx)); err != nil {
		return nil, err
	}
	if proof.CTmid, err = pk.SRS.CommitCtx(ctx, tMid, e.threads(ctx)); err != nil {
		return nil, err
	}
	if proof.CThi, err = pk.SRS.CommitCtx(ctx, tHi, e.threads(ctx)); err != nil {
		return nil, err
	}
	tr.absorbPoint(&proof.CTlo)
	tr.absorbPoint(&proof.CTmid)
	tr.absorbPoint(&proof.CThi)
	zeta := tr.challenge()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Evaluations at ζ (and ζω for z).
	polysAtZeta := []struct {
		coef []ff.Element
		dst  *ff.Element
	}{
		{aCoef, &proof.EvA}, {bCoef, &proof.EvB}, {cCoef, &proof.EvC},
		{zCoef, &proof.EvZ},
		{tLo, &proof.EvTlo}, {tMid, &proof.EvTmid}, {tHi, &proof.EvThi},
		{pk.Ql, &proof.EvQl}, {pk.Qr, &proof.EvQr}, {pk.Qo, &proof.EvQo},
		{pk.Qm, &proof.EvQm}, {pk.Qc, &proof.EvQc},
		{pk.S1, &proof.EvS1}, {pk.S2, &proof.EvS2}, {pk.S3, &proof.EvS3},
	}
	for _, p := range polysAtZeta {
		*p.dst = poly.Eval(fr, p.coef, &zeta)
	}
	var zetaOmega ff.Element
	fr.Mul(&zetaOmega, &zeta, &d.Root)
	proof.EvZw = poly.Eval(fr, zCoef, &zetaOmega)

	for _, p := range polysAtZeta {
		tr.absorbScalar(p.dst)
	}
	tr.absorbScalar(&proof.EvZw)
	v := tr.challenge()

	// Batched opening at ζ: F = Σ vⁱ·pᵢ.
	batched := make([]ff.Element, n+1)
	var vPow ff.Element
	fr.One(&vPow)
	for _, p := range polysAtZeta {
		for i := range p.coef {
			fr.Mul(&t1, &p.coef[i], &vPow)
			fr.Add(&batched[i], &batched[i], &t1)
		}
		fr.Mul(&vPow, &vPow, &v)
	}
	if _, proof.Wz, err = pk.SRS.OpenCtx(ctx, batched, &zeta, e.threads(ctx)); err != nil {
		return nil, err
	}
	if _, proof.Wzw, err = pk.SRS.OpenCtx(ctx, zCoef, &zetaOmega, e.threads(ctx)); err != nil {
		return nil, err
	}
	return proof, nil
}

// absorbVK binds the transcript to the preprocessed circuit and the
// public inputs.
func absorbVK(tr *transcript, pk *ProvingKey, public []ff.Element) {
	for i := range public {
		tr.absorbScalar(&public[i])
	}
	tr.absorbScalar(&pk.K1)
	tr.absorbScalar(&pk.K2)
}

// absorbVKVerifier mirrors absorbVK on the verifier side.
func absorbVKVerifier(tr *transcript, vk *VerifyingKey, public []ff.Element) {
	for i := range public {
		tr.absorbScalar(&public[i])
	}
	tr.absorbScalar(&vk.K1)
	tr.absorbScalar(&vk.K2)
}

// Verify checks a proof against the public inputs.
func (e *Engine) Verify(vk *VerifyingKey, proof *Proof, public []ff.Element) error {
	return e.VerifyCtx(context.Background(), vk, proof, public)
}

// VerifyCtx is Verify with a context: the commitment-combining MSM and
// the two KZG opening checks pick up cancellation and the telemetry
// probe from ctx.
func (e *Engine) VerifyCtx(ctx context.Context, vk *VerifyingKey, proof *Proof, public []ff.Element) error {
	fr := e.Curve.Fr
	if len(public) != vk.NumPub {
		return fmt.Errorf("plonk: %d public values, circuit declares %d", len(public), vk.NumPub)
	}
	n := vk.N

	// Recompute the challenges.
	tr := newTranscript(e.Curve, "plonk")
	absorbVKVerifier(tr, vk, public)
	tr.absorbPoint(&proof.CA)
	tr.absorbPoint(&proof.CB)
	tr.absorbPoint(&proof.CC)
	beta := tr.challenge()
	gamma := tr.challenge()
	tr.absorbPoint(&proof.CZ)
	alpha := tr.challenge()
	tr.absorbPoint(&proof.CTlo)
	tr.absorbPoint(&proof.CTmid)
	tr.absorbPoint(&proof.CThi)
	zeta := tr.challenge()
	evals := []*ff.Element{
		&proof.EvA, &proof.EvB, &proof.EvC, &proof.EvZ,
		&proof.EvTlo, &proof.EvTmid, &proof.EvThi,
		&proof.EvQl, &proof.EvQr, &proof.EvQo, &proof.EvQm, &proof.EvQc,
		&proof.EvS1, &proof.EvS2, &proof.EvS3,
	}
	for _, ev := range evals {
		tr.absorbScalar(ev)
	}
	tr.absorbScalar(&proof.EvZw)
	v := tr.challenge()

	// Z_H(ζ), L1(ζ), PI(ζ).
	var zetaN, zh, one ff.Element
	fr.One(&one)
	fr.ExpUint64(&zetaN, &zeta, uint64(n))
	fr.Sub(&zh, &zetaN, &one)
	if fr.IsZero(&zh) {
		return fmt.Errorf("plonk: evaluation point in domain")
	}
	var nElem, l1, den ff.Element
	fr.SetUint64(&nElem, uint64(n))
	fr.Sub(&den, &zeta, &one)
	fr.Mul(&den, &den, &nElem)
	fr.Inverse(&den, &den)
	fr.Mul(&l1, &zh, &den)

	var pi ff.Element
	var omegaI ff.Element
	fr.One(&omegaI)
	var t1, t2 ff.Element
	for i := 0; i < vk.NumPub; i++ {
		// L_i(ζ) = ω^i·Z_H(ζ) / (N·(ζ − ω^i))
		fr.Sub(&t1, &zeta, &omegaI)
		fr.Mul(&t1, &t1, &nElem)
		fr.Inverse(&t1, &t1)
		fr.Mul(&t1, &t1, &zh)
		fr.Mul(&t1, &t1, &omegaI)
		fr.Mul(&t2, &t1, &public[i])
		fr.Sub(&pi, &pi, &t2)
		fr.Mul(&omegaI, &omegaI, &vk.Omega)
	}

	// Main identity: gate + α·perm1 + α²·perm2 == t(ζ)·Z_H(ζ).
	var gate, tmp ff.Element
	fr.Mul(&gate, &proof.EvQl, &proof.EvA)
	fr.Mul(&tmp, &proof.EvQr, &proof.EvB)
	fr.Add(&gate, &gate, &tmp)
	fr.Mul(&tmp, &proof.EvQo, &proof.EvC)
	fr.Add(&gate, &gate, &tmp)
	fr.Mul(&tmp, &proof.EvQm, &proof.EvA)
	fr.Mul(&tmp, &tmp, &proof.EvB)
	fr.Add(&gate, &gate, &tmp)
	fr.Add(&gate, &gate, &proof.EvQc)
	fr.Add(&gate, &gate, &pi)

	factor := func(wv, label *ff.Element) ff.Element {
		var out ff.Element
		fr.Mul(&out, &beta, label)
		fr.Add(&out, &out, wv)
		fr.Add(&out, &out, &gamma)
		return out
	}
	var k1z, k2z ff.Element
	fr.Mul(&k1z, &vk.K1, &zeta)
	fr.Mul(&k2z, &vk.K2, &zeta)
	f1 := factor(&proof.EvA, &zeta)
	f2 := factor(&proof.EvB, &k1z)
	f3 := factor(&proof.EvC, &k2z)
	var p1 ff.Element
	fr.Mul(&p1, &f1, &f2)
	fr.Mul(&p1, &p1, &f3)
	fr.Mul(&p1, &p1, &proof.EvZ)
	f1 = factor(&proof.EvA, &proof.EvS1)
	f2 = factor(&proof.EvB, &proof.EvS2)
	f3 = factor(&proof.EvC, &proof.EvS3)
	var p2 ff.Element
	fr.Mul(&p2, &f1, &f2)
	fr.Mul(&p2, &p2, &f3)
	fr.Mul(&p2, &p2, &proof.EvZw)
	var perm1 ff.Element
	fr.Sub(&perm1, &p1, &p2)

	var perm2 ff.Element
	fr.Sub(&perm2, &proof.EvZ, &one)
	fr.Mul(&perm2, &perm2, &l1)

	var lhs, alpha2 ff.Element
	fr.Mul(&tmp, &alpha, &perm1)
	fr.Add(&lhs, &gate, &tmp)
	fr.Square(&alpha2, &alpha)
	fr.Mul(&tmp, &alpha2, &perm2)
	fr.Add(&lhs, &lhs, &tmp)

	// t(ζ) = t_lo + ζ^N·t_mid + ζ^{2N}·t_hi.
	var tZeta, zeta2N ff.Element
	fr.Square(&zeta2N, &zetaN)
	fr.Mul(&tmp, &zetaN, &proof.EvTmid)
	fr.Add(&tZeta, &proof.EvTlo, &tmp)
	fr.Mul(&tmp, &zeta2N, &proof.EvThi)
	fr.Add(&tZeta, &tZeta, &tmp)

	var rhs ff.Element
	fr.Mul(&rhs, &tZeta, &zh)
	if !fr.Equal(&lhs, &rhs) {
		return fmt.Errorf("%w: constraint identity fails at ζ", ErrInvalidProof)
	}

	// Batched KZG opening at ζ: combine commitments and evaluations with
	// the same powers of v the prover used.
	commitments := []*curve.G1Affine{
		&proof.CA, &proof.CB, &proof.CC, &proof.CZ,
		&proof.CTlo, &proof.CTmid, &proof.CThi,
		&vk.CQl, &vk.CQr, &vk.CQo, &vk.CQm, &vk.CQc,
		&vk.CS1, &vk.CS2, &vk.CS3,
	}
	points := make([]curve.G1Affine, len(commitments))
	scalars := make([]ff.Element, len(commitments))
	var combinedEval, vPow ff.Element
	fr.One(&vPow)
	for i := range commitments {
		points[i] = *commitments[i]
		scalars[i] = vPow
		fr.Mul(&tmp, evals[i], &vPow)
		fr.Add(&combinedEval, &combinedEval, &tmp)
		fr.Mul(&vPow, &vPow, &v)
	}
	accJ, err := e.Curve.G1MSMCtx(ctx, points, scalars, 1)
	if err != nil {
		return err
	}
	var combinedC curve.G1Affine
	e.Curve.G1ToAffine(&combinedC, &accJ)
	if !vk.SRS.VerifyCtx(ctx, e.Pair, &combinedC, &zeta, &combinedEval, &proof.Wz) {
		return fmt.Errorf("%w: batched opening at ζ fails", ErrInvalidProof)
	}

	var zetaOmega ff.Element
	fr.Mul(&zetaOmega, &zeta, &vk.Omega)
	if !vk.SRS.VerifyCtx(ctx, e.Pair, &proof.CZ, &zetaOmega, &proof.EvZw, &proof.Wzw) {
		return fmt.Errorf("%w: opening of z at ζω fails", ErrInvalidProof)
	}
	return nil
}
