package plonk

import (
	"bytes"
	"math/big"
	"testing"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
)

// proveExp runs the PLONK pipeline on the exponentiation circuit.
func proveExp(t *testing.T, c *curve.Curve, e int, xVal uint64) (*Engine, *VerifyingKey, *Proof, []ff.Element) {
	t.Helper()
	fr := c.Fr
	circ, x, _ := ExponentiateCircuit(fr, e)
	eng := NewEngine(c)
	pk, vk, err := eng.Setup(circ, ff.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}

	// Assignment: evaluate the circuit forward.
	w := circ.NewAssignment()
	fr.SetUint64(&w[x], xVal)
	// Replaying the gates fills in the multiplication outputs.
	fillAssignment(fr, circ, w)
	yVal := new(big.Int).Exp(new(big.Int).SetUint64(xVal), big.NewInt(int64(e)), fr.Modulus())
	var y ff.Element
	fr.SetBigInt(&y, yVal)
	w[0] = y // the public-input variable
	public := []ff.Element{y}

	proof, err := eng.Prove(pk, w, public)
	if err != nil {
		t.Fatal(err)
	}
	return eng, vk, proof, public
}

// fillAssignment executes the mul/add gates forward to solve outputs.
func fillAssignment(fr *ff.Field, c *Circuit, w Assignment) {
	var one ff.Element
	fr.One(&one)
	for i := 0; i < c.NumGates(); i++ {
		// Solve rows of the form qM·a·b − c = 0 or a + b − c = 0.
		if fr.IsOne(&c.QM[i]) {
			fr.Mul(&w[c.C[i]], &w[c.A[i]], &w[c.B[i]])
		} else if fr.IsOne(&c.QL[i]) && fr.IsOne(&c.QR[i]) {
			fr.Add(&w[c.C[i]], &w[c.A[i]], &w[c.B[i]])
		}
	}
}

func TestPlonkEndToEndBN254(t *testing.T) {
	eng, vk, proof, public := proveExp(t, curve.NewBN254(), 30, 3)
	if err := eng.Verify(vk, proof, public); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestPlonkEndToEndBLS12381(t *testing.T) {
	eng, vk, proof, public := proveExp(t, curve.NewBLS12381(), 16, 5)
	if err := eng.Verify(vk, proof, public); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestPlonkWrongPublicInput(t *testing.T) {
	eng, vk, proof, public := proveExp(t, curve.NewBN254(), 16, 3)
	bad := make([]ff.Element, len(public))
	eng.Curve.Fr.SetUint64(&bad[0], 99999)
	if err := eng.Verify(vk, proof, bad); err == nil {
		t.Fatal("proof accepted for the wrong public input")
	}
}

func TestPlonkTamperedProof(t *testing.T) {
	eng, vk, proof, public := proveExp(t, curve.NewBN254(), 16, 3)
	// Tamper with each commitment and each evaluation.
	tampered := *proof
	tampered.CZ = eng.Curve.G1Gen
	if err := eng.Verify(vk, &tampered, public); err == nil {
		t.Error("tampered CZ accepted")
	}
	tampered = *proof
	eng.Curve.Fr.SetUint64(&tampered.EvA, 7)
	if err := eng.Verify(vk, &tampered, public); err == nil {
		t.Error("tampered EvA accepted")
	}
	tampered = *proof
	tampered.Wz = eng.Curve.G1Gen
	if err := eng.Verify(vk, &tampered, public); err == nil {
		t.Error("tampered opening accepted")
	}
}

func TestPlonkUnsatisfiedCircuit(t *testing.T) {
	// A wrong assignment must be caught before any proof is produced.
	c := curve.NewBN254()
	fr := c.Fr
	circ, x, _ := ExponentiateCircuit(fr, 8)
	eng := NewEngine(c)
	pk, _, err := eng.Setup(circ, ff.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	w := circ.NewAssignment()
	fr.SetUint64(&w[x], 3)
	fillAssignment(fr, circ, w)
	var wrongY ff.Element
	fr.SetUint64(&wrongY, 1)
	w[0] = wrongY
	if _, err := eng.Prove(pk, w, []ff.Element{wrongY}); err == nil {
		t.Fatal("prover accepted an unsatisfied circuit")
	}
}

func TestPlonkCopyConstraints(t *testing.T) {
	// Two gates sharing a variable: breaking the copy constraint by
	// assigning inconsistent values must fail at the gate check.
	c := curve.NewBN254()
	fr := c.Fr
	circ := NewCircuit(fr)
	a := circ.NewVar()
	b := circ.Mul(a, a)  // b = a²
	cc := circ.Mul(b, a) // c = a³
	circ.AssertEqualConst(cc, big.NewInt(27))
	eng := NewEngine(c)
	pk, vk, err := eng.Setup(circ, ff.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	w := circ.NewAssignment()
	fr.SetUint64(&w[a], 3)
	fillAssignment(fr, circ, w)
	proof, err := eng.Prove(pk, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, nil); err != nil {
		t.Fatalf("valid copy-constraint proof rejected: %v", err)
	}
}

func TestPlonkAddGateAndConstants(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	circ := NewCircuit(fr)
	s := circ.PublicInput() // s = a + b
	a := circ.NewVar()
	b := circ.NewVar()
	sum := circ.Add(a, b)
	var one, negOne ff.Element
	fr.One(&one)
	fr.Neg(&negOne, &one)
	circ.AddGate(one, negOne, zero(fr), zero(fr), zero(fr), s, sum, sum)

	eng := NewEngine(c)
	pk, vk, err := eng.Setup(circ, ff.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	w := circ.NewAssignment()
	fr.SetUint64(&w[a], 20)
	fr.SetUint64(&w[b], 22)
	fillAssignment(fr, circ, w)
	var sVal ff.Element
	fr.SetUint64(&sVal, 42)
	w[s] = sVal
	proof, err := eng.Prove(pk, w, []ff.Element{sVal})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, []ff.Element{sVal}); err != nil {
		t.Fatal(err)
	}
}

func TestPlonkPublicInputOrderEnforced(t *testing.T) {
	c := curve.NewBN254()
	circ := NewCircuit(c.Fr)
	a := circ.NewVar()
	circ.Mul(a, a)
	defer func() {
		if recover() == nil {
			t.Error("PublicInput after gates should panic")
		}
	}()
	circ.PublicInput()
}

func TestPlonkEmptyCircuit(t *testing.T) {
	c := curve.NewBN254()
	eng := NewEngine(c)
	if _, _, err := eng.Setup(NewCircuit(c.Fr), ff.NewRNG(1)); err == nil {
		t.Error("empty circuit accepted")
	}
}

func TestPlonkDeterministicTranscript(t *testing.T) {
	// Same inputs → same proof (no blinding in this variant), and the
	// verifier's recomputed challenges must match.
	c := curve.NewBN254()
	_, vk, proof1, public := proveExp(t, c, 8, 3)
	_, _, proof2, _ := proveExp(t, c, 8, 3)
	if !c.Fr.Equal(&proof1.EvA, &proof2.EvA) {
		t.Error("deterministic prover produced differing proofs")
	}
	eng := NewEngine(c)
	if err := eng.Verify(vk, proof1, public); err != nil {
		t.Fatal(err)
	}
}

func TestProofSerialization(t *testing.T) {
	c := curve.NewBN254()
	eng, vk, proof, public := proveExp(t, c, 8, 3)
	var buf bytes.Buffer
	if err := proof.Serialize(&buf, c); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != proof.EncodedLen(c) {
		t.Errorf("encoded %d bytes, EncodedLen says %d", buf.Len(), proof.EncodedLen(c))
	}
	var back Proof
	if err := back.Deserialize(&buf, c); err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, &back, public); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
	// Corrupting a point byte must be caught at decode time.
	var buf2 bytes.Buffer
	if err := proof.Serialize(&buf2, c); err != nil {
		t.Fatal(err)
	}
	data := buf2.Bytes()
	data[5] ^= 0xFF
	var bad Proof
	if err := bad.Deserialize(bytes.NewReader(data), c); err == nil {
		t.Error("corrupted proof point accepted")
	}
}
