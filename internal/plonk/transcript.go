// Package plonk implements the PLONK proving scheme (Gabizon, Williamson,
// Ciobotaru 2019) over KZG commitments — the second scheme snarkjs
// supports, which the paper's methodology section compares against Groth16
// ("the proving time of PlonK is twice as slow").
//
// This is a complete, sound and complete implementation of the protocol
// with two documented simplifications relative to the full paper:
//
//   - no zero-knowledge blinding of the wire and grand-product polynomials
//     (blinding adds O(1) work and is irrelevant to the performance
//     characteristics this repository studies);
//   - no linearization: the prover opens every committed polynomial at the
//     evaluation point (batched into one KZG opening), and the verifier
//     checks the quotiented constraint identity directly on the opened
//     values. This trades a slightly larger proof for a much simpler
//     verifier equation.
package plonk

import (
	"crypto/sha256"
	"encoding/binary"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
)

// transcript implements the Fiat–Shamir heuristic: both parties absorb the
// protocol messages in order and derive challenges by hashing.
type transcript struct {
	h     [32]byte
	count uint64
	fr    *ff.Field
	c     *curve.Curve
}

func newTranscript(c *curve.Curve, label string) *transcript {
	t := &transcript{fr: c.Fr, c: c}
	t.absorbBytes([]byte(label))
	return t
}

func (t *transcript) absorbBytes(data []byte) {
	hh := sha256.New()
	hh.Write(t.h[:])
	hh.Write(data)
	copy(t.h[:], hh.Sum(nil))
}

// absorbPoint absorbs a G1 commitment.
func (t *transcript) absorbPoint(p *curve.G1Affine) {
	t.absorbBytes(t.c.G1Bytes(p))
}

// absorbScalar absorbs a field element.
func (t *transcript) absorbScalar(e *ff.Element) {
	t.absorbBytes(t.fr.Bytes(e))
}

// challenge derives the next challenge scalar.
func (t *transcript) challenge() ff.Element {
	t.count++
	var ctr [8]byte
	binary.LittleEndian.PutUint64(ctr[:], t.count)
	hh := sha256.New()
	hh.Write(t.h[:])
	hh.Write(ctr[:])
	sum := hh.Sum(nil)
	copy(t.h[:], sum)
	var e ff.Element
	t.fr.SetBytes(&e, sum)
	return e
}
