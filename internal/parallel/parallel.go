// Package parallel provides the shared fork-join helpers used by the
// curve kernels (fixed-base batches, MSM window workers) and the proving
// service. Centralizing the splitting logic keeps every hot path on one
// tested implementation and gives the cancellable variant a single home:
// ChunksCtx is what lets an abandoned proving job stop burning cores at
// the next chunk boundary instead of running to completion.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Chunks splits [0, n) into contiguous chunks and runs fn on each with up
// to threads goroutines. threads ≤ 1 runs inline. Chunks are sized so
// every worker gets at most one — fn is expected to be coarse.
func Chunks(n, threads int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if threads <= 1 || n == 1 {
		fn(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// chunksPerWorker oversubscribes the cancellable splitter so each worker
// re-checks ctx several times per call rather than once.
const chunksPerWorker = 4

// ChunksCtx is the cancellable variant of Chunks. Work is split finer
// (up to chunksPerWorker chunks per worker) and handed out from a shared
// dispenser; once ctx is cancelled no new chunk starts. Chunks already in
// progress run to completion — fn is never interrupted mid-range — so the
// cancellation latency is bounded by one chunk of work. Returns ctx.Err()
// if the context was cancelled, nil otherwise.
func ChunksCtx(ctx context.Context, n, threads int, fn func(lo, hi int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if threads > n {
		threads = n
	}
	nChunks := chunksPerWorker
	if threads > 1 {
		nChunks = threads * chunksPerWorker
	}
	if nChunks > n {
		nChunks = n
	}
	chunk := (n + nChunks - 1) / nChunks

	if threads <= 1 {
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return ctx.Err()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
