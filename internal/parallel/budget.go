package parallel

import "context"

// budgetKey carries a per-job kernel thread budget in a context. The
// workload-aware scheduler (internal/provesvc) grants each job a thread
// count from live queue depth — a deep queue runs many jobs × few
// threads, an idle service one job × the full budget — and the proving
// engines consult the grant at their fork-join boundaries.
type budgetKey struct{}

// WithThreadBudget returns a context carrying a kernel thread budget of
// n for the job it accompanies. n < 1 returns ctx unchanged.
func WithThreadBudget(ctx context.Context, n int) context.Context {
	if n < 1 {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, n)
}

// ThreadBudget returns the thread budget carried by ctx, or fallback
// when none is set. The returned value is always ≥ 1 when fallback is,
// so callers can pass it straight to Chunks/ChunksCtx.
func ThreadBudget(ctx context.Context, fallback int) int {
	if n, ok := ctx.Value(budgetKey{}).(int); ok && n > 0 {
		return n
	}
	return fallback
}
