package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// covered checks that the chunks exactly tile [0, n).
func covered(t *testing.T, n int, seen []int32) {
	t.Helper()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, c)
		}
	}
	_ = n
}

func TestChunksCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, threads := range []int{1, 2, 4, 100} {
			seen := make([]int32, n)
			Chunks(n, threads, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			covered(t, n, seen)
		}
	}
}

func TestChunksCtxCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, threads := range []int{1, 2, 4, 100} {
			seen := make([]int32, n)
			err := ChunksCtx(context.Background(), n, threads, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("n=%d threads=%d: %v", n, threads, err)
			}
			covered(t, n, seen)
		}
	}
}

func TestChunksCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ChunksCtx(ctx, 1000, 1, func(lo, hi int) { calls++ })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times after pre-cancelled ctx, want 0", calls)
	}
}

func TestChunksCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	err := ChunksCtx(ctx, 1<<16, 4, func(lo, hi int) {
		ran.Add(int64(hi - lo))
		once.Do(cancel) // cancel after the first chunk completes
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With 4 workers × chunksPerWorker chunks, at most the chunks already
	// in flight when cancel fired can complete.
	if ran.Load() == 1<<16 {
		t.Fatal("all work completed despite cancellation")
	}
}
