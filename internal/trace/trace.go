// Package trace is the instrumentation layer of the analysis framework:
// the stand-in for the event sources the paper gets from Intel VTune, perf
// and DynamoRIO. The real zk-SNARK stages run with a Recorder attached and
// emit four kinds of evidence:
//
//   - operation counts: every field multiplication/addition/inversion, via
//     the ff.Field counter hook, plus explicit control-flow (interpreter
//     dispatch, branches) and data-flow (copies, allocations) events;
//   - function-level timing: scoped enter/leave pairs produce the hot-
//     function profile of Table IV;
//   - memory access patterns: structural descriptors (sequential scan,
//     strided walk, random touch, pointer chase over named regions) that
//     the cache simulator replays;
//   - phase structure: the fork-join skeleton of each stage (serial
//     sections and parallel sections with their grain), which the
//     scheduling simulator executes for the scalability analysis.
//
// A nil *Recorder disables all instrumentation; the hooks are single
// branch-on-nil checks so the untraced path stays fast.
package trace

import (
	"sort"
	"time"

	"zkperf/internal/ff"
)

// PatternKind classifies a memory access pattern.
type PatternKind int

const (
	// Sequential is a linear scan over a region.
	Sequential PatternKind = iota
	// Strided is a constant-stride walk (e.g. NTT butterflies).
	Strided
	// Random is uniform random touches within a region (e.g. MSM buckets).
	Random
	// PointerChase is dependent random touches (e.g. AST walks, interpreter
	// operand fetches) — no spatial locality and no overlap of latency.
	PointerChase
)

// String returns a short name for the pattern kind.
func (k PatternKind) String() string {
	switch k {
	case Sequential:
		return "seq"
	case Strided:
		return "stride"
	case Random:
		return "rand"
	case PointerChase:
		return "chase"
	}
	return "?"
}

// Access is one recorded access-pattern event: Touches element accesses of
// ElemSize bytes following Kind within a logical region of RegionBytes.
type Access struct {
	Kind        PatternKind
	Region      string // logical array name, e.g. "pk.A" or "witness"
	RegionBytes int64  // size of the region being accessed
	ElemSize    int    // bytes per touch
	Stride      int    // byte stride for Strided
	Touches     int64  // number of element touches
	Write       bool   // stores rather than loads

	// BytesPerCycle, when nonzero, overrides the per-kind throughput the
	// bandwidth model assumes for this pattern (e.g. serialization that
	// converts every element is far slower than a raw copy).
	BytesPerCycle float64
}

// FuncStat is one entry of the function-level profile.
type FuncStat struct {
	Name  string
	Nanos int64 // exclusive (self) time
	Calls int64
}

// Phase is one fork-join section of a stage: Grain independent tasks of
// roughly equal size totalling WorkNanos, or a serial section (Grain 1).
// SpawnOverheadNanos is charged per task by the scheduling simulator.
type Phase struct {
	Name      string
	WorkNanos int64 // total work measured single-threaded
	Grain     int   // number of independent tasks (1 = serial)
}

// Recorder accumulates instrumentation events for one stage execution.
// It is not safe for concurrent use: traced runs are single-threaded,
// mirroring how binary instrumentation serializes execution.
type Recorder struct {
	// Ops receives field-operation counts; attach it to the fields in use
	// (Field.Count) for the duration of the run.
	Ops ff.OpCount

	// Control-flow events.
	Branches   int64 // conditional branches executed
	Dispatches int64 // indirect branches (interpreter dispatch, dynamic calls)
	Calls      int64 // function calls

	// Data-flow events.
	BytesCopied int64 // explicit copies (the memcpy traffic of Table IV)
	Allocs      int64 // heap allocations
	AllocBytes  int64

	// Bulk instruction counts added directly to the mix. Used to model
	// code whose per-primitive expansion is known in aggregate — the
	// interpreted/JIT-compiled JavaScript of the profiled stack executes
	// one to two orders of magnitude more machine instructions per source
	// operation than the native Go that stands in for it here.
	ExtraCompute int64
	ExtraControl int64
	ExtraData    int64

	Accesses []Access
	Phases   []Phase

	funcs     map[string]*FuncStat
	stack     []scopeFrame
	wallStart time.Time
	WallNanos int64
}

type scopeFrame struct {
	name  string
	start time.Time
	child time.Duration // time spent in nested scopes
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{funcs: make(map[string]*FuncStat)}
}

// StartWall marks the beginning of the stage's wall-clock window.
func (r *Recorder) StartWall() {
	if r == nil {
		return
	}
	r.wallStart = time.Now()
}

// StopWall closes the wall-clock window.
func (r *Recorder) StopWall() {
	if r == nil {
		return
	}
	r.WallNanos += time.Since(r.wallStart).Nanoseconds()
}

// Enter opens a timed function scope. Always pair with Leave.
func (r *Recorder) Enter(name string) {
	if r == nil {
		return
	}
	r.Calls++
	r.stack = append(r.stack, scopeFrame{name: name, start: time.Now()})
}

// Leave closes the innermost scope, attributing self time to its function.
func (r *Recorder) Leave() {
	if r == nil {
		return
	}
	n := len(r.stack)
	if n == 0 {
		panic("trace: Leave without Enter")
	}
	fr := r.stack[n-1]
	r.stack = r.stack[:n-1]
	total := time.Since(fr.start)
	self := total - fr.child
	st := r.funcs[fr.name]
	if st == nil {
		st = &FuncStat{Name: fr.name}
		r.funcs[fr.name] = st
	}
	st.Nanos += self.Nanoseconds()
	st.Calls++
	if len(r.stack) > 0 {
		r.stack[len(r.stack)-1].child += total
	}
}

// Scope runs fn inside a timed scope.
func (r *Recorder) Scope(name string, fn func()) {
	if r == nil {
		fn()
		return
	}
	r.Enter(name)
	fn()
	r.Leave()
}

// Access records one access-pattern event.
func (r *Recorder) Access(a Access) {
	if r == nil {
		return
	}
	r.Accesses = append(r.Accesses, a)
}

// Copy records a bulk copy of n bytes (and its implied load+store traffic
// as sequential access patterns over an anonymous region).
func (r *Recorder) Copy(region string, n int64) {
	if r == nil {
		return
	}
	r.BytesCopied += n
	r.Accesses = append(r.Accesses,
		Access{Kind: Sequential, Region: region + ".src", RegionBytes: n, ElemSize: 64, Touches: n / 64},
		Access{Kind: Sequential, Region: region + ".dst", RegionBytes: n, ElemSize: 64, Touches: n / 64, Write: true},
	)
}

// Alloc records a heap allocation of n bytes.
func (r *Recorder) Alloc(n int64) {
	if r == nil {
		return
	}
	r.Allocs++
	r.AllocBytes += n
}

// AllocN records count heap allocations of bytesEach bytes.
func (r *Recorder) AllocN(count, bytesEach int64) {
	if r == nil {
		return
	}
	r.Allocs += count
	r.AllocBytes += count * bytesEach
}

// InstrBulk adds raw instruction counts to the three mix categories.
func (r *Recorder) InstrBulk(compute, control, data int64) {
	if r == nil {
		return
	}
	r.ExtraCompute += compute
	r.ExtraControl += control
	r.ExtraData += data
}

// Branch records n conditional branches.
func (r *Recorder) Branch(n int64) {
	if r == nil {
		return
	}
	r.Branches += n
}

// Dispatch records n indirect branches (interpreter opcode dispatch).
func (r *Recorder) Dispatch(n int64) {
	if r == nil {
		return
	}
	r.Dispatches += n
}

// PhaseRun measures fn as one fork-join phase with the given task grain
// (1 = serial). The phase is also a timed function scope.
func (r *Recorder) PhaseRun(name string, grain int, fn func()) {
	if r == nil {
		fn()
		return
	}
	r.Enter(name)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	r.Leave()
	r.Phases = append(r.Phases, Phase{Name: name, WorkNanos: elapsed.Nanoseconds(), Grain: grain})
}

// TopFunctions returns the function profile sorted by self time,
// descending.
func (r *Recorder) TopFunctions() []FuncStat {
	out := make([]FuncStat, 0, len(r.funcs))
	for _, st := range r.funcs {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalFuncNanos sums self time over all profiled functions.
func (r *Recorder) TotalFuncNanos() int64 {
	var t int64
	for _, st := range r.funcs {
		t += st.Nanos
	}
	return t
}

// TotalLoads sums read touches over all recorded access patterns.
func (r *Recorder) TotalLoads() int64 {
	var t int64
	for i := range r.Accesses {
		if !r.Accesses[i].Write {
			t += r.Accesses[i].Touches
		}
	}
	return t
}

// TotalStores sums write touches over all recorded access patterns.
func (r *Recorder) TotalStores() int64 {
	var t int64
	for i := range r.Accesses {
		if r.Accesses[i].Write {
			t += r.Accesses[i].Touches
		}
	}
	return t
}
