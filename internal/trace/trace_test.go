package trace

import (
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	// Every hook must be a no-op on a nil recorder.
	r.StartWall()
	r.StopWall()
	r.Access(Access{})
	r.Copy("x", 100)
	r.Alloc(10)
	r.AllocN(5, 10)
	r.Branch(1)
	r.Dispatch(1)
	r.InstrBulk(1, 2, 3)
	ran := false
	r.Scope("s", func() { ran = true })
	if !ran {
		t.Error("Scope on nil recorder must still run fn")
	}
	ran = false
	r.PhaseRun("p", 2, func() { ran = true })
	if !ran {
		t.Error("PhaseRun on nil recorder must still run fn")
	}
}

func TestScopeTiming(t *testing.T) {
	r := NewRecorder()
	r.Scope("outer", func() {
		time.Sleep(2 * time.Millisecond)
		r.Scope("inner", func() {
			time.Sleep(4 * time.Millisecond)
		})
	})
	fns := r.TopFunctions()
	if len(fns) != 2 {
		t.Fatalf("expected 2 functions, got %d", len(fns))
	}
	var outer, inner *FuncStat
	for i := range fns {
		switch fns[i].Name {
		case "outer":
			outer = &fns[i]
		case "inner":
			inner = &fns[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing function entries")
	}
	// Self time: inner ≈ 4ms, outer ≈ 2ms (child time excluded).
	if inner.Nanos < outer.Nanos {
		t.Errorf("inner self time (%d) should exceed outer self time (%d)", inner.Nanos, outer.Nanos)
	}
	if outer.Nanos > 3_500_000 {
		t.Errorf("outer self time %d includes child time", outer.Nanos)
	}
	if got := r.TotalFuncNanos(); got != outer.Nanos+inner.Nanos {
		t.Errorf("TotalFuncNanos = %d", got)
	}
}

func TestLeaveWithoutEnterPanics(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Error("Leave without Enter should panic")
		}
	}()
	r.Leave()
}

func TestPhaseRecording(t *testing.T) {
	r := NewRecorder()
	r.PhaseRun("p1", 8, func() { time.Sleep(time.Millisecond) })
	r.PhaseRun("p2", 1, func() {})
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(r.Phases))
	}
	if r.Phases[0].Name != "p1" || r.Phases[0].Grain != 8 {
		t.Errorf("phase 0: %+v", r.Phases[0])
	}
	if r.Phases[0].WorkNanos < 500_000 {
		t.Errorf("phase 0 work = %d, expected ≥ 0.5ms", r.Phases[0].WorkNanos)
	}
}

func TestCountersAccumulate(t *testing.T) {
	r := NewRecorder()
	r.Branch(10)
	r.Branch(5)
	r.Dispatch(3)
	r.Alloc(64)
	r.AllocN(4, 16)
	r.InstrBulk(100, 200, 300)
	if r.Branches != 15 || r.Dispatches != 3 {
		t.Errorf("control counters: %d %d", r.Branches, r.Dispatches)
	}
	if r.Allocs != 5 || r.AllocBytes != 64+64 {
		t.Errorf("alloc counters: %d %d", r.Allocs, r.AllocBytes)
	}
	if r.ExtraCompute != 100 || r.ExtraControl != 200 || r.ExtraData != 300 {
		t.Error("InstrBulk not accumulated")
	}
}

func TestCopyEmitsPatterns(t *testing.T) {
	r := NewRecorder()
	r.Copy("buf", 6400)
	if r.BytesCopied != 6400 {
		t.Errorf("BytesCopied = %d", r.BytesCopied)
	}
	if len(r.Accesses) != 2 {
		t.Fatalf("Copy should emit 2 patterns, got %d", len(r.Accesses))
	}
	if r.Accesses[0].Write || !r.Accesses[1].Write {
		t.Error("Copy patterns should be one read + one write")
	}
	if r.Accesses[0].Touches != 100 {
		t.Errorf("touches = %d, want 100", r.Accesses[0].Touches)
	}
}

func TestLoadStoreTotals(t *testing.T) {
	r := NewRecorder()
	r.Access(Access{Touches: 10})
	r.Access(Access{Touches: 7, Write: true})
	r.Access(Access{Touches: 3})
	if r.TotalLoads() != 13 {
		t.Errorf("TotalLoads = %d", r.TotalLoads())
	}
	if r.TotalStores() != 7 {
		t.Errorf("TotalStores = %d", r.TotalStores())
	}
}

func TestWallClock(t *testing.T) {
	r := NewRecorder()
	r.StartWall()
	time.Sleep(2 * time.Millisecond)
	r.StopWall()
	if r.WallNanos < 1_500_000 {
		t.Errorf("WallNanos = %d, want ≥ 1.5ms", r.WallNanos)
	}
	// Wall windows accumulate.
	prev := r.WallNanos
	r.StartWall()
	r.StopWall()
	if r.WallNanos < prev {
		t.Error("WallNanos should accumulate")
	}
}

func TestPatternKindString(t *testing.T) {
	cases := map[PatternKind]string{
		Sequential: "seq", Strided: "stride", Random: "rand", PointerChase: "chase",
		PatternKind(99): "?",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTopFunctionsSorted(t *testing.T) {
	r := NewRecorder()
	r.Scope("slow", func() { time.Sleep(3 * time.Millisecond) })
	r.Scope("fast", func() {})
	fns := r.TopFunctions()
	if fns[0].Name != "slow" {
		t.Errorf("expected slow first, got %q", fns[0].Name)
	}
}
