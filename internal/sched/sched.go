// Package sched implements the multicore scheduling simulator behind the
// scalability analysis (Figs. 6 and 7, Table VI). The host machine cannot
// run the paper's 32-thread sweeps, so each stage's measured fork-join
// phase structure (trace.Phase) is executed on a simulated machine built
// from a cpumodel.CPU: heterogeneous thread speeds (P-cores, E-cores, SMT
// siblings), per-task spawn overhead and per-phase barrier cost.
//
// Speedup saturation then emerges from the real task structure — a phase
// with grain g cannot use more than g workers, serial phases bound the
// whole stage (Amdahl), and spawn/barrier overheads make tiny tasks
// slower at high thread counts, the effect the paper observes for
// sub-second compile runs.
package sched

import (
	"zkperf/internal/cpumodel"
	"zkperf/internal/trace"
)

// Machine is a simulated multicore target.
type Machine struct {
	// Speeds[i] is the relative throughput of worker i (1.0 = a P-core).
	Speeds []float64
	// SpawnNanos is charged serially per task dispatched in a parallel
	// phase (goroutine/worker handoff cost).
	SpawnNanos float64
	// BarrierNanos is charged once per parallel phase per active worker
	// (join/synchronization cost).
	BarrierNanos float64
}

// Defaults for thread-management overheads, calibrated to Go's
// goroutine machinery (~1µs handoff, ~2µs join per worker).
const (
	DefaultSpawnNanos   = 1000
	DefaultBarrierNanos = 2000
)

// NewMachine builds a simulated machine with n hardware threads of the
// given CPU model, in the model's scheduling order (P-cores, then E-cores,
// then SMT siblings).
func NewMachine(cpu *cpumodel.CPU, threads int) *Machine {
	if threads < 1 {
		threads = 1
	}
	if threads > cpu.TotalThreads() {
		threads = cpu.TotalThreads()
	}
	speeds := make([]float64, threads)
	for i := range speeds {
		speeds[i] = cpu.CoreSpeed(i)
	}
	return &Machine{
		Speeds:       speeds,
		SpawnNanos:   DefaultSpawnNanos,
		BarrierNanos: DefaultBarrierNanos,
	}
}

// phaseTime computes the makespan of one fork-join phase on m.
func (m *Machine) phaseTime(p trace.Phase) float64 {
	work := float64(p.WorkNanos)
	if work <= 0 {
		return 0
	}
	grain := p.Grain
	if grain < 1 {
		grain = 1
	}
	if grain == 1 || len(m.Speeds) == 1 {
		// Serial phase runs on the fastest worker.
		return work / m.Speeds[0]
	}
	workers := len(m.Speeds)
	if workers > grain {
		workers = grain
	}
	taskCost := work / float64(grain)

	// Equal-size tasks on heterogeneous workers: find the smallest
	// makespan T such that Σ_i floor(T·s_i/c) ≥ grain, by binary search.
	feasible := func(T float64) bool {
		var done int64
		for i := 0; i < workers; i++ {
			done += int64(T * m.Speeds[i] / taskCost)
			if done >= int64(grain) {
				return true
			}
		}
		return false
	}
	lo, hi := 0.0, work/m.Speeds[0]+taskCost
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}

	// Serial dispatch and join overheads.
	overhead := m.SpawnNanos*float64(grain) + m.BarrierNanos*float64(workers)
	return hi + overhead
}

// StageTime simulates a whole stage (its ordered phases) and returns the
// total nanoseconds on m.
func (m *Machine) StageTime(phases []trace.Phase) float64 {
	var t float64
	for i := range phases {
		t += m.phaseTime(phases[i])
	}
	return t
}

// StrongScaling returns the Fig. 6 curve: speedup t₁/tₙ for each thread
// count, over a fixed phase structure.
func StrongScaling(cpu *cpumodel.CPU, phases []trace.Phase, threadCounts []int) []float64 {
	t1 := NewMachine(cpu, 1).StageTime(phases)
	out := make([]float64, len(threadCounts))
	for i, n := range threadCounts {
		tn := NewMachine(cpu, n).StageTime(phases)
		if tn > 0 {
			out[i] = t1 / tn
		}
	}
	return out
}

// WeakScaling returns the Fig. 7 curve: speedup t₁·sf/tₙ where the phase
// structure scales with the thread count. phasesBySize[i] is the structure
// for scale factor sf = 2^i matched with threadCounts[i]; the baseline t₁
// uses phasesBySize[0] on one thread.
func WeakScaling(cpu *cpumodel.CPU, phasesBySize [][]trace.Phase, threadCounts []int, scaleFactors []float64) []float64 {
	if len(phasesBySize) != len(threadCounts) || len(threadCounts) != len(scaleFactors) {
		panic("sched: WeakScaling input length mismatch")
	}
	if len(phasesBySize) == 0 {
		return nil
	}
	t1 := NewMachine(cpu, 1).StageTime(phasesBySize[0])
	out := make([]float64, len(threadCounts))
	for i := range threadCounts {
		tn := NewMachine(cpu, threadCounts[i]).StageTime(phasesBySize[i])
		if tn > 0 {
			out[i] = t1 * scaleFactors[i] / tn
		}
	}
	return out
}
