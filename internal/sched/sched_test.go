package sched

import (
	"testing"

	"zkperf/internal/cpumodel"
	"zkperf/internal/trace"
)

func i9() *cpumodel.CPU { return cpumodel.NewI9_13900K() }

func TestNewMachineClamping(t *testing.T) {
	cpu := i9()
	if m := NewMachine(cpu, 0); len(m.Speeds) != 1 {
		t.Errorf("threads=0 should clamp to 1, got %d", len(m.Speeds))
	}
	if m := NewMachine(cpu, 1000); len(m.Speeds) != cpu.TotalThreads() {
		t.Errorf("threads should clamp to SMT count %d, got %d", cpu.TotalThreads(), len(m.Speeds))
	}
	// First 8 workers are P-cores (speed 1), next 16 E-cores.
	m := NewMachine(cpu, 32)
	if m.Speeds[0] != 1.0 || m.Speeds[7] != 1.0 {
		t.Error("first 8 workers should be P-cores")
	}
	if m.Speeds[8] != cpumodel.EffCoreSpeedFactor {
		t.Error("worker 8 should be an E-core")
	}
	if m.Speeds[31] >= cpumodel.EffCoreSpeedFactor {
		t.Error("last workers should be SMT siblings (slowest)")
	}
}

func TestSerialPhaseUnaffectedByThreads(t *testing.T) {
	phases := []trace.Phase{{Name: "serial", WorkNanos: 1e9, Grain: 1}}
	t1 := NewMachine(i9(), 1).StageTime(phases)
	t32 := NewMachine(i9(), 32).StageTime(phases)
	if t1 != t32 {
		t.Errorf("serial phase: t1=%v t32=%v should be equal", t1, t32)
	}
}

func TestParallelPhaseScales(t *testing.T) {
	phases := []trace.Phase{{Name: "par", WorkNanos: 1e9, Grain: 1024}}
	t1 := NewMachine(i9(), 1).StageTime(phases)
	t2 := NewMachine(i9(), 2).StageTime(phases)
	t8 := NewMachine(i9(), 8).StageTime(phases)
	if !(t1 > t2 && t2 > t8) {
		t.Errorf("expected monotone improvement: %v %v %v", t1, t2, t8)
	}
	// With 8 equal P-cores the speedup should be close to 8.
	sp := t1 / t8
	if sp < 6.5 || sp > 8.1 {
		t.Errorf("8-thread speedup = %v, want ≈8", sp)
	}
}

func TestGrainLimitsSpeedup(t *testing.T) {
	// A grain-2 phase cannot speed up beyond 2x.
	phases := []trace.Phase{{Name: "g2", WorkNanos: 1e9, Grain: 2}}
	t1 := NewMachine(i9(), 1).StageTime(phases)
	t8 := NewMachine(i9(), 8).StageTime(phases)
	if sp := t1 / t8; sp > 2.05 {
		t.Errorf("grain-2 speedup = %v, should be ≤ 2", sp)
	}
}

func TestAmdahlComposition(t *testing.T) {
	// Half serial, half perfectly parallel → speedup ≤ 2 at any thread
	// count, approaching 2.
	phases := []trace.Phase{
		{Name: "serial", WorkNanos: 5e8, Grain: 1},
		{Name: "par", WorkNanos: 5e8, Grain: 4096},
	}
	t1 := NewMachine(i9(), 1).StageTime(phases)
	t8 := NewMachine(i9(), 8).StageTime(phases)
	sp := t1 / t8
	if sp < 1.6 || sp > 2.0 {
		t.Errorf("Amdahl composition speedup = %v, want ∈ (1.6, 2.0]", sp)
	}
}

func TestOverheadPenalizesTinyTasks(t *testing.T) {
	// A phase with many tiny tasks can get SLOWER with more threads — the
	// effect the paper observed for sub-second compile runs at 24 threads.
	phases := []trace.Phase{{Name: "tiny", WorkNanos: 2e6, Grain: 2000}} // 1µs tasks
	t1 := NewMachine(i9(), 1).StageTime(phases)
	t24 := NewMachine(i9(), 24).StageTime(phases)
	if t24 < t1/24 {
		t.Errorf("overhead model broken: t24=%v vs t1=%v", t24, t1)
	}
	// The spawn overhead (1µs per task) should roughly double the serial
	// cost here regardless of threads.
	if t24 < 2e6 {
		t.Errorf("expected spawn overhead to dominate, t24=%v", t24)
	}
}

func TestEmptyAndZeroPhases(t *testing.T) {
	m := NewMachine(i9(), 4)
	if got := m.StageTime(nil); got != 0 {
		t.Errorf("empty stage time = %v", got)
	}
	if got := m.StageTime([]trace.Phase{{WorkNanos: 0, Grain: 8}}); got != 0 {
		t.Errorf("zero-work phase time = %v", got)
	}
	// Grain 0 treated as serial.
	if got := m.StageTime([]trace.Phase{{WorkNanos: 100, Grain: 0}}); got <= 0 {
		t.Errorf("grain-0 phase time = %v", got)
	}
}

func TestStrongScalingCurveShape(t *testing.T) {
	phases := []trace.Phase{
		{Name: "serial", WorkNanos: 2e8, Grain: 1},
		{Name: "par", WorkNanos: 8e8, Grain: 1 << 16},
	}
	threads := []int{1, 2, 4, 8, 16, 32}
	sp := StrongScaling(i9(), phases, threads)
	if sp[0] != 1 {
		t.Errorf("speedup at 1 thread = %v, want 1", sp[0])
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1]*0.9 {
			t.Errorf("speedup dropped sharply at %d threads: %v", threads[i], sp)
		}
	}
	// 80% parallel: asymptote at 5x; with E-cores helping, allow up to 5.2.
	if sp[len(sp)-1] > 5.2 {
		t.Errorf("final speedup %v exceeds Amdahl bound for 80%% parallel", sp[len(sp)-1])
	}
}

func TestWeakScalingFlatForConstantWork(t *testing.T) {
	// A stage whose work does NOT grow with the scale factor (like the
	// paper's witness/verify stages) has WS speedup ≈ sf — i.e. linear.
	base := []trace.Phase{{Name: "const", WorkNanos: 1e8, Grain: 1}}
	phasesBySize := [][]trace.Phase{base, base, base}
	threads := []int{1, 2, 4}
	sfs := []float64{1, 2, 4}
	ws := WeakScaling(i9(), phasesBySize, threads, sfs)
	for i := range ws {
		if ws[i] < sfs[i]*0.99 || ws[i] > sfs[i]*1.01 {
			t.Errorf("constant-work WS[%d] = %v, want %v", i, ws[i], sfs[i])
		}
	}
}

func TestWeakScalingPerfectlyParallel(t *testing.T) {
	// Work doubling with size, perfectly parallel → WS speedup stays ≈ sf
	// × t1/tn... with tn == t1 (work/threads constant), speedup = sf.
	mk := func(work int64) []trace.Phase {
		return []trace.Phase{{Name: "p", WorkNanos: work, Grain: 1 << 12}}
	}
	phasesBySize := [][]trace.Phase{mk(1e8), mk(2e8), mk(4e8)}
	threads := []int{1, 2, 4}
	sfs := []float64{1, 2, 4}
	ws := WeakScaling(i9(), phasesBySize, threads, sfs)
	for i := range ws {
		if ws[i] < sfs[i]*0.8 {
			t.Errorf("parallel WS[%d] = %v, want ≈%v", i, ws[i], sfs[i])
		}
	}
}

func TestWeakScalingMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeakScaling should panic on mismatched inputs")
		}
	}()
	WeakScaling(i9(), nil, []int{1}, []float64{1})
}

func TestHeterogeneousSlowdown(t *testing.T) {
	// Adding E-core workers (9th+) helps less than P-cores did.
	phases := []trace.Phase{{Name: "par", WorkNanos: 1e9, Grain: 1 << 14}}
	t8 := NewMachine(i9(), 8).StageTime(phases)
	t16 := NewMachine(i9(), 16).StageTime(phases)
	gain := t8 / t16
	if gain > 2.0 {
		t.Errorf("8 E-cores gave %vx gain; should be < 2 (they are slower)", gain)
	}
	if gain < 1.0 {
		t.Errorf("more workers made things slower on large tasks: %v", gain)
	}
}
