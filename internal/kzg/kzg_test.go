package kzg

import (
	"testing"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/pairing"
)

func testSRS(t *testing.T, c *curve.Curve) (*SRS, *pairing.Engine) {
	t.Helper()
	srs, err := NewSRS(c, 64, ff.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return srs, pairing.NewEngine(c)
}

func randPoly(fr *ff.Field, n int, seed uint64) []ff.Element {
	rng := ff.NewRNG(seed)
	p := make([]ff.Element, n)
	for i := range p {
		fr.Random(&p[i], rng)
	}
	return p
}

func TestOpenVerify(t *testing.T) {
	for _, c := range []*curve.Curve{curve.NewBN254(), curve.NewBLS12381()} {
		srs, eng := testSRS(t, c)
		p := randPoly(c.Fr, 33, 7)
		com, err := srs.Commit(p)
		if err != nil {
			t.Fatal(err)
		}
		var z ff.Element
		c.Fr.SetUint64(&z, 12345)
		eval, proof, err := srs.Open(p, &z)
		if err != nil {
			t.Fatal(err)
		}
		if !srs.Verify(eng, &com, &z, &eval, &proof) {
			t.Fatalf("%s: valid opening rejected", c.Name)
		}
		// Wrong evaluation must fail.
		var badEval ff.Element
		c.Fr.Add(&badEval, &eval, &eval)
		c.Fr.Add(&badEval, &badEval, &eval) // 3·eval ≠ eval for eval ≠ 0
		if srs.Verify(eng, &com, &z, &badEval, &proof) {
			t.Fatalf("%s: wrong evaluation accepted", c.Name)
		}
		// Wrong point must fail.
		var badZ ff.Element
		c.Fr.SetUint64(&badZ, 999)
		if srs.Verify(eng, &com, &badZ, &eval, &proof) {
			t.Fatalf("%s: wrong point accepted", c.Name)
		}
		// Wrong commitment must fail.
		badCom := c.G1Gen
		if srs.Verify(eng, &badCom, &z, &eval, &proof) {
			t.Fatalf("%s: wrong commitment accepted", c.Name)
		}
	}
}

func TestCommitLinear(t *testing.T) {
	// Commit(p) + Commit(q) == Commit(p+q): commitments are homomorphic.
	c := curve.NewBN254()
	srs, _ := testSRS(t, c)
	fr := c.Fr
	p := randPoly(fr, 20, 1)
	q := randPoly(fr, 20, 2)
	sum := make([]ff.Element, 20)
	for i := range sum {
		fr.Add(&sum[i], &p[i], &q[i])
	}
	cp, _ := srs.Commit(p)
	cq, _ := srs.Commit(q)
	csum, _ := srs.Commit(sum)
	var pj, qj, total curve.G1Jac
	c.G1FromAffine(&pj, &cp)
	c.G1FromAffine(&qj, &cq)
	c.G1Add(&total, &pj, &qj)
	var sumJ curve.G1Jac
	c.G1FromAffine(&sumJ, &csum)
	if !c.G1Equal(&total, &sumJ) {
		t.Error("commitments are not additively homomorphic")
	}
}

func TestConstantAndEmptyPoly(t *testing.T) {
	c := curve.NewBN254()
	srs, eng := testSRS(t, c)
	fr := c.Fr
	// Constant polynomial opens to itself everywhere.
	p := []ff.Element{fr.MustElement("42")}
	com, err := srs.Commit(p)
	if err != nil {
		t.Fatal(err)
	}
	var z ff.Element
	fr.SetUint64(&z, 5)
	eval, proof, err := srs.Open(p, &z)
	if err != nil {
		t.Fatal(err)
	}
	if fr.String(&eval) != "42" {
		t.Errorf("constant eval = %s", fr.String(&eval))
	}
	if !srs.Verify(eng, &com, &z, &eval, &proof) {
		t.Error("constant opening rejected")
	}
	// Empty polynomial commits to infinity.
	com0, err := srs.Commit(nil)
	if err != nil || !com0.Inf {
		t.Error("empty commitment should be infinity")
	}
}

func TestDegreeBound(t *testing.T) {
	c := curve.NewBN254()
	srs, _ := testSRS(t, c)
	if _, err := srs.Commit(randPoly(c.Fr, 65, 3)); err == nil {
		t.Error("oversized polynomial accepted")
	}
	if srs.MaxDegree() != 64 {
		t.Errorf("MaxDegree = %d", srs.MaxDegree())
	}
	if _, err := NewSRS(c, 1, ff.NewRNG(1)); err == nil {
		t.Error("degenerate SRS accepted")
	}
}
