// Package kzg implements the Kate–Zaverucha–Goldberg polynomial commitment
// scheme over the repository's pairing-friendly curves. It is the
// commitment layer of the PLONK proving scheme (the second scheme snarkjs
// supports, which the paper compares against Groth16).
//
// A commitment to p(x) is [p(τ)]·G1 for the structured reference string
// {[τ^i]G1}; an opening proof at z is a commitment to the quotient
// (p(x) − p(z))/(x − z), verified with one pairing equation:
//
//	e(C − [p(z)]G1, G2) == e(W, [τ]G2 − [z]G2)
package kzg

import (
	"context"
	"fmt"
	"io"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/pairing"
	"zkperf/internal/poly"
	"zkperf/internal/telemetry"
)

// SRS is the structured reference string (powers of the toxic τ in G1,
// plus [τ]G2 for verification).
type SRS struct {
	C     *curve.Curve
	G1    []curve.G1Affine // [τ^i]·G1 for i < len
	G2Tau curve.G2Affine   // [τ]·G2
}

// NewSRS generates an SRS supporting polynomials of degree < size.
// τ comes from rng (this is the scheme's trusted setup).
func NewSRS(c *curve.Curve, size int, rng *ff.RNG) (*SRS, error) {
	return NewSRSCtx(context.Background(), c, size, rng, 1)
}

// NewSRSCtx is the cancellable NewSRS: the fixed-base batch that computes
// the τ powers checks ctx at chunk boundaries, and threads bounds its
// parallelism.
func NewSRSCtx(ctx context.Context, c *curve.Curve, size int, rng *ff.RNG, threads int) (*SRS, error) {
	if size < 2 {
		return nil, fmt.Errorf("kzg: SRS size must be ≥ 2")
	}
	var tau ff.Element
	c.Fr.RandomNonZero(&tau, rng)

	scalars := make([]ff.Element, size)
	var acc ff.Element
	c.Fr.One(&acc)
	for i := range scalars {
		scalars[i] = acc
		c.Fr.Mul(&acc, &acc, &tau)
	}
	tab := c.G1GenTable()
	g1, err := tab.MulBatchCtx(ctx, scalars, threads)
	if err != nil {
		return nil, err
	}
	srs := &SRS{C: c, G1: g1}

	var g2j curve.G2Jac
	c.G2FromAffine(&g2j, &c.G2Gen)
	c.G2ScalarMul(&g2j, &g2j, &tau)
	c.G2ToAffine(&srs.G2Tau, &g2j)
	return srs, nil
}

// MaxDegree returns the largest committable polynomial length.
func (s *SRS) MaxDegree() int { return len(s.G1) }

// Commit returns [p(τ)]·G1. The polynomial is given low-degree-first and
// must fit the SRS.
func (s *SRS) Commit(p []ff.Element) (curve.G1Affine, error) {
	return s.CommitCtx(context.Background(), p, 1)
}

// CommitCtx is the cancellable Commit: the MSM checks ctx at
// Pippenger-window boundaries, and threads bounds its parallelism.
func (s *SRS) CommitCtx(ctx context.Context, p []ff.Element, threads int) (curve.G1Affine, error) {
	var out curve.G1Affine
	if len(p) > len(s.G1) {
		return out, fmt.Errorf("kzg: polynomial degree %d exceeds SRS size %d", len(p)-1, len(s.G1)-1)
	}
	if len(p) == 0 {
		out.Inf = true
		return out, nil
	}
	acc, err := s.C.G1MSMCtx(ctx, s.G1[:len(p)], p, threads)
	if err != nil {
		return out, err
	}
	s.C.G1ToAffine(&out, &acc)
	return out, nil
}

// Open evaluates p at z and produces the witness commitment for the
// quotient (p(x) − p(z))/(x − z) (synthetic division).
func (s *SRS) Open(p []ff.Element, z *ff.Element) (eval ff.Element, proof curve.G1Affine, err error) {
	return s.OpenCtx(context.Background(), p, z, 1)
}

// OpenCtx is the cancellable Open.
func (s *SRS) OpenCtx(ctx context.Context, p []ff.Element, z *ff.Element, threads int) (eval ff.Element, proof curve.G1Affine, err error) {
	fr := s.C.Fr
	eval = poly.Eval(fr, p, z)
	if len(p) == 0 {
		proof.Inf = true
		return eval, proof, nil
	}
	// q(x) = (p(x) − p(z)) / (x − z) via Horner-style synthetic division.
	q := make([]ff.Element, len(p)-1)
	var carry ff.Element
	for i := len(p) - 1; i >= 1; i-- {
		fr.Mul(&carry, &carry, z)
		fr.Add(&carry, &carry, &p[i])
		q[i-1] = carry
	}
	proof, err = s.CommitCtx(ctx, q, threads)
	return eval, proof, err
}

// Encode serializes the SRS (the universal, circuit-independent part of
// a PLONK proving key).
func (s *SRS) Encode(w io.Writer) error {
	if err := s.C.WriteG1Slice(w, s.G1); err != nil {
		return err
	}
	_, err := w.Write(s.C.G2Bytes(&s.G2Tau))
	return err
}

// ReadSRS deserializes an SRS written by Encode.
func ReadSRS(r io.Reader, c *curve.Curve) (*SRS, error) {
	g1, err := c.ReadG1Slice(r)
	if err != nil {
		return nil, err
	}
	srs := &SRS{C: c, G1: g1}
	buf := make([]byte, c.G2EncodedLen())
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if err := c.G2SetBytes(&srs.G2Tau, buf); err != nil {
		return nil, err
	}
	return srs, nil
}

// Verify checks an opening: that the committed polynomial evaluates to
// eval at z.
func (s *SRS) Verify(eng *pairing.Engine, commitment *curve.G1Affine, z, eval *ff.Element, proof *curve.G1Affine) bool {
	return s.VerifyCtx(context.Background(), eng, commitment, z, eval, proof)
}

// VerifyCtx is Verify with a context, so the pairing check is attributed
// to a telemetry probe riding in ctx (two Miller loops + one final
// exponentiation per opening).
func (s *SRS) VerifyCtx(ctx context.Context, eng *pairing.Engine, commitment *curve.G1Affine, z, eval *ff.Element, proof *curve.G1Affine) bool {
	c := s.C
	// e(C − [eval]G1, G2) == e(W, [τ]G2 − [z]G2)
	// ⇔ e(C − [eval]G1, −G2) · e(W, [τ−z]G2) == 1 … rearranged as
	// e(C − [eval]G1 + [z]·W??) — use the standard bilinear form:
	// e(C − [eval]G1, G2) · e(−W, [τ]G2 − [z]G2) == 1.
	var evalG1, lhs curve.G1Jac
	var g1 curve.G1Jac
	c.G1FromAffine(&g1, &c.G1Gen)
	c.G1ScalarMul(&evalG1, &g1, eval)
	var cj curve.G1Jac
	c.G1FromAffine(&cj, commitment)
	c.G1Neg(&evalG1, &evalG1)
	c.G1Add(&lhs, &cj, &evalG1)
	var lhsA curve.G1Affine
	c.G1ToAffine(&lhsA, &lhs)

	var zG2, rhs2 curve.G2Jac
	var g2 curve.G2Jac
	c.G2FromAffine(&g2, &c.G2Gen)
	c.G2ScalarMul(&zG2, &g2, z)
	var tauJ curve.G2Jac
	c.G2FromAffine(&tauJ, &s.G2Tau)
	c.G2Neg(&zG2, &zG2)
	c.G2Add(&rhs2, &tauJ, &zG2)
	var rhs2A curve.G2Affine
	c.G2ToAffine(&rhs2A, &rhs2)

	var negProof curve.G1Affine
	c.G1NegAffine(&negProof, proof)

	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	ok := eng.PairingCheck(
		[]curve.G1Affine{lhsA, negProof},
		[]curve.G2Affine{c.G2Gen, rhs2A},
	)
	probe.Observe(telemetry.KernelPairing, t0, 2)
	return ok
}
