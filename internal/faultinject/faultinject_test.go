package faultinject

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedPointIsNil(t *testing.T) {
	if err := Point(context.Background(), "nowhere"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if err := Point(nil, "nowhere"); err != nil {
		t.Fatalf("disarmed point with nil ctx returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true with empty registry")
	}
}

func TestArmErrorAndDisarm(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	disarm := Arm("p", Fault{Kind: KindError, Err: sentinel})
	if !Armed() {
		t.Fatal("Armed() false after Arm")
	}
	if err := Point(nil, "p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	disarm()
	if err := Point(nil, "p"); err != nil {
		t.Fatalf("err after disarm = %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true after disarm")
	}
}

func TestDefaultErrIsErrInjected(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Kind: KindError})
	if err := Point(nil, "p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Kind: KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), `"p"`) {
			t.Fatalf("panic message %q does not name the point", r)
		}
	}()
	Point(nil, "p")
}

func TestAfterAndCount(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Kind: KindError, After: 1, Count: 2})
	var errsSeen int
	for i := 0; i < 5; i++ {
		if Point(nil, "p") != nil {
			errsSeen++
			if i == 0 {
				t.Error("fault fired on the skipped first hit")
			}
		}
	}
	if errsSeen != 2 {
		t.Fatalf("fault fired %d times, want 2", errsSeen)
	}
}

func TestContextFaultIsScoped(t *testing.T) {
	ctx := WithFault(context.Background(), "p", Fault{Kind: KindError})
	if err := Point(ctx, "p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("ctx-armed point: %v, want ErrInjected", err)
	}
	// A sibling context is untouched, and so is the global registry.
	if err := Point(context.Background(), "p"); err != nil {
		t.Fatalf("sibling ctx hit the fault: %v", err)
	}
	if Armed() {
		t.Fatal("context arming leaked into the global registry")
	}
}

func TestDelayHonorsContext(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Kind: KindDelay, Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if err := Point(ctx, "p"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(t0) > 10*time.Second {
		t.Fatal("delay did not abort on cancellation")
	}
}

func TestLimitWriterTruncates(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Kind: KindPartialWrite, Bytes: 5})
	var buf bytes.Buffer
	w := LimitWriter(nil, "p", &buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("buffer = %q, want the 5-byte prefix", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write err = %v, want ErrInjected", err)
	}
	// Point itself must not fail the partial-write point: the fault acts
	// through the writer.
	Reset()
	Arm("p", Fault{Kind: KindPartialWrite, Bytes: 5})
	if err := Point(nil, "p"); err != nil {
		t.Fatalf("Point on partial-write fault = %v, want nil", err)
	}
}

func TestLimitWriterPassThroughWhenDisarmed(t *testing.T) {
	var buf bytes.Buffer
	if w := LimitWriter(nil, "p", &buf); w != &buf {
		t.Fatal("LimitWriter wrapped the writer with nothing armed")
	}
}

func TestParseSpec(t *testing.T) {
	disarm, err := ParseSpec("worker.run=panic, backend.prove=error@2, backend.setup=delay:1ms, artifact.write=partial:64")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if !Armed() {
		t.Fatal("spec did not arm anything")
	}
	if err := Point(nil, PointBackendProve); !errors.Is(err, ErrInjected) {
		t.Fatalf("backend.prove = %v, want ErrInjected", err)
	}
	if err := Point(nil, PointBackendProve); !errors.Is(err, ErrInjected) {
		t.Fatalf("backend.prove second hit = %v, want ErrInjected", err)
	}
	if err := Point(nil, PointBackendProve); err != nil {
		t.Fatalf("backend.prove after count exhausted = %v, want nil", err)
	}
	if err := Point(nil, PointBackendSetup); err != nil {
		t.Fatalf("delay fault returned %v", err)
	}
	disarm()
	if Armed() {
		t.Fatal("disarm left faults armed")
	}

	for _, bad := range []string{"nokind", "p=wat", "p=delay:xyz", "p=partial:-1", "p=error@0"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", bad)
		}
	}
	if Armed() {
		t.Fatal("failed parses left faults armed")
	}
}
