// Package faultinject is a deterministic fault-injection harness for the
// serving stack. The proving pipeline is long-running and stateful —
// minutes-scale jobs, cached setup artifacts worth minutes of compute —
// so its failure paths (a panicking kernel, a process killed mid-write,
// a corrupt artifact on disk) are exactly the paths ordinary tests never
// reach. This package gives those paths names.
//
// Production code marks each interesting site with a named Point:
//
//	if err := faultinject.Point(ctx, faultinject.PointBackendProve); err != nil {
//	    return err
//	}
//
// When nothing is armed a Point is one atomic load plus (when a context
// is supplied) one context lookup — cheap enough to leave in release
// builds, which is the point: the exact binary that serves traffic is the
// one whose failure paths were exercised.
//
// Faults are armed either globally (Arm / Reset — used by tests and by
// zkserve's hidden -fault-inject flag) or per-context (WithFault — used
// to poison a single request). A Fault fires as a returned error, a
// panic, a delay, or a partial write (via LimitWriter at sites that
// persist bytes), optionally skipping the first After hits and firing at
// most Count times.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by an armed KindError or
// KindPartialWrite fault. Tests assert on it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind selects what an armed fault does when its Point is hit.
type Kind int

const (
	// KindError makes Point return Err (ErrInjected when nil).
	KindError Kind = iota
	// KindPanic makes Point panic — the harness for testing panic
	// isolation in worker pools.
	KindPanic
	// KindDelay makes Point sleep for Delay (honoring ctx cancellation),
	// then proceed normally — the harness for deadline/timeout paths.
	KindDelay
	// KindPartialWrite makes LimitWriter at the same point truncate the
	// stream after Bytes bytes and fail with Err — the harness for
	// kill-between-write and torn-write persistence faults. Point itself
	// treats it as a no-op so the write path runs into the truncation.
	KindPartialWrite
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindPartialWrite:
		return "partial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault describes one armed failure.
type Fault struct {
	Kind  Kind
	Err   error         // KindError/KindPartialWrite payload (nil → ErrInjected)
	Delay time.Duration // KindDelay sleep
	Bytes int64         // KindPartialWrite: bytes written before failing
	After int           // skip the first After hits of the point
	Count int           // fire at most Count times (0 → every hit)
}

// state is one armed fault plus its hit accounting. Arm and WithFault
// hand out *state so the countdown is shared by everyone holding it.
type state struct {
	f     Fault
	hits  atomic.Int64
	fired atomic.Int64
}

// shouldFire consumes one hit and reports whether the fault fires on it.
func (st *state) shouldFire() bool {
	h := st.hits.Add(1)
	if h <= int64(st.f.After) {
		return false
	}
	if st.f.Count > 0 && st.fired.Load() >= int64(st.f.Count) {
		return false
	}
	st.fired.Add(1)
	return true
}

func (st *state) err() error {
	if st.f.Err != nil {
		return st.f.Err
	}
	return ErrInjected
}

// The global registry. armedCount gates the fast path: when zero, Point
// only pays the atomic load (plus the context probe when ctx is non-nil).
var (
	mu         sync.Mutex
	registry   = map[string]*state{}
	armedCount atomic.Int64
)

// Arm installs a global fault at the named point and returns its disarm
// function. Re-arming a point replaces the previous fault.
func Arm(name string, f Fault) (disarm func()) {
	mu.Lock()
	if _, ok := registry[name]; !ok {
		armedCount.Add(1)
	}
	st := &state{f: f}
	registry[name] = st
	mu.Unlock()
	return func() {
		mu.Lock()
		if registry[name] == st {
			delete(registry, name)
			armedCount.Add(-1)
		}
		mu.Unlock()
	}
}

// Reset disarms every globally armed fault (context-armed faults die
// with their context).
func Reset() {
	mu.Lock()
	for name := range registry {
		delete(registry, name)
		armedCount.Add(-1)
	}
	mu.Unlock()
}

// Armed reports whether any global fault is armed — callers that want to
// log loudly when running with injection enabled (zkserve does) check it
// once at startup.
func Armed() bool { return armedCount.Load() > 0 }

// ctxKey indexes the context fault map.
type ctxKey struct{}

// WithFault returns a context carrying an armed fault for the named
// point. Context faults shadow global ones at the same point and travel
// with the request — arming a fault on one job's context poisons only
// that job.
func WithFault(ctx context.Context, name string, f Fault) context.Context {
	m := map[string]*state{}
	if prev, ok := ctx.Value(ctxKey{}).(map[string]*state); ok {
		for k, v := range prev {
			m[k] = v
		}
	}
	m[name] = &state{f: f}
	return context.WithValue(ctx, ctxKey{}, m)
}

// lookup resolves the armed fault for name: context first, then global.
func lookup(ctx context.Context, name string) *state {
	if ctx != nil {
		if m, ok := ctx.Value(ctxKey{}).(map[string]*state); ok {
			if st, ok := m[name]; ok {
				return st
			}
		}
	}
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	st := registry[name]
	mu.Unlock()
	return st
}

// Point is the injection site marker. It returns nil (fast) when nothing
// is armed for name; otherwise it performs the armed fault: returns its
// error, panics, or sleeps. KindPartialWrite is a no-op here — it acts
// through LimitWriter on the write path instead. ctx may be nil at sites
// with no request context.
func Point(ctx context.Context, name string) error {
	st := lookup(ctx, name)
	if st == nil || !st.shouldFire() {
		return nil
	}
	switch st.f.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: armed panic at %q", name))
	case KindDelay:
		if ctx == nil {
			time.Sleep(st.f.Delay)
			return nil
		}
		t := time.NewTimer(st.f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case KindError:
		return st.err()
	default: // KindPartialWrite: handled by LimitWriter
		return nil
	}
}

// limitWriter truncates after n bytes, then fails every write.
type limitWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if lw.n <= 0 {
		return 0, lw.err
	}
	if int64(len(p)) <= lw.n {
		lw.n -= int64(len(p))
		return lw.w.Write(p)
	}
	n, err := lw.w.Write(p[:lw.n])
	lw.n = 0
	if err != nil {
		return n, err
	}
	return n, lw.err
}

// LimitWriter wraps w with the partial-write fault armed at name, if
// any: writes succeed until the fault's byte budget is exhausted, then
// fail with its error — the moral equivalent of the process dying with
// the file half-written. With no partial-write fault armed it returns w
// unchanged.
func LimitWriter(ctx context.Context, name string, w io.Writer) io.Writer {
	st := lookup(ctx, name)
	if st == nil || st.f.Kind != KindPartialWrite || !st.shouldFire() {
		return w
	}
	return &limitWriter{w: w, n: st.f.Bytes, err: st.err()}
}

// Injection point names used across the serving stack. Keeping them here
// (rather than scattered string literals) makes `zkserve -fault-inject`
// discoverable and typo-proof.
const (
	// PointWorkerRun fires at the top of every job execution on a worker.
	PointWorkerRun = "worker.run"
	// PointBackendSetup fires in the registry build just before the
	// backend's (trusted) setup runs.
	PointBackendSetup = "backend.setup"
	// PointBackendProve fires on the worker just before the backend
	// proves a solved witness.
	PointBackendProve = "backend.prove"
	// PointArtifactWrite governs the artifact store's payload write
	// (partial-write faults truncate the temp file here).
	PointArtifactWrite = "artifact.write"
	// PointArtifactRename fires between the temp-file write and the
	// atomic rename — the kill-between-write window.
	PointArtifactRename = "artifact.rename"
	// PointArtifactLoad fires while decoding an artifact read from disk.
	PointArtifactLoad = "artifact.load"
	// PointTableWrite, PointTableRename and PointTableLoad are the
	// fixed-base table store's analogues of the artifact points: partial
	// writes truncate the temp file, rename faults hit the
	// kill-between-write window, load faults fire while decoding.
	PointTableWrite  = "table.write"
	PointTableRename = "table.rename"
	PointTableLoad   = "table.load"
	// PointHTTPProve and PointHTTPVerify fire at the top of the /v1
	// prove (and batch) and verify handlers.
	PointHTTPProve  = "http.prove"
	PointHTTPVerify = "http.verify"
	// PointJournalAppend governs the job journal's WAL appends
	// (partial-write faults tear a record mid-frame here).
	PointJournalAppend = "jobs.journal.append"
	// PointJournalReplay fires at the top of startup WAL replay.
	PointJournalReplay = "jobs.journal.replay"
	// PointJournalCompact fires before the journal's compaction rewrite.
	PointJournalCompact = "jobs.journal.compact"
)

// Points lists the known injection point names, sorted.
func Points() []string {
	out := []string{
		PointWorkerRun, PointBackendSetup, PointBackendProve,
		PointArtifactWrite, PointArtifactRename, PointArtifactLoad,
		PointTableWrite, PointTableRename, PointTableLoad,
		PointHTTPProve, PointHTTPVerify,
		PointJournalAppend, PointJournalReplay, PointJournalCompact,
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses a comma-separated arming spec — the format of
// zkserve's hidden -fault-inject flag — and arms each fault globally,
// returning one disarm function for the lot:
//
//	point=kind[:arg][@count]
//
//	worker.run=panic            panic on every job
//	backend.prove=error@2       fail the first two proves with ErrInjected
//	backend.setup=delay:250ms   sleep 250ms before each setup
//	artifact.write=partial:64   truncate artifact writes after 64 bytes
func ParseSpec(spec string) (disarm func(), err error) {
	var disarms []func()
	undo := func() {
		for _, d := range disarms {
			d()
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			undo()
			return nil, fmt.Errorf("faultinject: malformed spec %q (want point=kind[:arg][@count])", part)
		}
		var f Fault
		if kindStr, countStr, ok := strings.Cut(rest, "@"); ok {
			rest = kindStr
			if f.Count, err = strconv.Atoi(countStr); err != nil || f.Count < 1 {
				undo()
				return nil, fmt.Errorf("faultinject: bad count in %q", part)
			}
		}
		kindStr, arg, _ := strings.Cut(rest, ":")
		switch kindStr {
		case "error":
			f.Kind = KindError
		case "panic":
			f.Kind = KindPanic
		case "delay":
			f.Kind = KindDelay
			if f.Delay, err = time.ParseDuration(arg); err != nil {
				undo()
				return nil, fmt.Errorf("faultinject: bad delay in %q: %v", part, err)
			}
		case "partial":
			f.Kind = KindPartialWrite
			if f.Bytes, err = strconv.ParseInt(arg, 10, 64); err != nil || f.Bytes < 0 {
				undo()
				return nil, fmt.Errorf("faultinject: bad byte budget in %q", part)
			}
		default:
			undo()
			return nil, fmt.Errorf("faultinject: unknown fault kind %q in %q (want error|panic|delay|partial)", kindStr, part)
		}
		disarms = append(disarms, Arm(name, f))
	}
	return undo, nil
}
