// Package pairing implements the optimal ate pairing for BN254 and
// BLS12-381 — the core of the Groth16 verifying stage.
//
// Two implementations coexist:
//
//   - The production path (miller.go) keeps the Miller-loop accumulator
//     point in affine coordinates over Fp2 on the twist, amortizes the
//     per-step slope inversion across all pairs of a multi-pairing with one
//     batched Fp2 inversion, multiplies each line into f with a sparse
//     Fp12 product (13–14 Fp2 muls instead of 54), and exponentiates the
//     hard part of the final exponentiation in the cyclotomic subgroup
//     (Granger–Scott squarings, NAF digits, conjugation as inversion).
//
//   - The reference path below (MillerLoopReference / FinalExpReference /
//     PairReference) untwists G2 points into E(Fp12) once and runs the
//     loop with full Fp12 affine arithmetic: a single uniform, auditable
//     recurrence shared by the D-twist (BN254) and M-twist (BLS12-381).
//     It is retained as the correctness oracle the fast path is tested
//     against, bit-for-bit on the reduced pairing.
//
// Vertical-line denominators lie in the Fp6 subfield and are eliminated by
// the final exponentiation, so both loops omit them (standard denominator
// elimination).
package pairing

import (
	"math/big"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/tower"
)

// GT is an element of the pairing target group (a subgroup of Fp12*).
type GT = tower.E12

// Engine computes pairings on one curve. It precomputes the untwist
// constants and the hard-part exponent of the final exponentiation.
type Engine struct {
	C *curve.Curve

	// untwist coefficients: x ← x'·cx, y ← y'·cy in Fp12.
	cx, cy tower.E12

	// Twisted endomorphism ψ on the twist curve, satisfying
	// untwist(ψ(Q)) = π(untwist(Q)): ψ(x, y) = (conj(x)·psiX, conj(y)·psiY)
	// with psiX = γw², psiY = γw³. ψ² multiplies coordinates by the norms
	// N(γw²), N(γw³) ∈ Fp. Used by the BN optimal-ate tail.
	psiX, psiY   tower.E2
	psi2X, psi2Y ff.Element

	// hardExp = (p⁴ − p² + 1)/r, the non-Frobenius part of the final
	// exponentiation.
	hardExp *big.Int

	// Reference routes Pair and PairingCheck through the full-Fp12
	// reference path. The profiling runner in internal/core sets it: the
	// instruction and memory profiles model the paper's snarkjs verifier,
	// which pays the plain per-step Fp12 arithmetic — not this package's
	// batched-inversion fast loop — and the Table V opcode shares only
	// reproduce if the traced op counts reflect that stack.
	Reference bool
}

// e12Point is an affine point on E(Fp12) (the untwisted image of G2).
type e12Point struct {
	X, Y tower.E12
	Inf  bool
}

// NewEngine builds a pairing engine for c.
func NewEngine(c *curve.Curve) *Engine {
	e := &Engine{C: c}
	tw := c.Tw

	var w2, w3 tower.E12
	tw.WPower(&w2, 2)
	tw.WPower(&w3, 3)
	switch c.Twist {
	case curve.DTwist:
		// ψ(x', y') = (x'·w², y'·w³)
		e.cx, e.cy = w2, w3
	case curve.MTwist:
		// ψ(x', y') = (x'·w⁴/ξ, y'·w³/ξ)
		var w4, xiInv12 tower.E12
		tw.WPower(&w4, 4)
		var xiInv tower.E2
		tw.E2Inverse(&xiInv, &tw.Xi)
		tw.E12FromE2(&xiInv12, &xiInv)
		tw.E12Mul(&e.cx, &w4, &xiInv12)
		tw.E12Mul(&e.cy, &w3, &xiInv12)
	}

	var gw, cj tower.E2
	tw.FrobGammaW(&gw)
	tw.E2Mul(&e.psiX, &gw, &gw)
	tw.E2Mul(&e.psiY, &e.psiX, &gw)
	// ψ² scales coordinates by norms, which land in Fp (imaginary part 0).
	tw.E2Conjugate(&cj, &e.psiX)
	tw.E2Mul(&cj, &cj, &e.psiX)
	e.psi2X = cj.A0
	tw.E2Conjugate(&cj, &e.psiY)
	tw.E2Mul(&cj, &cj, &e.psiY)
	e.psi2Y = cj.A0

	p := c.Fp.Modulus()
	r := c.Fr.Modulus()
	p2 := new(big.Int).Mul(p, p)
	p4 := new(big.Int).Mul(p2, p2)
	hard := new(big.Int).Sub(p4, p2)
	hard.Add(hard, big.NewInt(1))
	hard.Div(hard, r)
	e.hardExp = hard
	return e
}

// untwist maps an affine G2 point (on the twist over Fp2) to E(Fp12).
func (e *Engine) untwist(q *curve.G2Affine) e12Point {
	tw := e.C.Tw
	var p e12Point
	if q.Inf {
		p.Inf = true
		return p
	}
	var x12, y12 tower.E12
	tw.E12FromE2(&x12, &q.X)
	tw.E12FromE2(&y12, &q.Y)
	tw.E12Mul(&p.X, &x12, &e.cx)
	tw.E12Mul(&p.Y, &y12, &e.cy)
	return p
}

// lineAndStep multiplies f by the line through a and b evaluated at
// (xP, yP) ∈ Fp (embedded), and returns a+b. If a == b the tangent line is
// used. Vertical lines (a.x == b.x, a ≠ b) contribute an Fp6 value that the
// final exponentiation kills, so f is left unchanged and the sum is ∞.
func (e *Engine) lineAndStep(f *tower.E12, a, b *e12Point, xP, yP *tower.E12) e12Point {
	tw := e.C.Tw
	if a.Inf {
		return *b
	}
	if b.Inf {
		return *a
	}
	var lambda, num, den tower.E12
	sameX := tw.E12Equal(&a.X, &b.X)
	if sameX && !tw.E12Equal(&a.Y, &b.Y) {
		// Vertical line: a + b = ∞.
		return e12Point{Inf: true}
	}
	if sameX {
		// Tangent: λ = 3x²/2y. If y == 0 the point has order 2 — cannot
		// happen in the prime-order subgroup, but guard anyway.
		if tw.E12IsZero(&a.Y) {
			return e12Point{Inf: true}
		}
		var x2 tower.E12
		tw.E12Square(&x2, &a.X)
		tw.E12Add(&num, &x2, &x2)
		tw.E12Add(&num, &num, &x2)
		tw.E12Add(&den, &a.Y, &a.Y)
	} else {
		tw.E12Sub(&num, &b.Y, &a.Y)
		tw.E12Sub(&den, &b.X, &a.X)
	}
	var denInv tower.E12
	tw.E12Inverse(&denInv, &den)
	tw.E12Mul(&lambda, &num, &denInv)

	// l(P) = (yP − yA) − λ(xP − xA)
	var l, t tower.E12
	tw.E12Sub(&l, yP, &a.Y)
	tw.E12Sub(&t, xP, &a.X)
	tw.E12Mul(&t, &lambda, &t)
	tw.E12Sub(&l, &l, &t)
	tw.E12Mul(f, f, &l)

	// Sum: x3 = λ² − xA − xB; y3 = λ(xA − x3) − yA.
	var sum e12Point
	var l2 tower.E12
	tw.E12Square(&l2, &lambda)
	tw.E12Sub(&l2, &l2, &a.X)
	tw.E12Sub(&sum.X, &l2, &b.X)
	tw.E12Sub(&t, &a.X, &sum.X)
	tw.E12Mul(&t, &lambda, &t)
	tw.E12Sub(&sum.Y, &t, &a.Y)
	return sum
}

// MillerLoopReference computes the (un-exponentiated) Miller function for
// one pair using full Fp12 affine arithmetic — the correctness oracle for
// the sparse twist-coordinate loop in miller.go.
func (e *Engine) MillerLoopReference(p *curve.G1Affine, q *curve.G2Affine) GT {
	tw := e.C.Tw
	var f tower.E12
	tw.E12One(&f)
	if p.Inf || q.Inf {
		return f
	}
	var xP, yP tower.E12
	tw.E12FromFp(&xP, &p.X)
	tw.E12FromFp(&yP, &p.Y)

	qU := e.untwist(q)
	T := qU
	n := e.C.LoopCount
	for i := n.BitLen() - 2; i >= 0; i-- {
		tw.E12Square(&f, &f)
		T = e.lineAndStep(&f, &T, &T, &xP, &yP)
		if n.Bit(i) == 1 {
			T = e.lineAndStep(&f, &T, &qU, &xP, &yP)
		}
	}

	if e.C.LoopNeg {
		// x < 0 (BLS12-381): f_{−|x|} ~ conj(f_{|x|}) up to factors killed
		// by the final exponentiation.
		tw.E12Conjugate(&f, &f)
	}

	if e.C.IsBN {
		// Optimal ate for BN curves appends two Frobenius-twisted line
		// steps: Q1 = π(Q), Q2 = π²(Q); f ·= l_{T,Q1}; T += Q1;
		// f ·= l_{T,−Q2}.
		var q1, q2 e12Point
		tw.E12Frobenius(&q1.X, &qU.X)
		tw.E12Frobenius(&q1.Y, &qU.Y)
		tw.E12FrobeniusN(&q2.X, &qU.X, 2)
		tw.E12FrobeniusN(&q2.Y, &qU.Y, 2)
		tw.E12Neg(&q2.Y, &q2.Y)
		T = e.lineAndStep(&f, &T, &q1, &xP, &yP)
		T = e.lineAndStep(&f, &T, &q2, &xP, &yP)
	}
	return f
}

// FinalExpReference raises a Miller-loop output to (p¹² − 1)/r with a plain
// square-and-multiply hard part — the oracle for the cyclotomic FinalExp.
func (e *Engine) FinalExpReference(f *GT) GT {
	tw := e.C.Tw
	var out tower.E12
	if tw.E12IsZero(f) {
		tw.E12Zero(&out)
		return out
	}
	// Easy part: t = f^{p⁶−1} = conj(f)·f⁻¹, then t = t^{p²}·t.
	var conj, inv, t, tp2 tower.E12
	tw.E12Conjugate(&conj, f)
	tw.E12Inverse(&inv, f)
	tw.E12Mul(&t, &conj, &inv)
	tw.E12FrobeniusN(&tp2, &t, 2)
	tw.E12Mul(&t, &tp2, &t)
	// Hard part.
	tw.E12Exp(&out, &t, e.hardExp)
	return out
}

// FinalExp raises a Miller-loop output to (p¹² − 1)/r, mapping it into the
// order-r target group. The easy part (conjugation, inversion, Frobenius)
// lands the element in the cyclotomic subgroup, where the hard-part
// exponentiation uses Granger–Scott squarings and signed NAF digits with
// conjugation as the free inverse.
func (e *Engine) FinalExp(f *GT) GT {
	tw := e.C.Tw
	var out tower.E12
	if tw.E12IsZero(f) {
		tw.E12Zero(&out)
		return out
	}
	var conj, inv, t, tp2 tower.E12
	tw.E12Conjugate(&conj, f)
	tw.E12Inverse(&inv, f)
	tw.E12Mul(&t, &conj, &inv)
	tw.E12FrobeniusN(&tp2, &t, 2)
	tw.E12Mul(&t, &tp2, &t)
	tw.E12CyclotomicExp(&out, &t, e.hardExp)
	return out
}

// MillerLoop computes the (un-exponentiated) Miller function for one pair
// on the fast twist-coordinate path. On M-twist curves its raw output
// differs from MillerLoopReference by an Fp6-subfield factor that the final
// exponentiation eliminates; on D-twist curves it is bit-identical.
func (e *Engine) MillerLoop(p *curve.G1Affine, q *curve.G2Affine) GT {
	return e.millerLoopMulti([]curve.G1Affine{*p}, []curve.G2Affine{*q})
}

// PairReference computes the reduced pairing entirely on the reference
// path.
func (e *Engine) PairReference(p *curve.G1Affine, q *curve.G2Affine) GT {
	f := e.MillerLoopReference(p, q)
	return e.FinalExpReference(&f)
}

// Pair computes the reduced optimal ate pairing e(p, q).
func (e *Engine) Pair(p *curve.G1Affine, q *curve.G2Affine) GT {
	if e.Reference {
		return e.PairReference(p, q)
	}
	f := e.MillerLoop(p, q)
	return e.FinalExp(&f)
}

// PairingCheck reports whether Π e(ps[i], qs[i]) == 1. All pairs share one
// Miller loop — the per-step slope inversions are batched across pairs and
// every line lands in a single f accumulator — followed by a single shared
// final exponentiation. This is the structure used by Groth16 verification
// (plain and RLC-batched).
func (e *Engine) PairingCheck(ps []curve.G1Affine, qs []curve.G2Affine) bool {
	if len(ps) != len(qs) {
		panic("pairing: mismatched input lengths")
	}
	if e.Reference {
		var f GT
		e.C.Tw.E12One(&f)
		for i := range ps {
			g := e.MillerLoopReference(&ps[i], &qs[i])
			e.C.Tw.E12Mul(&f, &f, &g)
		}
		res := e.FinalExpReference(&f)
		return e.C.Tw.E12IsOne(&res)
	}
	f := e.millerLoopMulti(ps, qs)
	res := e.FinalExp(&f)
	return e.C.Tw.E12IsOne(&res)
}

// GTMul returns a·b in the target group.
func (e *Engine) GTMul(a, b *GT) GT {
	var out GT
	e.C.Tw.E12Mul(&out, a, b)
	return out
}

// GTEqual reports whether two target-group elements are equal.
func (e *Engine) GTEqual(a, b *GT) bool { return e.C.Tw.E12Equal(a, b) }

// GTIsOne reports whether a is the identity.
func (e *Engine) GTIsOne(a *GT) bool { return e.C.Tw.E12IsOne(a) }

// GTExp returns a^k in the target group.
func (e *Engine) GTExp(a *GT, k *big.Int) GT {
	var out GT
	e.C.Tw.E12Exp(&out, a, k)
	return out
}
