package pairing

import (
	"math/big"
	"testing"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
)

func engines() []*Engine {
	return []*Engine{NewEngine(curve.NewBN254()), NewEngine(curve.NewBLS12381())}
}

// TestPairingNonDegenerate: e(G1, G2) != 1.
func TestPairingNonDegenerate(t *testing.T) {
	for _, e := range engines() {
		gt := e.Pair(&e.C.G1Gen, &e.C.G2Gen)
		if e.GTIsOne(&gt) || e.C.Tw.E12IsZero(&gt) {
			t.Errorf("%s: e(G1,G2) is degenerate", e.C.Name)
		}
	}
}

// TestPairingOrder: e(G1, G2)^r == 1 — the output lands in the order-r
// subgroup.
func TestPairingOrder(t *testing.T) {
	for _, e := range engines() {
		gt := e.Pair(&e.C.G1Gen, &e.C.G2Gen)
		pow := e.GTExp(&gt, e.C.Fr.Modulus())
		if !e.GTIsOne(&pow) {
			t.Errorf("%s: e(G1,G2)^r != 1", e.C.Name)
		}
	}
}

// TestPairingBilinearG1: e([a]P, Q) == e(P, Q)^a.
func TestPairingBilinearG1(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		a := big.NewInt(31415)
		var aPj curve.G1Jac
		var g1j curve.G1Jac
		c.G1FromAffine(&g1j, &c.G1Gen)
		c.G1ScalarMulBig(&aPj, &g1j, a)
		var aP curve.G1Affine
		c.G1ToAffine(&aP, &aPj)

		left := e.Pair(&aP, &c.G2Gen)
		base := e.Pair(&c.G1Gen, &c.G2Gen)
		right := e.GTExp(&base, a)
		if !e.GTEqual(&left, &right) {
			t.Errorf("%s: e([a]P,Q) != e(P,Q)^a", c.Name)
		}
	}
}

// TestPairingBilinearG2: e(P, [b]Q) == e(P, Q)^b.
func TestPairingBilinearG2(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		b := big.NewInt(27182)
		var bQj, g2j curve.G2Jac
		c.G2FromAffine(&g2j, &c.G2Gen)
		c.G2ScalarMulBig(&bQj, &g2j, b)
		var bQ curve.G2Affine
		c.G2ToAffine(&bQ, &bQj)

		left := e.Pair(&c.G1Gen, &bQ)
		base := e.Pair(&c.G1Gen, &c.G2Gen)
		right := e.GTExp(&base, b)
		if !e.GTEqual(&left, &right) {
			t.Errorf("%s: e(P,[b]Q) != e(P,Q)^b", c.Name)
		}
	}
}

// TestPairingBothSides: e([a]P, [b]Q) == e([b]P, [a]Q).
func TestPairingBothSides(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		rng := ff.NewRNG(99)
		var a, b ff.Element
		c.Fr.Random(&a, rng)
		c.Fr.Random(&b, rng)

		var g1j, aPj, bPj curve.G1Jac
		c.G1FromAffine(&g1j, &c.G1Gen)
		c.G1ScalarMul(&aPj, &g1j, &a)
		c.G1ScalarMul(&bPj, &g1j, &b)
		var aP, bP curve.G1Affine
		c.G1ToAffine(&aP, &aPj)
		c.G1ToAffine(&bP, &bPj)

		var g2j, aQj, bQj curve.G2Jac
		c.G2FromAffine(&g2j, &c.G2Gen)
		c.G2ScalarMul(&aQj, &g2j, &a)
		c.G2ScalarMul(&bQj, &g2j, &b)
		var aQ, bQ curve.G2Affine
		c.G2ToAffine(&aQ, &aQj)
		c.G2ToAffine(&bQ, &bQj)

		left := e.Pair(&aP, &bQ)
		right := e.Pair(&bP, &aQ)
		if !e.GTEqual(&left, &right) {
			t.Errorf("%s: e([a]P,[b]Q) != e([b]P,[a]Q)", c.Name)
		}
	}
}

// TestPairingInfinity: pairings with the identity are 1.
func TestPairingInfinity(t *testing.T) {
	for _, e := range engines() {
		infG1 := curve.G1Affine{Inf: true}
		infG2 := curve.G2Affine{Inf: true}
		gt := e.Pair(&infG1, &e.C.G2Gen)
		if !e.GTIsOne(&gt) {
			t.Errorf("%s: e(∞, Q) != 1", e.C.Name)
		}
		gt = e.Pair(&e.C.G1Gen, &infG2)
		if !e.GTIsOne(&gt) {
			t.Errorf("%s: e(P, ∞) != 1", e.C.Name)
		}
	}
}

// TestPairingCheck: e(P, Q)·e(−P, Q) == 1.
func TestPairingCheck(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		var negP curve.G1Affine
		c.G1NegAffine(&negP, &c.G1Gen)
		ok := e.PairingCheck(
			[]curve.G1Affine{c.G1Gen, negP},
			[]curve.G2Affine{c.G2Gen, c.G2Gen},
		)
		if !ok {
			t.Errorf("%s: e(P,Q)·e(−P,Q) != 1", c.Name)
		}
		// And a deliberately wrong check must fail.
		bad := e.PairingCheck(
			[]curve.G1Affine{c.G1Gen, c.G1Gen},
			[]curve.G2Affine{c.G2Gen, c.G2Gen},
		)
		if bad {
			t.Errorf("%s: e(P,Q)² should not be 1", c.Name)
		}
	}
}

func TestPairingCheckLengthMismatch(t *testing.T) {
	e := NewEngine(curve.NewBN254())
	defer func() {
		if recover() == nil {
			t.Error("PairingCheck with mismatched lengths should panic")
		}
	}()
	e.PairingCheck([]curve.G1Affine{e.C.G1Gen}, nil)
}

// TestGTMul sanity.
func TestGTOps(t *testing.T) {
	e := NewEngine(curve.NewBN254())
	gt := e.Pair(&e.C.G1Gen, &e.C.G2Gen)
	sq := e.GTMul(&gt, &gt)
	viaExp := e.GTExp(&gt, big.NewInt(2))
	if !e.GTEqual(&sq, &viaExp) {
		t.Error("GTMul(a,a) != a^2")
	}
}

// TestMultiPairingLinearity: e(P,Q)·e(P',Q) == e(P+P',Q) — checked through
// PairingCheck with the negated sum.
func TestMultiPairingLinearity(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		var g, p2j, sumJ curve.G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		c.G1ScalarMulBig(&p2j, &g, big.NewInt(5))
		c.G1Add(&sumJ, &g, &p2j)
		var p2, sum, negSum curve.G1Affine
		c.G1ToAffine(&p2, &p2j)
		c.G1ToAffine(&sum, &sumJ)
		c.G1NegAffine(&negSum, &sum)
		ok := e.PairingCheck(
			[]curve.G1Affine{c.G1Gen, p2, negSum},
			[]curve.G2Affine{c.G2Gen, c.G2Gen, c.G2Gen},
		)
		if !ok {
			t.Errorf("%s: e(P,Q)·e(P',Q)·e(−(P+P'),Q) != 1", c.Name)
		}
	}
}
