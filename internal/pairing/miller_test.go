package pairing

import (
	"math/big"
	"testing"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/tower"
)

// randomPair returns ([a]G1, [b]G2) in affine form for small random a, b.
func randomPair(e *Engine, rng *ff.RNG) (curve.G1Affine, curve.G2Affine) {
	c := e.C
	var ka, kb ff.Element
	c.Fr.Random(&ka, rng)
	c.Fr.Random(&kb, rng)
	var pj curve.G1Jac
	c.G1FromAffine(&pj, &c.G1Gen)
	c.G1ScalarMul(&pj, &pj, &ka)
	var qj curve.G2Jac
	c.G2FromAffine(&qj, &c.G2Gen)
	c.G2ScalarMul(&qj, &qj, &kb)
	var p curve.G1Affine
	var q curve.G2Affine
	c.G1ToAffine(&p, &pj)
	c.G2ToAffine(&q, &qj)
	return p, q
}

// TestPairAgainstReference: the sparse twist-coordinate fast path and the
// full-Fp12 reference produce the same reduced pairing on both curves.
func TestPairAgainstReference(t *testing.T) {
	for _, e := range engines() {
		rng := ff.NewRNG(101)
		for i := 0; i < 4; i++ {
			p, q := randomPair(e, rng)
			fast := e.Pair(&p, &q)
			ref := e.PairReference(&p, &q)
			if !e.GTEqual(&fast, &ref) {
				t.Fatalf("%s: fast pairing != reference (iteration %d)", e.C.Name, i)
			}
		}
	}
}

// TestMillerLoopAgainstReferenceDTwist: on the D-twist curve the raw
// Miller value (pre final exponentiation) is bit-identical to the
// reference — the line placement derivation leaves no stray subfield
// factor there.
func TestMillerLoopAgainstReferenceDTwist(t *testing.T) {
	e := NewEngine(curve.NewBN254())
	rng := ff.NewRNG(103)
	for i := 0; i < 4; i++ {
		p, q := randomPair(e, rng)
		fast := e.MillerLoop(&p, &q)
		ref := e.MillerLoopReference(&p, &q)
		if !e.C.Tw.E12Equal(&fast, &ref) {
			t.Fatalf("BN254: raw Miller loop != reference (iteration %d)", i)
		}
	}
}

// TestFinalExpAgainstReference: the cyclotomic hard part equals the plain
// square-and-multiply hard part on arbitrary Miller outputs.
func TestFinalExpAgainstReference(t *testing.T) {
	for _, e := range engines() {
		rng := ff.NewRNG(107)
		p, q := randomPair(e, rng)
		f := e.MillerLoop(&p, &q)
		fast := e.FinalExp(&f)
		ref := e.FinalExpReference(&f)
		if !e.GTEqual(&fast, &ref) {
			t.Fatalf("%s: cyclotomic final exp != reference", e.C.Name)
		}
	}
}

// TestCyclotomicSquareProperty: after the easy part, Granger–Scott
// squaring agrees with a plain E12 squaring.
func TestCyclotomicSquareProperty(t *testing.T) {
	for _, e := range engines() {
		tw := e.C.Tw
		rng := ff.NewRNG(109)
		p, q := randomPair(e, rng)
		f := e.MillerLoop(&p, &q)
		// Easy part only: t = (conj(f)·f⁻¹)^{p²} · (conj(f)·f⁻¹).
		var conj, inv, easy, tp2 tower.E12
		tw.E12Conjugate(&conj, &f)
		tw.E12Inverse(&inv, &f)
		tw.E12Mul(&easy, &conj, &inv)
		tw.E12FrobeniusN(&tp2, &easy, 2)
		tw.E12Mul(&easy, &tp2, &easy)

		var cyc, plain tower.E12
		tw.E12CyclotomicSquare(&cyc, &easy)
		tw.E12Square(&plain, &easy)
		if !tw.E12Equal(&cyc, &plain) {
			t.Fatalf("%s: cyclotomic square != plain square in cyclotomic subgroup", e.C.Name)
		}
	}
}

// TestMultiMillerMatchesPerPair: the shared-accumulator multi-pair loop
// equals the product of single-pair loops after the final exponentiation,
// including with infinity points mixed in.
func TestMultiMillerMatchesPerPair(t *testing.T) {
	for _, e := range engines() {
		tw := e.C.Tw
		rng := ff.NewRNG(113)
		var ps []curve.G1Affine
		var qs []curve.G2Affine
		for i := 0; i < 3; i++ {
			p, q := randomPair(e, rng)
			ps = append(ps, p)
			qs = append(qs, q)
		}
		// Mix in an infinity pair: it must contribute exactly 1.
		ps = append(ps, curve.G1Affine{Inf: true})
		qs = append(qs, e.C.G2Gen)

		multi := e.millerLoopMulti(ps, qs)
		multiRed := e.FinalExp(&multi)

		var acc tower.E12
		tw.E12One(&acc)
		for i := range ps {
			f := e.MillerLoop(&ps[i], &qs[i])
			tw.E12Mul(&acc, &acc, &f)
		}
		accRed := e.FinalExp(&acc)
		if !e.GTEqual(&multiRed, &accRed) {
			t.Fatalf("%s: multi-pair Miller loop != product of single-pair loops", e.C.Name)
		}
	}
}

// TestPairDegenerateInputs: infinity on either side yields the identity on
// the fast path, exactly as on the reference path.
func TestPairDegenerateInputs(t *testing.T) {
	for _, e := range engines() {
		infG1 := curve.G1Affine{Inf: true}
		infG2 := curve.G2Affine{Inf: true}
		for _, tc := range []struct {
			name string
			p    curve.G1Affine
			q    curve.G2Affine
		}{
			{"inf-g1", infG1, e.C.G2Gen},
			{"inf-g2", e.C.G1Gen, infG2},
			{"inf-both", infG1, infG2},
		} {
			gt := e.Pair(&tc.p, &tc.q)
			if !e.GTIsOne(&gt) {
				t.Errorf("%s/%s: pairing with infinity != 1", e.C.Name, tc.name)
			}
			ref := e.PairReference(&tc.p, &tc.q)
			if !e.GTEqual(&gt, &ref) {
				t.Errorf("%s/%s: fast != reference on degenerate input", e.C.Name, tc.name)
			}
		}
	}
}

// TestPairingCheckSharedFinalExp: PairingCheck on {(P,Q), (−P,Q)} passes —
// the canonical cancellation exercised through the shared Miller loop and
// single final exponentiation.
func TestPairingCheckSharedFinalExp(t *testing.T) {
	for _, e := range engines() {
		c := e.C
		a := big.NewInt(271828)
		var pj, npj curve.G1Jac
		c.G1FromAffine(&pj, &c.G1Gen)
		c.G1ScalarMulBig(&pj, &pj, a)
		c.G1Neg(&npj, &pj)
		var p, np curve.G1Affine
		c.G1ToAffine(&p, &pj)
		c.G1ToAffine(&np, &npj)
		if !e.PairingCheck(
			[]curve.G1Affine{p, np},
			[]curve.G2Affine{c.G2Gen, c.G2Gen},
		) {
			t.Errorf("%s: e(P,Q)·e(−P,Q) != 1", c.Name)
		}
		if e.PairingCheck(
			[]curve.G1Affine{p, p},
			[]curve.G2Affine{c.G2Gen, c.G2Gen},
		) {
			t.Errorf("%s: e(P,Q)² == 1 unexpectedly", c.Name)
		}
	}
}
