package pairing

import (
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/tower"
)

// This file is the production Miller loop. The accumulator point T stays in
// affine coordinates over Fp2 on the twist (never untwisted), so a
// doubling or addition step costs a handful of Fp2 operations plus one
// shared slope inversion: all pairs of a multi-pairing stage their slope
// denominators into one slice and a single Montgomery-batched Fp2
// inversion serves every pair. Each line ℓ(P) is multiplied into f with a
// sparse Fp12 product (E12MulLineD / E12MulLineM), exploiting that a line
// has only three nonzero Fp2 coefficients.
//
// Line placement, D-twist (BN254, untwist x = x'·w², y = y'·w³): the
// chord/tangent through T with twist slope λ' evaluated at P ∈ G1 is
//
//	ℓ(P) = yP − λ'·xP·w + (λ'·tx − ty)·v·w,
//
// exactly the reference value, so the D-twist loop is bit-identical to
// MillerLoopReference. M-twist (BLS12-381, untwist x = x'·w⁴/ξ,
// y = y'·w³/ξ): the same derivation leaves a 1/ξ factor; scaling by
// ξ ∈ Fp2 ⊂ Fp6 (eliminated by the final exponentiation) gives
//
//	ξ·ℓ(P) = ξ·yP + (λ'·tx − ty)·v·w − λ'·xP·v²·w,
//
// so the raw M-twist Miller value differs from the reference by ξ^#lines
// and only the reduced pairing is comparable.
//
// Degenerate inputs mirror the reference exactly: a pair with either input
// at infinity contributes 1; T reaching ∞ (order-2 tangent or a vertical
// chord) skips the line, and a later addition restarts from the addend.

// pairState carries one pair's Miller-loop state across the shared steps.
type pairState struct {
	alive  bool // neither input at infinity: the pair contributes
	tInf   bool // accumulator T is the point at infinity
	active bool // a line is pending for this pair this half-step

	tx, ty tower.E2   // T, affine on the twist
	qx, qy tower.E2   // the original Q (loop-bit addend)
	ox, oy tower.E2   // the addend of the pending addition step
	num    tower.E2   // slope numerator
	xsum   tower.E2   // x_T + x_addend, staged for x3
	a0     tower.E2   // constant line coefficient: yP (D-twist) or ξ·yP
	xP     ff.Element // P.X, scaling the slope coefficient of the line
}

// millerLoopMulti runs one Miller loop for all pairs at once, returning the
// product of the per-pair Miller functions (up to subfield factors on
// M-twist curves). The shared loop is what makes the batched inversion
// profitable: k pairs cost one Fp2 inversion per step instead of k Fp12
// inversions.
func (e *Engine) millerLoopMulti(ps []curve.G1Affine, qs []curve.G2Affine) GT {
	tw := e.C.Tw
	var f tower.E12
	tw.E12One(&f)
	if len(ps) == 0 {
		return f
	}

	st := make([]pairState, len(ps))
	denoms := make([]tower.E2, len(ps))
	scratch := make([]tower.E2, len(ps))
	anyAlive := false
	for i := range st {
		s := &st[i]
		s.alive = !ps[i].Inf && !qs[i].Inf
		if !s.alive {
			continue
		}
		anyAlive = true
		s.qx, s.qy = qs[i].X, qs[i].Y
		s.tx, s.ty = s.qx, s.qy
		s.xP = ps[i].X
		switch e.C.Twist {
		case curve.DTwist:
			s.a0.A0 = ps[i].Y
			tw.F.Zero(&s.a0.A1)
		case curve.MTwist:
			tw.E2MulByElement(&s.a0, &tw.Xi, &ps[i].Y)
		}
	}
	if !anyAlive {
		return f
	}

	loop := e.C.LoopCount
	for i := loop.BitLen() - 2; i >= 0; i-- {
		tw.E12Square(&f, &f)
		e.stepDouble(st, denoms, scratch, &f)
		if loop.Bit(i) == 1 {
			for j := range st {
				if st[j].alive {
					st[j].ox, st[j].oy = st[j].qx, st[j].qy
				}
			}
			e.stepAdd(st, denoms, scratch, &f)
		}
	}

	if e.C.LoopNeg {
		// x < 0 (BLS12-381): f_{−|x|} ~ conj(f_{|x|}) up to factors killed
		// by the final exponentiation.
		tw.E12Conjugate(&f, &f)
	}

	if e.C.IsBN {
		// Optimal ate for BN curves appends two endomorphism-twisted
		// addition steps: T += ψ(Q), then T += −ψ²(Q), with
		// ψ(x, y) = (conj(x)·γw², conj(y)·γw³) on the twist.
		for j := range st {
			s := &st[j]
			if !s.alive {
				continue
			}
			tw.E2Conjugate(&s.ox, &s.qx)
			tw.E2Mul(&s.ox, &s.ox, &e.psiX)
			tw.E2Conjugate(&s.oy, &s.qy)
			tw.E2Mul(&s.oy, &s.oy, &e.psiY)
		}
		e.stepAdd(st, denoms, scratch, &f)
		for j := range st {
			s := &st[j]
			if !s.alive {
				continue
			}
			tw.E2MulByElement(&s.ox, &s.qx, &e.psi2X)
			tw.E2MulByElement(&s.oy, &s.qy, &e.psi2Y)
			tw.E2Neg(&s.oy, &s.oy)
		}
		e.stepAdd(st, denoms, scratch, &f)
	}
	return f
}

// stepDouble stages the tangent line of every live pair (T ← 2T) and
// applies the batch. A pair whose T has order 2 (ty == 0) doubles to ∞
// with a vertical tangent the final exponentiation would kill, so it emits
// no line — mirroring the reference loop.
func (e *Engine) stepDouble(st []pairState, denoms, scratch []tower.E2, f *tower.E12) {
	tw := e.C.Tw
	var x2 tower.E2
	for j := range st {
		s := &st[j]
		s.active = false
		if !s.alive || s.tInf {
			tw.E2Zero(&denoms[j])
			continue
		}
		if tw.E2IsZero(&s.ty) {
			s.tInf = true
			tw.E2Zero(&denoms[j])
			continue
		}
		// λ' = 3tx² / 2ty
		tw.E2Square(&x2, &s.tx)
		tw.E2Add(&s.num, &x2, &x2)
		tw.E2Add(&s.num, &s.num, &x2)
		tw.E2Double(&denoms[j], &s.ty)
		tw.E2Add(&s.xsum, &s.tx, &s.tx)
		s.active = true
	}
	e.applyLines(st, denoms, scratch, f)
}

// stepAdd stages the chord through T and the pre-loaded addend (ox, oy)
// for every live pair (T ← T + O) and applies the batch. Degenerate cases
// follow the reference: T == ∞ restarts from O with no line; a vertical
// chord (same x, different y) sends T to ∞ with no line; T == O falls back
// to the tangent.
func (e *Engine) stepAdd(st []pairState, denoms, scratch []tower.E2, f *tower.E12) {
	tw := e.C.Tw
	var x2 tower.E2
	for j := range st {
		s := &st[j]
		s.active = false
		if !s.alive {
			tw.E2Zero(&denoms[j])
			continue
		}
		if s.tInf {
			s.tx, s.ty = s.ox, s.oy
			s.tInf = false
			tw.E2Zero(&denoms[j])
			continue
		}
		if tw.E2Equal(&s.tx, &s.ox) {
			if !tw.E2Equal(&s.ty, &s.oy) || tw.E2IsZero(&s.ty) {
				// Vertical chord, or doubling an order-2 point: T + O = ∞.
				s.tInf = true
				tw.E2Zero(&denoms[j])
				continue
			}
			// O == T: tangent.
			tw.E2Square(&x2, &s.tx)
			tw.E2Add(&s.num, &x2, &x2)
			tw.E2Add(&s.num, &s.num, &x2)
			tw.E2Double(&denoms[j], &s.ty)
			tw.E2Add(&s.xsum, &s.tx, &s.tx)
			s.active = true
			continue
		}
		tw.E2Sub(&s.num, &s.oy, &s.ty)
		tw.E2Sub(&denoms[j], &s.ox, &s.tx)
		tw.E2Add(&s.xsum, &s.tx, &s.ox)
		s.active = true
	}
	e.applyLines(st, denoms, scratch, f)
}

// applyLines inverts every staged denominator with one batched Fp2
// inversion, then, per active pair, multiplies the evaluated line into f
// sparsely and completes the point update
// (x3 = λ'² − xsum, y3 = λ'(tx − x3) − ty).
func (e *Engine) applyLines(st []pairState, denoms, scratch []tower.E2, f *tower.E12) {
	tw := e.C.Tw
	tw.E2BatchInverse(denoms, scratch)
	var lambda, c, bd, x3, t tower.E2
	for j := range st {
		s := &st[j]
		if !s.active {
			continue
		}
		tw.E2Mul(&lambda, &s.num, &denoms[j])
		// Line coefficients: c = λ'·tx − ty, b = −λ'·xP (a0 is fixed).
		tw.E2Mul(&c, &lambda, &s.tx)
		tw.E2Sub(&c, &c, &s.ty)
		tw.E2MulByElement(&bd, &lambda, &s.xP)
		tw.E2Neg(&bd, &bd)
		switch e.C.Twist {
		case curve.DTwist:
			tw.E12MulLineD(f, f, &s.a0, &bd, &c)
		case curve.MTwist:
			tw.E12MulLineM(f, f, &s.a0, &c, &bd)
		}
		tw.E2Square(&x3, &lambda)
		tw.E2Sub(&x3, &x3, &s.xsum)
		tw.E2Sub(&t, &s.tx, &x3)
		tw.E2Mul(&t, &lambda, &t)
		tw.E2Sub(&s.ty, &t, &s.ty)
		s.tx = x3
	}
}
