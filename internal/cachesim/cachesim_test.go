package cachesim

import (
	"testing"

	"zkperf/internal/cpumodel"
	"zkperf/internal/trace"
)

func newSim() *Sim { return New(cpumodel.NewI7_8650U()) }

func TestSequentialScanMissRate(t *testing.T) {
	s := newSim()
	// One pass over 4 MiB (exceeds L1/L2, fits LLC): with 64-byte lines
	// and 64-byte elements, every element is a new line → every access is
	// an L1 miss, landing in LLC fills on a cold hierarchy.
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "a",
		RegionBytes: 4 << 20, ElemSize: 64, Touches: 65536})
	if s.Loads != 65536 {
		t.Fatalf("loads = %d, want 65536", s.Loads)
	}
	if s.LLCLoadMiss < 60000 {
		t.Errorf("cold sequential scan should miss everywhere: %d", s.LLCLoadMiss)
	}
	// A second pass over the same region now hits in LLC.
	before := s.LLCLoadMiss
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "a",
		RegionBytes: 4 << 20, ElemSize: 64, Touches: 65536})
	if delta := s.LLCLoadMiss - before; delta > 1000 {
		t.Errorf("warm rescan of LLC-resident region missed %d times", delta)
	}
}

func TestSmallRegionStaysInL1(t *testing.T) {
	s := newSim()
	// 16 KiB fits the 32 KiB L1D: after the cold pass, repeated passes hit.
	for pass := 0; pass < 4; pass++ {
		s.Replay(trace.Access{Kind: trace.Sequential, Region: "hot",
			RegionBytes: 16 << 10, ElemSize: 64, Touches: 256})
	}
	// Cold pass misses ≤ 256 lines; later passes hit in L1.
	if s.L1.Misses > 300 {
		t.Errorf("L1 misses = %d for an L1-resident region", s.L1.Misses)
	}
}

func TestWriteCountsAsStore(t *testing.T) {
	s := newSim()
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "w",
		RegionBytes: 1 << 16, ElemSize: 64, Touches: 1024, Write: true})
	if s.Stores != 1024 || s.Loads != 0 {
		t.Errorf("stores=%d loads=%d, want 1024/0", s.Stores, s.Loads)
	}
	if s.LLCStoreMiss == 0 {
		t.Error("cold stores should miss")
	}
}

func TestSamplingScalesCounts(t *testing.T) {
	// A pattern above the replay cap must still report the full touch
	// count (scaled), and the miss rate must stay plausible.
	s := newSim()
	touches := int64(maxReplayTouches) * 8
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "big",
		RegionBytes: 256 << 20, ElemSize: 64, Touches: touches})
	if s.Loads < touches*9/10 || s.Loads > touches*11/10 {
		t.Errorf("scaled loads = %d, want ≈%d", s.Loads, touches)
	}
	// A streaming scan over 256 MiB misses nearly always.
	if float64(s.LLCLoadMiss) < 0.8*float64(touches) {
		t.Errorf("streaming misses = %d of %d touches", s.LLCLoadMiss, touches)
	}
}

func TestRandomFitsInLLC(t *testing.T) {
	s := New(cpumodel.NewI9_13900K()) // 36 MiB LLC
	// Random touches within 4 MiB: after warmup, LLC should absorb almost
	// everything beyond the cold fills.
	s.Replay(trace.Access{Kind: trace.Random, Region: "r",
		RegionBytes: 4 << 20, ElemSize: 64, Touches: 1 << 17})
	missRate := float64(s.LLCLoadMiss) / float64(s.Loads)
	if missRate > 0.6 {
		t.Errorf("random-in-LLC miss rate = %v, too high", missRate)
	}
}

func TestRandomExceedsLLC(t *testing.T) {
	s := newSim() // 8 MiB LLC
	s.Replay(trace.Access{Kind: trace.Random, Region: "huge",
		RegionBytes: 128 << 20, ElemSize: 64, Touches: 1 << 17})
	missRate := float64(s.LLCLoadMiss) / float64(s.Loads)
	if missRate < 0.5 {
		t.Errorf("random-over-LLC miss rate = %v, too low", missRate)
	}
}

func TestMPKI(t *testing.T) {
	s := newSim()
	s.LLCLoadMiss = 500
	if got := s.MPKI(1_000_000); got != 0.5 {
		t.Errorf("MPKI = %v, want 0.5", got)
	}
	if got := s.MPKI(0); got != 0 {
		t.Errorf("MPKI(0 instrs) = %v, want 0", got)
	}
}

func TestAvgMemLatency(t *testing.T) {
	s := newSim()
	// No accesses: L1 latency.
	if got := s.AvgMemLatency(); got != float64(s.CPU.L1D.LatencyCyc) {
		t.Errorf("empty AvgMemLatency = %v", got)
	}
	// All-miss workload has latency far above L1.
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "m",
		RegionBytes: 64 << 20, ElemSize: 64, Touches: 1 << 17})
	if got := s.AvgMemLatency(); got < 20 {
		t.Errorf("streaming AvgMemLatency = %v cycles, too low", got)
	}
}

func TestRegionsAreDisjoint(t *testing.T) {
	s := newSim()
	// Writing region A then scanning region B must not hit A's lines.
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "A",
		RegionBytes: 1 << 20, ElemSize: 64, Touches: 16384, Write: true})
	missesBefore := s.LLC.Misses
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "B",
		RegionBytes: 1 << 20, ElemSize: 64, Touches: 16384})
	delta := s.LLC.Misses - missesBefore
	if delta < 15000 {
		t.Errorf("region B reused region A's lines: only %d new misses", delta)
	}
}

func TestDRAMBytesTracksMisses(t *testing.T) {
	s := newSim()
	s.Replay(trace.Access{Kind: trace.Sequential, Region: "d",
		RegionBytes: 8 << 20, ElemSize: 64, Touches: 1 << 17})
	wantBytes := (s.LLCLoadMiss + s.LLCStoreMiss) * int64(s.CPU.LLC.LineSize)
	if s.DRAMBytes != wantBytes {
		t.Errorf("DRAMBytes = %d, want %d", s.DRAMBytes, wantBytes)
	}
}

func TestZeroTouchesNoOp(t *testing.T) {
	s := newSim()
	s.Replay(trace.Access{Kind: trace.Random, Region: "z", RegionBytes: 1 << 20})
	if s.Loads != 0 && s.Stores != 0 {
		t.Error("zero-touch pattern changed counters")
	}
}

func TestStridedPattern(t *testing.T) {
	s := newSim()
	// 4 KiB stride over 16 MiB: every touch is a distinct page/line.
	s.Replay(trace.Access{Kind: trace.Strided, Region: "s",
		RegionBytes: 16 << 20, ElemSize: 8, Stride: 4096, Touches: 4096})
	if s.Loads != 4096 {
		t.Errorf("strided loads = %d", s.Loads)
	}
	if s.L1.Misses < 3500 {
		t.Errorf("page-stride walk should miss L1 almost always: %d", s.L1.Misses)
	}
}

func TestReplayAll(t *testing.T) {
	s := newSim()
	s.ReplayAll([]trace.Access{
		{Kind: trace.Sequential, Region: "x", RegionBytes: 1 << 16, ElemSize: 64, Touches: 1024},
		{Kind: trace.Random, Region: "y", RegionBytes: 1 << 16, ElemSize: 64, Touches: 1024, Write: true},
	})
	if s.Loads != 1024 || s.Stores != 1024 {
		t.Errorf("ReplayAll loads=%d stores=%d", s.Loads, s.Stores)
	}
}
