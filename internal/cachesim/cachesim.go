// Package cachesim is a trace-driven, three-level set-associative cache
// simulator — the portable substitute for the perf/VTune memory counters
// of the paper's memory analysis (Fig. 5, Tables II and III). It replays
// the access-pattern descriptors recorded by the instrumented zk-SNARK
// stages against the cache hierarchy of a cpumodel.CPU and reports loads,
// stores, per-level misses and DRAM traffic.
//
// Patterns with very large touch counts are sampled: the simulator replays
// a bounded prefix and scales the resulting counter deltas. Sequential and
// strided patterns have time-uniform miss behaviour, and random patterns
// are sampled after a warmup pass, so scaling preserves miss rates.
package cachesim

import (
	"zkperf/internal/cpumodel"
	"zkperf/internal/ff"
	"zkperf/internal/trace"
)

// level is one set-associative cache level with LRU replacement.
type level struct {
	sets     int
	ways     int
	lineBits uint
	// tags[set*ways+way]; lru[set*ways+way] holds a recency counter.
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	Hits, Misses int64
}

func newLevel(cfg cpumodel.CacheLevel) *level {
	lines := cfg.SizeBytes / cfg.LineSize
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb < cfg.LineSize {
		lb++
	}
	n := sets * cfg.Ways
	return &level{
		sets: sets, ways: cfg.Ways, lineBits: lb,
		tags: make([]uint64, n), valid: make([]bool, n), lru: make([]uint64, n),
	}
}

// access looks up a line address; returns true on hit. On miss the line is
// filled (LRU victim).
func (l *level) access(addr uint64) bool {
	line := addr >> l.lineBits
	set := int(line) % l.sets
	base := set * l.ways
	l.tick++
	for w := 0; w < l.ways; w++ {
		if l.valid[base+w] && l.tags[base+w] == line {
			l.lru[base+w] = l.tick
			l.Hits++
			return true
		}
	}
	l.Misses++
	victim := base
	for w := 1; w < l.ways; w++ {
		if !l.valid[base+w] {
			victim = base + w
			break
		}
		if l.lru[base+w] < l.lru[victim] {
			victim = base + w
		}
	}
	l.tags[victim] = line
	l.valid[victim] = true
	l.lru[victim] = l.tick
	return false
}

// Sim is the three-level hierarchy plus counters.
type Sim struct {
	CPU          *cpumodel.CPU
	L1, L2, LLC  *level
	Loads        int64
	Stores       int64
	LLCLoadMiss  int64
	LLCStoreMiss int64
	DRAMBytes    int64 // line fills + write-allocate traffic

	regions map[string]uint64
	nextReg uint64
	rng     *ff.RNG
}

// New builds a simulator over the CPU's data-cache hierarchy.
func New(cpu *cpumodel.CPU) *Sim {
	return &Sim{
		CPU:     cpu,
		L1:      newLevel(cpu.L1D),
		L2:      newLevel(cpu.L2),
		LLC:     newLevel(cpu.LLC),
		regions: make(map[string]uint64),
		nextReg: 1 << 30, // keep region 0 unused
		rng:     ff.NewRNG(0xCACE51),
	}
}

// regionBase returns a stable base address for a named region, reserving
// size bytes (page-aligned) on first use.
func (s *Sim) regionBase(name string, size int64) uint64 {
	if base, ok := s.regions[name]; ok {
		return base
	}
	base := s.nextReg
	s.regions[name] = base
	aligned := (uint64(size) + 4095) &^ 4095
	s.nextReg += aligned + 4096 // guard page between regions
	return base
}

// touch performs one data access through the hierarchy, updating counters.
func (s *Sim) touch(addr uint64, write bool) {
	if write {
		s.Stores++
	} else {
		s.Loads++
	}
	if s.L1.access(addr) {
		return
	}
	if s.L2.access(addr) {
		return
	}
	if s.LLC.access(addr) {
		return
	}
	if write {
		s.LLCStoreMiss++
	} else {
		s.LLCLoadMiss++
	}
	s.DRAMBytes += int64(s.CPU.LLC.LineSize)
}

// maxReplayTouches bounds the number of concrete accesses simulated per
// pattern; larger patterns are sampled and their counter deltas scaled.
const maxReplayTouches = 1 << 17

// Replay simulates one access-pattern descriptor.
func (s *Sim) Replay(a trace.Access) {
	if a.Touches <= 0 {
		return
	}
	size := a.RegionBytes
	if size <= 0 {
		size = int64(a.ElemSize)
	}
	base := s.regionBase(a.Region, size)
	elem := int64(a.ElemSize)
	if elem <= 0 {
		elem = 8
	}

	touches := a.Touches
	scale := int64(1)
	if touches > maxReplayTouches {
		// Integer scaling: simulate maxReplayTouches, multiply deltas.
		scale = (touches + maxReplayTouches - 1) / maxReplayTouches
		touches = (touches + scale - 1) / scale
	}

	preLoads, preStores := s.Loads, s.Stores
	preLLCLd, preLLCSt := s.LLCLoadMiss, s.LLCStoreMiss
	preDRAM := s.DRAMBytes
	startL1m, startL2m, startLLCm := s.L1.Misses, s.L2.Misses, s.LLC.Misses
	startL1h, startL2h, startLLCh := s.L1.Hits, s.L2.Hits, s.LLC.Hits

	nElems := size / elem
	if nElems < 1 {
		nElems = 1
	}
	switch a.Kind {
	case trace.Sequential:
		// Walk the region linearly, wrapping — every byte of the element
		// is brought in, so step at element granularity but touch each
		// cache line once per element.
		var off int64
		for i := int64(0); i < touches; i++ {
			s.touch(base+uint64(off), a.Write)
			// Large elements span multiple lines: touch the tail line too.
			if elem > int64(s.CPU.LLC.LineSize) {
				s.touch(base+uint64(off+elem-1), a.Write)
			}
			off += elem * scale // preserve the covered footprint when sampling
			if off+elem > size {
				off = 0
			}
		}
	case trace.Strided:
		stride := int64(a.Stride)
		if stride <= 0 {
			stride = elem
		}
		var off int64
		for i := int64(0); i < touches; i++ {
			s.touch(base+uint64(off), a.Write)
			off += stride
			if off+elem > size {
				off = (off + elem) % stride // next lane
			}
		}
	case trace.Random, trace.PointerChase:
		// Warm the hierarchy with one deterministic pass over the region
		// (capped) before measuring, so the scaled counts reflect
		// steady-state miss rates: without this, sampling a long pattern
		// would multiply its cold misses by the scale factor.
		warmLines := size / int64(s.CPU.LLC.LineSize)
		if warmLines > 2<<20 {
			warmLines = 2 << 20
		}
		preL1h, preL1m := s.L1.Hits, s.L1.Misses
		preL2h, preL2m := s.L2.Hits, s.L2.Misses
		preLLCh, preLLCm := s.LLC.Hits, s.LLC.Misses
		for l := int64(0); l < warmLines; l++ {
			s.touch(base+uint64(l*int64(s.CPU.LLC.LineSize)), false)
		}
		// Rewind all counters to exclude warmup, then replay the measured
		// part.
		s.Loads, s.Stores = preLoads, preStores
		s.LLCLoadMiss, s.LLCStoreMiss = preLLCLd, preLLCSt
		s.DRAMBytes = preDRAM
		s.L1.Hits, s.L1.Misses = preL1h, preL1m
		s.L2.Hits, s.L2.Misses = preL2h, preL2m
		s.LLC.Hits, s.LLC.Misses = preLLCh, preLLCm
		for i := int64(0); i < touches; i++ {
			idx := int64(s.rng.Uint64() % uint64(nElems))
			s.touch(base+uint64(idx*elem), a.Write)
		}
	}

	if scale > 1 {
		s.Loads = preLoads + (s.Loads-preLoads)*scale
		s.Stores = preStores + (s.Stores-preStores)*scale
		s.LLCLoadMiss = preLLCLd + (s.LLCLoadMiss-preLLCLd)*scale
		s.LLCStoreMiss = preLLCSt + (s.LLCStoreMiss-preLLCSt)*scale
		s.DRAMBytes = preDRAM + (s.DRAMBytes-preDRAM)*scale
		// The per-level counters feed the pipeline model's stall estimate
		// and must be scaled consistently with the touch counts.
		s.L1.Misses = startL1m + (s.L1.Misses-startL1m)*scale
		s.L1.Hits = startL1h + (s.L1.Hits-startL1h)*scale
		s.L2.Misses = startL2m + (s.L2.Misses-startL2m)*scale
		s.L2.Hits = startL2h + (s.L2.Hits-startL2h)*scale
		s.LLC.Misses = startLLCm + (s.LLC.Misses-startLLCm)*scale
		s.LLC.Hits = startLLCh + (s.LLC.Hits-startLLCh)*scale
	}
}

// ReplayAll replays every pattern of a traced run in order.
func (s *Sim) ReplayAll(accesses []trace.Access) {
	for i := range accesses {
		s.Replay(accesses[i])
	}
}

// MPKI returns LLC load misses per kilo-instruction for the given
// instruction count — the Table II metric.
func (s *Sim) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.LLCLoadMiss) / (float64(instructions) / 1000.0)
}

// AvgMemLatency returns the average data-access latency in cycles under
// the CPU model, for the top-down model's memory-boundness estimate.
func (s *Sim) AvgMemLatency() float64 {
	total := s.Loads + s.Stores
	if total == 0 {
		return float64(s.CPU.L1D.LatencyCyc)
	}
	l1m := s.L1.Misses
	l2m := s.L2.Misses
	llcm := s.LLC.Misses
	cyc := float64(total)*float64(s.CPU.L1D.LatencyCyc) +
		float64(l1m)*float64(s.CPU.L2.LatencyCyc) +
		float64(l2m)*float64(s.CPU.LLC.LatencyCyc) +
		float64(llcm)*float64(s.CPU.DRAMLatency)
	return cyc / float64(total)
}
