package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	end := p.StartStage(StageProve)
	end()
	p.Observe(KernelNTT, p.Begin(), 128)
	if p.Tree() != nil {
		t.Error("nil probe returned a tree")
	}
	if p.RequestID() != "" {
		t.Error("nil probe returned a request ID")
	}
	var tel *Telemetry
	if tel.Enabled() {
		t.Error("nil telemetry reports enabled")
	}
	tel.ObserveStage("groth16", "bn128", StageProve, time.Millisecond)
	tel.CountRequest("groth16", "bn128", "completed")
	tel.ObserveProbe("groth16", "bn128", nil)
	if tel.Registry() != nil {
		t.Error("nil telemetry returned a registry")
	}
}

func TestProbeSpanTree(t *testing.T) {
	p := NewProbe("req-1")
	if p.RequestID() != "req-1" {
		t.Fatalf("RequestID = %q", p.RequestID())
	}
	endProve := p.StartStage(StageProve)
	p.Observe(KernelNTT, p.Begin(), 256)
	p.Observe(KernelMSMG1, p.Begin(), 1024)
	endProve()
	endVerify := p.StartStage(StageVerify)
	p.Observe(KernelPairing, p.Begin(), 4)
	endVerify()

	tree := p.Tree()
	if tree.Name != "request" || len(tree.Children) != 2 {
		t.Fatalf("unexpected tree shape: %+v", tree)
	}
	prove := tree.Children[0]
	if prove.Name != StageProve || len(prove.Children) != 2 {
		t.Fatalf("prove span: %+v", prove)
	}
	if prove.Children[0].Name != KernelNTT || prove.Children[0].Items != 256 {
		t.Errorf("ntt leaf: %+v", prove.Children[0])
	}
	if prove.Children[1].Name != KernelMSMG1 || prove.Children[1].Items != 1024 {
		t.Errorf("msm leaf: %+v", prove.Children[1])
	}
	verify := tree.Children[1]
	if verify.Name != StageVerify || len(verify.Children) != 1 || verify.Children[0].Name != KernelPairing {
		t.Fatalf("verify span: %+v", verify)
	}

	var sb strings.Builder
	tree.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{"request", "prove", "ntt", "n=256", "msm_g1", "pairing"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree output missing %q:\n%s", want, out)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if ProbeFromContext(ctx) != nil {
		t.Error("empty context yielded a probe")
	}
	if WithProbe(ctx, nil) != ctx {
		t.Error("WithProbe(nil) should return ctx unchanged")
	}
	p := NewProbe("")
	ctx2 := WithProbe(ctx, p)
	if ProbeFromContext(ctx2) != p {
		t.Error("probe round-trip failed")
	}

	if RequestIDFromContext(ctx) != "" {
		t.Error("empty context yielded a request ID")
	}
	ctx3 := WithRequestID(ctx, "abc123")
	if RequestIDFromContext(ctx3) != "abc123" {
		t.Error("request ID round-trip failed")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs should be 16 hex chars: %q %q", a, b)
	}
	if a == b {
		t.Error("two request IDs collided")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.", Label{"backend", "groth16"})
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same name+labels resolves to the same series.
	if r.Counter("test_total", "A counter.", Label{"backend", "groth16"}) != c {
		t.Error("counter lookup not idempotent")
	}
	// Label order must not matter for identity.
	c2 := r.Counter("multi_total", "m", Label{"a", "1"}, Label{"b", "2"})
	if r.Counter("multi_total", "m", Label{"b", "2"}, Label{"a", "1"}) != c2 {
		t.Error("label order changed series identity")
	}

	g := r.Gauge("test_gauge", "A gauge.")
	g.Set(4.5)
	g.Add(-1.5)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	r.GaugeFunc("test_live", "Sampled.", func() float64 { return 7 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		`test_total{backend="groth16"} 3`,
		"# TYPE test_gauge gauge",
		"test_gauge 3",
		"test_live 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", Label{"stage", "prove"})
	// 3 µs lands in bucket len(3)=2 (le=4µs); 100 µs in bucket 7 (le=128µs).
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 128*time.Microsecond {
		t.Errorf("p50 = %v, want 128µs", q)
	}
	if q := h.Quantile(0.99); q != 128*time.Microsecond {
		t.Errorf("p99 = %v, want 128µs", q)
	}
	if m := h.Mean(); m < 60*time.Microsecond || m > 80*time.Microsecond {
		t.Errorf("mean = %v, want ~67µs", m)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="prove",le="4e-06"} 1`,
		`lat_seconds_bucket{stage="prove",le="0.000128"} 3`,
		`lat_seconds_bucket{stage="prove",le="+Inf"} 3`,
		`lat_seconds_count{stage="prove"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTelemetryFoldsProbe(t *testing.T) {
	tel := New()
	if !tel.Enabled() {
		t.Fatal("fresh telemetry not enabled")
	}
	p := NewProbe("r1")
	end := p.StartStage(StageProve)
	p.Observe(KernelNTT, p.Begin(), 64)
	p.Observe(KernelNTT, p.Begin(), 64)
	p.Observe(KernelMSMG1, p.Begin(), 512)
	end()
	tel.ObserveProbe("groth16", "bn128", p)
	tel.ObserveStage("groth16", "bn128", StageProve, 5*time.Millisecond)
	tel.CountRequest("groth16", "bn128", "completed")

	var sb strings.Builder
	if err := tel.Registry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`zkp_kernel_invocations_total{backend="groth16",curve="bn128",kernel="ntt"} 2`,
		`zkp_kernel_invocations_total{backend="groth16",curve="bn128",kernel="msm_g1"} 1`,
		`zkp_kernel_items_total{backend="groth16",curve="bn128",kernel="ntt"} 128`,
		`zkp_requests_total{backend="groth16",curve="bn128",outcome="completed"} 1`,
		`zkp_stage_duration_seconds_count{backend="groth16",curve="bn128",stage="prove"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c_total", "c").Inc()
				r.Histogram("h_seconds", "h").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h_seconds", "h").Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

// TestDisabledHookOverhead is the CI guard behind the one-branch cost
// contract: if someone adds allocation or clock reads to the nil-probe
// path, this fails loudly long before BenchmarkTelemetryOverhead is
// inspected by a human.
func TestDisabledHookOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	res := testing.Benchmark(func(b *testing.B) {
		var p *Probe
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := p.Begin()
			p.Observe(KernelNTT, t0, 1024)
			end := p.StartStage(StageProve)
			end()
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("disabled hooks allocate %d objects/op, want 0", a)
	}
	// Four nil checks and two closure calls: single-digit ns on any
	// modern core. 200ns leaves two orders of magnitude of headroom
	// for slow CI machines while still catching an accidental
	// time.Now() or map lookup on the disabled path.
	if ns := res.NsPerOp(); ns > 200 {
		t.Errorf("disabled hooks cost %dns/op, want ~single-digit ns (limit 200)", ns)
	}
}
