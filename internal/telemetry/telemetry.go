// Package telemetry is the serving stack's low-overhead, always-on
// observability layer — the production counterpart of the heavyweight
// paper-analysis recorder in internal/trace. Where trace serializes a
// run to attribute every field operation, telemetry is built to ride
// along with live traffic: per-request span trees (stage and kernel
// attribution, the same witness/prove/verify + NTT/MSM/pairing taxonomy
// the paper measures per run), a process-wide metrics registry exposed
// in Prometheus text format, and request IDs threaded through context
// from the HTTP edge into the backends.
//
// The cost contract: a nil *Probe or nil *Telemetry disables everything,
// and every hot-path hook is a single branch on that nil (methods have
// nil-receiver fast paths and allocate nothing when disabled). Kernels
// extract the probe from context once per kernel invocation — the same
// boundaries the context-cancellation plumbing already touches — never
// per chunk.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage names: the request-level phases of the zk-SNARK workflow, matching
// the paper's taxonomy (compile and setup are amortized by the registry
// and attributed there).
const (
	StageWitness = "witness"
	StageProve   = "prove"
	StageVerify  = "verify"
)

// Kernel names: the hot compute kernels the accelerator literature
// (PipeZK, ZKProphet, SZKP) targets. Hooks for these live at the same
// chunk boundaries the cancellation plumbing checks.
const (
	KernelNTT     = "ntt"
	KernelMSMG1   = "msm_g1"
	KernelMSMG2   = "msm_g2"
	KernelPairing = "pairing"
)

// kernelNames is the set ObserveProbe folds into the kernel metrics.
var kernelNames = map[string]bool{
	KernelNTT:     true,
	KernelMSMG1:   true,
	KernelMSMG2:   true,
	KernelPairing: true,
}

// Span is one timed region of a request: a stage (witness/prove/verify)
// or a kernel leaf under it. Start is the offset from the probe's birth,
// so a tree prints as a waterfall.
type Span struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	Items    int64 // work size: MSM points, NTT domain size, Miller loops
	Children []*Span
}

// WriteTree pretty-prints the span tree as an indented waterfall:
//
//	request                       +0.000ms    12.345ms
//	  prove                       +0.102ms    11.980ms
//	    msm_g1                    +1.337ms     4.200ms  n=2048
func (s *Span) WriteTree(w io.Writer) {
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	pad := 2 * depth
	fmt.Fprintf(w, "%*s%-*s %+9.3fms %11.3fms", pad, "", 24-pad, s.Name, ms(s.Start), ms(s.Duration))
	if s.Items > 0 {
		fmt.Fprintf(w, "  n=%d", s.Items)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		c.writeTree(w, depth+1)
	}
}

// visit walks the tree depth-first.
func (s *Span) visit(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.visit(fn)
	}
}

// Probe collects the span tree of one request. A nil *Probe is the
// disabled state: every method short-circuits on one branch. The probe
// travels in the request context (WithProbe / ProbeFromContext) and is
// folded into the metrics registry when the request finishes.
//
// Access is serialized with a mutex for -race cleanliness, but the
// expected usage is sequential: the engines call kernels one at a time
// from the job's worker goroutine (kernel-internal parallelism lives
// below the hook).
type Probe struct {
	id string
	t0 time.Time

	mu   sync.Mutex
	root Span
	open []*Span // span stack; open[0] == &root
}

// NewProbe starts an empty probe. id is the request ID ("" when the
// request has none, e.g. CLI runs).
func NewProbe(id string) *Probe {
	p := &Probe{id: id, t0: time.Now()}
	p.root.Name = "request"
	p.open = []*Span{&p.root}
	return p
}

// RequestID returns the ID the probe was created with ("" for nil).
func (p *Probe) RequestID() string {
	if p == nil {
		return ""
	}
	return p.id
}

var noopEnd = func() {}

// StartStage opens a nested stage span; the returned closure ends it.
// Safe (and free) on a nil probe.
func (p *Probe) StartStage(name string) func() {
	if p == nil {
		return noopEnd
	}
	p.mu.Lock()
	sp := &Span{Name: name, Start: time.Since(p.t0)}
	top := p.open[len(p.open)-1]
	top.Children = append(top.Children, sp)
	p.open = append(p.open, sp)
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		sp.Duration = time.Since(p.t0) - sp.Start
		// Pop to sp's level; tolerate a missed End below us.
		for len(p.open) > 1 {
			last := p.open[len(p.open)-1]
			p.open = p.open[:len(p.open)-1]
			if last == sp {
				break
			}
		}
		p.mu.Unlock()
	}
}

// Begin returns the start marker for a kernel hook — the zero time on a
// nil probe, so the paired Observe is one branch and the disabled path
// never reads the clock.
func (p *Probe) Begin() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// Observe records a completed kernel leaf under the innermost open span.
// items is the kernel's work size (MSM points, NTT domain size).
func (p *Probe) Observe(kernel string, start time.Time, items int) {
	if p == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	top := p.open[len(p.open)-1]
	top.Children = append(top.Children, &Span{
		Name:     kernel,
		Start:    start.Sub(p.t0),
		Duration: now.Sub(start),
		Items:    int64(items),
	})
	p.mu.Unlock()
}

// Tree finalizes and returns the request's span tree (nil for a nil
// probe). The root duration is stamped on first call.
func (p *Probe) Tree() *Span {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.root.Duration == 0 {
		p.root.Duration = time.Since(p.t0)
	}
	return &p.root
}

// Telemetry is the process-wide handle: the metrics registry plus the
// naming scheme the serving layer records under. A nil *Telemetry
// disables everything at one branch per call.
type Telemetry struct {
	reg *Registry
}

// New creates an enabled telemetry handle with an empty registry.
func New() *Telemetry { return &Telemetry{reg: NewRegistry()} }

// Enabled reports whether the handle records anything.
func (t *Telemetry) Enabled() bool { return t != nil }

// Registry exposes the metrics registry (nil for a nil handle).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// ObserveStage records one request-stage duration into the
// per-(backend, curve, stage) histogram.
func (t *Telemetry) ObserveStage(backend, curve, stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.reg.Histogram("zkp_stage_duration_seconds",
		"Per-request stage latency by backend, curve and stage.",
		Label{"backend", backend}, Label{"curve", curve}, Label{"stage", stage},
	).Observe(d)
}

// CountRequest bumps the request counter for one outcome
// (completed, failed, canceled, rejected, verified).
func (t *Telemetry) CountRequest(backend, curve, outcome string) {
	if t == nil {
		return
	}
	t.reg.Counter("zkp_requests_total",
		"Requests by backend, curve and outcome.",
		Label{"backend", backend}, Label{"curve", curve}, Label{"outcome", outcome},
	).Inc()
}

// ObserveProbe folds a finished request's kernel spans into the
// per-(backend, curve, kernel) histograms and counters. Safe on a nil
// handle or nil probe.
func (t *Telemetry) ObserveProbe(backend, curve string, p *Probe) {
	if t == nil || p == nil {
		return
	}
	bl, cl := Label{"backend", backend}, Label{"curve", curve}
	p.Tree().visit(func(s *Span) {
		if !kernelNames[s.Name] {
			return
		}
		kl := Label{"kernel", s.Name}
		t.reg.Histogram("zkp_kernel_duration_seconds",
			"Kernel invocation latency by backend, curve and kernel.",
			bl, cl, kl).Observe(s.Duration)
		t.reg.Counter("zkp_kernel_invocations_total",
			"Kernel invocations by backend, curve and kernel.",
			bl, cl, kl).Inc()
		t.reg.Counter("zkp_kernel_items_total",
			"Kernel work items (MSM points, NTT domain size, Miller loops).",
			bl, cl, kl).Add(uint64(s.Items))
	})
}

// NewRequestID returns a fresh 16-hex-char request ID for the HTTP edge.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand is effectively infallible; degrade to a timestamp
		// rather than failing a request over an ID.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xfffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}
