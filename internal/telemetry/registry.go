package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value metric dimension.
type Label struct {
	Name  string
	Value string
}

// Registry is a process-wide metric store in the Prometheus data model:
// named families (counter / gauge / histogram) each holding one series
// per label set. Lookup takes the registry mutex; the returned handles
// update atomically, so hot paths should hold on to handles rather than
// re-resolve names. All of it is stdlib-only — WriteText renders the
// Prometheus text exposition format directly.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	gauges   []gaugeFunc
}

type family struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	series map[string]any
}

type gaugeFunc struct {
	name   string
	help   string
	labels []Label
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) series(name, help, kind string, labels []Label, mk func() any) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
	}
	s := f.series[key]
	if s == nil {
		s = mk()
		f.series[key] = s
	}
	return s
}

// Counter returns (creating on first use) the monotonically increasing
// counter series for the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *CounterMetric {
	return r.series(name, help, "counter", labels, func() any {
		return &CounterMetric{labels: cloneLabels(labels)}
	}).(*CounterMetric)
}

// Gauge returns (creating on first use) the settable gauge series for
// the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *GaugeMetric {
	return r.series(name, help, "gauge", labels, func() any {
		return &GaugeMetric{labels: cloneLabels(labels)}
	}).(*GaugeMetric)
}

// Histogram returns (creating on first use) the log2-bucketed duration
// histogram series for the given labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *HistogramMetric {
	return r.series(name, help, "histogram", labels, func() any {
		return &HistogramMetric{labels: cloneLabels(labels)}
	}).(*HistogramMetric)
}

// GaugeFunc registers a gauge whose value is sampled at scrape time —
// used for live quantities like queue depth that already have an owner.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeFunc{name: name, help: help, labels: cloneLabels(labels), fn: fn})
}

// CounterMetric is a monotonically increasing uint64.
type CounterMetric struct {
	v      atomic.Uint64
	labels []Label
}

// Inc adds one.
func (c *CounterMetric) Inc() { c.v.Add(1) }

// Add adds n.
func (c *CounterMetric) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *CounterMetric) Value() uint64 { return c.v.Load() }

// GaugeMetric is a settable float64.
type GaugeMetric struct {
	bits   atomic.Uint64
	labels []Label
}

// Set stores v.
func (g *GaugeMetric) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *GaugeMetric) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *GaugeMetric) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of log2 duration buckets: bucket i holds
// observations with ceil(log2(µs)) == i, i.e. upper bound 2^i µs.
// 2^40 µs ≈ 13 days, comfortably past any request timeout.
const histBuckets = 41

// HistogramMetric is a lock-free log2-bucketed latency histogram. An
// observation of d lands in bucket bits.Len64(d in µs): sub-µs in
// bucket 0, (2^(i-1), 2^i] µs in bucket i. The exposition converts
// bucket bounds to seconds per Prometheus convention.
type HistogramMetric struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
	labels  []Label
}

// Observe records one duration.
func (h *HistogramMetric) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
}

// Count returns the number of observations.
func (h *HistogramMetric) Count() uint64 { return h.count.Load() }

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it — the same log2 resolution the trace package's
// summaries use. Returns 0 with no observations.
func (h *HistogramMetric) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(histBuckets-1)) * time.Microsecond
}

// Mean returns the average observed duration (0 with no observations).
func (h *HistogramMetric) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per series,
// histogram buckets cumulative with +Inf, deterministic ordering so the
// output is diffable and testable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	gauges := append([]gaugeFunc(nil), r.gauges...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch s := f.series[k].(type) {
			case *CounterMetric:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.Value())
			case *GaugeMetric:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(s.Value()))
			case *HistogramMetric:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	sort.SliceStable(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	var lastName string
	for _, g := range gauges {
		if g.name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", g.name, g.help)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
			lastName = g.name
		}
		fmt.Fprintf(&b, "%s%s %s\n", g.name, renderLabels(g.labels), fmtFloat(g.fn()))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, h *HistogramMetric) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue // sparse output: only buckets with observations (plus +Inf)
		}
		cum += n
		le := float64(uint64(1)<<uint(i)) / 1e6 // bucket bound in seconds
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(h.labels, Label{"le", fmtFloat(le)}), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(h.labels, Label{"le", "+Inf"}), h.count.Load())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(h.labels), fmtFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(h.labels), h.count.Load())
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func cloneLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func labelKey(labels []Label) string {
	ls := cloneLabels(labels)
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
