package telemetry

import "context"

type ctxKey int

const (
	probeKey ctxKey = iota
	requestIDKey
)

// WithProbe attaches a probe to the context so kernels down-stack can
// record into it. Attaching nil is a no-op (returns ctx unchanged) so
// the disabled path adds no context layer.
func WithProbe(ctx context.Context, p *Probe) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, probeKey, p)
}

// ProbeFromContext extracts the probe, or nil when none is attached.
// Kernels call this once per invocation — at the same function boundary
// the cancellation plumbing checks — never per chunk.
func ProbeFromContext(ctx context.Context) *Probe {
	p, _ := ctx.Value(probeKey).(*Probe)
	return p
}

// WithRequestID attaches the request ID generated at the HTTP edge.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request ID, or "" when none is set.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
