package tower

import (
	"math/big"

	"zkperf/internal/ff"
)

// Fp12 arithmetic: elements are C0 + C1·w with w² = v.

// E12Zero sets z = 0.
func (t *Tower) E12Zero(z *E12) *E12 {
	t.E6Zero(&z.C0)
	t.E6Zero(&z.C1)
	return z
}

// E12One sets z = 1.
func (t *Tower) E12One(z *E12) *E12 {
	t.E6One(&z.C0)
	t.E6Zero(&z.C1)
	return z
}

// E12IsZero reports whether z == 0.
func (t *Tower) E12IsZero(z *E12) bool { return t.E6IsZero(&z.C0) && t.E6IsZero(&z.C1) }

// E12IsOne reports whether z == 1.
func (t *Tower) E12IsOne(z *E12) bool { return t.E6IsOne(&z.C0) && t.E6IsZero(&z.C1) }

// E12Equal reports whether x == y.
func (t *Tower) E12Equal(x, y *E12) bool {
	return t.E6Equal(&x.C0, &y.C0) && t.E6Equal(&x.C1, &y.C1)
}

// E12Set copies x into z.
func (t *Tower) E12Set(z, x *E12) *E12 {
	*z = *x
	return z
}

// E12Add sets z = x + y.
func (t *Tower) E12Add(z, x, y *E12) *E12 {
	t.E6Add(&z.C0, &x.C0, &y.C0)
	t.E6Add(&z.C1, &x.C1, &y.C1)
	return z
}

// E12Sub sets z = x − y.
func (t *Tower) E12Sub(z, x, y *E12) *E12 {
	t.E6Sub(&z.C0, &x.C0, &y.C0)
	t.E6Sub(&z.C1, &x.C1, &y.C1)
	return z
}

// E12Neg sets z = −x.
func (t *Tower) E12Neg(z, x *E12) *E12 {
	t.E6Neg(&z.C0, &x.C0)
	t.E6Neg(&z.C1, &x.C1)
	return z
}

// E12Mul sets z = x·y (Karatsuba over the quadratic extension, w² = v).
func (t *Tower) E12Mul(z, x, y *E12) *E12 {
	var v0, v1, s0, s1, mid, vv E6
	t.E6Mul(&v0, &x.C0, &y.C0)
	t.E6Mul(&v1, &x.C1, &y.C1)
	t.E6Add(&s0, &x.C0, &x.C1)
	t.E6Add(&s1, &y.C0, &y.C1)
	t.E6Mul(&mid, &s0, &s1)
	t.E6Sub(&mid, &mid, &v0)
	t.E6Sub(&mid, &mid, &v1) // x0·y1 + x1·y0
	t.E6MulByV(&vv, &v1)     // v·x1·y1
	t.E6Add(&z.C0, &v0, &vv)
	t.E6Set(&z.C1, &mid)
	return z
}

// E12Square sets z = x².
func (t *Tower) E12Square(z, x *E12) *E12 {
	// (c0 + c1 w)² = (c0² + v·c1²) + 2·c0·c1·w, computed with the complex
	// squaring trick: c0² + v·c1² = (c0 + c1)(c0 + v·c1) − c0c1 − v·c0c1.
	var prod, vC1, sum1, sum2, cross E6
	t.E6Mul(&prod, &x.C0, &x.C1)
	t.E6MulByV(&vC1, &x.C1)
	t.E6Add(&sum1, &x.C0, &x.C1)
	t.E6Add(&sum2, &x.C0, &vC1)
	t.E6Mul(&cross, &sum1, &sum2)
	var vProd E6
	t.E6MulByV(&vProd, &prod)
	t.E6Sub(&cross, &cross, &prod)
	t.E6Sub(&z.C0, &cross, &vProd)
	t.E6Add(&z.C1, &prod, &prod)
	return z
}

// E12Inverse sets z = x^{-1}: (c0 − c1 w)/(c0² − v·c1²).
func (t *Tower) E12Inverse(z, x *E12) *E12 {
	var c0sq, c1sq, vC1sq, norm, inv E6
	t.E6Square(&c0sq, &x.C0)
	t.E6Square(&c1sq, &x.C1)
	t.E6MulByV(&vC1sq, &c1sq)
	t.E6Sub(&norm, &c0sq, &vC1sq)
	t.E6Inverse(&inv, &norm)
	t.E6Mul(&z.C0, &x.C0, &inv)
	var negC1 E6
	t.E6Neg(&negC1, &x.C1)
	t.E6Mul(&z.C1, &negC1, &inv)
	return z
}

// E12Conjugate sets z = c0 − c1·w, which equals x^{p⁶} (the unitary
// inverse for elements of the cyclotomic subgroup).
func (t *Tower) E12Conjugate(z, x *E12) *E12 {
	t.E6Set(&z.C0, &x.C0)
	t.E6Neg(&z.C1, &x.C1)
	return z
}

// E12Frobenius sets z = x^p.
func (t *Tower) E12Frobenius(z, x *E12) *E12 {
	var f0, f1 E6
	t.E6Frobenius(&f0, &x.C0)
	t.E6Frobenius(&f1, &x.C1)
	// w^p = w · w^{p−1} = w · ξ^{(p−1)/6}
	t.E6MulByE2(&f1, &f1, &t.frobGammaW)
	z.C0, z.C1 = f0, f1
	return z
}

// E12FrobeniusN applies the Frobenius endomorphism n times.
func (t *Tower) E12FrobeniusN(z, x *E12, n int) *E12 {
	t.E12Set(z, x)
	for i := 0; i < n; i++ {
		t.E12Frobenius(z, z)
	}
	return z
}

// E12Exp sets z = x^e for a non-negative big.Int exponent.
func (t *Tower) E12Exp(z, x *E12, e *big.Int) *E12 {
	var acc E12
	t.E12One(&acc)
	for i := e.BitLen() - 1; i >= 0; i-- {
		t.E12Square(&acc, &acc)
		if e.Bit(i) == 1 {
			t.E12Mul(&acc, &acc, x)
		}
	}
	return t.E12Set(z, &acc)
}

// E12MulByElement sets z = x·c for a base-field scalar c.
func (t *Tower) E12MulByElement(z, x *E12, c *ff.Element) *E12 {
	var ce E2
	t.F.Set(&ce.A0, c)
	t.F.Zero(&ce.A1)
	t.E6MulByE2(&z.C0, &x.C0, &ce)
	t.E6MulByE2(&z.C1, &x.C1, &ce)
	return z
}

// E12Random sets z to a pseudo-random element.
func (t *Tower) E12Random(z *E12, rng *ff.RNG) *E12 {
	t.E6Random(&z.C0, rng)
	t.E6Random(&z.C1, rng)
	return z
}

// E12FromFp embeds a base-field element into Fp12.
func (t *Tower) E12FromFp(z *E12, c *ff.Element) *E12 {
	t.E12Zero(z)
	t.F.Set(&z.C0.B0.A0, c)
	return z
}

// E12FromE2 embeds an Fp2 element into Fp12 (as the B0 coefficient).
func (t *Tower) E12FromE2(z *E12, c *E2) *E12 {
	t.E12Zero(z)
	t.E2Set(&z.C0.B0, c)
	return z
}

// WPower returns w^k ∈ Fp12 for 0 ≤ k ≤ 5, used by the twist embeddings
// (w² = v, w⁶ = ξ).
func (t *Tower) WPower(z *E12, k int) *E12 {
	t.E12Zero(z)
	switch k {
	case 0:
		t.F.One(&z.C0.B0.A0)
	case 1:
		t.F.One(&z.C1.B0.A0)
	case 2: // w² = v
		t.F.One(&z.C0.B1.A0)
	case 3: // w³ = v·w
		t.F.One(&z.C1.B1.A0)
	case 4: // w⁴ = v²
		t.F.One(&z.C0.B2.A0)
	case 5: // w⁵ = v²·w
		t.F.One(&z.C1.B2.A0)
	default:
		panic("tower: WPower exponent out of range")
	}
	return z
}
