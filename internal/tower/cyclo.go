package tower

import "math/big"

// Cyclotomic-subgroup arithmetic and sparse line multiplication — the two
// Fp12 specializations the pairing engine leans on. Elements that survive
// the easy part of the final exponentiation lie in the cyclotomic subgroup
// G_{Φ₆(p²)} ⊂ Fp12*, where squaring admits the Granger–Scott shortcut;
// Miller-loop line evaluations occupy only three of the six Fp2
// coefficients, so accumulating them with a full E12Mul wastes a third of
// the multiplications.

// fp4Square computes (x0 + x1·s)² in Fp4 = Fp2[s]/(s² − ξ):
// c0 = x0² + ξ·x1², c1 = 2·x0·x1, using three Fp2 squarings
// (2·x0·x1 = (x0+x1)² − x0² − x1²).
func (t *Tower) fp4Square(c0, c1, x0, x1 *E2) {
	var sq0, sq1, sum E2
	t.E2Square(&sq0, x0)
	t.E2Square(&sq1, x1)
	t.E2Add(&sum, x0, x1)
	t.E2Square(&sum, &sum)
	t.E2Sub(&sum, &sum, &sq0)
	t.E2Sub(c1, &sum, &sq1)
	t.E2MulByXi(&sq1, &sq1)
	t.E2Add(c0, &sq0, &sq1)
}

// E12CyclotomicSquare sets z = x² for x in the cyclotomic subgroup
// (x^{p⁶+1} = 1). Granger–Scott: writing Fp12 = Fp4[u]/(u³ − s) with
// x = A + B·u + C·u², the unitarity constraint collapses the full
// squaring to three Fp4 squarings:
//
//	x² = (3A² − 2Ā) + (3sC² + 2B̄)·u + (3B² − 2C̄)·u²
//
// where conjugation is the Fp4 one (a + b·s ↦ a − b·s). In tower
// coordinates A = (C0.B0, C1.B1), B = (C1.B0, C0.B2), C = (C0.B1, C1.B2).
// The result is only correct for cyclotomic inputs; callers must square
// general elements with E12Square.
func (t *Tower) E12CyclotomicSquare(z, x *E12) *E12 {
	var a0, a1, b0, b1, c0, c1 E2
	t.fp4Square(&a0, &a1, &x.C0.B0, &x.C1.B1)
	t.fp4Square(&b0, &b1, &x.C1.B0, &x.C0.B2)
	t.fp4Square(&c0, &c1, &x.C0.B1, &x.C1.B2)

	// three(z, v, g): z = 3v − 2g; threeC(z, v, g): z = 3v + 2g.
	three := func(z, v, g *E2) {
		var d E2
		t.E2Sub(&d, v, g)
		t.E2Double(&d, &d)
		t.E2Add(z, &d, v)
	}
	threeC := func(z, v, g *E2) {
		var d E2
		t.E2Add(&d, v, g)
		t.E2Double(&d, &d)
		t.E2Add(z, &d, v)
	}

	var out E12
	three(&out.C0.B0, &a0, &x.C0.B0)
	threeC(&out.C1.B1, &a1, &x.C1.B1)
	// B' = 3sC² + 2B̄: s·(c0 + c1·s) = ξc1 + c0·s.
	var xiC1 E2
	t.E2MulByXi(&xiC1, &c1)
	threeC(&out.C1.B0, &xiC1, &x.C1.B0)
	three(&out.C0.B2, &c0, &x.C0.B2)
	three(&out.C0.B1, &b0, &x.C0.B1)
	threeC(&out.C1.B2, &b1, &x.C1.B2)
	return t.E12Set(z, &out)
}

// E12CyclotomicExp sets z = x^e for x in the cyclotomic subgroup, using
// Granger–Scott squarings and a signed (NAF) digit recoding: in the
// cyclotomic subgroup the inverse is the (free) conjugate, so negative
// digits cost a conjugation instead of an inversion. The exponent is taken
// as a non-negative integer.
func (t *Tower) E12CyclotomicExp(z, x *E12, e *big.Int) *E12 {
	naf := nafDigits(e)
	var xInv E12
	t.E12Conjugate(&xInv, x)
	var acc E12
	t.E12One(&acc)
	for i := len(naf) - 1; i >= 0; i-- {
		t.E12CyclotomicSquare(&acc, &acc)
		switch naf[i] {
		case 1:
			t.E12Mul(&acc, &acc, x)
		case -1:
			t.E12Mul(&acc, &acc, &xInv)
		}
	}
	return t.E12Set(z, &acc)
}

// nafDigits returns the non-adjacent-form digits of e (little-endian,
// digits in {−1, 0, 1}, no two adjacent digits nonzero).
func nafDigits(e *big.Int) []int8 {
	k := new(big.Int).Set(e)
	out := make([]int8, 0, e.BitLen()+1)
	two := big.NewInt(2)
	four := big.NewInt(4)
	m := new(big.Int)
	for k.Sign() > 0 {
		if k.Bit(0) == 1 {
			// d = 2 − (k mod 4) ∈ {−1, 1}
			m.Mod(k, four)
			d := int8(2 - m.Int64())
			out = append(out, d)
			if d == 1 {
				k.Sub(k, big.NewInt(1))
			} else {
				k.Add(k, big.NewInt(1))
			}
		} else {
			out = append(out, 0)
		}
		k.Div(k, two)
	}
	return out
}

// e6MulBy01 sets z = x·(e0 + e1·v), the 2-sparse Fp6 multiplication used by
// D-twist lines. Five Fp2 multiplications (Karatsuba on the B0/B1 pair).
func (t *Tower) e6MulBy01(z, x *E6, e0, e1 *E2) *E6 {
	var t0, t1, m, se, sb, u0, u2 E2
	t.E2Mul(&t0, &x.B0, e0)
	t.E2Mul(&t1, &x.B1, e1)
	t.E2Add(&sb, &x.B0, &x.B1)
	t.E2Add(&se, e0, e1)
	t.E2Mul(&m, &sb, &se)
	t.E2Sub(&m, &m, &t0)
	t.E2Sub(&m, &m, &t1) // B0·e1 + B1·e0

	t.E2Mul(&u0, &x.B2, e1)
	t.E2MulByXi(&u0, &u0)
	t.E2Add(&u0, &u0, &t0) // B0·e0 + ξ·B2·e1
	t.E2Mul(&u2, &x.B2, e0)
	t.E2Add(&u2, &u2, &t1) // B1·e1 + B2·e0

	z.B0, z.B1, z.B2 = u0, m, u2
	return z
}

// e6MulBy12 sets z = x·(e1·v + e2·v²), the 2-sparse Fp6 multiplication used
// by M-twist lines. Five Fp2 multiplications.
func (t *Tower) e6MulBy12(z, x *E6, e1, e2 *E2) *E6 {
	var t0, t1, m, se, sb, u0, u1 E2
	t.E2Mul(&t0, &x.B0, e1)
	t.E2Mul(&t1, &x.B1, e2)
	t.E2Add(&sb, &x.B0, &x.B1)
	t.E2Add(&se, e1, e2)
	t.E2Mul(&m, &sb, &se)
	t.E2Sub(&m, &m, &t0)
	t.E2Sub(&m, &m, &t1) // B0·e2 + B1·e1

	t.E2Mul(&u0, &x.B2, e1)
	t.E2Add(&u0, &u0, &t1)
	t.E2MulByXi(&u0, &u0) // ξ·(B1·e2 + B2·e1)
	t.E2Mul(&u1, &x.B2, e2)
	t.E2MulByXi(&u1, &u1)
	t.E2Add(&u1, &u1, &t0) // B0·e1 + ξ·B2·e2

	z.B0, z.B1, z.B2 = u0, u1, m
	return z
}

// E12MulLineD sets z = x·ℓ where ℓ = a + (b + c·v)·w — the shape of a
// D-twist (BN254) Miller-loop line, which has nonzero coefficients only at
// 1, w and v·w. Thirteen Fp2 multiplications versus eighteen for a full
// E12Mul. Alias-safe (z may be x).
func (t *Tower) E12MulLineD(z, x *E12, a, b, c *E2) *E12 {
	// ℓ = S0 + S1·w with S0 = (a,0,0), S1 = (b,c,0).
	var v0, v1, mid, sum E6
	t.E6MulByE2(&v0, &x.C0, a)    // 3M
	t.e6MulBy01(&v1, &x.C1, b, c) // 5M
	t.E6Add(&sum, &x.C0, &x.C1)
	var ab E2
	t.E2Add(&ab, a, b)
	t.e6MulBy01(&mid, &sum, &ab, c) // 5M: (x0+x1)·(S0+S1), S0+S1 = (a+b, c, 0)
	t.E6Sub(&mid, &mid, &v0)
	t.E6Sub(&mid, &mid, &v1)
	var vv1 E6
	t.E6MulByV(&vv1, &v1)
	t.E6Add(&z.C0, &v0, &vv1)
	t.E6Set(&z.C1, &mid)
	return z
}

// E12MulLineM sets z = x·ℓ where ℓ = a + (c·v + d·v²)·w — the shape of an
// M-twist (BLS12-381) Miller-loop line (nonzero at 1, v·w and v²·w).
// Fourteen Fp2 multiplications. Alias-safe.
func (t *Tower) E12MulLineM(z, x *E12, a, c, d *E2) *E12 {
	// ℓ = S0 + S1·w with S0 = (a,0,0), S1 = (0,c,d); S0+S1 = (a,c,d) is
	// dense, so the Karatsuba middle term falls back to a full E6Mul.
	var v0, v1, mid, sum, s E6
	t.E6MulByE2(&v0, &x.C0, a)    // 3M
	t.e6MulBy12(&v1, &x.C1, c, d) // 5M
	t.E6Add(&sum, &x.C0, &x.C1)
	s.B0, s.B1, s.B2 = *a, *c, *d
	t.E6Mul(&mid, &sum, &s) // 6M
	t.E6Sub(&mid, &mid, &v0)
	t.E6Sub(&mid, &mid, &v1)
	var vv1 E6
	t.E6MulByV(&vv1, &v1)
	t.E6Add(&z.C0, &v0, &vv1)
	t.E6Set(&z.C1, &mid)
	return z
}

// E2BatchInverse inverts every element of xs in place with one field
// inversion (Montgomery's trick lifted to Fp2). Zero entries stay zero and
// do not poison the batch. scratch must have len(xs) capacity; it is used
// for the prefix products.
func (t *Tower) E2BatchInverse(xs []E2, scratch []E2) {
	n := len(xs)
	if n == 0 {
		return
	}
	scratch = scratch[:n]
	var acc E2
	t.E2One(&acc)
	for i := 0; i < n; i++ {
		scratch[i] = acc
		if !t.E2IsZero(&xs[i]) {
			t.E2Mul(&acc, &acc, &xs[i])
		}
	}
	var inv E2
	t.E2Inverse(&inv, &acc)
	for i := n - 1; i >= 0; i-- {
		if t.E2IsZero(&xs[i]) {
			continue
		}
		var zi E2
		t.E2Mul(&zi, &inv, &scratch[i])
		t.E2Mul(&inv, &inv, &xs[i])
		xs[i] = zi
	}
}
