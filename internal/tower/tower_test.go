package tower

import (
	"testing"
	"testing/quick"

	"zkperf/internal/ff"
)

// towers under test: BN254 with ξ = 9+i, BLS12-381 with ξ = 1+i.
func testTowers() []*Tower {
	return []*Tower{
		New(ff.NewBN254Fp(), 9, 1),
		New(ff.NewBLS12381Fp(), 1, 1),
	}
}

func TestE2Laws(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(1)
		for i := 0; i < 20; i++ {
			var a, b, c E2
			tw.E2Random(&a, rng)
			tw.E2Random(&b, rng)
			tw.E2Random(&c, rng)

			var ab, ba E2
			tw.E2Mul(&ab, &a, &b)
			tw.E2Mul(&ba, &b, &a)
			if !tw.E2Equal(&ab, &ba) {
				t.Fatalf("%s: E2 mul not commutative", tw.F.Name)
			}

			var lhs, rhs, t1, t2 E2
			tw.E2Add(&t1, &b, &c)
			tw.E2Mul(&lhs, &a, &t1)
			tw.E2Mul(&t1, &a, &b)
			tw.E2Mul(&t2, &a, &c)
			tw.E2Add(&rhs, &t1, &t2)
			if !tw.E2Equal(&lhs, &rhs) {
				t.Fatalf("%s: E2 distributivity fails", tw.F.Name)
			}

			var sq, mm E2
			tw.E2Square(&sq, &a)
			tw.E2Mul(&mm, &a, &a)
			if !tw.E2Equal(&sq, &mm) {
				t.Fatalf("%s: E2 square != mul", tw.F.Name)
			}
		}
	}
}

func TestE2Inverse(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(2)
		for i := 0; i < 10; i++ {
			var a, inv, prod E2
			tw.E2Random(&a, rng)
			if tw.E2IsZero(&a) {
				continue
			}
			tw.E2Inverse(&inv, &a)
			tw.E2Mul(&prod, &a, &inv)
			if !tw.E2IsOne(&prod) {
				t.Fatalf("%s: E2 inverse wrong", tw.F.Name)
			}
		}
	}
}

func TestE2Conjugate(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(3)
		var a, conj E2
		tw.E2Random(&a, rng)
		// conj(a) == a^p
		tw.E2Conjugate(&conj, &a)
		var ap E2
		tw.E2Exp(&ap, &a, tw.F.Modulus())
		if !tw.E2Equal(&conj, &ap) {
			t.Fatalf("%s: E2 conjugate != a^p", tw.F.Name)
		}
	}
}

func TestE6Laws(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(4)
		for i := 0; i < 10; i++ {
			var a, b, c E6
			tw.E6Random(&a, rng)
			tw.E6Random(&b, rng)
			tw.E6Random(&c, rng)

			var ab, ba E6
			tw.E6Mul(&ab, &a, &b)
			tw.E6Mul(&ba, &b, &a)
			if !tw.E6Equal(&ab, &ba) {
				t.Fatalf("%s: E6 mul not commutative", tw.F.Name)
			}

			var abc1, abc2, t1 E6
			tw.E6Mul(&t1, &a, &b)
			tw.E6Mul(&abc1, &t1, &c)
			tw.E6Mul(&t1, &b, &c)
			tw.E6Mul(&abc2, &a, &t1)
			if !tw.E6Equal(&abc1, &abc2) {
				t.Fatalf("%s: E6 mul not associative", tw.F.Name)
			}
		}
	}
}

func TestE6Inverse(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(5)
		for i := 0; i < 5; i++ {
			var a, inv, prod E6
			tw.E6Random(&a, rng)
			tw.E6Inverse(&inv, &a)
			tw.E6Mul(&prod, &a, &inv)
			if !tw.E6IsOne(&prod) {
				t.Fatalf("%s: E6 inverse wrong", tw.F.Name)
			}
		}
	}
}

func TestE6MulByV(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(6)
		var a, viaMul, viaShift, v E6
		tw.E6Random(&a, rng)
		// v as an E6 element: (0, 1, 0)
		tw.E6Zero(&v)
		tw.E2One(&v.B1)
		tw.E6Mul(&viaMul, &a, &v)
		tw.E6MulByV(&viaShift, &a)
		if !tw.E6Equal(&viaMul, &viaShift) {
			t.Fatalf("%s: MulByV disagrees with full multiplication", tw.F.Name)
		}
	}
}

func TestE6Frobenius(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(7)
		var a E6
		tw.E6Random(&a, rng)
		var frob E6
		tw.E6Frobenius(&frob, &a)
		// Check multiplicativity: φ(a·a) == φ(a)·φ(a).
		var a2, fa2, f2 E6
		tw.E6Mul(&a2, &a, &a)
		tw.E6Frobenius(&fa2, &a2)
		tw.E6Mul(&f2, &frob, &frob)
		if !tw.E6Equal(&fa2, &f2) {
			t.Fatalf("%s: E6 Frobenius not multiplicative", tw.F.Name)
		}
	}
}

func TestE12Laws(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(8)
		for i := 0; i < 5; i++ {
			var a, b E12
			tw.E12Random(&a, rng)
			tw.E12Random(&b, rng)

			var ab, ba E12
			tw.E12Mul(&ab, &a, &b)
			tw.E12Mul(&ba, &b, &a)
			if !tw.E12Equal(&ab, &ba) {
				t.Fatalf("%s: E12 mul not commutative", tw.F.Name)
			}

			var sq, mm E12
			tw.E12Square(&sq, &a)
			tw.E12Mul(&mm, &a, &a)
			if !tw.E12Equal(&sq, &mm) {
				t.Fatalf("%s: E12 square != mul", tw.F.Name)
			}
		}
	}
}

func TestE12Inverse(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(9)
		var a, inv, prod E12
		tw.E12Random(&a, rng)
		tw.E12Inverse(&inv, &a)
		tw.E12Mul(&prod, &a, &inv)
		if !tw.E12IsOne(&prod) {
			t.Fatalf("%s: E12 inverse wrong", tw.F.Name)
		}
	}
}

// TestE12Frobenius verifies φ(x) == x^p — the strongest possible check of
// the precomputed γ constants.
func TestE12Frobenius(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(10)
		var a, frob, viaExp E12
		tw.E12Random(&a, rng)
		tw.E12Frobenius(&frob, &a)
		tw.E12Exp(&viaExp, &a, tw.F.Modulus())
		if !tw.E12Equal(&frob, &viaExp) {
			t.Fatalf("%s: E12 Frobenius != x^p", tw.F.Name)
		}
	}
}

// TestWPowers verifies the w^k basis embeddings: w^a · w^b == w^{a+b}
// (with w⁶ = ξ).
func TestWPowers(t *testing.T) {
	for _, tw := range testTowers() {
		var w1, w2, w3, prod E12
		tw.WPower(&w1, 1)
		tw.WPower(&w2, 2)
		tw.WPower(&w3, 3)
		tw.E12Mul(&prod, &w1, &w2)
		if !tw.E12Equal(&prod, &w3) {
			t.Fatalf("%s: w·w² != w³", tw.F.Name)
		}
		// w³·w³ = w⁶ = ξ
		var w6, xi12 E12
		tw.E12Mul(&w6, &w3, &w3)
		tw.E12FromE2(&xi12, &tw.Xi)
		if !tw.E12Equal(&w6, &xi12) {
			t.Fatalf("%s: w⁶ != ξ", tw.F.Name)
		}
	}
}

func TestE12ConjugateIsPower(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(11)
		var a, conj, viaFrob E12
		tw.E12Random(&a, rng)
		tw.E12Conjugate(&conj, &a)
		tw.E12FrobeniusN(&viaFrob, &a, 6)
		if !tw.E12Equal(&conj, &viaFrob) {
			t.Fatalf("%s: conjugate != Frobenius⁶", tw.F.Name)
		}
	}
}

// TestQuickE2FieldLaws drives random algebra through testing/quick.
func TestQuickE2FieldLaws(t *testing.T) {
	tw := New(ff.NewBN254Fp(), 9, 1)
	prop := func(seed uint64) bool {
		rng := ff.NewRNG(seed)
		var a, b E2
		tw.E2Random(&a, rng)
		tw.E2Random(&b, rng)
		// (a+b)² == a² + 2ab + b²
		var sum, lhs, a2, b2, ab, rhs E2
		tw.E2Add(&sum, &a, &b)
		tw.E2Square(&lhs, &sum)
		tw.E2Square(&a2, &a)
		tw.E2Square(&b2, &b)
		tw.E2Mul(&ab, &a, &b)
		tw.E2Double(&ab, &ab)
		tw.E2Add(&rhs, &a2, &ab)
		tw.E2Add(&rhs, &rhs, &b2)
		return tw.E2Equal(&lhs, &rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestE12InverseOfProduct: (ab)⁻¹ == b⁻¹·a⁻¹.
func TestE12InverseOfProduct(t *testing.T) {
	for _, tw := range testTowers() {
		rng := ff.NewRNG(77)
		var a, b, ab, abInv, aInv, bInv, prod E12
		tw.E12Random(&a, rng)
		tw.E12Random(&b, rng)
		tw.E12Mul(&ab, &a, &b)
		tw.E12Inverse(&abInv, &ab)
		tw.E12Inverse(&aInv, &a)
		tw.E12Inverse(&bInv, &b)
		tw.E12Mul(&prod, &bInv, &aInv)
		if !tw.E12Equal(&abInv, &prod) {
			t.Fatalf("%s: (ab)^-1 != b^-1 a^-1", tw.F.Name)
		}
	}
}
