// Package tower implements the Fp2 → Fp6 → Fp12 extension-field tower used
// by pairing-friendly curves. Both BN254 and BLS12-381 share the same tower
// shape:
//
//	Fp2  = Fp[i]  / (i² + 1)
//	Fp6  = Fp2[v] / (v³ − ξ)      ξ = 9+i (BN254), 1+i (BLS12-381)
//	Fp12 = Fp6[w] / (w² − v)      so w⁶ = ξ
//
// A Tower value owns the base field and the non-residue ξ; all arithmetic
// goes through Tower methods, so the base field's operation counters see
// every limb-level operation — the same visibility a binary instrumentation
// tool has into a native pairing library.
package tower

import (
	"math/big"

	"zkperf/internal/ff"
)

// E2 is an element of Fp2: A0 + A1·i.
type E2 struct{ A0, A1 ff.Element }

// E6 is an element of Fp6: B0 + B1·v + B2·v².
type E6 struct{ B0, B1, B2 E2 }

// E12 is an element of Fp12: C0 + C1·w.
type E12 struct{ C0, C1 E6 }

// Tower bundles a base field with the quadratic/cubic non-residues and the
// precomputed Frobenius constants.
type Tower struct {
	F  *ff.Field
	Xi E2 // the Fp6 non-residue ξ ∈ Fp2

	// Frobenius constants: γ1 = ξ^((p−1)/3), γ2 = ξ^(2(p−1)/3) for the Fp6
	// Frobenius, γw = ξ^((p−1)/6) for the Fp12 Frobenius.
	frobGamma1 E2
	frobGamma2 E2
	frobGammaW E2
}

// New builds a tower over field f with ξ = xi0 + xi1·i. The Frobenius
// constants are derived by exponentiation at construction time.
func New(f *ff.Field, xi0, xi1 uint64) *Tower {
	t := &Tower{F: f}
	f.SetUint64(&t.Xi.A0, xi0)
	f.SetUint64(&t.Xi.A1, xi1)

	p := f.Modulus()
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(p, one)
	e3 := new(big.Int).Div(pm1, big.NewInt(3))
	e6 := new(big.Int).Div(pm1, big.NewInt(6))
	t.E2Exp(&t.frobGamma1, &t.Xi, e3)
	t.E2Mul(&t.frobGamma2, &t.frobGamma1, &t.frobGamma1)
	t.E2Exp(&t.frobGammaW, &t.Xi, e6)
	return t
}

// FrobGammaW writes γw = ξ^((p−1)/6) into z. γw describes the Frobenius
// action on w (π(w) = γw·w); its powers are the coefficients of the
// twisted endomorphism ψ used by the BN optimal-ate tail.
func (t *Tower) FrobGammaW(z *E2) *E2 { return t.E2Set(z, &t.frobGammaW) }

// ---------- Fp2 arithmetic ----------

// E2Zero sets z = 0.
func (t *Tower) E2Zero(z *E2) *E2 {
	t.F.Zero(&z.A0)
	t.F.Zero(&z.A1)
	return z
}

// E2One sets z = 1.
func (t *Tower) E2One(z *E2) *E2 {
	t.F.One(&z.A0)
	t.F.Zero(&z.A1)
	return z
}

// E2IsZero reports whether z == 0.
func (t *Tower) E2IsZero(z *E2) bool { return t.F.IsZero(&z.A0) && t.F.IsZero(&z.A1) }

// E2IsOne reports whether z == 1.
func (t *Tower) E2IsOne(z *E2) bool { return t.F.IsOne(&z.A0) && t.F.IsZero(&z.A1) }

// E2Equal reports whether x == y.
func (t *Tower) E2Equal(x, y *E2) bool {
	return t.F.Equal(&x.A0, &y.A0) && t.F.Equal(&x.A1, &y.A1)
}

// E2Set copies x into z.
func (t *Tower) E2Set(z, x *E2) *E2 {
	*z = *x
	return z
}

// E2Add sets z = x + y.
func (t *Tower) E2Add(z, x, y *E2) *E2 {
	t.F.Add(&z.A0, &x.A0, &y.A0)
	t.F.Add(&z.A1, &x.A1, &y.A1)
	return z
}

// E2Sub sets z = x − y.
func (t *Tower) E2Sub(z, x, y *E2) *E2 {
	t.F.Sub(&z.A0, &x.A0, &y.A0)
	t.F.Sub(&z.A1, &x.A1, &y.A1)
	return z
}

// E2Neg sets z = −x.
func (t *Tower) E2Neg(z, x *E2) *E2 {
	t.F.Neg(&z.A0, &x.A0)
	t.F.Neg(&z.A1, &x.A1)
	return z
}

// E2Double sets z = 2x.
func (t *Tower) E2Double(z, x *E2) *E2 { return t.E2Add(z, x, x) }

// E2Mul sets z = x·y using the Karatsuba-style 3-multiplication schoolbook
// with i² = −1.
func (t *Tower) E2Mul(z, x, y *E2) *E2 {
	f := t.F
	var v0, v1, s0, s1, tmp ff.Element
	f.Mul(&v0, &x.A0, &y.A0)
	f.Mul(&v1, &x.A1, &y.A1)
	f.Add(&s0, &x.A0, &x.A1)
	f.Add(&s1, &y.A0, &y.A1)
	f.Mul(&tmp, &s0, &s1) // (a0+a1)(b0+b1)
	f.Sub(&tmp, &tmp, &v0)
	f.Sub(&z.A1, &tmp, &v1)
	f.Sub(&z.A0, &v0, &v1)
	return z
}

// E2Square sets z = x².
func (t *Tower) E2Square(z, x *E2) *E2 {
	f := t.F
	var sum, diff, prod ff.Element
	f.Add(&sum, &x.A0, &x.A1)
	f.Sub(&diff, &x.A0, &x.A1)
	f.Mul(&prod, &x.A0, &x.A1)
	f.Mul(&z.A0, &sum, &diff) // a0² − a1²
	f.Double(&z.A1, &prod)    // 2·a0·a1
	return z
}

// E2MulByElement sets z = x·c for a base-field scalar c.
func (t *Tower) E2MulByElement(z, x *E2, c *ff.Element) *E2 {
	t.F.Mul(&z.A0, &x.A0, c)
	t.F.Mul(&z.A1, &x.A1, c)
	return z
}

// E2Conjugate sets z = a0 − a1·i, which is x^p.
func (t *Tower) E2Conjugate(z, x *E2) *E2 {
	t.F.Set(&z.A0, &x.A0)
	t.F.Neg(&z.A1, &x.A1)
	return z
}

// E2Inverse sets z = x^{-1}: (a0 − a1 i)/(a0² + a1²). Inverting zero gives
// zero.
func (t *Tower) E2Inverse(z, x *E2) *E2 {
	f := t.F
	var n0, n1, norm, inv ff.Element
	f.Square(&n0, &x.A0)
	f.Square(&n1, &x.A1)
	f.Add(&norm, &n0, &n1)
	f.Inverse(&inv, &norm)
	f.Mul(&z.A0, &x.A0, &inv)
	f.Neg(&n1, &x.A1)
	f.Mul(&z.A1, &n1, &inv)
	return z
}

// E2MulByXi sets z = ξ·x.
func (t *Tower) E2MulByXi(z, x *E2) *E2 {
	var tmp E2
	t.E2Mul(&tmp, x, &t.Xi)
	return t.E2Set(z, &tmp)
}

// E2Exp sets z = x^e for a non-negative big.Int exponent.
func (t *Tower) E2Exp(z, x *E2, e *big.Int) *E2 {
	var acc E2
	t.E2One(&acc)
	for i := e.BitLen() - 1; i >= 0; i-- {
		t.E2Square(&acc, &acc)
		if e.Bit(i) == 1 {
			t.E2Mul(&acc, &acc, x)
		}
	}
	return t.E2Set(z, &acc)
}

// E2Random sets z to a pseudo-random element.
func (t *Tower) E2Random(z *E2, rng *ff.RNG) *E2 {
	t.F.Random(&z.A0, rng)
	t.F.Random(&z.A1, rng)
	return z
}

// E2String renders x as "a0 + a1*i".
func (t *Tower) E2String(x *E2) string {
	return t.F.String(&x.A0) + " + " + t.F.String(&x.A1) + "*i"
}
