package tower

import "zkperf/internal/ff"

// Fp6 arithmetic: elements are B0 + B1·v + B2·v² with v³ = ξ.

// E6Zero sets z = 0.
func (t *Tower) E6Zero(z *E6) *E6 {
	t.E2Zero(&z.B0)
	t.E2Zero(&z.B1)
	t.E2Zero(&z.B2)
	return z
}

// E6One sets z = 1.
func (t *Tower) E6One(z *E6) *E6 {
	t.E2One(&z.B0)
	t.E2Zero(&z.B1)
	t.E2Zero(&z.B2)
	return z
}

// E6IsZero reports whether z == 0.
func (t *Tower) E6IsZero(z *E6) bool {
	return t.E2IsZero(&z.B0) && t.E2IsZero(&z.B1) && t.E2IsZero(&z.B2)
}

// E6IsOne reports whether z == 1.
func (t *Tower) E6IsOne(z *E6) bool {
	return t.E2IsOne(&z.B0) && t.E2IsZero(&z.B1) && t.E2IsZero(&z.B2)
}

// E6Equal reports whether x == y.
func (t *Tower) E6Equal(x, y *E6) bool {
	return t.E2Equal(&x.B0, &y.B0) && t.E2Equal(&x.B1, &y.B1) && t.E2Equal(&x.B2, &y.B2)
}

// E6Set copies x into z.
func (t *Tower) E6Set(z, x *E6) *E6 {
	*z = *x
	return z
}

// E6Add sets z = x + y.
func (t *Tower) E6Add(z, x, y *E6) *E6 {
	t.E2Add(&z.B0, &x.B0, &y.B0)
	t.E2Add(&z.B1, &x.B1, &y.B1)
	t.E2Add(&z.B2, &x.B2, &y.B2)
	return z
}

// E6Sub sets z = x − y.
func (t *Tower) E6Sub(z, x, y *E6) *E6 {
	t.E2Sub(&z.B0, &x.B0, &y.B0)
	t.E2Sub(&z.B1, &x.B1, &y.B1)
	t.E2Sub(&z.B2, &x.B2, &y.B2)
	return z
}

// E6Neg sets z = −x.
func (t *Tower) E6Neg(z, x *E6) *E6 {
	t.E2Neg(&z.B0, &x.B0)
	t.E2Neg(&z.B1, &x.B1)
	t.E2Neg(&z.B2, &x.B2)
	return z
}

// E6Mul sets z = x·y via the Toom-Cook-style interpolation (Karatsuba for
// cubic extensions; Devegili et al. "Multiplication and Squaring on
// Pairing-Friendly Fields", Algorithm 13 shape).
func (t *Tower) E6Mul(z, x, y *E6) *E6 {
	var v0, v1, v2 E2
	t.E2Mul(&v0, &x.B0, &y.B0)
	t.E2Mul(&v1, &x.B1, &y.B1)
	t.E2Mul(&v2, &x.B2, &y.B2)

	var t0, t1, t2, c0, c1, c2 E2

	// c0 = v0 + ξ((b1+b2)(y1+y2) − v1 − v2)
	t.E2Add(&t0, &x.B1, &x.B2)
	t.E2Add(&t1, &y.B1, &y.B2)
	t.E2Mul(&t2, &t0, &t1)
	t.E2Sub(&t2, &t2, &v1)
	t.E2Sub(&t2, &t2, &v2)
	t.E2MulByXi(&t2, &t2)
	t.E2Add(&c0, &v0, &t2)

	// c1 = (b0+b1)(y0+y1) − v0 − v1 + ξ·v2
	t.E2Add(&t0, &x.B0, &x.B1)
	t.E2Add(&t1, &y.B0, &y.B1)
	t.E2Mul(&t2, &t0, &t1)
	t.E2Sub(&t2, &t2, &v0)
	t.E2Sub(&t2, &t2, &v1)
	var xiV2 E2
	t.E2MulByXi(&xiV2, &v2)
	t.E2Add(&c1, &t2, &xiV2)

	// c2 = (b0+b2)(y0+y2) − v0 − v2 + v1
	t.E2Add(&t0, &x.B0, &x.B2)
	t.E2Add(&t1, &y.B0, &y.B2)
	t.E2Mul(&t2, &t0, &t1)
	t.E2Sub(&t2, &t2, &v0)
	t.E2Sub(&t2, &t2, &v2)
	t.E2Add(&c2, &t2, &v1)

	z.B0, z.B1, z.B2 = c0, c1, c2
	return z
}

// E6Square sets z = x².
func (t *Tower) E6Square(z, x *E6) *E6 {
	// Reuse the multiplier; a dedicated squaring formula saves two Fp2
	// multiplications but is a frequent source of subtle sign bugs.
	var tmp E6
	t.E6Mul(&tmp, x, x)
	return t.E6Set(z, &tmp)
}

// E6MulByV sets z = v·x = (ξ·b2, b0, b1).
func (t *Tower) E6MulByV(z, x *E6) *E6 {
	var b2xi E2
	t.E2MulByXi(&b2xi, &x.B2)
	b0, b1 := x.B0, x.B1
	z.B0 = b2xi
	z.B1 = b0
	z.B2 = b1
	return z
}

// E6MulByE2 sets z = c·x for c ∈ Fp2.
func (t *Tower) E6MulByE2(z, x *E6, c *E2) *E6 {
	t.E2Mul(&z.B0, &x.B0, c)
	t.E2Mul(&z.B1, &x.B1, c)
	t.E2Mul(&z.B2, &x.B2, c)
	return z
}

// E6Inverse sets z = x^{-1} using the standard cubic-extension formula.
func (t *Tower) E6Inverse(z, x *E6) *E6 {
	// c0 = b0² − ξ·b1·b2
	// c1 = ξ·b2² − b0·b1
	// c2 = b1² − b0·b2
	// norm = b0·c0 + ξ·(b1·c2 + b2·c1) ∈ Fp2
	var c0, c1, c2, tmp E2
	t.E2Square(&c0, &x.B0)
	t.E2Mul(&tmp, &x.B1, &x.B2)
	t.E2MulByXi(&tmp, &tmp)
	t.E2Sub(&c0, &c0, &tmp)

	t.E2Square(&c1, &x.B2)
	t.E2MulByXi(&c1, &c1)
	t.E2Mul(&tmp, &x.B0, &x.B1)
	t.E2Sub(&c1, &c1, &tmp)

	t.E2Square(&c2, &x.B1)
	t.E2Mul(&tmp, &x.B0, &x.B2)
	t.E2Sub(&c2, &c2, &tmp)

	var norm, t1, t2 E2
	t.E2Mul(&norm, &x.B0, &c0)
	t.E2Mul(&t1, &x.B1, &c2)
	t.E2Mul(&t2, &x.B2, &c1)
	t.E2Add(&t1, &t1, &t2)
	t.E2MulByXi(&t1, &t1)
	t.E2Add(&norm, &norm, &t1)

	var inv E2
	t.E2Inverse(&inv, &norm)
	t.E2Mul(&z.B0, &c0, &inv)
	t.E2Mul(&z.B1, &c1, &inv)
	t.E2Mul(&z.B2, &c2, &inv)
	return z
}

// E6Frobenius sets z = x^p using the precomputed γ constants.
func (t *Tower) E6Frobenius(z, x *E6) *E6 {
	t.E2Conjugate(&z.B0, &x.B0)
	var c1, c2 E2
	t.E2Conjugate(&c1, &x.B1)
	t.E2Mul(&z.B1, &c1, &t.frobGamma1)
	t.E2Conjugate(&c2, &x.B2)
	t.E2Mul(&z.B2, &c2, &t.frobGamma2)
	return z
}

// E6Random sets z to a pseudo-random element.
func (t *Tower) E6Random(z *E6, rng *ff.RNG) *E6 {
	t.E2Random(&z.B0, rng)
	t.E2Random(&z.B1, rng)
	t.E2Random(&z.B2, rng)
	return z
}
