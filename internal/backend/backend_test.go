package backend

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// mixedSource has multi-term linear combinations on every side of its
// constraints, exercising the accumulator-chain path of the PLONK bridge
// that the paper's pure-multiplication benchmark never hits.
const mixedSource = `
circuit Mixed {
    private input a;
    private input b;
    public output c;
    var s = a + b;
    var t = s * s;
    var u = t + a + b;
    c <== u * s;
}
`

func compileFixture(t *testing.T, c *curve.Curve, src string, inputs map[string]uint64) (*r1cs.System, *witness.Witness) {
	t.Helper()
	sys, prog, err := circuit.CompileSource(c.Fr, src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	assign := witness.Assignment{}
	for name, v := range inputs {
		var e ff.Element
		c.Fr.SetUint64(&e, v)
		assign[name] = e
	}
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatalf("witness: %v", err)
	}
	return sys, w
}

// TestCrossBackendProveVerify runs the paper's exponentiation circuit at
// 2^6–2^10 constraints on both curves under both backends: one shared
// R1CS per (curve, size), one proof per backend, each verified by its own
// verifying key and rejected once a public input is perturbed.
func TestCrossBackendProveVerify(t *testing.T) {
	sizes := []int{1 << 6, 1 << 7, 1 << 8, 1 << 9, 1 << 10}
	for _, curveName := range []string{"bn128", "bls12-381"} {
		c := curve.NewCurve(curveName)
		for _, size := range sizes {
			if testing.Short() && size > 1<<7 {
				continue
			}
			sys, w := compileFixture(t, c, circuit.ExponentiateSource(size), map[string]uint64{"x": 3})
			for _, name := range Names() {
				t.Run(fmt.Sprintf("%s/%s/e=%d", curveName, name, size), func(t *testing.T) {
					bk, err := New(name, c, 1)
					if err != nil {
						t.Fatal(err)
					}
					rng := ff.NewRNG(42)
					pk, vk, err := bk.Setup(context.Background(), sys, rng)
					if err != nil {
						t.Fatalf("setup: %v", err)
					}
					proof, err := bk.Prove(context.Background(), sys, pk, w, rng)
					if err != nil {
						t.Fatalf("prove: %v", err)
					}
					if err := bk.Verify(context.Background(), vk, proof, w.Public); err != nil {
						t.Fatalf("verify: %v", err)
					}
					bad := make([]ff.Element, len(w.Public))
					copy(bad, w.Public)
					var one ff.Element
					c.Fr.One(&one)
					c.Fr.Add(&bad[len(bad)-1], &bad[len(bad)-1], &one)
					if err := bk.Verify(context.Background(), vk, proof, bad); !errors.Is(err, ErrInvalidProof) {
						t.Fatalf("tampered public input accepted: %v", err)
					}
				})
			}
		}
	}
}

// TestVerifyBatchBothBackends runs the package-level VerifyBatch helper
// over both backends: groth16 takes the native folded path (it implements
// BatchVerifier), plonk takes the per-proof fallback loop. A proof paired
// with the wrong statement's public inputs must be attributed to its
// index without contaminating its neighbours.
func TestVerifyBatchBothBackends(t *testing.T) {
	c := curve.NewBN254()
	sysA, wA := compileFixture(t, c, circuit.ExponentiateSource(1<<6), map[string]uint64{"x": 3})
	_, wB := compileFixture(t, c, circuit.ExponentiateSource(1<<6), map[string]uint64{"x": 5})
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			bk, err := New(name, c, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, isBatch := bk.(BatchVerifier); isBatch != (name == "groth16") {
				t.Errorf("BatchVerifier capability: got %v for %s", isBatch, name)
			}
			rng := ff.NewRNG(42)
			pk, vk, err := bk.Setup(context.Background(), sysA, rng)
			if err != nil {
				t.Fatal(err)
			}
			proofA, err := bk.Prove(context.Background(), sysA, pk, wA, rng)
			if err != nil {
				t.Fatal(err)
			}
			proofB, err := bk.Prove(context.Background(), sysA, pk, wB, rng)
			if err != nil {
				t.Fatal(err)
			}
			proofs := []Proof{proofA, proofB, proofA}
			publics := [][]ff.Element{wA.Public, wB.Public, wB.Public} // last is mismatched
			results, err := VerifyBatch(context.Background(), bk, vk, proofs, publics)
			if err != nil {
				t.Fatal(err)
			}
			if results[0] != nil || results[1] != nil {
				t.Errorf("valid proofs rejected: %v %v", results[0], results[1])
			}
			if !errors.Is(results[2], ErrInvalidProof) {
				t.Errorf("mismatched proof/public not attributed: %v", results[2])
			}
		})
	}
}

// TestBridgeMixedLinComb proves a circuit whose constraints carry
// multi-term LCs through both backends.
func TestBridgeMixedLinComb(t *testing.T) {
	for _, curveName := range []string{"bn128", "bls12-381"} {
		c := curve.NewCurve(curveName)
		sys, w := compileFixture(t, c, mixedSource, map[string]uint64{"a": 5, "b": 7})
		for _, name := range Names() {
			t.Run(curveName+"/"+name, func(t *testing.T) {
				bk, err := New(name, c, 1)
				if err != nil {
					t.Fatal(err)
				}
				rng := ff.NewRNG(7)
				pk, vk, err := bk.Setup(context.Background(), sys, rng)
				if err != nil {
					t.Fatalf("setup: %v", err)
				}
				proof, err := bk.Prove(context.Background(), sys, pk, w, rng)
				if err != nil {
					t.Fatalf("prove: %v", err)
				}
				if err := bk.Verify(context.Background(), vk, proof, w.Public); err != nil {
					t.Fatalf("verify: %v", err)
				}
			})
		}
	}
}

// TestCrossBackendRejection checks that artifacts do not leak across
// schemes: a proof produced by backend A must be rejected — not merely
// error — when handed to backend B, both as a live handle and as bytes.
func TestCrossBackendRejection(t *testing.T) {
	c := curve.NewCurve("bn128")
	sys, w := compileFixture(t, c, circuit.ExponentiateSource(1<<6), map[string]uint64{"x": 3})

	type fixture struct {
		bk    Backend
		vk    VerifyingKey
		proof Proof
	}
	fixtures := map[string]fixture{}
	for _, name := range Names() {
		bk, err := New(name, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := ff.NewRNG(11)
		pk, vk, err := bk.Setup(context.Background(), sys, rng)
		if err != nil {
			t.Fatalf("%s setup: %v", name, err)
		}
		proof, err := bk.Prove(context.Background(), sys, pk, w, rng)
		if err != nil {
			t.Fatalf("%s prove: %v", name, err)
		}
		fixtures[name] = fixture{bk: bk, vk: vk, proof: proof}
	}

	g, p := fixtures["groth16"], fixtures["plonk"]
	if err := p.bk.Verify(context.Background(), p.vk, g.proof, w.Public); !errors.Is(err, ErrInvalidProof) {
		t.Fatalf("plonk accepted groth16 proof: %v", err)
	}
	if err := g.bk.Verify(context.Background(), g.vk, p.proof, w.Public); !errors.Is(err, ErrInvalidProof) {
		t.Fatalf("groth16 accepted plonk proof: %v", err)
	}

	// Byte-level: a groth16 proof blob must not decode into a valid plonk
	// proof that verifies (and vice versa).
	var buf bytes.Buffer
	if err := g.proof.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if decoded, err := p.bk.ReadProof(bytes.NewReader(buf.Bytes())); err == nil {
		if err := p.bk.Verify(context.Background(), p.vk, decoded, w.Public); !errors.Is(err, ErrInvalidProof) {
			t.Fatalf("plonk verified re-decoded groth16 bytes: %v", err)
		}
	}
}

// TestHandleRoundTrip serializes every handle kind and proves/verifies
// with the restored copies — the path the CLI's file pipeline takes.
func TestHandleRoundTrip(t *testing.T) {
	c := curve.NewCurve("bn128")
	sys, w := compileFixture(t, c, circuit.ExponentiateSource(1<<6), map[string]uint64{"x": 5})
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			bk, err := New(name, c, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := ff.NewRNG(99)
			pk, vk, err := bk.Setup(context.Background(), sys, rng)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}

			var pkBuf, vkBuf bytes.Buffer
			if err := pk.Encode(&pkBuf); err != nil {
				t.Fatal(err)
			}
			if err := vk.Encode(&vkBuf); err != nil {
				t.Fatal(err)
			}
			pk2, err := bk.ReadProvingKey(bytes.NewReader(pkBuf.Bytes()), sys)
			if err != nil {
				t.Fatalf("read pk: %v", err)
			}
			vk2, err := bk.ReadVerifyingKey(bytes.NewReader(vkBuf.Bytes()))
			if err != nil {
				t.Fatalf("read vk: %v", err)
			}

			proof, err := bk.Prove(context.Background(), sys, pk2, w, rng)
			if err != nil {
				t.Fatalf("prove with restored pk: %v", err)
			}
			var prBuf bytes.Buffer
			if err := proof.Encode(&prBuf); err != nil {
				t.Fatal(err)
			}
			proof2, err := bk.ReadProof(bytes.NewReader(prBuf.Bytes()))
			if err != nil {
				t.Fatalf("read proof: %v", err)
			}
			if err := bk.Verify(context.Background(), vk2, proof2, w.Public); err != nil {
				t.Fatalf("verify restored artifacts: %v", err)
			}
		})
	}
}

func TestUnknownBackend(t *testing.T) {
	c := curve.NewCurve("bn128")
	if _, err := New("stark", c, 1); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("want ErrUnknownBackend, got %v", err)
	}
	names := Names()
	if len(names) != 2 || names[0] != "groth16" || names[1] != "plonk" {
		t.Fatalf("unexpected registry: %v", names)
	}
}
