package backend

import (
	"context"
	"errors"
	"fmt"
	"io"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// groth16Backend adapts internal/groth16 to the Backend interface. It is
// a thin wrapper: Groth16's native surface already matches (R1CS in,
// circuit-specific keys out).
type groth16Backend struct {
	eng *groth16.Engine
}

func newGroth16(c *curve.Curve, threads int) Backend {
	eng := groth16.NewEngine(c)
	eng.Threads = threads
	return &groth16Backend{eng: eng}
}

func (b *groth16Backend) Name() string        { return "groth16" }
func (b *groth16Backend) Curve() *curve.Curve { return b.eng.Curve }

type groth16PK struct {
	pk *groth16.ProvingKey
	c  *curve.Curve
}

func (k *groth16PK) Backend() string          { return "groth16" }
func (k *groth16PK) Encode(w io.Writer) error { return k.pk.Serialize(w, k.c) }

type groth16VK struct {
	vk *groth16.VerifyingKey
	c  *curve.Curve
}

func (k *groth16VK) Backend() string          { return "groth16" }
func (k *groth16VK) Encode(w io.Writer) error { return k.vk.Serialize(w, k.c) }

type groth16Proof struct {
	p *groth16.Proof
	c *curve.Curve
}

func (p *groth16Proof) Backend() string          { return "groth16" }
func (p *groth16Proof) Encode(w io.Writer) error { return p.p.Serialize(w, p.c) }

func (b *groth16Backend) Setup(ctx context.Context, sys *r1cs.System, rng *ff.RNG) (ProvingKey, VerifyingKey, error) {
	pk, vk, err := b.eng.SetupCtx(ctx, sys, rng)
	if err != nil {
		return nil, nil, err
	}
	c := b.eng.Curve
	return &groth16PK{pk: pk, c: c}, &groth16VK{vk: vk, c: c}, nil
}

func (b *groth16Backend) Prove(ctx context.Context, sys *r1cs.System, pk ProvingKey, w *witness.Witness, rng *ff.RNG) (Proof, error) {
	k, ok := pk.(*groth16PK)
	if !ok {
		return nil, fmt.Errorf("backend: groth16 given %s proving key", pk.Backend())
	}
	proof, err := b.eng.ProveCtx(ctx, sys, k.pk, w, rng)
	if err != nil {
		return nil, err
	}
	return &groth16Proof{p: proof, c: b.eng.Curve}, nil
}

func (b *groth16Backend) Verify(ctx context.Context, vk VerifyingKey, proof Proof, public []ff.Element) error {
	k, ok := vk.(*groth16VK)
	if !ok {
		return fmt.Errorf("%w: groth16 given %s verifying key", ErrInvalidProof, vk.Backend())
	}
	p, ok := proof.(*groth16Proof)
	if !ok {
		return fmt.Errorf("%w: groth16 given %s proof", ErrInvalidProof, proof.Backend())
	}
	if err := b.eng.VerifyCtx(ctx, k.vk, p.p, public); err != nil {
		if errors.Is(err, groth16.ErrInvalidProof) {
			return fmt.Errorf("%w: %v", ErrInvalidProof, err)
		}
		return err
	}
	return nil
}

// VerifyBatch implements the BatchVerifier capability natively: N proofs
// fold into one multi-pairing (N+3 Miller loops, one shared final
// exponentiation) via groth16's random-linear-combination check.
// Malformed handles (wrong backend) are attributed per index rather than
// failing the whole batch, matching the shape-error convention of the
// underlying engine.
func (b *groth16Backend) VerifyBatch(ctx context.Context, vk VerifyingKey, proofs []Proof, publics [][]ff.Element) ([]error, error) {
	if len(proofs) != len(publics) {
		return nil, fmt.Errorf("backend: %d proofs but %d public witnesses", len(proofs), len(publics))
	}
	k, ok := vk.(*groth16VK)
	if !ok {
		return nil, fmt.Errorf("%w: groth16 given %s verifying key", ErrInvalidProof, vk.Backend())
	}
	results := make([]error, len(proofs))
	native := make([]*groth16.Proof, len(proofs))
	for i, pr := range proofs {
		if p, ok := pr.(*groth16Proof); ok {
			native[i] = p.p
		} else {
			// Leave native[i] nil: the engine attributes it as invalid,
			// keeping this slot out of the fold.
			results[i] = fmt.Errorf("%w: groth16 given %s proof", ErrInvalidProof, pr.Backend())
		}
	}
	verdicts, err := b.eng.VerifyBatchCtx(ctx, k.vk, native, publics)
	if err != nil {
		return nil, err
	}
	for i, v := range verdicts {
		if results[i] != nil {
			continue // wrong-backend handle, already attributed
		}
		if v != nil {
			if errors.Is(v, groth16.ErrInvalidProof) {
				results[i] = fmt.Errorf("%w: %v", ErrInvalidProof, v)
			} else {
				results[i] = v
			}
		}
	}
	return results, nil
}

func (b *groth16Backend) ReadProvingKey(r io.Reader, sys *r1cs.System) (ProvingKey, error) {
	pk := new(groth16.ProvingKey)
	if err := pk.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	return &groth16PK{pk: pk, c: b.eng.Curve}, nil
}

func (b *groth16Backend) ReadVerifyingKey(r io.Reader) (VerifyingKey, error) {
	vk := new(groth16.VerifyingKey)
	if err := vk.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	return &groth16VK{vk: vk, c: b.eng.Curve}, nil
}

func (b *groth16Backend) ReadProof(r io.Reader) (Proof, error) {
	p := new(groth16.Proof)
	if err := p.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	return &groth16Proof{p: p, c: b.eng.Curve}, nil
}
