package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/plonk"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// plonkBackend adapts internal/plonk to the Backend interface. PLONK
// arithmetizes gates, not R1CS rows, so the adapter carries a
// deterministic lowering (the bridge) from the compiled system to a
// plonk.Circuit. Because PLONK's setup is universal, a serialized
// proving key stores only the SRS; ReadProvingKey rebuilds the bridge
// and the circuit-specific preprocessing from the constraint system.
type plonkBackend struct {
	eng *plonk.Engine
}

func newPlonk(c *curve.Curve, threads int) Backend {
	eng := plonk.NewEngine(c)
	eng.Threads = threads
	return &plonkBackend{eng: eng}
}

func (b *plonkBackend) Name() string        { return "plonk" }
func (b *plonkBackend) Curve() *curve.Curve { return b.eng.Curve }

// bridgeSrc tells the witness mapper how to value one plonk variable:
// copy an R1CS wire (wire ≥ 0) or evaluate a linear combination that an
// accumulator gate materialized (wire < 0).
type bridgeSrc struct {
	wire int
	lc   r1cs.LinComb
}

// bridge is the R1CS→PLONK lowering of one constraint system. Plonk
// variable i is valued by src[i]; the source order mirrors the circuit's
// variable-allocation order exactly.
type bridge struct {
	circ *plonk.Circuit
	src  []bridgeSrc
}

// buildBridge lowers sys to a PLONK circuit. Public wires become public
// inputs (declared first, as PLONK requires), the constant wire becomes a
// variable pinned to 1, and each constraint ⟨L,w⟩·⟨R,w⟩ = ⟨O,w⟩ becomes
// one multiplication gate qM·a·b + qO·c = 0 after each linear
// combination is reduced to a single (variable, coefficient) pair —
// directly when the LC has one term, via an accumulator chain otherwise.
// The lowering is deterministic, so rebuilding it for the same system
// reproduces the same circuit (and hence, with the same SRS, the same
// preprocessed key).
func buildBridge(sys *r1cs.System) *bridge {
	fr := sys.Fr
	br := &bridge{circ: plonk.NewCircuit(fr)}
	var one, negOne ff.Element
	fr.One(&one)
	fr.Neg(&negOne, &one)

	varOf := make(map[r1cs.Variable]plonk.Var, sys.NumVariables())
	for i := 0; i < sys.NumPublic; i++ {
		varOf[r1cs.Variable(i+1)] = br.circ.PublicInput()
		br.src = append(br.src, bridgeSrc{wire: i + 1})
	}
	oneVar := br.circ.NewVar()
	br.src = append(br.src, bridgeSrc{wire: 0})
	br.circ.AssertEqualConst(oneVar, big.NewInt(1))
	varOf[r1cs.ConstOne] = oneVar

	mapVar := func(v r1cs.Variable) plonk.Var {
		if pv, ok := varOf[v]; ok {
			return pv
		}
		pv := br.circ.NewVar()
		br.src = append(br.src, bridgeSrc{wire: int(v)})
		varOf[v] = pv
		return pv
	}

	// reduce collapses an LC to coeff·var. Multi-term LCs chain
	// accumulator gates; each intermediate is valued by its LC prefix.
	var zero ff.Element
	reduce := func(lc r1cs.LinComb) (plonk.Var, ff.Element) {
		switch len(lc) {
		case 0:
			return oneVar, zero
		case 1:
			return mapVar(lc[0].Var), lc[0].Coeff
		}
		acc := br.circ.NewVar()
		br.src = append(br.src, bridgeSrc{wire: -1, lc: lc[:2]})
		br.circ.AddGate(lc[0].Coeff, lc[1].Coeff, negOne, zero, zero,
			mapVar(lc[0].Var), mapVar(lc[1].Var), acc)
		for j := 2; j < len(lc); j++ {
			next := br.circ.NewVar()
			br.src = append(br.src, bridgeSrc{wire: -1, lc: lc[:j+1]})
			br.circ.AddGate(one, lc[j].Coeff, negOne, zero, zero,
				acc, mapVar(lc[j].Var), next)
			acc = next
		}
		return acc, one
	}

	var qm, qo ff.Element
	for ci := range sys.Constraints {
		con := &sys.Constraints[ci]
		vl, kl := reduce(con.L)
		vr, kr := reduce(con.R)
		vo, ko := reduce(con.O)
		fr.Mul(&qm, &kl, &kr)
		fr.Neg(&qo, &ko)
		br.circ.AddGate(zero, zero, qo, qm, zero, vl, vr, vo)
	}
	return br
}

// assignment values every plonk variable from the solved R1CS witness.
func (br *bridge) assignment(sys *r1cs.System, full []ff.Element) (plonk.Assignment, error) {
	w := br.circ.NewAssignment()
	for i, s := range br.src {
		if s.wire >= 0 {
			if s.wire >= len(full) {
				return nil, fmt.Errorf("backend: witness has %d wires, bridge expects wire %d", len(full), s.wire)
			}
			w[i] = full[s.wire]
			continue
		}
		w[i] = sys.EvalLC(s.lc, full)
	}
	return w, nil
}

// plonkPublic strips the leading constant-1 slot from the Groth16-style
// public vector to get PLONK's public-input list.
func plonkPublic(public []ff.Element) ([]ff.Element, error) {
	if len(public) == 0 {
		return nil, fmt.Errorf("backend: public vector missing the constant-1 slot")
	}
	return public[1:], nil
}

type plonkPK struct {
	pk *plonk.ProvingKey
	br *bridge
	c  *curve.Curve
}

func (k *plonkPK) Backend() string          { return "plonk" }
func (k *plonkPK) Encode(w io.Writer) error { return k.pk.Serialize(w, k.c) }

type plonkVK struct {
	vk *plonk.VerifyingKey
	c  *curve.Curve
}

func (k *plonkVK) Backend() string          { return "plonk" }
func (k *plonkVK) Encode(w io.Writer) error { return k.vk.Serialize(w, k.c) }

type plonkProof struct {
	p *plonk.Proof
	c *curve.Curve
}

func (p *plonkProof) Backend() string          { return "plonk" }
func (p *plonkProof) Encode(w io.Writer) error { return p.p.Serialize(w, p.c) }

func (b *plonkBackend) Setup(ctx context.Context, sys *r1cs.System, rng *ff.RNG) (ProvingKey, VerifyingKey, error) {
	br := buildBridge(sys)
	pk, vk, err := b.eng.SetupCtx(ctx, br.circ, rng)
	if err != nil {
		return nil, nil, err
	}
	c := b.eng.Curve
	return &plonkPK{pk: pk, br: br, c: c}, &plonkVK{vk: vk, c: c}, nil
}

func (b *plonkBackend) Prove(ctx context.Context, sys *r1cs.System, pk ProvingKey, w *witness.Witness, rng *ff.RNG) (Proof, error) {
	k, ok := pk.(*plonkPK)
	if !ok {
		return nil, fmt.Errorf("backend: plonk given %s proving key", pk.Backend())
	}
	asg, err := k.br.assignment(sys, w.Full)
	if err != nil {
		return nil, err
	}
	public, err := plonkPublic(w.Public)
	if err != nil {
		return nil, err
	}
	proof, err := b.eng.ProveCtx(ctx, k.pk, asg, public)
	if err != nil {
		return nil, err
	}
	return &plonkProof{p: proof, c: b.eng.Curve}, nil
}

func (b *plonkBackend) Verify(ctx context.Context, vk VerifyingKey, proof Proof, public []ff.Element) error {
	k, ok := vk.(*plonkVK)
	if !ok {
		return fmt.Errorf("%w: plonk given %s verifying key", ErrInvalidProof, vk.Backend())
	}
	p, ok := proof.(*plonkProof)
	if !ok {
		return fmt.Errorf("%w: plonk given %s proof", ErrInvalidProof, proof.Backend())
	}
	pub, err := plonkPublic(public)
	if err != nil {
		return err
	}
	if err := b.eng.VerifyCtx(ctx, k.vk, p.p, pub); err != nil {
		if errors.Is(err, plonk.ErrInvalidProof) {
			return fmt.Errorf("%w: %v", ErrInvalidProof, err)
		}
		return err
	}
	return nil
}

// ReadProvingKey restores a key written by plonkPK.Encode. The wire
// format carries only the universal SRS; the circuit-specific selectors,
// permutation and domain are rebuilt deterministically from sys, which
// is what makes the on-disk key reusable across every circuit that fits
// the SRS.
func (b *plonkBackend) ReadProvingKey(r io.Reader, sys *r1cs.System) (ProvingKey, error) {
	raw := new(plonk.ProvingKey)
	if err := raw.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	br := buildBridge(sys)
	pk, err := b.eng.Preprocess(br.circ, raw.SRS)
	if err != nil {
		return nil, err
	}
	if pk.Domain.N != raw.Domain.N {
		return nil, fmt.Errorf("backend: proving key domain %d does not match circuit domain %d", raw.Domain.N, pk.Domain.N)
	}
	return &plonkPK{pk: pk, br: br, c: b.eng.Curve}, nil
}

func (b *plonkBackend) ReadVerifyingKey(r io.Reader) (VerifyingKey, error) {
	vk := new(plonk.VerifyingKey)
	if err := vk.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	return &plonkVK{vk: vk, c: b.eng.Curve}, nil
}

func (b *plonkBackend) ReadProof(r io.Reader) (Proof, error) {
	p := new(plonk.Proof)
	if err := p.Deserialize(r, b.eng.Curve); err != nil {
		return nil, err
	}
	return &plonkProof{p: p, c: b.eng.Curve}, nil
}
