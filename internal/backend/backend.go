// Package backend defines the backend-neutral proving interface the
// serving layer programs against. The paper's stage taxonomy
// (compile/setup/witness/prove/verify) is protocol-generic even though
// its measurements are Groth16-specific, and the comparative literature
// shows backend choice moves the bottleneck between MSM- and
// NTT-dominated kernels. This package makes that a runtime choice: both
// internal/groth16 and internal/plonk are adapted to one Setup/Prove/
// Verify surface with serializable key and proof handles, so the
// registry, HTTP API and CLI can treat "which SNARK" as a request
// parameter rather than a compile-time decision.
package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// ErrUnknownBackend is returned by New for a name not in the registry.
var ErrUnknownBackend = errors.New("backend: unknown backend")

// ErrInvalidProof is returned by Verify when a structurally valid proof
// fails the scheme's checks (or was produced by a different backend).
var ErrInvalidProof = errors.New("backend: invalid proof")

// ProvingKey is an opaque, serializable proving-key handle. Handles are
// immutable after creation and safe for concurrent Prove calls.
type ProvingKey interface {
	// Backend names the scheme that produced the key.
	Backend() string
	// Encode serializes the key (the .zkey equivalent).
	Encode(w io.Writer) error
}

// VerifyingKey is an opaque, serializable verifying-key handle.
type VerifyingKey interface {
	Backend() string
	Encode(w io.Writer) error
}

// Proof is an opaque, serializable proof handle.
type Proof interface {
	Backend() string
	Encode(w io.Writer) error
}

// Setup runs the scheme's (possibly trusted) setup for a compiled
// constraint system. rng supplies the toxic randomness.
type Setup interface {
	Setup(ctx context.Context, sys *r1cs.System, rng *ff.RNG) (ProvingKey, VerifyingKey, error)
}

// Prover produces a proof for a solved witness. sys is the same system
// the key was set up for — backends that lower R1CS to another gate form
// (PLONK) rebuild their bridge from it deterministically. Implementations
// honour ctx at kernel chunk boundaries so abandoned jobs stop burning
// cores.
type Prover interface {
	Prove(ctx context.Context, sys *r1cs.System, pk ProvingKey, w *witness.Witness, rng *ff.RNG) (Proof, error)
}

// Verifier checks a proof against the public inputs. public follows the
// witness.Witness.Public convention: [1, public wires]. A failed check
// yields an error wrapping ErrInvalidProof; other errors mean malformed
// input. ctx carries cancellation and the telemetry probe into the
// pairing checks, symmetric with Prover.
type Verifier interface {
	Verify(ctx context.Context, vk VerifyingKey, proof Proof, public []ff.Element) error
}

// BatchVerifier is an optional capability: schemes whose verification
// equations fold under a random linear combination (Groth16's pairing
// product) implement it to check many proofs against one verifying key
// with a single shared final exponentiation. results is index-aligned
// with proofs — nil for valid, an error wrapping ErrInvalidProof
// otherwise; the second return is a batch-level infrastructure error.
// Callers should not type-assert this directly: VerifyBatch falls back
// to a per-proof loop for backends without the capability, keeping the
// API backend-neutral.
type BatchVerifier interface {
	VerifyBatch(ctx context.Context, vk VerifyingKey, proofs []Proof, publics [][]ff.Element) ([]error, error)
}

// VerifyBatch checks many proofs through v, using the native folded
// check when v implements BatchVerifier and a per-proof Verify loop
// otherwise. The loop stops early only on infrastructure errors —
// invalid proofs are recorded per index and do not abort the batch.
func VerifyBatch(ctx context.Context, v Verifier, vk VerifyingKey, proofs []Proof, publics [][]ff.Element) ([]error, error) {
	if len(proofs) != len(publics) {
		return nil, fmt.Errorf("backend: %d proofs but %d public witnesses", len(proofs), len(publics))
	}
	if bv, ok := v.(BatchVerifier); ok {
		return bv.VerifyBatch(ctx, vk, proofs, publics)
	}
	results := make([]error, len(proofs))
	for i := range proofs {
		err := v.Verify(ctx, vk, proofs[i], publics[i])
		if err != nil && !errors.Is(err, ErrInvalidProof) {
			return nil, err
		}
		results[i] = err
	}
	return results, nil
}

// Backend is one proving scheme bound to one curve: the three protocol
// roles plus decoding of the wire formats its handles write.
type Backend interface {
	Setup
	Prover
	Verifier

	// Name returns the registry name ("groth16", "plonk").
	Name() string
	// Curve returns the curve the backend is bound to.
	Curve() *curve.Curve

	// ReadProvingKey decodes a key written by ProvingKey.Encode. sys must
	// be the system the key was set up for; backends with universal setups
	// rebuild their circuit-specific preprocessing from it.
	ReadProvingKey(r io.Reader, sys *r1cs.System) (ProvingKey, error)
	ReadVerifyingKey(r io.Reader) (VerifyingKey, error)
	ReadProof(r io.Reader) (Proof, error)
}

// constructors is the backend registry. Adding a scheme means adding one
// entry here; everything above provesvc picks it up by name.
var constructors = map[string]func(c *curve.Curve, threads int) Backend{
	"groth16": newGroth16,
	"plonk":   newPlonk,
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(constructors))
	for name := range constructors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New returns the named backend bound to curve c. threads bounds the
// parallelism of its kernels (1 disables it).
func New(name string, c *curve.Curve, threads int) (Backend, error) {
	ctor, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have: %s)", ErrUnknownBackend, name, strings.Join(Names(), ", "))
	}
	return ctor(c, threads), nil
}
