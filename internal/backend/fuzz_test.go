package backend

import (
	"bytes"
	"context"
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// Fuzz targets for the wire decoders — the surfaces that consume
// attacker-controlled bytes (HTTP proof hex, artifact files, CLI file
// pipelines). The invariant under fuzzing is purely "return an error,
// never panic, never allocate absurdly": length prefixes are u64 fields
// an attacker fully controls, so any decoder that trusts one for a
// make() or an int conversion is a remote DoS.

// fuzzFixture compiles one small circuit per backend and produces real
// serialized artifacts for the seed corpus, so the fuzzer starts from
// well-formed encodings and mutates toward the interesting boundaries.
func fuzzFixture(f *testing.F, name string) (Backend, *r1cs.System, []byte, []byte, []byte) {
	f.Helper()
	c := curve.NewCurve("bn128")
	sys, prog, err := circuit.CompileSource(c.Fr, circuit.ExponentiateSource(1<<4))
	if err != nil {
		f.Fatalf("compile: %v", err)
	}
	bk, err := New(name, c, 1)
	if err != nil {
		f.Fatal(err)
	}
	rng := ff.NewRNG(1)
	pk, vk, err := bk.Setup(context.Background(), sys, rng)
	if err != nil {
		f.Fatalf("setup: %v", err)
	}
	var pkBuf, vkBuf bytes.Buffer
	if err := pk.Encode(&pkBuf); err != nil {
		f.Fatal(err)
	}
	if err := vk.Encode(&vkBuf); err != nil {
		f.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, 3)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		f.Fatalf("witness: %v", err)
	}
	proof, err := bk.Prove(context.Background(), sys, pk, w, rng)
	if err != nil {
		f.Fatalf("prove: %v", err)
	}
	var prBuf bytes.Buffer
	if err := proof.Encode(&prBuf); err != nil {
		f.Fatal(err)
	}
	return bk, sys, pkBuf.Bytes(), vkBuf.Bytes(), prBuf.Bytes()
}

// maxFuzzInput skips pathological giant inputs: the decoders bound their
// own allocations, so beyond this size a case only burns fuzzing time.
const maxFuzzInput = 1 << 20

func FuzzReadProof(f *testing.F) {
	type fixture struct {
		bk Backend
	}
	var fixtures []fixture
	for _, name := range Names() {
		bk, _, _, _, proof := fuzzFixture(f, name)
		fixtures = append(fixtures, fixture{bk: bk})
		f.Add(proof)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		for _, fx := range fixtures {
			// Must never panic; errors are the expected outcome.
			if p, err := fx.bk.ReadProof(bytes.NewReader(data)); err == nil && p == nil {
				t.Fatalf("%s: nil proof with nil error", fx.bk.Name())
			}
		}
	})
}

func FuzzReadProvingKey(f *testing.F) {
	type fixture struct {
		bk  Backend
		sys *r1cs.System
	}
	var fixtures []fixture
	for _, name := range Names() {
		bk, sys, pk, _, _ := fuzzFixture(f, name)
		fixtures = append(fixtures, fixture{bk: bk, sys: sys})
		f.Add(pk)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		for _, fx := range fixtures {
			if k, err := fx.bk.ReadProvingKey(bytes.NewReader(data), fx.sys); err == nil && k == nil {
				t.Fatalf("%s: nil key with nil error", fx.bk.Name())
			}
		}
	})
}

func FuzzReadVerifyingKey(f *testing.F) {
	type fixture struct {
		bk Backend
	}
	var fixtures []fixture
	for _, name := range Names() {
		bk, _, _, vk, _ := fuzzFixture(f, name)
		fixtures = append(fixtures, fixture{bk: bk})
		f.Add(vk)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		for _, fx := range fixtures {
			if k, err := fx.bk.ReadVerifyingKey(bytes.NewReader(data)); err == nil && k == nil {
				t.Fatalf("%s: nil key with nil error", fx.bk.Name())
			}
		}
	})
}
