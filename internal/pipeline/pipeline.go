// Package pipeline implements the top-down microarchitecture analysis of
// the paper (Fig. 4): attributing pipeline slots to the four top-level
// categories front-end bound, bad speculation, back-end bound and retiring
// (Yasin, ISPASS 2014).
//
// The paper reads these from VTune's hardware counters. The portable
// substitute is an interval-style analytical model: the traced run supplies
// the executed instruction mix, the data-dependent branch counts, the
// cache-simulator miss profile and the stage's code footprint; the CPU
// model supplies widths, penalties and latencies. Slot categories follow
// the canonical accounting: cycles lost to instruction supply are
// front-end, cycles refetching after mispredictions are bad speculation,
// cycles where the backend cannot accept uops (memory or core stalls) are
// back-end, and usefully-used slots are retiring.
package pipeline

import (
	"math"

	"zkperf/internal/cpumodel"
	"zkperf/internal/opcode"
)

// Inputs collects everything the model consumes for one stage execution.
type Inputs struct {
	Mix opcode.Mix

	// Data-dependent control flow (from the recorder; loop branches in the
	// control category are assumed well predicted).
	CondBranches     int64
	IndirectBranches int64

	// Cache behaviour (from the cache simulator).
	L1Misses  int64
	L2Misses  int64
	LLCMisses int64

	// MemExposure is the fraction of miss latency the out-of-order window
	// cannot hide, derived from the access-pattern composition (pointer
	// chases expose almost everything, prefetched streams almost nothing).
	MemExposure float64

	// ChainInstr counts instructions in serial multiply/carry dependency
	// chains (the big-integer kernels). Their latency cannot be hidden by
	// width or window size, so they stall the back end on every machine —
	// and waste proportionally more slots on wider ones.
	ChainInstr int64

	// CodeFootprint is the stage's hot code size in bytes. For the
	// JS/WASM stack the paper profiles, this includes JIT-generated code —
	// the main reason several stages are front-end bound.
	CodeFootprint int64
}

// Breakdown is the top-down result, in percent (sums to ~100).
type Breakdown struct {
	FrontEnd float64
	BadSpec  float64
	BackEnd  float64
	Retiring float64

	// BackEndMemory/BackEndCore split the back-end share (level-2 metrics).
	BackEndMemory float64
	BackEndCore   float64
}

// Dominant returns the name of the largest category.
func (b Breakdown) Dominant() string {
	best, name := b.FrontEnd, "front-end"
	if b.BadSpec > best {
		best, name = b.BadSpec, "bad-speculation"
	}
	if b.BackEnd > best {
		best, name = b.BackEnd, "back-end"
	}
	if b.Retiring > best {
		name = "retiring"
	}
	return name
}

// Model constants. These are calibration parameters of the analytical
// model, not measurements; DESIGN.md lists them as ablation candidates.
const (
	// icachePressureCoeff scales front-end stall cycles per instruction per
	// doubling of code footprint beyond the L1I capacity.
	icachePressureCoeff = 0.10
	// decodeGapCoeff charges front-end cycles when the fetch/decode width
	// cannot cover the issue width for dense instruction mixes.
	decodeGapCoeff = 0.5
	// coreChainCoeff is the back-end stall cycles charged per
	// dependency-chain instruction (big-integer multiply/carry sequences).
	coreChainCoeff = 0.5
)

// Analyze computes the top-down breakdown for one stage on one CPU.
func Analyze(in Inputs, cpu *cpumodel.CPU) Breakdown {
	instrs := float64(in.Mix.Total())
	if instrs == 0 {
		return Breakdown{Retiring: 100}
	}
	width := float64(cpu.IssueWidth)

	// Slot accounting: every cycle offers `width` issue slots. A retired
	// instruction uses one slot; a stall cycle wastes `width` of them —
	// which is why the same serial dependency chain or miss latency makes
	// a wider machine proportionally more stall-bound.
	retireSlots := instrs

	// Bad speculation: mispredicted data-dependent branches flush the
	// pipeline for MispredPenalty cycles each.
	mispredicts := float64(in.CondBranches)*(1-cpu.PredictorAcc) +
		float64(in.IndirectBranches)*cpu.IndirectMissRate
	badSpecCycles := mispredicts * float64(cpu.MispredPenalty)

	// Front-end: instruction-supply stalls. Two components: i-cache/ITLB
	// pressure growing with the log of footprint beyond L1I, and the
	// decode gap on machines whose fetch width trails their issue width.
	footRatio := float64(in.CodeFootprint) / float64(cpu.L1I.SizeBytes)
	icachePressure := 0.0
	if footRatio > 1 {
		// Narrow fetch units recover more slowly from instruction-supply
		// gaps: scale by the 4-wide baseline over this machine's width.
		icachePressure = icachePressureCoeff * math.Log2(footRatio) * 4 / float64(cpu.FetchWidth)
	}
	decodeGap := 0.0
	if cpu.FetchWidth < cpu.IssueWidth {
		decodeGap = decodeGapCoeff * (1/float64(cpu.FetchWidth) - 1/width)
	}
	feCycles := instrs * (icachePressure + decodeGap)

	// Back-end memory: exposed miss latency, serialized by the exposure
	// factor (the OoO window hides the rest).
	missCycles := float64(in.L1Misses)*float64(cpu.L2.LatencyCyc) +
		float64(in.L2Misses)*float64(cpu.LLC.LatencyCyc) +
		float64(in.LLCMisses)*float64(cpu.DRAMLatency)
	beMemCycles := missCycles * in.MemExposure

	// Back-end core: the serial multiply/carry chains keep execution ports
	// idle for the same number of cycles on every machine; wider machines
	// waste more slots per stalled cycle (applied below).
	beCoreCycles := float64(in.ChainInstr) * coreChainCoeff

	// Convert stall cycles to wasted slots and normalize.
	feSlots := feCycles * width
	bsSlots := badSpecCycles * width
	beSlots := (beMemCycles + beCoreCycles) * width
	total := retireSlots + bsSlots + feSlots + beSlots
	toPct := func(c float64) float64 { return 100 * c / total }
	return Breakdown{
		FrontEnd:      toPct(feSlots),
		BadSpec:       toPct(bsSlots),
		BackEnd:       toPct(beSlots),
		Retiring:      toPct(retireSlots),
		BackEndMemory: toPct(beMemCycles * width),
		BackEndCore:   toPct(beCoreCycles * width),
	}
}

// Cycles estimates the stage's execution cycles on the modeled CPU (the
// denominator of the bandwidth computation in the memory analysis).
func Cycles(in Inputs, cpu *cpumodel.CPU) float64 {
	instrs := float64(in.Mix.Total())
	if instrs == 0 {
		return 0
	}
	width := float64(cpu.IssueWidth)
	b := Analyze(in, cpu)
	// Retiring slots equal the instruction count; total slots follow from
	// the retiring share, and cycles = slots / width.
	totalSlots := instrs * 100 / b.Retiring
	return totalSlots / width
}
