package pipeline

import (
	"math"
	"testing"

	"zkperf/internal/cpumodel"
	"zkperf/internal/opcode"
)

func baseInputs() Inputs {
	return Inputs{
		Mix:           opcode.Mix{Compute: 400e6, Control: 200e6, Data: 400e6},
		CondBranches:  5e6,
		MemExposure:   0.4,
		CodeFootprint: 256 << 10,
	}
}

func TestBreakdownSumsTo100(t *testing.T) {
	for _, cpu := range cpumodel.All() {
		b := Analyze(baseInputs(), cpu)
		sum := b.FrontEnd + b.BadSpec + b.BackEnd + b.Retiring
		if math.Abs(sum-100) > 0.01 {
			t.Errorf("%s: breakdown sums to %v", cpu.Name, sum)
		}
		if math.Abs(b.BackEnd-(b.BackEndMemory+b.BackEndCore)) > 0.01 {
			t.Errorf("%s: back-end split inconsistent", cpu.Name)
		}
	}
}

func TestEmptyMixIsRetiring(t *testing.T) {
	b := Analyze(Inputs{}, cpumodel.NewI9_13900K())
	if b.Retiring != 100 {
		t.Errorf("empty workload retiring = %v", b.Retiring)
	}
}

func TestMispredictsRaiseBadSpec(t *testing.T) {
	cpu := cpumodel.NewI7_8650U()
	lo := baseInputs()
	hi := baseInputs()
	hi.IndirectBranches = 50e6 // interpreter-style dispatch storm
	bLo := Analyze(lo, cpu)
	bHi := Analyze(hi, cpu)
	if bHi.BadSpec <= bLo.BadSpec {
		t.Errorf("indirect branches did not raise bad speculation: %v vs %v", bHi.BadSpec, bLo.BadSpec)
	}
}

func TestMissesRaiseBackEnd(t *testing.T) {
	cpu := cpumodel.NewI9_13900K()
	lo := baseInputs()
	hi := baseInputs()
	hi.LLCMisses = 20e6
	bLo := Analyze(lo, cpu)
	bHi := Analyze(hi, cpu)
	if bHi.BackEnd <= bLo.BackEnd {
		t.Error("LLC misses did not raise back-end bound")
	}
	if bHi.BackEndMemory <= bLo.BackEndMemory {
		t.Error("LLC misses did not raise back-end memory share")
	}
}

func TestFootprintRaisesFrontEnd(t *testing.T) {
	cpu := cpumodel.NewI5_11400()
	small := baseInputs()
	small.CodeFootprint = 16 << 10 // fits L1I: no pressure
	big := baseInputs()
	big.CodeFootprint = 2 << 20
	bSmall := Analyze(small, cpu)
	bBig := Analyze(big, cpu)
	if bBig.FrontEnd <= bSmall.FrontEnd {
		t.Error("code footprint did not raise front-end bound")
	}
}

// TestChainMakesWideMachinesBackEndBound captures the paper's central
// Fig. 4 observation: the same bigint chain workload is front-end bound on
// the narrow i7 but back-end bound on the wide, high-latency i9.
func TestChainMakesWideMachinesBackEndBound(t *testing.T) {
	in := baseInputs()
	in.ChainInstr = 300e6
	in.CodeFootprint = 288 << 10
	i7 := Analyze(in, cpumodel.NewI7_8650U())
	i9 := Analyze(in, cpumodel.NewI9_13900K())
	if i9.BackEnd <= i7.BackEnd {
		t.Errorf("i9 back-end (%v) should exceed i7 back-end (%v)", i9.BackEnd, i7.BackEnd)
	}
	if i7.FrontEnd <= i9.FrontEnd {
		t.Errorf("i7 front-end (%v) should exceed i9 front-end (%v)", i7.FrontEnd, i9.FrontEnd)
	}
}

func TestHigherExposureMoreBackEnd(t *testing.T) {
	cpu := cpumodel.NewI5_11400()
	lo := baseInputs()
	lo.LLCMisses = 5e6
	lo.MemExposure = 0.1
	hi := lo
	hi.MemExposure = 0.9
	if Analyze(hi, cpu).BackEnd <= Analyze(lo, cpu).BackEnd {
		t.Error("exposure did not raise back-end bound")
	}
}

func TestCyclesConsistency(t *testing.T) {
	cpu := cpumodel.NewI7_8650U()
	in := baseInputs()
	cycles := Cycles(in, cpu)
	if cycles <= 0 {
		t.Fatalf("cycles = %v", cycles)
	}
	// Cycles must at least cover retiring the instructions at issue width.
	minCycles := float64(in.Mix.Total()) / float64(cpu.IssueWidth)
	if cycles < minCycles {
		t.Errorf("cycles %v below the retirement floor %v", cycles, minCycles)
	}
	if Cycles(Inputs{}, cpu) != 0 {
		t.Error("empty workload should take 0 cycles")
	}
}

func TestDominant(t *testing.T) {
	cases := []struct {
		b    Breakdown
		want string
	}{
		{Breakdown{FrontEnd: 50, BackEnd: 20, Retiring: 30}, "front-end"},
		{Breakdown{FrontEnd: 10, BackEnd: 60, Retiring: 30}, "back-end"},
		{Breakdown{FrontEnd: 10, BadSpec: 50, BackEnd: 10, Retiring: 30}, "bad-speculation"},
		{Breakdown{FrontEnd: 10, BackEnd: 10, Retiring: 80}, "retiring"},
	}
	for _, tc := range cases {
		if got := tc.b.Dominant(); got != tc.want {
			t.Errorf("Dominant(%+v) = %q, want %q", tc.b, got, tc.want)
		}
	}
}
