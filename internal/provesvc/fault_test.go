package provesvc

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/faultinject"
)

// The robustness suite: fault injection drives the failure paths the
// happy-path tests never reach — panics mid-prove, torn artifact files,
// breaker trips, expiring deadlines — and asserts the service degrades
// one job at a time instead of one process at a time.

// zkaFiles globs the artifact dir for files with the given suffix.
func zkaFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+suffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPanicMidProveFailsOnlyThatJob: an armed panic inside the prove
// stage must become that one job's ErrInternal, leave the worker alive
// for the next job, and show up in the panic counters.
func TestPanicMidProveFailsOnlyThatJob(t *testing.T) {
	s := New(WithWorkers(1), WithSeed(21))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(16)
	in := assignX(t, s, "bn128", 3)

	ctx := faultinject.WithFault(context.Background(), faultinject.PointBackendProve,
		faultinject.Fault{Kind: faultinject.KindPanic})
	if _, err := s.Prove(ctx, ProveRequest{Source: src, Inputs: in}); !errors.Is(err, ErrInternal) {
		t.Fatalf("panicked prove returned %v, want ErrInternal", err)
	}

	// The single worker must have survived the panic to serve this.
	res, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in})
	if err != nil {
		t.Fatalf("prove after panic: %v", err)
	}
	ok, err := s.Verify(context.Background(), VerifyRequest{Source: src, Proof: res.Proof, Public: res.Public})
	if err != nil || !ok {
		t.Fatalf("verify after panic: ok=%v err=%v", ok, err)
	}

	snap := s.Stats()
	if snap.Service.Panics != 1 {
		t.Errorf("service panics = %d, want 1", snap.Service.Panics)
	}
	if got := snap.Backends["groth16"].Panics; got != 1 {
		t.Errorf("groth16 panics = %d, want 1", got)
	}
	if snap.Service.Completed != 1 || snap.Service.Failed != 1 {
		t.Errorf("completed/failed = %d/%d, want 1/1", snap.Service.Completed, snap.Service.Failed)
	}
}

// TestArtifactRestartSkipsSetup: the ISSUE's headline artifact property —
// a second service over the same directory serves the circuit without
// re-running trusted setup.
func TestArtifactRestartSkipsSetup(t *testing.T) {
	dir := t.TempDir()
	src := circuit.ExponentiateSource(16)

	base := curve.ReadTableStats()

	s1 := New(WithWorkers(1), WithSeed(31), WithArtifactDir(dir))
	if err := s1.ArtifactDirError(); err != nil {
		t.Fatal(err)
	}
	s1.Start()
	if _, err := s1.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, s1, "bn128", 3)}); err != nil {
		t.Fatalf("first prove: %v", err)
	}
	if got := s1.Registry().Setups(); got != 1 {
		t.Fatalf("first service setups = %d, want 1", got)
	}
	st1 := s1.Registry().ArtifactStats()
	if st1.DiskWrites != 1 || st1.WriteErrors != 0 {
		t.Fatalf("first service artifact stats = %+v, want 1 write", st1)
	}
	// The cold boot built and persisted the generator tables (G1+G2) for
	// the circuit's curve. (Table counters are process-wide; compare
	// against the pre-test snapshot.)
	if got := st1.TableBuilds - base.Builds; got != 2 {
		t.Fatalf("cold-boot table builds = %d, want 2", got)
	}
	if got := st1.TableWrites - base.DiskWrites; got != 2 {
		t.Fatalf("cold-boot table writes = %d, want 2", got)
	}
	s1.Shutdown(context.Background())
	if got := zkaFiles(t, dir, ".zka"); len(got) != 1 {
		t.Fatalf("artifact files on disk = %v, want exactly 1", got)
	}

	// "Restart": a fresh service over the same directory.
	s2 := New(WithWorkers(1), WithSeed(99), WithArtifactDir(dir))
	s2.Start()
	defer s2.Shutdown(context.Background())
	res, err := s2.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, s2, "bn128", 3)})
	if err != nil {
		t.Fatalf("prove after restart: %v", err)
	}
	if ok, err := s2.Verify(context.Background(), VerifyRequest{Source: src, Proof: res.Proof, Public: res.Public}); err != nil || !ok {
		t.Fatalf("verify after restart: ok=%v err=%v", ok, err)
	}
	if got := s2.Registry().Setups(); got != 0 {
		t.Errorf("setups after restart = %d, want 0 (keys must come from disk)", got)
	}
	st2 := s2.Registry().ArtifactStats()
	if st2.DiskLoads != 1 || st2.Quarantined != 0 {
		t.Errorf("artifact stats after restart = %+v, want 1 disk load, 0 quarantined", st2)
	}
	// Warm boot: zero table rebuilds, both tables served from disk.
	if got := st2.TableBuilds - st1.TableBuilds; got != 0 {
		t.Errorf("warm-boot table builds = %d, want 0 (tables must come from disk)", got)
	}
	if got := st2.TableLoads - st1.TableLoads; got != 2 {
		t.Errorf("warm-boot table loads = %d, want 2", got)
	}
}

// TestArtifactCorruptionQuarantined: a bit-flipped artifact and a
// truncated artifact are both quarantined (renamed *.corrupt, counted)
// and the service falls back to a fresh setup — corruption is never a
// panic and never a served error.
func TestArtifactCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	src := circuit.ExponentiateSource(16)

	seed := New(WithWorkers(1), WithSeed(41), WithArtifactDir(dir))
	seed.Start()
	if _, err := seed.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, seed, "bn128", 3)}); err != nil {
		t.Fatalf("seeding prove: %v", err)
	}
	seed.Shutdown(context.Background())

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		files := zkaFiles(t, dir, ".zka")
		if len(files) != 1 {
			t.Fatalf("%s: artifact files = %v, want 1", name, files)
		}
		raw, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files[0], mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}

		s := New(WithWorkers(1), WithSeed(43), WithArtifactDir(dir))
		s.Start()
		defer s.Shutdown(context.Background())
		// The startup scan must already have quarantined the file.
		if st := s.Registry().ArtifactStats(); st.Quarantined != 1 {
			t.Errorf("%s: quarantined = %d, want 1 from the startup scan", name, st.Quarantined)
		}
		if left := zkaFiles(t, dir, ".zka"); len(left) != 0 {
			t.Errorf("%s: corrupt file still in cache namespace: %v", name, left)
		}
		res, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, s, "bn128", 3)})
		if err != nil {
			t.Fatalf("%s: prove after corruption: %v", name, err)
		}
		if ok, err := s.Verify(context.Background(), VerifyRequest{Source: src, Proof: res.Proof, Public: res.Public}); err != nil || !ok {
			t.Fatalf("%s: verify after corruption: ok=%v err=%v", name, ok, err)
		}
		// A real setup ran, and its result was re-persisted for next time.
		if got := s.Registry().Setups(); got != 1 {
			t.Errorf("%s: setups = %d, want 1 (fresh setup after quarantine)", name, got)
		}
		if st := s.Registry().ArtifactStats(); st.DiskWrites != 1 {
			t.Errorf("%s: disk writes = %d, want 1 (re-persist)", name, st.DiskWrites)
		}
	}

	corrupt("bit-flip", func(raw []byte) []byte {
		raw[len(raw)-1] ^= 0x01 // flip a payload bit: checksum mismatch
		return raw
	})
	// The previous corrupt() run re-wrote a good artifact; now tear it.
	corrupt("truncate", func(raw []byte) []byte {
		return raw[:len(raw)/2]
	})

	// The corpse is preserved for inspection. (Both corruptions hit the
	// same circuit key, so the second quarantine renames over the first —
	// one *.corrupt per key, holding the most recent corpse.)
	if corpses := zkaFiles(t, dir, ".corrupt"); len(corpses) != 1 {
		t.Errorf("quarantined corpses = %v, want 1", corpses)
	}
}

// TestArtifactWriteFaultsAreClean: a partial write (process dies with
// the temp file half-written) and a failure in the rename window both
// leave the cache namespace clean — no torn *.zka, the proving job
// unaffected — and a restart sweeps the debris and re-persists.
func TestArtifactWriteFaultsAreClean(t *testing.T) {
	src := circuit.ExponentiateSource(16)

	cases := []struct {
		name  string
		fault func() func()
	}{
		{"partial-write", func() func() {
			return faultinject.Arm(faultinject.PointArtifactWrite,
				faultinject.Fault{Kind: faultinject.KindPartialWrite, Bytes: 16})
		}},
		{"rename-window", func() func() {
			return faultinject.Arm(faultinject.PointArtifactRename,
				faultinject.Fault{Kind: faultinject.KindError})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			disarm := tc.fault()
			t.Cleanup(faultinject.Reset)

			s1 := New(WithWorkers(1), WithSeed(51), WithArtifactDir(dir))
			s1.Start()
			if _, err := s1.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, s1, "bn128", 3)}); err != nil {
				t.Fatalf("prove with %s fault: %v (persistence must never fail the job)", tc.name, err)
			}
			st := s1.Registry().ArtifactStats()
			if st.WriteErrors != 1 || st.DiskWrites != 0 {
				t.Errorf("artifact stats = %+v, want 1 write error, 0 writes", st)
			}
			s1.Shutdown(context.Background())
			if left := zkaFiles(t, dir, ".zka"); len(left) != 0 {
				t.Fatalf("torn write produced a *.zka: %v", left)
			}

			// Restart with the fault gone: debris swept, setup re-runs,
			// and this time the artifact persists.
			disarm()
			s2 := New(WithWorkers(1), WithSeed(52), WithArtifactDir(dir))
			s2.Start()
			defer s2.Shutdown(context.Background())
			if left := zkaFiles(t, dir, ".tmp"); len(left) != 0 {
				t.Errorf("startup scan left temp files: %v", left)
			}
			if _, err := s2.Prove(context.Background(), ProveRequest{Source: src, Inputs: assignX(t, s2, "bn128", 3)}); err != nil {
				t.Fatalf("prove after restart: %v", err)
			}
			if got := s2.Registry().Setups(); got != 1 {
				t.Errorf("setups after torn write = %d, want 1", got)
			}
			if got := zkaFiles(t, dir, ".zka"); len(got) != 1 {
				t.Errorf("artifacts after clean rewrite = %v, want 1", got)
			}
		})
	}
}

// TestBreakerStateMachine walks closed → open → half-open → open (probe
// failure) → half-open → closed (probe success) on one circuit.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	s := New(WithWorkers(1), WithSeed(61), WithBreaker(2, cooldown))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(16)
	in := assignX(t, s, "bn128", 3)
	poisoned := faultinject.WithFault(context.Background(), faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindError})

	// Two consecutive failures reach the threshold and trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Prove(poisoned, ProveRequest{Source: src, Inputs: in}); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("poisoned prove %d: %v, want injected error", i, err)
		}
	}
	if br := s.Stats().Breaker; br.Open != 1 || br.Trips != 1 {
		t.Fatalf("after threshold: breaker = %+v, want open=1 trips=1", br)
	}

	// Open: shed instantly, without consuming a worker.
	if _, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}

	// Half-open after the cooldown: the probe is admitted, fails, and the
	// breaker re-opens for another full cooldown.
	time.Sleep(2 * cooldown)
	if _, err := s.Prove(poisoned, ProveRequest{Source: src, Inputs: in}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("failing probe returned %v, want injected error", err)
	}
	if _, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("re-opened breaker returned %v, want ErrCircuitOpen", err)
	}
	if br := s.Stats().Breaker; br.Trips != 2 || br.Shed != 2 {
		t.Fatalf("after failed probe: breaker = %+v, want trips=2 shed=2", br)
	}

	// Half-open again: a healthy probe closes the breaker for good.
	time.Sleep(2 * cooldown)
	if _, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in}); err != nil {
		t.Fatalf("healthy probe: %v", err)
	}
	if _, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in}); err != nil {
		t.Fatalf("prove after recovery: %v", err)
	}
	if br := s.Stats().Breaker; br.Open != 0 {
		t.Fatalf("after recovery: breaker = %+v, want open=0", br)
	}
}

// TestBreakerPerCircuitIsolation: one poisoned circuit tripping its
// breaker must not shed a healthy circuit on the same service.
func TestBreakerPerCircuitIsolation(t *testing.T) {
	s := New(WithWorkers(1), WithSeed(71), WithBreaker(1, time.Minute))
	s.Start()
	defer s.Shutdown(context.Background())

	bad := circuit.ExponentiateSource(8)
	good := circuit.ExponentiateSource(16)
	in := assignX(t, s, "bn128", 3)

	poisoned := faultinject.WithFault(context.Background(), faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindError})
	if _, err := s.Prove(poisoned, ProveRequest{Source: bad, Inputs: in}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("poisoned prove: %v", err)
	}
	if _, err := s.Prove(context.Background(), ProveRequest{Source: bad, Inputs: in}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped circuit returned %v, want ErrCircuitOpen", err)
	}
	// The healthy circuit is untouched by its neighbour's breaker.
	if _, err := s.Prove(context.Background(), ProveRequest{Source: good, Inputs: in}); err != nil {
		t.Fatalf("healthy circuit shed alongside poisoned one: %v", err)
	}
	if br := s.Stats().Breaker; br.Open != 1 {
		t.Errorf("breaker = %+v, want exactly the poisoned circuit open", br)
	}
}

// TestBreakerProbeReleasedOnShed: a half-open probe that wins breaker
// admission but is then shed at the queue (ErrQueueFull) must hand its
// probe slot back. A leaked slot would leave the circuit answering
// circuit_open forever — precisely under the overload that trips
// breakers in the first place.
func TestBreakerProbeReleasedOnShed(t *testing.T) {
	const cooldown = 20 * time.Millisecond
	var gated atomic.Bool
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(91), WithBreaker(1, cooldown))
	s.hookJobStart = func() {
		if gated.Load() {
			<-gate
		}
	}
	s.Start()
	defer s.Shutdown(context.Background())

	bad := circuit.ExponentiateSource(8)
	other := circuit.ExponentiateSource(16)
	in := assignX(t, s, "bn128", 3)

	// Trip the breaker for `bad` (threshold 1), then let the cooldown
	// lapse so the next admission for it is the half-open probe.
	poisoned := faultinject.WithFault(context.Background(), faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindError})
	if _, err := s.Prove(poisoned, ProveRequest{Source: bad, Inputs: in}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("poisoned prove: %v", err)
	}
	time.Sleep(2 * cooldown)

	// Saturate the service with a healthy circuit: the lone worker parks
	// on the gate and the lone queue slot fills behind it.
	gated.Store(true)
	j1, err := s.enqueue(context.Background(), ProveRequest{Source: other, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up j1", func() bool {
		return s.met.inFlight.Load() == 1
	})
	j2, err := s.enqueue(context.Background(), ProveRequest{Source: other, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}

	// The probe wins breaker admission but loses the queue slot.
	if _, err := s.Prove(context.Background(), ProveRequest{Source: bad, Inputs: in}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("probe during saturation: %v, want ErrQueueFull", err)
	}

	gated.Store(false)
	close(gate)
	for i, j := range []*job{j1, j2} {
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("j%d did not finish after gate opened", i+1)
		}
	}

	// The queue rejection must have released the probe slot: this prove
	// is admitted as the next probe and closes the breaker.
	if _, err := s.Prove(context.Background(), ProveRequest{Source: bad, Inputs: in}); err != nil {
		t.Fatalf("probe after shed: %v (leaked half-open probe slot?)", err)
	}
	if br := s.Stats().Breaker; br.Open != 0 {
		t.Errorf("breaker = %+v, want open=0 after successful probe", br)
	}
}

// TestQueuedDeadlineExpiryNotABreakerFailure: a job whose deadline fires
// while it is still queued never attempted a prove, so it must not count
// toward its circuit's breaker — queue congestion plus tight client
// timeouts would otherwise trip breakers on perfectly healthy circuits.
func TestQueuedDeadlineExpiryNotABreakerFailure(t *testing.T) {
	var gated atomic.Bool
	gated.Store(true)
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(93), WithBreaker(1, time.Minute))
	s.hookJobStart = func() {
		if gated.Load() {
			<-gate
		}
	}
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(16)
	in := assignX(t, s, "bn128", 3)

	// j1 parks the worker; j2 waits in the queue with a deadline that
	// expires before the worker frees up.
	j1, err := s.enqueue(context.Background(), ProveRequest{Source: src, Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up j1", func() bool {
		return s.met.inFlight.Load() == 1
	})
	j2, err := s.enqueue(context.Background(), ProveRequest{Source: src, Inputs: in, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.ctx.Done()
	gated.Store(false)
	close(gate)

	for i, j := range []*job{j1, j2} {
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("j%d did not finish after gate opened", i+1)
		}
	}
	if j1.err != nil {
		t.Fatalf("j1: %v", j1.err)
	}
	if !errors.Is(j2.err, context.DeadlineExceeded) {
		t.Fatalf("j2: err = %v, want DeadlineExceeded", j2.err)
	}

	// Threshold is 1: had the queued expiry counted as a failure, this
	// circuit would now be shedding circuit_open.
	if _, err := s.Prove(context.Background(), ProveRequest{Source: src, Inputs: in}); err != nil {
		t.Fatalf("prove after queued expiry: %v (expiry counted as breaker failure?)", err)
	}
	snap := s.Stats()
	if br := snap.Breaker; br.Open != 0 || br.Trips != 0 {
		t.Errorf("breaker = %+v, want no open circuits and no trips", br)
	}
	// The expiry is still booked once, as a timeout inside the cancelled
	// bucket — not as a failure.
	if snap.Service.Timeouts != 1 || snap.Service.Cancelled != 1 || snap.Service.Failed != 0 {
		t.Errorf("stats = timeouts %d cancelled %d failed %d, want 1/1/0",
			snap.Service.Timeouts, snap.Service.Cancelled, snap.Service.Failed)
	}
}

// TestDeadlineExceeded: a per-request timeout_ms expiring mid-job
// surfaces context.DeadlineExceeded and lands in the timeout counters
// (inside the cancelled bucket, not the failed one).
func TestDeadlineExceeded(t *testing.T) {
	s := New(WithWorkers(1), WithSeed(81))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(16)
	// The delay fault honours ctx cancellation, so the job blocks until
	// its own deadline fires — a stand-in for a stuck prove kernel.
	slow := faultinject.WithFault(context.Background(), faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindDelay, Delay: 30 * time.Second})
	_, err := s.Prove(slow, ProveRequest{Source: src, Inputs: assignX(t, s, "bn128", 3), Timeout: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("prove returned %v, want DeadlineExceeded", err)
	}

	snap := s.Stats()
	if snap.Service.Timeouts != 1 || snap.Service.Cancelled != 1 || snap.Service.Failed != 0 {
		t.Errorf("timeouts/cancelled/failed = %d/%d/%d, want 1/1/0",
			snap.Service.Timeouts, snap.Service.Cancelled, snap.Service.Failed)
	}
	if got := snap.Backends["groth16"].Timeouts; got != 1 {
		t.Errorf("groth16 timeouts = %d, want 1", got)
	}
}

// TestMaxTimeoutClampsUnboundedRequests: with WithMaxTimeout set, a
// request asking for no deadline (or an oversized one) still runs under
// the service ceiling.
func TestMaxTimeoutClampsUnboundedRequests(t *testing.T) {
	s := New(WithWorkers(1), WithSeed(91), WithMaxTimeout(60*time.Millisecond))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(16)
	slow := faultinject.WithFault(context.Background(), faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindDelay, Delay: 30 * time.Second})

	for _, timeout := range []time.Duration{0, time.Hour} {
		start := time.Now()
		_, err := s.Prove(slow, ProveRequest{Source: src, Inputs: assignX(t, s, "bn128", 3), Timeout: timeout})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("timeout=%v: got %v, want DeadlineExceeded from the clamp", timeout, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("timeout=%v: clamp did not apply (took %v)", timeout, elapsed)
		}
	}
	if got := s.Stats().Service.Timeouts; got != 2 {
		t.Errorf("timeouts = %d, want 2", got)
	}
}

// TestDrainWithExpiringDeadline: satellite (d) — a job whose deadline
// expires while the service is draining is counted exactly once, as a
// cancellation (timeout), never as a failure; healthz flips 200 → 503
// the moment the drain starts.
func TestDrainWithExpiringDeadline(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(101))
	gate := make(chan struct{})
	s.hookJobStart = func() { <-gate }
	s.Start()
	h := NewHandler(s)

	healthz := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		return rec.Code
	}
	if got := healthz(); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", got)
	}

	src := circuit.ExponentiateSource(16)
	var wg sync.WaitGroup
	var jobErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, jobErr = s.Prove(context.Background(),
			ProveRequest{Source: src, Inputs: assignX(t, s, "bn128", 3), Timeout: 100 * time.Millisecond})
	}()
	waitFor(t, 5*time.Second, "job in flight", func() bool { return s.Stats().Queue.InFlight == 1 })

	reportCh := make(chan *DrainReport, 1)
	go func() {
		rep, _ := s.Shutdown(context.Background())
		reportCh <- rep
	}()
	waitFor(t, 5*time.Second, "drain to start", func() bool { return s.Stats().Service.Draining })
	if got := healthz(); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", got)
	}

	// Hold the worker at the gate until the job's deadline has expired,
	// then let the drain observe the timed-out job.
	time.Sleep(250 * time.Millisecond)
	close(gate)
	wg.Wait()
	rep := <-reportCh

	if !errors.Is(jobErr, context.DeadlineExceeded) {
		t.Fatalf("job during drain returned %v, want DeadlineExceeded", jobErr)
	}
	if rep.Drained != 1 || rep.Forced != 0 {
		t.Errorf("drain report = %+v, want the job drained, not forced", rep)
	}
	snap := s.Stats()
	if snap.Service.Cancelled != 1 || snap.Service.Timeouts != 1 || snap.Service.Failed != 0 {
		t.Errorf("cancelled/timeouts/failed = %d/%d/%d, want 1/1/0 (counted once, as a timeout)",
			snap.Service.Cancelled, snap.Service.Timeouts, snap.Service.Failed)
	}
}

// TestHTTPErrorCodesRoundTrip drives every new error code through the
// /v1 envelope and checks each lands — with the right status and
// retryability — in the /v1/stats errors map and the /v1/metrics text.
func TestHTTPErrorCodesRoundTrip(t *testing.T) {
	s := New(WithWorkers(1), WithSeed(111),
		WithBreaker(1, time.Minute), WithMaxBodyBytes(4096))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	srcA := circuit.ExponentiateSource(8)
	srcB := circuit.ExponentiateSource(16)

	// internal_error: a panic mid-prove becomes a 500 envelope.
	disarmPanic := faultinject.Arm(faultinject.PointBackendProve,
		faultinject.Fault{Kind: faultinject.KindPanic, Count: 1})
	t.Cleanup(faultinject.Reset)
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": srcA, "inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked prove status = %d, body %v", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "internal_error", false)
	disarmPanic()

	// circuit_open: threshold 1, so that panic tripped circuit A's breaker.
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": srcA, "inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped circuit status = %d, body %v", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "circuit_open", true)

	// deadline_exceeded: a stuck job on circuit B against timeout_ms.
	disarmDelay := faultinject.Arm(faultinject.PointWorkerRun,
		faultinject.Fault{Kind: faultinject.KindDelay, Delay: 30 * time.Second, Count: 1})
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": srcB, "inputs": map[string]string{"x": "3"}, "timeout_ms": 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out prove status = %d, body %v", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "deadline_exceeded", true)
	disarmDelay()

	// body_too_large: a valid JSON body that blows the byte cap.
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": strings.Repeat("x", 8192),
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, body %v", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "body_too_large", false)

	// Every served envelope shows up in the stats errors map.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, code := range []string{"internal_error", "circuit_open", "deadline_exceeded", "body_too_large"} {
		if snap.Errors[code] != 1 {
			t.Errorf("stats errors[%q] = %d, want 1 (map %v)", code, snap.Errors[code], snap.Errors)
		}
	}
	if snap.Service.Panics != 1 || snap.Service.Timeouts != 1 {
		t.Errorf("panics/timeouts = %d/%d, want 1/1", snap.Service.Panics, snap.Service.Timeouts)
	}
	if snap.Breaker.Trips < 1 || snap.Breaker.Shed < 1 {
		t.Errorf("breaker = %+v, want at least one trip and one shed", snap.Breaker)
	}

	// And in the Prometheus text: per-code error counters plus the
	// robustness gauges.
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(rawBody)
	for _, want := range []string{
		`zkp_http_errors_total{code="internal_error"}`,
		`zkp_http_errors_total{code="circuit_open"}`,
		`zkp_http_errors_total{code="deadline_exceeded"}`,
		`zkp_http_errors_total{code="body_too_large"}`,
		"zkp_panics_total 1",
		"zkp_timeouts_total 1",
		"zkp_breaker_trips_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
