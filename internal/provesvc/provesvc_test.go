package provesvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/circuit"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

// assignX builds the {x: v} assignment for the exponentiation circuit in
// the given curve's scalar field.
func assignX(t *testing.T, s *Service, curveName string, v uint64) witness.Assignment {
	t.Helper()
	c, err := s.reg.CurveFor(curveName)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, v)
	return witness.Assignment{"x": x}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRegistrySingleflight(t *testing.T) {
	reg := NewRegistry(1, 1, nil)
	src := circuit.ExponentiateSource(64)

	const n = 16
	arts := make([]*Artifact, n)
	errs := make([]error, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // release all requesters at once
			arts[i], errs[i] = reg.Get(context.Background(), "bn128", "groth16", src)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Get[%d]: %v", i, errs[i])
		}
		if arts[i] != arts[0] {
			t.Fatalf("Get[%d] returned a different artifact", i)
		}
	}
	if got := reg.Setups(); got != 1 {
		t.Errorf("setups = %d, want exactly 1 for %d concurrent requests", got, n)
	}
	if got := reg.Misses(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := reg.Hits(); got != n-1 {
		t.Errorf("hits = %d, want %d", got, n-1)
	}
}

// TestMixedBackendSingleflight hammers one source under both backends
// concurrently: the cache key includes the backend, so exactly one setup
// must run per backend and the artifacts must not be shared across them.
// Run under -race this also proves the registry's locking is clean when
// backends interleave.
func TestMixedBackendSingleflight(t *testing.T) {
	reg := NewRegistry(1, 1, nil)
	src := circuit.ExponentiateSource(64)

	const perBackend = 8
	names := backend.Names()
	arts := make([][]*Artifact, len(names))
	errs := make([][]error, len(names))
	var start, done sync.WaitGroup
	start.Add(1)
	for bi := range names {
		arts[bi] = make([]*Artifact, perBackend)
		errs[bi] = make([]error, perBackend)
		done.Add(perBackend)
		for i := 0; i < perBackend; i++ {
			go func(bi, i int) {
				defer done.Done()
				start.Wait()
				arts[bi][i], errs[bi][i] = reg.Get(context.Background(), "bn128", names[bi], src)
			}(bi, i)
		}
	}
	start.Done()
	done.Wait()

	for bi, name := range names {
		for i := 0; i < perBackend; i++ {
			if errs[bi][i] != nil {
				t.Fatalf("%s Get[%d]: %v", name, i, errs[bi][i])
			}
			if arts[bi][i] != arts[bi][0] {
				t.Fatalf("%s Get[%d] returned a different artifact", name, i)
			}
		}
		if got := arts[bi][0].Backend.Name(); got != name {
			t.Errorf("artifact backend = %q, want %q", got, name)
		}
	}
	if arts[0][0] == arts[1][0] {
		t.Error("backends shared one artifact; cache key must include the backend")
	}
	if got := reg.Setups(); got != uint64(len(names)) {
		t.Errorf("setups = %d, want %d (one per backend)", got, len(names))
	}
}

func TestRegistryCachesErrors(t *testing.T) {
	reg := NewRegistry(1, 1, nil)
	_, err := reg.Get(context.Background(), "bn128", "groth16", "circuit Broken {")
	if err == nil {
		t.Fatal("expected a compile error")
	}
	_, err2 := reg.Get(context.Background(), "bn128", "groth16", "circuit Broken {")
	if err2 == nil {
		t.Fatal("expected the cached compile error")
	}
	// One miss (the build) for two Gets proves the error was cached; no
	// setup ever ran because compilation failed before it.
	if got := reg.Misses(); got != 1 {
		t.Errorf("misses = %d, want 1 (errors should be cached)", got)
	}
	if got := reg.Setups(); got != 0 {
		t.Errorf("setups = %d, want 0 (compile failed before setup)", got)
	}
	if _, err := reg.Get(context.Background(), "no-such-curve", "groth16", "x"); !errors.Is(err, ErrUnknownCurve) {
		t.Fatalf("unknown curve err = %v, want ErrUnknownCurve", err)
	}
	if _, err := reg.Get(context.Background(), "bn128", "no-such-backend", "x"); !errors.Is(err, backend.ErrUnknownBackend) {
		t.Fatalf("unknown backend err = %v, want ErrUnknownBackend", err)
	}
}

func TestProveVerifyEndToEnd(t *testing.T) {
	for _, backendName := range backend.Names() {
		t.Run(backendName, func(t *testing.T) {
			s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(42))
			s.Start()
			defer s.Shutdown(context.Background())

			src := circuit.ExponentiateSource(64)
			req := ProveRequest{
				Curve: "bn128", Backend: backendName, Source: src,
				Inputs: assignX(t, s, "bn128", 3),
			}

			res, err := s.Prove(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Proof.Backend(); got != backendName {
				t.Fatalf("proof backend = %q, want %q", got, backendName)
			}
			valid, err := s.Verify(context.Background(), VerifyRequest{
				Curve: "bn128", Backend: backendName, Source: src,
				Proof: res.Proof, Public: res.Public,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !valid {
				t.Fatal("proof did not verify")
			}

			// A wrong public input must yield invalid (not an error).
			bad := make([]ff.Element, len(res.Public))
			copy(bad, res.Public)
			c, _ := s.reg.CurveFor("bn128")
			c.Fr.SetUint64(&bad[len(bad)-1], 12345)
			valid, err = s.Verify(context.Background(), VerifyRequest{
				Curve: "bn128", Backend: backendName, Source: src,
				Proof: res.Proof, Public: bad,
			})
			if err != nil {
				t.Fatal(err)
			}
			if valid {
				t.Fatal("tampered public input still verified")
			}

			// Repeated proves of the same circuit must hit the artifact cache.
			if _, err := s.Prove(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Cache.Hits == 0 {
				t.Errorf("cache hits = 0 after repeated proves, want > 0")
			}
			if st.Cache.Setups != 1 {
				t.Errorf("setups = %d, want 1", st.Cache.Setups)
			}
			if st.Service.Completed != 2 {
				t.Errorf("completed = %d, want 2", st.Service.Completed)
			}
			bst, ok := st.Backends[backendName]
			if !ok {
				t.Fatalf("stats missing backend %q block", backendName)
			}
			if bst.Completed != 2 {
				t.Errorf("backend completed = %d, want 2", bst.Completed)
			}
			if bst.Stages["prove"].Count != 2 {
				t.Errorf("backend prove histogram count = %d, want 2", bst.Stages["prove"].Count)
			}
			if bst.Stages["prove"].P99Ms <= 0 {
				t.Errorf("backend prove p99 = %v, want > 0", bst.Stages["prove"].P99Ms)
			}
		})
	}
}

// TestUnknownBackendRejected checks both the configured-subset and the
// never-registered cases fail fast without consuming a queue slot.
func TestUnknownBackendRejected(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(2), WithBackends("groth16"))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(8)
	for _, name := range []string{"plonk", "stark"} {
		_, err := s.Prove(context.Background(), ProveRequest{
			Curve: "bn128", Backend: name, Source: src,
			Inputs: assignX(t, s, "bn128", 2),
		})
		if !errors.Is(err, backend.ErrUnknownBackend) {
			t.Fatalf("backend %q err = %v, want ErrUnknownBackend", name, err)
		}
	}
	if got := s.Stats().Service.Rejected; got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	if got := s.Backends(); len(got) != 1 || got[0] != "groth16" {
		t.Errorf("Backends() = %v, want [groth16]", got)
	}
}

// TestOptionDefaults pins the options constructor's behaviour with no
// options at all: sane worker/queue defaults, the default backend, and
// telemetry enabled out of the box.
func TestOptionDefaults(t *testing.T) {
	s := New(WithSeed(21))
	s.Start()
	defer s.Shutdown(context.Background())

	if s.Telemetry() == nil || !s.Telemetry().Enabled() {
		t.Error("telemetry should be enabled by default")
	}
	src := circuit.ExponentiateSource(16)
	res, err := s.Prove(context.Background(), ProveRequest{
		Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Proof.Backend(); got != DefaultBackend {
		t.Errorf("default backend = %q, want %q", got, DefaultBackend)
	}
}

func TestProveBatch(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(7))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(32)
	reqs := []ProveRequest{
		{Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 2)},
		{Curve: "bn128", Backend: "plonk", Source: src, Inputs: assignX(t, s, "bn128", 5)},
		{Curve: "bn128", Source: src, Inputs: witness.Assignment{}}, // missing input
	}
	results, errs := s.ProveBatch(context.Background(), reqs)
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("batch[%d]: %v", i, errs[i])
		}
		valid, err := s.Verify(context.Background(), VerifyRequest{
			Curve: "bn128", Backend: reqs[i].Backend, Source: src,
			Proof: results[i].Proof, Public: results[i].Public,
		})
		if err != nil || !valid {
			t.Fatalf("batch[%d] proof invalid: %v", i, err)
		}
	}
	if errs[2] == nil {
		t.Fatal("batch[2] with missing input should fail")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(9))
	s.hookJobStart = func() { <-gate }
	s.Start()
	defer func() {
		s.Shutdown(context.Background())
	}()

	src := circuit.ExponentiateSource(8)
	req := ProveRequest{Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 2)}

	// j1 is picked up by the single worker, which parks on the gate.
	j1, err := s.enqueue(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up j1", func() bool {
		return s.met.inFlight.Load() == 1
	})

	// j2 occupies the single queue slot; j3 must be shed, not block.
	j2, err := s.enqueue(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prove(context.Background(), req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Service.Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Unblock: both admitted jobs must complete — no deadlock.
	close(gate)
	for i, j := range []*job{j1, j2} {
		select {
		case <-j.done:
			if j.err != nil {
				t.Errorf("j%d failed: %v", i+1, j.err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("j%d did not complete after gate opened", i+1)
		}
	}
}

// testCancellationAbortsProve checks worker-side cancellation latency for
// one backend: a cancelled job must release its worker far sooner than a
// full prove takes.
func testCancellationAbortsProve(t *testing.T, backendName string) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithProveThreads(1), WithSeed(3))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(2048)
	req := ProveRequest{
		Curve: "bn128", Backend: backendName, Source: src,
		Inputs: assignX(t, s, "bn128", 3),
	}

	// Baseline: a full prove on the warm cache (the first call also pays
	// compile+setup, so time only the second).
	if _, err := s.Prove(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := s.Prove(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)

	// Cancel early in the prove and time the *worker-side* abort: waiting
	// on the job's done channel measures when the kernels actually let go
	// of the cores, not just when the submitter gave up.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, err := s.enqueue(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(full / 20)
	cancel()
	t1 := time.Now()
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled job never completed")
	}
	aborted := time.Since(t1)
	if !errors.Is(j.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", j.err)
	}
	// The worker may finish its current kernel chunk, but it must bail
	// out far sooner than a full prove.
	if aborted > full/2+50*time.Millisecond {
		t.Errorf("worker released %v after cancel, full prove takes %v — cancellation not prompt", aborted, full)
	}

	// Deadline flavor: an expired per-job timeout aborts the same way.
	_, err = s.Prove(context.Background(), ProveRequest{
		Curve: "bn128", Backend: backendName, Source: src,
		Inputs:  assignX(t, s, "bn128", 3),
		Timeout: time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want context.DeadlineExceeded", err)
	}
	waitFor(t, 30*time.Second, "cancelled counter", func() bool {
		return s.Stats().Service.Cancelled >= 2
	})
}

func TestCancellationAbortsProve(t *testing.T) {
	testCancellationAbortsProve(t, "groth16")
}

// TestPlonkCancellationAbortsProve is the acceptance check that context
// cancellation reaches PLONK's NTT/MSM chunk boundaries the same way
// PR 1 wired it for Groth16.
func TestPlonkCancellationAbortsProve(t *testing.T) {
	testCancellationAbortsProve(t, "plonk")
}

func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(8), WithSeed(5))
	s.hookJobStart = func() { <-gate }
	s.Start()

	src := circuit.ExponentiateSource(8)
	req := ProveRequest{Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 2)}

	// One job in flight (parked on the gate), three more queued.
	j1, err := s.enqueue(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up j1", func() bool {
		return s.met.inFlight.Load() == 1
	})
	queued := make([]*job, 3)
	for i := range queued {
		if queued[i], err = s.enqueue(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	repc := make(chan *DrainReport, 1)
	go func() {
		rep, err := s.Shutdown(context.Background())
		if err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		repc <- rep
	}()

	// Queued jobs are dropped immediately, before the gate opens.
	for i, j := range queued {
		select {
		case <-j.done:
			if !errors.Is(j.err, ErrDropped) {
				t.Errorf("queued[%d] err = %v, want ErrDropped", i, j.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("queued[%d] was not dropped", i)
		}
	}

	// New submissions are rejected while draining.
	if _, err := s.Prove(context.Background(), req); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: err = %v, want ErrDraining", err)
	}

	// The in-flight job finishes once released, and the drain completes.
	close(gate)
	select {
	case <-j1.done:
		if j1.err != nil {
			t.Errorf("in-flight job failed: %v", j1.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight job did not finish")
	}
	rep := <-repc
	if rep.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", rep.Dropped)
	}
	if rep.Forced != 0 {
		t.Errorf("forced = %d, want 0", rep.Forced)
	}
	if rep.Drained != 1 {
		t.Errorf("drained = %d, want 1", rep.Drained)
	}
	if got := s.Stats().Service.Dropped; got != 3 {
		t.Errorf("stats dropped = %d, want 3", got)
	}
}

func TestForcedShutdownCancelsInFlight(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(6))
	s.Start()

	src := circuit.ExponentiateSource(2048)
	req := ProveRequest{Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 3)}
	// Warm the cache so the in-flight job below is all prove.
	if _, err := s.Prove(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	j, err := s.enqueue(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job to start", func() bool {
		return s.met.inFlight.Load() == 1
	})

	// A nearly-expired drain deadline forces cancellation of the
	// in-flight prove; Shutdown must still return (no hung workers).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	if rep.Forced != 1 {
		t.Errorf("forced = %d, want 1", rep.Forced)
	}
	select {
	case <-j.done:
		if !errors.Is(j.err, context.Canceled) {
			t.Errorf("forced job err = %v, want context.Canceled", j.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("forced job never completed")
	}
}
