package provesvc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"zkperf/internal/backend"
	"zkperf/internal/ff"
	"zkperf/internal/jobs"
	"zkperf/internal/telemetry"
)

// The async job API, backed by internal/jobs:
//
//	POST   /v1/jobs       {"kind":"prove"|"verify", …prove or verify body}
//	                      → 202 {"id","kind","state"}
//	POST   /v1/jobs       {"items":[<job body>, …]} → 202 {"results":
//	                      [{"index","id","kind","state"} | {"index","error"}]}
//	                      — the unified batch shape; admission is per item
//	GET    /v1/jobs/{id}  → {"id","kind","state","wait_ms","run_ms",
//	                         "result"?, "error"?}
//	DELETE /v1/jobs/{id}  → same shape; cancels a live job (idempotent)
//
// A submitted job's context is detached from the submitting connection —
// clients may disconnect and poll from anywhere. result appears when
// state is "done" (the same reply shape as the synchronous endpoint);
// error carries the standard envelope when state is "failed". Finished
// jobs are retained for the configured TTL (ttl_ms in /v1/stats), then
// GET returns 404 job_not_found.

// jobBody is the POST /v1/jobs request: kind plus the union of the
// prove and verify bodies (proveBody fields promote via embedding).
type jobBody struct {
	Kind string `json:"kind"`
	proveBody
	Proof  string   `json:"proof"`
	Public []string `json:"public"`
}

// jobReply is the wire form of one job's status.
type jobReply struct {
	ID     string       `json:"id"`
	Kind   string       `json:"kind"`
	State  string       `json:"state"`
	WaitMs float64      `json:"wait_ms"`
	RunMs  float64      `json:"run_ms"`
	Result any          `json:"result,omitempty"`
	Error  *errEnvelope `json:"error,omitempty"`
	// Deduped marks a submit answered with an existing job because its
	// Idempotency-Key was already taken (served 200, not 202).
	Deduped bool `json:"deduped,omitempty"`
}

func jobReplyOf(j *jobs.Job) *jobReply {
	wait, run := j.Timing()
	rep := &jobReply{
		ID:     j.ID(),
		Kind:   j.Kind(),
		State:  string(j.State()),
		WaitMs: float64(wait) / 1e6,
		RunMs:  float64(run) / 1e6,
	}
	// Result is only read once the state observed above is terminal, so a
	// done/failed transition between the two reads cannot leak a result
	// under a non-terminal state.
	switch jobs.State(rep.State) {
	case jobs.StateDone:
		rep.Result, _ = j.Result()
	case jobs.StateFailed:
		_, err := j.Result()
		_, rep.Error = envelope(err)
	}
	return rep
}

// jobBatchItem is one slot of the batch-submit response: the accepted
// job's reply fields, or the error envelope for a rejected item.
type jobBatchItem struct {
	Index int `json:"index"`
	*jobReply
	Error *errEnvelope `json:"error,omitempty"`
}

// buildJobRun converts one job body into (kind, RunFunc); shared by the
// single and batch submit paths. reqID travels with the detached job
// context so the probe and access logs line up across submit and
// execution.
func (s *Service) buildJobRun(body jobBody, reqID string) (string, jobs.RunFunc, error) {
	kind := body.Kind
	if kind == "" {
		kind = "prove"
	}
	switch kind {
	case "prove":
		req, err := s.toRequest(body.proveBody)
		if err != nil {
			return kind, nil, err
		}
		return kind, func(ctx context.Context, started func()) (any, error) {
			ctx = telemetry.WithRequestID(ctx, reqID)
			req.OnStart = started
			res, err := s.Prove(ctx, req)
			if err != nil {
				return nil, err
			}
			return s.toReply(res)
		}, nil
	case "verify":
		vreq, err := s.toVerifyRequest(verifyBody{
			Curve:   body.Curve,
			Backend: body.Backend,
			Circuit: body.Circuit,
			Proof:   body.Proof,
			Public:  body.Public,
		})
		if err != nil {
			return kind, nil, err
		}
		return kind, func(ctx context.Context, started func()) (any, error) {
			// Verify runs inline on the dispatcher — there is no worker
			// queue in front of it, so it is running from the first moment.
			started()
			ctx = telemetry.WithRequestID(ctx, reqID)
			valid, err := s.Verify(ctx, vreq)
			if err != nil {
				return nil, err
			}
			return map[string]bool{"valid": valid}, nil
		}, nil
	default:
		return kind, nil, fmt.Errorf("provesvc: unknown job kind %q (want prove or verify)", kind)
	}
}

func (s *Service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	reqID := telemetry.RequestIDFromContext(r.Context())

	idemKey := r.Header.Get("Idempotency-Key")
	if len(idemKey) > maxIdempotencyKey {
		s.writeError(w, fmt.Errorf("provesvc: Idempotency-Key exceeds %d bytes", maxIdempotencyKey))
		return
	}

	// The unified batch shape: {"items":[…]} submits several jobs with
	// per-item admission. Any object without items is a single submit.
	var batch struct {
		Items []jobBody `json:"items"`
	}
	if err := json.Unmarshal(data, &batch); err == nil && len(batch.Items) > 0 {
		out := make([]jobBatchItem, len(batch.Items))
		for i, body := range batch.Items {
			out[i].Index = i
			kind, run, err := s.buildJobRun(body, reqID)
			var j *jobs.Job
			if err == nil {
				// Per-item payloads are re-marshaled so each job replays
				// independently; the Idempotency-Key header stays single-submit
				// only (one key cannot name N jobs).
				payload, _ := json.Marshal(body)
				j, _, err = s.jobMgr.SubmitWith(jobs.SubmitOptions{
					Kind: kind, Payload: payload,
				}, run)
			}
			if err != nil {
				_, out[i].Error = envelope(err)
				s.recordErrorCode(out[i].Error.Code)
				continue
			}
			out[i].jobReply = jobReplyOf(j)
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"results": out})
		return
	}

	var body jobBody
	if err := json.Unmarshal(data, &body); err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	kind, run, err := s.buildJobRun(body, reqID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	j, deduped, err := s.jobMgr.SubmitWith(jobs.SubmitOptions{
		Kind: kind, IdempotencyKey: idemKey, Payload: data,
	}, run)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rep := jobReplyOf(j)
	rep.Deduped = deduped
	// A dedup hit is not a new acceptance: 200 with the original job.
	status := http.StatusAccepted
	if deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, rep)
}

// maxIdempotencyKey bounds the Idempotency-Key header; longer keys are
// rejected rather than truncated (a truncated key could false-dedup).
const maxIdempotencyKey = 128

// resumeJournaledJobs re-arms jobs that were queued or running when the
// previous process died: each journaled request is parsed back into a
// RunFunc and re-enqueued. A payload that no longer parses fails its job
// with the parse error instead of wedging it in queued forever.
func (s *Service) resumeJournaledJobs() {
	for _, pr := range s.jobMgr.PendingReplays() {
		pr := pr
		var run jobs.RunFunc
		var body jobBody
		if err := json.Unmarshal(pr.Payload, &body); err != nil {
			perr := fmt.Errorf("provesvc: job %s: journaled request unparseable after restart: %w", pr.ID, err)
			run = func(ctx context.Context, started func()) (any, error) {
				started()
				return nil, perr
			}
		} else if _, r, err := s.buildJobRun(body, "replay-"+pr.ID); err != nil {
			rerr := err
			run = func(ctx context.Context, started func()) (any, error) {
				started()
				return nil, rerr
			}
		} else {
			run = r
		}
		s.jobMgr.Resume(pr.ID, run)
	}
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobMgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	rep := jobReplyOf(j)
	if st := jobs.State(rep.State); st != jobs.StateDone && st != jobs.StateFailed {
		// Pace pollers: the job is still live, come back in about a second.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobMgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobReplyOf(j))
}

// toVerifyRequest parses the wire verify body into a VerifyRequest,
// decoding the proof in the named backend's serialization. Shared by
// the synchronous handler and the async submit path.
func (s *Service) toVerifyRequest(body verifyBody) (VerifyRequest, error) {
	req := VerifyRequest{Curve: body.Curve, Backend: body.Backend, Source: body.Circuit}
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	bk, err := s.reg.BackendFor(req.Curve, req.Backend)
	if err != nil {
		return req, err
	}
	raw, err := hex.DecodeString(body.Proof)
	if err != nil {
		return req, fmt.Errorf("provesvc: bad proof hex: %w", err)
	}
	proof, err := bk.ReadProof(bytes.NewReader(raw))
	if err != nil {
		return req, fmt.Errorf("%w: undecodable %s proof: %v", backend.ErrInvalidProof, req.Backend, err)
	}
	req.Proof = proof
	fr := bk.Curve().Fr
	req.Public = make([]ff.Element, len(body.Public)+1)
	fr.One(&req.Public[0])
	for i, v := range body.Public {
		if _, err := fr.SetString(&req.Public[i+1], v); err != nil {
			return req, fmt.Errorf("provesvc: public[%d]: %w", i, err)
		}
	}
	return req, nil
}
