package provesvc

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"time"

	"zkperf/internal/circuit"
)

// synthetic circuit keys for classification tests that never prove.
func testKey(i int) CircuitKey {
	return CircuitKey{
		SourceHash: sha256.Sum256([]byte(fmt.Sprintf("workload-test-%d", i))),
		Curve:      "bn128",
		Backend:    "groth16",
	}
}

// TestSchedReservationFloor drives the classifier directly with an
// injected clock: however many circuits turn hot, dedicated-worker
// reservation never strands the cold pool at zero workers, and every
// hot queue has at least one worker assigned (a hot queue nobody reads
// would strand its jobs forever).
func TestSchedReservationFloor(t *testing.T) {
	s := New(WithWorkers(3), WithQueueDepth(8), WithWorkloadSched(WorkloadConfig{
		Enabled:    true,
		HotMinRate: 0.5,
		Reclassify: time.Hour, // classification driven manually below
	}))
	sc := s.sched

	base := time.Now()
	cur := base
	sc.now = func() time.Time { return cur }

	// Five circuits all arriving hard — far more hot candidates than the
	// pool can reserve for.
	for round := 0; round < 200; round++ {
		for i := 0; i < 5; i++ {
			sc.observeArrival(testKey(i))
		}
	}
	sc.reclassify()

	plan := sc.plan.Load()
	if cold := sc.workers - plan.reserved; cold < sc.cfg.MinColdWorkers {
		t.Fatalf("cold pool = %d workers, floor is %d", cold, sc.cfg.MinColdWorkers)
	}
	if plan.reserved == 0 || len(plan.hotQueues) == 0 {
		t.Fatalf("expected hot circuits under heavy arrivals, plan reserved=%d hot=%d",
			plan.reserved, len(plan.hotQueues))
	}
	served := make(map[*hotQueue]bool)
	for _, hq := range plan.hotByWorker {
		if hq != nil {
			served[hq] = true
		}
	}
	for _, hq := range plan.hotQueues {
		if !served[hq] {
			t.Fatalf("hot circuit %x has a queue but no dedicated worker", hq.key.SourceHash[:4])
		}
	}
	if st := sc.stats(); st.ColdWorkers < sc.cfg.MinColdWorkers || st.HotCount != len(plan.hotQueues) {
		t.Fatalf("stats disagree with plan: %+v", st)
	}
}

// TestSchedDemotionReleasesWorkers lets a hot set decay to silence and
// checks reclassification hands every reserved worker back to the cold
// pool.
func TestSchedDemotionReleasesWorkers(t *testing.T) {
	s := New(WithWorkers(4), WithQueueDepth(8), WithWorkloadSched(WorkloadConfig{
		Enabled:    true,
		HotMinRate: 0.5,
		HalfLife:   10 * time.Second,
		Reclassify: time.Hour,
	}))
	sc := s.sched

	base := time.Now()
	cur := base
	sc.now = func() time.Time { return cur }

	for round := 0; round < 200; round++ {
		sc.observeArrival(testKey(0))
		sc.observeArrival(testKey(1))
	}
	sc.reclassify()
	if plan := sc.plan.Load(); plan.reserved == 0 {
		t.Fatal("arrival burst did not reserve any workers")
	}
	hotBefore := len(sc.plan.Load().hotQueues)

	// Many half-lives of silence: the decayed rates drop below the
	// threshold and everything demotes.
	cur = base.Add(10 * time.Minute)
	sc.reclassify()
	plan := sc.plan.Load()
	if plan.reserved != 0 || len(plan.hotQueues) != 0 {
		t.Fatalf("after decay: reserved=%d hot=%d, want 0/0", plan.reserved, len(plan.hotQueues))
	}
	if got := sc.demotions.Load(); got < uint64(hotBefore) {
		t.Fatalf("demotions = %d, want >= %d", got, hotBefore)
	}
	sc.moverWG.Wait() // movers of the emptied queues must terminate
}

// TestSchedThreadGrantAccounting pins the budget split: grant =
// clamp(B / min(in-flight + queued, workers), 1, B).
func TestSchedThreadGrantAccounting(t *testing.T) {
	s := New(WithWorkers(4), WithQueueDepth(16), WithWorkloadSched(WorkloadConfig{
		Enabled:      true,
		ThreadBudget: 8,
		Reclassify:   time.Hour,
	}))
	sc := s.sched

	cases := []struct {
		inFlight int64
		want     int
	}{
		{0, 8}, // idle: one job gets the whole budget
		{1, 8},
		{2, 4},
		{3, 2}, // integer split rounds down
		{4, 2},
		{9, 2}, // demand clamps at the worker count
	}
	for _, c := range cases {
		s.met.inFlight.Store(c.inFlight)
		if got := sc.grantThreads(); got != c.want {
			t.Errorf("grant(inFlight=%d) = %d, want %d", c.inFlight, got, c.want)
		}
	}
	s.met.inFlight.Store(0)

	// Queued jobs count toward demand too: 1 in flight + 3 queued on the
	// cold queue → demand 4 → grant 2.
	s.met.inFlight.Store(1)
	for i := 0; i < 3; i++ {
		s.jobs <- &job{done: make(chan struct{})}
	}
	if got := sc.grantThreads(); got != 2 {
		t.Errorf("grant(1 in flight + 3 queued) = %d, want 2", got)
	}
	for i := 0; i < 3; i++ {
		<-s.jobs
	}
	s.met.inFlight.Store(0)

	// Disabled scheduler grants nothing — engines keep their static
	// thread count.
	s2 := New(WithWorkers(2))
	if got := s2.sched.grantThreads(); got != 0 {
		t.Errorf("disabled scheduler grant = %d, want 0", got)
	}
}

// TestSchedHotQueueRouting checks offer() routes hot circuits to their
// private queue, sheds when that queue is full (instead of spilling into
// the cold queue and defeating isolation), and routes cold again after
// demotion.
func TestSchedHotQueueRouting(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithWorkloadSched(WorkloadConfig{
		Enabled:       true,
		HotMinRate:    0.5,
		Reclassify:    time.Hour,
		HotQueueDepth: 1,
	}))
	sc := s.sched
	base := time.Now()
	cur := base
	sc.now = func() time.Time { return cur }

	key := testKey(0)
	for i := 0; i < 200; i++ {
		sc.observeArrival(key)
	}
	sc.reclassify()
	hq := sc.hot[key]
	if hq == nil {
		t.Fatal("circuit did not classify hot")
	}

	mk := func() *job {
		return &job{
			ctx: context.Background(), cancel: func() {}, stop: func() bool { return false },
			key: key, done: make(chan struct{}),
		}
	}
	if !sc.offer(mk()) {
		t.Fatal("first hot offer should land in the hot queue")
	}
	if len(hq.ch) != 1 || len(s.jobs) != 0 {
		t.Fatalf("hot job landed wrong: hot=%d cold=%d", len(hq.ch), len(s.jobs))
	}
	if sc.offer(mk()) {
		t.Fatal("hot queue full: offer must shed, not spill to cold")
	}

	// Demotion flips routing back to the cold queue atomically.
	cur = base.Add(10 * time.Minute)
	sc.reclassify()
	if !sc.offer(mk()) {
		t.Fatal("cold offer after demotion should land in the shared queue")
	}
	if len(s.jobs) == 0 {
		t.Fatal("post-demotion job should be on the cold queue")
	}
	sc.moverWG.Wait()
	// The mover migrated the stranded hot job to the cold queue.
	if len(s.jobs) != 2 {
		t.Fatalf("cold queue = %d jobs, want 2 (offer + migrated)", len(s.jobs))
	}
}

// TestSchedMixedHotColdLoad runs a real mixed workload end to end under
// the race detector: a hot circuit hammered from many goroutines while
// cold one-off circuits trickle, across several reclassification cycles,
// then a clean shutdown. Every request must complete, the classifier
// must promote the hot circuit, and thread grants must be booked.
func TestSchedMixedHotColdLoad(t *testing.T) {
	s := New(WithWorkers(4), WithQueueDepth(64), WithSeed(7),
		WithWorkloadSched(WorkloadConfig{
			Enabled:    true,
			HotMinRate: 0.2,
			HalfLife:   2 * time.Second,
			Reclassify: 20 * time.Millisecond,
		}))
	s.Start()
	defer s.Shutdown(context.Background())

	hotSrc := circuit.ExponentiateSource(16)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, err := s.Prove(context.Background(), ProveRequest{
					Source: hotSrc, Inputs: assignX(t, s, "bn128", 2),
				})
				if err != nil {
					errs <- fmt.Errorf("hot prove: %w", err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := s.Prove(context.Background(), ProveRequest{
					Source: circuit.ExponentiateSource(17 + g*4 + i), Inputs: assignX(t, s, "bn128", 3),
				})
				if err != nil {
					errs <- fmt.Errorf("cold prove: %w", err)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats().Sched
	if !st.Enabled {
		t.Fatal("sched block should report enabled")
	}
	if st.Promotions == 0 {
		t.Errorf("hot circuit was never promoted: %+v", st)
	}
	if st.ThreadGrant.Count == 0 {
		t.Error("no thread grants booked under load")
	}
	if st.DrainRatePerSec <= 0 {
		t.Error("drain rate should be positive right after load")
	}
	if hint, ok := s.sched.retryAfterHint(); !ok || hint < time.Second || hint > 30*time.Second {
		t.Errorf("retryAfterHint = %v/%v, want a clamped positive hint", hint, ok)
	}
	if s.Stats().Service.Completed != 40 {
		t.Errorf("completed = %d, want 40", s.Stats().Service.Completed)
	}
}
