package provesvc

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/ff"
	"zkperf/internal/telemetry"
)

// VerifyBatch checks many proofs in one call. Requests are grouped by
// circuit key (source × curve × backend) and each group goes through the
// backend's folded check — for groth16 a single random-linear-combination
// multi-pairing with one shared final exponentiation, for backends
// without the BatchVerifier capability a per-proof loop — so the caller
// pays the one-pairing floor per group instead of per proof.
//
// Like Verify it runs inline on the caller's goroutine. Results are
// index-aligned with reqs: oks[i] true for a valid proof, false with
// errs[i] nil for a well-formed but invalid one, false with errs[i] set
// for infrastructure errors (which are per-group: a circuit that fails
// to compile fails all its requests, never its neighbours').
func (s *Service) VerifyBatch(ctx context.Context, reqs []VerifyRequest) ([]bool, []error) {
	oks := make([]bool, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return oks, errs
	}
	type group struct{ idxs []int }
	groups := make(map[CircuitKey]*group)
	var order []CircuitKey // map iteration is unordered; keep arrival order
	for i := range reqs {
		if reqs[i].Curve == "" {
			reqs[i].Curve = "bn128"
		}
		if reqs[i].Backend == "" {
			reqs[i].Backend = DefaultBackend
		}
		if reqs[i].Proof == nil {
			errs[i] = fmt.Errorf("provesvc: verify: missing proof")
			continue
		}
		key := CircuitKey{
			SourceHash: sha256.Sum256([]byte(reqs[i].Source)),
			Curve:      reqs[i].Curve,
			Backend:    reqs[i].Backend,
		}
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.idxs = append(g.idxs, i)
	}
	for _, key := range order {
		s.verifyGroup(ctx, reqs, groups[key].idxs, oks, errs)
	}
	return oks, errs
}

// verifyGroup folds one same-circuit slice of a batch through the
// backend and books the outcome into the service counters, the batch
// histograms, and telemetry.
func (s *Service) verifyGroup(ctx context.Context, reqs []VerifyRequest, idxs []int, oks []bool, errs []error) {
	req0 := reqs[idxs[0]]
	art, err := s.reg.Get(ctx, req0.Curve, req0.Backend, req0.Source)
	if err != nil {
		for _, i := range idxs {
			errs[i] = err
		}
		return
	}
	probe := telemetry.ProbeFromContext(ctx)
	if s.tel.Enabled() && probe == nil {
		probe = telemetry.NewProbe(telemetry.RequestIDFromContext(ctx))
		ctx = telemetry.WithProbe(ctx, probe)
	}
	proofs := make([]backend.Proof, len(idxs))
	publics := make([][]ff.Element, len(idxs))
	for k, i := range idxs {
		proofs[k] = reqs[i].Proof
		publics[k] = reqs[i].Public
	}

	t0 := time.Now()
	endVerify := probe.StartStage(telemetry.StageVerify)
	verdicts, batchErr := backend.VerifyBatch(ctx, art.Backend, art.VK, proofs, publics)
	endVerify()
	d := time.Since(t0)
	if batchErr != nil {
		for _, i := range idxs {
			errs[i] = batchErr
		}
		return
	}

	n := len(idxs)
	s.met.vbBatches.Add(1)
	s.met.vbProofs.Add(uint64(n))
	s.met.vbSize.Observe(n)
	s.met.vbLat.Observe(d)
	bm := s.met.forBackend(req0.Backend)
	for k, i := range idxs {
		s.met.verified.Add(1)
		if bm != nil {
			// Amortized: the verify latency distribution keeps meaning
			// "cost per proof", which is exactly what batching lowers.
			bm.verifyLat.Observe(d / time.Duration(n))
		}
		s.tel.CountRequest(req0.Backend, req0.Curve, "verified")
		switch v := verdicts[k]; {
		case v == nil:
			oks[i] = true
		case errors.Is(v, backend.ErrInvalidProof):
			// invalid: oks[i] stays false, errs[i] stays nil
		default:
			errs[i] = v
		}
	}
	s.tel.ObserveStage(req0.Backend, req0.Curve, telemetry.StageVerify, d)
	s.tel.ObserveProbe(req0.Backend, req0.Curve, probe)
	if reg := s.tel.Registry(); reg != nil {
		reg.Histogram("zkp_verify_batch_duration_seconds",
			"Wall time of one folded verify batch.").Observe(d)
	}
}
