package provesvc

import (
	"sync"
	"sync/atomic"
	"time"
)

// The per-circuit breaker. A poisoned circuit — one whose proves panic,
// error, or blow their deadline every time — would otherwise burn a
// worker slot for minutes per attempt while the queue behind it starves.
// The breaker watches consecutive failures per (source, curve, backend)
// key and, once tripped, sheds that circuit's requests at admission with
// ErrCircuitOpen (retryable, HTTP 503) for the cooldown period. After the
// cooldown one probe request is admitted (half-open); its outcome decides
// between closing the breaker and re-opening it for another cooldown.
// Keys are independent: one poisoned circuit never sheds another.
//
// What counts as a failure: panics (ErrInternal), compile/witness/prove
// errors, and deadline expiries — everything except a pure client
// cancellation, which says nothing about the circuit's health.

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// DefaultBreakerThreshold and DefaultBreakerCooldown size the breaker
// when WithBreaker is not given.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
)

// breakerState is the per-circuit state machine.
type breakerState struct {
	state       int
	consecutive int       // consecutive countable failures while closed
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe is in flight
}

// breakerGroup holds the per-circuit breakers plus lifetime counters.
// The map is touched once per admission and once per completion — far
// off the prove hot path — so a plain mutex is fine.
type breakerGroup struct {
	threshold int // consecutive failures that trip the breaker; <1 disables
	cooldown  time.Duration

	mu     sync.Mutex
	states map[CircuitKey]*breakerState

	trips atomic.Uint64 // closed→open and half-open→open transitions
	shed  atomic.Uint64 // requests rejected with ErrCircuitOpen
}

func newBreakerGroup(threshold int, cooldown time.Duration) *breakerGroup {
	return &breakerGroup{
		threshold: threshold,
		cooldown:  cooldown,
		states:    map[CircuitKey]*breakerState{},
	}
}

func (g *breakerGroup) enabled() bool { return g.threshold > 0 }

// allow decides admission for one request. It returns false when the
// circuit's breaker is open (or a half-open probe is already in flight);
// the caller sheds with ErrCircuitOpen.
func (g *breakerGroup) allow(key CircuitKey) bool {
	if !g.enabled() {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.states[key]
	if st == nil {
		return true // closed, never failed
	}
	switch st.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(st.openedAt) < g.cooldown {
			g.shed.Add(1)
			return false
		}
		// Cooldown over: go half-open and admit this request as the probe.
		st.state = breakerHalfOpen
		st.probing = true
		return true
	default: // breakerHalfOpen
		if st.probing {
			g.shed.Add(1)
			return false
		}
		st.probing = true
		return true
	}
}

// onSuccess records a completed prove: the circuit is healthy, so any
// breaker state for it resets to closed.
func (g *breakerGroup) onSuccess(key CircuitKey) {
	if !g.enabled() {
		return
	}
	g.mu.Lock()
	delete(g.states, key)
	g.mu.Unlock()
}

// onFailure records a countable failure and reports whether this failure
// tripped the breaker (for the trip counter/metric).
func (g *breakerGroup) onFailure(key CircuitKey) (tripped bool) {
	if !g.enabled() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.states[key]
	if st == nil {
		st = &breakerState{}
		g.states[key] = st
	}
	switch st.state {
	case breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		st.state = breakerOpen
		st.openedAt = time.Now()
		st.probing = false
		st.consecutive = 0
		g.trips.Add(1)
		return true
	case breakerOpen:
		// A request admitted before the trip finishing late; stays open.
		return false
	default:
		st.consecutive++
		if st.consecutive >= g.threshold {
			st.state = breakerOpen
			st.openedAt = time.Now()
			g.trips.Add(1)
			return true
		}
		return false
	}
}

// release returns an admission without a verdict: the admitted request
// produced no evidence about the circuit's health — a pure client
// cancellation, a deadline that expired before any work ran, or a
// rejection/drop after allow() but before execution (queue full,
// draining, drained on shutdown). Every allow() that does not reach
// onSuccess/onFailure MUST be released, otherwise a half-open probe
// slot leaks and the circuit sheds forever. The breaker neither closes
// nor re-trips; the next request may probe again.
func (g *breakerGroup) release(key CircuitKey) {
	if !g.enabled() {
		return
	}
	g.mu.Lock()
	if st := g.states[key]; st != nil && st.state == breakerHalfOpen {
		st.probing = false
	}
	g.mu.Unlock()
}

// openCount returns how many circuits are currently shedding (open or
// mid-probe half-open).
func (g *breakerGroup) openCount() int {
	if !g.enabled() {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, st := range g.states {
		if st.state != breakerClosed {
			n++
		}
	}
	return n
}

// BreakerStats is the `breaker` block of /v1/stats.
type BreakerStats struct {
	// Enabled is false when the breaker was disabled with WithBreaker(0, …).
	Enabled bool `json:"enabled"`
	// Threshold is the consecutive-failure trip point.
	Threshold int `json:"threshold"`
	// CooldownMs is the open-state cooldown before a probe is admitted.
	CooldownMs float64 `json:"cooldown_ms"`
	// Open is the number of circuits currently shedding load.
	Open int `json:"open"`
	// Trips counts lifetime closed→open and half-open→open transitions.
	Trips uint64 `json:"trips"`
	// Shed counts requests rejected with circuit_open.
	Shed uint64 `json:"shed"`
}

func (g *breakerGroup) stats() BreakerStats {
	return BreakerStats{
		Enabled:    g.enabled(),
		Threshold:  g.threshold,
		CooldownMs: float64(g.cooldown) / 1e6,
		Open:       g.openCount(),
		Trips:      g.trips.Load(),
		Shed:       g.shed.Load(),
	}
}
