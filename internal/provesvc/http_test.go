package provesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"zkperf/internal/circuit"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestHTTPProveVerifyStats(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, Seed: 11})
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	prove := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	}

	// First prove pays compile+setup; the second must hit the cache.
	resp, out := postJSON(t, ts.URL+"/prove", prove)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove status = %d, body %v", resp.StatusCode, out)
	}
	proofHex, _ := out["proof"].(string)
	if proofHex == "" {
		t.Fatal("prove response has no proof")
	}
	publicAny, _ := out["public"].([]any)
	if len(publicAny) != 1 {
		t.Fatalf("public = %v, want one value (y)", publicAny)
	}
	// y = 3^16 = 43046721.
	if publicAny[0] != "43046721" {
		t.Errorf("y = %v, want 43046721", publicAny[0])
	}
	if resp, _ := postJSON(t, ts.URL+"/prove", prove); resp.StatusCode != http.StatusOK {
		t.Fatalf("second prove status = %d", resp.StatusCode)
	}

	// Verify round-trips the proof and public values as the client saw them.
	verify := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	}
	resp, out = postJSON(t, ts.URL+"/verify", verify)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d, body %v", resp.StatusCode, out)
	}
	if out["valid"] != true {
		t.Fatalf("verify = %v, want valid", out)
	}
	verify["public"] = []string{"999"}
	if _, out = postJSON(t, ts.URL+"/verify", verify); out["valid"] != false {
		t.Fatalf("verify with wrong public = %v, want invalid", out)
	}

	// Stats reflect the traffic: two proves, one setup, cache hits > 0.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 2 {
		t.Errorf("completed = %d, want 2", st.Completed)
	}
	if st.CacheHits == 0 {
		t.Error("cache hits = 0, want > 0 after repeated proves")
	}
	if st.Setups != 1 {
		t.Errorf("setups = %d, want 1", st.Setups)
	}

	// Bad requests are 400s.
	resp, _ = postJSON(t, ts.URL+"/prove", map[string]any{"circuit": "circuit Broken {"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken circuit status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/prove", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBatch(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, Seed: 13})
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	body := map[string]any{"requests": []map[string]any{
		{"circuit": src, "inputs": map[string]string{"x": "2"}},
		{"circuit": src, "inputs": map[string]string{"x": "3"}},
		{"circuit": src, "inputs": map[string]string{}}, // missing input
	}}
	resp, out := postJSON(t, ts.URL+"/prove/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	results, _ := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d items, want 3", len(results))
	}
	for i := 0; i < 2; i++ {
		item := results[i].(map[string]any)
		if item["proof"] == "" || item["error"] != nil {
			t.Errorf("batch[%d] = %v, want a proof", i, item)
		}
	}
	last := results[2].(map[string]any)
	if last["error"] == nil {
		t.Error("batch[2] with missing input should carry an error")
	}
}

func TestHTTPHealthAndQueueFullMapping(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Seed: 17})
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	if got := httpStatus(ErrQueueFull); got != http.StatusTooManyRequests {
		t.Errorf("ErrQueueFull maps to %d, want 429", got)
	}
	if got := httpStatus(ErrDraining); got != http.StatusServiceUnavailable {
		t.Errorf("ErrDraining maps to %d, want 503", got)
	}
	if got := httpStatus(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Errorf("DeadlineExceeded maps to %d, want 504", got)
	}

	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	// Submissions after shutdown map to 503.
	resp, _ = postJSON(t, ts.URL+"/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(8),
		"inputs":  map[string]string{"x": "2"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("prove while draining = %d, want 503", resp.StatusCode)
	}
}
