package provesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"zkperf/internal/backend"
	"zkperf/internal/circuit"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// wantEnvelope asserts the response body is the error envelope with the
// given code and retryability.
func wantEnvelope(t *testing.T, out map[string]any, code string, retryable bool) {
	t.Helper()
	if out["code"] != code {
		t.Errorf("error code = %v, want %q (body %v)", out["code"], code, out)
	}
	if out["retryable"] != retryable {
		t.Errorf("retryable = %v, want %v (code %v)", out["retryable"], retryable, out["code"])
	}
	if msg, _ := out["message"].(string); msg == "" {
		t.Errorf("error envelope missing message: %v", out)
	}
}

func TestHTTPProveVerifyStats(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(11))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	prove := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	}

	// First prove pays compile+setup; the second must hit the cache.
	resp, out := postJSON(t, ts.URL+"/v1/prove", prove)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove status = %d, body %v", resp.StatusCode, out)
	}
	if out["backend"] != DefaultBackend {
		t.Errorf("reply backend = %v, want %q when omitted", out["backend"], DefaultBackend)
	}
	proofHex, _ := out["proof"].(string)
	if proofHex == "" {
		t.Fatal("prove response has no proof")
	}
	publicAny, _ := out["public"].([]any)
	if len(publicAny) != 1 {
		t.Fatalf("public = %v, want one value (y)", publicAny)
	}
	// y = 3^16 = 43046721.
	if publicAny[0] != "43046721" {
		t.Errorf("y = %v, want 43046721", publicAny[0])
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/prove", prove); resp.StatusCode != http.StatusOK {
		t.Fatalf("second prove status = %d", resp.StatusCode)
	}

	// Verify round-trips the proof and public values as the client saw them.
	verify := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	}
	resp, out = postJSON(t, ts.URL+"/v1/verify", verify)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d, body %v", resp.StatusCode, out)
	}
	if out["valid"] != true {
		t.Fatalf("verify = %v, want valid", out)
	}
	verify["public"] = []string{"999"}
	if _, out = postJSON(t, ts.URL+"/v1/verify", verify); out["valid"] != false {
		t.Fatalf("verify with wrong public = %v, want invalid", out)
	}

	// Stats reflect the traffic: two proves, one setup, cache hits > 0.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 2 {
		t.Errorf("completed = %d, want 2", st.Completed)
	}
	if st.CacheHits == 0 {
		t.Error("cache hits = 0, want > 0 after repeated proves")
	}
	if st.Setups != 1 {
		t.Errorf("setups = %d, want 1", st.Setups)
	}

	// Bad requests are 400s with the error envelope.
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{"circuit": "circuit Broken {"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken circuit status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "bad_request", false)
	resp, _ = postJSON(t, ts.URL+"/v1/prove", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "curve": "secp256k1",
		"inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown curve status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "unknown_curve", false)
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "backend": "stark",
		"inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "unknown_backend", false)
}

// TestHTTPPlonkProveVerify drives the acceptance flow: POST /v1/prove
// with "backend": "plonk" returns a verifiable proof and /v1/stats shows
// per-backend latency quantiles.
func TestHTTPPlonkProveVerify(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(12))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"curve":   "bn128",
		"backend": "plonk",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plonk prove status = %d, body %v", resp.StatusCode, out)
	}
	if out["backend"] != "plonk" {
		t.Errorf("reply backend = %v, want plonk", out["backend"])
	}
	proofHex, _ := out["proof"].(string)
	if proofHex == "" {
		t.Fatal("plonk prove response has no proof")
	}

	resp, out = postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"curve":   "bn128",
		"backend": "plonk",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	})
	if resp.StatusCode != http.StatusOK || out["valid"] != true {
		t.Fatalf("plonk verify = %d %v, want valid", resp.StatusCode, out)
	}

	// A groth16 proof handed to the plonk verifier must come back invalid
	// or undecodable, never 5xx.
	resp2, out2 := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "inputs": map[string]string{"x": "3"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("groth16 prove status = %d", resp2.StatusCode)
	}
	g16Hex, _ := out2["proof"].(string)
	resp, out = postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"backend": "plonk", "circuit": src,
		"proof": g16Hex, "public": []string{"43046721"},
	})
	if resp.StatusCode == http.StatusOK {
		if out["valid"] != false {
			t.Errorf("groth16 proof accepted by plonk verifier: %v", out)
		}
	} else if resp.StatusCode == http.StatusBadRequest {
		wantEnvelope(t, out, "invalid_proof", false)
	} else {
		t.Errorf("cross-backend verify status = %d, want 200-invalid or 400", resp.StatusCode)
	}

	// Per-backend stats carry the p50/p95/p99 readout for each scheme.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plonk", "groth16"} {
		bst, ok := st.Backends[name]
		if !ok {
			t.Fatalf("stats missing backends[%q]: %v", name, st.Backends)
		}
		if bst.Completed == 0 {
			t.Errorf("backends[%q].completed = 0, want > 0", name)
		}
		pr := bst.Stages["prove"]
		if pr.Count == 0 || pr.P50Ms <= 0 || pr.P95Ms <= 0 || pr.P99Ms <= 0 {
			t.Errorf("backends[%q].stages.prove = %+v, want populated quantiles", name, pr)
		}
	}
}

// TestHTTPLegacyRedirect pins the migration contract: unversioned paths
// answer 308 with the /v1 location, and a client that follows redirects
// (re-sending the POST body, per RFC 9110 §15.4.9) still gets served.
func TestHTTPLegacyRedirect(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(19))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	for _, path := range []string{"/prove", "/prove/batch", "/verify", "/stats", "/healthz"} {
		resp, err := noFollow.Post(ts.URL+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s status = %d, want 308", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1"+path {
			t.Errorf("%s Location = %q, want %q", path, loc, "/v1"+path)
		}
	}

	// The default client follows the 308 and re-sends the body: a legacy
	// prove call keeps working end to end.
	resp, out := postJSON(t, ts.URL+"/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(8),
		"inputs":  map[string]string{"x": "2"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy prove via redirect status = %d, body %v", resp.StatusCode, out)
	}
	if p, _ := out["proof"].(string); p == "" {
		t.Fatal("legacy prove via redirect returned no proof")
	}
}

func TestHTTPBatch(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(13))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	body := map[string]any{"requests": []map[string]any{
		{"circuit": src, "inputs": map[string]string{"x": "2"}},
		{"circuit": src, "backend": "plonk", "inputs": map[string]string{"x": "3"}},
		{"circuit": src, "inputs": map[string]string{}}, // missing input
	}}
	resp, out := postJSON(t, ts.URL+"/v1/prove/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	results, _ := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d items, want 3", len(results))
	}
	for i := 0; i < 2; i++ {
		item := results[i].(map[string]any)
		if item["proof"] == "" || item["error"] != nil {
			t.Errorf("batch[%d] = %v, want a proof", i, item)
		}
	}
	if b := results[1].(map[string]any)["backend"]; b != "plonk" {
		t.Errorf("batch[1] backend = %v, want plonk", b)
	}
	last := results[2].(map[string]any)
	env, _ := last["error"].(map[string]any)
	if env == nil {
		t.Fatal("batch[2] with missing input should carry an error envelope")
	}
	wantEnvelope(t, env, "bad_request", false)
}

func TestHTTPHealthAndErrorClass(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(17))
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	// The error taxonomy documented in the README: status, stable code,
	// and whether a client retry can succeed.
	cases := []struct {
		err       error
		status    int
		code      string
		retryable bool
	}{
		{ErrQueueFull, http.StatusTooManyRequests, "queue_full", true},
		{ErrDraining, http.StatusServiceUnavailable, "draining", true},
		{ErrDropped, http.StatusServiceUnavailable, "dropped", true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded", true},
		{context.Canceled, http.StatusRequestTimeout, "canceled", false},
		{backend.ErrUnknownBackend, http.StatusBadRequest, "unknown_backend", false},
		{ErrUnknownCurve, http.StatusBadRequest, "unknown_curve", false},
		{backend.ErrInvalidProof, http.StatusBadRequest, "invalid_proof", false},
	}
	for _, c := range cases {
		status, code, retryable := errorClass(c.err)
		if status != c.status || code != c.code || retryable != c.retryable {
			t.Errorf("errorClass(%v) = (%d, %q, %v), want (%d, %q, %v)",
				c.err, status, code, retryable, c.status, c.code, c.retryable)
		}
	}

	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	// Submissions after shutdown map to 503 + retryable envelope.
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(8),
		"inputs":  map[string]string{"x": "2"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("prove while draining = %d, want 503", resp.StatusCode)
	}
	wantEnvelope(t, out, "draining", true)
}
