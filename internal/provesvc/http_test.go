package provesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/circuit"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// wantEnvelope asserts the response body is the error envelope with the
// given code and retryability.
func wantEnvelope(t *testing.T, out map[string]any, code string, retryable bool) {
	t.Helper()
	if out["code"] != code {
		t.Errorf("error code = %v, want %q (body %v)", out["code"], code, out)
	}
	if out["retryable"] != retryable {
		t.Errorf("retryable = %v, want %v (code %v)", out["retryable"], retryable, out["code"])
	}
	if msg, _ := out["message"].(string); msg == "" {
		t.Errorf("error envelope missing message: %v", out)
	}
}

func TestHTTPProveVerifyStats(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(11))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	prove := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	}

	// First prove pays compile+setup; the second must hit the cache.
	resp, out := postJSON(t, ts.URL+"/v1/prove", prove)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove status = %d, body %v", resp.StatusCode, out)
	}
	if out["backend"] != DefaultBackend {
		t.Errorf("reply backend = %v, want %q when omitted", out["backend"], DefaultBackend)
	}
	proofHex, _ := out["proof"].(string)
	if proofHex == "" {
		t.Fatal("prove response has no proof")
	}
	publicAny, _ := out["public"].([]any)
	if len(publicAny) != 1 {
		t.Fatalf("public = %v, want one value (y)", publicAny)
	}
	// y = 3^16 = 43046721.
	if publicAny[0] != "43046721" {
		t.Errorf("y = %v, want 43046721", publicAny[0])
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/prove", prove); resp.StatusCode != http.StatusOK {
		t.Fatalf("second prove status = %d", resp.StatusCode)
	}

	// Verify round-trips the proof and public values as the client saw them.
	verify := map[string]any{
		"curve":   "bn128",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	}
	resp, out = postJSON(t, ts.URL+"/v1/verify", verify)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d, body %v", resp.StatusCode, out)
	}
	if out["valid"] != true {
		t.Fatalf("verify = %v, want valid", out)
	}
	verify["public"] = []string{"999"}
	if _, out = postJSON(t, ts.URL+"/v1/verify", verify); out["valid"] != false {
		t.Fatalf("verify with wrong public = %v, want invalid", out)
	}

	// Stats reflect the traffic: two proves, one setup, cache hits > 0.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service.Completed != 2 {
		t.Errorf("completed = %d, want 2", st.Service.Completed)
	}
	if st.Cache.Hits == 0 {
		t.Error("cache hits = 0, want > 0 after repeated proves")
	}
	if st.Cache.Setups != 1 {
		t.Errorf("setups = %d, want 1", st.Cache.Setups)
	}
	if st.Queue.Capacity != 8 {
		t.Errorf("queue capacity = %d, want 8", st.Queue.Capacity)
	}
	if st.Service.Workers != 2 {
		t.Errorf("workers = %d, want 2", st.Service.Workers)
	}

	// Bad requests are 400s with the error envelope.
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{"circuit": "circuit Broken {"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken circuit status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "bad_request", false)
	resp, _ = postJSON(t, ts.URL+"/v1/prove", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "curve": "secp256k1",
		"inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown curve status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "unknown_curve", false)
	resp, out = postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "backend": "stark",
		"inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "unknown_backend", false)
}

// TestHTTPPlonkProveVerify drives the acceptance flow: POST /v1/prove
// with "backend": "plonk" returns a verifiable proof and /v1/stats shows
// per-backend latency quantiles.
func TestHTTPPlonkProveVerify(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(12))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"curve":   "bn128",
		"backend": "plonk",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plonk prove status = %d, body %v", resp.StatusCode, out)
	}
	if out["backend"] != "plonk" {
		t.Errorf("reply backend = %v, want plonk", out["backend"])
	}
	proofHex, _ := out["proof"].(string)
	if proofHex == "" {
		t.Fatal("plonk prove response has no proof")
	}

	resp, out = postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"curve":   "bn128",
		"backend": "plonk",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	})
	if resp.StatusCode != http.StatusOK || out["valid"] != true {
		t.Fatalf("plonk verify = %d %v, want valid", resp.StatusCode, out)
	}

	// A groth16 proof handed to the plonk verifier must come back invalid
	// or undecodable, never 5xx.
	resp2, out2 := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src, "inputs": map[string]string{"x": "3"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("groth16 prove status = %d", resp2.StatusCode)
	}
	g16Hex, _ := out2["proof"].(string)
	resp, out = postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"backend": "plonk", "circuit": src,
		"proof": g16Hex, "public": []string{"43046721"},
	})
	if resp.StatusCode == http.StatusOK {
		if out["valid"] != false {
			t.Errorf("groth16 proof accepted by plonk verifier: %v", out)
		}
	} else if resp.StatusCode == http.StatusBadRequest {
		wantEnvelope(t, out, "invalid_proof", false)
	} else {
		t.Errorf("cross-backend verify status = %d, want 200-invalid or 400", resp.StatusCode)
	}

	// Per-backend stats carry the p50/p95/p99 readout for each scheme.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plonk", "groth16"} {
		bst, ok := st.Backends[name]
		if !ok {
			t.Fatalf("stats missing backends[%q]: %v", name, st.Backends)
		}
		if bst.Completed == 0 {
			t.Errorf("backends[%q].completed = 0, want > 0", name)
		}
		pr := bst.Stages["prove"]
		if pr.Count == 0 || pr.P50Ms <= 0 || pr.P95Ms <= 0 || pr.P99Ms <= 0 {
			t.Errorf("backends[%q].stages.prove = %+v, want populated quantiles", name, pr)
		}
	}
}

// TestHTTPLegacyGone pins the end of the migration contract: the
// unversioned paths, deprecated as 308 redirects since the /v1 split,
// now answer 410 with the standard envelope (code "gone", not
// retryable) naming the /v1 replacement — and the error is visible to
// the operator in the /v1/stats errors block.
func TestHTTPLegacyGone(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(19))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	for _, path := range []string{"/prove", "/prove/batch", "/verify", "/verify/batch", "/jobs", "/stats", "/healthz"} {
		resp, out := postJSON(t, ts.URL+path, map[string]any{})
		if resp.StatusCode != http.StatusGone {
			t.Errorf("%s status = %d, want 410", path, resp.StatusCode)
		}
		wantEnvelope(t, out, "gone", false)
		if msg, _ := out["message"].(string); !strings.Contains(msg, "/v1"+path) {
			t.Errorf("%s gone message %q does not name the /v1 path", path, msg)
		}
	}

	var st Snapshot
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Errors["gone"] != 7 {
		t.Errorf("errors[gone] = %d, want 7", st.Errors["gone"])
	}
}

func TestHTTPBatch(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(13))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	body := map[string]any{"items": []map[string]any{
		{"circuit": src, "inputs": map[string]string{"x": "2"}},
		{"circuit": src, "backend": "plonk", "inputs": map[string]string{"x": "3"}},
		{"circuit": src, "inputs": map[string]string{}}, // missing input
	}}
	resp, out := postJSON(t, ts.URL+"/v1/prove/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	results, _ := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d items, want 3", len(results))
	}
	for i := 0; i < 2; i++ {
		item := results[i].(map[string]any)
		if item["proof"] == "" || item["error"] != nil {
			t.Errorf("batch[%d] = %v, want a proof", i, item)
		}
	}
	if b := results[1].(map[string]any)["backend"]; b != "plonk" {
		t.Errorf("batch[1] backend = %v, want plonk", b)
	}
	last := results[2].(map[string]any)
	env, _ := last["error"].(map[string]any)
	if env == nil {
		t.Fatal("batch[2] with missing input should carry an error envelope")
	}
	wantEnvelope(t, env, "bad_request", false)
}

// TestHTTPBatchAliasRetired pins the end of the {"requests":[…]}
// deprecation cycle: any body carrying the retired key — alone or
// alongside "items" — is rejected whole with the invalid_request
// envelope naming the unified spelling.
func TestHTTPBatchAliasRetired(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(13))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	item := map[string]any{"circuit": src, "inputs": map[string]string{"x": "2"}}
	for _, body := range []map[string]any{
		{"requests": []map[string]any{item}},
		{"items": []map[string]any{item}, "requests": []map[string]any{item}},
		{"requests": []map[string]any{}},
	} {
		resp, out := postJSON(t, ts.URL+"/v1/prove/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("alias body %v status = %d, want 400", body, resp.StatusCode)
		}
		wantEnvelope(t, out, "invalid_request", false)
		if msg, _ := out["message"].(string); !strings.Contains(msg, "items") {
			t.Errorf("invalid_request message %q should name the items field", msg)
		}
	}

	// The unified spelling still works on the same service.
	resp, out := postJSON(t, ts.URL+"/v1/prove/batch", map[string]any{
		"items": []map[string]any{item},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("items batch status = %d (body %v)", resp.StatusCode, out)
	}
	if results, _ := out["results"].([]any); len(results) != 1 {
		t.Fatalf("items batch results = %v, want 1 entry", out)
	}
}

func TestHTTPHealthAndErrorClass(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(17))
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	// The error taxonomy documented in the README: status, stable code,
	// and whether a client retry can succeed.
	cases := []struct {
		err       error
		status    int
		code      string
		retryable bool
	}{
		{ErrQueueFull, http.StatusTooManyRequests, "queue_full", true},
		{ErrDraining, http.StatusServiceUnavailable, "draining", true},
		{ErrDropped, http.StatusServiceUnavailable, "dropped", true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded", true},
		{context.Canceled, http.StatusRequestTimeout, "canceled", false},
		{backend.ErrUnknownBackend, http.StatusBadRequest, "unknown_backend", false},
		{ErrUnknownCurve, http.StatusBadRequest, "unknown_curve", false},
		{backend.ErrInvalidProof, http.StatusBadRequest, "invalid_proof", false},
	}
	for _, c := range cases {
		status, code, retryable := errorClass(c.err)
		if status != c.status || code != c.code || retryable != c.retryable {
			t.Errorf("errorClass(%v) = (%d, %q, %v), want (%d, %q, %v)",
				c.err, status, code, retryable, c.status, c.code, c.retryable)
		}
	}

	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	// Submissions after shutdown map to 503 + retryable envelope.
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(8),
		"inputs":  map[string]string{"x": "2"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("prove while draining = %d, want 503", resp.StatusCode)
	}
	wantEnvelope(t, out, "draining", true)
}

// TestHTTPMetrics is the tentpole acceptance round-trip: a real prove
// through the handler populates the telemetry registry, and
// GET /v1/metrics exposes it as Prometheus text with per-
// (backend, curve, stage) histograms and kernel counters.
func TestHTTPMetrics(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(23))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	resp, out := postJSON(t, ts.URL+"/v1/prove", map[string]any{
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove status = %d, body %v", resp.StatusCode, out)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d, want 200", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE zkp_stage_duration_seconds histogram",
		`zkp_stage_duration_seconds_count{backend="groth16",curve="bn128",stage="witness"} 1`,
		`zkp_stage_duration_seconds_count{backend="groth16",curve="bn128",stage="prove"} 1`,
		`zkp_kernel_duration_seconds_count{backend="groth16",curve="bn128",kernel="msm_g1"}`,
		`zkp_kernel_duration_seconds_count{backend="groth16",curve="bn128",kernel="ntt"}`,
		`zkp_kernel_invocations_total{backend="groth16",curve="bn128",kernel="msm_g1"}`,
		`zkp_kernel_items_total{backend="groth16",curve="bn128",kernel="msm_g1"}`,
		`zkp_requests_total{backend="groth16",curve="bn128",outcome="completed"} 1`,
		"zkp_queue_capacity 4",
		"zkp_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// The legacy path answers 410 like every other unversioned route.
	lresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusGone {
		t.Errorf("/metrics status = %d, want 410", lresp.StatusCode)
	}
}

// TestHTTPMetricsDisabled pins the opt-out: with telemetry off the
// endpoint answers 404 with a stable error code instead of an empty
// exposition.
func TestHTTPMetricsDisabled(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(2), WithSeed(29), WithTelemetry(nil))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics status = %d, want 404 when telemetry disabled", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, out, "telemetry_disabled", false)
}

// TestHTTPRequestID checks the edge middleware: a sane client-supplied
// X-Request-Id is echoed back, and requests without one get a fresh ID.
func TestHTTPRequestID(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(2), WithSeed(31))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-42" {
		t.Errorf("X-Request-Id = %q, want the client's ID echoed", got)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Errorf("generated X-Request-Id = %q, want 16 hex chars", got)
	}
}

// TestHTTPHealthzFlipsDuringDrain parks a job on the test gate, starts
// Shutdown, and checks /v1/healthz flips 200 → 503 while the drain is
// still in progress (not merely after it finishes).
func TestHTTPHealthzFlipsDuringDrain(t *testing.T) {
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(4), WithSeed(37))
	s.hookJobStart = func() { <-gate }
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	statusOf := func() int {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := statusOf(); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", got)
	}

	j, err := s.enqueue(context.Background(), ProveRequest{
		Curve: "bn128", Source: circuit.ExponentiateSource(8),
		Inputs: assignX(t, s, "bn128", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up the job", func() bool {
		return s.met.inFlight.Load() == 1
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	waitFor(t, 10*time.Second, "healthz to flip to 503 mid-drain", func() bool {
		return statusOf() == http.StatusServiceUnavailable
	})

	close(gate)
	<-done
	<-j.done
	if j.err != nil {
		t.Errorf("in-flight job failed: %v", j.err)
	}
}

// TestStatsPerBackendShed pins the fixed accounting: queue-full
// rejections and cancelled jobs are attributed to the backend that shed
// them, both in /v1/stats and in the Prometheus outcome counters.
func TestStatsPerBackendShed(t *testing.T) {
	gate := make(chan struct{})
	s := New(WithWorkers(1), WithQueueDepth(1), WithSeed(41))
	s.hookJobStart = func() { <-gate }
	s.Start()
	defer func() {
		s.Shutdown(context.Background())
	}()

	src := circuit.ExponentiateSource(8)
	req := ProveRequest{Curve: "bn128", Source: src, Inputs: assignX(t, s, "bn128", 2)}

	// Fill the worker and the single queue slot, then overflow.
	j1, err := s.enqueue(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker to pick up j1", func() bool {
		return s.met.inFlight.Load() == 1
	})
	ctx2, cancel2 := context.WithCancel(context.Background())
	j2, err := s.enqueue(ctx2, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prove(context.Background(), req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}

	// Cancel the queued job, then release the worker.
	cancel2()
	close(gate)
	<-j1.done
	<-j2.done
	if !errors.Is(j2.err, context.Canceled) {
		t.Fatalf("j2 err = %v, want context.Canceled", j2.err)
	}

	st := s.Stats()
	bst, ok := st.Backends[DefaultBackend]
	if !ok {
		t.Fatalf("stats missing backends[%q]", DefaultBackend)
	}
	if bst.Rejected != 1 {
		t.Errorf("backend rejected = %d, want 1", bst.Rejected)
	}
	if bst.Cancelled != 1 {
		t.Errorf("backend cancelled = %d, want 1", bst.Cancelled)
	}
	if bst.Completed != 1 {
		t.Errorf("backend completed = %d, want 1", bst.Completed)
	}
	if st.Service.Rejected != 1 || st.Service.Cancelled != 1 {
		t.Errorf("service rejected/cancelled = %d/%d, want 1/1",
			st.Service.Rejected, st.Service.Cancelled)
	}

	var buf bytes.Buffer
	if err := s.Telemetry().Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`zkp_requests_total{backend="groth16",curve="bn128",outcome="rejected"} 1`,
		`zkp_requests_total{backend="groth16",curve="bn128",outcome="cancelled"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry output missing %q", want)
		}
	}
}
