package provesvc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/faultinject"
	"zkperf/internal/ff"
	"zkperf/internal/jobs"
	"zkperf/internal/telemetry"
	"zkperf/internal/witness"
)

// DefaultMaxBodyBytes bounds /v1 prove and verify request bodies unless
// WithMaxBodyBytes overrides it. Circuit sources and proofs are small;
// 4 MiB leaves generous headroom for batch bodies while keeping a
// hostile client from ballooning the decoder.
const DefaultMaxBodyBytes = 4 << 20

// The HTTP front-end: stdlib-only JSON endpoints over the service,
// versioned under /v1.
//
//	POST /v1/prove         {"curve","backend","circuit","inputs":{name:value},"timeout_ms"}
//	POST /v1/prove/batch   {"items":[<prove body>, …]}
//	POST /v1/verify        {"curve","backend","circuit","proof","public":[values]}
//	POST /v1/verify/batch  {"items":[<verify body>, …]}
//	POST /v1/jobs          async submit: {"kind", …} or {"items":[…]} → 202 (see jobs_http.go)
//	GET  /v1/jobs/{id}     poll an async job; DELETE cancels it
//	GET  /v1/stats         the documented {service,queue,cache,backends,…,jobs} snapshot
//	GET  /v1/metrics       Prometheus text exposition of the telemetry registry
//	GET  /v1/healthz       200 while accepting work, 503 while draining
//
// Every request gets an ID: the value of an incoming X-Request-Id header
// if present, a fresh one otherwise. The ID is echoed in the response's
// X-Request-Id header, attached to the request context (visible to the
// telemetry probe and access logs) for the whole job.
//
// The batch endpoints share one convention: the request is
// {"items":[…]} and the response is {"results":[{"index",…}]} with one
// entry per item, where a failed item carries the standard error
// envelope under "error" instead of its result fields. The deprecated
// {"requests":[…]} spelling on /v1/prove/batch finished its
// one-release grace period and is rejected with code "invalid_request".
// The legacy unversioned paths (removed after a deprecation cycle of
// 308 redirects) answer 410 with the error envelope, code "gone".
// "backend" selects the proving scheme and defaults to "groth16".
// Field elements travel as decimal or 0x-hex strings; proofs as hex of
// the backend's serialization.
//
// Errors share one JSON envelope: {"code","message","retryable"}. code
// is a stable machine-readable string (see errorClass), retryable tells
// clients whether the same request can succeed later (load shedding,
// drains and deadlines are retryable; malformed requests and invalid
// proofs are not).

type proveBody struct {
	Curve     string            `json:"curve"`
	Backend   string            `json:"backend"`
	Circuit   string            `json:"circuit"`
	Inputs    map[string]string `json:"inputs"`
	TimeoutMs int64             `json:"timeout_ms"`
}

type proveReply struct {
	Backend     string   `json:"backend"`
	Proof       string   `json:"proof"`
	Public      []string `json:"public"` // circuit public wires, constant wire omitted
	QueueWaitMs float64  `json:"queue_wait_ms"`
	WitnessMs   float64  `json:"witness_ms"`
	ProveMs     float64  `json:"prove_ms"`
	TotalMs     float64  `json:"total_ms"`
}

type batchBody struct {
	// Items is the unified batch shape shared with /v1/verify/batch and
	// POST /v1/jobs. The pre-unification "requests" spelling finished
	// its one-release deprecation cycle and is now rejected outright —
	// Requests only exists to detect it and answer invalid_request.
	Items    []proveBody     `json:"items"`
	Requests json.RawMessage `json:"requests"`
}

type errEnvelope struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

type batchItem struct {
	Index int `json:"index"`
	*proveReply
	Error *errEnvelope `json:"error,omitempty"`
}

type verifyBody struct {
	Curve   string   `json:"curve"`
	Backend string   `json:"backend"`
	Circuit string   `json:"circuit"`
	Proof   string   `json:"proof"`
	Public  []string `json:"public"`
}

type verifyBatchBody struct {
	Items []verifyBody `json:"items"`
}

// verifyBatchItem is one slot of the /v1/verify/batch response. Valid is
// a pointer so a checked-but-invalid proof serializes as "valid": false
// while an errored item omits the field entirely.
type verifyBatchItem struct {
	Index int          `json:"index"`
	Valid *bool        `json:"valid,omitempty"`
	Error *errEnvelope `json:"error,omitempty"`
}

// NewHandler wraps the service in an http.Handler serving the /v1 API,
// with request-ID stamping on every route. The legacy unversioned paths
// (308 redirects until their deprecation cycle ended) now answer 410
// with the standard envelope, code "gone".
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prove", s.handleProve)
	mux.HandleFunc("POST /v1/prove/batch", s.handleProveBatch)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	for _, path := range []string{"/prove", "/prove/batch", "/verify", "/verify/batch", "/jobs", "/stats", "/metrics", "/healthz"} {
		mux.HandleFunc(path, s.handleLegacyGone)
	}
	return withRequestID(mux)
}

// handleLegacyGone answers the removed unversioned paths. A JSON
// envelope (not a redirect) keeps the failure explicit and machine
// readable: code "gone" is non-retryable, and the message names the
// /v1 path to use instead.
func (s *Service) handleLegacyGone(w http.ResponseWriter, r *http.Request) {
	s.recordErrorCode("gone")
	writeJSON(w, http.StatusGone, &errEnvelope{
		Code:      "gone",
		Message:   fmt.Sprintf("provesvc: unversioned path %s was removed; use /v1%s", r.URL.Path, r.URL.Path),
		Retryable: false,
	})
}

// withRequestID is the edge middleware that gives every request an ID:
// reuse the client's X-Request-Id when sane, mint one otherwise, echo it
// in the response and thread it through the context so the job's probe
// and the access log can report it.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 64 {
			id = telemetry.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(telemetry.WithRequestID(r.Context(), id)))
	})
}

// statusRecorder captures the status code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// LogRequests wraps a handler with a structured access log: one line per
// request with method, path, status, duration and request ID. logger may
// be nil for the stdlib default logger.
func LogRequests(next http.Handler, logger *log.Logger) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		logger.Printf("http method=%s path=%s status=%d dur_ms=%.1f request_id=%s",
			r.Method, r.URL.Path, rec.status,
			float64(time.Since(t0))/1e6, rec.Header().Get("X-Request-Id"))
	})
}

// errorClass maps a service error to its HTTP status, stable error code
// and retryability. Documented in the README's error-code table.
func errorClass(err error) (status int, code string, retryable bool) {
	var tooBig *http.MaxBytesError
	var replayed *jobs.ReplayedError
	switch {
	case errors.As(err, &replayed):
		// A journaled failure restored after a restart keeps the envelope
		// its original error was classified into.
		status, code, retryable = replayed.Status, replayed.Code, replayed.Retryable
		if status == 0 {
			status = http.StatusInternalServerError
		}
		if code == "" {
			code = "internal_error"
		}
		return status, code, retryable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full", true
	case errors.Is(err, jobs.ErrTooManyJobs):
		return http.StatusTooManyRequests, "too_many_jobs", true
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound, "job_not_found", false
	case errors.Is(err, ErrDraining), errors.Is(err, jobs.ErrDraining):
		return http.StatusServiceUnavailable, "draining", true
	case errors.Is(err, ErrDropped), errors.Is(err, jobs.ErrDropped):
		return http.StatusServiceUnavailable, "dropped", true
	case errors.Is(err, ErrCircuitOpen):
		return http.StatusServiceUnavailable, "circuit_open", true
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError, "internal_error", false
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, "body_too_large", false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded", true
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "canceled", false
	case errors.Is(err, backend.ErrUnknownBackend):
		return http.StatusBadRequest, "unknown_backend", false
	case errors.Is(err, ErrUnknownCurve):
		return http.StatusBadRequest, "unknown_curve", false
	case errors.Is(err, backend.ErrInvalidProof):
		return http.StatusBadRequest, "invalid_proof", false
	default:
		return http.StatusBadRequest, "bad_request", false
	}
}

func envelope(err error) (int, *errEnvelope) {
	status, code, retryable := errorClass(err)
	return status, &errEnvelope{Code: code, Message: err.Error(), Retryable: retryable}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError serves the envelope and books the code into the `errors`
// block of /v1/stats and the zkp_http_errors_total metric, so every
// error code a client can see is also visible to the operator. Shed
// responses carry a Retry-After hint so well-behaved clients back off
// at least as long as the condition will actually last.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status, env := envelope(err)
	if ra := s.retryAfter(env.Code); ra > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
	}
	s.recordErrorCode(env.Code)
	writeJSON(w, status, env)
}

// retryAfter derives the Retry-After hint for a shed code: circuit_open
// lasts exactly the breaker cooldown; queue saturation clears when the
// queue drains, so the hint is depth ÷ observed drain rate (from the
// scheduler's decayed counters), falling back to a flat second before
// any drain has been observed; a drain means "find another node", so
// the hint is longer. 0 means no header.
func (s *Service) retryAfter(code string) time.Duration {
	switch code {
	case "circuit_open":
		if d := s.cfg.brkCooldown; d > time.Second {
			return d
		}
		return time.Second
	case "queue_full", "too_many_jobs":
		if d, ok := s.sched.retryAfterHint(); ok {
			return d
		}
		return time.Second
	case "draining", "dropped":
		return 5 * time.Second
	}
	return 0
}

func (s *Service) recordErrorCode(code string) {
	s.met.countError(code)
	if reg := s.tel.Registry(); reg != nil {
		reg.Counter("zkp_http_errors_total",
			"Error envelopes served, by stable code.",
			telemetry.Label{Name: "code", Value: code}).Inc()
	}
}

// toRequest converts the wire form to a ProveRequest, parsing inputs in
// the curve's scalar field.
func (s *Service) toRequest(b proveBody) (ProveRequest, error) {
	req := ProveRequest{
		Curve:   b.Curve,
		Backend: b.Backend,
		Source:  b.Circuit,
		Timeout: time.Duration(b.TimeoutMs) * time.Millisecond,
	}
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	if req.Source == "" {
		return req, fmt.Errorf("provesvc: missing circuit source")
	}
	if !s.reg.backendEnabled(req.Backend) {
		return req, fmt.Errorf("%w %q (serving: %v)", backend.ErrUnknownBackend, req.Backend, s.reg.Backends())
	}
	c, err := s.reg.CurveFor(req.Curve)
	if err != nil {
		return req, err
	}
	req.Inputs = make(witness.Assignment, len(b.Inputs))
	for name, val := range b.Inputs {
		var e ff.Element
		if _, err := c.Fr.SetString(&e, val); err != nil {
			return req, fmt.Errorf("provesvc: input %q: %w", name, err)
		}
		req.Inputs[name] = e
	}
	return req, nil
}

func (s *Service) toReply(res *ProveResult) (*proveReply, error) {
	var buf bytes.Buffer
	if err := res.Proof.Encode(&buf); err != nil {
		return nil, err
	}
	fr := res.Artifact.Backend.Curve().Fr
	pub := make([]string, 0, len(res.Public)-1)
	for i := 1; i < len(res.Public); i++ { // skip the constant wire
		pub = append(pub, fr.String(&res.Public[i]))
	}
	return &proveReply{
		Backend:     res.Proof.Backend(),
		Proof:       hex.EncodeToString(buf.Bytes()),
		Public:      pub,
		QueueWaitMs: float64(res.QueueWait) / 1e6,
		WitnessMs:   float64(res.WitnessTime) / 1e6,
		ProveMs:     float64(res.ProveTime) / 1e6,
		TotalMs:     float64(res.Total) / 1e6,
	}, nil
}

func (s *Service) handleProve(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Point(r.Context(), faultinject.PointHTTPProve); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrInternal, err))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var body proveBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	req, err := s.toRequest(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.Prove(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	reply, err := s.toReply(res)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleProveBatch(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Point(r.Context(), faultinject.PointHTTPProve); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrInternal, err))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var body batchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	// The "requests" alias was deprecated for one release (PR 7) and is
	// now retired: any body carrying the key — even alongside "items" —
	// is rejected so stale clients fail loudly instead of silently
	// losing whichever spelling lost the merge.
	if body.Requests != nil {
		s.recordErrorCode("invalid_request")
		writeJSON(w, http.StatusBadRequest, &errEnvelope{
			Code:      "invalid_request",
			Message:   `provesvc: the deprecated "requests" batch field was removed; send {"items":[…]}`,
			Retryable: false,
		})
		return
	}
	list := body.Items
	reqs := make([]ProveRequest, len(list))
	parseErrs := make([]error, len(list))
	for i, b := range list {
		reqs[i], parseErrs[i] = s.toRequest(b)
	}
	results, errs := s.ProveBatch(r.Context(), reqs)
	items := make([]batchItem, len(reqs))
	for i := range items {
		items[i].Index = i
		err := parseErrs[i]
		if err == nil {
			err = errs[i]
		}
		if err == nil && results[i] != nil {
			items[i].proveReply, err = s.toReply(results[i])
		}
		if err != nil {
			_, items[i].Error = envelope(err)
			s.recordErrorCode(items[i].Error.Code)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

// handleVerifyBatch is POST /v1/verify/batch: the unified batch shape
// over VerifyBatch, so all same-circuit items share one folded pairing
// check. Per-item failures (undecodable proof, unknown backend) ride in
// the item's error envelope; the batch itself always answers 200.
func (s *Service) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Point(r.Context(), faultinject.PointHTTPVerify); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrInternal, err))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var body verifyBatchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	reqs := make([]VerifyRequest, len(body.Items))
	parseErrs := make([]error, len(body.Items))
	for i, b := range body.Items {
		reqs[i], parseErrs[i] = s.toVerifyRequest(b)
	}
	oks, errs := s.VerifyBatch(r.Context(), reqs)
	items := make([]verifyBatchItem, len(reqs))
	for i := range items {
		items[i].Index = i
		err := parseErrs[i]
		if err == nil {
			err = errs[i]
		}
		if err != nil {
			_, items[i].Error = envelope(err)
			s.recordErrorCode(items[i].Error.Code)
			continue
		}
		valid := oks[i]
		items[i].Valid = &valid
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Point(r.Context(), faultinject.PointHTTPVerify); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrInternal, err))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var body verifyBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	req, err := s.toVerifyRequest(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	valid, err := s.Verify(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"valid": valid})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.tel.Registry()
	if reg == nil {
		writeJSON(w, http.StatusNotFound, &errEnvelope{
			Code:      "telemetry_disabled",
			Message:   "provesvc: telemetry is disabled on this service",
			Retryable: false,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WriteText(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
