package provesvc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/witness"
)

// The HTTP front-end: stdlib-only JSON endpoints over the service.
//
//	POST /prove        {"curve","circuit","inputs":{name:value},"timeout_ms"}
//	POST /prove/batch  {"requests":[<prove body>, …]}
//	POST /verify       {"curve","circuit","proof","public":[values]}
//	GET  /stats        counters, cache hit rate, per-stage p50/p95/p99
//	GET  /healthz      200 while accepting work, 503 while draining
//
// Field elements travel as decimal or 0x-hex strings; proofs as hex of
// the compressed serialization.

type proveBody struct {
	Curve     string            `json:"curve"`
	Circuit   string            `json:"circuit"`
	Inputs    map[string]string `json:"inputs"`
	TimeoutMs int64             `json:"timeout_ms"`
}

type proveReply struct {
	Proof       string   `json:"proof"`
	Public      []string `json:"public"` // circuit public wires, constant wire omitted
	QueueWaitMs float64  `json:"queue_wait_ms"`
	WitnessMs   float64  `json:"witness_ms"`
	ProveMs     float64  `json:"prove_ms"`
	TotalMs     float64  `json:"total_ms"`
}

type batchBody struct {
	Requests []proveBody `json:"requests"`
}

type batchItem struct {
	*proveReply
	Error string `json:"error,omitempty"`
	Code  int    `json:"code,omitempty"`
}

type verifyBody struct {
	Curve   string   `json:"curve"`
	Circuit string   `json:"circuit"`
	Proof   string   `json:"proof"`
	Public  []string `json:"public"`
}

// NewHandler wraps the service in an http.Handler.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /prove", s.handleProve)
	mux.HandleFunc("POST /prove/batch", s.handleProveBatch)
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpStatus maps service errors onto status codes: load shedding is 429,
// draining 503, deadline 504, bad circuits/inputs 400.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDropped):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	writeJSON(w, status, map[string]any{"error": err.Error(), "code": status})
}

// toRequest converts the wire form to a ProveRequest, parsing inputs in
// the curve's scalar field.
func (s *Service) toRequest(b proveBody) (ProveRequest, error) {
	req := ProveRequest{
		Curve:   b.Curve,
		Source:  b.Circuit,
		Timeout: time.Duration(b.TimeoutMs) * time.Millisecond,
	}
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Source == "" {
		return req, fmt.Errorf("provesvc: missing circuit source")
	}
	eng, err := s.reg.EngineFor(req.Curve)
	if err != nil {
		return req, err
	}
	req.Inputs = make(witness.Assignment, len(b.Inputs))
	for name, val := range b.Inputs {
		var e ff.Element
		if _, err := eng.Curve.Fr.SetString(&e, val); err != nil {
			return req, fmt.Errorf("provesvc: input %q: %w", name, err)
		}
		req.Inputs[name] = e
	}
	return req, nil
}

func (s *Service) toReply(res *ProveResult) (*proveReply, error) {
	var buf bytes.Buffer
	if err := res.Proof.Serialize(&buf, res.Artifact.Engine.Curve); err != nil {
		return nil, err
	}
	fr := res.Artifact.Engine.Curve.Fr
	pub := make([]string, 0, len(res.Public)-1)
	for i := 1; i < len(res.Public); i++ { // skip the constant wire
		pub = append(pub, fr.String(&res.Public[i]))
	}
	return &proveReply{
		Proof:       hex.EncodeToString(buf.Bytes()),
		Public:      pub,
		QueueWaitMs: float64(res.QueueWait) / 1e6,
		WitnessMs:   float64(res.WitnessTime) / 1e6,
		ProveMs:     float64(res.ProveTime) / 1e6,
		TotalMs:     float64(res.Total) / 1e6,
	}, nil
}

func (s *Service) handleProve(w http.ResponseWriter, r *http.Request) {
	var body proveBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	req, err := s.toRequest(body)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.Prove(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	reply, err := s.toReply(res)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleProveBatch(w http.ResponseWriter, r *http.Request) {
	var body batchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	reqs := make([]ProveRequest, len(body.Requests))
	parseErrs := make([]error, len(body.Requests))
	for i, b := range body.Requests {
		reqs[i], parseErrs[i] = s.toRequest(b)
	}
	results, errs := s.ProveBatch(r.Context(), reqs)
	items := make([]batchItem, len(reqs))
	for i := range items {
		err := parseErrs[i]
		if err == nil {
			err = errs[i]
		}
		if err == nil && results[i] != nil {
			items[i].proveReply, err = s.toReply(results[i])
		}
		if err != nil {
			items[i].Error = err.Error()
			items[i].Code = httpStatus(err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var body verifyBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, fmt.Errorf("provesvc: bad request body: %w", err))
		return
	}
	if body.Curve == "" {
		body.Curve = "bn128"
	}
	eng, err := s.reg.EngineFor(body.Curve)
	if err != nil {
		writeError(w, err)
		return
	}
	raw, err := hex.DecodeString(body.Proof)
	if err != nil {
		writeError(w, fmt.Errorf("provesvc: bad proof hex: %w", err))
		return
	}
	var proof groth16.Proof
	if err := proof.Deserialize(bytes.NewReader(raw), eng.Curve); err != nil {
		writeError(w, fmt.Errorf("provesvc: bad proof: %w", err))
		return
	}
	fr := eng.Curve.Fr
	public := make([]ff.Element, len(body.Public)+1)
	fr.One(&public[0])
	for i, v := range body.Public {
		if _, err := fr.SetString(&public[i+1], v); err != nil {
			writeError(w, fmt.Errorf("provesvc: public[%d]: %w", i, err))
			return
		}
	}
	valid, err := s.Verify(r.Context(), VerifyRequest{
		Curve:  body.Curve,
		Source: body.Circuit,
		Proof:  &proof,
		Public: public,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"valid": valid})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
