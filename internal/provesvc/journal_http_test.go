package provesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zkperf/internal/circuit"
)

// postJSONHeader is postJSON plus request headers.
func postJSONHeader(t *testing.T, url string, header http.Header, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func proveJobBody() map[string]any {
	return map[string]any{
		"kind":    "prove",
		"curve":   "bn128",
		"circuit": circuit.ExponentiateSource(16),
		"inputs":  map[string]string{"x": "3"},
	}
}

// TestHTTPJournalRestartServesOldResults: a proof finished before a
// clean restart stays pollable under its original ID afterwards, served
// from the journal with the original result bytes.
func TestHTTPJournalRestartServesOldResults(t *testing.T) {
	dir := t.TempDir()

	s1 := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17), WithJobJournal(dir))
	if err := s1.JobJournalError(); err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(NewHandler(s1))
	resp, out := postJSON(t, ts1.URL+"/v1/jobs", proveJobBody())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	final := pollJob(t, ts1.URL, id, 30*time.Second)
	if final["state"] != "done" {
		t.Fatalf("pre-restart job state = %v (body %v)", final["state"], final)
	}
	wantProof, _ := final["result"].(map[string]any)["proof"].(string)
	ts1.Close()
	s1.Shutdown(context.Background())

	s2 := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17), WithJobJournal(dir))
	if err := s2.JobJournalError(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(NewHandler(s2))
	defer ts2.Close()

	resp, out = getJSON(t, ts2.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK || out["state"] != "done" {
		t.Fatalf("post-restart GET = %d %v, want the finished job", resp.StatusCode, out)
	}
	if gotProof, _ := out["result"].(map[string]any)["proof"].(string); gotProof != wantProof {
		t.Fatalf("replayed proof differs from the one served before restart")
	}
	_, st := getJSON(t, ts2.URL+"/v1/stats")
	jblock, _ := st["jobs"].(map[string]any)
	journal, _ := jblock["journal"].(map[string]any)
	if journal == nil {
		t.Fatalf("/v1/stats jobs block has no journal sub-block: %v", jblock)
	}
	if replayed, _ := journal["replayed"].(float64); replayed != 1 {
		t.Errorf("journal.replayed = %v, want 1", journal["replayed"])
	}
}

// TestHTTPJournalCrashReexecutesQueued: a job accepted but never run
// (the service is constructed without Start, standing in for a process
// killed before any worker picked it up) is re-executed on the next
// boot and completes under its original ID. Also pins the Retry-After
// hint on polls of non-terminal jobs.
func TestHTTPJournalCrashReexecutesQueued(t *testing.T) {
	dir := t.TempDir()

	s1 := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17), WithJobJournal(dir))
	if err := s1.JobJournalError(); err != nil {
		t.Fatal(err)
	}
	// No Start(): the accepted record reaches the WAL, the job never runs.
	ts1 := httptest.NewServer(NewHandler(s1))
	resp, out := postJSON(t, ts1.URL+"/v1/jobs", proveJobBody())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	getResp, _ := getJSON(t, ts1.URL+"/v1/jobs/"+id)
	if ra := getResp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After on queued job = %q, want \"1\"", ra)
	}
	ts1.Close() // abandon s1 without Shutdown: the crash

	s2 := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17), WithJobJournal(dir))
	if err := s2.JobJournalError(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(NewHandler(s2))
	defer ts2.Close()

	final := pollJob(t, ts2.URL, id, 30*time.Second)
	if final["state"] != "done" {
		t.Fatalf("re-executed job state = %v (body %v)", final["state"], final)
	}
	if proof, _ := final["result"].(map[string]any)["proof"].(string); proof == "" {
		t.Fatalf("re-executed job has no proof: %v", final)
	}
	_, st := getJSON(t, ts2.URL+"/v1/stats")
	journal, _ := st["jobs"].(map[string]any)["journal"].(map[string]any)
	if reex, _ := journal["reexecuted"].(float64); reex != 1 {
		t.Errorf("journal.reexecuted = %v, want 1", journal["reexecuted"])
	}
	if ra := getResp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After hint = %q, want \"1\"", ra)
	}
}

// TestHTTPIdempotencyKey: resubmitting under the same Idempotency-Key
// returns the original job as 200 {"deduped":true}; distinct keys get
// distinct jobs; oversized keys are rejected outright.
func TestHTTPIdempotencyKey(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17), WithJobJournal(t.TempDir()))
	if err := s.JobJournalError(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	key := http.Header{"Idempotency-Key": {"req-abc"}}
	resp, out := postJSONHeader(t, ts.URL+"/v1/jobs", key, proveJobBody())
	if resp.StatusCode != http.StatusAccepted || out["deduped"] != nil {
		t.Fatalf("first submit = %d %v, want a plain 202", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)

	resp, out = postJSONHeader(t, ts.URL+"/v1/jobs", key, proveJobBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status = %d, want 200 (body %v)", resp.StatusCode, out)
	}
	if out["deduped"] != true || out["id"] != id {
		t.Fatalf("duplicate submit = %v, want deduped:true with the original ID %s", out, id)
	}

	resp, out = postJSONHeader(t, ts.URL+"/v1/jobs",
		http.Header{"Idempotency-Key": {"req-other"}}, proveJobBody())
	if resp.StatusCode != http.StatusAccepted || out["id"] == id {
		t.Fatalf("distinct key submit = %d %v, want a fresh 202", resp.StatusCode, out)
	}

	long := make([]byte, maxIdempotencyKey+1)
	for i := range long {
		long[i] = 'k'
	}
	resp, out = postJSONHeader(t, ts.URL+"/v1/jobs",
		http.Header{"Idempotency-Key": {string(long)}}, proveJobBody())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized key status = %d, want 400 (body %v)", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "bad_request", false)
}
