package provesvc

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// CircuitKey identifies a cached artifact set: the same circuit source on
// a different curve is a different key.
type CircuitKey struct {
	SourceHash [sha256.Size]byte
	Curve      string
}

// Artifact bundles everything the expensive front half of the workflow
// produces for one circuit — compiled constraint system, solver program,
// and the Groth16 keys — so the serving hot path is witness + prove only.
// Artifacts are immutable once published and shared across workers.
type Artifact struct {
	Key    CircuitKey
	Engine *groth16.Engine
	Sys    *r1cs.System
	Prog   *witness.Program
	PK     *groth16.ProvingKey
	VK     *groth16.VerifyingKey

	CompileTime time.Duration
	SetupTime   time.Duration
}

// registryEntry is the singleflight slot for one key: the first requester
// builds, everyone else waits on ready.
type registryEntry struct {
	ready chan struct{} // closed when art/err are set
	art   *Artifact
	err   error
}

// Registry caches {R1CS, ProvingKey, VerifyingKey} per (circuit-source
// hash, curve). Concurrent Gets for an uncached key are deduplicated:
// exactly one goroutine runs compile+setup, the rest block until it
// publishes. The build runs detached from the triggering request's
// context — a cancelled client must not poison the cache for the
// requests queued behind it.
type Registry struct {
	threads  int    // engine parallelism for setup and prove
	seedBase uint64 // toxic-waste RNG seed base
	seedCtr  atomic.Uint64

	mu      sync.Mutex
	entries map[CircuitKey]*registryEntry
	engines map[string]*groth16.Engine

	hits   atomic.Uint64
	misses atomic.Uint64
	setups atomic.Uint64 // actual compile+setup runs (the singleflight invariant)
}

// NewRegistry creates an empty registry. threads bounds the parallelism of
// the Groth16 engines it creates; seed seeds the setup RNGs (vary it in
// production, pin it for reproducible experiments).
func NewRegistry(threads int, seed uint64) *Registry {
	if threads < 1 {
		threads = 1
	}
	return &Registry{
		threads:  threads,
		seedBase: seed,
		entries:  make(map[CircuitKey]*registryEntry),
		engines:  make(map[string]*groth16.Engine),
	}
}

// Hits, Misses, and Setups expose the cache counters. A "hit" is any Get
// that found an entry, including waiters that piggybacked on an in-flight
// build; Setups counts actual compile+setup executions.
func (r *Registry) Hits() uint64   { return r.hits.Load() }
func (r *Registry) Misses() uint64 { return r.misses.Load() }
func (r *Registry) Setups() uint64 { return r.setups.Load() }

// EngineFor returns the shared Groth16 engine for a curve, creating it
// (generator tables included) on first use.
func (r *Registry) EngineFor(curveName string) (*groth16.Engine, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engineForLocked(curveName)
}

func (r *Registry) engineForLocked(curveName string) (*groth16.Engine, error) {
	if e, ok := r.engines[curveName]; ok {
		return e, nil
	}
	c := curve.NewCurve(curveName)
	if c == nil {
		return nil, fmt.Errorf("provesvc: unknown curve %q (use bn128 or bls12-381)", curveName)
	}
	e := groth16.NewEngine(c)
	e.Threads = r.threads
	r.engines[curveName] = e
	return e, nil
}

// Get returns the cached artifact for (curveName, source), building it on
// first use. ctx only bounds this caller's wait: an in-flight build keeps
// running for the benefit of other requesters even if ctx is cancelled.
func (r *Registry) Get(ctx context.Context, curveName, source string) (*Artifact, error) {
	key := CircuitKey{SourceHash: sha256.Sum256([]byte(source)), Curve: curveName}

	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		r.hits.Add(1)
		select {
		case <-e.ready:
			return e.art, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &registryEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()
	r.misses.Add(1)

	go r.build(key, curveName, source, e)

	select {
	case <-e.ready:
		return e.art, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build runs compile → setup for one key and publishes the result. Errors
// are cached too: compilation is deterministic, so every retry of a broken
// circuit would fail identically.
func (r *Registry) build(key CircuitKey, curveName, source string, e *registryEntry) {
	defer close(e.ready)

	eng, err := r.EngineFor(curveName)
	if err != nil {
		e.err = err
		return
	}

	r.setups.Add(1)
	t0 := time.Now()
	sys, prog, err := circuit.CompileSource(eng.Curve.Fr, source)
	if err != nil {
		e.err = fmt.Errorf("provesvc: compile: %w", err)
		return
	}
	compileTime := time.Since(t0)

	t1 := time.Now()
	rng := ff.NewRNG(mix64(r.seedBase + r.seedCtr.Add(1)))
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		e.err = fmt.Errorf("provesvc: setup: %w", err)
		return
	}

	e.art = &Artifact{
		Key:         key,
		Engine:      eng,
		Sys:         sys,
		Prog:        prog,
		PK:          pk,
		VK:          vk,
		CompileTime: compileTime,
		SetupTime:   time.Since(t1),
	}
}

// mix64 is SplitMix64's finalizer — it turns a sequential counter into a
// well-spread RNG seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
