package provesvc

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/faultinject"
	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// ErrUnknownCurve is returned for curve names the service does not know;
// the HTTP layer maps it to 400.
var ErrUnknownCurve = errors.New("provesvc: unknown curve")

// CircuitKey identifies a cached artifact set: the same circuit source on
// a different curve — or under a different proving backend — is a
// different key.
type CircuitKey struct {
	SourceHash [sha256.Size]byte
	Curve      string
	Backend    string
}

// Artifact bundles everything the expensive front half of the workflow
// produces for one circuit — compiled constraint system, solver program,
// and the backend's keys — so the serving hot path is witness + prove
// only. Artifacts are immutable once published and shared across workers.
type Artifact struct {
	Key     CircuitKey
	Backend backend.Backend
	Sys     *r1cs.System
	Prog    *witness.Program
	PK      backend.ProvingKey
	VK      backend.VerifyingKey

	CompileTime time.Duration
	SetupTime   time.Duration
}

// registryEntry is the singleflight slot for one key: the first requester
// builds, everyone else waits on ready.
type registryEntry struct {
	ready chan struct{} // closed when art/err are set
	art   *Artifact
	err   error
}

// Registry caches {R1CS, ProvingKey, VerifyingKey} per (circuit-source
// hash, curve, backend). Concurrent Gets for an uncached key are
// deduplicated: exactly one goroutine runs compile+setup, the rest block
// until it publishes. The build runs detached from the triggering
// request's context — a cancelled client must not poison the cache for
// the requests queued behind it.
type Registry struct {
	threads  int    // backend kernel parallelism for setup and prove
	seedBase uint64 // toxic-waste RNG seed base
	seedCtr  atomic.Uint64

	enabled map[string]bool // backend names this registry will serve

	store *artifactStore // nil: no persistence

	mu       sync.Mutex
	entries  map[CircuitKey]*registryEntry
	curves   map[string]*curve.Curve
	backends map[string]backend.Backend // keyed curve + "/" + backend

	hits   atomic.Uint64
	misses atomic.Uint64
	setups atomic.Uint64 // actual compile+setup runs (the singleflight invariant)
}

// NewRegistry creates an empty registry serving the named backends (nil
// means every registered backend). threads bounds the parallelism of the
// backends it creates; seed seeds the setup RNGs (vary it in production,
// pin it for reproducible experiments).
func NewRegistry(threads int, seed uint64, backends []string) *Registry {
	if threads < 1 {
		threads = 1
	}
	if len(backends) == 0 {
		backends = backend.Names()
	}
	enabled := make(map[string]bool, len(backends))
	for _, name := range backends {
		enabled[name] = true
	}
	return &Registry{
		threads:  threads,
		seedBase: seed,
		enabled:  enabled,
		entries:  make(map[CircuitKey]*registryEntry),
		curves:   make(map[string]*curve.Curve),
		backends: make(map[string]backend.Backend),
	}
}

// SetArtifactDir attaches a crash-safe disk store under dir: setup
// artifacts are persisted on build and reloaded (checksum-verified,
// corrupt files quarantined) instead of re-running setup. Must be called
// before the registry serves requests. Disk loads ride the same
// singleflight slots as compiles, so a cold key is read at most once.
func (r *Registry) SetArtifactDir(dir string) error {
	st, err := newArtifactStore(dir)
	if err != nil {
		return err
	}
	// Fixed-base generator tables persist beside the keys, under their own
	// subdirectory: same crash-safety discipline, one more restart cost
	// amortized to zero.
	if err := curve.SetTableDir(filepath.Join(dir, "tables")); err != nil {
		return err
	}
	r.store = st
	return nil
}

// ArtifactStats reports the disk store's counters (zero-valued when no
// artifact dir is configured).
func (r *Registry) ArtifactStats() ArtifactStats { return r.store.stats() }

// Hits, Misses, and Setups expose the cache counters. A "hit" is any Get
// that found an entry, including waiters that piggybacked on an in-flight
// build; Setups counts actual compile+setup executions.
func (r *Registry) Hits() uint64   { return r.hits.Load() }
func (r *Registry) Misses() uint64 { return r.misses.Load() }
func (r *Registry) Setups() uint64 { return r.setups.Load() }

// Backends returns the backend names this registry serves.
func (r *Registry) Backends() []string {
	out := make([]string, 0, len(r.enabled))
	for _, name := range backend.Names() {
		if r.enabled[name] {
			out = append(out, name)
		}
	}
	return out
}

// backendEnabled reports whether name is served (cheap, lock-free: the
// enabled set is fixed at construction).
func (r *Registry) backendEnabled(name string) bool { return r.enabled[name] }

// CurveFor returns the shared curve context for a name, creating it
// (generator tables included) on first use.
func (r *Registry) CurveFor(curveName string) (*curve.Curve, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curveForLocked(curveName)
}

func (r *Registry) curveForLocked(curveName string) (*curve.Curve, error) {
	if c, ok := r.curves[curveName]; ok {
		return c, nil
	}
	c := curve.NewCurve(curveName)
	if c == nil {
		return nil, fmt.Errorf("%w %q (use bn128 or bls12-381)", ErrUnknownCurve, curveName)
	}
	r.curves[curveName] = c
	return c, nil
}

// BackendFor returns the shared backend instance for (curve, backend),
// creating it on first use. Unknown or disabled backend names fail with
// backend.ErrUnknownBackend.
func (r *Registry) BackendFor(curveName, backendName string) (backend.Backend, error) {
	if !r.enabled[backendName] {
		return nil, fmt.Errorf("%w %q (serving: %v)", backend.ErrUnknownBackend, backendName, r.Backends())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := curveName + "/" + backendName
	if bk, ok := r.backends[id]; ok {
		return bk, nil
	}
	c, err := r.curveForLocked(curveName)
	if err != nil {
		return nil, err
	}
	bk, err := backend.New(backendName, c, r.threads)
	if err != nil {
		return nil, err
	}
	r.backends[id] = bk
	return bk, nil
}

// Get returns the cached artifact for (curveName, backendName, source),
// building it on first use. ctx only bounds this caller's wait: an
// in-flight build keeps running for the benefit of other requesters even
// if ctx is cancelled.
func (r *Registry) Get(ctx context.Context, curveName, backendName, source string) (*Artifact, error) {
	key := CircuitKey{
		SourceHash: sha256.Sum256([]byte(source)),
		Curve:      curveName,
		Backend:    backendName,
	}

	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		r.hits.Add(1)
		select {
		case <-e.ready:
			return e.art, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &registryEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()
	r.misses.Add(1)

	go r.build(key, curveName, backendName, source, e)

	select {
	case <-e.ready:
		return e.art, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build runs compile → setup for one key and publishes the result. Errors
// are cached too: compilation is deterministic, so every retry of a
// broken circuit would fail identically. build runs on a detached
// goroutine, so a panicking backend must be caught here — it becomes the
// entry's error (wrapping ErrInternal), never a process crash.
func (r *Registry) build(key CircuitKey, curveName, backendName, source string, e *registryEntry) {
	defer close(e.ready)
	defer func() {
		if rec := recover(); rec != nil {
			e.err = fmt.Errorf("%w: setup panic: %v", ErrInternal, rec)
		}
	}()

	bk, err := r.BackendFor(curveName, backendName)
	if err != nil {
		e.err = err
		return
	}

	t0 := time.Now()
	sys, prog, err := circuit.CompileSource(bk.Curve().Fr, source)
	if err != nil {
		e.err = fmt.Errorf("provesvc: compile: %w", err)
		return
	}
	compileTime := time.Since(t0)

	art := &Artifact{
		Key:         key,
		Backend:     bk,
		Sys:         sys,
		Prog:        prog,
		CompileTime: compileTime,
	}

	// A persisted artifact skips the expensive setup entirely — the point
	// of the disk store. Corrupt or mismatched files quarantine inside
	// load and fall through to a fresh setup.
	if r.store != nil {
		if pk, vk, ok := r.store.load(context.Background(), key, bk, sys); ok {
			art.PK, art.VK = pk, vk
			e.art = art
			return
		}
	}

	if err := faultinject.Point(context.Background(), faultinject.PointBackendSetup); err != nil {
		e.err = fmt.Errorf("provesvc: setup: %w", err)
		return
	}
	r.setups.Add(1)
	t1 := time.Now()
	rng := ff.NewRNG(mix64(r.seedBase + r.seedCtr.Add(1)))
	pk, vk, err := bk.Setup(context.Background(), sys, rng)
	if err != nil {
		e.err = fmt.Errorf("provesvc: setup: %w", err)
		return
	}
	art.PK, art.VK = pk, vk
	art.SetupTime = time.Since(t1)

	if r.store != nil {
		// Persistence is best-effort: a failed write is counted in the
		// store's stats but never fails the build that produced the keys.
		r.store.save(context.Background(), key, pk, vk)
	}
	e.art = art
}

// mix64 is SplitMix64's finalizer — it turns a sequential counter into a
// well-spread RNG seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
