package provesvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zkperf/internal/circuit"
)

// deleteJSON issues a DELETE and decodes the JSON reply.
func deleteJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// pollJob polls GET /v1/jobs/{id} until the state is terminal or the
// deadline passes, returning the last status body.
func pollJob(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, out := getJSON(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status = %d, body %v", resp.StatusCode, out)
		}
		if st, _ := out["state"].(string); st == "done" || st == "failed" {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %v: %v", id, timeout, out)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHTTPJobsLifecycle drives the async happy path: a prove job runs
// through queued→running→done and its result is the same reply the
// synchronous endpoint returns; a verify job consumes that proof.
func TestHTTPJobsLifecycle(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(17))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	resp, out := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"kind":    "prove",
		"curve":   "bn128",
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (body %v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("submit reply has no job id: %v", out)
	}
	if st := out["state"]; st != "queued" && st != "running" {
		t.Errorf("submit state = %v, want queued or running", st)
	}

	final := pollJob(t, ts.URL, id, 30*time.Second)
	if final["state"] != "done" {
		t.Fatalf("job state = %v, want done (body %v)", final["state"], final)
	}
	result, _ := final["result"].(map[string]any)
	proofHex, _ := result["proof"].(string)
	if proofHex == "" {
		t.Fatalf("done job has no proof in result: %v", final)
	}
	public, _ := result["public"].([]any)
	if len(public) != 1 || public[0] != "43046721" {
		t.Errorf("job result public = %v, want [43046721]", public)
	}
	if runMs, _ := final["run_ms"].(float64); runMs <= 0 {
		t.Errorf("run_ms = %v, want > 0 for an executed job", final["run_ms"])
	}

	// A verify job consumes the async proof; kind defaults stay explicit.
	resp, out = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"kind":    "verify",
		"curve":   "bn128",
		"circuit": src,
		"proof":   proofHex,
		"public":  []string{"43046721"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("verify submit status = %d (body %v)", resp.StatusCode, out)
	}
	final = pollJob(t, ts.URL, out["id"].(string), 30*time.Second)
	if final["state"] != "done" {
		t.Fatalf("verify job state = %v (body %v)", final["state"], final)
	}
	if result, _ := final["result"].(map[string]any); result["valid"] != true {
		t.Errorf("verify job result = %v, want valid", final["result"])
	}

	// Stats carry the jobs block.
	_, st := getJSON(t, ts.URL+"/v1/stats")
	jobsBlock, _ := st["jobs"].(map[string]any)
	if jobsBlock == nil {
		t.Fatalf("/v1/stats has no jobs block: %v", st)
	}
	if completed, _ := jobsBlock["completed"].(float64); completed != 2 {
		t.Errorf("jobs.completed = %v, want 2", jobsBlock["completed"])
	}

	// Unknown kinds are a 400 envelope, not a queued failure.
	resp, out = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "transmute", "circuit": src})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind status = %d, want 400", resp.StatusCode)
	}
	wantEnvelope(t, out, "bad_request", false)
}

// TestHTTPJobsTTLEviction is the acceptance check that finished jobs
// expire: after the TTL the sweeper evicts the result and GET answers
// 404 job_not_found.
func TestHTTPJobsTTLEviction(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(8), WithSeed(17),
		WithJobTTL(100*time.Millisecond, 10*time.Millisecond))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, out := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"circuit": circuit.ExponentiateSource(16),
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %v)", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if final := pollJob(t, ts.URL, id, 30*time.Second); final["state"] != "done" {
		t.Fatalf("job state = %v, want done", final["state"])
	}

	// The retained result must disappear within a few TTLs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out = getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still retrievable long after TTL: %v", id, out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	wantEnvelope(t, out, "job_not_found", false)

	_, st := getJSON(t, ts.URL+"/v1/stats")
	jobsBlock, _ := st["jobs"].(map[string]any)
	if evicted, _ := jobsBlock["evicted"].(float64); evicted < 1 {
		t.Errorf("jobs.evicted = %v, want >= 1", jobsBlock["evicted"])
	}
}

// TestHTTPJobsCancelMidRun cancels a running prove via DELETE and holds
// it to the PR 1 cancellation-latency bound: the job must reach the
// failed state far sooner than a full prove takes, with the canceled
// envelope embedded.
func TestHTTPJobsCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size prove")
	}
	s := New(WithWorkers(1), WithQueueDepth(8), WithSeed(17))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(2048)
	body := map[string]any{
		"circuit": src,
		"inputs":  map[string]string{"x": "3"},
	}
	// Baseline sync prove: pays compile+setup and measures a full prove,
	// so the async job below starts from a warm cache.
	t0 := time.Now()
	if resp, out := postJSON(t, ts.URL+"/v1/prove", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline prove status = %d (body %v)", resp.StatusCode, out)
	}
	full := time.Since(t0)

	resp, out := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %v)", resp.StatusCode, out)
	}
	id := out["id"].(string)

	// Wait for the job to actually be proving, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if st["state"] == "running" {
			break
		}
		if st["state"] == "done" || st["state"] == "failed" {
			t.Fatalf("job finished before it could be cancelled (%v) — circuit too small for this test", st["state"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t1 := time.Now()
	if resp, out := deleteJSON(t, ts.URL+"/v1/jobs/"+id); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d (body %v)", resp.StatusCode, out)
	}
	final := pollJob(t, ts.URL, id, 30*time.Second)
	aborted := time.Since(t1)
	if final["state"] != "failed" {
		t.Fatalf("cancelled job state = %v, want failed (body %v)", final["state"], final)
	}
	envAny, _ := final["error"].(map[string]any)
	if envAny == nil || envAny["code"] != "canceled" {
		t.Fatalf("cancelled job error = %v, want canceled envelope", final["error"])
	}
	// Same promptness bound as the worker-side cancellation test: the
	// prove must let go long before a full run.
	if aborted > full/2+50*time.Millisecond {
		t.Errorf("job reached failed %v after cancel, full prove takes %v — cancellation not prompt", aborted, full)
	}

	// Cancelling a finished job is idempotent: same terminal reply.
	if resp, out := deleteJSON(t, ts.URL+"/v1/jobs/"+id); resp.StatusCode != http.StatusOK || out["state"] != "failed" {
		t.Errorf("second cancel: status %d state %v, want 200 failed", resp.StatusCode, out["state"])
	}
}

// TestHTTPJobsRetryAfter checks the shed path: when the async job table
// is full, submits answer 429 too_many_jobs with a Retry-After hint.
func TestHTTPJobsRetryAfter(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(8), WithSeed(17), WithJobMaxActive(1))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// One slow job occupies the single slot.
	resp, out := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"circuit": circuit.ExponentiateSource(1024),
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d (body %v)", resp.StatusCode, out)
	}
	blocker := out["id"].(string)

	resp, out = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"circuit": circuit.ExponentiateSource(16),
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %d, want 429 (body %v)", resp.StatusCode, out)
	}
	wantEnvelope(t, out, "too_many_jobs", true)
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 too_many_jobs response missing Retry-After header")
	} else if secs, err := time.ParseDuration(ra + "s"); err != nil || secs < time.Second {
		t.Errorf("Retry-After = %q, want an integer >= 1 second", ra)
	}

	if final := pollJob(t, ts.URL, blocker, 60*time.Second); final["state"] != "done" {
		t.Fatalf("blocker job state = %v, want done (body %v)", final["state"], final)
	}
}

// TestHTTPJobsSurviveSubmitterDisconnect pins the detachment contract:
// the job context is not the HTTP request context, so a submitter that
// vanishes right after the 202 does not cancel its job.
func TestHTTPJobsSurviveSubmitterDisconnect(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(8), WithSeed(17))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Submit on a connection that dies as soon as the 202 lands.
	body := fmt.Sprintf(`{"circuit":%q,"inputs":{"x":"3"}}`, circuit.ExponentiateSource(256))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Close = true // no keep-alive: the connection dies with the response
	httpClient := &http.Client{}
	resp, err := httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	httpClient.CloseIdleConnections()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %v)", resp.StatusCode, out)
	}

	final := pollJob(t, ts.URL, out["id"].(string), 60*time.Second)
	if final["state"] != "done" {
		t.Fatalf("job state after submitter disconnect = %v, want done (body %v)", final["state"], final)
	}
}
