// Workload-aware scheduling: the serving-layer answer to the paper's
// scalability analysis (Figs. 6–7). Two levers are tuned at runtime from
// the observed workload instead of being fixed at boot:
//
//  1. Worker placement. Per-circuit arrival rates are tracked with
//     exponentially-decayed counters; circuits whose rate crosses a
//     threshold are classified hot and get dedicated workers fed from a
//     private queue, while cold circuits share the residual pool. A hot
//     circuit's jobs never wait behind a burst of cold one-off circuits
//     (each of which may pay a full compile+setup), which is what drags
//     hot p99 under mixed load. Reservation is work-conserving: a
//     reserved worker with an empty hot queue steals cold work, but cold
//     workers never serve hot queues — so the cold pool can shrink but a
//     configured floor of workers always remains cold-capable.
//
//  2. Thread split. The kernel thread budget B is divided between
//     intra-job parallelism and inter-job concurrency from live queue
//     depth: each job starting on a worker is granted
//     clamp(B/min(inflight+queued, workers), 1, B) kernel threads,
//     carried to the NTT/MSM kernels via parallel.WithThreadBudget. A
//     deep queue runs many jobs × few threads (throughput); an idle
//     service runs one job × the full budget (latency) — the
//     1×N-vs-N×1 trade-off the paper quantifies, chosen per job.
//
// The scheduler also keeps a decayed queue-drain-rate counter that the
// HTTP layer uses to derive Retry-After hints for queue_full and
// too_many_jobs from how fast the queue is actually emptying.
package provesvc

import (
	"encoding/hex"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WorkloadConfig tunes the workload-aware scheduler (WithWorkloadSched).
// The zero value of any field picks its default.
type WorkloadConfig struct {
	// Enabled turns on hot-circuit worker reservation and per-job thread
	// grants. Arrival/drain-rate accounting runs either way (it is cheap
	// and powers Retry-After hints and the sched stats block).
	Enabled bool
	// ThreadBudget is the kernel thread budget split across in-flight
	// jobs (default GOMAXPROCS). With the scheduler disabled each job
	// runs at the registry's static proveThreads instead.
	ThreadBudget int
	// HotMinRate is the decayed arrival rate (req/s) at or above which a
	// circuit is classified hot (default 0.5/s).
	HotMinRate float64
	// ReservePerHot is how many dedicated workers each hot circuit gets
	// (default 1).
	ReservePerHot int
	// MaxHot caps the number of simultaneously hot circuits (default:
	// as many as the worker pool can reserve for while keeping
	// MinColdWorkers cold).
	MaxHot int
	// MinColdWorkers is the floor of workers that always remain
	// unreserved (default 1) so cold circuits can never be starved
	// outright by reservations.
	MinColdWorkers int
	// ColdSteal lets a reserved worker take cold work while its hot
	// queue is idle. Off by default: a stolen cold job head-of-line
	// blocks the next hot arrival for the cold job's full duration —
	// with heavy cold circuits that is precisely the tail the
	// reservation exists to cut. Enable it to trade hot p99 back for
	// throughput when hot traffic is too sparse to keep its workers busy.
	ColdSteal bool
	// HalfLife is the decay half-life of the arrival- and drain-rate
	// counters (default 10s): a circuit that stops arriving loses half
	// its score every HalfLife.
	HalfLife time.Duration
	// Reclassify is the classifier cadence (default 500ms).
	Reclassify time.Duration
	// HotQueueDepth bounds each hot circuit's private queue (default:
	// the service queue depth). A full hot queue sheds with queue_full,
	// same as the shared queue.
	HotQueueDepth int
}

func (wc WorkloadConfig) withDefaults(workers int) WorkloadConfig {
	if wc.ThreadBudget < 1 {
		wc.ThreadBudget = runtime.GOMAXPROCS(0)
	}
	if wc.HotMinRate <= 0 {
		wc.HotMinRate = 0.5
	}
	if wc.ReservePerHot < 1 {
		wc.ReservePerHot = 1
	}
	if wc.MinColdWorkers < 1 {
		wc.MinColdWorkers = 1
	}
	if wc.MinColdWorkers > workers {
		wc.MinColdWorkers = workers
	}
	maxHot := (workers - wc.MinColdWorkers) / wc.ReservePerHot
	if wc.MaxHot < 1 || wc.MaxHot > maxHot {
		wc.MaxHot = maxHot // may be 0: a tiny pool reserves nothing
	}
	if wc.HalfLife <= 0 {
		wc.HalfLife = 10 * time.Second
	}
	if wc.Reclassify <= 0 {
		wc.Reclassify = 500 * time.Millisecond
	}
	return wc
}

// rateCounter is an exponentially-decayed event counter: each event adds
// 1 to a score that halves every HalfLife. At a steady event rate λ the
// score converges to λ·h/ln2, so rate() = score·ln2/h recovers λ.
type rateCounter struct {
	mu    sync.Mutex
	score float64
	last  time.Time
}

func (r *rateCounter) decayLocked(now time.Time, halfLife time.Duration) {
	if !r.last.IsZero() {
		if dt := now.Sub(r.last); dt > 0 {
			r.score *= math.Exp2(-float64(dt) / float64(halfLife))
		}
	}
	r.last = now
}

func (r *rateCounter) observe(now time.Time, halfLife time.Duration) {
	r.mu.Lock()
	r.decayLocked(now, halfLife)
	r.score++
	r.mu.Unlock()
}

func (r *rateCounter) rate(now time.Time, halfLife time.Duration) float64 {
	r.mu.Lock()
	r.decayLocked(now, halfLife)
	v := r.score
	r.mu.Unlock()
	return v * math.Ln2 / halfLife.Seconds()
}

// rateMap tracks one rateCounter per circuit, pruning entries whose
// score has decayed to noise so one-off circuits don't accumulate.
type rateMap struct {
	mu sync.Mutex
	m  map[CircuitKey]*rateCounter
}

func (rm *rateMap) observe(key CircuitKey, now time.Time, halfLife time.Duration) {
	rm.mu.Lock()
	if rm.m == nil {
		rm.m = make(map[CircuitKey]*rateCounter)
	}
	rc := rm.m[key]
	if rc == nil {
		rc = &rateCounter{}
		rm.m[key] = rc
	}
	rm.mu.Unlock()
	rc.observe(now, halfLife)
}

// rates snapshots every circuit's current rate, dropping counters whose
// score decayed below pruning noise.
func (rm *rateMap) rates(now time.Time, halfLife time.Duration) map[CircuitKey]float64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make(map[CircuitKey]float64, len(rm.m))
	for key, rc := range rm.m {
		rc.mu.Lock()
		rc.decayLocked(now, halfLife)
		score := rc.score
		rc.mu.Unlock()
		if score < 1e-3 {
			delete(rm.m, key)
			continue
		}
		out[key] = score * math.Ln2 / halfLife.Seconds()
	}
	return out
}

// hotQueue is one hot circuit's private job queue. demoted is guarded by
// scheduler.mu: once set, offer() routes the circuit cold again, so the
// demotion mover that drains residual jobs can terminate on empty.
type hotQueue struct {
	key     CircuitKey
	ch      chan *job
	rate    float64 // last classified rate, guarded by scheduler.mu
	demoted bool    // guarded by scheduler.mu
}

// workPlan is one epoch of worker assignments, swapped atomically on
// reclassification. changed is closed when the plan is superseded so
// workers blocked on a stale queue re-read their assignment.
type workPlan struct {
	epoch       uint64
	changed     chan struct{}
	hotByWorker []*hotQueue // len == workers; nil → cold worker
	hotQueues   []*hotQueue // distinct hot queues, rate-descending
	reserved    int
}

func (p *workPlan) hotFor(id int) *hotQueue {
	if id >= 0 && id < len(p.hotByWorker) {
		return p.hotByWorker[id]
	}
	return nil
}

// scheduler owns routing, classification and thread-splitting for one
// Service. It always exists — even disabled it books arrival and drain
// rates — but only an enabled scheduler reserves workers or grants
// per-job thread budgets.
type scheduler struct {
	svc     *Service
	cfg     WorkloadConfig
	workers int
	now     func() time.Time // injectable clock for tests

	arrivals   rateMap
	drain      rateCounter
	grantHist  sizeHistogram
	promotions atomic.Uint64
	demotions  atomic.Uint64

	mu   sync.Mutex // guards hot + routing sends + plan rebuilds
	hot  map[CircuitKey]*hotQueue
	plan atomic.Pointer[workPlan]

	stopOnce sync.Once
	stopCh   chan struct{}
	tickerWG sync.WaitGroup
	moverWG  sync.WaitGroup
}

func newScheduler(svc *Service, wc WorkloadConfig) *scheduler {
	sc := &scheduler{
		svc:     svc,
		cfg:     wc.withDefaults(svc.cfg.workers),
		workers: svc.cfg.workers,
		now:     time.Now,
		hot:     make(map[CircuitKey]*hotQueue),
		stopCh:  make(chan struct{}),
	}
	if sc.cfg.HotQueueDepth < 1 {
		sc.cfg.HotQueueDepth = svc.cfg.queueDepth
	}
	sc.plan.Store(&workPlan{
		changed:     make(chan struct{}),
		hotByWorker: make([]*hotQueue, sc.workers),
	})
	return sc
}

// start launches the reclassification ticker (enabled schedulers only).
func (sc *scheduler) start() {
	if !sc.cfg.Enabled {
		return
	}
	sc.tickerWG.Add(1)
	go func() {
		defer sc.tickerWG.Done()
		t := time.NewTicker(sc.cfg.Reclassify)
		defer t.Stop()
		for {
			select {
			case <-sc.stopCh:
				return
			case <-t.C:
				sc.reclassify()
			}
		}
	}()
}

// stop halts the classifier; safe to call more than once. Movers are
// waited for separately (moverWait) because they need s.done closed to
// unblock their cold-queue sends.
func (sc *scheduler) stop() {
	sc.stopOnce.Do(func() { close(sc.stopCh) })
	sc.tickerWG.Wait()
}

func (sc *scheduler) moverWait() { sc.moverWG.Wait() }

// observeArrival books one offered request against the circuit's decayed
// rate counter. Called on every admission attempt, accepted or shed —
// rejections are still demand.
func (sc *scheduler) observeArrival(key CircuitKey) {
	sc.arrivals.observe(key, sc.now(), sc.cfg.HalfLife)
}

// observeDrain books one job leaving a queue for a worker — the queue
// drain events that Retry-After hints are derived from.
func (sc *scheduler) observeDrain() {
	sc.drain.observe(sc.now(), sc.cfg.HalfLife)
}

// offer routes an admitted job to its queue — the circuit's private hot
// queue when one exists, the shared cold queue otherwise — with a
// non-blocking send. false means the chosen queue was full and the
// caller sheds with ErrQueueFull. Routing and the send happen under
// sc.mu so no send can land on a hot queue after its demotion mover
// observed it (reclassify marks demoted under the same lock).
func (sc *scheduler) offer(j *job) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	ch := sc.svc.jobs
	if hq := sc.hot[j.key]; hq != nil && !hq.demoted {
		ch = hq.ch
	}
	select {
	case ch <- j:
		return true
	default:
		return false
	}
}

// queuedTotal is the live queued-but-not-started count across the cold
// queue and every hot queue in the current plan.
func (sc *scheduler) queuedTotal() int {
	n := len(sc.svc.jobs)
	for _, hq := range sc.plan.Load().hotQueues {
		n += len(hq.ch)
	}
	return n
}

// grantThreads picks the kernel thread budget for a job about to start:
// split the budget evenly over current demand (in-flight + queued,
// clamped to the worker count — queue beyond the pool can't run anyway).
// Returns 0 when the scheduler is disabled (callers then leave the
// engine's static thread count in force).
func (sc *scheduler) grantThreads() int {
	if !sc.cfg.Enabled {
		return 0
	}
	demand := int(sc.svc.met.inFlight.Load()) + sc.queuedTotal()
	if demand < 1 {
		demand = 1
	}
	if demand > sc.workers {
		demand = sc.workers
	}
	g := sc.cfg.ThreadBudget / demand
	if g < 1 {
		g = 1
	}
	sc.grantHist.Observe(g)
	return g
}

// reclassify recomputes the hot set from current arrival rates and
// swaps in a new worker plan. Demoted circuits get a mover goroutine
// that migrates their residual queued jobs to the cold queue.
func (sc *scheduler) reclassify() {
	rates := sc.arrivals.rates(sc.now(), sc.cfg.HalfLife)

	sc.mu.Lock()
	// Desired hot set: rate ≥ threshold, top MaxHot by rate. Ties break
	// on the key hash so the classification is deterministic. Hysteresis:
	// an already-hot circuit stays a candidate down to half the promote
	// threshold, so rates hovering near the boundary don't thrash the
	// plan (every swap costs a mover and a round of worker retargeting).
	type cand struct {
		key  CircuitKey
		rate float64
	}
	var cands []cand
	for key, r := range rates {
		min := sc.cfg.HotMinRate
		if _, isHot := sc.hot[key]; isHot {
			min /= 2
		}
		if r >= min {
			cands = append(cands, cand{key, r})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rate != cands[j].rate {
			return cands[i].rate > cands[j].rate
		}
		return bytesLess(cands[i].key.SourceHash[:], cands[j].key.SourceHash[:])
	})
	if len(cands) > sc.cfg.MaxHot {
		cands = cands[:sc.cfg.MaxHot]
	}
	desired := make(map[CircuitKey]float64, len(cands))
	for _, c := range cands {
		desired[c.key] = c.rate
	}

	changed := false
	for key, hq := range sc.hot {
		if _, keep := desired[key]; !keep {
			// Demote under the same lock offer() routes under: after this
			// point no job can be sent to hq.ch, so the mover below owns
			// its drain to completion.
			hq.demoted = true
			delete(sc.hot, key)
			sc.demotions.Add(1)
			sc.moverWG.Add(1)
			go sc.drainDemoted(hq)
			changed = true
		}
	}
	for key, rate := range desired {
		if hq := sc.hot[key]; hq != nil {
			hq.rate = rate
			continue
		}
		sc.hot[key] = &hotQueue{key: key, ch: make(chan *job, sc.cfg.HotQueueDepth), rate: rate}
		sc.promotions.Add(1)
		changed = true
	}
	if changed {
		sc.rebuildPlanLocked()
	}
	sc.mu.Unlock()
}

// rebuildPlanLocked publishes a new worker-assignment epoch and wakes
// workers blocked under the old one. Caller holds sc.mu.
func (sc *scheduler) rebuildPlanLocked() {
	old := sc.plan.Load()
	plan := &workPlan{
		epoch:       old.epoch + 1,
		changed:     make(chan struct{}),
		hotByWorker: make([]*hotQueue, sc.workers),
	}
	queues := make([]*hotQueue, 0, len(sc.hot))
	for _, hq := range sc.hot {
		queues = append(queues, hq)
	}
	sort.Slice(queues, func(i, j int) bool {
		if queues[i].rate != queues[j].rate {
			return queues[i].rate > queues[j].rate
		}
		return bytesLess(queues[i].key.SourceHash[:], queues[j].key.SourceHash[:])
	})
	plan.hotQueues = queues
	// Reserve ReservePerHot workers per hot circuit, hottest first, never
	// dipping below the cold floor. withDefaults caps MaxHot so every hot
	// circuit gets at least one worker — a hot queue nobody reads would
	// strand jobs.
	maxReserved := sc.workers - sc.cfg.MinColdWorkers
	w := 0
	for _, hq := range queues {
		for r := 0; r < sc.cfg.ReservePerHot && w < maxReserved; r++ {
			plan.hotByWorker[w] = hq
			w++
		}
	}
	plan.reserved = w
	sc.plan.Store(plan)
	close(old.changed) // wake workers parked on the stale plan
}

// drainDemoted migrates a demoted circuit's residual queued jobs to the
// cold queue. No new sends can land on hq.ch (offer checks demoted under
// sc.mu), so draining to empty terminates. A full cold queue blocks the
// mover until workers make room; a job whose deadline fires meanwhile
// fails like any queued expiry, and shutdown drops the rest.
func (sc *scheduler) drainDemoted(hq *hotQueue) {
	defer sc.moverWG.Done()
	s := sc.svc
	for {
		select {
		case j := <-hq.ch:
			select {
			case s.jobs <- j:
			case <-j.ctx.Done():
				s.breaker.release(j.key) // never ran
				s.fail(j, j.ctx.Err())
			case <-s.done:
				s.met.dropped.Add(1)
				s.breaker.release(j.key)
				j.finish(nil, ErrDropped)
			}
		default:
			return
		}
	}
}

// workerLoop is one worker's scheduling loop. A reserved worker serves
// only its hot queue (or, under ColdSteal, prefers it but takes cold
// work while it is idle); a cold worker only ever serves the shared
// queue, so hot bursts cannot starve cold circuits past the reservation
// cap. A plan swap closes the old plan's changed channel, bouncing
// blocked workers back to re-read their assignment.
func (sc *scheduler) workerLoop(id int) {
	s := sc.svc
	for {
		plan := sc.plan.Load()
		hq := plan.hotFor(id)
		if hq == nil {
			select {
			case <-s.done:
				return
			case <-plan.changed:
				continue
			case j := <-s.jobs:
				s.run(j)
			}
			continue
		}
		if !sc.cfg.ColdSteal {
			// Strictly dedicated: idle until hot work arrives, so a hot
			// job never queues behind a long cold job this worker picked
			// up moments earlier.
			select {
			case <-s.done:
				return
			case <-plan.changed:
				continue
			case j := <-hq.ch:
				s.run(j)
			}
			continue
		}
		// Hot-first steal: never pick up cold work while dedicated work
		// waits, but don't idle while the cold queue is deep.
		select {
		case j := <-hq.ch:
			s.run(j)
			continue
		default:
		}
		select {
		case <-s.done:
			return
		case <-plan.changed:
			continue
		case j := <-hq.ch:
			s.run(j)
		case j := <-s.jobs:
			s.run(j)
		}
	}
}

// sweep discards every job still sitting in the cold queue or a live hot
// queue, failing each with ErrDropped; Shutdown calls it before and
// after the worker drain. Demoted queues are not swept here — their
// movers fully drain them (a closed s.done turns residual moves into
// drops) before moverWait returns.
func (sc *scheduler) sweep(rep *DrainReport) {
	s := sc.svc
	sc.mu.Lock()
	queues := make([]chan *job, 0, len(sc.hot)+1)
	queues = append(queues, s.jobs)
	for _, hq := range sc.hot {
		queues = append(queues, hq.ch)
	}
	sc.mu.Unlock()
	for _, ch := range queues {
		for {
			select {
			case j := <-ch:
				s.met.dropped.Add(1)
				if rep != nil {
					rep.Dropped++
				}
				s.breaker.release(j.key) // never ran: hand back its admission
				j.finish(nil, ErrDropped)
			default:
			}
			if len(ch) == 0 {
				break
			}
		}
	}
}

// retryAfterHint derives a Retry-After for queue-saturation sheds from
// the observed drain rate: with depth jobs queued and the queue draining
// at r jobs/s, a slot frees in about depth/r seconds. Returns false when
// no drain has been observed recently (callers fall back to a flat
// constant).
func (sc *scheduler) retryAfterHint() (time.Duration, bool) {
	rate := sc.drain.rate(sc.now(), sc.cfg.HalfLife)
	if rate < 0.01 {
		return 0, false
	}
	depth := sc.queuedTotal()
	if depth < 1 {
		depth = 1
	}
	d := time.Duration(float64(depth) / rate * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d, true
}

// stats snapshots the sched block of /v1/stats.
func (sc *scheduler) stats() SchedStats {
	now := sc.now()
	plan := sc.plan.Load()
	st := SchedStats{
		Enabled:         sc.cfg.Enabled,
		ThreadBudget:    sc.cfg.ThreadBudget,
		Workers:         sc.workers,
		ReservedWorkers: plan.reserved,
		ColdWorkers:     sc.workers - plan.reserved,
		HotMinRate:      sc.cfg.HotMinRate,
		ColdQueueDepth:  len(sc.svc.jobs),
		Promotions:      sc.promotions.Load(),
		Demotions:       sc.demotions.Load(),
		DrainRatePerSec: sc.drain.rate(now, sc.cfg.HalfLife),
		ThreadGrant:     sc.grantHist.summary(),
	}
	reservedFor := make(map[*hotQueue]int)
	for _, hq := range plan.hotByWorker {
		if hq != nil {
			reservedFor[hq]++
		}
	}
	for _, r := range sc.arrivals.rates(now, sc.cfg.HalfLife) {
		st.ArrivalRatePerSec += r
	}
	for _, hq := range plan.hotQueues {
		sc.mu.Lock()
		rate := hq.rate
		sc.mu.Unlock()
		st.Hot = append(st.Hot, HotCircuit{
			Circuit:    hex.EncodeToString(hq.key.SourceHash[:8]),
			Backend:    hq.key.Backend,
			Curve:      hq.key.Curve,
			RatePerSec: rate,
			Reserved:   reservedFor[hq],
			QueueDepth: len(hq.ch),
		})
		st.HotQueueDepth += len(hq.ch)
	}
	st.HotCount = len(st.Hot)
	return st
}

func bytesLess(a, b []byte) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
