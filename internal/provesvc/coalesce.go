package provesvc

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"time"
)

// coalescer opportunistically folds concurrent single /v1/verify calls
// for the same circuit into one batched pairing check, so single-verify
// callers get the shared-final-exponentiation amortization for free at
// high QPS. A request waits at most window for company; a group flushes
// early the moment it reaches max. At low QPS the only cost is the
// window of added latency on lone requests — the latency/throughput
// trade-off the window flag prices explicitly.
type coalescer struct {
	s      *Service
	window time.Duration
	max    int

	mu     sync.Mutex
	groups map[CircuitKey]*coalesceGroup
}

// coalesceGroup is the pending batch for one circuit key. It lives in
// coalescer.groups until detached (by the max-filling caller or the
// window timer); after detach it is owned by exactly one goroutine.
type coalesceGroup struct {
	reqs  []VerifyRequest
	outs  []chan verifyOutcome
	timer *time.Timer
}

// verifyOutcome carries one coalesced verify verdict back to its caller.
type verifyOutcome struct {
	ok  bool
	err error
}

func newCoalescer(s *Service, window time.Duration, max int) *coalescer {
	return &coalescer{s: s, window: window, max: max, groups: make(map[CircuitKey]*coalesceGroup)}
}

// verify enqueues one request into its circuit's pending group and waits
// for the folded verdict. The caller that fills a group to max detaches
// and runs it inline — no goroutine handoff on the hot path; otherwise
// the window timer flushes whatever has accumulated.
func (c *coalescer) verify(ctx context.Context, req VerifyRequest) (bool, error) {
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	if req.Proof == nil {
		return false, fmt.Errorf("provesvc: verify: missing proof")
	}
	key := CircuitKey{
		SourceHash: sha256.Sum256([]byte(req.Source)),
		Curve:      req.Curve,
		Backend:    req.Backend,
	}
	ch := make(chan verifyOutcome, 1)

	c.mu.Lock()
	g := c.groups[key]
	if g == nil {
		g = &coalesceGroup{}
		c.groups[key] = g
		g.timer = time.AfterFunc(c.window, func() { c.flushTimer(key, g) })
	}
	g.reqs = append(g.reqs, req)
	g.outs = append(g.outs, ch)
	var run *coalesceGroup
	if len(g.reqs) >= c.max {
		// Detach under the lock so no group ever exceeds max.
		delete(c.groups, key)
		run = g
	}
	c.mu.Unlock()
	if run != nil {
		run.timer.Stop()
		c.run(run)
	}

	select {
	case out := <-ch:
		return out.ok, out.err
	case <-ctx.Done():
		// The fold still completes for the group's other members (it runs
		// under the service context); this caller just stops waiting.
		return false, ctx.Err()
	}
}

// flushTimer is the window-expiry path: detach the group unless the
// max-size path already won the race, then run it.
func (c *coalescer) flushTimer(key CircuitKey, g *coalesceGroup) {
	c.mu.Lock()
	if c.groups[key] != g {
		c.mu.Unlock()
		return
	}
	delete(c.groups, key)
	c.mu.Unlock()
	c.run(g)
}

// run executes a detached group's folded verify and delivers per-caller
// verdicts. The batch runs under the service's base context, not any
// single caller's: one caller's cancellation must not fail its
// neighbours' verifies.
func (c *coalescer) run(g *coalesceGroup) {
	oks, errs := c.s.VerifyBatch(c.s.baseCtx, g.reqs)
	if n := len(g.reqs); n > 1 {
		c.s.met.vbCoalesced.Add(uint64(n))
	}
	for i, ch := range g.outs {
		ch <- verifyOutcome{ok: oks[i], err: errs[i]}
	}
}
