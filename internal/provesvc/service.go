// Package provesvc is the serving layer of the repository: a long-lived,
// embeddable proving service that amortizes the expensive front half of
// the zk-SNARK workflow (compile + trusted setup) across many prove and
// verify requests — the deployment shape the paper's stage breakdown
// argues for, where setup dominates one-shot runs but vanishes per-proof
// once cached.
//
// The service is a bounded job queue in front of a fixed worker pool. A
// circuit Registry deduplicates concurrent setups and caches artifacts
// per (source, curve, backend); saturation is shed explicitly with
// ErrQueueFull (HTTP 429) instead of queueing unboundedly; every job
// carries a context so client cancellations and deadlines propagate into
// the MSM/NTT kernels of whichever backend runs it; and Shutdown drains
// in-flight work with a deadline and reports what was dropped.
//
// Observability is always on by default: each job gets a telemetry.Probe
// (stage spans plus the NTT/MSM/pairing kernel sub-spans the kernels
// record), and finished requests fold into the process-wide metrics
// registry served at GET /v1/metrics. WithTelemetry(nil) disables all of
// it at one branch per hook.
package provesvc

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/faultinject"
	"zkperf/internal/ff"
	"zkperf/internal/jobs"
	"zkperf/internal/parallel"
	"zkperf/internal/telemetry"
	"zkperf/internal/witness"
)

var (
	// ErrQueueFull is returned when the job queue is saturated; the HTTP
	// layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("provesvc: job queue full")
	// ErrDraining is returned for submissions after Shutdown started; the
	// HTTP layer maps it to 503 Service Unavailable.
	ErrDraining = errors.New("provesvc: service is draining")
	// ErrDropped is the failure recorded on jobs that were still queued
	// when Shutdown ran — they never started executing.
	ErrDropped = errors.New("provesvc: job dropped during shutdown")
	// ErrInternal is the failure recorded on jobs whose backend panicked;
	// the panic is recovered on the worker (which survives) and the HTTP
	// layer maps this to 500 internal_error.
	ErrInternal = errors.New("provesvc: internal error")
	// ErrCircuitOpen is returned when the per-circuit breaker is shedding
	// a poisoned circuit; the HTTP layer maps it to 503 circuit_open
	// (retryable — the breaker admits a probe after its cooldown).
	ErrCircuitOpen = errors.New("provesvc: circuit breaker open")
)

// DefaultBackend is assumed when a request does not name one.
const DefaultBackend = "groth16"

// config sizes the service; it is built from Options and zero values
// pick sensible defaults.
type config struct {
	workers        int
	queueDepth     int
	proveThreads   int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	seed           uint64
	backends       []string
	artifactDir    string
	maxBodyBytes   int64
	brkThreshold   int
	brkCooldown    time.Duration
	brkSet         bool // distinguishes "default" from WithBreaker(0, …)
	jobTTL         time.Duration
	jobSweep       time.Duration
	jobMaxActive   int
	jobJournalDir  string
	verifyWindow   time.Duration
	verifyMax      int
	sched          WorkloadConfig
	tel            *telemetry.Telemetry
	telSet         bool // distinguishes "default" from WithTelemetry(nil)
}

func (c config) withDefaults() config {
	if c.workers < 1 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	if c.queueDepth < 1 {
		c.queueDepth = 64
	}
	if c.proveThreads < 1 {
		c.proveThreads = 1
	}
	if len(c.backends) == 0 {
		c.backends = backend.Names()
	}
	if c.maxBodyBytes <= 0 {
		c.maxBodyBytes = DefaultMaxBodyBytes
	}
	if !c.brkSet {
		c.brkThreshold = DefaultBreakerThreshold
		c.brkCooldown = DefaultBreakerCooldown
	}
	if !c.telSet {
		c.tel = telemetry.New()
	}
	return c
}

// Option configures a Service at construction.
type Option func(*config)

// WithWorkers sets the number of concurrent proving workers
// (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithQueueDepth bounds the queued-but-not-started job count
// (default 64). When full, submissions fail fast with ErrQueueFull.
func WithQueueDepth(d int) Option { return func(c *config) { c.queueDepth = d } }

// WithProveThreads sets the kernel parallelism *inside* one prove/setup
// (default 1): Workers×ProveThreads ≈ cores keeps the box busy without
// oversubscription collapse.
func WithProveThreads(n int) Option { return func(c *config) { c.proveThreads = n } }

// WithDefaultTimeout caps each job's execution unless the request
// overrides it; 0 disables the default deadline.
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *config) { c.defaultTimeout = d }
}

// WithMaxTimeout caps the per-request timeout_ms override: requests
// asking for more (or for no deadline at all, when a ceiling is set) are
// clamped to d. 0 means no ceiling.
func WithMaxTimeout(d time.Duration) Option {
	return func(c *config) { c.maxTimeout = d }
}

// WithArtifactDir persists setup artifacts (proving/verifying keys)
// crash-safely under dir and reloads them across restarts, so a process
// crash never costs a trusted setup. Corrupt files are quarantined
// (never loaded, never a panic) and rebuilt.
func WithArtifactDir(dir string) Option {
	return func(c *config) { c.artifactDir = dir }
}

// WithMaxBodyBytes bounds /v1 prove and verify request bodies (default
// DefaultMaxBodyBytes); larger bodies fail with 413 body_too_large.
func WithMaxBodyBytes(n int64) Option {
	return func(c *config) { c.maxBodyBytes = n }
}

// WithBreaker sizes the per-circuit breaker: threshold consecutive
// failures open it, and after cooldown a single probe is admitted.
// threshold 0 disables the breaker. The default is
// DefaultBreakerThreshold/DefaultBreakerCooldown.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) {
		c.brkThreshold, c.brkCooldown, c.brkSet = threshold, cooldown, true
	}
}

// WithJobTTL sets how long finished async jobs (POST /v1/jobs) are
// retained for polling before the sweeper evicts them (default 5m), and
// optionally the sweep cadence (0 picks TTL/4 clamped to [50ms, 10s]).
func WithJobTTL(ttl, sweepEvery time.Duration) Option {
	return func(c *config) { c.jobTTL, c.jobSweep = ttl, sweepEvery }
}

// WithJobMaxActive caps queued+running async jobs (default 1024);
// submissions beyond it are shed with 429 too_many_jobs.
func WithJobMaxActive(n int) Option {
	return func(c *config) { c.jobMaxActive = n }
}

// WithJobJournal makes async jobs durable: every lifecycle transition is
// appended to a checksummed WAL under dir, and a restart replays it —
// finished jobs stay pollable until TTL, jobs queued or running at a
// crash are re-executed, and Idempotency-Key dedup survives the restart.
// A corrupt or torn journal recovers by truncation/quarantine; an
// unusable journal directory degrades to in-memory jobs (see
// JobJournalError).
func WithJobJournal(dir string) Option {
	return func(c *config) { c.jobJournalDir = dir }
}

// WithVerifyCoalesce folds concurrent single Verify calls for the same
// circuit into batched pairing checks: a request waits up to window for
// company and a pending group flushes as soon as it holds max requests.
// Disabled by default (window 0 or max < 2) — lone requests would pay
// the window as pure added latency; enable it on deployments where
// verify QPS per circuit makes batches actually form.
func WithVerifyCoalesce(window time.Duration, max int) Option {
	return func(c *config) { c.verifyWindow, c.verifyMax = window, max }
}

// WithWorkloadSched configures workload-aware scheduling (disabled by
// default): hot circuits — classified from decayed per-circuit arrival
// rates — get dedicated workers fed from private queues, and each job
// is granted a slice of the kernel thread budget sized from live queue
// depth (deep queue → many jobs × few threads; idle → few jobs × full
// threads). Zero-valued WorkloadConfig fields pick their defaults; see
// WorkloadConfig. Arrival/drain-rate accounting (the sched stats block
// and drain-rate Retry-After hints) is always on regardless.
func WithWorkloadSched(wc WorkloadConfig) Option {
	return func(c *config) { c.sched = wc }
}

// WithSeed seeds the setup and blinding RNGs. Pin it for reproducible
// experiments; vary it in production.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithBackends restricts the service to the named proving backends
// (default: all registered — currently groth16 and plonk).
func WithBackends(names ...string) Option {
	return func(c *config) { c.backends = names }
}

// WithTelemetry replaces the service's telemetry handle. The default is
// a fresh enabled handle; pass nil to disable observability entirely, or
// a shared handle to aggregate several services into one registry.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(c *config) { c.tel = t; c.telSet = true }
}

// ProveRequest asks the service for one proof.
type ProveRequest struct {
	// Curve names the pairing curve: "bn128" (default) or "bls12-381".
	Curve string
	// Backend names the proving scheme: "groth16" (default) or "plonk".
	Backend string
	// Source is the circuit source text; it doubles as the cache key.
	Source string
	// Inputs assigns the circuit's input wires.
	Inputs witness.Assignment
	// Timeout overrides the service's default job deadline when > 0.
	Timeout time.Duration
	// OnStart, when set, is invoked on the worker just before execution
	// begins — after the queue wait, before compile/witness/prove. The
	// async job layer uses it to flip a job from queued to running at the
	// moment a worker actually picks it up.
	OnStart func()
}

// ProveResult is a completed proof plus its public wires and stage
// timings.
type ProveResult struct {
	Proof    backend.Proof
	Public   []ff.Element // [1, public wires] — what Verify consumes
	Artifact *Artifact

	QueueWait   time.Duration
	WitnessTime time.Duration
	ProveTime   time.Duration
	Total       time.Duration
}

// VerifyRequest asks the service to check a proof against a circuit's
// cached verifying key.
type VerifyRequest struct {
	Curve   string
	Backend string
	Source  string
	Proof   backend.Proof
	// Public is the public witness including the leading constant 1 (as
	// returned in ProveResult.Public).
	Public []ff.Element
}

// job is one queued prove request.
type job struct {
	ctx    context.Context
	cancel context.CancelFunc
	stop   func() bool // detaches the shutdown watcher
	req    ProveRequest
	key    CircuitKey // breaker identity, computed at admission
	enq    time.Time

	res  *ProveResult
	err  error
	done chan struct{}
}

func (j *job) finish(res *ProveResult, err error) {
	j.res, j.err = res, err
	j.cancel()
	j.stop()
	close(j.done)
}

// DrainReport says what Shutdown did.
type DrainReport struct {
	// Drained is the number of in-flight jobs at drain start that were
	// allowed to finish.
	Drained int
	// Dropped is the number of queued jobs discarded without running.
	Dropped int
	// Forced is the number of in-flight jobs cancelled because the drain
	// deadline expired before they finished.
	Forced int
}

// Service is the concurrent proving service.
type Service struct {
	cfg     config
	reg     *Registry
	met     metrics
	tel     *telemetry.Telemetry
	breaker *breakerGroup
	jobMgr  *jobs.Manager
	coal    *coalescer // nil unless WithVerifyCoalesce enabled it
	sched   *scheduler // always non-nil; dedicated workers + thread grants only when enabled

	// artifactErr records a WithArtifactDir init failure: the service
	// still serves (without persistence), and the caller decides whether
	// that is fatal via ArtifactDirError.
	artifactErr error
	// journalErr records a WithJobJournal init failure, same contract:
	// the service serves with in-memory jobs and the caller decides via
	// JobJournalError.
	journalErr error

	jobs chan *job
	done chan struct{} // closed by Shutdown: workers exit when idle

	baseCtx    context.Context // cancelled to force-abort in-flight jobs
	baseCancel context.CancelFunc

	mu       sync.RWMutex // guards draining vs. enqueue
	draining bool

	workerWG sync.WaitGroup
	seedCtr  atomic.Uint64

	// hookJobStart, when set before Start, runs at the top of every job
	// execution; tests use it to hold workers at a barrier.
	hookJobStart func()
}

// New creates a service; call Start before submitting work.
func New(opts ...Option) *Service {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		reg:        NewRegistry(cfg.proveThreads, cfg.seed, cfg.backends),
		tel:        cfg.tel,
		breaker:    newBreakerGroup(cfg.brkThreshold, cfg.brkCooldown),
		jobs:       make(chan *job, cfg.queueDepth),
		done:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	// Async job dispatch parallelism matches the worker pool: a
	// dispatched job either runs immediately or waits in the service
	// queue behind sync traffic, still reported "queued" either way.
	var jnl *jobs.Journal
	if cfg.jobJournalDir != "" {
		if jnl, s.journalErr = jobs.OpenJournal(cfg.jobJournalDir); s.journalErr != nil {
			jnl = nil // degrade to in-memory jobs; caller decides via JobJournalError
		}
	}
	s.jobMgr = jobs.New(jobs.Config{
		TTL:        cfg.jobTTL,
		SweepEvery: cfg.jobSweep,
		MaxActive:  cfg.jobMaxActive,
		Parallel:   cfg.workers,
		Journal:    jnl,
		ErrorClass: errorClass,
	})
	if cfg.artifactDir != "" {
		s.artifactErr = s.reg.SetArtifactDir(cfg.artifactDir)
	}
	if cfg.verifyWindow > 0 && cfg.verifyMax > 1 {
		s.coal = newCoalescer(s, cfg.verifyWindow, cfg.verifyMax)
	}
	s.sched = newScheduler(s, cfg.sched)
	s.met.perBackend = make(map[string]*backendMetrics, len(cfg.backends))
	for _, name := range s.reg.Backends() {
		s.met.perBackend[name] = &backendMetrics{}
	}
	if reg := s.tel.Registry(); reg != nil {
		reg.GaugeFunc("zkp_queue_depth", "Jobs queued but not yet started.",
			func() float64 { return float64(len(s.jobs)) })
		reg.GaugeFunc("zkp_queue_capacity", "Job queue capacity.",
			func() float64 { return float64(cap(s.jobs)) })
		reg.GaugeFunc("zkp_in_flight", "Jobs currently executing on a worker.",
			func() float64 { return float64(s.met.inFlight.Load()) })
		reg.GaugeFunc("zkp_workers", "Size of the proving worker pool.",
			func() float64 { return float64(s.cfg.workers) })
		reg.GaugeFunc("zkp_panics_total", "Prove panics recovered on workers.",
			func() float64 { return float64(s.met.panics.Load()) })
		reg.GaugeFunc("zkp_timeouts_total", "Jobs that exceeded their deadline.",
			func() float64 { return float64(s.met.timeouts.Load()) })
		reg.GaugeFunc("zkp_breaker_open", "Circuits currently shed by the breaker.",
			func() float64 { return float64(s.breaker.openCount()) })
		reg.GaugeFunc("zkp_breaker_trips_total", "Lifetime circuit-breaker trips.",
			func() float64 { return float64(s.breaker.trips.Load()) })
		reg.GaugeFunc("zkp_breaker_shed_total", "Requests shed with circuit_open.",
			func() float64 { return float64(s.breaker.shed.Load()) })
		reg.GaugeFunc("zkp_jobs_active", "Async jobs by live state.",
			func() float64 { return float64(s.jobMgr.Snapshot().Queued) },
			telemetry.Label{Name: "state", Value: "queued"})
		reg.GaugeFunc("zkp_jobs_active", "Async jobs by live state.",
			func() float64 { return float64(s.jobMgr.Snapshot().Running) },
			telemetry.Label{Name: "state", Value: "running"})
		reg.GaugeFunc("zkp_jobs_retained", "Finished async jobs awaiting TTL eviction.",
			func() float64 { return float64(s.jobMgr.Snapshot().Retained) })
		reg.GaugeFunc("zkp_jobs_submitted_total", "Async jobs accepted lifetime.",
			func() float64 { return float64(s.jobMgr.Snapshot().Submitted) })
		reg.GaugeFunc("zkp_jobs_evicted_total", "Async job results evicted by the TTL sweeper.",
			func() float64 { return float64(s.jobMgr.Snapshot().Evicted) })
		reg.GaugeFunc("zkp_jobs_rejected_total", "Async job submissions shed at the active cap.",
			func() float64 { return float64(s.jobMgr.Snapshot().Rejected) })
		reg.GaugeFunc("zkp_jobs_oldest_queued_ms", "Age of the oldest queued async job.",
			func() float64 { return s.jobMgr.Snapshot().OldestQueuedMs })
		reg.GaugeFunc("zkp_journal_replayed_total", "Jobs restored from the journal at startup.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.Replayed) })
		reg.GaugeFunc("zkp_journal_reexecuted_total", "Replayed jobs re-enqueued for execution.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.Reexecuted) })
		reg.GaugeFunc("zkp_journal_dedup_hits_total", "Submissions answered via Idempotency-Key.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.DedupHits) })
		reg.GaugeFunc("zkp_journal_compactions_total", "Journal compaction rewrites.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.Compactions) })
		reg.GaugeFunc("zkp_journal_torn_records_total", "Torn/corrupt journal tails recovered at replay.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.TornRecords) })
		reg.GaugeFunc("zkp_journal_size_bytes", "Live journal WAL size.",
			func() float64 { return float64(s.jobMgr.Snapshot().Journal.SizeBytes) })
		reg.GaugeFunc("zkp_verify_batch_total", "Folded verify batches served.",
			func() float64 { return float64(s.met.vbBatches.Load()) })
		reg.GaugeFunc("zkp_verify_batch_proofs_total", "Proofs verified through folded batches.",
			func() float64 { return float64(s.met.vbProofs.Load()) })
		reg.GaugeFunc("zkp_verify_coalesced_total", "Single verifies opportunistically folded into shared batches.",
			func() float64 { return float64(s.met.vbCoalesced.Load()) })
		reg.GaugeFunc("zkp_verify_batch_size", "Verify batch size distribution.",
			func() float64 { return float64(s.met.vbSize.quantile(0.50)) },
			telemetry.Label{Name: "quantile", Value: "p50"})
		reg.GaugeFunc("zkp_verify_batch_size", "Verify batch size distribution.",
			func() float64 { return float64(s.met.vbSize.quantile(0.95)) },
			telemetry.Label{Name: "quantile", Value: "p95"})
		reg.GaugeFunc("zkp_sched_enabled", "1 when workload-aware scheduling is on.",
			func() float64 {
				if s.sched.cfg.Enabled {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("zkp_sched_hot_circuits", "Circuits currently classified hot.",
			func() float64 { return float64(len(s.sched.plan.Load().hotQueues)) })
		reg.GaugeFunc("zkp_sched_reserved_workers", "Workers dedicated to hot circuits.",
			func() float64 { return float64(s.sched.plan.Load().reserved) })
		reg.GaugeFunc("zkp_sched_thread_budget", "Kernel thread budget the scheduler splits.",
			func() float64 { return float64(s.sched.cfg.ThreadBudget) })
		reg.GaugeFunc("zkp_sched_promotions_total", "Lifetime cold-to-hot promotions.",
			func() float64 { return float64(s.sched.promotions.Load()) })
		reg.GaugeFunc("zkp_sched_demotions_total", "Lifetime hot-to-cold demotions.",
			func() float64 { return float64(s.sched.demotions.Load()) })
		reg.GaugeFunc("zkp_sched_drain_rate", "Decayed queue drain rate, jobs/s.",
			func() float64 { return s.sched.drain.rate(s.sched.now(), s.sched.cfg.HalfLife) })
		reg.GaugeFunc("zkp_sched_hot_queue_depth", "Jobs queued across hot-circuit queues.",
			func() float64 { return float64(s.sched.queuedTotal() - len(s.jobs)) })
		reg.GaugeFunc("zkp_sched_thread_grant", "Per-job kernel thread grant distribution.",
			func() float64 { return float64(s.sched.grantHist.quantile(0.50)) },
			telemetry.Label{Name: "quantile", Value: "p50"})
		reg.GaugeFunc("zkp_sched_thread_grant", "Per-job kernel thread grant distribution.",
			func() float64 { return float64(s.sched.grantHist.quantile(0.95)) },
			telemetry.Label{Name: "quantile", Value: "p95"})
	}
	return s
}

// ArtifactDirError reports a WithArtifactDir initialization failure (nil
// when persistence is off or healthy). The service runs either way —
// without persistence every setup is recomputed, which is slow but
// correct — so the caller chooses whether to treat this as fatal.
func (s *Service) ArtifactDirError() error { return s.artifactErr }

// JobJournalError reports a WithJobJournal initialization failure (nil
// when the journal is off or healthy). The service runs either way —
// with in-memory jobs, losing them on restart — so the caller chooses
// whether to treat this as fatal.
func (s *Service) JobJournalError() error { return s.journalErr }

// Registry exposes the circuit cache (e.g. to pre-warm circuits at boot).
func (s *Service) Registry() *Registry { return s.reg }

// Backends returns the backend names this service serves.
func (s *Service) Backends() []string { return s.reg.Backends() }

// Telemetry returns the service's telemetry handle (nil when disabled).
func (s *Service) Telemetry() *telemetry.Telemetry { return s.tel }

// Start launches the worker pool, the workload classifier and the async
// job manager, then re-arms any journaled jobs that were queued or
// running when the previous process died.
func (s *Service) Start() {
	for i := 0; i < s.cfg.workers; i++ {
		s.workerWG.Add(1)
		go s.worker(i)
	}
	s.sched.start()
	s.jobMgr.Start()
	s.resumeJournaledJobs()
}

// Jobs exposes the async job manager (e.g. for embedded callers that
// submit work without the HTTP layer).
func (s *Service) Jobs() *jobs.Manager { return s.jobMgr }

// Prove submits a request and blocks until the proof is ready, the
// request's deadline expires, ctx is cancelled, or the service sheds it.
// Queue saturation fails fast with ErrQueueFull.
func (s *Service) Prove(ctx context.Context, req ProveRequest) (*ProveResult, error) {
	j, err := s.enqueue(ctx, req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// Abandon the job: cancelling its context makes the worker (or
		// the kernels, if already running) bail out at the next check.
		j.cancel()
		return nil, ctx.Err()
	}
}

// ProveBatch submits several requests at once and waits for all of them.
// Admission is per-item: results[i]/errs[i] correspond to reqs[i], and
// items that did not fit in the queue fail with ErrQueueFull while the
// rest proceed.
func (s *Service) ProveBatch(ctx context.Context, reqs []ProveRequest) ([]*ProveResult, []error) {
	results := make([]*ProveResult, len(reqs))
	errs := make([]error, len(reqs))
	jobs := make([]*job, len(reqs))
	for i, req := range reqs {
		jobs[i], errs[i] = s.enqueue(ctx, req)
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case <-j.done:
			results[i], errs[i] = j.res, j.err
		case <-ctx.Done():
			j.cancel()
			errs[i] = ctx.Err()
		}
	}
	return results, errs
}

// reject books a shed request into the global and per-backend counters.
func (s *Service) reject(req ProveRequest) {
	s.met.rejected.Add(1)
	if bm := s.met.forBackend(req.Backend); bm != nil {
		bm.rejected.Add(1)
	}
	s.tel.CountRequest(req.Backend, req.Curve, "rejected")
}

func (s *Service) enqueue(ctx context.Context, req ProveRequest) (*job, error) {
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	// Reject unknown backends before they consume a queue slot; unknown
	// curves surface from the registry inside the worker.
	if !s.reg.backendEnabled(req.Backend) {
		s.met.rejected.Add(1)
		return nil, fmt.Errorf("%w %q (serving: %v)", backend.ErrUnknownBackend, req.Backend, s.reg.Backends())
	}
	key := CircuitKey{
		SourceHash: sha256.Sum256([]byte(req.Source)),
		Curve:      req.Curve,
		Backend:    req.Backend,
	}
	// A circuit whose breaker is open is shed here, before it can consume
	// a queue slot or a worker for another doomed multi-second prove.
	if !s.breaker.allow(key) {
		s.met.rejected.Add(1)
		if bm := s.met.forBackend(req.Backend); bm != nil {
			bm.rejected.Add(1)
		}
		s.tel.CountRequest(req.Backend, req.Curve, "circuit_open")
		return nil, fmt.Errorf("%w for this circuit (cooldown %v)", ErrCircuitOpen, s.cfg.brkCooldown)
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.defaultTimeout
	}
	// The service-wide ceiling clamps both oversized overrides and the
	// "no deadline" case — with a ceiling set, nothing runs unbounded.
	if max := s.cfg.maxTimeout; max > 0 && (timeout <= 0 || timeout > max) {
		timeout = max
	}
	var jctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		jctx, cancel = context.WithCancel(ctx)
	}
	// Give the job its probe unless the caller already attached one (an
	// embedded caller aggregating spans itself). The probe carries the
	// request ID the HTTP edge stamped into ctx, and the kernels below
	// will find it through jctx.
	if s.tel.Enabled() && telemetry.ProbeFromContext(jctx) == nil {
		jctx = telemetry.WithProbe(jctx, telemetry.NewProbe(telemetry.RequestIDFromContext(ctx)))
	}
	// A forced shutdown (drain deadline expired) aborts this job too.
	stop := context.AfterFunc(s.baseCtx, cancel)

	j := &job{
		ctx:    jctx,
		cancel: cancel,
		stop:   stop,
		req:    req,
		key:    key,
		enq:    time.Now(),
		done:   make(chan struct{}),
	}

	// The RLock is held across the non-blocking send so Shutdown (which
	// takes the write lock before draining the queue) can never miss a
	// concurrent enqueue.
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Rejection after allow() must hand the breaker admission back (it
	// may hold the circuit's lone half-open probe slot), or the circuit
	// sheds with circuit_open forever — exactly under the overload that
	// trips breakers in the first place.
	if s.draining {
		cancel()
		stop()
		s.breaker.release(key)
		s.reject(req)
		return nil, ErrDraining
	}
	// Route through the scheduler: the circuit's private hot queue if it
	// is classified hot, the shared cold queue otherwise. Arrivals are
	// booked before admission — shed requests are still demand.
	s.sched.observeArrival(key)
	if s.sched.offer(j) {
		s.met.accepted.Add(1)
		return j, nil
	}
	cancel()
	stop()
	s.breaker.release(key)
	s.reject(req)
	return nil, ErrQueueFull
}

// worker is one pool goroutine; its scheduling loop (which queues it
// serves) lives on the scheduler so reservation changes retarget it
// without restarting the pool.
func (s *Service) worker(id int) {
	defer s.workerWG.Done()
	s.sched.workerLoop(id)
}

// run executes one job on the calling worker goroutine and feeds the
// outcome to the circuit breaker. Panics are contained inside execute,
// so the worker always survives to take the next job.
func (s *Service) run(j *job) {
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if h := s.hookJobStart; h != nil {
		h()
	}

	wait := time.Since(j.enq)
	s.met.queueWait.Observe(wait)
	// The job just left a queue for a worker: book the drain event and
	// size its kernel thread grant from the demand behind it. The grant
	// rides j.ctx to the NTT/MSM fork-join boundaries; 0 (scheduler
	// disabled) leaves the engines' static thread count in force.
	s.sched.observeDrain()
	if g := s.sched.grantThreads(); g > 0 {
		j.ctx = parallel.WithThreadBudget(j.ctx, g)
	}

	// A deadline (or cancellation) that fired while the job was still
	// queued says nothing about the circuit — no prove was attempted —
	// so it releases the breaker admission instead of counting as a
	// failure. Otherwise queue congestion plus tight client timeouts
	// would trip breakers on perfectly healthy circuits.
	if err := j.ctx.Err(); err != nil {
		s.breaker.release(j.key)
		s.fail(j, err)
		return
	}
	if j.req.OnStart != nil {
		j.req.OnStart()
	}

	res, err := s.execute(j, wait)
	if err != nil {
		// A pure client cancellation says nothing about the circuit's
		// health; everything else — panics, prove errors, deadline
		// expiries past this point (a stuck kernel looks exactly like
		// one) — counts toward its breaker.
		if errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			s.breaker.release(j.key)
		} else {
			s.breaker.onFailure(j.key)
		}
		s.fail(j, err)
		return
	}
	s.breaker.onSuccess(j.key)
	j.finish(res, nil)
}

// execute runs lookup → witness → prove for one job. A panic anywhere
// below — a backend bug, a poisoned artifact — is recovered here and
// becomes that job's ErrInternal failure, never a process crash.
func (s *Service) execute(j *job, wait time.Duration) (res *ProveResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Add(1)
			if bm := s.met.forBackend(j.req.Backend); bm != nil {
				bm.panics.Add(1)
			}
			res, err = nil, fmt.Errorf("%w: prove panicked: %v", ErrInternal, rec)
		}
	}()

	if err := faultinject.Point(j.ctx, faultinject.PointWorkerRun); err != nil {
		return nil, err
	}

	art, err := s.reg.Get(j.ctx, j.req.Curve, j.req.Backend, j.req.Source)
	if err != nil {
		return nil, err
	}
	bm := s.met.forBackend(j.req.Backend)
	probe := telemetry.ProbeFromContext(j.ctx)

	t0 := time.Now()
	endWitness := probe.StartStage(telemetry.StageWitness)
	w, err := witness.Solve(art.Sys, art.Prog, j.req.Inputs)
	endWitness()
	if err != nil {
		return nil, fmt.Errorf("provesvc: witness: %w", err)
	}
	witnessTime := time.Since(t0)

	if err := faultinject.Point(j.ctx, faultinject.PointBackendProve); err != nil {
		return nil, err
	}
	t1 := time.Now()
	rng := ff.NewRNG(mix64(s.cfg.seed ^ (0x9e3779b97f4a7c15 * s.seedCtr.Add(1))))
	endProve := probe.StartStage(telemetry.StageProve)
	proof, err := art.Backend.Prove(j.ctx, art.Sys, art.PK, w, rng)
	endProve()
	if err != nil {
		return nil, err
	}
	proveTime := time.Since(t1)

	total := time.Since(j.enq)
	s.met.completed.Add(1)
	if bm != nil {
		bm.witnessLat.Observe(witnessTime)
		bm.proveLat.Observe(proveTime)
		bm.totalLat.Observe(total)
		bm.completed.Add(1)
	}
	s.tel.ObserveStage(j.req.Backend, j.req.Curve, telemetry.StageWitness, witnessTime)
	s.tel.ObserveStage(j.req.Backend, j.req.Curve, telemetry.StageProve, proveTime)
	s.tel.CountRequest(j.req.Backend, j.req.Curve, "completed")
	s.tel.ObserveProbe(j.req.Backend, j.req.Curve, probe)
	return &ProveResult{
		Proof:       proof,
		Public:      w.Public,
		Artifact:    art,
		QueueWait:   wait,
		WitnessTime: witnessTime,
		ProveTime:   proveTime,
		Total:       total,
	}, nil
}

// fail records a job failure, classifying deadline expiries and client
// cancellations separately from real failures.
func (s *Service) fail(j *job, err error) {
	bm := s.met.forBackend(j.req.Backend)
	outcome := "failed"
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// Deadlines stay in the cancelled bucket (the job was aborted,
		// not broken) but are additionally counted as timeouts so a
		// deadline storm is visible on its own.
		outcome = "deadline_exceeded"
		s.met.canceled.Add(1)
		s.met.timeouts.Add(1)
		if bm != nil {
			bm.cancelled.Add(1)
			bm.timeouts.Add(1)
		}
	case errors.Is(err, context.Canceled):
		outcome = "cancelled"
		s.met.canceled.Add(1)
		if bm != nil {
			bm.cancelled.Add(1)
		}
	case errors.Is(err, ErrInternal):
		outcome = "internal_error"
		s.met.failed.Add(1)
		if bm != nil {
			bm.failed.Add(1)
		}
	default:
		s.met.failed.Add(1)
		if bm != nil {
			bm.failed.Add(1)
		}
	}
	s.tel.CountRequest(j.req.Backend, j.req.Curve, outcome)
	j.finish(nil, err)
}

// Verify checks a proof against the circuit's cached verifying key. It
// runs inline on the caller's goroutine — verification is milliseconds,
// not worth a queue slot. Returns (false, nil) for a well-formed but
// invalid proof and (false, err) for infrastructure errors.
func (s *Service) Verify(ctx context.Context, req VerifyRequest) (bool, error) {
	// Under coalescing, single verifies detour through the shared-batch
	// collector; the folded check itself runs via VerifyBatch.
	if s.coal != nil {
		return s.coal.verify(ctx, req)
	}
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	if req.Proof == nil {
		return false, fmt.Errorf("provesvc: verify: missing proof")
	}
	art, err := s.reg.Get(ctx, req.Curve, req.Backend, req.Source)
	if err != nil {
		return false, err
	}
	probe := telemetry.ProbeFromContext(ctx)
	if s.tel.Enabled() && probe == nil {
		probe = telemetry.NewProbe(telemetry.RequestIDFromContext(ctx))
		ctx = telemetry.WithProbe(ctx, probe)
	}
	t0 := time.Now()
	endVerify := probe.StartStage(telemetry.StageVerify)
	err = art.Backend.Verify(ctx, art.VK, req.Proof, req.Public)
	endVerify()
	d := time.Since(t0)
	s.met.verified.Add(1)
	if bm := s.met.forBackend(req.Backend); bm != nil {
		bm.verifyLat.Observe(d)
	}
	s.tel.ObserveStage(req.Backend, req.Curve, telemetry.StageVerify, d)
	s.tel.CountRequest(req.Backend, req.Curve, "verified")
	s.tel.ObserveProbe(req.Backend, req.Curve, probe)
	if errors.Is(err, backend.ErrInvalidProof) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Stats snapshots the service counters in the documented /v1/stats shape.
func (s *Service) Stats() Snapshot {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	hits, misses := s.reg.Hits(), s.reg.Misses()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	backends := make(map[string]BackendSnapshot, len(s.met.perBackend))
	for name, bm := range s.met.perBackend {
		backends[name] = bm.snapshot()
	}
	return Snapshot{
		Service: ServiceStats{
			Accepted:  s.met.accepted.Load(),
			Rejected:  s.met.rejected.Load(),
			Completed: s.met.completed.Load(),
			Failed:    s.met.failed.Load(),
			Cancelled: s.met.canceled.Load(),
			Dropped:   s.met.dropped.Load(),
			Verified:  s.met.verified.Load(),
			Panics:    s.met.panics.Load(),
			Timeouts:  s.met.timeouts.Load(),
			Workers:   s.cfg.workers,
			Draining:  draining,
		},
		Queue: QueueStats{
			Depth:    len(s.jobs),
			Capacity: cap(s.jobs),
			InFlight: int(s.met.inFlight.Load()),
			Wait:     s.met.queueWait.summary(),
		},
		Cache: CacheStats{
			Hits:    hits,
			Misses:  misses,
			HitRate: hitRate,
			Setups:  s.reg.Setups(),
		},
		Backends: backends,
		VerifyBatch: VerifyBatchStats{
			Batches:   s.met.vbBatches.Load(),
			Proofs:    s.met.vbProofs.Load(),
			Coalesced: s.met.vbCoalesced.Load(),
			Size:      s.met.vbSize.summary(),
			Latency:   s.met.vbLat.summary(),
		},
		Breaker:   s.breaker.stats(),
		Artifacts: s.reg.ArtifactStats(),
		Errors:    s.met.errorSnapshot(),
		Jobs:      s.jobMgr.Snapshot(),
		Sched:     s.sched.stats(),
	}
}

// Shutdown gracefully stops the service: it rejects new submissions,
// discards still-queued jobs (failing them with ErrDropped), lets
// in-flight jobs finish until ctx expires, then force-cancels whatever is
// left. It returns a report of what happened; safe to call once.
func (s *Service) Shutdown(ctx context.Context) (*DrainReport, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("provesvc: already shut down")
	}
	s.draining = true
	s.mu.Unlock()

	// The async layer drains first, while the sync path below it still
	// serves: queued jobs are dropped, running ones get the remaining
	// budget before their contexts are canceled. Their RunFuncs go
	// through Prove/Verify, so the in-flight accounting below covers
	// whatever they still have on workers.
	s.jobMgr.Shutdown(ctx)

	rep := &DrainReport{}

	// Stop the classifier first so no further demotions spawn movers,
	// then discard queued jobs across the cold and hot queues. Workers
	// may race us for them — jobs they win become in-flight and are
	// drained below, which only shrinks Dropped.
	s.sched.stop()
	s.sched.sweep(rep)
	rep.Drained = int(s.met.inFlight.Load())
	close(s.done) // idle workers exit; busy ones finish their job first

	finished := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		rep.Forced = int(s.met.inFlight.Load())
		rep.Drained -= rep.Forced
		s.baseCancel() // cancel in-flight job contexts
		<-finished     // kernels bail at the next chunk boundary
		err = ctx.Err()
	}
	s.baseCancel()
	// Demotion movers unblock via s.done (dropping what they carried) —
	// wait them out, then sweep once more: a mover may have re-queued
	// jobs after the first sweep, and with the workers gone nothing else
	// will ever fail those jobs' waiters.
	s.sched.moverWait()
	s.sched.sweep(rep)
	return rep, err
}
