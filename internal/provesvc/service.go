// Package provesvc is the serving layer of the repository: a long-lived,
// embeddable proving service that amortizes the expensive front half of
// the zk-SNARK workflow (compile + trusted setup) across many prove and
// verify requests — the deployment shape the paper's stage breakdown
// argues for, where setup dominates one-shot runs but vanishes per-proof
// once cached.
//
// The service is a bounded job queue in front of a fixed worker pool. A
// circuit Registry deduplicates concurrent setups and caches artifacts
// per (source, curve, backend); saturation is shed explicitly with
// ErrQueueFull (HTTP 429) instead of queueing unboundedly; every job
// carries a context so client cancellations and deadlines propagate into
// the MSM/NTT kernels of whichever backend runs it; and Shutdown drains
// in-flight work with a deadline and reports what was dropped.
package provesvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

var (
	// ErrQueueFull is returned when the job queue is saturated; the HTTP
	// layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("provesvc: job queue full")
	// ErrDraining is returned for submissions after Shutdown started; the
	// HTTP layer maps it to 503 Service Unavailable.
	ErrDraining = errors.New("provesvc: service is draining")
	// ErrDropped is the failure recorded on jobs that were still queued
	// when Shutdown ran — they never started executing.
	ErrDropped = errors.New("provesvc: job dropped during shutdown")
)

// DefaultBackend is assumed when a request does not name one.
const DefaultBackend = "groth16"

// Config sizes the service. Zero values pick sensible defaults.
//
// Deprecated: construct services with New and functional options
// (WithWorkers, WithQueueDepth, WithBackends, …); Config remains for
// callers predating the options API and is consumed via NewWithConfig.
type Config struct {
	// Workers is the number of concurrent proving workers
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-started jobs
	// (default 64). When full, submissions fail fast with ErrQueueFull.
	QueueDepth int
	// ProveThreads is the engine parallelism *inside* one prove/setup
	// (default 1): Workers×ProveThreads ≈ cores keeps the box busy
	// without oversubscription collapse.
	ProveThreads int
	// DefaultTimeout caps each job's execution unless the request
	// overrides it; 0 disables the default deadline.
	DefaultTimeout time.Duration
	// Seed seeds the setup and blinding RNGs. Pin it for reproducible
	// experiments; vary it in production.
	Seed uint64
	// Backends lists the proving backends to serve (default: all
	// registered — currently groth16 and plonk).
	Backends []string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.ProveThreads < 1 {
		c.ProveThreads = 1
	}
	if len(c.Backends) == 0 {
		c.Backends = backend.Names()
	}
	return c
}

// Option configures a Service at construction.
type Option func(*Config)

// WithWorkers sets the number of concurrent proving workers.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithQueueDepth bounds the queued-but-not-started job count.
func WithQueueDepth(d int) Option { return func(c *Config) { c.QueueDepth = d } }

// WithProveThreads sets the kernel parallelism inside one prove/setup.
func WithProveThreads(n int) Option { return func(c *Config) { c.ProveThreads = n } }

// WithDefaultTimeout caps each job's execution unless the request
// overrides it.
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *Config) { c.DefaultTimeout = d }
}

// WithSeed seeds the setup and blinding RNGs.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithBackends restricts the service to the named proving backends.
func WithBackends(names ...string) Option {
	return func(c *Config) { c.Backends = names }
}

// ProveRequest asks the service for one proof.
type ProveRequest struct {
	// Curve names the pairing curve: "bn128" (default) or "bls12-381".
	Curve string
	// Backend names the proving scheme: "groth16" (default) or "plonk".
	Backend string
	// Source is the circuit source text; it doubles as the cache key.
	Source string
	// Inputs assigns the circuit's input wires.
	Inputs witness.Assignment
	// Timeout overrides the service's default job deadline when > 0.
	Timeout time.Duration
}

// ProveResult is a completed proof plus its public wires and stage
// timings.
type ProveResult struct {
	Proof    backend.Proof
	Public   []ff.Element // [1, public wires] — what Verify consumes
	Artifact *Artifact

	QueueWait   time.Duration
	WitnessTime time.Duration
	ProveTime   time.Duration
	Total       time.Duration
}

// VerifyRequest asks the service to check a proof against a circuit's
// cached verifying key.
type VerifyRequest struct {
	Curve   string
	Backend string
	Source  string
	Proof   backend.Proof
	// Public is the public witness including the leading constant 1 (as
	// returned in ProveResult.Public).
	Public []ff.Element
}

// job is one queued prove request.
type job struct {
	ctx    context.Context
	cancel context.CancelFunc
	stop   func() bool // detaches the shutdown watcher
	req    ProveRequest
	enq    time.Time

	res  *ProveResult
	err  error
	done chan struct{}
}

func (j *job) finish(res *ProveResult, err error) {
	j.res, j.err = res, err
	j.cancel()
	j.stop()
	close(j.done)
}

// DrainReport says what Shutdown did.
type DrainReport struct {
	// Drained is the number of in-flight jobs at drain start that were
	// allowed to finish.
	Drained int
	// Dropped is the number of queued jobs discarded without running.
	Dropped int
	// Forced is the number of in-flight jobs cancelled because the drain
	// deadline expired before they finished.
	Forced int
}

// Service is the concurrent proving service.
type Service struct {
	cfg Config
	reg *Registry
	met metrics

	jobs chan *job
	done chan struct{} // closed by Shutdown: workers exit when idle

	baseCtx    context.Context // cancelled to force-abort in-flight jobs
	baseCancel context.CancelFunc

	mu       sync.RWMutex // guards draining vs. enqueue
	draining bool

	workerWG sync.WaitGroup
	seedCtr  atomic.Uint64

	// hookJobStart, when set before Start, runs at the top of every job
	// execution; tests use it to hold workers at a barrier.
	hookJobStart func()
}

// New creates a service; call Start before submitting work.
func New(opts ...Option) *Service {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewWithConfig(cfg)
}

// NewWithConfig creates a service from a Config struct.
//
// Deprecated: use New with functional options.
func NewWithConfig(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		reg:        NewRegistry(cfg.ProveThreads, cfg.Seed, cfg.Backends),
		jobs:       make(chan *job, cfg.QueueDepth),
		done:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.met.perBackend = make(map[string]*backendMetrics, len(cfg.Backends))
	for _, name := range s.reg.Backends() {
		s.met.perBackend[name] = &backendMetrics{}
	}
	return s
}

// Registry exposes the circuit cache (e.g. to pre-warm circuits at boot).
func (s *Service) Registry() *Registry { return s.reg }

// Backends returns the backend names this service serves.
func (s *Service) Backends() []string { return s.reg.Backends() }

// Start launches the worker pool.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
}

// Prove submits a request and blocks until the proof is ready, the
// request's deadline expires, ctx is cancelled, or the service sheds it.
// Queue saturation fails fast with ErrQueueFull.
func (s *Service) Prove(ctx context.Context, req ProveRequest) (*ProveResult, error) {
	j, err := s.enqueue(ctx, req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// Abandon the job: cancelling its context makes the worker (or
		// the kernels, if already running) bail out at the next check.
		j.cancel()
		return nil, ctx.Err()
	}
}

// ProveBatch submits several requests at once and waits for all of them.
// Admission is per-item: results[i]/errs[i] correspond to reqs[i], and
// items that did not fit in the queue fail with ErrQueueFull while the
// rest proceed.
func (s *Service) ProveBatch(ctx context.Context, reqs []ProveRequest) ([]*ProveResult, []error) {
	results := make([]*ProveResult, len(reqs))
	errs := make([]error, len(reqs))
	jobs := make([]*job, len(reqs))
	for i, req := range reqs {
		jobs[i], errs[i] = s.enqueue(ctx, req)
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case <-j.done:
			results[i], errs[i] = j.res, j.err
		case <-ctx.Done():
			j.cancel()
			errs[i] = ctx.Err()
		}
	}
	return results, errs
}

func (s *Service) enqueue(ctx context.Context, req ProveRequest) (*job, error) {
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	// Reject unknown backends before they consume a queue slot; unknown
	// curves surface from the registry inside the worker.
	if !s.reg.backendEnabled(req.Backend) {
		s.met.rejected.Add(1)
		return nil, fmt.Errorf("%w %q (serving: %v)", backend.ErrUnknownBackend, req.Backend, s.reg.Backends())
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var jctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		jctx, cancel = context.WithCancel(ctx)
	}
	// A forced shutdown (drain deadline expired) aborts this job too.
	stop := context.AfterFunc(s.baseCtx, cancel)

	j := &job{
		ctx:    jctx,
		cancel: cancel,
		stop:   stop,
		req:    req,
		enq:    time.Now(),
		done:   make(chan struct{}),
	}

	// The RLock is held across the non-blocking send so Shutdown (which
	// takes the write lock before draining the queue) can never miss a
	// concurrent enqueue.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		cancel()
		stop()
		s.met.rejected.Add(1)
		return nil, ErrDraining
	}
	select {
	case s.jobs <- j:
		s.met.accepted.Add(1)
		return j, nil
	default:
		cancel()
		stop()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

func (s *Service) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.done:
			return
		case j := <-s.jobs:
			s.run(j)
		}
	}
}

// run executes one job on the calling worker goroutine.
func (s *Service) run(j *job) {
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if h := s.hookJobStart; h != nil {
		h()
	}

	wait := time.Since(j.enq)
	s.met.queueWait.Observe(wait)

	if err := j.ctx.Err(); err != nil {
		s.met.canceled.Add(1)
		j.finish(nil, err)
		return
	}

	art, err := s.reg.Get(j.ctx, j.req.Curve, j.req.Backend, j.req.Source)
	if err != nil {
		s.fail(j, err)
		return
	}
	bm := s.met.forBackend(j.req.Backend)

	t0 := time.Now()
	w, err := witness.Solve(art.Sys, art.Prog, j.req.Inputs)
	if err != nil {
		s.fail(j, fmt.Errorf("provesvc: witness: %w", err))
		return
	}
	witnessTime := time.Since(t0)
	s.met.witnessLat.Observe(witnessTime)

	t1 := time.Now()
	rng := ff.NewRNG(mix64(s.cfg.Seed ^ (0x9e3779b97f4a7c15 * s.seedCtr.Add(1))))
	proof, err := art.Backend.Prove(j.ctx, art.Sys, art.PK, w, rng)
	if err != nil {
		s.fail(j, err)
		return
	}
	proveTime := time.Since(t1)
	s.met.proveLat.Observe(proveTime)

	total := time.Since(j.enq)
	s.met.totalLat.Observe(total)
	s.met.completed.Add(1)
	if bm != nil {
		bm.witnessLat.Observe(witnessTime)
		bm.proveLat.Observe(proveTime)
		bm.totalLat.Observe(total)
		bm.completed.Add(1)
	}
	j.finish(&ProveResult{
		Proof:       proof,
		Public:      w.Public,
		Artifact:    art,
		QueueWait:   wait,
		WitnessTime: witnessTime,
		ProveTime:   proveTime,
		Total:       total,
	}, nil)
}

// fail records a job failure, classifying cancellations separately.
func (s *Service) fail(j *job, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.met.canceled.Add(1)
	} else {
		s.met.failed.Add(1)
	}
	j.finish(nil, err)
}

// Verify checks a proof against the circuit's cached verifying key. It
// runs inline on the caller's goroutine — verification is milliseconds,
// not worth a queue slot. Returns (false, nil) for a well-formed but
// invalid proof and (false, err) for infrastructure errors.
func (s *Service) Verify(ctx context.Context, req VerifyRequest) (bool, error) {
	if req.Curve == "" {
		req.Curve = "bn128"
	}
	if req.Backend == "" {
		req.Backend = DefaultBackend
	}
	if req.Proof == nil {
		return false, fmt.Errorf("provesvc: verify: missing proof")
	}
	art, err := s.reg.Get(ctx, req.Curve, req.Backend, req.Source)
	if err != nil {
		return false, err
	}
	t0 := time.Now()
	err = art.Backend.Verify(art.VK, req.Proof, req.Public)
	d := time.Since(t0)
	s.met.verifyLat.Observe(d)
	s.met.verified.Add(1)
	if bm := s.met.forBackend(req.Backend); bm != nil {
		bm.verifyLat.Observe(d)
	}
	if errors.Is(err, backend.ErrInvalidProof) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Snapshot {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	hits, misses := s.reg.Hits(), s.reg.Misses()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	backends := make(map[string]BackendSnapshot, len(s.met.perBackend))
	for name, bm := range s.met.perBackend {
		backends[name] = bm.snapshot()
	}
	return Snapshot{
		Accepted:  s.met.accepted.Load(),
		Rejected:  s.met.rejected.Load(),
		Completed: s.met.completed.Load(),
		Failed:    s.met.failed.Load(),
		Canceled:  s.met.canceled.Load(),
		Dropped:   s.met.dropped.Load(),
		Verified:  s.met.verified.Load(),

		Workers:    s.cfg.Workers,
		InFlight:   int(s.met.inFlight.Load()),
		QueueDepth: len(s.jobs),
		QueueCap:   cap(s.jobs),
		Draining:   draining,

		CacheHits:    hits,
		CacheMisses:  misses,
		CacheHitRate: hitRate,
		Setups:       s.reg.Setups(),

		Stages: map[string]LatencySummary{
			"queue_wait": s.met.queueWait.summary(),
			"witness":    s.met.witnessLat.summary(),
			"prove":      s.met.proveLat.summary(),
			"total":      s.met.totalLat.summary(),
			"verify":     s.met.verifyLat.summary(),
		},
		Backends: backends,
	}
}

// Shutdown gracefully stops the service: it rejects new submissions,
// discards still-queued jobs (failing them with ErrDropped), lets
// in-flight jobs finish until ctx expires, then force-cancels whatever is
// left. It returns a report of what happened; safe to call once.
func (s *Service) Shutdown(ctx context.Context) (*DrainReport, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("provesvc: already shut down")
	}
	s.draining = true
	s.mu.Unlock()

	rep := &DrainReport{}

	// Discard queued jobs. Workers may race us for them — jobs they win
	// become in-flight and are drained below, which only shrinks Dropped.
	for {
		select {
		case j := <-s.jobs:
			s.met.dropped.Add(1)
			rep.Dropped++
			j.finish(nil, ErrDropped)
		default:
			goto emptied
		}
	}
emptied:
	rep.Drained = int(s.met.inFlight.Load())
	close(s.done) // idle workers exit; busy ones finish their job first

	finished := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		rep.Forced = int(s.met.inFlight.Load())
		rep.Drained -= rep.Forced
		s.baseCancel() // cancel in-flight job contexts
		<-finished     // kernels bail at the next chunk boundary
		err = ctx.Err()
	}
	s.baseCancel()
	return rep, err
}
