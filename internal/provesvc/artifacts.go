package provesvc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"zkperf/internal/backend"
	"zkperf/internal/curve"
	"zkperf/internal/faultinject"
	"zkperf/internal/r1cs"
)

// The disk artifact store. The comparative literature (ZKProphet, SZKP)
// treats setup/key material as the dominant amortizable cost of a
// prover; our in-memory registry amortizes it across requests, and this
// store amortizes it across process restarts. The failure model is
// deliberately paranoid, because a corrupt proving key is the worst
// artifact to load — it silently produces garbage proofs:
//
//   - Writes are crash-safe: payload → temp file in the same directory,
//     fsync, atomic rename over the final name, fsync of the directory.
//     A crash at any point leaves either the old file or a stray *.tmp
//     (swept on startup), never a torn *.zka.
//   - Every file carries a header checksum (SHA-256 of the payload) plus
//     the full circuit key; loads verify both before decoding.
//   - Anything invalid — bad magic, short file, checksum mismatch, key
//     mismatch, decode failure — quarantines the file (rename to
//     *.corrupt) and reports a cache miss so the registry recompiles.
//     Corruption is never a panic and never an error surfaced to a job.
//
// File format (everything little-endian):
//
//	magic   [8]byte  "ZKARTv1\n"
//	sum     [32]byte sha256 of the payload (everything after the header)
//	payload:
//	  backend  u16 len + bytes      curve  u16 len + bytes
//	  srcHash  [32]byte             (the registry's circuit-source hash)
//	  pk       u64 len + bytes      (backend.ProvingKey.Encode)
//	  vk       u64 len + bytes      (backend.VerifyingKey.Encode)
//
// Only keys are persisted: the constraint system and solver program are
// recompiled from source (cheap, and the source is the cache key anyway).
// PLONK's proving key serializes as SRS+domain and is re-preprocessed on
// load by its ReadProvingKey, exactly like the CLI pipeline.

var artifactMagic = [8]byte{'Z', 'K', 'A', 'R', 'T', 'v', '1', '\n'}

// errArtifactCorrupt tags validation failures that quarantine a file.
var errArtifactCorrupt = errors.New("provesvc: corrupt artifact file")

// artifactStore persists (ProvingKey, VerifyingKey) pairs per CircuitKey
// under one directory. Concurrency: the registry's singleflight already
// serializes all work per key, so the store itself needs no locking
// beyond its counters.
type artifactStore struct {
	dir string

	diskLoads   atomic.Uint64 // artifacts served from disk (setup skipped)
	diskWrites  atomic.Uint64 // artifacts persisted
	quarantined atomic.Uint64 // files renamed to *.corrupt
	writeErrors atomic.Uint64 // failed persists (job unaffected)
}

// newArtifactStore opens (creating if needed) dir and sweeps stale temp
// files left by a previous crash, quarantining any *.zka that fails its
// checksum so startup never trusts a torn file.
func newArtifactStore(dir string) (*artifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("provesvc: artifact dir: %w", err)
	}
	st := &artifactStore{dir: dir}
	st.scan()
	return st, nil
}

// scan validates every *.zka header+checksum, quarantining failures, and
// removes orphaned *.tmp files from interrupted writes.
func (st *artifactStore) scan() {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(st.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(path) // a write that never reached its rename
		case strings.HasSuffix(name, ".zka"):
			if _, err := st.readValidated(path); err != nil {
				st.quarantine(path)
			}
		}
	}
}

// path names the artifact file for key: the leading 12 bytes of the
// source hash plus the curve and backend, all filename-safe.
func (st *artifactStore) path(key CircuitKey) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, strings.ToLower(s))
	}
	return filepath.Join(st.dir, fmt.Sprintf("%s.%s.%s.zka",
		hex.EncodeToString(key.SourceHash[:12]), clean(key.Curve), clean(key.Backend)))
}

// quarantine renames a corrupt file out of the cache namespace so it is
// preserved for inspection but never considered again.
func (st *artifactStore) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Rename can only really fail if the file vanished; removing the
		// source of corruption matters more than preserving it.
		os.Remove(path)
	}
	st.quarantined.Add(1)
}

// readValidated reads path and returns its payload after verifying the
// magic and checksum. Any validation failure wraps errArtifactCorrupt.
func (st *artifactStore) readValidated(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(artifactMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d-byte file shorter than header", errArtifactCorrupt, len(raw))
	}
	if !bytes.Equal(raw[:len(artifactMagic)], artifactMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", errArtifactCorrupt)
	}
	payload := raw[len(artifactMagic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[len(artifactMagic):len(artifactMagic)+sha256.Size], sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errArtifactCorrupt)
	}
	return payload, nil
}

// load returns the persisted keys for key, decoded against bk and sys.
// ok is false on any miss — absent file, corrupt file (quarantined), or
// decode failure — and the caller falls back to a fresh setup.
func (st *artifactStore) load(ctx context.Context, key CircuitKey, bk backend.Backend, sys *r1cs.System) (pk backend.ProvingKey, vk backend.VerifyingKey, ok bool) {
	path := st.path(key)
	payload, err := st.readValidated(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, false
	}
	if err == nil {
		err = faultinject.Point(ctx, faultinject.PointArtifactLoad)
	}
	if err == nil {
		pk, vk, err = decodeArtifactPayload(payload, key, bk, sys)
	}
	if err != nil {
		st.quarantine(path)
		return nil, nil, false
	}
	st.diskLoads.Add(1)
	return pk, vk, true
}

func decodeArtifactPayload(payload []byte, key CircuitKey, bk backend.Backend, sys *r1cs.System) (backend.ProvingKey, backend.VerifyingKey, error) {
	r := bytes.NewReader(payload)
	readStr := func() (string, error) {
		var n uint16
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	backendName, err := readStr()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errArtifactCorrupt, err)
	}
	curveName, err := readStr()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errArtifactCorrupt, err)
	}
	var srcHash [sha256.Size]byte
	if _, err := io.ReadFull(r, srcHash[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errArtifactCorrupt, err)
	}
	if backendName != key.Backend || curveName != key.Curve || srcHash != key.SourceHash {
		return nil, nil, fmt.Errorf("%w: artifact key mismatch (have %s/%s, want %s/%s)",
			errArtifactCorrupt, backendName, curveName, key.Backend, key.Curve)
	}
	readBlob := func() ([]byte, error) {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", n, r.Len())
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	pkBytes, err := readBlob()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errArtifactCorrupt, err)
	}
	vkBytes, err := readBlob()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errArtifactCorrupt, err)
	}
	pk, err := bk.ReadProvingKey(bytes.NewReader(pkBytes), sys)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: proving key: %v", errArtifactCorrupt, err)
	}
	vk, err := bk.ReadVerifyingKey(bytes.NewReader(vkBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: verifying key: %v", errArtifactCorrupt, err)
	}
	return pk, vk, nil
}

// save persists the keys for key crash-safely. Persistence failures are
// counted, the job that produced the keys is never affected, and a
// failed write leaves no *.zka behind (at worst a *.tmp swept on the
// next start — the kill-between-write window).
func (st *artifactStore) save(ctx context.Context, key CircuitKey, pk backend.ProvingKey, vk backend.VerifyingKey) error {
	err := st.trySave(ctx, key, pk, vk)
	if err != nil {
		st.writeErrors.Add(1)
		return err
	}
	st.diskWrites.Add(1)
	return nil
}

func (st *artifactStore) trySave(ctx context.Context, key CircuitKey, pk backend.ProvingKey, vk backend.VerifyingKey) error {
	var payload bytes.Buffer
	writeStr := func(s string) {
		binary.Write(&payload, binary.LittleEndian, uint16(len(s)))
		payload.WriteString(s)
	}
	writeStr(key.Backend)
	writeStr(key.Curve)
	payload.Write(key.SourceHash[:])
	writeBlob := func(enc func(io.Writer) error) error {
		var b bytes.Buffer
		if err := enc(&b); err != nil {
			return err
		}
		binary.Write(&payload, binary.LittleEndian, uint64(b.Len()))
		payload.Write(b.Bytes())
		return nil
	}
	if err := writeBlob(pk.Encode); err != nil {
		return fmt.Errorf("provesvc: encoding proving key: %w", err)
	}
	if err := writeBlob(vk.Encode); err != nil {
		return fmt.Errorf("provesvc: encoding verifying key: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	final := st.path(key)
	f, err := os.CreateTemp(st.dir, filepath.Base(final)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// The fault-injection writer simulates the process dying with the
	// temp file half-written; the stray *.tmp is what scan() sweeps.
	w := faultinject.LimitWriter(ctx, faultinject.PointArtifactWrite, f)
	if _, err = w.Write(artifactMagic[:]); err == nil {
		if _, err = w.Write(sum[:]); err == nil {
			_, err = w.Write(payload.Bytes())
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// The kill-between-write window: temp file durable, rename not yet
		// performed.
		err = faultinject.Point(ctx, faultinject.PointArtifactRename)
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself survives a power cut.
	if d, derr := os.Open(st.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ArtifactStats is the `artifacts` block of /v1/stats.
type ArtifactStats struct {
	// Enabled is true when WithArtifactDir configured a store.
	Enabled bool `json:"enabled"`
	// Dir is the persistence directory ("" when disabled).
	Dir string `json:"dir,omitempty"`
	// DiskLoads counts artifacts served from disk — each one a trusted
	// setup that did not have to re-run after a restart.
	DiskLoads uint64 `json:"disk_loads"`
	// DiskWrites counts artifacts persisted.
	DiskWrites uint64 `json:"disk_writes"`
	// Quarantined counts corrupt files renamed to *.corrupt.
	Quarantined uint64 `json:"quarantined"`
	// WriteErrors counts failed persists (the proving job is unaffected).
	WriteErrors uint64 `json:"write_errors"`
	// Tables reports fixed-base generator-table provenance: TableBuilds
	// counts tables computed from scratch this process, TableLoads tables
	// served from disk — a warm restart shows table_builds == 0.
	TableBuilds      uint64 `json:"table_builds"`
	TableLoads       uint64 `json:"table_loads"`
	TableWrites      uint64 `json:"table_writes"`
	TableQuarantined uint64 `json:"table_quarantined"`
}

func (st *artifactStore) stats() ArtifactStats {
	ts := curve.ReadTableStats()
	out := ArtifactStats{
		TableBuilds:      ts.Builds,
		TableLoads:       ts.DiskLoads,
		TableWrites:      ts.DiskWrites,
		TableQuarantined: ts.Quarantined,
	}
	if st == nil {
		return out
	}
	out.Enabled = true
	out.Dir = st.dir
	out.DiskLoads = st.diskLoads.Load()
	out.DiskWrites = st.diskWrites.Load()
	out.Quarantined = st.quarantined.Load()
	out.WriteErrors = st.writeErrors.Load()
	return out
}
