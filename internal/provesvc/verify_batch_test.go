package provesvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/ff"
)

// proveOne is a test helper: one synchronous prove through the service,
// returning the result so its proof/public can feed verify requests.
func proveOne(t *testing.T, s *Service, src, backendName string, x uint64) *ProveResult {
	t.Helper()
	res, err := s.Prove(context.Background(), ProveRequest{
		Backend: backendName,
		Source:  src,
		Inputs:  assignX(t, s, "bn128", x),
	})
	if err != nil {
		t.Fatalf("prove(%s, x=%d): %v", backendName, x, err)
	}
	return res
}

// TestServiceVerifyBatchGrouping drives VerifyBatch with a mixed bag:
// two distinct circuits (two fold groups), a valid and an invalid proof
// in the same group, and a malformed request. Results must stay
// index-aligned and the batch counters must reflect two folds.
func TestServiceVerifyBatchGrouping(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(31))
	s.Start()
	defer s.Shutdown(context.Background())

	srcA := circuit.ExponentiateSource(8)
	srcB := circuit.ExponentiateSource(16)
	resA := proveOne(t, s, srcA, "", 2)
	resA2 := proveOne(t, s, srcA, "", 3)
	resB := proveOne(t, s, srcB, "", 2)

	reqs := []VerifyRequest{
		{Source: srcA, Proof: resA.Proof, Public: resA.Public},
		{Source: srcB, Proof: resB.Proof, Public: resB.Public},
		// Same group as item 0, but the proof belongs to x=3 while the
		// public claims x=2's output: invalid, and only this item.
		{Source: srcA, Proof: resA2.Proof, Public: resA.Public},
		{Source: srcA}, // missing proof: per-item error, never folded
	}
	oks, errs := s.VerifyBatch(context.Background(), reqs)
	if !oks[0] || !oks[1] {
		t.Errorf("oks = %v, want items 0 and 1 valid", oks)
	}
	if oks[2] || errs[2] != nil {
		t.Errorf("item 2 = (%v, %v), want invalid with nil error", oks[2], errs[2])
	}
	if errs[3] == nil {
		t.Error("item 3 with nil proof should carry an error")
	}
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("errs = %v, want nil for valid items", errs)
	}

	st := s.Stats().VerifyBatch
	if st.Batches != 2 {
		t.Errorf("verify_batch.batches = %d, want 2 (one per circuit)", st.Batches)
	}
	if st.Proofs != 3 {
		t.Errorf("verify_batch.proofs = %d, want 3 (malformed item excluded)", st.Proofs)
	}
	if st.Coalesced != 0 {
		t.Errorf("verify_batch.coalesced = %d, want 0 without the coalescer", st.Coalesced)
	}
	if st.Size.Count != 2 || st.Latency.Count != 2 {
		t.Errorf("verify_batch size/latency counts = %d/%d, want 2/2", st.Size.Count, st.Latency.Count)
	}
}

// TestHTTPVerifyBatch pins the POST /v1/verify/batch wire contract:
// {"items":[…]} in, index-aligned {"results":[{"index","valid"|"error"}]}
// out, always 200 — per-item failures never fail their neighbours.
func TestHTTPVerifyBatch(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(37))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	prove := map[string]any{"circuit": src, "inputs": map[string]string{"x": "3"}}
	resp, out := postJSON(t, ts.URL+"/v1/prove", prove)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove status = %d, body %v", resp.StatusCode, out)
	}
	proofHex, _ := out["proof"].(string)

	body := map[string]any{"items": []map[string]any{
		{"circuit": src, "proof": proofHex, "public": []string{"43046721"}},
		{"circuit": src, "proof": proofHex, "public": []string{"999"}},  // wrong public: invalid
		{"circuit": src, "proof": "zz", "public": []string{"43046721"}}, // undecodable: envelope
		{"circuit": src, "proof": proofHex, "public": []string{"43046721"}, "backend": "stark"},
	}}
	resp, out = postJSON(t, ts.URL+"/v1/verify/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify/batch status = %d, body %v", resp.StatusCode, out)
	}
	results, _ := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results = %d items, want 4", len(results))
	}
	for i, want := range []struct {
		valid any
		code  string
	}{
		{valid: true},
		{valid: false},
		{code: "bad_request"},
		{code: "unknown_backend"},
	} {
		item := results[i].(map[string]any)
		if idx := item["index"]; idx != float64(i) {
			t.Errorf("results[%d].index = %v, want %d", i, idx, i)
		}
		if want.code != "" {
			env, _ := item["error"].(map[string]any)
			if env == nil {
				t.Errorf("results[%d] = %v, want an error envelope", i, item)
				continue
			}
			wantEnvelope(t, env, want.code, false)
			if _, has := item["valid"]; has {
				t.Errorf("results[%d] carries both valid and error", i)
			}
			continue
		}
		if item["valid"] != want.valid {
			t.Errorf("results[%d].valid = %v, want %v", i, item["valid"], want.valid)
		}
	}

	var st Snapshot
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.VerifyBatch.Batches != 1 || st.VerifyBatch.Proofs != 2 {
		t.Errorf("verify_batch = %+v, want 1 batch of 2 folded proofs", st.VerifyBatch)
	}
}

// TestHTTPProveBatchItems pins the unified request shape: /v1/prove/batch
// takes {"items":[…]} (the retired {"requests":[…]} alias is rejected,
// see TestHTTPBatchAliasRetired) and each result slot carries its index.
func TestHTTPProveBatchItems(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(41))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	body := map[string]any{"items": []map[string]any{
		{"circuit": src, "inputs": map[string]string{"x": "2"}},
		{"circuit": src, "inputs": map[string]string{}}, // missing input
	}}
	resp, out := postJSON(t, ts.URL+"/v1/prove/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	results, _ := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d items, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["index"] != float64(0) || first["proof"] == "" {
		t.Errorf("results[0] = %v, want index 0 with a proof", first)
	}
	second := results[1].(map[string]any)
	env, _ := second["error"].(map[string]any)
	if second["index"] != float64(1) || env == nil {
		t.Fatalf("results[1] = %v, want index 1 with an error envelope", second)
	}
	wantEnvelope(t, env, "bad_request", false)
}

// TestHTTPJobsBatchSubmit pins batch submit on POST /v1/jobs: admission
// is per item — a rejected slot carries its envelope while its
// neighbours are accepted and run to completion.
func TestHTTPJobsBatchSubmit(t *testing.T) {
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(43))
	s.Start()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	src := circuit.ExponentiateSource(16)
	body := map[string]any{"items": []map[string]any{
		{"kind": "prove", "circuit": src, "inputs": map[string]string{"x": "2"}},
		{"kind": "transmute", "circuit": src},
	}}
	resp, out := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jobs batch status = %d, body %v", resp.StatusCode, out)
	}
	results, _ := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d items, want 2", len(results))
	}
	first := results[0].(map[string]any)
	id, _ := first["id"].(string)
	if first["index"] != float64(0) || id == "" {
		t.Fatalf("results[0] = %v, want index 0 with a job id", first)
	}
	second := results[1].(map[string]any)
	env, _ := second["error"].(map[string]any)
	if env == nil {
		t.Fatalf("results[1] = %v, want an error envelope for the unknown kind", second)
	}
	wantEnvelope(t, env, "bad_request", false)

	// The accepted job runs to completion and serves its result.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jresp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr map[string]any
		if err := json.NewDecoder(jresp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		jresp.Body.Close()
		if jr["state"] == "done" {
			break
		}
		if jr["state"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("job %s state = %v, want done", id, jr["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVerifyCoalesceBounds exercises the coalescer's two flush paths
// under -race: with max=4 and nine concurrent same-circuit callers the
// group splits 4+4+1 (appends are serialized and a group detaches the
// instant it reaches max, so no batch ever exceeds it), and the
// straggler is flushed by the window timer rather than waiting forever.
// One caller presents a wrong public input and must be the only one
// told invalid.
func TestVerifyCoalesceBounds(t *testing.T) {
	const window, max = 250 * time.Millisecond, 4
	s := New(WithWorkers(2), WithQueueDepth(8), WithSeed(47),
		WithVerifyCoalesce(window, max))
	s.Start()
	defer s.Shutdown(context.Background())

	src := circuit.ExponentiateSource(8)
	res := proveOne(t, s, src, "", 2)

	const callers = 9
	const badCaller = 5
	oks := make([]bool, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := VerifyRequest{Source: src, Proof: res.Proof, Public: res.Public}
			if i == badCaller {
				// Claim y=1 instead of the real output: invalid, and the
				// fold's bisection must pin the blame on this caller alone.
				pub := make([]ff.Element, len(res.Public))
				copy(pub, res.Public)
				pub[1] = pub[0]
				req.Public = pub
			}
			oks[i], errs[i] = s.Verify(context.Background(), req)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Errorf("caller %d error: %v", i, errs[i])
		}
		if oks[i] != (i != badCaller) {
			t.Errorf("caller %d valid = %v, want %v", i, oks[i], i != badCaller)
		}
	}
	// The straggler group waits for the window timer; everyone is done
	// within a few windows (plus fold time — generous for -race), not
	// hanging on a never-filled group.
	if elapsed > 30*window {
		t.Errorf("coalesced verifies took %v, want well under %v", elapsed, 30*window)
	}

	st := s.Stats().VerifyBatch
	if st.Proofs != callers {
		t.Errorf("verify_batch.proofs = %d, want %d", st.Proofs, callers)
	}
	if st.Batches != 3 {
		t.Errorf("verify_batch.batches = %d, want 3 (4+4+1 split)", st.Batches)
	}
	if st.Coalesced != 8 {
		t.Errorf("verify_batch.coalesced = %d, want 8 (the two full groups)", st.Coalesced)
	}

	// A caller whose context is already dead stops waiting immediately
	// but must not poison the group: the timer still folds it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Verify(ctx, VerifyRequest{Source: src, Proof: res.Proof, Public: res.Public}); err == nil {
		t.Error("verify with canceled context should return the context error")
	}
	deadline := time.Now().Add(20 * window)
	for s.Stats().VerifyBatch.Batches != 4 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned request was never flushed by the window timer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
