package provesvc

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/jobs"
)

// histBuckets bounds the log₂ latency histogram: bucket 40 covers ~18
// minutes in microseconds, far beyond any sane job deadline.
const histBuckets = 41

// histogram is a lock-free log₂-bucketed latency histogram. Sample d
// lands in bucket bits.Len64(d in µs), so bucket i covers [2^{i−1}, 2^i)
// microseconds. Quantiles are read from a snapshot and reported as the
// bucket's upper bound — a ≤2× overestimate, which is the right bias for
// a serving SLO readout.
type histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

func (h *histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// StageSummary is the JSON digest of one latency histogram — the
// {count, p50_ms, p95_ms, p99_ms} leaf of the documented /v1/stats
// schema (mean_ms rides along for capacity math).
type StageSummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (h *histogram) summary() StageSummary {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := StageSummary{Count: total}
	if total == 0 {
		return s
	}
	s.MeanMs = float64(h.sumNs.Load()) / float64(total) / 1e6
	quantile := func(p float64) float64 {
		target := uint64(p * float64(total))
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				// Upper bound of bucket i in ms: 2^i µs.
				return float64(uint64(1)<<uint(i)) / 1e3
			}
		}
		return float64(uint64(1)<<uint(histBuckets-1)) / 1e3
	}
	s.P50Ms = quantile(0.50)
	s.P95Ms = quantile(0.95)
	s.P99Ms = quantile(0.99)
	return s
}

// sizeHistogram is the count analogue of histogram: lock-free log₂
// buckets over small integers (verify batch sizes). Bucket i covers
// [2^{i−1}, 2^i); quantiles report the bucket's upper bound.
type sizeHistogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [17]atomic.Uint64 // bucket 16 covers sizes ≥ 32768
}

func (h *sizeHistogram) Observe(n int) {
	if n < 0 {
		n = 0
	}
	i := bits.Len64(uint64(n))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(n))
}

// quantile returns the p-quantile as a bucket upper bound (0 when empty).
func (h *sizeHistogram) quantile(p float64) uint64 {
	var counts [17]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << uint(len(counts)-1)
}

// SizeSummary is the JSON digest of a sizeHistogram.
type SizeSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
}

func (h *sizeHistogram) summary() SizeSummary {
	s := SizeSummary{Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(s.Count)
	s.P50 = h.quantile(0.50)
	s.P95 = h.quantile(0.95)
	return s
}

// backendMetrics is the per-backend slice of the service metrics, so
// /v1/stats can show where each scheme's latency distribution sits (the
// MSM- vs NTT-bound trade-off the comparative literature predicts) and
// where its load was shed.
type backendMetrics struct {
	completed  atomic.Uint64
	failed     atomic.Uint64
	rejected   atomic.Uint64 // ErrQueueFull + ErrDraining + circuit_open, attributed here
	cancelled  atomic.Uint64 // cancellation / deadline during execution
	panics     atomic.Uint64 // prove panics recovered on a worker
	timeouts   atomic.Uint64 // deadline expiries (also counted in cancelled)
	witnessLat histogram
	proveLat   histogram
	totalLat   histogram
	verifyLat  histogram
}

// metrics holds the service's atomic counters and per-stage histograms.
// Everything here is updated without locks so the hot path never contends
// with a /stats scrape; perBackend is populated once at construction and
// only read afterwards.
type metrics struct {
	accepted  atomic.Uint64 // jobs admitted to the queue
	rejected  atomic.Uint64 // ErrQueueFull + ErrDraining rejections
	completed atomic.Uint64 // jobs that produced a proof
	failed    atomic.Uint64 // jobs that errored (compile, witness, prove)
	canceled  atomic.Uint64 // jobs aborted by cancellation or deadline
	dropped   atomic.Uint64 // queued jobs discarded during shutdown
	verified  atomic.Uint64 // verify requests served (valid or not)
	panics    atomic.Uint64 // prove panics recovered on workers
	timeouts  atomic.Uint64 // deadline expiries (also counted in canceled)
	inFlight  atomic.Int64  // jobs currently executing on a worker

	queueWait histogram // enqueue → worker pickup

	// Folded-verify accounting: one "batch" per same-circuit group that
	// went through a folded check (VerifyBatch or the coalescer).
	vbBatches   atomic.Uint64
	vbProofs    atomic.Uint64
	vbCoalesced atomic.Uint64 // single verifies that shared a fold
	vbSize      sizeHistogram
	vbLat       histogram // wall time per folded batch

	perBackend map[string]*backendMetrics

	// errCodes counts the error envelopes the HTTP layer served, by
	// stable code — the `errors` block of /v1/stats. Errors are rare and
	// off the prove hot path, so a mutex-guarded map is fine.
	errMu    sync.Mutex
	errCodes map[string]uint64
}

// countError books one served error envelope under its stable code.
func (m *metrics) countError(code string) {
	m.errMu.Lock()
	if m.errCodes == nil {
		m.errCodes = make(map[string]uint64)
	}
	m.errCodes[code]++
	m.errMu.Unlock()
}

// errorSnapshot copies the error-code counters for /v1/stats.
func (m *metrics) errorSnapshot() map[string]uint64 {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	out := make(map[string]uint64, len(m.errCodes))
	for code, n := range m.errCodes {
		out[code] = n
	}
	return out
}

// forBackend returns the per-backend slice, or nil for names outside the
// configured set (callers simply skip the extra observation).
func (m *metrics) forBackend(name string) *backendMetrics {
	return m.perBackend[name]
}

// ServiceStats is the `service` block of the /v1/stats schema: lifetime
// request counters and the worker-pool state.
type ServiceStats struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Dropped   uint64 `json:"dropped"`
	Verified  uint64 `json:"verified"`
	Panics    uint64 `json:"panics"`
	Timeouts  uint64 `json:"timeouts"`
	Workers   int    `json:"workers"`
	Draining  bool   `json:"draining"`
}

// QueueStats is the `queue` block: the live queue state plus the
// enqueue-to-pickup wait distribution.
type QueueStats struct {
	Depth    int          `json:"depth"`
	Capacity int          `json:"capacity"`
	InFlight int          `json:"in_flight"`
	Wait     StageSummary `json:"wait"`
}

// CacheStats is the `cache` block: the circuit registry's hit/miss
// counters and how many trusted setups actually ran.
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Setups  uint64  `json:"setups"`
}

// BackendSnapshot is one entry of the `backends` map: outcome counters
// and per-stage latency summaries for a single proving scheme.
type BackendSnapshot struct {
	Completed uint64                  `json:"completed"`
	Failed    uint64                  `json:"failed"`
	Rejected  uint64                  `json:"rejected"`
	Cancelled uint64                  `json:"cancelled"`
	Panics    uint64                  `json:"panics"`
	Timeouts  uint64                  `json:"timeouts"`
	Stages    map[string]StageSummary `json:"stages"`
}

func (b *backendMetrics) snapshot() BackendSnapshot {
	return BackendSnapshot{
		Completed: b.completed.Load(),
		Failed:    b.failed.Load(),
		Rejected:  b.rejected.Load(),
		Cancelled: b.cancelled.Load(),
		Panics:    b.panics.Load(),
		Timeouts:  b.timeouts.Load(),
		Stages: map[string]StageSummary{
			"witness": b.witnessLat.summary(),
			"prove":   b.proveLat.summary(),
			"total":   b.totalLat.summary(),
			"verify":  b.verifyLat.summary(),
		},
	}
}

// VerifyBatchStats is the `verify_batch` block of /v1/stats: how many
// folded verify checks ran, how many proofs they covered, how many
// single verifies the coalescer folded together, and the batch size and
// latency distributions.
type VerifyBatchStats struct {
	Batches   uint64       `json:"batches"`
	Proofs    uint64       `json:"proofs"`
	Coalesced uint64       `json:"coalesced"`
	Size      SizeSummary  `json:"size"`
	Latency   StageSummary `json:"latency"`
}

// HotCircuit is one entry of the sched block's hot set: a circuit the
// classifier currently gives dedicated workers.
type HotCircuit struct {
	// Circuit is the first 8 bytes of the source hash, hex — enough to
	// correlate with client-side hashes without echoing source text.
	Circuit    string  `json:"circuit"`
	Backend    string  `json:"backend"`
	Curve      string  `json:"curve"`
	RatePerSec float64 `json:"rate_per_sec"`
	Reserved   int     `json:"reserved"`
	QueueDepth int     `json:"queue_depth"`
}

// SchedStats is the `sched` block of /v1/stats: the workload-aware
// scheduler's live classification (hot set, worker split), queue depths
// per class, and the thread-grant distribution.
type SchedStats struct {
	Enabled         bool         `json:"enabled"`
	ThreadBudget    int          `json:"thread_budget"`
	Workers         int          `json:"workers"`
	ReservedWorkers int          `json:"reserved_workers"`
	ColdWorkers     int          `json:"cold_workers"`
	HotCount        int          `json:"hot_count"`
	HotMinRate      float64      `json:"hot_min_rate"`
	Hot             []HotCircuit `json:"hot,omitempty"`
	ColdQueueDepth  int          `json:"cold_queue_depth"`
	HotQueueDepth   int          `json:"hot_queue_depth"`
	Promotions      uint64       `json:"promotions"`
	Demotions       uint64       `json:"demotions"`
	// ArrivalRatePerSec is the decayed offered load across all circuits;
	// DrainRatePerSec is how fast jobs are leaving the queues for
	// workers (the rate Retry-After hints are derived from).
	ArrivalRatePerSec float64 `json:"arrival_rate_per_sec"`
	DrainRatePerSec   float64 `json:"drain_rate_per_sec"`
	// ThreadGrant is the distribution of per-job kernel thread grants.
	ThreadGrant SizeSummary `json:"thread_grant"`
}

// Snapshot is the stable /v1/stats response shape, shared by the HTTP
// handler and the zkcli `stats` subcommand:
//
//	{
//	  "service":   {accepted, rejected, completed, failed, cancelled,
//	                dropped, verified, panics, timeouts, workers, draining},
//	  "queue":     {depth, capacity, in_flight, wait:{count,…,p99_ms}},
//	  "cache":     {hits, misses, hit_rate, setups},
//	  "backends":  {"groth16": {completed, failed, rejected, cancelled,
//	                panics, timeouts,
//	                stages:{"witness"|"prove"|"verify"|"total": {count,
//	                mean_ms, p50_ms, p95_ms, p99_ms}}}, …},
//	  "verify_batch": {batches, proofs, coalesced,
//	                size:{count, mean, p50, p95},
//	                latency:{count, mean_ms, p50_ms, p95_ms, p99_ms}},
//	  "breaker":   {enabled, threshold, cooldown_ms, open, trips, shed},
//	  "artifacts": {enabled, dir, disk_loads, disk_writes, quarantined,
//	                write_errors, table_builds, table_loads, table_writes,
//	                table_quarantined},
//	  "errors":    {"deadline_exceeded": n, "circuit_open": n, …},
//	  "jobs":      {queued, running, retained, submitted, completed,
//	                failed, canceled, evicted, rejected, oldest_queued_ms,
//	                oldest_retained_ms, ttl_ms, max_active,
//	                journal:{enabled, path, records, size_bytes, replayed,
//	                reexecuted, dedup_hits, compactions, torn_records,
//	                append_errors, compact_errors}},
//	  "sched":     {enabled, thread_budget, workers, reserved_workers,
//	                cold_workers, hot_count, hot_min_rate,
//	                hot:[{circuit, backend, curve, rate_per_sec,
//	                reserved, queue_depth}], cold_queue_depth,
//	                hot_queue_depth, promotions, demotions,
//	                arrival_rate_per_sec, drain_rate_per_sec,
//	                thread_grant:{count, mean, p50, p95}}
//	}
//
// The shape is documented in docs/API.md; additions are allowed, renames
// and removals are not.
type Snapshot struct {
	Service  ServiceStats               `json:"service"`
	Queue    QueueStats                 `json:"queue"`
	Cache    CacheStats                 `json:"cache"`
	Backends map[string]BackendSnapshot `json:"backends"`
	// VerifyBatch aggregates the folded-verification path (/v1/verify/batch
	// and the single-verify coalescer).
	VerifyBatch VerifyBatchStats `json:"verify_batch"`
	// Breaker is the per-circuit breaker's aggregate state.
	Breaker BreakerStats `json:"breaker"`
	// Artifacts is the disk artifact store's state (zero when disabled).
	Artifacts ArtifactStats `json:"artifacts"`
	// Errors counts served error envelopes by stable code.
	Errors map[string]uint64 `json:"errors"`
	// Jobs is the async job subsystem's state (POST /v1/jobs).
	Jobs jobs.Stats `json:"jobs"`
	// Sched is the workload-aware scheduler's state (hot set, worker
	// split, thread grants); present even when the scheduler is disabled
	// so the drain/arrival rates are always visible.
	Sched SchedStats `json:"sched"`
}
