package provesvc

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets bounds the log₂ latency histogram: bucket 40 covers ~18
// minutes in microseconds, far beyond any sane job deadline.
const histBuckets = 41

// histogram is a lock-free log₂-bucketed latency histogram. Sample d
// lands in bucket bits.Len64(d in µs), so bucket i covers [2^{i−1}, 2^i)
// microseconds. Quantiles are read from a snapshot and reported as the
// bucket's upper bound — a ≤2× overestimate, which is the right bias for
// a serving SLO readout.
type histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

func (h *histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// LatencySummary is the JSON-friendly digest of one histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (h *histogram) summary() LatencySummary {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := LatencySummary{Count: total}
	if total == 0 {
		return s
	}
	s.MeanMs = float64(h.sumNs.Load()) / float64(total) / 1e6
	quantile := func(p float64) float64 {
		target := uint64(p * float64(total))
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				// Upper bound of bucket i in ms: 2^i µs.
				return float64(uint64(1)<<uint(i)) / 1e3
			}
		}
		return float64(uint64(1)<<uint(histBuckets-1)) / 1e3
	}
	s.P50Ms = quantile(0.50)
	s.P95Ms = quantile(0.95)
	s.P99Ms = quantile(0.99)
	return s
}

// backendMetrics is the per-backend slice of the service metrics, so
// /stats can show where each scheme's latency distribution sits (the
// MSM- vs NTT-bound trade-off the comparative literature predicts).
type backendMetrics struct {
	completed  atomic.Uint64
	witnessLat histogram
	proveLat   histogram
	totalLat   histogram
	verifyLat  histogram
}

// metrics holds the service's atomic counters and per-stage histograms.
// Everything here is updated without locks so the hot path never contends
// with a /stats scrape; perBackend is populated once at construction and
// only read afterwards.
type metrics struct {
	accepted  atomic.Uint64 // jobs admitted to the queue
	rejected  atomic.Uint64 // ErrQueueFull + ErrDraining rejections
	completed atomic.Uint64 // jobs that produced a proof
	failed    atomic.Uint64 // jobs that errored (compile, witness, prove)
	canceled  atomic.Uint64 // jobs aborted by cancellation or deadline
	dropped   atomic.Uint64 // queued jobs discarded during shutdown
	verified  atomic.Uint64 // verify requests served (valid or not)
	inFlight  atomic.Int64  // jobs currently executing on a worker

	queueWait  histogram // enqueue → worker pickup
	witnessLat histogram
	proveLat   histogram
	totalLat   histogram // enqueue → completion, successful jobs only
	verifyLat  histogram

	perBackend map[string]*backendMetrics
}

// forBackend returns the per-backend slice, or nil for names outside the
// configured set (callers simply skip the extra observation).
func (m *metrics) forBackend(name string) *backendMetrics {
	return m.perBackend[name]
}

// BackendSnapshot is the per-backend block of the /stats response.
type BackendSnapshot struct {
	Completed uint64                    `json:"completed"`
	Stages    map[string]LatencySummary `json:"stages"`
}

func (b *backendMetrics) snapshot() BackendSnapshot {
	return BackendSnapshot{
		Completed: b.completed.Load(),
		Stages: map[string]LatencySummary{
			"witness": b.witnessLat.summary(),
			"prove":   b.proveLat.summary(),
			"total":   b.totalLat.summary(),
			"verify":  b.verifyLat.summary(),
		},
	}
}

// Snapshot is a point-in-time view of the service counters, safe to
// serialize as the /stats response.
type Snapshot struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Dropped   uint64 `json:"dropped"`
	Verified  uint64 `json:"verified"`

	Workers    int  `json:"workers"`
	InFlight   int  `json:"in_flight"`
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Draining   bool `json:"draining"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Setups       uint64  `json:"setups"`

	Stages   map[string]LatencySummary  `json:"stages"`
	Backends map[string]BackendSnapshot `json:"backends"`
}
