package cpumodel

import "testing"

func TestTableIValues(t *testing.T) {
	// Spot-check the Table I figures the models must carry.
	i7 := NewI7_8650U()
	if i7.PerfCores != 4 || i7.SMT != 8 || i7.DRAMType != "LPDDR3" ||
		i7.MemBWGBps != 34.1 || i7.LLC.SizeBytes != 8<<20 || i7.DRAMChans != 2 {
		t.Errorf("i7 model diverges from Table I: %+v", i7)
	}
	i5 := NewI5_11400()
	if i5.PerfCores != 6 || i5.SMT != 12 || i5.DRAMType != "DDR4" ||
		i5.MemBWGBps != 17.0 || i5.LLC.SizeBytes != 12<<20 || i5.DRAMChans != 1 {
		t.Errorf("i5 model diverges from Table I: %+v", i5)
	}
	i9 := NewI9_13900K()
	if i9.PerfCores != 8 || i9.EffCores != 16 || i9.SMT != 32 || i9.DRAMType != "DDR5" ||
		i9.MemBWGBps != 89.6 || i9.LLC.SizeBytes != 36<<20 || i9.DRAMChans != 4 {
		t.Errorf("i9 model diverges from Table I: %+v", i9)
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d CPUs", len(all))
	}
	for _, c := range all {
		if ByName(c.Name) != nil && ByName(c.Name).Name != c.Name {
			t.Errorf("ByName(%q) mismatch", c.Name)
		}
	}
	if ByName("pentium4") != nil {
		t.Error("ByName should return nil for unknown CPUs")
	}
}

func TestCoreSpeedOrdering(t *testing.T) {
	i9 := NewI9_13900K()
	if i9.CoreSpeed(0) != 1.0 {
		t.Error("P-core speed must be 1.0")
	}
	if i9.CoreSpeed(8) != EffCoreSpeedFactor {
		t.Error("worker 8 must be an E-core")
	}
	if i9.CoreSpeed(24) >= EffCoreSpeedFactor {
		t.Error("worker 24 must be an SMT sibling, slower than an E-core")
	}
	// Homogeneous i7: workers 0-3 are P-cores, 4+ SMT.
	i7 := NewI7_8650U()
	if i7.CoreSpeed(3) != 1.0 || i7.CoreSpeed(4) >= 1.0 {
		t.Error("i7 core speed ordering wrong")
	}
}

func TestTotals(t *testing.T) {
	i9 := NewI9_13900K()
	if i9.TotalCores() != 24 || i9.TotalThreads() != 32 {
		t.Errorf("i9 totals: cores=%d threads=%d", i9.TotalCores(), i9.TotalThreads())
	}
}

func TestPipelineParamsSane(t *testing.T) {
	for _, c := range All() {
		if c.IssueWidth < c.FetchWidth {
			t.Errorf("%s: issue width below fetch width", c.Name)
		}
		if c.FreqGHz <= 0 || c.DRAMLatency <= 0 || c.ROBSize <= 0 {
			t.Errorf("%s: non-positive pipeline parameter", c.Name)
		}
		if c.PredictorAcc <= 0.8 || c.PredictorAcc >= 1 {
			t.Errorf("%s: implausible predictor accuracy %v", c.Name, c.PredictorAcc)
		}
		for _, lvl := range []CacheLevel{c.L1I, c.L1D, c.L2, c.LLC} {
			if lvl.SizeBytes <= 0 || lvl.Ways <= 0 || lvl.LineSize != 64 {
				t.Errorf("%s: malformed cache level %+v", c.Name, lvl)
			}
		}
		// Latency ordering L1 < L2 < LLC < DRAM.
		if !(c.L1D.LatencyCyc < c.L2.LatencyCyc && c.L2.LatencyCyc < c.LLC.LatencyCyc &&
			c.LLC.LatencyCyc < c.DRAMLatency) {
			t.Errorf("%s: latency hierarchy not monotone", c.Name)
		}
	}
}
