// Package cpumodel describes the CPUs of the paper's experimental setup
// (Table I) as parameterized microarchitecture models. The host running
// this reproduction is not one of the paper's machines — and profiling
// counters (VTune, perf) are not portable — so every hardware-dependent
// analysis consumes one of these models instead: the cache simulator takes
// the cache hierarchy, the top-down model takes the pipeline parameters,
// and the scheduling simulator takes the core topology.
//
// Cache/DRAM figures come straight from Table I; the pipeline parameters
// are the published microarchitecture specifications for each core
// generation (Kaby Lake R, Rocket Lake, Raptor Lake).
package cpumodel

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	SizeBytes  int
	Ways       int
	LineSize   int
	LatencyCyc int // load-to-use latency in cycles
}

// CPU is a microarchitecture model.
type CPU struct {
	Name string // e.g. "i9-13900K"

	// Topology (Table I).
	PerfCores int
	EffCores  int
	SMT       int // total hardware threads

	// Memory system (Table I).
	DRAMType    string
	DRAMGBytes  int
	DRAMChans   int
	MemBWGBps   float64 // maximum DRAM bandwidth
	DRAMLatency int     // cycles to DRAM

	L1I, L1D, L2, LLC CacheLevel

	// NodeJS is the node.js version of the paper's Table I testbed (the
	// snarkjs host runtime); informational.
	NodeJS string

	// Pipeline (per performance core).
	FreqGHz          float64
	FetchWidth       int // instructions fetched/decoded per cycle
	IssueWidth       int // pipeline slots per cycle (top-down denominator)
	ROBSize          int
	MispredPenalty   int     // cycles lost per branch misprediction
	PredictorAcc     float64 // baseline conditional-branch predictor accuracy
	IndirectMissRate float64 // mispredict rate for indirect branches (interpreter dispatch)
}

// NewI7_8650U models the Intel i7-8650U (Kaby Lake R, 4C/8T, LPDDR3).
func NewI7_8650U() *CPU {
	return &CPU{
		Name:      "i7-8650U",
		PerfCores: 4, EffCores: 0, SMT: 8,
		DRAMType: "LPDDR3", DRAMGBytes: 16, DRAMChans: 2,
		MemBWGBps: 34.1, DRAMLatency: 170, NodeJS: "v12.22.9",
		L1I:     CacheLevel{SizeBytes: 32 << 10, Ways: 8, LineSize: 64, LatencyCyc: 4},
		L1D:     CacheLevel{SizeBytes: 32 << 10, Ways: 8, LineSize: 64, LatencyCyc: 4},
		L2:      CacheLevel{SizeBytes: 256 << 10, Ways: 4, LineSize: 64, LatencyCyc: 12},
		LLC:     CacheLevel{SizeBytes: 8 << 20, Ways: 16, LineSize: 64, LatencyCyc: 42},
		FreqGHz: 1.9, FetchWidth: 4, IssueWidth: 4, ROBSize: 224,
		MispredPenalty: 17, PredictorAcc: 0.94, IndirectMissRate: 0.20,
	}
}

// NewI5_11400 models the Intel i5-11400 (Rocket Lake, 6C/12T, DDR4,
// single channel per Table I).
func NewI5_11400() *CPU {
	return &CPU{
		Name:      "i5-11400",
		PerfCores: 6, EffCores: 0, SMT: 12,
		DRAMType: "DDR4", DRAMGBytes: 8, DRAMChans: 1,
		MemBWGBps: 17.0, DRAMLatency: 230, NodeJS: "v18.19.1",
		L1I:     CacheLevel{SizeBytes: 32 << 10, Ways: 8, LineSize: 64, LatencyCyc: 5},
		L1D:     CacheLevel{SizeBytes: 48 << 10, Ways: 12, LineSize: 64, LatencyCyc: 5},
		L2:      CacheLevel{SizeBytes: 512 << 10, Ways: 8, LineSize: 64, LatencyCyc: 13},
		LLC:     CacheLevel{SizeBytes: 12 << 20, Ways: 12, LineSize: 64, LatencyCyc: 48},
		FreqGHz: 2.6, FetchWidth: 5, IssueWidth: 5, ROBSize: 352,
		MispredPenalty: 19, PredictorAcc: 0.955, IndirectMissRate: 0.12,
	}
}

// NewI9_13900K models the Intel i9-13900K (Raptor Lake, 8P+16E/32T, DDR5,
// four channels per Table I).
func NewI9_13900K() *CPU {
	return &CPU{
		Name:      "i9-13900K",
		PerfCores: 8, EffCores: 16, SMT: 32,
		DRAMType: "DDR5", DRAMGBytes: 32, DRAMChans: 4,
		MemBWGBps: 89.6, DRAMLatency: 430, NodeJS: "v22.2.0",
		L1I:     CacheLevel{SizeBytes: 32 << 10, Ways: 8, LineSize: 64, LatencyCyc: 5},
		L1D:     CacheLevel{SizeBytes: 48 << 10, Ways: 12, LineSize: 64, LatencyCyc: 5},
		L2:      CacheLevel{SizeBytes: 2 << 20, Ways: 16, LineSize: 64, LatencyCyc: 15},
		LLC:     CacheLevel{SizeBytes: 36 << 20, Ways: 12, LineSize: 64, LatencyCyc: 66},
		FreqGHz: 5.4, FetchWidth: 6, IssueWidth: 6, ROBSize: 512,
		MispredPenalty: 21, PredictorAcc: 0.965, IndirectMissRate: 0.08,
	}
}

// All returns the three Table I CPUs in paper order.
func All() []*CPU {
	return []*CPU{NewI7_8650U(), NewI5_11400(), NewI9_13900K()}
}

// ByName returns the model with the given name, or nil.
func ByName(name string) *CPU {
	for _, c := range All() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TotalThreads returns the number of hardware threads (SMT).
func (c *CPU) TotalThreads() int { return c.SMT }

// TotalCores returns the number of physical cores.
func (c *CPU) TotalCores() int { return c.PerfCores + c.EffCores }

// EffCoreSpeedFactor is the relative throughput of an efficiency core
// versus a performance core (used by the scheduling simulator for the
// hybrid i9).
const EffCoreSpeedFactor = 0.55

// CoreSpeed returns the relative speed of hardware thread t under the
// model's scheduling order: performance cores first (one thread each),
// then efficiency cores, then the SMT sibling threads (which add only a
// fraction of a core's throughput).
func (c *CPU) CoreSpeed(t int) float64 {
	switch {
	case t < c.PerfCores:
		return 1.0
	case t < c.PerfCores+c.EffCores:
		return EffCoreSpeedFactor
	default:
		return 0.30 // SMT sibling: ~30% extra throughput
	}
}
