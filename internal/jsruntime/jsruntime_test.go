package jsruntime

import (
	"testing"

	"zkperf/internal/trace"
)

func TestRunWithNilRecorder(t *testing.T) {
	// Must not panic and must still perform the work.
	Run(nil, Light)
}

func TestWeightsOrdering(t *testing.T) {
	recs := map[Weight]*trace.Recorder{}
	for _, w := range []Weight{Light, Medium, Heavy} {
		r := trace.NewRecorder()
		Run(r, w)
		recs[w] = r
	}
	// Heavier weights do at least as much instruction-level work.
	if recs[Light].ExtraCompute >= recs[Medium].ExtraCompute {
		t.Error("Medium should execute more JS instructions than Light")
	}
	// Heavy has the largest object graph (allocation counts).
	if recs[Heavy].Allocs <= recs[Medium].Allocs {
		t.Error("Heavy should allocate more than Medium")
	}
}

func TestRunEmitsTableIVFunctions(t *testing.T) {
	r := trace.NewRecorder()
	Run(r, Medium)
	classes := map[string]bool{}
	for _, f := range r.TopFunctions() {
		if i := indexByte(f.Name, '/'); i >= 0 {
			classes[f.Name[:i]] = true
		}
	}
	for _, want := range []string{"malloc", "heap allocation", "memcpy", "page fault exception handler"} {
		if !classes[want] {
			t.Errorf("runtime profile missing function class %q", want)
		}
	}
}

func TestRunEmitsPhasesAndAccesses(t *testing.T) {
	r := trace.NewRecorder()
	Run(r, Light)
	if len(r.Phases) < 4 {
		t.Errorf("expected ≥4 phases, got %d", len(r.Phases))
	}
	if len(r.Accesses) < 4 {
		t.Errorf("expected ≥4 access patterns, got %d", len(r.Accesses))
	}
	if r.TotalLoads() == 0 || r.TotalStores() == 0 {
		t.Error("runtime should generate both loads and stores")
	}
	// Some phases are parallel (V8 worker threads).
	parallel := false
	for _, p := range r.Phases {
		if p.Grain > 1 {
			parallel = true
		}
	}
	if !parallel {
		t.Error("expected at least one parallel runtime phase")
	}
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
