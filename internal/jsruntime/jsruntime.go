// Package jsruntime simulates the JavaScript-runtime overhead of the
// snarkjs stack the paper profiles. snarkjs runs under node.js: every
// stage pays engine startup, script parsing, JIT warmup and (for the
// witness stage) WebAssembly module instantiation. This overhead is why
// the paper observes near-constant execution time, loads/stores and
// scaling behaviour for the witness and verifying stages — it dominates
// their constraint-dependent work at the evaluated sizes.
//
// A Go binary has none of these costs, so the substitute is an executable
// synthetic workload with the same structural behaviour: byte-stream
// scanning (script parsing), heap-graph construction and traversal (object
// allocation, GC-style marking), bulk buffer copies (bytecode/JIT code
// emission) and first-touch page initialization (the page-fault handler
// time of Table IV). All of it is real, measured work — the profilers
// observe it exactly as they observe the cryptographic kernels. The weight
// parameter scales the simulated module size.
package jsruntime

import (
	"zkperf/internal/trace"
)

// Weight selects the simulated runtime-initialization size.
type Weight int

const (
	// Light models a stage that only loads the engine (compile/setup/
	// proving pay this once; it is negligible against their kernels).
	Light Weight = iota
	// Medium models engine startup plus library loading (verifying).
	Medium
	// Heavy models engine startup plus WASM witness-calculator
	// instantiation (witness).
	Heavy
)

// node is a heap-graph vertex for the traversal workload.
type node struct {
	next  []*node
	value uint64
	pad   [5]uint64 // bring the node to one cache line
}

// Run executes the synthetic runtime initialization, recording events into
// rec (which may be nil: the work still runs, mirroring how the real
// runtime cost is paid whether or not a profiler watches).
func Run(rec *trace.Recorder, w Weight) {
	// Sizes model the node.js + snarkjs footprint: tens of MB of scripts
	// and dependencies scanned at startup, an object heap built and
	// GC-marked, and bytecode/JIT buffers emitted. jsInstr* is the
	// aggregate machine-instruction volume the interpreted runtime
	// executes for that work (V8 startup runs 10⁸–10⁹ instructions),
	// added to the mix in V8's characteristic category proportions.
	var graphNodes, scanBytes, copyBytes int
	var jsInstr int64
	switch w {
	case Light:
		graphNodes, scanBytes, copyBytes = 1<<13, 4<<20, 1<<19
		jsInstr = 300e6
	case Medium:
		graphNodes, scanBytes, copyBytes = 1<<15, 32<<20, 1<<21
		jsInstr = 2000e6
	default: // Heavy
		graphNodes, scanBytes, copyBytes = 1<<17, 24<<20, 1<<23
		jsInstr = 1400e6
	}
	rec.InstrBulk(jsInstr*35/100, jsInstr*25/100, jsInstr*40/100)

	// 1. "Script parsing": sequential scan with per-byte classification.
	var checksum uint64
	// Streaming parse with a background parser thread.
	rec.PhaseRun("malloc/script-parse", 2, func() {
		buf := make([]byte, scanBytes)
		for i := range buf {
			buf[i] = byte(i*31 + i>>8)
		}
		for _, b := range buf {
			switch {
			case b < 0x20:
				checksum += 3
			case b < 0x80:
				checksum += uint64(b)
			default:
				checksum ^= uint64(b) << 1
			}
		}
	})
	// Parsing is compute-bound (~1 byte/cycle through the scanner), far
	// below copy bandwidth.
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "runtime.script",
		RegionBytes: int64(scanBytes), ElemSize: 64, Touches: int64(scanBytes / 64),
		BytesPerCycle: 0.8})
	// Most scanner branches follow short predictable runs; roughly one per
	// token is data-dependent.
	rec.Branch(int64(scanBytes / 16))

	// 2. "Heap build + GC mark": allocate an object graph, link it
	// pseudo-randomly, then traverse it twice (mark + sweep order).
	// V8 marks the heap with parallel worker threads.
	rec.PhaseRun("heap allocation/object-graph", 4, func() {
		nodes := make([]*node, graphNodes)
		for i := range nodes {
			nodes[i] = &node{value: uint64(i)}
		}
		state := uint64(0x9E3779B97F4A7C15)
		for i, n := range nodes {
			n.next = make([]*node, 2)
			for j := range n.next {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				n.next[j] = nodes[state%uint64(graphNodes)]
			}
			_ = i
		}
		// Traversals: dependent pointer chases.
		cur := nodes[0]
		for pass := 0; pass < 2; pass++ {
			for step := 0; step < graphNodes; step++ {
				checksum += cur.value
				cur = cur.next[checksum&1]
			}
		}
	})
	rec.AllocN(int64(graphNodes)*2, 64)
	rec.Access(trace.Access{Kind: trace.PointerChase, Region: "runtime.heap",
		RegionBytes: int64(graphNodes) * 64, ElemSize: 64, Touches: int64(graphNodes) * 2})
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "runtime.heap",
		RegionBytes: int64(graphNodes) * 64, ElemSize: 64, Touches: int64(graphNodes), Write: true})
	rec.Dispatch(int64(graphNodes) / 4) // polymorphic call sites during marking

	// 3. "Bytecode/JIT emission": bulk copies between staging buffers,
	// including the first-touch cost of fresh pages.
	rec.PhaseRun("page fault exception handler/first-touch", 1, func() {
		dst := make([]byte, copyBytes)
		// First touch: write one byte per page (the kernel's page-fault
		// path in the real system).
		for i := 0; i < len(dst); i += 4096 {
			dst[i] = 1
		}
		_ = dst
	})
	rec.Access(trace.Access{Kind: trace.Strided, Region: "runtime.code",
		RegionBytes: int64(copyBytes), ElemSize: 8, Stride: 4096,
		Touches: int64(copyBytes / 4096), Write: true})

	// Background compiler threads emit code concurrently.
	rec.PhaseRun("memcpy/jit-emit", 2, func() {
		src := make([]byte, copyBytes)
		dst := make([]byte, copyBytes)
		for i := range src {
			src[i] = byte(i)
		}
		copy(dst, src)
		copy(src, dst[copyBytes/2:])
		copy(src[copyBytes/2:], dst)
	})
	// JIT emission copies many small scattered objects rather than one
	// bulk stream, so the traffic is recorded as random small-block moves.
	if rec != nil {
		rec.BytesCopied += int64(copyBytes) * 3
	}
	rec.Access(trace.Access{Kind: trace.Random, Region: "runtime.code",
		RegionBytes: int64(copyBytes), ElemSize: 64, Touches: int64(copyBytes * 3 / 64)})
	rec.Access(trace.Access{Kind: trace.Random, Region: "runtime.code",
		RegionBytes: int64(copyBytes), ElemSize: 64, Touches: int64(copyBytes * 3 / 64), Write: true})

	// Keep the checksum alive so the work cannot be optimized away.
	sink = checksum
}

// sink defeats dead-code elimination of the synthetic work.
var sink uint64
