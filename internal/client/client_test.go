package client

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

type testEnv struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// flakyServer fails the first n requests with the given envelope (and
// optional Retry-After header), then serves 200 {"ok":true}.
func flakyServer(t *testing.T, n int, status int, env testEnv, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Content-Type", "application/json")
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(env)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func newTestClient(srv *httptest.Server, retries int, backoff time.Duration) *Client {
	c := New(srv.URL)
	c.HTTP = srv.Client()
	c.Retries = retries
	c.Backoff = backoff
	return c
}

// TestRetryEventualSuccess: a server shedding with a retryable envelope
// (queue_full here, the same shape circuit_open and draining use) is
// retried and the call succeeds once the server recovers.
func TestRetryEventualSuccess(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusTooManyRequests,
		testEnv{Code: "queue_full", Message: "job queue full", Retryable: true}, "")
	data, err := newTestClient(srv, 3, time.Millisecond).Do(http.MethodPost, "/", []byte(`{}`))
	if err != nil {
		t.Fatalf("expected eventual success, got %v", err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("unexpected body %q", data)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

// TestRetryNonRetryableFailsFast: a retryable=false envelope must not be
// retried, no matter the budget.
func TestRetryNonRetryableFailsFast(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusBadRequest,
		testEnv{Code: "bad_request", Message: "no circuit", Retryable: false}, "")
	_, err := newTestClient(srv, 5, time.Millisecond).Do(http.MethodPost, "/", []byte(`{}`))
	var env *Error
	if !errors.As(err, &env) || env.Code != "bad_request" || env.Status != http.StatusBadRequest {
		t.Fatalf("want *Error bad_request status 400, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

// TestRetryBudgetExhausted: a server that never recovers surfaces the
// last envelope after retries+1 total attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusServiceUnavailable,
		testEnv{Code: "circuit_open", Message: "breaker cooling down", Retryable: true}, "")
	_, err := newTestClient(srv, 2, time.Millisecond).Do(http.MethodPost, "/", []byte(`{}`))
	var env *Error
	if !errors.As(err, &env) || env.Code != "circuit_open" {
		t.Fatalf("want *Error circuit_open, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryNetworkError: a dead endpoint counts as retryable and is not
// misclassified as an envelope error.
func TestRetryNetworkError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // now nothing listens there
	c := New(url)
	c.Retries = 1
	c.Backoff = time.Millisecond
	_, err := c.Do(http.MethodPost, "/", []byte(`{}`))
	if err == nil {
		t.Fatal("expected a network error")
	}
	var env *Error
	if errors.As(err, &env) {
		t.Fatalf("network failure misclassified as envelope error: %v", err)
	}
}

// TestRetryHonorsRetryAfter: a Retry-After header on a shed response is
// a floor on the backoff sleep — with a tiny base backoff the client
// must still wait out the server's hint before retrying.
func TestRetryHonorsRetryAfter(t *testing.T) {
	srv, calls := flakyServer(t, 1, http.StatusTooManyRequests,
		testEnv{Code: "queue_full", Message: "job queue full", Retryable: true}, "1")
	c := newTestClient(srv, 2, time.Nanosecond)
	var sawDelay time.Duration
	c.OnRetry = func(err error, delay time.Duration, attempt, retries int) { sawDelay = delay }
	t0 := time.Now()
	if _, err := c.Do(http.MethodPost, "/", []byte(`{}`)); err != nil {
		t.Fatalf("expected success after the hinted wait, got %v", err)
	}
	if sawDelay < time.Second {
		t.Fatalf("retry delay %v ignored the Retry-After: 1 hint", sawDelay)
	}
	if elapsed := time.Since(t0); elapsed < time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After elapsed", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestErrorCarriesRetryAfter: the parsed hint is visible on the error a
// caller gets back (the gateway uses it to stamp its own responses).
func TestErrorCarriesRetryAfter(t *testing.T) {
	srv, _ := flakyServer(t, 100, http.StatusServiceUnavailable,
		testEnv{Code: "circuit_open", Message: "cooling down", Retryable: true}, "7")
	_, err := newTestClient(srv, 0, 0).Do(http.MethodPost, "/", []byte(`{}`))
	var env *Error
	if !errors.As(err, &env) || env.RetryAfter != 7*time.Second {
		t.Fatalf("want RetryAfter=7s on the envelope error, got %v", err)
	}
}

// TestJitterBounds: the backoff doubles per attempt, stays within
// [d/2, d], and never goes non-positive or unbounded.
func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 20; attempt++ {
		d := jitter(base, attempt, rng)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > time.Minute {
			t.Fatalf("attempt %d: backoff %v above the 1m cap", attempt, d)
		}
		if attempt < 5 {
			want := base << uint(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestJitterZeroBase: a zero base asks for immediate retries; it must
// not be clamped up to the one-minute overflow cap.
func TestJitterZeroBase(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, base := range []time.Duration{0, -time.Second} {
		for attempt := 0; attempt < 5; attempt++ {
			if d := jitter(base, attempt, rng); d != 0 {
				t.Fatalf("base %v attempt %d: backoff %v, want 0", base, attempt, d)
			}
		}
	}
}

// TestParseRetryAfter covers the delta-seconds and garbage forms.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"5", 5 * time.Second},
		{"-3", 0},
		{"soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestJSONHelpers: PostJSON/GetJSON round-trip typed payloads and
// accept 202 as success (the async submit status).
func TestJSONHelpers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var in map[string]string
			json.NewDecoder(r.Body).Decode(&in)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]string{"echo": in["msg"]})
		case http.MethodGet:
			json.NewEncoder(w).Encode(map[string]string{"echo": "get"})
		case http.MethodDelete:
			json.NewEncoder(w).Encode(map[string]string{"echo": "gone"})
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	var out struct {
		Echo string `json:"echo"`
	}
	if err := c.PostJSON("/x", map[string]string{"msg": "hi"}, &out); err != nil || out.Echo != "hi" {
		t.Fatalf("PostJSON = (%+v, %v)", out, err)
	}
	if err := c.GetJSON("/x", &out); err != nil || out.Echo != "get" {
		t.Fatalf("GetJSON = (%+v, %v)", out, err)
	}
	if err := c.Delete("/x", &out); err != nil || out.Echo != "gone" {
		t.Fatalf("Delete = (%+v, %v)", out, err)
	}
}

// TestDoWithForwardsHeadersAndStatus: DoWith carries caller headers to
// the wire (the Idempotency-Key path) and reports the response status,
// so callers can tell a 200 dedup from a 202 accept.
func TestDoWithForwardsHeadersAndStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") == "dup" {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"id":"old","deduped":true}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"new"}`))
	}))
	defer srv.Close()
	c := New(srv.URL)

	status, data, err := c.DoWith(http.MethodPost, "/v1/jobs", []byte(`{}`),
		http.Header{"Idempotency-Key": {"dup"}})
	if err != nil || status != http.StatusOK || string(data) != `{"id":"old","deduped":true}` {
		t.Fatalf("DoWith dup = (%d, %q, %v), want the 200 dedup reply", status, data, err)
	}
	status, data, err = c.DoWith(http.MethodPost, "/v1/jobs", []byte(`{}`), nil)
	if err != nil || status != http.StatusAccepted || string(data) != `{"id":"new"}` {
		t.Fatalf("DoWith fresh = (%d, %q, %v), want the 202 accept", status, data, err)
	}

	var out struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	status, err = c.PostJSONWith("/v1/jobs", http.Header{"Idempotency-Key": {"dup"}}, map[string]string{}, &out)
	if err != nil || status != http.StatusOK || out.ID != "old" || !out.Deduped {
		t.Fatalf("PostJSONWith = (%d, %+v, %v), want the decoded dedup reply", status, out, err)
	}
}

// TestGetJSONHintSurfacesRetryAfter: a Retry-After on a SUCCESSFUL
// response (the job-poll pacing hint) reaches the caller; its absence
// reads as zero.
func TestGetJSONHintSurfacesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/hinted" {
			w.Header().Set("Retry-After", "2")
		}
		json.NewEncoder(w).Encode(map[string]string{"state": "running"})
	}))
	defer srv.Close()
	c := New(srv.URL)

	var out struct {
		State string `json:"state"`
	}
	hint, err := c.GetJSONHint("/hinted", &out)
	if err != nil || out.State != "running" {
		t.Fatalf("GetJSONHint = (%+v, %v)", out, err)
	}
	if hint != 2*time.Second {
		t.Fatalf("hint = %v, want 2s from Retry-After", hint)
	}
	hint, err = c.GetJSONHint("/plain", &out)
	if err != nil || hint != 0 {
		t.Fatalf("unhinted GetJSONHint = (%v, %v), want zero hint", hint, err)
	}
}
