package client

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The unified /v1 batch convention: a batch body is {"items":[…]} and
// the response is {"results":[{"index",…}|{"index","error"}]}, with
// results index-aligned to items. The pre-unification {"requests":[…]}
// spelling is retired — servers reject it with invalid_request. These
// helpers are the one place the shape is spelled out — zkcli's batch
// verify and the gateway's scatter-gather both build and split batches
// through them.

// BatchError is the per-item error envelope inside a batch result.
type BatchError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("%s: %s (retryable=%v)", e.Code, e.Message, e.Retryable)
}

// VerifyItem is one /v1/verify/batch request slot: the same fields as a
// single /v1/verify body. Proof is hex in the backend's serialization.
type VerifyItem struct {
	Curve   string   `json:"curve,omitempty"`
	Backend string   `json:"backend,omitempty"`
	Circuit string   `json:"circuit"`
	Proof   string   `json:"proof"`
	Public  []string `json:"public"`
}

// VerifyBatchResult is one /v1/verify/batch response slot. Exactly one
// of Valid and Err is set: a nil Valid means the item never reached the
// pairing check and Err says why.
type VerifyBatchResult struct {
	Index int         `json:"index"`
	Valid *bool       `json:"valid,omitempty"`
	Err   *BatchError `json:"error,omitempty"`
}

// VerifyBatch posts items to /v1/verify/batch and returns the
// index-aligned results. The call errors only on transport or whole-
// batch failures; per-item verdicts (including per-item errors) ride in
// the results.
func (c *Client) VerifyBatch(items []VerifyItem) ([]VerifyBatchResult, error) {
	payload, err := MarshalBatch(items)
	if err != nil {
		return nil, err
	}
	data, err := c.Do(http.MethodPost, "/v1/verify/batch", payload)
	if err != nil {
		return nil, err
	}
	raws, err := SplitBatchResults(data, len(items))
	if err != nil {
		return nil, err
	}
	out := make([]VerifyBatchResult, len(raws))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("decoding batch result %d: %v", i, err)
		}
	}
	return out, nil
}

// MarshalBatch wraps items (any slice) in the {"items":[…]} request
// envelope.
func MarshalBatch(items any) ([]byte, error) {
	return json.Marshal(map[string]any{"items": items})
}

// SplitBatchResults unwraps a {"results":[…]} batch response into its
// raw per-item messages, enforcing the index alignment contract: the
// server must answer one result per item, in order. want < 0 skips the
// count check.
func SplitBatchResults(data []byte, want int) ([]json.RawMessage, error) {
	var rep struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("decoding batch reply: %v", err)
	}
	if want >= 0 && len(rep.Results) != want {
		return nil, fmt.Errorf("batch reply has %d results, want %d", len(rep.Results), want)
	}
	return rep.Results, nil
}
