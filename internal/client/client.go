// Package client is the shared HTTP client for the zkperf serving
// stack: zkcli's remote mode and zkgateway's per-node transport both
// speak to zkserve through it, so the error-envelope contract and the
// retry policy live in exactly one place.
//
// The server's JSON error envelope {"code","message","retryable"}
// decodes into *Error; responses whose envelope says retryable=true
// (queue full, draining, circuit breaker cooldown, deadline) are
// retried with jittered exponential backoff, everything else fails
// immediately. A Retry-After header on a shed response (429/503) is
// honored as a lower bound on the backoff sleep.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxBody caps how much of a response body a client reads (proofs for
// large circuits are big; anything past this is a server bug).
const maxBody = 64 << 20

// Error mirrors the server's error envelope, plus the transport
// metadata callers need for routing decisions: the HTTP status and the
// parsed Retry-After hint. A nil RetryAfter field (zero) means the
// server gave no hint.
type Error struct {
	Code       string
	Message    string
	Retryable  bool
	Status     int
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s (retryable=%v)", e.Code, e.Message, e.Retryable)
}

// Client talks to one base URL with the shared retry policy. The zero
// value of Retries/Backoff means a single attempt with no sleep; the
// gateway uses that (it does its own ring failover) while zkcli sets
// both from flags.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	Retries int           // extra attempts after the first
	Backoff time.Duration // base backoff; doubles per attempt, jittered

	// OnRetry, when set, observes each retry decision (zkcli prints a
	// progress line from it). err is the failure being retried.
	OnRetry func(err error, delay time.Duration, attempt, retries int)
}

// New returns a client for baseURL using http.DefaultClient.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Do sends one request with the retry policy and returns the response
// body. payload may be nil (GET/DELETE). The last error is returned
// verbatim — as *Error for envelope failures, so callers and tests can
// inspect the code.
func (c *Client) Do(method, path string, payload []byte) ([]byte, error) {
	_, data, err := c.DoWith(method, path, payload, nil)
	return data, err
}

// DoWith is Do plus the transport details some callers need: extra
// request headers (e.g. Idempotency-Key), and the HTTP status of the
// successful response — the jobs API distinguishes 202 accepted from
// 200 deduplicated/ready on an otherwise identical body.
func (c *Client) DoWith(method, path string, payload []byte, header http.Header) (status int, data []byte, err error) {
	status, data, _, err = c.do(method, path, payload, header)
	return status, data, err
}

// do runs the retry loop around once, threading headers in and the
// status + Retry-After hint of the final response out.
func (c *Client) do(method, path string, payload []byte, header http.Header) (status int, data []byte, retryAfter time.Duration, err error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		st, data, hint, retryable, err := c.once(method, path, payload, header)
		if err == nil {
			return st, data, hint, nil
		}
		if !retryable || attempt >= c.Retries {
			return st, nil, hint, err
		}
		d := jitter(c.Backoff, attempt, rng)
		// A server Retry-After hint is a floor on the sleep: backing off
		// sooner than the breaker cooldown just burns an attempt.
		if we, ok := err.(*Error); ok && we.RetryAfter > d {
			d = we.RetryAfter
		}
		if c.OnRetry != nil {
			c.OnRetry(err, d, attempt+1, c.Retries)
		}
		time.Sleep(d)
	}
}

// once performs a single exchange. Network-level failures (connection
// refused, reset) report retryable: the server may be restarting.
func (c *Client) once(method, path string, payload []byte, header http.Header) (status int, data []byte, retryAfter time.Duration, retryable bool, err error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return 0, nil, 0, false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, 0, true, err
	}
	defer resp.Body.Close()
	hint := parseRetryAfter(resp.Header.Get("Retry-After"))
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return resp.StatusCode, nil, hint, true, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.StatusCode, raw, hint, false, nil
	}
	env := &Error{Status: resp.StatusCode, RetryAfter: hint}
	var wire struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
	}
	if jsonErr := json.Unmarshal(raw, &wire); jsonErr != nil || wire.Code == "" {
		return resp.StatusCode, nil, hint, false, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	env.Code, env.Message, env.Retryable = wire.Code, wire.Message, wire.Retryable
	return resp.StatusCode, nil, hint, env.Retryable, env
}

// PostJSON marshals in, POSTs it to path, and decodes the response into
// out (skipped when out is nil).
func (c *Client) PostJSON(path string, in, out any) error {
	_, err := c.PostJSONWith(path, nil, in, out)
	return err
}

// PostJSONWith is PostJSON with extra request headers, reporting the
// response status so callers can tell 202 accepted from 200 deduped.
func (c *Client) PostJSONWith(path string, header http.Header, in, out any) (status int, err error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	status, data, err := c.DoWith(http.MethodPost, path, payload, header)
	if err != nil {
		return status, err
	}
	return status, decode(data, out)
}

// GetJSON GETs path and decodes the response into out.
func (c *Client) GetJSON(path string, out any) error {
	_, err := c.GetJSONHint(path, out)
	return err
}

// GetJSONHint is GetJSON, additionally returning the response's
// Retry-After hint (zero when absent) — job pollers pace themselves by
// it instead of a fixed interval.
func (c *Client) GetJSONHint(path string, out any) (retryAfter time.Duration, err error) {
	_, data, hint, err := c.do(http.MethodGet, path, nil, nil)
	if err != nil {
		return hint, err
	}
	return hint, decode(data, out)
}

// Delete issues a DELETE and decodes the response into out (skipped
// when out is nil).
func (c *Client) Delete(path string, out any) error {
	data, err := c.Do(http.MethodDelete, path, nil)
	if err != nil {
		return err
	}
	return decode(data, out)
}

func decode(data []byte, out any) error {
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("decoding reply: %v", err)
	}
	return nil
}

// jitter computes the sleep before retry attempt n (0-based): the base
// doubles each attempt and the result is drawn uniformly from [d/2, d),
// so a burst of shed clients does not come back in lockstep. A base of
// zero means immediate retries; the 1m cap only applies to oversized
// backoffs and shift overflow.
func jitter(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d <= 0 || d > time.Minute {
		d = time.Minute
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// parseRetryAfter understands the delta-seconds form of Retry-After
// (what zkserve emits) and falls back to the HTTP-date form. Returns 0
// when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
