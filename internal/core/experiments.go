package core

import (
	"fmt"

	"zkperf/internal/cpumodel"
	"zkperf/internal/report"
	"zkperf/internal/stats"
)

// Config selects the sweep an experiment suite runs. The paper evaluates
// 2^10–2^18 constraints; the default here stops at 2^15 so the whole suite
// finishes in minutes — pass larger MaxLog for the full range.
type Config struct {
	Curves   []string
	LogSizes []int
	CPUs     []*cpumodel.CPU
	// Threads is the strong-scaling sweep (Fig. 6), matching the paper's
	// 1–32 threads on the i9.
	Threads []int
	// WSThreads/WSLogSizes pair up for weak scaling (Fig. 7): both double.
	WSThreads  []int
	WSLogSizes []int
}

// DefaultConfig returns the standard sweep: both curves, 2^10–2^15, all
// three CPUs.
func DefaultConfig() Config {
	return Config{
		Curves:     []string{"BN128", "BLS12-381"},
		LogSizes:   []int{10, 11, 12, 13, 14, 15},
		CPUs:       cpumodel.All(),
		Threads:    []int{1, 2, 4, 6, 8, 12, 16, 18, 24, 32},
		WSThreads:  []int{1, 2, 4, 8},
		WSLogSizes: []int{12, 13, 14, 15},
	}
}

// QuickConfig returns a reduced sweep for tests and benchmarks.
func QuickConfig() Config {
	return Config{
		Curves:     []string{"BN128"},
		LogSizes:   []int{10, 11, 12},
		CPUs:       cpumodel.All(),
		Threads:    []int{1, 2, 4, 8, 16, 32},
		WSThreads:  []int{1, 2, 4},
		WSLogSizes: []int{10, 11, 12},
	}
}

// FullConfig returns the paper's complete sweep (2^10–2^18, both curves).
// Expect a long runtime.
func FullConfig() Config {
	c := DefaultConfig()
	c.LogSizes = []int{10, 11, 12, 13, 14, 15, 16, 17, 18}
	c.WSThreads = []int{1, 2, 4, 8, 16, 32}
	c.WSLogSizes = []int{13, 14, 15, 16, 17, 18}
	return c
}

// Suite runs and caches stage profiles and cache simulations for a config.
type Suite struct {
	Cfg    Config
	Runner *Runner

	profiles map[profKey]map[Stage]*StageProfile
	caches   map[cacheKey]*CacheResult
}

type profKey struct {
	curve string
	logN  int
}

type cacheKey struct {
	curve string
	logN  int
	stage Stage
	cpu   string
}

// NewSuite creates an experiment suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:      cfg,
		Runner:   NewRunner(),
		profiles: make(map[profKey]map[Stage]*StageProfile),
		caches:   make(map[cacheKey]*CacheResult),
	}
}

// Profiles returns (running on first use) the stage profiles for one
// (curve, size) pipeline.
func (s *Suite) Profiles(curve string, logN int) (map[Stage]*StageProfile, error) {
	k := profKey{curve, logN}
	if p, ok := s.profiles[k]; ok {
		return p, nil
	}
	p, err := s.Runner.ProfileAllStages(curve, logN)
	if err != nil {
		return nil, err
	}
	s.profiles[k] = p
	return p, nil
}

// Cache returns (simulating on first use) the cache result for one
// (curve, size, stage, cpu) combination.
func (s *Suite) Cache(curve string, logN int, stage Stage, cpu *cpumodel.CPU) (*CacheResult, error) {
	k := cacheKey{curve, logN, stage, cpu.Name}
	if c, ok := s.caches[k]; ok {
		return c, nil
	}
	profs, err := s.Profiles(curve, logN)
	if err != nil {
		return nil, err
	}
	c := SimulateCaches(profs[stage], cpu)
	s.caches[k] = c
	return c, nil
}

// logLabel renders 2^k for tick labels.
func logLabel(logN int) string { return fmt.Sprintf("2^%d", logN) }

// ---------- Execution-time breakdown (§IV-B) ----------

// ExecTimeBreakdown reports each stage's share of total pipeline wall time
// per curve, averaged over the configured sizes (the paper: setup 76.1%,
// proving 13.4%).
func (s *Suite) ExecTimeBreakdown() (*report.Table, error) {
	t := &report.Table{
		Title:   "Execution time: per-stage share of the zk-SNARK pipeline (avg over sizes)",
		Headers: []string{"Curve", "compile", "setup", "witness", "proving", "verifying"},
	}
	for _, curve := range s.Cfg.Curves {
		shares := map[Stage]float64{}
		for _, logN := range s.Cfg.LogSizes {
			profs, err := s.Profiles(curve, logN)
			if err != nil {
				return nil, err
			}
			var total float64
			for _, st := range Stages {
				total += profs[st].WallSeconds()
			}
			for _, st := range Stages {
				shares[st] += 100 * profs[st].WallSeconds() / total
			}
		}
		n := float64(len(s.Cfg.LogSizes))
		row := []string{curve}
		for _, st := range Stages {
			row = append(row, report.F1(shares[st]/n)+"%")
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ---------- Fig. 4: top-down microarchitecture analysis ----------

// Fig4TopDown reports the pipeline-slot breakdown for every stage, CPU and
// curve, averaged over sizes, plus the per-size dominant category.
func (s *Suite) Fig4TopDown() ([]*report.Table, error) {
	var tables []*report.Table
	for _, curve := range s.Cfg.Curves {
		t := &report.Table{
			Title:   fmt.Sprintf("Fig. 4 — Top-down analysis (%s), avg over sizes", curve),
			Headers: []string{"Stage", "CPU", "FrontEnd%", "BadSpec%", "BackEnd%", "(mem%)", "(core%)", "Retiring%", "Dominant"},
		}
		for _, st := range Stages {
			for _, cpu := range s.Cfg.CPUs {
				var fe, bs, be, bem, bec, ret float64
				domCount := map[string]int{}
				for _, logN := range s.Cfg.LogSizes {
					profs, err := s.Profiles(curve, logN)
					if err != nil {
						return nil, err
					}
					cr, err := s.Cache(curve, logN, st, cpu)
					if err != nil {
						return nil, err
					}
					b := TopDown(profs[st], cpu, cr)
					fe += b.FrontEnd
					bs += b.BadSpec
					be += b.BackEnd
					bem += b.BackEndMemory
					bec += b.BackEndCore
					ret += b.Retiring
					domCount[b.Dominant()]++
				}
				n := float64(len(s.Cfg.LogSizes))
				dom, best := "", 0
				for d, c := range domCount {
					if c > best {
						dom, best = d, c
					}
				}
				t.AddRow(string(st), cpu.Name, report.F1(fe/n), report.F1(bs/n),
					report.F1(be/n), report.F1(bem/n), report.F1(bec/n), report.F1(ret/n),
					fmt.Sprintf("%s (%d/%d sizes)", dom, best, len(s.Cfg.LogSizes)))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ---------- Fig. 5: loads and stores ----------

// Fig5LoadsStores reports per-stage loads/stores across sizes: the mean
// with min/max envelope over CPUs and curves, matching the figure's bands.
func (s *Suite) Fig5LoadsStores() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 5 — Loads and stores per stage (mean [min..max] over CPUs & curves)",
		Headers: []string{"Stage", "Size", "Loads", "Stores"},
	}
	for _, st := range Stages {
		for _, logN := range s.Cfg.LogSizes {
			var lds, sts []float64
			for _, curve := range s.Cfg.Curves {
				for _, cpu := range s.Cfg.CPUs {
					profs, err := s.Profiles(curve, logN)
					if err != nil {
						return nil, err
					}
					cr, err := s.Cache(curve, logN, st, cpu)
					if err != nil {
						return nil, err
					}
					m := Memory(profs[st], cpu, cr)
					lds = append(lds, float64(m.Loads))
					sts = append(sts, float64(m.Stores))
				}
			}
			fmtBand := func(v []float64) string {
				mean, lo, hi := stats.Mean(v), v[0], v[0]
				for _, x := range v {
					if x < lo {
						lo = x
					}
					if x > hi {
						hi = x
					}
				}
				return fmt.Sprintf("%s [%s..%s]", report.SI(int64(mean)), report.SI(int64(lo)), report.SI(int64(hi)))
			}
			t.AddRow(string(st), logLabel(logN), fmtBand(lds), fmtBand(sts))
		}
	}
	return t, nil
}

// ---------- Table II: LLC MPKI ----------

// Table2MPKI reports the maximum LLC load MPKI over sizes for each stage,
// CPU and curve.
func (s *Suite) Table2MPKI() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table II — LLC load MPKI (max over sizes)",
		Headers: []string{"Stage"},
	}
	for _, cpu := range s.Cfg.CPUs {
		for _, curve := range s.Cfg.Curves {
			t.Headers = append(t.Headers, fmt.Sprintf("%s-%s", shortCPU(cpu.Name), shortCurve(curve)))
		}
	}
	for _, st := range Stages {
		row := []string{string(st)}
		for _, cpu := range s.Cfg.CPUs {
			for _, curve := range s.Cfg.Curves {
				maxMPKI := 0.0
				for _, logN := range s.Cfg.LogSizes {
					profs, err := s.Profiles(curve, logN)
					if err != nil {
						return nil, err
					}
					cr, err := s.Cache(curve, logN, st, cpu)
					if err != nil {
						return nil, err
					}
					m := Memory(profs[st], cpu, cr)
					if m.MPKI > maxMPKI {
						maxMPKI = m.MPKI
					}
				}
				row = append(row, report.F(maxMPKI))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ---------- Table III: maximum memory bandwidth ----------

// Table3Bandwidth reports the maximum memory bandwidth per stage and
// curve, averaged over CPUs and sizes as in the paper.
func (s *Suite) Table3Bandwidth() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table III — Max memory bandwidth (GBps), avg over CPUs and sizes",
		Headers: []string{"Curve", "compile", "setup", "witness", "proving", "verifying"},
	}
	for _, curve := range s.Cfg.Curves {
		row := []string{shortCurve(curve)}
		for _, st := range Stages {
			var sum float64
			var n int
			for _, cpu := range s.Cfg.CPUs {
				for _, logN := range s.Cfg.LogSizes {
					profs, err := s.Profiles(curve, logN)
					if err != nil {
						return nil, err
					}
					cr, err := s.Cache(curve, logN, st, cpu)
					if err != nil {
						return nil, err
					}
					m := Memory(profs[st], cpu, cr)
					sum += m.MaxBWGBps
					n++
				}
			}
			row = append(row, report.F(sum/float64(n)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ---------- Table IV: hot functions ----------

// Table4HotFunctions reports the top CPU-time functions per stage at the
// largest configured size (BN128).
func (s *Suite) Table4HotFunctions() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table IV — Time-consuming functions per stage",
		Headers: []string{"Stage", "Function", "CPU time %"},
	}
	curve := s.Cfg.Curves[0]
	logN := s.Cfg.LogSizes[len(s.Cfg.LogSizes)-1]
	profs, err := s.Profiles(curve, logN)
	if err != nil {
		return nil, err
	}
	for _, st := range Stages {
		for i, f := range HotFunctions(profs[st]) {
			if i >= 4 {
				break
			}
			t.AddRow(string(st), f.Name, report.F1(f.Percent))
		}
	}
	return t, nil
}

// ---------- Table V: opcode mix ----------

// Table5OpcodeMix reports the compute/control/data instruction shares per
// stage and curve, averaged over sizes.
func (s *Suite) Table5OpcodeMix() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table V — Opcode mix (%), avg over sizes",
		Headers: []string{"Stage", "Curve", "Comp%", "Ctrl%", "Data%", "Category"},
	}
	for _, st := range Stages {
		for _, curve := range s.Cfg.Curves {
			var cSum, ctlSum, dSum float64
			dom := ""
			for _, logN := range s.Cfg.LogSizes {
				profs, err := s.Profiles(curve, logN)
				if err != nil {
					return nil, err
				}
				c, ctl, d := OpcodeMix(profs[st])
				cSum += c
				ctlSum += ctl
				dSum += d
				dom = OpcodeDominant(profs[st])
			}
			n := float64(len(s.Cfg.LogSizes))
			t.AddRow(string(st), shortCurve(curve),
				report.F(cSum/n), report.F(ctlSum/n), report.F(dSum/n), dom)
		}
	}
	return t, nil
}

// ---------- Fig. 6: strong scaling ----------

// Fig6StrongScaling returns one chart per stage: speedup vs. thread count
// on the i9 for each configured size (BN128, matching the paper's figure).
func (s *Suite) Fig6StrongScaling() ([]*report.Chart, error) {
	cpu := cpumodel.NewI9_13900K()
	curve := s.Cfg.Curves[0]
	var charts []*report.Chart
	ticks := make([]string, len(s.Cfg.Threads))
	for i, n := range s.Cfg.Threads {
		ticks[i] = fmt.Sprintf("%d", n)
	}
	for _, st := range Stages {
		ch := &report.Chart{
			Title:  fmt.Sprintf("Fig. 6 — Strong scaling, %s stage (i9, %s)", st, curve),
			XLabel: "threads",
			XTicks: ticks,
		}
		for _, logN := range s.Cfg.LogSizes {
			profs, err := s.Profiles(curve, logN)
			if err != nil {
				return nil, err
			}
			sp := StrongScaling(profs[st], cpu, s.Cfg.Threads)
			ch.Series = append(ch.Series, report.Series{Name: logLabel(logN), Values: sp})
		}
		charts = append(charts, ch)
	}
	return charts, nil
}

// ---------- Fig. 7: weak scaling ----------

// Fig7WeakScaling returns one chart with a series per stage: weak-scaling
// speedup as threads and constraints double together (i9).
func (s *Suite) Fig7WeakScaling() (*report.Chart, error) {
	cpu := cpumodel.NewI9_13900K()
	curve := s.Cfg.Curves[0]
	n := len(s.Cfg.WSThreads)
	if len(s.Cfg.WSLogSizes) < n {
		n = len(s.Cfg.WSLogSizes)
	}
	ticks := make([]string, n)
	sfs := make([]float64, n)
	for i := 0; i < n; i++ {
		ticks[i] = fmt.Sprintf("%d/%s", s.Cfg.WSThreads[i], logLabel(s.Cfg.WSLogSizes[i]))
		sfs[i] = float64(int64(1) << uint(s.Cfg.WSLogSizes[i]-s.Cfg.WSLogSizes[0]))
	}
	ch := &report.Chart{
		Title:  fmt.Sprintf("Fig. 7 — Weak scaling (i9, %s): threads and constraints double together", curve),
		XLabel: "threads/constraints",
		XTicks: ticks,
	}
	for _, st := range Stages {
		profiles := make([]*StageProfile, n)
		for i := 0; i < n; i++ {
			profs, err := s.Profiles(curve, s.Cfg.WSLogSizes[i])
			if err != nil {
				return nil, err
			}
			profiles[i] = profs[st]
		}
		sp := WeakScaling(profiles, cpu, s.Cfg.WSThreads[:n], sfs)
		ch.Series = append(ch.Series, report.Series{Name: string(st), Values: sp})
	}
	return ch, nil
}

// ---------- Table VI: serial/parallel fits ----------

// Table6SerialParallel fits Amdahl's law to the strong-scaling curves
// (averaged over sizes) and Gustafson's law to the weak-scaling curves,
// reporting serial/parallel percentages per stage and curve on the i9.
func (s *Suite) Table6SerialParallel() (*report.Table, error) {
	cpu := cpumodel.NewI9_13900K()
	t := &report.Table{
		Title:   "Table VI — Serial vs parallel share per stage (i9)",
		Headers: []string{"Stage", "Curve", "SS Serial%", "SS Parallel%", "WS Serial%", "WS Parallel%"},
	}
	for _, st := range Stages {
		for _, curve := range s.Cfg.Curves {
			// Strong scaling: average the Amdahl fit over sizes.
			var ssPar float64
			for _, logN := range s.Cfg.LogSizes {
				profs, err := s.Profiles(curve, logN)
				if err != nil {
					return nil, err
				}
				sp := StrongScaling(profs[st], cpu, s.Cfg.Threads)
				fit := FitStrong(s.Cfg.Threads, sp)
				ssPar += fit.ParallelPct
			}
			ssPar /= float64(len(s.Cfg.LogSizes))

			// Weak scaling fit.
			n := len(s.Cfg.WSThreads)
			if len(s.Cfg.WSLogSizes) < n {
				n = len(s.Cfg.WSLogSizes)
			}
			profiles := make([]*StageProfile, n)
			sfs := make([]float64, n)
			for i := 0; i < n; i++ {
				profs, err := s.Profiles(curve, s.Cfg.WSLogSizes[i])
				if err != nil {
					return nil, err
				}
				profiles[i] = profs[st]
				sfs[i] = float64(int64(1) << uint(s.Cfg.WSLogSizes[i]-s.Cfg.WSLogSizes[0]))
			}
			ws := WeakScaling(profiles, cpu, s.Cfg.WSThreads[:n], sfs)
			wsFit := FitWeak(s.Cfg.WSThreads[:n], ws)

			t.AddRow(string(st), shortCurve(curve),
				report.F(100-ssPar), report.F(ssPar),
				report.F(wsFit.SerialPct), report.F(wsFit.ParallelPct))
		}
	}
	return t, nil
}

// shortCPU abbreviates a CPU name for table headers.
func shortCPU(name string) string {
	switch name {
	case "i7-8650U":
		return "i7"
	case "i5-11400":
		return "i5"
	case "i9-13900K":
		return "i9"
	}
	return name
}

// shortCurve abbreviates a curve name.
func shortCurve(name string) string {
	switch name {
	case "BN128", "BN254":
		return "BN"
	case "BLS12-381":
		return "BLS"
	}
	return name
}
