// Package core is the analysis framework — the paper's contribution. It
// orchestrates instrumented executions of the five zk-SNARK stages
// (compile, setup, witness, proving, verifying) across circuit sizes and
// curves, and derives the paper's four analyses from the collected traces:
//
//   - top-down microarchitecture analysis (Fig. 4) via internal/pipeline,
//   - memory analysis (Fig. 5, Tables II–III) via internal/cachesim,
//   - code analysis (Tables IV–V) via the recorder's function profile and
//     internal/opcode,
//   - scalability analysis (Figs. 6–7, Table VI) via internal/sched and
//     internal/stats.
package core

import (
	"bytes"
	"fmt"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/jsruntime"
	"zkperf/internal/opcode"
	"zkperf/internal/r1cs"
	"zkperf/internal/trace"
	"zkperf/internal/witness"
)

// Stage names the five zk-SNARK workflow stages in paper order.
type Stage string

// The five stages of Figure 1.
const (
	StageCompile Stage = "compile"
	StageSetup   Stage = "setup"
	StageWitness Stage = "witness"
	StageProving Stage = "proving"
	StageVerify  Stage = "verifying"
)

// Stages lists the stages in workflow order.
var Stages = []Stage{StageCompile, StageSetup, StageWitness, StageProving, StageVerify}

// StageProfile is the full instrumentation record of one stage execution.
type StageProfile struct {
	Stage Stage
	Curve string // "BN128" or "BLS12-381"
	LogN  int    // log2 of the constraint count

	Rec *trace.Recorder
	Mix opcode.Mix
}

// WallSeconds returns the stage's measured wall-clock time.
func (p *StageProfile) WallSeconds() float64 { return float64(p.Rec.WallNanos) / 1e9 }

// Runner executes instrumented zk-SNARK pipelines. Engines (with their
// fixed-base tables) are cached per curve.
type Runner struct {
	engines map[string]*groth16.Engine

	// IncludeRuntime controls whether the simulated node.js/WASM runtime
	// overhead runs as part of the stages (on by default; the ablation
	// bench disables it).
	IncludeRuntime bool
}

// NewRunner returns a Runner with runtime simulation enabled.
func NewRunner() *Runner {
	return &Runner{engines: make(map[string]*groth16.Engine), IncludeRuntime: true}
}

// engine returns the cached Groth16 engine for a curve name.
func (r *Runner) engine(curveName string) *groth16.Engine {
	if e, ok := r.engines[curveName]; ok {
		return e
	}
	c := curve.NewCurve(curveName)
	if c == nil {
		panic(fmt.Sprintf("core: unknown curve %q", curveName))
	}
	e := groth16.NewEngine(c)
	// The profiles model the paper's snarkjs stack: its verifier runs the
	// plain full-Fp12 Miller loop, so the traced op counts must come from
	// the reference pairing path, not the optimized production loop —
	// otherwise the Table V "verifying is compute-intensive" shape breaks.
	e.Pair.Reference = true
	r.engines[curveName] = e
	return e
}

// limbs returns the dominant limb width of a curve's arithmetic: G1/Fr
// operations dominate, so 4 limbs for both curves' scalar fields with the
// base field's width for BLS12-381 group-heavy stages.
func limbs(curveName string, s Stage) int {
	if curveName == "BLS12-381" && (s == StageSetup || s == StageProving || s == StageVerify) {
		return 6 // group arithmetic over the 381-bit base field
	}
	return 4
}

// ProfileStage runs one stage of the pipeline for the exponentiation
// circuit with 2^logN constraints on the named curve, returning its
// profile. Stages depend on their predecessors' artifacts; the runner
// executes the prefix untraced and only instruments the requested stage.
func (r *Runner) ProfileStage(curveName string, logN int, s Stage) (*StageProfile, error) {
	ps, err := r.ProfilePipeline(curveName, logN, map[Stage]bool{s: true})
	if err != nil {
		return nil, err
	}
	return ps[s], nil
}

// ProfileAllStages traces every stage of one pipeline run.
func (r *Runner) ProfileAllStages(curveName string, logN int) (map[Stage]*StageProfile, error) {
	sel := map[Stage]bool{}
	for _, s := range Stages {
		sel[s] = true
	}
	return r.ProfilePipeline(curveName, logN, sel)
}

// ProfilePipeline runs the full compile→verify pipeline once, attaching a
// recorder to each selected stage.
func (r *Runner) ProfilePipeline(curveName string, logN int, selected map[Stage]bool) (map[Stage]*StageProfile, error) {
	eng := r.engine(curveName)
	fr := eng.Curve.Fr
	e := 1 << uint(logN)
	out := make(map[Stage]*StageProfile)

	newRec := func(s Stage) *trace.Recorder {
		if !selected[s] {
			return nil
		}
		rec := trace.NewRecorder()
		out[s] = &StageProfile{Stage: s, Curve: curveName, LogN: logN, Rec: rec}
		return rec
	}
	finish := func(s Stage) {
		if p, ok := out[s]; ok {
			p.Mix = opcode.FromRecorder(p.Rec, limbs(curveName, s))
		}
	}

	// ---- compile ----
	var sys *r1cs.System
	var prog *witness.Program
	var err error
	{
		rec := newRec(StageCompile)
		rec.StartWall()
		src := circuit.ExponentiateSource(e)
		sys, prog, err = circuit.CompileSourceTraced(fr, src, rec)
		if err != nil {
			return nil, fmt.Errorf("compile: %w", err)
		}
		// The compiled system is written out (circom's .r1cs artifact).
		rec.Scope("memcpy/r1cs-write", func() {
			var buf bytes.Buffer
			if _, werr := sys.WriteTo(&buf); werr != nil {
				err = werr
			}
			rec.Copy("r1cs.file", int64(buf.Len()))
		})
		rec.StopWall()
		if err != nil {
			return nil, fmt.Errorf("compile: %w", err)
		}
		finish(StageCompile)
	}

	// ---- setup ----
	var pk *groth16.ProvingKey
	var vk *groth16.VerifyingKey
	var zkeyBytes []byte
	{
		rec := newRec(StageSetup)
		eng.Rec = rec
		rec.StartWall()
		if r.IncludeRuntime {
			jsruntime.Run(rec, jsruntime.Light)
		}
		rng := ff.NewRNG(uint64(0x5E707 + logN))
		pk, vk, err = eng.Setup(sys, rng)
		if err != nil {
			eng.Rec = nil
			return nil, fmt.Errorf("setup: %w", err)
		}
		// Key serialization — the .zkey write that dominates snarkjs
		// setup's serial fraction.
		var serErr error
		rec.PhaseRun("memcpy/zkey-write", 1, func() {
			var buf bytes.Buffer
			if serErr = pk.Serialize(&buf, eng.Curve); serErr != nil {
				return
			}
			if serErr = vk.Serialize(&buf, eng.Curve); serErr != nil {
				return
			}
			zkeyBytes = buf.Bytes()
			rec.Copy("zkey.file", int64(len(zkeyBytes)))
		})
		recGC(rec, int64(len(zkeyBytes)))
		rec.StopWall()
		eng.Rec = nil
		if serErr != nil {
			return nil, fmt.Errorf("setup: %w", serErr)
		}
		finish(StageSetup)
	}
	if zkeyBytes == nil {
		// Setup was untraced; still serialize for the proving stage's key
		// deserialization work.
		var buf bytes.Buffer
		if err := pk.Serialize(&buf, eng.Curve); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
		if err := vk.Serialize(&buf, eng.Curve); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
		zkeyBytes = buf.Bytes()
	}

	// ---- witness ----
	var wit *witness.Witness
	{
		rec := newRec(StageWitness)
		rec.StartWall()
		if r.IncludeRuntime {
			// WASM witness-calculator instantiation dominates this stage
			// in the snarkjs stack.
			jsruntime.Run(rec, jsruntime.Heavy)
		}
		var x ff.Element
		fr.SetUint64(&x, 3)
		wit, err = witness.SolveTraced(sys, prog, witness.Assignment{"x": x}, rec)
		if err != nil {
			return nil, fmt.Errorf("witness: %w", err)
		}
		rec.Scope("memcpy/wtns-write", func() {
			var buf bytes.Buffer
			if werr := groth16.WriteWitness(&buf, fr, wit); werr != nil {
				err = werr
			}
			// Witness serialization converts every element out of
			// Montgomery form: throughput is arithmetic-bound, not
			// copy-bound.
			n := int64(buf.Len())
			rec.Access(trace.Access{Kind: trace.Sequential, Region: "wtns.file.src",
				RegionBytes: n, ElemSize: 64, Touches: n / 64, BytesPerCycle: 0.8})
			rec.Access(trace.Access{Kind: trace.Sequential, Region: "wtns.file.dst",
				RegionBytes: n, ElemSize: 64, Touches: n / 64, Write: true, BytesPerCycle: 0.8})
			if rec != nil {
				rec.BytesCopied += n
			}
		})
		rec.StopWall()
		if err != nil {
			return nil, fmt.Errorf("witness: %w", err)
		}
		finish(StageWitness)
	}

	// ---- proving ----
	var proof *groth16.Proof
	{
		rec := newRec(StageProving)
		eng.Rec = rec
		rec.StartWall()
		if r.IncludeRuntime {
			jsruntime.Run(rec, jsruntime.Light)
		}
		// snarkjs reads the zkey from disk on every prove.
		var pk2 groth16.ProvingKey
		var desErr error
		rec.PhaseRun("memcpy/zkey-read", 1, func() {
			desErr = pk2.Deserialize(bytes.NewReader(zkeyBytes), eng.Curve)
		})
		rec.Copy("zkey.file", int64(len(zkeyBytes)))
		if desErr != nil {
			eng.Rec = nil
			return nil, fmt.Errorf("proving: %w", desErr)
		}
		rng := ff.NewRNG(uint64(0x9403e + logN))
		proof, err = eng.Prove(sys, &pk2, wit, rng)
		recGC(rec, int64(len(zkeyBytes)))
		rec.StopWall()
		eng.Rec = nil
		if err != nil {
			return nil, fmt.Errorf("proving: %w", err)
		}
		finish(StageProving)
	}

	// ---- verifying ----
	{
		rec := newRec(StageVerify)
		eng.Rec = rec
		rec.StartWall()
		if r.IncludeRuntime {
			jsruntime.Run(rec, jsruntime.Medium)
		}
		err = eng.Verify(vk, proof, wit.Public)
		rec.StopWall()
		eng.Rec = nil
		if err != nil {
			return nil, fmt.Errorf("verifying: %w", err)
		}
		finish(StageVerify)
	}

	return out, nil
}

// recGC models the major garbage collections a long snarkjs stage incurs:
// mark passes chase the entire live heap, whose size tracks the proving
// key (boxed by the JS representation factor). This DRAM-latency-bound
// sweep is a major back-end contributor on high-clocked CPUs.
func recGC(rec *trace.Recorder, liveBytes int64) {
	if rec == nil || liveBytes == 0 {
		return
	}
	region := liveBytes * 6 // JS boxed-heap expansion
	rec.Access(trace.Access{Kind: trace.PointerChase, Region: "runtime.gcheap",
		RegionBytes: region, ElemSize: 64, Touches: 2 * region / 64})
}
