package core

import (
	"strings"
	"testing"

	"zkperf/internal/cpumodel"
)

// sharedSuite caches one quick-suite run across the package tests (the
// profiling runs are the expensive part).
var sharedSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite == nil {
		sharedSuite = NewSuite(QuickConfig())
	}
	return sharedSuite
}

func TestProfileAllStagesShape(t *testing.T) {
	s := suite(t)
	profs, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != len(Stages) {
		t.Fatalf("profiled %d stages, want %d", len(profs), len(Stages))
	}
	for _, st := range Stages {
		p := profs[st]
		if p == nil {
			t.Fatalf("missing stage %s", st)
		}
		if p.WallSeconds() <= 0 {
			t.Errorf("%s: non-positive wall time", st)
		}
		if p.Mix.Total() == 0 {
			t.Errorf("%s: empty instruction mix", st)
		}
		if len(p.Rec.Accesses) == 0 {
			t.Errorf("%s: no access patterns", st)
		}
		if len(p.Rec.Phases) == 0 {
			t.Errorf("%s: no phases", st)
		}
	}
}

func TestProfileCaching(t *testing.T) {
	s := suite(t)
	p1, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	if p1[StageSetup] != p2[StageSetup] {
		t.Error("suite should cache profiles")
	}
	cpu := cpumodel.NewI7_8650U()
	c1, err := s.Cache("BN128", 10, StageSetup, cpu)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Cache("BN128", 10, StageSetup, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("suite should cache cache-sim results")
	}
}

// TestPaperShapeClaims asserts the qualitative results the paper reports,
// at the quick sweep sizes.
func TestPaperShapeClaims(t *testing.T) {
	s := suite(t)
	profs, err := s.Profiles("BN128", 12)
	if err != nil {
		t.Fatal(err)
	}
	i7, i9 := cpumodel.NewI7_8650U(), cpumodel.NewI9_13900K()

	crI7 := map[Stage]*CacheResult{}
	crI9 := map[Stage]*CacheResult{}
	for _, st := range Stages {
		if crI7[st], err = s.Cache("BN128", 12, st, i7); err != nil {
			t.Fatal(err)
		}
		if crI9[st], err = s.Cache("BN128", 12, st, i9); err != nil {
			t.Fatal(err)
		}
	}

	// Fig. 4: witness and verifying are front-end bound on every CPU.
	for _, st := range []Stage{StageWitness, StageVerify} {
		for _, cpu := range cpumodel.All() {
			cr, err := s.Cache("BN128", 12, st, cpu)
			if err != nil {
				t.Fatal(err)
			}
			b := TopDown(profs[st], cpu, cr)
			if b.Dominant() != "front-end" {
				t.Errorf("%s on %s: dominant %s, paper reports front-end", st, cpu.Name, b.Dominant())
			}
		}
	}
	// Fig. 4: proving is front-end bound on the i7 and back-end bound on
	// the i9 — the paper's headline cross-CPU observation.
	bI7 := TopDown(profs[StageProving], i7, crI7[StageProving])
	bI9 := TopDown(profs[StageProving], i9, crI9[StageProving])
	if bI7.Dominant() != "front-end" {
		t.Errorf("proving on i7: dominant %s, want front-end", bI7.Dominant())
	}
	if bI9.Dominant() != "back-end" {
		t.Errorf("proving on i9: dominant %s, want back-end", bI9.Dominant())
	}

	// Table II ordering: setup has the lowest MPKI; witness the highest.
	mpki := map[Stage]float64{}
	for _, st := range Stages {
		mpki[st] = Memory(profs[st], i9, crI9[st]).MPKI
	}
	if mpki[StageSetup] > mpki[StageWitness] {
		t.Errorf("setup MPKI (%v) should be below witness MPKI (%v)", mpki[StageSetup], mpki[StageWitness])
	}

	// Memory counts: the setup stage loads far more than it stores
	// (read-only table lookups dominate).
	mSetup := Memory(profs[StageSetup], i9, crI9[StageSetup])
	if mSetup.Loads < 4*mSetup.Stores {
		t.Errorf("setup loads/stores = %d/%d, expected heavily load-dominated",
			mSetup.Loads, mSetup.Stores)
	}

	// Table V: setup/proving/verifying are compute intensive; compile is
	// data-flow intensive.
	for _, st := range []Stage{StageSetup, StageProving, StageVerify} {
		if OpcodeDominant(profs[st]) != "compute" {
			t.Errorf("%s opcode category = %s, want compute", st, OpcodeDominant(profs[st]))
		}
	}
	if OpcodeDominant(profs[StageCompile]) != "data-flow" {
		t.Errorf("compile opcode category = %s, want data-flow", OpcodeDominant(profs[StageCompile]))
	}

	// Scalability: proving scales further than compile and witness.
	threads := []int{1, 2, 4, 8, 16, 32}
	spProve := StrongScaling(profs[StageProving], i9, threads)
	spCompile := StrongScaling(profs[StageCompile], i9, threads)
	spWitness := StrongScaling(profs[StageWitness], i9, threads)
	last := len(threads) - 1
	if spProve[last] <= spCompile[last] || spProve[last] <= spWitness[last] {
		t.Errorf("proving speedup (%v) should exceed compile (%v) and witness (%v)",
			spProve[last], spCompile[last], spWitness[last])
	}
	// Compile saturates around 2x (parse/gen split), per the paper.
	if spCompile[last] > 2.5 {
		t.Errorf("compile speedup %v should saturate near 2", spCompile[last])
	}
}

func TestWitnessVerifyTimesRoughlyConstant(t *testing.T) {
	// The paper: witness generation and verifying times are independent of
	// the constraint size (runtime startup dominates). Allow a 2x band
	// across a 4x size range.
	s := suite(t)
	small, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Profiles("BN128", 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stage{StageWitness, StageVerify} {
		ratio := big[st].WallSeconds() / small[st].WallSeconds()
		if ratio > 2.0 || ratio < 0.5 {
			t.Errorf("%s wall-time ratio across sizes = %v, expected ≈1", st, ratio)
		}
	}
	// Setup and proving, in contrast, must grow with size.
	for _, st := range []Stage{StageSetup, StageProving} {
		ratio := big[st].WallSeconds() / small[st].WallSeconds()
		if ratio < 1.5 {
			t.Errorf("%s wall-time ratio across 4x sizes = %v, expected growth", st, ratio)
		}
	}
}

func TestExperimentTablesRender(t *testing.T) {
	s := suite(t)
	type tableFn struct {
		name string
		fn   func() (fmtStringer, error)
	}
	fns := []tableFn{
		{"exectime", func() (fmtStringer, error) { return s.ExecTimeBreakdown() }},
		{"fig5", func() (fmtStringer, error) { return s.Fig5LoadsStores() }},
		{"table2", func() (fmtStringer, error) { return s.Table2MPKI() }},
		{"table3", func() (fmtStringer, error) { return s.Table3Bandwidth() }},
		{"table4", func() (fmtStringer, error) { return s.Table4HotFunctions() }},
		{"table5", func() (fmtStringer, error) { return s.Table5OpcodeMix() }},
		{"table6", func() (fmtStringer, error) { return s.Table6SerialParallel() }},
		{"fig7", func() (fmtStringer, error) { return s.Fig7WeakScaling() }},
	}
	for _, tf := range fns {
		out, err := tf.fn()
		if err != nil {
			t.Fatalf("%s: %v", tf.name, err)
		}
		if len(out.String()) < 40 {
			t.Errorf("%s: suspiciously short output", tf.name)
		}
	}
	tables, err := s.Fig4TopDown()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(s.Cfg.Curves) {
		t.Errorf("fig4 produced %d tables, want %d", len(tables), len(s.Cfg.Curves))
	}
	charts, err := s.Fig6StrongScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != len(Stages) {
		t.Errorf("fig6 produced %d charts, want %d", len(charts), len(Stages))
	}
}

type fmtStringer interface{ String() string }

func TestHotFunctionsIncludePaperTable4(t *testing.T) {
	s := suite(t)
	profs, err := s.Profiles("BN128", 12)
	if err != nil {
		t.Fatal(err)
	}
	// Across all stages, the classes of Table IV must appear.
	seen := map[string]bool{}
	for _, st := range Stages {
		for _, f := range HotFunctions(profs[st]) {
			seen[f.Name] = true
		}
	}
	for _, want := range []string{"memcpy", "bigint", "malloc", "heap allocation", "page fault exception handler"} {
		if !seen[want] {
			t.Errorf("Table IV function class %q never appears in the profiles", want)
		}
	}
}

func TestHotFunctionPercentsSum(t *testing.T) {
	s := suite(t)
	profs, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range Stages {
		var sum float64
		for _, f := range HotFunctions(profs[st]) {
			if f.Percent < 0 {
				t.Errorf("%s: negative percent for %s", st, f.Name)
			}
			sum += f.Percent
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: function percents sum to %v", st, sum)
		}
	}
}

func TestUnknownCurvePanics(t *testing.T) {
	r := NewRunner()
	defer func() {
		if recover() == nil {
			t.Error("unknown curve should panic")
		}
	}()
	_, _ = r.ProfileAllStages("P-256", 10)
}

func TestStageNamesMatchPaper(t *testing.T) {
	want := []string{"compile", "setup", "witness", "proving", "verifying"}
	for i, st := range Stages {
		if string(st) != want[i] {
			t.Errorf("stage %d = %s, want %s", i, st, want[i])
		}
	}
}

func TestBLSProfilesWork(t *testing.T) {
	if testing.Short() {
		t.Skip("BLS12-381 pipeline is slow")
	}
	s := suite(t)
	profs, err := s.Profiles("BLS12-381", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(profs[StageSetup].Curve, "BLS") {
		t.Error("curve label wrong")
	}
	// BLS base-field arithmetic is 6-limb: stage mixes differ from BN.
	bn, err := s.Profiles("BN128", 10)
	if err != nil {
		t.Fatal(err)
	}
	if profs[StageProving].Mix.Total() <= bn[StageProving].Mix.Total() {
		t.Error("BLS proving should execute more instructions than BN")
	}
}
