package core

import (
	"sort"
	"strings"

	"zkperf/internal/opcode"

	"zkperf/internal/cachesim"
	"zkperf/internal/cpumodel"
	"zkperf/internal/pipeline"
	"zkperf/internal/sched"
	"zkperf/internal/stats"
	"zkperf/internal/trace"
)

// codeFootprint estimates each stage's hot code size in bytes. The
// profiled stack is circom (a native binary) for compile and node.js-JIT'd
// JavaScript/WASM for the rest; JIT code caches are large and are the main
// front-end pressure source. Values are model parameters (see DESIGN.md).
func codeFootprint(s Stage) int64 {
	switch s {
	case StageCompile:
		return 320 << 10 // circom native code
	case StageSetup:
		return 512 << 10 // JIT'd bigint + key assembly + serialization paths
	case StageWitness:
		return 384 << 10 // WASM interpreter/JIT mix
	case StageProving:
		return 288 << 10 // JIT'd MSM/NTT kernels (small hot loops)
	case StageVerify:
		return 448 << 10 // JIT'd pairing code
	}
	return 256 << 10
}

// memExposure derives the fraction of miss latency the out-of-order core
// cannot hide from the access-pattern composition of the stage.
func memExposure(rec *trace.Recorder) float64 {
	var wsum, tsum float64
	for i := range rec.Accesses {
		a := &rec.Accesses[i]
		var w float64
		switch a.Kind {
		case trace.PointerChase:
			w = 0.85 // dependent loads: almost fully exposed
		case trace.Random:
			w = 0.45 // some MLP across independent touches
		case trace.Strided:
			w = 0.20 // stride prefetchers cover most of it
		default: // Sequential
			w = 0.10 // stream prefetchers hide nearly everything
		}
		wsum += w * float64(a.Touches)
		tsum += float64(a.Touches)
	}
	if tsum == 0 {
		return 0.3
	}
	return wsum / tsum
}

// CacheResult bundles one stage's simulated memory behaviour on one CPU.
type CacheResult struct {
	Sim *cachesim.Sim
	// PatternDRAM[i] is the DRAM traffic attributable to pattern i of the
	// stage's access list (after sampling scale-up).
	PatternDRAM []int64
}

// SimulateCaches replays a stage's access trace on one CPU model.
func SimulateCaches(p *StageProfile, cpu *cpumodel.CPU) *CacheResult {
	sim := cachesim.New(cpu)
	res := &CacheResult{Sim: sim, PatternDRAM: make([]int64, len(p.Rec.Accesses))}
	for i := range p.Rec.Accesses {
		before := sim.DRAMBytes
		sim.Replay(p.Rec.Accesses[i])
		res.PatternDRAM[i] = sim.DRAMBytes - before
	}
	return res
}

// TopDown runs the Fig. 4 analysis: the stage's pipeline-slot breakdown on
// one CPU.
func TopDown(p *StageProfile, cpu *cpumodel.CPU, cr *CacheResult) pipeline.Breakdown {
	in := pipeline.Inputs{
		Mix:              p.Mix,
		CondBranches:     p.Rec.Branches,
		IndirectBranches: p.Rec.Dispatches,
		L1Misses:         cr.Sim.L1.Misses,
		L2Misses:         cr.Sim.L2.Misses,
		LLCMisses:        cr.Sim.LLC.Misses,
		MemExposure:      memExposure(p.Rec),
		ChainInstr:       opcode.ChainInstructions(p.Rec, limbs(p.Curve, p.Stage)),
		CodeFootprint:    codeFootprint(p.Stage),
	}
	return pipeline.Analyze(in, cpu)
}

// MemoryResult is one stage's Fig. 5 / Table II / Table III row on one CPU.
type MemoryResult struct {
	Loads, Stores int64   // Fig. 5
	MPKI          float64 // Table II (LLC load MPKI)
	MaxBWGBps     float64 // Table III (peak DRAM bandwidth)
}

// Memory runs the memory analysis for one stage on one CPU.
func Memory(p *StageProfile, cpu *cpumodel.CPU, cr *CacheResult) MemoryResult {
	res := MemoryResult{
		Loads:  cr.Sim.Loads,
		Stores: cr.Sim.Stores,
		MPKI:   cr.Sim.MPKI(p.Mix.Total()),
	}

	// Peak bandwidth: the fastest DRAM-touching burst among the stage's
	// access patterns, as a bandwidth profiler samples it. Each pattern's
	// duration is modeled from its touch count and per-kind sustainable
	// throughput, then widened to the profiler's sampling window (VTune
	// reports bandwidth over ~1 ms windows, so a shorter burst is
	// averaged down). The result is capped by the single-stream limit
	// (line transfers bounded by one core's miss-level parallelism and
	// prefetchers) and by the chip's DRAM bandwidth.
	const sampleWindowSec = 0.001
	stream := singleStreamGBps(cpu)
	for i := range p.Rec.Accesses {
		a := &p.Rec.Accesses[i]
		dram := cr.PatternDRAM[i]
		if dram < 256<<10 {
			continue
		}
		elem := float64(a.ElemSize)
		if elem <= 0 {
			elem = 8
		}
		bytesPerCycle := a.BytesPerCycle
		if bytesPerCycle == 0 {
			switch a.Kind {
			case trace.Sequential:
				bytesPerCycle = 16
			case trace.Strided:
				bytesPerCycle = 8
			case trace.Random:
				bytesPerCycle = 2
			default: // PointerChase
				bytesPerCycle = 0.5
			}
		}
		cycles := float64(a.Touches) * elem / bytesPerCycle
		seconds := cycles / (cpu.FreqGHz * 1e9)
		if seconds < sampleWindowSec {
			seconds = sampleWindowSec
		}
		bw := float64(dram) / 1e9 / seconds
		if bw > stream {
			bw = stream
		}
		if bw > cpu.MemBWGBps {
			bw = cpu.MemBWGBps
		}
		if bw > res.MaxBWGBps {
			res.MaxBWGBps = bw
		}
	}
	return res
}

// singleStreamGBps models the per-core streaming bandwidth limit:
// line-size × miss-level-parallelism × prefetch factor / DRAM latency.
func singleStreamGBps(cpu *cpumodel.CPU) float64 {
	const mlp, prefetch = 12.0, 1.8
	latencyNs := float64(cpu.DRAMLatency) / cpu.FreqGHz
	bw := float64(cpu.LLC.LineSize) * mlp * prefetch / latencyNs // GB/s
	if bw > cpu.MemBWGBps {
		bw = cpu.MemBWGBps
	}
	return bw
}

// HotFunction is a Table IV row: a function class and its share of stage
// CPU time.
type HotFunction struct {
	Name    string
	Percent float64
	Nanos   int64
}

// HotFunctions aggregates the recorder's scope profile by function class
// (the prefix before '/': bigint, memcpy, malloc, msm, ntt, pairing,
// interp, heap allocation, page fault exception handler, …), sorted by
// time share.
func HotFunctions(p *StageProfile) []HotFunction {
	total := p.Rec.TotalFuncNanos()
	if total == 0 {
		return nil
	}
	agg := map[string]int64{}
	for _, f := range p.Rec.TopFunctions() {
		class := f.Name
		if i := strings.IndexByte(class, '/'); i >= 0 {
			class = class[:i]
		}
		agg[class] += f.Nanos
	}
	out := make([]HotFunction, 0, len(agg))
	for name, ns := range agg {
		out = append(out, HotFunction{Name: name, Nanos: ns, Percent: 100 * float64(ns) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// OpcodeMix returns the Table V percentages for one stage.
func OpcodeMix(p *StageProfile) (compute, control, data float64) {
	return p.Mix.Percentages()
}

// OpcodeDominant returns the stage's Table V categorization.
func OpcodeDominant(p *StageProfile) string { return p.Mix.Dominant() }

// StrongScaling runs the Fig. 6 simulation for one stage profile on one
// CPU over the given thread counts.
func StrongScaling(p *StageProfile, cpu *cpumodel.CPU, threads []int) []float64 {
	return sched.StrongScaling(cpu, p.Rec.Phases, threads)
}

// WeakScaling runs the Fig. 7 simulation: profiles[i] must be the stage
// traced at scale factor scaleFactors[i], paired with threadCounts[i].
func WeakScaling(profiles []*StageProfile, cpu *cpumodel.CPU, threadCounts []int, scaleFactors []float64) []float64 {
	phases := make([][]trace.Phase, len(profiles))
	for i, p := range profiles {
		phases[i] = p.Rec.Phases
	}
	return sched.WeakScaling(cpu, phases, threadCounts, scaleFactors)
}

// ParallelFit is one Table VI row: the serial/parallel split extracted
// from a scaling curve.
type ParallelFit struct {
	SerialPct   float64
	ParallelPct float64
}

// FitStrong fits Amdahl's law to a strong-scaling curve.
func FitStrong(threads []int, speedups []float64) ParallelFit {
	pf := stats.FitAmdahl(threads, speedups)
	return ParallelFit{SerialPct: 100 * (1 - pf), ParallelPct: 100 * pf}
}

// FitWeak fits Gustafson's law to a weak-scaling curve.
func FitWeak(threads []int, speedups []float64) ParallelFit {
	pf := stats.FitGustafson(threads, speedups)
	return ParallelFit{SerialPct: 100 * (1 - pf), ParallelPct: 100 * pf}
}
