package qap

import (
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/ff"
	"zkperf/internal/poly"
	"zkperf/internal/witness"
)

// TestQAPIdentity is the core soundness check of the reduction: for a
// satisfying witness, Σ wᵢ·uᵢ(τ) · Σ wᵢ·vᵢ(τ) − Σ wᵢ·wᵢ(τ) == H(τ)·Z(τ)
// at a random point τ.
func TestQAPIdentity(t *testing.T) {
	fr := ff.NewBN254Fr()
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(13))
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 5)
	wit, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	d, err := poly.NewDomain(fr, sys.NumConstraints())
	if err != nil {
		t.Fatal(err)
	}

	rng := ff.NewRNG(17)
	var tau ff.Element
	fr.Random(&tau, rng)
	ev, err := EvalAtPoint(sys, d, &tau)
	if err != nil {
		t.Fatal(err)
	}

	var uw, vw, ww, tmp ff.Element
	for i := range wit.Full {
		fr.Mul(&tmp, &ev.U[i], &wit.Full[i])
		fr.Add(&uw, &uw, &tmp)
		fr.Mul(&tmp, &ev.V[i], &wit.Full[i])
		fr.Add(&vw, &vw, &tmp)
		fr.Mul(&tmp, &ev.W[i], &wit.Full[i])
		fr.Add(&ww, &ww, &tmp)
	}

	h := QuotientEvals(sys, d, wit.Full)
	hTau := poly.Eval(fr, h, &tau)
	zTau := d.ZEval(&tau)

	var lhs, rhs ff.Element
	fr.Mul(&lhs, &uw, &vw)
	fr.Sub(&lhs, &lhs, &ww)
	fr.Mul(&rhs, &hTau, &zTau)
	if !fr.Equal(&lhs, &rhs) {
		t.Fatal("QAP identity A(τ)B(τ) − C(τ) = H(τ)Z(τ) does not hold")
	}
}

// TestQAPIdentityFailsForBadWitness: corrupting the witness must break the
// divisibility (the quotient no longer satisfies the identity at a random
// point).
func TestQAPIdentityFailsForBadWitness(t *testing.T) {
	fr := ff.NewBN254Fr()
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(13))
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 5)
	wit, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt an internal wire.
	fr.SetUint64(&wit.Full[len(wit.Full)-1], 999)

	d, _ := poly.NewDomain(fr, sys.NumConstraints())
	rng := ff.NewRNG(19)
	var tau ff.Element
	fr.Random(&tau, rng)
	ev, err := EvalAtPoint(sys, d, &tau)
	if err != nil {
		t.Fatal(err)
	}
	var uw, vw, ww, tmp ff.Element
	for i := range wit.Full {
		fr.Mul(&tmp, &ev.U[i], &wit.Full[i])
		fr.Add(&uw, &uw, &tmp)
		fr.Mul(&tmp, &ev.V[i], &wit.Full[i])
		fr.Add(&vw, &vw, &tmp)
		fr.Mul(&tmp, &ev.W[i], &wit.Full[i])
		fr.Add(&ww, &ww, &tmp)
	}
	h := QuotientEvals(sys, d, wit.Full)
	hTau := poly.Eval(fr, h, &tau)
	zTau := d.ZEval(&tau)
	var lhs, rhs ff.Element
	fr.Mul(&lhs, &uw, &vw)
	fr.Sub(&lhs, &lhs, &ww)
	fr.Mul(&rhs, &hTau, &zTau)
	if fr.Equal(&lhs, &rhs) {
		t.Fatal("QAP identity held for a corrupted witness")
	}
}

// TestEvalAtDomainPointRejected: τ inside the domain must be rejected.
func TestEvalAtDomainPointRejected(t *testing.T) {
	fr := ff.NewBN254Fr()
	sys, _, err := circuit.CompileSource(fr, circuit.ExponentiateSource(8))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := poly.NewDomain(fr, sys.NumConstraints())
	tau := d.RootPower(3)
	if _, err := EvalAtPoint(sys, d, &tau); err == nil {
		t.Fatal("EvalAtPoint should reject τ in the domain")
	}
}

// TestLagrangeInterpolationProperty: u_i(ω^j) must reproduce the L-matrix
// column entries. We check via the identity Σᵢ wᵢ·uᵢ(ω^j) == ⟨L_j, w⟩
// evaluated through coefficients recovered from EvalAtPoint at many taus —
// indirectly via the QAP identity above; here we do the direct small case:
// for the toy system the first constraint's L is exactly x (wire 2).
func TestLagrangeBasisNormalization(t *testing.T) {
	fr := ff.NewBN254Fr()
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(4))
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 3)
	wit, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := poly.NewDomain(fr, sys.NumConstraints())

	// Evaluate the QAP at τ very close to domain structure: pick τ random;
	// check that Σ wᵢuᵢ interpolates constraint LHS values, by comparing
	// against direct Lagrange interpolation of the per-constraint values.
	rng := ff.NewRNG(23)
	var tau ff.Element
	fr.Random(&tau, rng)
	ev, err := EvalAtPoint(sys, d, &tau)
	if err != nil {
		t.Fatal(err)
	}
	var uw, tmp ff.Element
	for i := range wit.Full {
		fr.Mul(&tmp, &ev.U[i], &wit.Full[i])
		fr.Add(&uw, &uw, &tmp)
	}
	// Direct interpolation: values a_j = ⟨L_j, w⟩ (zero-padded), INTT,
	// then Horner at tau.
	a := make([]ff.Element, d.N)
	for j := range sys.Constraints {
		a[j] = sys.EvalLC(sys.Constraints[j].L, wit.Full)
	}
	d.INTT(a)
	want := poly.Eval(fr, a, &tau)
	if !fr.Equal(&uw, &want) {
		t.Fatal("Σ wᵢ·uᵢ(τ) disagrees with direct interpolation")
	}
}
