// Package qap implements the Quadratic Arithmetic Program reduction: the
// bridge between the R1CS produced by the compile stage and the polynomial
// identities Groth16 proves. It provides
//
//   - EvalAtPoint: per-variable QAP polynomial evaluations u_i(τ), v_i(τ),
//     w_i(τ) at a secret point τ (used by the setup stage), and
//   - QuotientEvals: the coefficients of the quotient polynomial
//     H(x) = (A(x)·B(x) − C(x)) / Z(x) for a concrete witness (used by the
//     proving stage), computed with coset NTTs.
package qap

import (
	"context"
	"fmt"

	"zkperf/internal/ff"
	"zkperf/internal/poly"
	"zkperf/internal/r1cs"
	"zkperf/internal/telemetry"
)

// Evaluations holds u_i(τ), v_i(τ), w_i(τ) for every witness variable i.
type Evaluations struct {
	U, V, W []ff.Element
}

// EvalAtPoint computes the QAP polynomial evaluations at tau over the
// given domain. The QAP polynomials interpolate the R1CS coefficient
// matrices column-wise over the domain: u_i(ω^j) = L_j[i], etc.
//
// It returns an error if tau lies inside the evaluation domain (Z(τ) = 0),
// in which case the caller should resample.
func EvalAtPoint(sys *r1cs.System, d *poly.Domain, tau *ff.Element) (*Evaluations, error) {
	fr := sys.Fr
	zTau := d.ZEval(tau)
	if fr.IsZero(&zTau) {
		return nil, fmt.Errorf("qap: tau lies in the evaluation domain")
	}

	// Lagrange basis at tau for a radix-2 domain:
	// ℓ_j(τ) = Z(τ)·ω^j / (N·(τ − ω^j)).
	n := d.N
	lag := make([]ff.Element, n)
	var omegaJ ff.Element
	fr.One(&omegaJ)
	var nElem ff.Element
	fr.SetUint64(&nElem, uint64(n))
	for j := 0; j < n; j++ {
		var denom ff.Element
		fr.Sub(&denom, tau, &omegaJ)
		fr.Mul(&denom, &denom, &nElem)
		lag[j] = denom // temporarily store denominators
		fr.Mul(&omegaJ, &omegaJ, &d.Root)
	}
	fr.BatchInverse(lag)
	fr.One(&omegaJ)
	for j := 0; j < n; j++ {
		fr.Mul(&lag[j], &lag[j], &zTau)
		fr.Mul(&lag[j], &lag[j], &omegaJ)
		fr.Mul(&omegaJ, &omegaJ, &d.Root)
	}

	nv := sys.NumVariables()
	ev := &Evaluations{
		U: make([]ff.Element, nv),
		V: make([]ff.Element, nv),
		W: make([]ff.Element, nv),
	}
	var t ff.Element
	accumulate := func(dst []ff.Element, lc r1cs.LinComb, lj *ff.Element) {
		for k := range lc {
			fr.Mul(&t, &lc[k].Coeff, lj)
			fr.Add(&dst[lc[k].Var], &dst[lc[k].Var], &t)
		}
	}
	for j := range sys.Constraints {
		c := &sys.Constraints[j]
		accumulate(ev.U, c.L, &lag[j])
		accumulate(ev.V, c.R, &lag[j])
		accumulate(ev.W, c.O, &lag[j])
	}
	return ev, nil
}

// QuotientEvals computes the coefficients of H(x) = (A·B − C)/Z for the
// given full witness. The returned slice has length N−1 (deg H ≤ N−2).
//
// A, B, C are the witness-weighted constraint polynomials: A(ω^j) = ⟨L_j,w⟩
// etc. The division by Z happens on a multiplicative coset where
// Z(g·ω^k) = g^N − 1 is a nonzero constant.
func QuotientEvals(sys *r1cs.System, d *poly.Domain, w []ff.Element) []ff.Element {
	h, _ := QuotientEvalsCtx(context.Background(), sys, d, w, 1)
	return h
}

// QuotientEvalsCtx is the cancellable QuotientEvals: ctx is checked inside
// each transform at butterfly-layer boundaries, so an abandoned proving job
// stops within one layer. threads bounds the worker count of each NTT's
// butterfly stages. On cancellation it returns ctx.Err() and a nil slice.
func QuotientEvalsCtx(ctx context.Context, sys *r1cs.System, d *poly.Domain, w []ff.Element, threads int) ([]ff.Element, error) {
	fr := sys.Fr
	n := d.N
	a := make([]ff.Element, n)
	b := make([]ff.Element, n)
	c := make([]ff.Element, n)
	for j := range sys.Constraints {
		cons := &sys.Constraints[j]
		a[j] = sys.EvalLC(cons.L, w)
		b[j] = sys.EvalLC(cons.R, w)
		c[j] = sys.EvalLC(cons.O, w)
	}

	// To coefficient form, then to the coset. Seven transform passes in
	// total (counting the final CosetINTT); cancellation is re-checked
	// before each one. The whole transform block is one "ntt" kernel span:
	// the probe rides in ctx and is resolved once, not per pass.
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	for _, pass := range []func() error{
		func() error { return d.INTTCtx(ctx, a, threads) },
		func() error { return d.INTTCtx(ctx, b, threads) },
		func() error { return d.INTTCtx(ctx, c, threads) },
		func() error { return d.CosetNTTCtx(ctx, a, threads) },
		func() error { return d.CosetNTTCtx(ctx, b, threads) },
		func() error { return d.CosetNTTCtx(ctx, c, threads) },
	} {
		if err := pass(); err != nil {
			return nil, err
		}
	}

	// On the coset, Z(g·ω^k) = g^N·(ω^N)^k − 1 = g^N − 1 (constant).
	var zCoset ff.Element
	fr.Set(&zCoset, &d.CosetGen)
	for i := 0; i < d.LogN; i++ {
		fr.Square(&zCoset, &zCoset)
	}
	var one, zInv ff.Element
	fr.One(&one)
	fr.Sub(&zCoset, &zCoset, &one)
	fr.Inverse(&zInv, &zCoset)

	h := a // reuse
	var t ff.Element
	for k := 0; k < n; k++ {
		fr.Mul(&t, &a[k], &b[k])
		fr.Sub(&t, &t, &c[k])
		fr.Mul(&h[k], &t, &zInv)
	}
	if err := d.CosetINTTCtx(ctx, h, threads); err != nil {
		return nil, err
	}
	probe.Observe(telemetry.KernelNTT, t0, n)
	return h[:n-1], nil
}
