package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultReplicas is how many virtual points each node gets on the
// ring. 64 keeps the shard imbalance of a small cluster within a few
// percent while the ring stays tiny (N×64 points).
const defaultReplicas = 64

// ring is a consistent-hash ring over node indices. Circuit keys walk
// the ring clockwise from their hash; the first node is the shard
// owner, the rest are the failover order. Adding or removing one node
// only remaps the keys that hashed onto its points — every other
// circuit keeps its warm registry/artifact cache.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// newRing builds the ring for n nodes identified by name. Names (not
// indices) feed the point hashes, so the same cluster config yields
// the same shard map regardless of node order.
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{nodes: len(names)}
	r.points = make([]ringPoint, 0, len(names)*replicas)
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(name, strconv.Itoa(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// order returns all node indices in ring-walk order from key: the
// shard owner first, then each distinct node as the walk encounters
// it — the failover sequence.
func (r *ring) order(key uint64) []int {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// hashKey hashes the concatenated parts (NUL-separated, so "ab"+"c"
// and "a"+"bc" differ) to a ring position.
func hashKey(parts ...string) uint64 {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}
