// Package cluster is the multi-node proving tier: a gateway that
// shards work across N zkserve nodes by consistent-hashing the circuit
// key, so each node's registry and artifact cache stays hot for its
// shard — the same setup-amortization argument provesvc makes within a
// process, applied across the cluster. Per-node health follows the
// breaker pattern from the per-circuit breaker: consecutive transport
// failures open a node, a background prober's /v1/healthz success
// closes it, and routing fails over along the ring in the meantime.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/client"
	"zkperf/internal/telemetry"
)

// Defaults for Config zero values.
const (
	DefaultProbeEvery    = 2 * time.Second
	DefaultFailThreshold = 3
	DefaultCooldown      = 10 * time.Second
)

// NodeConfig names one zkserve backend.
type NodeConfig struct {
	// Name identifies the node in job IDs, stats and metrics. Must be
	// unique and must not contain '@' (the job-ID separator).
	Name string
	// URL is the node's base URL, e.g. "http://10.0.0.1:8090".
	URL string
}

// Config assembles a Gateway.
type Config struct {
	Nodes []NodeConfig
	// Replicas is the virtual points per node on the hash ring
	// (default 64).
	Replicas int
	// ProbeEvery is the health-probe cadence (default 2s).
	ProbeEvery time.Duration
	// FailThreshold consecutive transport failures mark a node unhealthy
	// (default 3; 1 marks on the first failure).
	FailThreshold int
	// Cooldown is how long an unhealthy node is skipped before the
	// prober's verdict alone decides again (default 10s). Routing never
	// waits on it — a probe success reopens the node immediately.
	Cooldown time.Duration
	// Telemetry receives the gateway's metrics (nil disables).
	Telemetry *telemetry.Telemetry
}

func (c Config) withDefaults() Config {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = DefaultProbeEvery
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	return c
}

// node is one backend plus its health state. Health transitions follow
// the provesvc breaker discipline: consecutive transport failures open
// it, one probe success closes it.
type node struct {
	name string
	url  string
	// cl is the proxy transport: no retries (the ring walk is the retry)
	// and no client timeout (proves are bounded by the job deadline).
	cl *client.Client
	// probe is a short-deadline client for /v1/healthz.
	probe *client.Client

	mu          sync.Mutex
	healthy     bool
	consecFails int
	openedAt    time.Time
	lastErr     string

	routed    atomic.Uint64 // requests this node served (or errored executing)
	failovers atomic.Uint64 // transport/shed failures that moved work off it
}

func (n *node) markFailure(threshold int, err error) {
	n.mu.Lock()
	n.consecFails++
	n.lastErr = err.Error()
	if n.consecFails >= threshold && n.healthy {
		n.healthy = false
		n.openedAt = time.Now()
	}
	n.mu.Unlock()
}

func (n *node) markSuccess() {
	n.mu.Lock()
	n.consecFails = 0
	n.lastErr = ""
	n.healthy = true
	n.mu.Unlock()
}

func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

// Gateway routes /v1 traffic across the configured nodes.
type Gateway struct {
	cfg    Config
	nodes  []*node
	byName map[string]*node
	ring   *ring
	tel    *telemetry.Telemetry

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	proxied       atomic.Uint64 // requests forwarded (any outcome)
	failovers     atomic.Uint64 // ring-walk hops past a failed node
	noHealthy     atomic.Uint64 // requests failed with no_healthy_node
	jobsRouted    atomic.Uint64 // async submits accepted
	statsScrapes  atomic.Uint64
	probeFailures atomic.Uint64
}

// New builds a gateway; call Start to launch the health prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	g := &Gateway{
		cfg:    cfg,
		byName: make(map[string]*node, len(cfg.Nodes)),
		tel:    cfg.Telemetry,
		stop:   make(chan struct{}),
	}
	names := make([]string, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		if nc.Name == "" || nc.URL == "" {
			return nil, fmt.Errorf("cluster: node %d needs both a name and a URL", i)
		}
		if containsAt(nc.Name) {
			return nil, fmt.Errorf("cluster: node name %q must not contain '@'", nc.Name)
		}
		if g.byName[nc.Name] != nil {
			return nil, fmt.Errorf("cluster: duplicate node name %q", nc.Name)
		}
		n := &node{
			name:    nc.Name,
			url:     nc.URL,
			cl:      client.New(nc.URL),
			probe:   client.New(nc.URL),
			healthy: true, // optimistic until traffic or the prober says otherwise
		}
		n.probe.HTTP = &http.Client{Timeout: 2 * time.Second}
		g.nodes = append(g.nodes, n)
		g.byName[nc.Name] = n
		names[i] = nc.Name
	}
	g.ring = newRing(names, cfg.Replicas)
	g.registerMetrics()
	return g, nil
}

func containsAt(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '@' {
			return true
		}
	}
	return false
}

func (g *Gateway) registerMetrics() {
	reg := g.tel.Registry()
	if reg == nil {
		return
	}
	reg.GaugeFunc("zkgw_nodes", "Cluster nodes by health.",
		func() float64 { return float64(g.healthyCount()) },
		telemetry.Label{Name: "state", Value: "healthy"})
	reg.GaugeFunc("zkgw_nodes", "Cluster nodes by health.",
		func() float64 { return float64(len(g.nodes) - g.healthyCount()) },
		telemetry.Label{Name: "state", Value: "unhealthy"})
	reg.GaugeFunc("zkgw_proxied_total", "Requests forwarded to nodes.",
		func() float64 { return float64(g.proxied.Load()) })
	reg.GaugeFunc("zkgw_failovers_total", "Ring-walk hops past failed nodes.",
		func() float64 { return float64(g.failovers.Load()) })
	reg.GaugeFunc("zkgw_no_healthy_node_total", "Requests shed with no_healthy_node.",
		func() float64 { return float64(g.noHealthy.Load()) })
	reg.GaugeFunc("zkgw_jobs_routed_total", "Async job submissions accepted.",
		func() float64 { return float64(g.jobsRouted.Load()) })
	reg.GaugeFunc("zkgw_probe_failures_total", "Health probes that failed.",
		func() float64 { return float64(g.probeFailures.Load()) })
	for _, n := range g.nodes {
		n := n
		label := telemetry.Label{Name: "node", Value: n.name}
		reg.GaugeFunc("zkgw_node_healthy", "1 while the node passes health checks.",
			func() float64 {
				if n.isHealthy() {
					return 1
				}
				return 0
			}, label)
		reg.GaugeFunc("zkgw_node_routed_total", "Requests this node served.",
			func() float64 { return float64(n.routed.Load()) }, label)
		reg.GaugeFunc("zkgw_node_failovers_total", "Failures that moved work off this node.",
			func() float64 { return float64(n.failovers.Load()) }, label)
	}
}

func (g *Gateway) healthyCount() int {
	c := 0
	for _, n := range g.nodes {
		if n.isHealthy() {
			c++
		}
	}
	return c
}

// Start launches the background health prober.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go g.prober()
}

// Shutdown stops the prober. In-flight proxied requests are owned by
// the HTTP server's own drain.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.stopOnce.Do(func() { close(g.stop) })
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// prober polls every node's /v1/healthz on the configured cadence. A
// success closes an open node immediately; a failure counts toward the
// threshold exactly like a proxy-path transport failure.
func (g *Gateway) prober() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, n := range g.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			var status struct {
				Status string `json:"status"`
			}
			err := n.probe.GetJSON("/v1/healthz", &status)
			if err == nil {
				n.markSuccess()
				return
			}
			g.probeFailures.Add(1)
			// A draining node answers 503 with a JSON body — that is a
			// deliberate "stop sending me work", not a transport flake, so
			// it opens the node immediately.
			if we, ok := err.(*client.Error); ok && we.Status == http.StatusServiceUnavailable {
				n.markFailure(1, err)
				return
			}
			n.markFailure(g.cfg.FailThreshold, err)
		}()
	}
	wg.Wait()
}

// candidates returns the ring-walk node order for key, healthy nodes
// first (in ring order), then unhealthy ones (a desperation pass — a
// node can recover before the prober notices).
func (g *Gateway) candidates(key uint64) []*node {
	order := g.ring.order(key)
	healthy := make([]*node, 0, len(order))
	var down []*node
	for _, i := range order {
		n := g.nodes[i]
		if n.isHealthy() {
			healthy = append(healthy, n)
		} else {
			down = append(down, n)
		}
	}
	return append(healthy, down...)
}

// routeKey computes the shard key for a request: the circuit source
// plus curve and backend with the node-side defaults applied, so the
// gateway's shard map matches the per-node registry's cache key.
func routeKey(curve, backend, circuit string) uint64 {
	if curve == "" {
		curve = "bn128"
	}
	if backend == "" {
		backend = "groth16"
	}
	return hashKey(curve, backend, circuit)
}

// shedCodes are envelope codes a node returns *before* executing a
// request — queue admission and breaker sheds. Failing over on them is
// safe (nothing ran) and is exactly what a saturated shard wants.
// Executed failures (deadline_exceeded, internal_error, bad_request…)
// must NOT fail over: the work already ran once, and a deterministic
// failure would just run again.
var shedCodes = map[string]bool{
	"queue_full":    true,
	"too_many_jobs": true,
	"draining":      true,
	"dropped":       true,
	"circuit_open":  true,
}

// forward walks the candidate nodes for key, POSTing payload to path
// on each until one executes it. Returns the executing node, the HTTP
// status it answered with, and its raw response; header (may be nil)
// rides along on each attempt — that's how Idempotency-Key reaches the
// owning node, making the ring walk itself exactly-once. Transport
// errors and pre-execution sheds advance the walk; an executed error
// (envelope from a node that ran the request) is returned as-is with
// its node.
func (g *Gateway) forward(key uint64, path string, payload []byte, header http.Header) (*node, int, []byte, error) {
	g.proxied.Add(1)
	cands := g.candidates(key)
	var lastErr error
	for i, n := range cands {
		status, data, err := n.cl.DoWith(http.MethodPost, path, payload, header)
		if err == nil {
			n.markSuccess()
			n.routed.Add(1)
			return n, status, data, nil
		}
		if we, ok := err.(*client.Error); ok {
			if !shedCodes[we.Code] {
				// The node executed (or authoritatively judged) the request:
				// its verdict stands, no failover.
				n.markSuccess()
				n.routed.Add(1)
				return n, status, nil, err
			}
			// Pre-execution shed: the node is up but won't take this work
			// now. Try the next ring node without dinging its health.
		} else {
			// Transport failure: the node may be down.
			n.markFailure(g.cfg.FailThreshold, err)
		}
		lastErr = err
		n.failovers.Add(1)
		if i < len(cands)-1 {
			g.failovers.Add(1)
		}
	}
	g.noHealthy.Add(1)
	return nil, 0, nil, &client.Error{
		Code:      "no_healthy_node",
		Message:   fmt.Sprintf("cluster: all %d nodes failed; last: %v", len(cands), lastErr),
		Retryable: true,
		Status:    http.StatusServiceUnavailable,
	}
}

// splitJobID splits a gateway job ID "<remote>@<node>" into its parts.
func splitJobID(id string) (remote, nodeName string, ok bool) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			return id[:i], id[i+1:], i > 0 && i < len(id)-1
		}
	}
	return "", "", false
}

// NodeStats is one node's slice of the cluster stats rollup.
type NodeStats struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	ConsecFails int    `json:"consec_fails"`
	LastError   string `json:"last_error,omitempty"`
	Routed      uint64 `json:"routed"`
	Failovers   uint64 `json:"failovers"`
	// Stats is the node's own /v1/stats snapshot; null when the scrape
	// failed. Kept as raw JSON so the gateway never narrows a node's
	// schema.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// GatewayStats is the gateway's own counters.
type GatewayStats struct {
	Proxied       uint64 `json:"proxied"`
	Failovers     uint64 `json:"failovers"`
	NoHealthyNode uint64 `json:"no_healthy_node"`
	JobsRouted    uint64 `json:"jobs_routed"`
	ProbeFailures uint64 `json:"probe_failures"`
	HealthyNodes  int    `json:"healthy_nodes"`
	TotalNodes    int    `json:"total_nodes"`
}

// AggregateStats sums the headline counters across reachable nodes.
type AggregateStats struct {
	Accepted  uint64 `json:"accepted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Rejected  uint64 `json:"rejected"`
	Verified  uint64 `json:"verified"`
	Setups    uint64 `json:"setups"`
	CacheHits uint64 `json:"cache_hits"`
	JobsDone  uint64 `json:"jobs_done"`
}

// ClusterStats is the GET /v1/stats response of the gateway.
type ClusterStats struct {
	Gateway   GatewayStats   `json:"gateway"`
	Aggregate AggregateStats `json:"aggregate"`
	Nodes     []NodeStats    `json:"nodes"`
}

// nodeSnapshot is the subset of a node's /v1/stats the rollup sums.
// Field names compile against the documented schema keys.
type nodeSnapshot struct {
	Service struct {
		Accepted  uint64 `json:"accepted"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Rejected  uint64 `json:"rejected"`
		Verified  uint64 `json:"verified"`
	} `json:"service"`
	Cache struct {
		Hits   uint64 `json:"hits"`
		Setups uint64 `json:"setups"`
	} `json:"cache"`
	Jobs struct {
		Completed uint64 `json:"completed"`
	} `json:"jobs"`
}

// Stats scrapes every node concurrently and rolls the cluster view up.
func (g *Gateway) Stats() ClusterStats {
	g.statsScrapes.Add(1)
	out := ClusterStats{
		Gateway: GatewayStats{
			Proxied:       g.proxied.Load(),
			Failovers:     g.failovers.Load(),
			NoHealthyNode: g.noHealthy.Load(),
			JobsRouted:    g.jobsRouted.Load(),
			ProbeFailures: g.probeFailures.Load(),
			HealthyNodes:  g.healthyCount(),
			TotalNodes:    len(g.nodes),
		},
		Nodes: make([]NodeStats, len(g.nodes)),
	}
	var wg sync.WaitGroup
	for i, n := range g.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.mu.Lock()
			out.Nodes[i] = NodeStats{
				Name:        n.name,
				URL:         n.url,
				Healthy:     n.healthy,
				ConsecFails: n.consecFails,
				LastError:   n.lastErr,
			}
			n.mu.Unlock()
			out.Nodes[i].Routed = n.routed.Load()
			out.Nodes[i].Failovers = n.failovers.Load()
			raw, err := n.probe.Do(http.MethodGet, "/v1/stats", nil)
			if err != nil {
				return
			}
			out.Nodes[i].Stats = json.RawMessage(raw)
		}()
	}
	wg.Wait()
	for _, ns := range out.Nodes {
		if ns.Stats == nil {
			continue
		}
		var snap nodeSnapshot
		if err := json.Unmarshal(ns.Stats, &snap); err != nil {
			continue
		}
		out.Aggregate.Accepted += snap.Service.Accepted
		out.Aggregate.Completed += snap.Service.Completed
		out.Aggregate.Failed += snap.Service.Failed
		out.Aggregate.Rejected += snap.Service.Rejected
		out.Aggregate.Verified += snap.Service.Verified
		out.Aggregate.Setups += snap.Cache.Setups
		out.Aggregate.CacheHits += snap.Cache.Hits
		out.Aggregate.JobsDone += snap.Jobs.Completed
	}
	return out
}
