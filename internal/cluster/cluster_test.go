package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/provesvc"
	"zkperf/internal/telemetry"
)

// testCluster is a gateway in front of n in-process zkserve nodes.
type testCluster struct {
	gw      *Gateway
	gwURL   string
	nodes   []*httptest.Server
	svcs    []*provesvc.Service
	gwSrv   *httptest.Server
	cancels []func()
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	cfgs := make([]NodeConfig, n)
	for i := 0; i < n; i++ {
		svc := provesvc.New(provesvc.WithWorkers(2), provesvc.WithQueueDepth(8),
			provesvc.WithSeed(uint64(100+i)))
		svc.Start()
		ts := httptest.NewServer(provesvc.NewHandler(svc))
		tc.svcs = append(tc.svcs, svc)
		tc.nodes = append(tc.nodes, ts)
		cfgs[i] = NodeConfig{Name: fmt.Sprintf("n%d", i), URL: ts.URL}
	}
	gw, err := New(Config{
		Nodes: cfgs,
		// Long cadence: tests drive probeAll directly for determinism.
		ProbeEvery:    time.Hour,
		FailThreshold: 1,
		Telemetry:     telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	tc.gw = gw
	tc.gwSrv = httptest.NewServer(gw.Handler())
	tc.gwURL = tc.gwSrv.URL
	t.Cleanup(func() {
		tc.gwSrv.Close()
		gw.Shutdown(context.Background())
		for i, ts := range tc.nodes {
			ts.Close()
			tc.svcs[i].Shutdown(context.Background())
		}
	})
	return tc
}

// owner returns the index of the node that owns the circuit's shard.
func (tc *testCluster) owner(src string) int {
	name := tc.gw.candidates(routeKey("", "", src))[0].name
	for i := range tc.nodes {
		if fmt.Sprintf("n%d", i) == name {
			return i
		}
	}
	return -1
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response from %s: %v", url, err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response from %s: %v", url, err)
	}
	return resp, out
}

func TestRingDeterminismAndCoverage(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := newRing(names, 64)
	r2 := newRing(names, 64)
	counts := make(map[int]int)
	for i := 0; i < 1000; i++ {
		key := hashKey("circuit", fmt.Sprint(i))
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != 3 {
			t.Fatalf("order(%d) = %v, want all 3 nodes", key, o1)
		}
		seen := map[int]bool{}
		for j, n := range o1 {
			if n != o2[j] {
				t.Fatalf("ring not deterministic: %v vs %v", o1, o2)
			}
			if seen[n] {
				t.Fatalf("order(%d) repeats node %d: %v", key, n, o1)
			}
			seen[n] = true
		}
		counts[o1[0]]++
	}
	// 64 virtual points per node keeps a 3-node split roughly even; a
	// node owning under 15% of keys means the ring is badly skewed.
	for n, c := range counts {
		if c < 150 {
			t.Errorf("node %d owns %d/1000 keys — ring badly unbalanced (%v)", n, c, counts)
		}
	}
}

// TestRoutingAffinity is the cache-affinity acceptance check: repeated
// proves of the same circuits through the gateway never duplicate a
// trusted setup onto a second node — each circuit's setup count across
// the cluster stays at one.
func TestRoutingAffinity(t *testing.T) {
	tc := newTestCluster(t, 2)
	srcs := []string{circuit.ExponentiateSource(16), circuit.ExponentiateSource(32)}
	for round := 0; round < 3; round++ {
		for _, src := range srcs {
			resp, out := postJSON(t, tc.gwURL+"/v1/prove", map[string]any{
				"circuit": src, "inputs": map[string]string{"x": "3"},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("prove via gateway = %d (body %v)", resp.StatusCode, out)
			}
		}
	}
	// Across all rounds the cluster performed at most one setup per
	// distinct circuit (exactly one if both shards map to one node).
	totalSetups := uint64(0)
	for _, svc := range tc.svcs {
		totalSetups += svc.Stats().Cache.Setups
	}
	if want := uint64(len(srcs)); totalSetups != want {
		t.Errorf("cluster performed %d setups for %d circuits — routing is not shard-stable", totalSetups, want)
	}

	// The cluster stats rollup agrees.
	_, st := getJSON(t, tc.gwURL+"/v1/stats")
	agg, _ := st["aggregate"].(map[string]any)
	if agg["completed"].(float64) != 6 {
		t.Errorf("aggregate.completed = %v, want 6", agg["completed"])
	}
	if agg["setups"].(float64) != float64(len(srcs)) {
		t.Errorf("aggregate.setups = %v, want %d", agg["setups"], len(srcs))
	}
	gwStats, _ := st["gateway"].(map[string]any)
	if gwStats["proxied"].(float64) < 6 {
		t.Errorf("gateway.proxied = %v, want >= 6", gwStats["proxied"])
	}
}

// TestFailoverOnNodeDeath kills a circuit's shard owner mid-cluster and
// checks the next prove fails over to the surviving node — and that the
// job ran exactly once (no double-run).
func TestFailoverOnNodeDeath(t *testing.T) {
	tc := newTestCluster(t, 2)
	src := circuit.ExponentiateSource(16)
	body := map[string]any{"circuit": src, "inputs": map[string]string{"x": "3"}}

	owner := tc.owner(src)
	if resp, out := postJSON(t, tc.gwURL+"/v1/prove", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up prove = %d (body %v)", resp.StatusCode, out)
	}
	if got := tc.svcs[owner].Stats().Service.Completed; got != 1 {
		t.Fatalf("owner node completed %d proves, want 1 — owner detection is off", got)
	}

	tc.nodes[owner].Close() // node dies
	resp, out := postJSON(t, tc.gwURL+"/v1/prove", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove after owner death = %d, want 200 via failover (body %v)", resp.StatusCode, out)
	}
	if out["proof"] == nil {
		t.Fatalf("failover prove returned no proof: %v", out)
	}
	survivor := 1 - owner
	if got := tc.svcs[survivor].Stats().Service.Completed; got != 1 {
		t.Errorf("survivor completed %d proves, want exactly 1 (no double-run)", got)
	}
	if got := tc.gw.failovers.Load(); got == 0 {
		t.Error("gateway failover counter = 0, want > 0 after a node death")
	}

	// The transport failure opened the dead node (threshold 1).
	if tc.gw.nodes[owner].isHealthy() {
		t.Error("dead node still marked healthy after a transport failure at threshold 1")
	}
	// healthz stays 200 while one node survives.
	if resp, _ := getJSON(t, tc.gwURL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d with one healthy node, want 200", resp.StatusCode)
	}

	// Probe recovery: the node comes back (new server on the handler),
	// and a probe pass closes it again.
	tc.nodes[owner] = httptest.NewServer(provesvc.NewHandler(tc.svcs[owner]))
	tc.gw.byName[fmt.Sprintf("n%d", owner)].cl.BaseURL = tc.nodes[owner].URL
	tc.gw.byName[fmt.Sprintf("n%d", owner)].probe.BaseURL = tc.nodes[owner].URL
	tc.gw.probeAll()
	if !tc.gw.nodes[owner].isHealthy() {
		t.Error("revived node still unhealthy after a successful probe")
	}
}

// TestExecutedErrorsDoNotFailOver pins the no-double-run rule from the
// other side: a node that *executed* the request and failed it (here a
// 400 unknown_curve) is authoritative — the gateway must not replay the
// work on another node.
func TestExecutedErrorsDoNotFailOver(t *testing.T) {
	tc := newTestCluster(t, 2)
	resp, out := postJSON(t, tc.gwURL+"/v1/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(16),
		"curve":   "secp256k1",
		"inputs":  map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown curve via gateway = %d, want 400 passthrough (body %v)", resp.StatusCode, out)
	}
	if out["code"] != "unknown_curve" {
		t.Errorf("envelope code = %v, want unknown_curve", out["code"])
	}
	if got := tc.gw.failovers.Load(); got != 0 {
		t.Errorf("gateway failed over %d times on an executed 400 — must not replay", got)
	}
}

// TestJobsThroughGateway drives the async path end to end: submit via
// the gateway (ID gains the @node suffix), poll and cancel route by
// that suffix with no gateway state.
func TestJobsThroughGateway(t *testing.T) {
	tc := newTestCluster(t, 2)
	src := circuit.ExponentiateSource(16)
	resp, out := postJSON(t, tc.gwURL+"/v1/jobs", map[string]any{
		"circuit": src, "inputs": map[string]string{"x": "3"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit via gateway = %d (body %v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	wantSuffix := fmt.Sprintf("@n%d", tc.owner(src))
	if !strings.HasSuffix(id, wantSuffix) {
		t.Fatalf("gateway job id = %q, want suffix %q (shard owner)", id, wantSuffix)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final map[string]any
	for {
		resp, final = getJSON(t, tc.gwURL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll via gateway = %d (body %v)", resp.StatusCode, final)
		}
		if final["state"] == "done" || final["state"] == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %v", id, final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final["state"] != "done" {
		t.Fatalf("job state = %v (body %v)", final["state"], final)
	}
	if final["id"] != id {
		t.Errorf("poll reply id = %v, want the gateway form %q", final["id"], id)
	}
	result, _ := final["result"].(map[string]any)
	if result["proof"] == nil {
		t.Errorf("done job carries no proof: %v", final)
	}

	// Unknown node in the ID → 404 envelope, no proxying.
	resp, out = getJSON(t, tc.gwURL+"/v1/jobs/deadbeef@nope")
	if resp.StatusCode != http.StatusNotFound || out["code"] != "job_not_found" {
		t.Errorf("unknown-node job = %d %v, want 404 job_not_found", resp.StatusCode, out)
	}
	// Malformed (no @) → 404 as well.
	if resp, _ := getJSON(t, tc.gwURL+"/v1/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("suffixless job id = %d, want 404", resp.StatusCode)
	}
}

// TestBatchScatterGather proves a batch whose circuits shard to
// different owners and checks the gathered results stay in request
// order with every proof present.
func TestBatchScatterGather(t *testing.T) {
	tc := newTestCluster(t, 2)
	reqs := []map[string]any{
		{"circuit": circuit.ExponentiateSource(16), "inputs": map[string]string{"x": "2"}},
		{"circuit": circuit.ExponentiateSource(32), "inputs": map[string]string{"x": "3"}},
		{"circuit": circuit.ExponentiateSource(16), "inputs": map[string]string{"x": "5"}},
	}
	// The retired {"requests"} alias is rejected at the gateway edge
	// before any scatter, matching the node-side envelope.
	resp, out := postJSON(t, tc.gwURL+"/v1/prove/batch", map[string]any{"requests": reqs})
	if resp.StatusCode != http.StatusBadRequest || out["code"] != "invalid_request" {
		t.Fatalf("alias batch = %d %v, want 400 invalid_request", resp.StatusCode, out)
	}

	resp, out = postJSON(t, tc.gwURL+"/v1/prove/batch", map[string]any{"items": reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch via gateway = %d (body %v)", resp.StatusCode, out)
	}
	results, _ := out["results"].([]any)
	if len(results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(results), len(reqs))
	}
	// 2^16=65536, 3^32, 5^16 — distinct publics prove order survived the
	// scatter/gather reassembly.
	wantY := []string{"65536", "1853020188851841", "152587890625"}
	for i, r := range results {
		item, _ := r.(map[string]any)
		if item["error"] != nil {
			t.Fatalf("batch item %d failed: %v", i, item["error"])
		}
		pub, _ := item["public"].([]any)
		if len(pub) != 1 || pub[0] != wantY[i] {
			t.Errorf("batch item %d public = %v, want [%s]", i, pub, wantY[i])
		}
	}
}

// TestVerifyBatchScatterGather proves on two circuits through the
// gateway, then verifies all the proofs in one /v1/verify/batch: items
// scatter to their shard owners, gather back in request order, and the
// per-item indices are rewritten from node-local to global positions.
func TestVerifyBatchScatterGather(t *testing.T) {
	tc := newTestCluster(t, 2)
	srcA := circuit.ExponentiateSource(16)
	srcB := circuit.ExponentiateSource(32)

	proofs := map[string]string{}
	for src, x := range map[string]string{srcA: "2", srcB: "3"} {
		resp, out := postJSON(t, tc.gwURL+"/v1/prove", map[string]any{
			"circuit": src, "inputs": map[string]string{"x": x},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prove via gateway = %d (body %v)", resp.StatusCode, out)
		}
		proofs[src], _ = out["proof"].(string)
	}

	items := []map[string]any{
		{"circuit": srcA, "proof": proofs[srcA], "public": []string{"65536"}},
		{"circuit": srcB, "proof": proofs[srcB], "public": []string{"1853020188851841"}},
		{"circuit": srcA, "proof": proofs[srcA], "public": []string{"999"}}, // wrong public
	}
	resp, out := postJSON(t, tc.gwURL+"/v1/verify/batch", map[string]any{"items": items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify/batch via gateway = %d (body %v)", resp.StatusCode, out)
	}
	results, _ := out["results"].([]any)
	if len(results) != len(items) {
		t.Fatalf("verify/batch returned %d results for %d items", len(results), len(items))
	}
	for i, wantValid := range []bool{true, true, false} {
		item, _ := results[i].(map[string]any)
		if item["error"] != nil {
			t.Fatalf("verify item %d failed: %v", i, item["error"])
		}
		if item["index"] != float64(i) {
			t.Errorf("verify item %d index = %v — node-local index leaked through the gather", i, item["index"])
		}
		if item["valid"] != wantValid {
			t.Errorf("verify item %d valid = %v, want %v", i, item["valid"], wantValid)
		}
	}

	// The same-circuit items (0 and 2) reached the shard owner as one
	// sub-batch and shared its fold.
	var batches, folded uint64
	for _, svc := range tc.svcs {
		st := svc.Stats().VerifyBatch
		batches += st.Batches
		folded += st.Proofs
	}
	if folded != 3 {
		t.Errorf("cluster folded %d proofs, want 3", folded)
	}
	if batches != 2 {
		t.Errorf("cluster ran %d verify batches for 2 circuits, want 2", batches)
	}

	// Unversioned paths answer the nodes' 410 contract at the gateway too.
	gresp, gout := postJSON(t, tc.gwURL+"/verify/batch", map[string]any{})
	if gresp.StatusCode != http.StatusGone || gout["code"] != "gone" {
		t.Errorf("legacy /verify/batch = %d %v, want 410 gone", gresp.StatusCode, gout)
	}
}

// TestGatewayMetricsAndHealth covers the observability surface: zkgw_*
// series appear in /v1/metrics and healthz flips to 503 only when every
// node is gone.
func TestGatewayMetricsAndHealth(t *testing.T) {
	tc := newTestCluster(t, 2)
	resp, err := http.Get(tc.gwURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, series := range []string{"zkgw_nodes", "zkgw_node_healthy", "zkgw_proxied_total", "zkgw_failovers_total"} {
		if !strings.Contains(text, series) {
			t.Errorf("/v1/metrics missing %s series", series)
		}
	}

	for _, ts := range tc.nodes {
		ts.Close()
	}
	tc.gw.probeAll()
	if n := tc.gw.healthyCount(); n != 0 {
		t.Fatalf("healthyCount = %d after all nodes died and a probe pass, want 0", n)
	}
	if resp, out := getJSON(t, tc.gwURL+"/v1/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with no nodes = %d %v, want 503", resp.StatusCode, out)
	}
	// With every node down, a prove sheds with no_healthy_node.
	resp2, out := postJSON(t, tc.gwURL+"/v1/prove", map[string]any{
		"circuit": circuit.ExponentiateSource(16), "inputs": map[string]string{"x": "3"},
	})
	if resp2.StatusCode != http.StatusServiceUnavailable || out["code"] != "no_healthy_node" {
		t.Errorf("prove with dead cluster = %d %v, want 503 no_healthy_node", resp2.StatusCode, out)
	}
	if out["retryable"] != true {
		t.Errorf("no_healthy_node should be retryable: %v", out)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := New(Config{Nodes: []NodeConfig{{Name: "a@b", URL: "http://x"}}}); err == nil {
		t.Error("node name with '@' accepted — would corrupt job IDs")
	}
	if _, err := New(Config{Nodes: []NodeConfig{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("duplicate node names accepted")
	}
}

func TestSplitJobID(t *testing.T) {
	cases := []struct {
		in           string
		remote, node string
		ok           bool
	}{
		{"j-abc123@n0", "j-abc123", "n0", true},
		{"weird@id@n1", "weird@id", "n1", true}, // last '@' wins
		{"noseparator", "", "", false},
		{"@n0", "", "", false},
		{"j-abc@", "", "", false},
	}
	for _, c := range cases {
		remote, node, ok := splitJobID(c.in)
		if ok != c.ok || (ok && (remote != c.remote || node != c.node)) {
			t.Errorf("splitJobID(%q) = %q,%q,%v want %q,%q,%v", c.in, remote, node, ok, c.remote, c.node, c.ok)
		}
	}
}
