package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"zkperf/internal/client"
	"zkperf/internal/telemetry"
)

// The gateway speaks the same /v1 wire API as a single zkserve node, so
// zkcli (and any other client) points at it unchanged:
//
//	POST   /v1/prove         routed by circuit shard, ring failover
//	POST   /v1/prove/batch   scatter-gathered across shard owners
//	POST   /v1/verify        routed by circuit shard
//	POST   /v1/verify/batch  scatter-gathered; same-shard items reach one
//	                         node as one sub-batch, so they share a fold
//	POST   /v1/jobs          routed; returned job IDs become "<id>@<node>"
//	GET    /v1/jobs/{id}     "<id>@<node>" → proxied to that node
//	DELETE /v1/jobs/{id}     likewise (cancel)
//	GET    /v1/stats         cluster rollup (gateway + per-node + aggregate)
//	GET    /v1/metrics       gateway registry (zkgw_* series)
//	GET    /v1/healthz       200 while ≥1 node is healthy
//
// Batch endpoints speak the unified convention: {"items":[…]} in,
// index-aligned {"results":[{"index",…}]} out; the retired
// {"requests":[…]} alias is rejected with code "invalid_request".
// Unversioned paths answer 410 with envelope code "gone", matching the
// nodes.
//
// Error envelopes from nodes pass through verbatim with their original
// status; gateway-originated failures use the same {code, message,
// retryable} shape with codes node_unreachable (502, one node down) and
// no_healthy_node (503, ring exhausted), both retryable.

// maxGatewayBody bounds request bodies the gateway will buffer before
// forwarding; matches the node-side default so the gateway never
// accepts what every node would refuse.
const maxGatewayBody = 4 << 20

// gwEnvelope mirrors the node error envelope on gateway-originated
// failures.
type gwEnvelope struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func gwWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// gwWriteError relays an error to the client. A *client.Error carries
// the upstream node's envelope (or a gateway-synthesized one) with its
// status and Retry-After; anything else is a 400 bad_request.
func gwWriteError(w http.ResponseWriter, err error) {
	if we, ok := err.(*client.Error); ok {
		status := we.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		if we.RetryAfter > 0 {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((we.RetryAfter+time.Second-1)/time.Second)))
		}
		gwWriteJSON(w, status, gwEnvelope{Code: we.Code, Message: we.Message, Retryable: we.Retryable})
		return
	}
	gwWriteJSON(w, http.StatusBadRequest, gwEnvelope{Code: "bad_request", Message: err.Error()})
}

// routeFields is the subset of a prove/verify/job body the gateway
// needs for sharding; unknown fields are preserved by forwarding the
// raw bytes, not this struct.
type routeFields struct {
	Curve   string `json:"curve"`
	Backend string `json:"backend"`
	Circuit string `json:"circuit"`
}

// Handler serves the gateway API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prove", g.handleRouted("/v1/prove"))
	mux.HandleFunc("POST /v1/verify", g.handleRouted("/v1/verify"))
	mux.HandleFunc("POST /v1/prove/batch", g.handleScatterBatch("/v1/prove/batch"))
	mux.HandleFunc("POST /v1/verify/batch", g.handleScatterBatch("/v1/verify/batch"))
	mux.HandleFunc("POST /v1/jobs", g.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobByID(http.MethodGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobByID(http.MethodDelete))
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	for _, path := range []string{"/prove", "/prove/batch", "/verify", "/verify/batch", "/jobs", "/stats", "/metrics", "/healthz"} {
		mux.HandleFunc(path, handleLegacyGone(path))
	}
	return gwRequestID(mux)
}

// gwRequestID stamps X-Request-Id exactly like a node does, so one ID
// follows a request through the gateway log and the node's access log.
func gwRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 64 {
			id = telemetry.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(telemetry.WithRequestID(r.Context(), id)))
	})
}

// readBody buffers the (bounded) request body and extracts the shard
// key fields from it.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, routeFields, error) {
	var rf routeFields
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGatewayBody))
	if err != nil {
		return nil, rf, fmt.Errorf("cluster: reading request body: %w", err)
	}
	if err := json.Unmarshal(buf, &rf); err != nil {
		return nil, rf, fmt.Errorf("cluster: bad request body: %w", err)
	}
	return buf, rf, nil
}

// handleRouted forwards a single-circuit request (prove or verify) to
// its shard owner, failing over along the ring.
func (g *Gateway) handleRouted(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		payload, rf, err := readBody(w, r)
		if err != nil {
			gwWriteError(w, err)
			return
		}
		_, _, data, err := g.forward(routeKey(rf.Curve, rf.Backend, rf.Circuit), path, payload, nil)
		if err != nil {
			gwWriteError(w, err)
			return
		}
		writeRaw(w, http.StatusOK, data)
	}
}

func writeRaw(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// handleJobSubmit routes an async submit like a prove, then rewrites
// the returned job ID to "<id>@<node>" so the gateway can route the
// poll and cancel statelessly — the ID itself names the owner. The
// Idempotency-Key header is forwarded, and the node's status is
// mirrored so a dedup hit stays a 200 through the gateway.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	payload, rf, err := readBody(w, r)
	if err != nil {
		gwWriteError(w, err)
		return
	}
	var header http.Header
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		header = http.Header{"Idempotency-Key": []string{key}}
	}
	n, status, data, err := g.forward(routeKey(rf.Curve, rf.Backend, rf.Circuit), "/v1/jobs", payload, header)
	if err != nil {
		gwWriteError(w, err)
		return
	}
	rewritten, err := rewriteJobID(data, n.name)
	if err != nil {
		gwWriteError(w, &client.Error{
			Code:      "internal_error",
			Message:   fmt.Sprintf("cluster: undecodable job reply from %s: %v", n.name, err),
			Status:    http.StatusBadGateway,
			Retryable: true,
		})
		return
	}
	g.jobsRouted.Add(1)
	if status < 200 || status > 299 {
		status = http.StatusAccepted
	}
	writeRaw(w, status, rewritten)
}

// rewriteJobID suffixes the node name onto the "id" field of a job
// reply, preserving every other field verbatim.
func rewriteJobID(data []byte, nodeName string) ([]byte, error) {
	var rep map[string]json.RawMessage
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	var id string
	if err := json.Unmarshal(rep["id"], &id); err != nil {
		return nil, fmt.Errorf("missing job id: %w", err)
	}
	idRaw, err := json.Marshal(id + "@" + nodeName)
	if err != nil {
		return nil, err
	}
	rep["id"] = idRaw
	return json.Marshal(rep)
}

// handleJobByID proxies a job poll or cancel to the node named in the
// "<id>@<node>" gateway job ID.
func (g *Gateway) handleJobByID(method string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		gwID := r.PathValue("id")
		remote, nodeName, ok := splitJobID(gwID)
		if !ok {
			gwWriteError(w, &client.Error{
				Code:    "job_not_found",
				Message: fmt.Sprintf("cluster: job id %q is not of the form <id>@<node>", gwID),
				Status:  http.StatusNotFound,
			})
			return
		}
		n := g.byName[nodeName]
		if n == nil {
			gwWriteError(w, &client.Error{
				Code:    "job_not_found",
				Message: fmt.Sprintf("cluster: job %q names unknown node %q", gwID, nodeName),
				Status:  http.StatusNotFound,
			})
			return
		}
		data, err := n.cl.Do(method, "/v1/jobs/"+remote, nil)
		if err != nil {
			if we, ok := err.(*client.Error); ok {
				// Node answered: its verdict (404 after TTL, envelope on a
				// failed cancel…) passes through.
				gwWriteError(w, we)
				return
			}
			n.markFailure(g.cfg.FailThreshold, err)
			gwWriteError(w, &client.Error{
				Code:      "node_unreachable",
				Message:   fmt.Sprintf("cluster: node %s: %v", nodeName, err),
				Status:    http.StatusBadGateway,
				Retryable: true,
			})
			return
		}
		n.markSuccess()
		rewritten, rwErr := rewriteJobID(data, nodeName)
		if rwErr != nil {
			rewritten = data // degrade to the raw reply rather than failing the poll
		}
		// Re-derive the node's poll pacing hint: a still-live job tells the
		// poller to come back in about a second, matching the node's own
		// Retry-After behavior.
		var st struct {
			State string `json:"state"`
		}
		if method == http.MethodGet && json.Unmarshal(data, &st) == nil &&
			st.State != "done" && st.State != "failed" {
			w.Header().Set("Retry-After", "1")
		}
		writeRaw(w, http.StatusOK, rewritten)
	}
}

// handleScatterBatch splits a unified {"items":[…]} batch across shard
// owners, runs each group's sub-batch concurrently on its node (with
// ring failover), and stitches the results back in request order — so
// same-circuit verify items land on one node and share its folded
// pairing check. A group whose ring walk is exhausted yields per-item
// error envelopes instead of failing the whole batch. Node-local result
// indices are rewritten to the caller's global positions.
func (g *Gateway) handleScatterBatch(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxGatewayBody)
		var body struct {
			Items []json.RawMessage `json:"items"`
			// The deprecated "requests" alias finished its one-release
			// grace period; its presence is rejected, matching the nodes.
			Requests json.RawMessage `json:"requests"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			gwWriteError(w, fmt.Errorf("cluster: bad request body: %w", err))
			return
		}
		if body.Requests != nil {
			gwWriteError(w, &client.Error{
				Code:      "invalid_request",
				Message:   `cluster: the deprecated "requests" batch field was removed; send {"items":[…]}`,
				Status:    http.StatusBadRequest,
				Retryable: false,
			})
			return
		}
		list := body.Items
		type group struct {
			key     uint64
			indices []int
			items   []json.RawMessage
		}
		// Group items by shard owner so each node sees one sub-batch and its
		// own batch executor (or verify fold) schedules within it.
		groups := map[string]*group{}
		for i, raw := range list {
			var rf routeFields
			if err := json.Unmarshal(raw, &rf); err != nil {
				gwWriteError(w, fmt.Errorf("cluster: bad request %d in batch: %w", i, err))
				return
			}
			key := routeKey(rf.Curve, rf.Backend, rf.Circuit)
			owner := "-"
			if cands := g.candidates(key); len(cands) > 0 {
				owner = cands[0].name
			}
			gr := groups[owner]
			if gr == nil {
				gr = &group{key: key}
				groups[owner] = gr
			}
			gr.indices = append(gr.indices, i)
			gr.items = append(gr.items, raw)
		}

		results := make([]json.RawMessage, len(list))
		var wg sync.WaitGroup
		for _, gr := range groups {
			gr := gr
			wg.Add(1)
			go func() {
				defer wg.Done()
				sub, _ := client.MarshalBatch(gr.items)
				_, _, data, err := g.forward(gr.key, path, sub, nil)
				if err != nil {
					env := gwEnvelope{Code: "no_healthy_node", Message: err.Error(), Retryable: true}
					if we, ok := err.(*client.Error); ok {
						env = gwEnvelope{Code: we.Code, Message: we.Message, Retryable: we.Retryable}
					}
					for _, idx := range gr.indices {
						item, _ := json.Marshal(map[string]any{"index": idx, "error": env})
						results[idx] = item
					}
					return
				}
				rep, err := client.SplitBatchResults(data, len(gr.indices))
				if err != nil {
					for _, idx := range gr.indices {
						item, _ := json.Marshal(map[string]any{"index": idx, "error": gwEnvelope{
							Code:      "internal_error",
							Message:   "cluster: " + err.Error(),
							Retryable: true,
						}})
						results[idx] = item
					}
					return
				}
				for k, idx := range gr.indices {
					results[idx] = rewriteIndex(rep[k], idx)
				}
			}()
		}
		wg.Wait()
		gwWriteJSON(w, http.StatusOK, map[string]any{"results": results})
	}
}

// rewriteIndex replaces a sub-batch result's node-local index with the
// item's position in the caller's batch, preserving every other field.
// An undecodable item passes through untouched — better a wrong index
// than a dropped result.
func rewriteIndex(raw json.RawMessage, idx int) json.RawMessage {
	var item map[string]json.RawMessage
	if err := json.Unmarshal(raw, &item); err != nil {
		return raw
	}
	item["index"], _ = json.Marshal(idx)
	out, err := json.Marshal(item)
	if err != nil {
		return raw
	}
	return out
}

// handleLegacyGone answers an unversioned path with the same 410
// envelope the nodes emit, so clients migrating through a gateway see
// one consistent contract.
func handleLegacyGone(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		gwWriteJSON(w, http.StatusGone, gwEnvelope{
			Code:    "gone",
			Message: fmt.Sprintf("cluster: unversioned path %s was removed; use /v1%s", path, path),
		})
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	gwWriteJSON(w, http.StatusOK, g.Stats())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := g.tel.Registry()
	if reg == nil {
		gwWriteJSON(w, http.StatusNotFound, gwEnvelope{
			Code:    "not_found",
			Message: "telemetry disabled",
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WriteText(w)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.healthyCount() == 0 {
		gwWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no_healthy_node"})
		return
	}
	gwWriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
