// Package jobs is the async job subsystem behind POST /v1/jobs: a
// bounded registry of fire-and-poll work items so clients stop holding
// connections through multi-second proves. The serving layer submits a
// closure per job; the manager runs it on a dispatcher pool detached
// from the submitting request, tracks the queued → running → done/failed
// lifecycle, retains results for a configurable TTL, and evicts expired
// jobs with a background sweeper.
//
// The package is deliberately generic — it knows nothing about proving.
// provesvc wraps prove/verify calls in RunFuncs and renders results and
// errors into its own wire shapes; zkgateway proxies the same job IDs
// across nodes. That keeps the lifecycle state machine testable in
// isolation and reusable for any future long-running request type.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is one phase of the job lifecycle. Transitions only move
// forward: queued → running → done|failed, or queued → failed (canceled
// or dropped before dispatch).
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

var (
	// ErrTooManyJobs is returned by Submit when the active (queued +
	// running) job count is at the configured cap; the HTTP layer maps it
	// to 429 with a Retry-After.
	ErrTooManyJobs = errors.New("jobs: too many active jobs")
	// ErrDraining is returned by Submit after Shutdown began.
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound is returned for job IDs that never existed or whose
	// results were already evicted by the TTL sweeper.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrCanceled is the failure recorded on jobs canceled before their
	// RunFunc ever started (mid-run cancellations surface the RunFunc's
	// own context error instead).
	ErrCanceled = fmt.Errorf("jobs: canceled: %w", context.Canceled)
	// ErrDropped is the failure recorded on jobs still queued when
	// Shutdown ran.
	ErrDropped = errors.New("jobs: dropped during shutdown")
)

// RunFunc executes one job. ctx is canceled by DELETE /v1/jobs/{id} and
// by manager shutdown — implementations must honor it (the proving
// kernels already do). Calling started() marks the moment real work
// begins (e.g. a service worker picked the job up), flipping the job
// from queued to running; a RunFunc that never calls it leaves the job
// reported queued until it finishes. The returned value is retained as
// the job's result until TTL eviction.
type RunFunc func(ctx context.Context, started func()) (any, error)

// Job is one tracked work item. All state transitions happen under mu;
// Done is closed exactly once when the job reaches a terminal state.
type Job struct {
	id      string
	kind    string // request class for stats/rendering: "prove", "verify", …
	created time.Time
	ctx     context.Context // what the RunFunc observes
	cancel  context.CancelFunc
	run     RunFunc // cleared at dispatch

	// idemKey and payload ride along for the journal: the dedup key the
	// submit carried and the serialized request replay re-arms from.
	idemKey string
	payload []byte

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   any
	err      error
	done     chan struct{}
	// pendingReplay marks a journaled job restored in queued state that
	// has no RunFunc yet; Resume attaches one and enqueues it.
	pendingReplay bool
}

// ID returns the job's identifier (16 hex chars, minted at submit).
func (j *Job) ID() string { return j.id }

// Kind returns the request class the job was submitted under.
func (j *Job) Kind() string { return j.kind }

// Created returns the submit time.
func (j *Job) Created() time.Time { return j.created }

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal outcome: the RunFunc's value on done, its
// error on failed. Both are zero while the job is still live.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Timing reports the queue wait and run duration observed so far (run
// is measured to now while running).
func (j *Job) Timing() (wait, run time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		return time.Since(j.created), 0
	case j.started.IsZero():
		// Finished without ever starting (canceled/dropped while queued).
		return j.finished.Sub(j.created), 0
	case j.state == StateRunning:
		return j.started.Sub(j.created), time.Since(j.started)
	default:
		return j.started.Sub(j.created), j.finished.Sub(j.started)
	}
}

// markStarted flips queued → running, reporting whether this call did
// the transition (idempotent; a no-op once terminal).
func (j *Job) markStarted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finalize moves the job to its terminal state exactly once and reports
// whether this call did the transition.
func (j *Job) finalize(result any, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return false
	}
	j.finished = time.Now()
	if err != nil {
		j.state, j.err = StateFailed, err
	} else {
		j.state, j.result = StateDone, result
	}
	j.cancel() // release the context subtree either way
	close(j.done)
	return true
}

// Config sizes a Manager; zero values pick the documented defaults.
type Config struct {
	// TTL is how long done/failed jobs are retained for polling before
	// the sweeper evicts them (default 5 minutes).
	TTL time.Duration
	// SweepEvery is the sweeper cadence (default TTL/4, clamped to
	// [50ms, 10s]).
	SweepEvery time.Duration
	// MaxActive caps queued+running jobs; Submit sheds with
	// ErrTooManyJobs beyond it (default 1024). Retained results do not
	// count — memory there is bounded by TTL instead.
	MaxActive int
	// Parallel is how many RunFuncs execute concurrently (default 16).
	// For provesvc this is sized against the service's worker pool and
	// queue so dispatched jobs never overflow the sync queue.
	Parallel int
	// Journal, when set, makes the manager durable: every lifecycle
	// transition is appended to the WAL, sweeps compact it, and New
	// replays it — finished jobs come back retained (pollable until TTL)
	// and queued/running-at-crash jobs come back as pending replays the
	// owner re-arms via PendingReplays + Resume. The manager owns the
	// journal from here on and closes it at Shutdown.
	Journal *Journal
	// ErrorClass classifies a failed job's error (HTTP status, stable
	// code, retryability) for the journal's failed records, so a replayed
	// failure renders the same envelope after a restart. Nil picks a
	// generic internal classification.
	ErrorClass func(err error) (status int, code string, retryable bool)
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 5 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.TTL / 4
		if c.SweepEvery < 50*time.Millisecond {
			c.SweepEvery = 50 * time.Millisecond
		}
		if c.SweepEvery > 10*time.Second {
			c.SweepEvery = 10 * time.Second
		}
	}
	if c.MaxActive < 1 {
		c.MaxActive = 1024
	}
	if c.Parallel < 1 {
		c.Parallel = 16
	}
	return c
}

// Manager owns the job registry, the dispatcher pool and the TTL
// sweeper. Create with New, call Start, submit via Submit, and stop with
// Shutdown.
type Manager struct {
	cfg Config

	baseCtx   context.Context // parent of every job context
	cancelAll context.CancelFunc
	stop      chan struct{} // closed by Shutdown: dispatchers + sweeper exit

	mu       sync.Mutex
	jobs     map[string]*Job
	idem     map[string]*Job // idempotency key → job, while the job lives
	pending  []PendingReplay // journaled jobs awaiting Resume
	active   int             // queued + running
	draining bool

	// queue is buffered to MaxActive plus the replayed-pending count, so
	// sends under mu never block.
	queue chan *Job

	loopWG sync.WaitGroup // dispatchers + sweeper

	submitted  atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	canceled   atomic.Uint64 // cancels requested via Cancel
	evicted    atomic.Uint64
	rejected   atomic.Uint64 // MaxActive sheds
	replayed   atomic.Uint64 // jobs restored from the journal
	reexecuted atomic.Uint64 // replayed jobs re-enqueued via Resume
	dedupHits  atomic.Uint64 // submissions answered by Idempotency-Key
}

// New creates a manager; call Start before submitting. With a journal
// configured, New replays it: finished jobs are restored retained, and
// jobs that were queued or running when the previous process died are
// restored queued, awaiting Resume (see PendingReplays).
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		baseCtx:   ctx,
		cancelAll: cancel,
		stop:      make(chan struct{}),
		jobs:      make(map[string]*Job),
		idem:      make(map[string]*Job),
	}
	npending := 0
	if cfg.Journal != nil {
		npending = m.replayJournal()
	}
	m.queue = make(chan *Job, cfg.MaxActive+npending)
	return m
}

// replayJournal merges the WAL into the registry and returns how many
// jobs await Resume. An unreadable journal file is not fatal — the
// manager starts empty and further appends are dropped (counted).
func (m *Manager) replayJournal() int {
	recs, err := m.cfg.Journal.replay()
	if err != nil {
		m.cfg.Journal.appendErrs.Add(1)
		return 0
	}
	now := time.Now()
	npending := 0
	for _, rj := range recs {
		if rj.State == StateDone || rj.State == StateFailed {
			// Results whose TTL ran out while the process was down are
			// gone, same as if the sweeper had evicted them.
			if now.Sub(rj.Finished) >= m.cfg.TTL {
				continue
			}
			done := make(chan struct{})
			close(done)
			j := &Job{
				id:       rj.ID,
				kind:     rj.Kind,
				created:  rj.Created,
				cancel:   func() {},
				idemKey:  rj.Key,
				payload:  rj.Payload,
				state:    rj.State,
				started:  rj.Started,
				finished: rj.Finished,
				done:     done,
			}
			if rj.State == StateDone {
				j.result = rj.Result
			} else {
				j.err = rj.Err
			}
			m.jobs[j.id] = j
			if j.idemKey != "" {
				m.idem[j.idemKey] = j
			}
			m.replayed.Add(1)
			continue
		}
		// Queued or running at crash: restore queued and wait for the
		// owner to rebuild the RunFunc from the journaled request.
		jctx, cancel := context.WithCancel(m.baseCtx)
		j := &Job{
			id:            rj.ID,
			kind:          rj.Kind,
			created:       rj.Created,
			ctx:           jctx,
			cancel:        cancel,
			idemKey:       rj.Key,
			payload:       rj.Payload,
			state:         StateQueued,
			done:          make(chan struct{}),
			pendingReplay: true,
		}
		m.jobs[j.id] = j
		if j.idemKey != "" {
			m.idem[j.idemKey] = j
		}
		m.active++
		m.pending = append(m.pending, PendingReplay{
			ID:             rj.ID,
			Kind:           rj.Kind,
			IdempotencyKey: rj.Key,
			Payload:        rj.Payload,
			Created:        rj.Created,
		})
		m.replayed.Add(1)
		npending++
	}
	return npending
}

// PendingReplay describes one journaled job that was queued or running
// when the previous process died: the serialized request the owner needs
// to rebuild its RunFunc and Resume it.
type PendingReplay struct {
	ID             string
	Kind           string
	IdempotencyKey string
	Payload        []byte
	Created        time.Time
}

// PendingReplays lists the replayed jobs awaiting Resume. Until resumed
// they poll as queued; a pending job can still be cancelled, after which
// Resume skips it.
func (m *Manager) PendingReplays() []PendingReplay {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]PendingReplay(nil), m.pending...)
}

// Resume attaches a RunFunc to a pending replayed job and queues it for
// re-execution. Jobs cancelled (or otherwise finalized) since replay are
// skipped without error; unknown IDs return ErrNotFound.
func (m *Manager) Resume(id string, run RunFunc) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	j.mu.Lock()
	ok := j.pendingReplay && j.state == StateQueued
	if ok {
		j.pendingReplay = false
		j.run = run
	}
	j.mu.Unlock()
	if !ok {
		return nil
	}
	m.queue <- j
	m.reexecuted.Add(1)
	return nil
}

// Start launches the dispatcher pool and the TTL sweeper.
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Parallel; i++ {
		m.loopWG.Add(1)
		go m.dispatcher()
	}
	m.loopWG.Add(1)
	go m.sweeper()
}

// TTL returns the configured retention period for finished jobs.
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Submit registers a job and queues it for execution, returning
// immediately. kind labels the job for stats and rendering. The run
// closure receives a context detached from the submitting request —
// canceled only by Cancel or Shutdown.
func (m *Manager) Submit(kind string, run RunFunc) (*Job, error) {
	j, _, err := m.SubmitWith(SubmitOptions{Kind: kind}, run)
	return j, err
}

// SubmitOptions carries the durability extras of a submission beyond
// Submit's kind.
type SubmitOptions struct {
	// Kind labels the job for stats and rendering ("prove", "verify", …).
	Kind string
	// IdempotencyKey, when non-empty, dedupes submissions: a second
	// submit with a key already held by a live or retained job returns
	// that job instead of creating one. Keys are journaled, so dedup
	// survives a crash; they are forgotten when the job is evicted.
	IdempotencyKey string
	// Payload is the serialized request, stored in the journal's
	// accepted record and handed back via PendingReplays after a crash.
	Payload []byte
}

// SubmitWith is Submit plus idempotent-submission and journaling
// support; deduped reports whether an existing job was returned for
// opts.IdempotencyKey instead of a new one.
func (m *Manager) SubmitWith(opts SubmitOptions, run RunFunc) (j *Job, deduped bool, err error) {
	jctx, cancel := context.WithCancel(m.baseCtx)
	j = &Job{
		id:      newID(),
		kind:    opts.Kind,
		created: time.Now(),
		ctx:     jctx,
		cancel:  cancel,
		run:     run,
		idemKey: opts.IdempotencyKey,
		payload: opts.Payload,
		state:   StateQueued,
		done:    make(chan struct{}),
	}

	m.mu.Lock()
	if j.idemKey != "" {
		if prev := m.idem[j.idemKey]; prev != nil {
			m.dedupHits.Add(1)
			m.mu.Unlock()
			cancel()
			return prev, true, nil
		}
	}
	if m.draining {
		m.mu.Unlock()
		cancel()
		return nil, false, ErrDraining
	}
	if m.active >= m.cfg.MaxActive {
		m.rejected.Add(1)
		m.mu.Unlock()
		cancel()
		return nil, false, ErrTooManyJobs
	}
	m.active++
	m.jobs[j.id] = j
	if j.idemKey != "" {
		m.idem[j.idemKey] = j
	}
	m.submitted.Add(1)
	// The queue is buffered to at least MaxActive and active is counted
	// under this same lock, so the send cannot block.
	m.queue <- j
	m.mu.Unlock()
	// The accepted record is appended (and fsynced) before Submit
	// returns, so a job is on disk before any 202 reaches the client.
	// Outside m.mu — see the lock-order note on Journal.
	m.journalAccepted(j)
	return j, false, nil
}

// Get returns the job for id, or ErrNotFound if it never existed or was
// already evicted.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of a job. A still-queued job fails
// immediately with ErrCanceled; a running one has its context canceled
// and finalizes when its RunFunc returns (the proving kernels abort at
// the next chunk boundary). Terminal jobs are returned unchanged, so
// DELETE is idempotent.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.cancel()
	if j.finalize(nil, ErrCanceled) {
		// Canceled before the RunFunc started; the dispatcher will skip it.
		m.canceled.Add(1)
		m.failed.Add(1)
		m.release()
		m.journalFinished(j, nil, ErrCanceled)
	} else if j.State() == StateRunning {
		m.canceled.Add(1)
	}
	return j, nil
}

// release gives back one active slot.
func (m *Manager) release() {
	m.mu.Lock()
	m.active--
	m.mu.Unlock()
}

func (m *Manager) dispatcher() {
	defer m.loopWG.Done()
	for {
		select {
		case <-m.stop:
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job's RunFunc and finalizes it. Jobs already
// terminal (canceled while queued) are skipped — their slot was released
// by Cancel.
func (m *Manager) runJob(j *Job) {
	select {
	case <-j.done:
		j.run = nil
		return
	default:
	}
	run := j.run
	j.run = nil
	res, err := run(j.ctx, func() {
		if j.markStarted() {
			m.journalStarted(j)
		}
	})
	if j.finalize(res, err) {
		if err != nil {
			m.failed.Add(1)
		} else {
			m.completed.Add(1)
		}
		m.release()
		m.journalFinished(j, res, err)
	}
}

func (m *Manager) sweeper() {
	defer m.loopWG.Done()
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.sweep(time.Now())
			m.maybeCompact()
		}
	}
}

// sweep evicts finished jobs whose TTL expired, forgetting their
// idempotency keys with them.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed
		expired := terminal && now.Sub(j.finished) >= m.cfg.TTL
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			if j.idemKey != "" && m.idem[j.idemKey] == j {
				delete(m.idem, j.idemKey)
			}
			m.evicted.Add(1)
		}
	}
}

// maybeCompact rewrites the journal down to the live jobs once evictions
// have left enough dead records behind. Runs on the sweeper goroutine.
func (m *Manager) maybeCompact() {
	jl := m.cfg.Journal
	if jl == nil {
		return
	}
	m.mu.Lock()
	live := len(m.jobs)
	m.mu.Unlock()
	if !jl.needsCompact(live) {
		return
	}
	jl.compact(m.liveWALRecords)
}

// liveWALRecords snapshots the registry as WAL records — an accepted
// record per job plus its latest transition — for compaction. Called by
// Journal.compact under the journal lock (Journal.mu → Manager.mu is the
// one permitted nesting).
func (m *Manager) liveWALRecords() []walRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := make([]walRecord, 0, 2*len(m.jobs))
	for _, j := range m.jobs {
		j.mu.Lock()
		recs = append(recs, walRecord{
			Op: opAccepted, ID: j.id, Kind: j.kind,
			At: j.created.UnixNano(), Key: j.idemKey, Req: j.payload,
		})
		switch j.state {
		case StateRunning:
			recs = append(recs, walRecord{Op: opStarted, ID: j.id, At: j.started.UnixNano()})
		case StateDone:
			data, err := json.Marshal(j.result)
			if err != nil {
				data = nil
			}
			recs = append(recs, walRecord{Op: opDone, ID: j.id, At: j.finished.UnixNano(), Res: data})
		case StateFailed:
			recs = append(recs, m.failedRecord(j.id, j.finished, j.err))
		}
		j.mu.Unlock()
	}
	return recs
}

// journalAccepted records a freshly-submitted job. Called outside
// Manager.mu — see the lock-order note on Journal.
func (m *Manager) journalAccepted(j *Job) {
	jl := m.cfg.Journal
	if jl == nil {
		return
	}
	jl.append(walRecord{
		Op: opAccepted, ID: j.id, Kind: j.kind,
		At: j.created.UnixNano(), Key: j.idemKey, Req: j.payload,
	})
}

// journalStarted records the queued → running transition.
func (m *Manager) journalStarted(j *Job) {
	jl := m.cfg.Journal
	if jl == nil {
		return
	}
	j.mu.Lock()
	at := j.started.UnixNano()
	j.mu.Unlock()
	jl.append(walRecord{Op: opStarted, ID: j.id, At: at})
}

// journalFinished records a terminal transition: done with the marshaled
// result, or failed/cancelled with the classified error envelope.
func (m *Manager) journalFinished(j *Job, res any, err error) {
	jl := m.cfg.Journal
	if jl == nil {
		return
	}
	j.mu.Lock()
	at := j.finished
	j.mu.Unlock()
	if err == nil {
		data, merr := json.Marshal(res)
		if merr != nil {
			data = nil
		}
		jl.append(walRecord{Op: opDone, ID: j.id, At: at.UnixNano(), Res: data})
		return
	}
	jl.append(m.failedRecord(j.id, at, err))
}

// failedRecord builds the failed/cancelled WAL record for err, carrying
// the classified envelope so the failure renders identically after a
// restart.
func (m *Manager) failedRecord(id string, at time.Time, err error) walRecord {
	op := opFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrCanceled) {
		op = opCancelled
	}
	status, code, retryable := m.classify(err)
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	return walRecord{
		Op: op, ID: id, At: at.UnixNano(),
		ErrCode: code, ErrMsg: msg, ErrStatus: status, ErrRetryable: retryable,
	}
}

// classify maps a job error to its wire envelope, via Config.ErrorClass
// when set. Already-replayed errors keep their original classification.
func (m *Manager) classify(err error) (status int, code string, retryable bool) {
	var rep *ReplayedError
	if errors.As(err, &rep) {
		return rep.Status, rep.Code, rep.Retryable
	}
	if m.cfg.ErrorClass != nil {
		return m.cfg.ErrorClass(err)
	}
	switch {
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return 408, "canceled", false
	case errors.Is(err, ErrDropped):
		return 503, "dropped", true
	default:
		return 500, "internal_error", false
	}
}

// Stats is the `jobs` block of /v1/stats.
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retained int `json:"retained"` // done+failed awaiting TTL eviction

	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Evicted   uint64 `json:"evicted"`
	Rejected  uint64 `json:"rejected"`

	OldestQueuedMs   float64 `json:"oldest_queued_ms"`
	OldestRetainedMs float64 `json:"oldest_retained_ms"`
	TTLMs            float64 `json:"ttl_ms"`
	MaxActive        int     `json:"max_active"`

	Journal JournalStats `json:"journal"`
}

// journalStats assembles the durability block. Takes Journal.mu, so it
// must run before — never while — Manager.mu is held.
func (m *Manager) journalStats() JournalStats {
	jl := m.cfg.Journal
	if jl == nil {
		return JournalStats{}
	}
	st := JournalStats{
		Enabled:       true,
		Path:          jl.path,
		Replayed:      m.replayed.Load(),
		Reexecuted:    m.reexecuted.Load(),
		DedupHits:     m.dedupHits.Load(),
		Compactions:   jl.compactions.Load(),
		TornRecords:   jl.torn.Load(),
		AppendErrors:  jl.appendErrs.Load(),
		CompactErrors: jl.compactErrs.Load(),
	}
	jl.mu.Lock()
	st.Records = jl.records
	st.SizeBytes = jl.off
	jl.mu.Unlock()
	return st
}

// Snapshot counts jobs by state and ages for /v1/stats and the metrics
// gauges. O(jobs) under the lock — fine at MaxActive + retained scale.
func (m *Manager) Snapshot() Stats {
	now := time.Now()
	st := Stats{
		Submitted: m.submitted.Load(),
		Completed: m.completed.Load(),
		Failed:    m.failed.Load(),
		Canceled:  m.canceled.Load(),
		Evicted:   m.evicted.Load(),
		Rejected:  m.rejected.Load(),
		TTLMs:     float64(m.cfg.TTL) / 1e6,
		MaxActive: m.cfg.MaxActive,
		Journal:   m.journalStats(), // before m.mu — journalStats takes Journal.mu
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			st.Queued++
			if age := float64(now.Sub(j.created)) / 1e6; age > st.OldestQueuedMs {
				st.OldestQueuedMs = age
			}
		case StateRunning:
			st.Running++
		default:
			st.Retained++
			if age := float64(now.Sub(j.finished)) / 1e6; age > st.OldestRetainedMs {
				st.OldestRetainedMs = age
			}
		}
		j.mu.Unlock()
	}
	return st
}

// Drain stops intake: subsequent Submits fail with ErrDraining. Safe to
// call more than once.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Shutdown drains the manager: intake stops, still-queued jobs fail with
// ErrDropped, running jobs get until ctx expires before their contexts
// are canceled. Dispatchers and the sweeper exit before it returns.
func (m *Manager) Shutdown(ctx context.Context) {
	m.Drain()
	// Fail everything still queued; dispatchers racing us will see the
	// terminal state and skip. Dropped jobs are journaled terminal —
	// graceful shutdown is a decision, not a crash, so they do not
	// re-execute on the next boot.
	for {
		select {
		case j := <-m.queue:
			if j.finalize(nil, ErrDropped) {
				m.failed.Add(1)
				m.release()
				m.journalFinished(j, nil, ErrDropped)
			}
		default:
			goto drained
		}
	}
drained:
	// Running jobs (plus any a dispatcher raced off the queue before the
	// drain) get until ctx expires, then their contexts are canceled and
	// the RunFuncs abort at the next ctx check. Polling the active count
	// keeps the dispatcher hot path free of shutdown bookkeeping.
	expired := false
	for {
		m.mu.Lock()
		n := m.active
		m.mu.Unlock()
		if n == 0 || expired {
			break
		}
		select {
		case <-ctx.Done():
			expired = true
			m.cancelAll()
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.cancelAll()
	close(m.stop)
	m.loopWG.Wait() // busy dispatchers finish their (now canceled) RunFunc first
	if jl := m.cfg.Journal; jl != nil {
		jl.Close()
	}
}

// newID mints a 16-hex-char job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xfffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}
