package jobs

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zkperf/internal/faultinject"
)

// newJournal opens a journal over a fresh temp dir.
func newJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

// TestJournalRestartRetainsFinished: a finished job's result survives a
// clean restart — the new manager serves it from the journal, same ID,
// same payload, until TTL.
func TestJournalRestartRetainsFinished(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Journal: newJournal(t, dir)})
	m1.Start()
	j, _, err := m1.SubmitWith(SubmitOptions{Kind: "prove", Payload: []byte(`{"x":1}`)},
		func(ctx context.Context, started func()) (any, error) {
			started()
			return map[string]int{"answer": 42}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	m2 := newTestManager(t, Config{Journal: newJournal(t, dir)})
	got, err := m2.Get(j.ID())
	if err != nil {
		t.Fatalf("replayed job not found: %v", err)
	}
	if got.State() != StateDone || got.Kind() != "prove" {
		t.Fatalf("replayed job = %s/%s, want done/prove", got.State(), got.Kind())
	}
	res, _ := got.Result()
	data, _ := json.Marshal(res)
	if string(data) != `{"answer":42}` {
		t.Fatalf("replayed result = %s, want {\"answer\":42}", data)
	}
	if st := m2.Snapshot(); st.Journal.Replayed != 1 || st.Journal.Reexecuted != 0 {
		t.Fatalf("journal stats = %+v, want replayed=1 reexecuted=0", st.Journal)
	}
}

// TestJournalRestartReplaysFailedEnvelope: a failed job replays with its
// classified envelope intact (code/status/retryability cross the
// restart as a ReplayedError).
func TestJournalRestartReplaysFailedEnvelope(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("kaboom")
	m1 := New(Config{
		Journal: newJournal(t, dir),
		ErrorClass: func(err error) (int, string, bool) {
			if errors.Is(err, boom) {
				return 502, "kaboom_code", true
			}
			return 500, "internal_error", false
		},
	})
	m1.Start()
	j, err := m1.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	m2 := newTestManager(t, Config{Journal: newJournal(t, dir)})
	got, err := m2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := got.Result()
	var rep *ReplayedError
	if !errors.As(jerr, &rep) {
		t.Fatalf("replayed err = %v (%T), want *ReplayedError", jerr, jerr)
	}
	if rep.Code != "kaboom_code" || rep.Status != 502 || !rep.Retryable || rep.Message != "kaboom" {
		t.Fatalf("replayed envelope = %+v, want kaboom_code/502/retryable/kaboom", rep)
	}
}

// TestJournalCrashReplaysPending: jobs queued when the process dies
// (manager constructed, never started — the WAL holds accepted records
// with no terminal) come back as pending replays, and Resume re-executes
// them under their original IDs.
func TestJournalCrashReplaysPending(t *testing.T) {
	dir := t.TempDir()
	jl1 := newJournal(t, dir)
	m1 := New(Config{Journal: jl1})
	// Deliberately no Start(): submits stay queued, as if the process was
	// killed before any dispatcher ran them.
	j, _, err := m1.SubmitWith(SubmitOptions{Kind: "prove", Payload: []byte(`{"req":"original"}`)},
		func(ctx context.Context, started func()) (any, error) {
			t.Error("pre-crash RunFunc must not run after replay")
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	jl1.Close() // simulate the crash ending all writes

	m2 := newTestManager(t, Config{Journal: newJournal(t, dir)})
	pend := m2.PendingReplays()
	if len(pend) != 1 || pend[0].ID != j.ID() || pend[0].Kind != "prove" {
		t.Fatalf("pending = %+v, want the crashed job", pend)
	}
	if string(pend[0].Payload) != `{"req":"original"}` {
		t.Fatalf("payload = %s, want the journaled request", pend[0].Payload)
	}
	// Until resumed the job polls as queued under its old ID.
	got, err := m2.Get(j.ID())
	if err != nil || got.State() != StateQueued {
		t.Fatalf("pre-resume Get = (%v, %v), want queued", got, err)
	}
	if err := m2.Resume(j.ID(), func(ctx context.Context, started func()) (any, error) {
		started()
		return "re-executed", nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replayed job completion", func() bool {
		return got.State() == StateDone
	})
	if res, _ := got.Result(); res != "re-executed" {
		t.Fatalf("result = %v, want re-executed", res)
	}
	if st := m2.Snapshot(); st.Journal.Replayed != 1 || st.Journal.Reexecuted != 1 {
		t.Fatalf("journal stats = %+v, want replayed=1 reexecuted=1", st.Journal)
	}
	if err := m2.Resume("nosuchjob", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resume(unknown) = %v, want ErrNotFound", err)
	}
}

// TestJournalTornTailRecovers: a half-written final record (the kill -9
// window) is truncated and quarantined; intact earlier records survive.
func TestJournalTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Journal: newJournal(t, dir)})
	m1.Start()
	j, err := m1.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	// Tear the tail: a header promising 512 payload bytes, then only 4.
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 512)
	f.Write(hdr[:])
	f.Write([]byte("torn"))
	f.Close()
	pre, _ := os.Stat(path)

	jl2 := newJournal(t, dir)
	m2 := newTestManager(t, Config{Journal: jl2})
	if got, err := m2.Get(j.ID()); err != nil || got.State() != StateDone {
		t.Fatalf("intact records must survive the torn tail: (%v, %v)", got, err)
	}
	st := m2.Snapshot()
	if st.Journal.TornRecords != 1 {
		t.Fatalf("torn_records = %d, want 1", st.Journal.TornRecords)
	}
	post, err := os.Stat(path)
	if err != nil || post.Size() >= pre.Size() {
		t.Fatalf("WAL not truncated: %d -> %d (%v)", pre.Size(), post.Size(), err)
	}
	if q, err := os.Stat(filepath.Join(dir, walCorruptName)); err != nil || q.Size() != 12 {
		t.Fatalf("quarantine file = (%v, %v), want the 12 torn bytes", q, err)
	}
}

// TestJournalCorruptRecordStopsScan: a checksum-corrupt record drops it
// and everything after (truncated + quarantined), never panics, and
// records before it replay fine.
func TestJournalCorruptRecordStopsScan(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UnixNano()
	frame := func(rec walRecord) []byte {
		b, ok := encodeRecord(rec)
		if !ok {
			t.Fatalf("encodeRecord(%+v) failed", rec)
		}
		return b
	}
	good := append(
		frame(walRecord{Op: opAccepted, ID: "aaaa", Kind: "prove", At: now}),
		frame(walRecord{Op: opDone, ID: "aaaa", At: now, Res: []byte(`"r"`)})...)
	bad := frame(walRecord{Op: opAccepted, ID: "bbbb", Kind: "prove", At: now})
	bad[9] ^= 0xff // flip a payload byte: CRC now fails
	lost := frame(walRecord{Op: opAccepted, ID: "cccc", Kind: "prove", At: now})
	var wal []byte
	wal = append(wal, good...)
	wal = append(wal, bad...)
	wal = append(wal, lost...)
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Config{Journal: newJournal(t, dir)})
	if got, err := m.Get("aaaa"); err != nil || got.State() != StateDone {
		t.Fatalf("record before the corruption must replay: (%v, %v)", got, err)
	}
	for _, id := range []string{"bbbb", "cccc"} {
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("job %s after the corruption must be dropped, got %v", id, err)
		}
	}
	q, err := os.ReadFile(filepath.Join(dir, walCorruptName))
	if err != nil || len(q) != len(bad)+len(lost) {
		t.Fatalf("quarantine = %d bytes (%v), want the %d discarded", len(q), err, len(bad)+len(lost))
	}
}

// TestIdempotentSubmit: a second submit under the same key returns the
// original job — live or finished — and the hit is counted.
func TestIdempotentSubmit(t *testing.T) {
	m := newTestManager(t, Config{Journal: newJournal(t, t.TempDir())})
	run := func(ctx context.Context, started func()) (any, error) {
		started()
		return "first", nil
	}
	j1, deduped, err := m.SubmitWith(SubmitOptions{Kind: "prove", IdempotencyKey: "k1"}, run)
	if err != nil || deduped {
		t.Fatalf("first submit = (deduped=%v, %v)", deduped, err)
	}
	<-j1.Done()
	j2, deduped, err := m.SubmitWith(SubmitOptions{Kind: "prove", IdempotencyKey: "k1"},
		func(ctx context.Context, started func()) (any, error) {
			t.Error("deduped RunFunc must not run")
			return nil, nil
		})
	if err != nil || !deduped || j2.ID() != j1.ID() {
		t.Fatalf("dup submit = (%v, deduped=%v, %v), want the original job", j2, deduped, err)
	}
	if st := m.Snapshot(); st.Journal.DedupHits != 1 || st.Submitted != 1 {
		t.Fatalf("stats = %+v, want dedup_hits=1 submitted=1", st)
	}
	// A different key is a different job.
	j3, deduped, err := m.SubmitWith(SubmitOptions{Kind: "prove", IdempotencyKey: "k2"}, run)
	if err != nil || deduped || j3.ID() == j1.ID() {
		t.Fatalf("distinct key submit = (%v, deduped=%v, %v), want a fresh job", j3, deduped, err)
	}
}

// TestIdempotencySurvivesRestart: the dedup key is journaled with the
// accepted record, so a retried submit after a crash still lands on the
// original job.
func TestIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Journal: newJournal(t, dir)})
	m1.Start()
	j1, _, err := m1.SubmitWith(SubmitOptions{Kind: "prove", IdempotencyKey: "retry-key"},
		func(ctx context.Context, started func()) (any, error) {
			started()
			return "done-before-crash", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	m2 := newTestManager(t, Config{Journal: newJournal(t, dir)})
	j2, deduped, err := m2.SubmitWith(SubmitOptions{Kind: "prove", IdempotencyKey: "retry-key"},
		func(ctx context.Context, started func()) (any, error) {
			t.Error("deduped RunFunc must not run after restart")
			return nil, nil
		})
	if err != nil || !deduped || j2.ID() != j1.ID() {
		t.Fatalf("post-restart dup submit = (%v, deduped=%v, %v), want the pre-crash job", j2, deduped, err)
	}
}

// TestJournalCompaction: once evictions leave enough dead records, a
// sweep rewrites the WAL down to the live set — and the compacted file
// still replays.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl := newJournal(t, dir)
	m := newTestManager(t, Config{Journal: jl, TTL: 20 * time.Millisecond, SweepEvery: 5 * time.Millisecond})
	// 3 records per finished job (accepted/started/done): 40 jobs is well
	// past the 2*live+compactSlack threshold once they evict.
	for i := 0; i < 40; i++ {
		j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
			started()
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	waitFor(t, 5*time.Second, "compaction", func() bool {
		return m.Snapshot().Journal.Compactions >= 1
	})
	waitFor(t, 5*time.Second, "eviction of all jobs", func() bool {
		return m.Snapshot().Retained == 0
	})
	if recs := m.Snapshot().Journal.Records; recs > 2*compactSlack {
		t.Fatalf("records after compaction = %d, want the dead weight gone", recs)
	}
}

// TestJournalAppendFaultDegrades: an armed jobs.journal.append fault
// costs durability (counted), never availability — the job still runs.
func TestJournalAppendFaultDegrades(t *testing.T) {
	defer faultinject.Reset()
	disarm := faultinject.Arm(faultinject.PointJournalAppend, faultinject.Fault{
		Kind: faultinject.KindError, Err: errors.New("injected append fault"),
	})
	defer disarm()
	m := newTestManager(t, Config{Journal: newJournal(t, t.TempDir())})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return "served", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if res, jerr := j.Result(); jerr != nil || res != "served" {
		t.Fatalf("job under append fault = (%v, %v), want it to serve", res, jerr)
	}
	if st := m.Snapshot(); st.Journal.AppendErrors == 0 {
		t.Fatalf("append_errors = 0, want the fault counted")
	}
}

// TestJournalReplayFaultStartsEmpty: an injected replay fault models an
// unreadable WAL — the manager boots empty instead of crashing.
func TestJournalReplayFaultStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Journal: newJournal(t, dir)})
	m1.Start()
	j, err := m1.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	defer faultinject.Reset()
	disarm := faultinject.Arm(faultinject.PointJournalReplay, faultinject.Fault{
		Kind: faultinject.KindError, Err: errors.New("injected replay fault"),
	})
	defer disarm()
	m2 := newTestManager(t, Config{Journal: newJournal(t, dir)})
	if _, err := m2.Get(j.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after replay fault = %v, want ErrNotFound (booted empty)", err)
	}
	if st := m2.Snapshot(); st.Journal.TornRecords != 1 {
		t.Fatalf("torn_records = %d, want the quarantined replay counted", st.Journal.TornRecords)
	}
}

// FuzzJournalDecode is the decoder-hardening gate: arbitrary bytes —
// including attacker-controlled length prefixes — must never panic,
// never size an allocation past the stream, and must leave a clean
// re-scannable prefix behind.
func FuzzJournalDecode(f *testing.F) {
	good, _ := encodeRecord(walRecord{Op: opAccepted, ID: "fuzzjob", Kind: "prove", At: 1, Req: []byte(`{"x":1}`)})
	done, _ := encodeRecord(walRecord{Op: opDone, ID: "fuzzjob", At: 2, Res: []byte(`"r"`)})
	f.Add(append(append([]byte(nil), good...), done...))
	f.Add(good[:len(good)-3]) // torn tail
	var huge [12]byte
	binary.LittleEndian.PutUint32(huge[0:4], 0xffffffff) // length lies
	f.Add(huge[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		byID := map[string]*replayedJob{}
		var order []*replayedJob
		goodEnd, n, _ := scanWAL(bytes.NewReader(data), int64(len(data)), func(rec walRecord) {
			applyRecord(byID, &order, rec)
		})
		if goodEnd < 0 || goodEnd > int64(len(data)) {
			t.Fatalf("goodEnd %d out of range [0, %d]", goodEnd, len(data))
		}
		// The intact prefix must re-scan cleanly with identical results —
		// that is what replay truncates to and appends after.
		end2, n2, clean := scanWAL(bytes.NewReader(data[:goodEnd]), goodEnd, func(walRecord) {})
		if !clean || end2 != goodEnd || n2 != n {
			t.Fatalf("rescan of intact prefix = (%d, %d, %v), want (%d, %d, true)",
				end2, n2, clean, goodEnd, n)
		}
	})
}
