package jobs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func TestLifecycleDone(t *testing.T) {
	m := newTestManager(t, Config{})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return "result", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job never finished")
	}
	if got := j.State(); got != StateDone {
		t.Fatalf("state = %v, want done", got)
	}
	res, jerr := j.Result()
	if jerr != nil || res != "result" {
		t.Fatalf("result = (%v, %v), want (result, nil)", res, jerr)
	}
	got, err := m.Get(j.ID())
	if err != nil || got != j {
		t.Fatalf("Get returned (%v, %v), want the submitted job", got, err)
	}
	st := m.Snapshot()
	if st.Submitted != 1 || st.Completed != 1 || st.Retained != 1 {
		t.Fatalf("stats = %+v, want submitted=completed=retained=1", st)
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := newTestManager(t, Config{})
	boom := errors.New("boom")
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if got := j.State(); got != StateFailed {
		t.Fatalf("state = %v, want failed", got)
	}
	if _, jerr := j.Result(); !errors.Is(jerr, boom) {
		t.Fatalf("err = %v, want boom", jerr)
	}
	if st := m.Snapshot(); st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
}

// TestStartedCallbackGatesRunning: a job whose RunFunc has not yet called
// started() still reports queued — the state the service's own bounded
// queue imposes — and flips to running at the callback.
func TestStartedCallbackGatesRunning(t *testing.T) {
	m := newTestManager(t, Config{})
	begin := make(chan func())
	release := make(chan struct{})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		begin <- started
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	started := <-begin // RunFunc is executing but has not called started()
	if got := j.State(); got != StateQueued {
		t.Fatalf("state before started() = %v, want queued", got)
	}
	started()
	if got := j.State(); got != StateRunning {
		t.Fatalf("state after started() = %v, want running", got)
	}
	close(release)
	<-j.Done()
}

// TestTTLEviction: finished jobs disappear after the TTL — Get returns
// ErrNotFound (the HTTP 404 path) and the eviction is counted.
func TestTTLEviction(t *testing.T) {
	m := newTestManager(t, Config{TTL: 50 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if _, err := m.Get(j.ID()); err != nil {
		t.Fatalf("job should still be retained right after finish: %v", err)
	}
	waitFor(t, 5*time.Second, "TTL eviction", func() bool {
		_, err := m.Get(j.ID())
		return errors.Is(err, ErrNotFound)
	})
	if st := m.Snapshot(); st.Evicted != 1 || st.Retained != 0 {
		t.Fatalf("stats after eviction = %+v, want evicted=1 retained=0", st)
	}
}

// TestCancelQueued: canceling a job its dispatcher has not reached fails
// it immediately with ErrCanceled and frees the active slot.
func TestCancelQueued(t *testing.T) {
	m := newTestManager(t, Config{Parallel: 1, MaxActive: 8})
	gate := make(chan struct{})
	// Occupy the lone dispatcher so the second job stays queued.
	blocker, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "blocker running", func() bool { return blocker.State() == StateRunning })

	queued, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		t.Error("canceled queued job must never run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.State(); got != StateQueued {
		t.Fatalf("state = %v, want queued", got)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	<-queued.Done()
	if _, jerr := queued.Result(); !errors.Is(jerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", jerr)
	}
	close(gate)
	<-blocker.Done()
	st := m.Snapshot()
	if st.Canceled != 1 || st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want canceled=1 completed=1 failed=1", st)
	}
}

// TestCancelRunning: canceling a running job cancels its context; the
// job finalizes with the RunFunc's error once it observes the cancel.
func TestCancelRunning(t *testing.T) {
	m := newTestManager(t, Config{})
	running := make(chan struct{})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	t0 := time.Now()
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("canceled job never finalized")
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("cancel took %v to finalize a cooperative RunFunc", d)
	}
	if _, jerr := j.Result(); !errors.Is(jerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", jerr)
	}
	// Idempotent: a second DELETE sees the terminal job unchanged.
	again, err := m.Cancel(j.ID())
	if err != nil || again.State() != StateFailed {
		t.Fatalf("second cancel = (%v, %v), want the failed job", again, err)
	}
	if st := m.Snapshot(); st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1 (idempotent cancel double-counted)", st.Canceled)
	}
}

// TestMaxActiveSheds: the MaxActive cap sheds with ErrTooManyJobs, and
// slots free as jobs finish.
func TestMaxActiveSheds(t *testing.T) {
	m := newTestManager(t, Config{MaxActive: 2, Parallel: 1})
	gate := make(chan struct{})
	run := func(ctx context.Context, started func()) (any, error) {
		started()
		<-gate
		return nil, nil
	}
	j1, err := m.Submit("prove", run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("prove", run); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("prove", run); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("third submit err = %v, want ErrTooManyJobs", err)
	}
	if st := m.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(gate)
	<-j1.Done()
	waitFor(t, 2*time.Second, "slot release", func() bool {
		_, err := m.Submit("noop", func(ctx context.Context, started func()) (any, error) { return nil, nil })
		return err == nil
	})
}

// TestShutdownDropsQueued: shutdown fails still-queued jobs with
// ErrDropped, lets running ones finish, and rejects new submits.
func TestShutdownDropsQueued(t *testing.T) {
	m := New(Config{Parallel: 1, MaxActive: 8})
	m.Start()
	gate := make(chan struct{})
	running, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		<-gate
		return "finished", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "running", func() bool { return running.State() == StateRunning })
	queued, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		t.Error("dropped job must not run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	waitFor(t, 2*time.Second, "queued job dropped", func() bool { return queued.State() == StateFailed })
	if _, jerr := queued.Result(); !errors.Is(jerr, ErrDropped) {
		t.Fatalf("queued err = %v, want ErrDropped", jerr)
	}
	if _, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain err = %v, want ErrDraining", err)
	}
	close(gate)
	<-done
	if res, jerr := running.Result(); jerr != nil || res != "finished" {
		t.Fatalf("running job = (%v, %v), want it drained to completion", res, jerr)
	}
}

// TestShutdownForceCancels: a drain deadline in the past cancels running
// job contexts instead of waiting forever.
func TestShutdownForceCancels(t *testing.T) {
	m := New(Config{Parallel: 1})
	m.Start()
	running := make(chan struct{})
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		close(running)
		<-ctx.Done() // only a forced cancel releases this job
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	m.Shutdown(ctx)
	if _, jerr := j.Result(); !errors.Is(jerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the forced drain", jerr)
	}
}

// TestConcurrentSubmitPoll hammers submit/get/cancel/stats concurrently;
// run under -race this is the locking acceptance test.
func TestConcurrentSubmitPoll(t *testing.T) {
	m := newTestManager(t, Config{MaxActive: 256, Parallel: 8, TTL: 20 * time.Millisecond, SweepEvery: 5 * time.Millisecond})
	var wg sync.WaitGroup
	var ran atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
					started()
					ran.Add(1)
					return i, nil
				})
				if err != nil {
					continue // MaxActive shed under load is fine
				}
				m.Get(j.ID())
				if i%5 == 0 {
					m.Cancel(j.ID())
				}
				m.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, "all jobs settled", func() bool {
		st := m.Snapshot()
		return st.Queued == 0 && st.Running == 0
	})
	st := m.Snapshot()
	if st.Completed+st.Failed != st.Submitted {
		t.Fatalf("outcomes %d+%d != submitted %d", st.Completed, st.Failed, st.Submitted)
	}
}

// TestSweeperShutdownClean: Shutdown stops the sweeper without leaking
// its goroutine, and a sweep or compaction racing past Close finds the
// journal handle nil-guarded — a no-op, never a panic.
func TestSweeperShutdownClean(t *testing.T) {
	before := runtime.NumGoroutine()
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Journal: jl, TTL: 10 * time.Millisecond, SweepEvery: time.Millisecond})
	m.Start()
	j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
		started()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Shutdown(ctx)
	// Shutdown closed the journal; late sweeps must still be safe.
	m.sweep(time.Now())
	m.maybeCompact()
	time.Sleep(5 * time.Millisecond) // several sweep intervals past Shutdown
	waitFor(t, 5*time.Second, "manager goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= before
	})
}

// TestNonPositiveTTLDefaults: zero and negative TTLs mean "use the
// default retention", never "evict immediately" — a finished job stays
// pollable through a sweep and the effective TTL is the documented 5m.
func TestNonPositiveTTLDefaults(t *testing.T) {
	for _, ttl := range []time.Duration{0, -time.Second} {
		m := newTestManager(t, Config{TTL: ttl})
		if got := m.TTL(); got != 5*time.Minute {
			t.Fatalf("TTL(%v) defaulted to %v, want 5m", ttl, got)
		}
		j, err := m.Submit("prove", func(ctx context.Context, started func()) (any, error) {
			started()
			return "kept", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		m.sweep(time.Now())
		if got, err := m.Get(j.ID()); err != nil || got.State() != StateDone {
			t.Fatalf("TTL=%v: finished job gone after sweep (%v, %v); non-positive TTL must not mean instant eviction", ttl, got, err)
		}
	}
}
