// The durable job journal: an append-only write-ahead log of job
// lifecycle transitions, so a node killed mid-job does not orphan every
// 202-accepted job ID it ever handed out. The WAL records `accepted`
// (with the full serialized request), `started`, `done` (with the
// result), `failed` and `cancelled`; Manager.New replays it so finished
// jobs come back pollable until TTL and queued/running-at-crash jobs are
// re-enqueued for execution.
//
// On-disk format: a flat sequence of records, each
//
//	u32 payload length (little endian)
//	u32 CRC32-C of the payload
//	payload: one JSON walRecord
//
// The discipline mirrors the PR-4 artifact store: appends fsync before
// the submit path acknowledges, compaction rewrites through a temp file
// + fsync + atomic rename + directory fsync, and nothing read from disk
// is trusted — a torn tail or checksum-corrupt record truncates the WAL
// back to the last intact boundary (the discarded bytes are quarantined
// in jobs.wal.corrupt for post-mortems) and is never fatal. The length
// prefix is attacker-controlled bytes as far as the decoder is
// concerned: it is bounded by both the record cap and the file size
// before it ever sizes an allocation.
package jobs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/faultinject"
)

const (
	walName        = "jobs.wal"
	walCorruptName = "jobs.wal.corrupt"
	// maxWALRecord caps one record's payload. Requests are bounded by the
	// HTTP body limit and results by proof size, both far below this; a
	// length prefix past it is corruption, not data.
	maxWALRecord = 8 << 20
	// compactSlack is how many dead records the WAL may accumulate beyond
	// ~2 per live job before a sweep triggers compaction.
	compactSlack = 64
)

// Lifecycle ops recorded in the WAL.
const (
	opAccepted  = "accepted"
	opStarted   = "started"
	opDone      = "done"
	opFailed    = "failed"
	opCancelled = "cancelled"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecord is the JSON payload of one WAL record. Every op carries ID;
// the other fields are op-specific (accepted: kind/key/req, done: res,
// failed/cancelled: the err_* envelope). Unknown ops are skipped on
// replay so old binaries tolerate newer journals.
type walRecord struct {
	Op   string `json:"op"`
	ID   string `json:"id"`
	Kind string `json:"kind,omitempty"`
	At   int64  `json:"at,omitempty"`  // transition time, unix nanos
	Key  string `json:"key,omitempty"` // idempotency key

	Req json.RawMessage `json:"req,omitempty"` // accepted: serialized request
	Res json.RawMessage `json:"res,omitempty"` // done: serialized result

	ErrCode      string `json:"err_code,omitempty"`
	ErrMsg       string `json:"err_msg,omitempty"`
	ErrStatus    int    `json:"err_status,omitempty"`
	ErrRetryable bool   `json:"err_retryable,omitempty"`
}

// ReplayedError is the failure restored for a journaled job that was
// already failed or cancelled when the process died: the classification
// the original error carried (stable code, HTTP status, retryability)
// survives the restart even though the error value itself cannot.
type ReplayedError struct {
	Code      string
	Message   string
	Status    int
	Retryable bool
}

func (e *ReplayedError) Error() string { return e.Message }

// replayedJob is one job's state merged from its WAL records.
type replayedJob struct {
	ID, Kind, Key              string
	Created, Started, Finished time.Time
	State                      State
	Payload                    []byte
	Result                     json.RawMessage
	Err                        *ReplayedError
}

// Journal is the durable WAL handle. Open one with OpenJournal and hand
// it to a single Manager via Config.Journal — the manager replays it at
// New, appends every transition, compacts it on sweep and closes it at
// Shutdown.
//
// Lock order: Journal.mu may be taken before Manager.mu (compaction
// snapshots live jobs under both), so manager code must never append —
// or take Journal.mu any other way — while holding Manager.mu.
type Journal struct {
	dir  string
	path string

	mu      sync.Mutex
	f       *os.File // nil once closed (or after an unrecoverable error)
	off     int64    // end of the last intact record
	records int      // records currently in the file

	compactions atomic.Uint64
	torn        atomic.Uint64
	appendErrs  atomic.Uint64
	compactErrs atomic.Uint64
}

// OpenJournal creates dir if needed and returns a journal over
// dir/jobs.wal. The file itself is opened (and replayed) when a Manager
// is constructed with it.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Journal{dir: dir, path: filepath.Join(dir, walName)}, nil
}

// Path returns the WAL file path.
func (jl *Journal) Path() string { return jl.path }

// Close fsyncs and closes the WAL; subsequent appends are dropped.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.f.Sync()
	err := jl.f.Close()
	jl.f = nil
	return err
}

// scanWAL reads length-prefixed records from r (size bytes in total),
// calling apply for each intact one. It returns the offset just past the
// last intact record, the intact record count, and whether the stream
// ended cleanly — false means a torn tail or a corrupt record, and
// nothing past goodEnd was applied. The length prefix is validated
// against both the record cap and the bytes the stream can still hold
// before it sizes an allocation (the PR-4 decoder-hardening rule).
func scanWAL(r io.Reader, size int64, apply func(walRecord)) (goodEnd int64, n int, clean bool) {
	br := bufio.NewReader(r)
	var off int64
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, n, err == io.EOF
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if ln == 0 || int64(ln) > maxWALRecord || off+8+int64(ln) > size {
			return off, n, false
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return off, n, false
		}
		if crc32.Checksum(buf, castagnoli) != sum {
			return off, n, false
		}
		var rec walRecord
		if err := json.Unmarshal(buf, &rec); err != nil || rec.ID == "" {
			return off, n, false
		}
		apply(rec)
		off += 8 + int64(ln)
		n++
	}
}

// applyRecord merges one record into the per-job replay state. Merging
// is order-insensitive for the accepted/terminal race (a fast job's
// `done` may land before its submitter's `accepted` append) and
// idempotent, so compacted journals — which re-emit accepted + terminal
// pairs — replay identically.
func applyRecord(byID map[string]*replayedJob, order *[]*replayedJob, rec walRecord) {
	rj := byID[rec.ID]
	if rj == nil {
		rj = &replayedJob{ID: rec.ID, State: StateQueued}
		byID[rec.ID] = rj
		*order = append(*order, rj)
	}
	at := time.Unix(0, rec.At)
	switch rec.Op {
	case opAccepted:
		if rec.Kind != "" {
			rj.Kind = rec.Kind
		}
		if rec.Key != "" {
			rj.Key = rec.Key
		}
		if len(rec.Req) > 0 {
			rj.Payload = append([]byte(nil), rec.Req...)
		}
		if rec.At != 0 {
			rj.Created = at
		}
	case opStarted:
		if rj.State == StateQueued {
			rj.State = StateRunning
		}
		rj.Started = at
	case opDone:
		rj.State, rj.Finished, rj.Err = StateDone, at, nil
		rj.Result = append(json.RawMessage(nil), rec.Res...)
	case opFailed, opCancelled:
		rj.State, rj.Finished, rj.Result = StateFailed, at, nil
		re := &ReplayedError{
			Code:      rec.ErrCode,
			Message:   rec.ErrMsg,
			Status:    rec.ErrStatus,
			Retryable: rec.ErrRetryable,
		}
		if re.Code == "" {
			re.Code = "internal_error"
		}
		if re.Message == "" {
			re.Message = "jobs: job failed before restart"
		}
		rj.Err = re
	}
}

// replay opens the WAL, merges its records into per-job state and
// positions the file for appends. A torn tail or corrupt record is
// recovered by quarantining the unreadable suffix to jobs.wal.corrupt
// and truncating back to the last intact boundary — records before the
// damage survive, and the error is counted, never fatal. Only opening
// the file itself can fail.
func (jl *Journal) replay() ([]*replayedJob, error) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()

	byID := map[string]*replayedJob{}
	var order []*replayedJob
	var goodEnd int64
	var nrec int
	clean := true
	if err := faultinject.Point(nil, faultinject.PointJournalReplay); err != nil {
		// An injected replay fault models an unreadable WAL: quarantine
		// everything and start empty — durability degrades, the node boots.
		clean, byID, order = false, map[string]*replayedJob{}, nil
	} else {
		goodEnd, nrec, clean = scanWAL(f, size, func(rec walRecord) {
			applyRecord(byID, &order, rec)
		})
	}
	if !clean {
		jl.torn.Add(1)
		jl.quarantineTail(f, goodEnd, size)
		f.Truncate(goodEnd)
		f.Sync()
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	jl.f, jl.off, jl.records = f, goodEnd, nrec
	return order, nil
}

// quarantineTail copies the unparseable suffix [from, size) of the WAL
// to jobs.wal.corrupt so truncation never silently destroys evidence.
// Best effort: a failure here only loses the post-mortem copy.
func (jl *Journal) quarantineTail(f *os.File, from, size int64) {
	if size <= from {
		return
	}
	q, err := os.Create(filepath.Join(jl.dir, walCorruptName))
	if err != nil {
		return
	}
	defer q.Close()
	io.Copy(q, io.NewSectionReader(f, from, size-from))
	q.Sync()
}

// encodeRecord frames one record: length + CRC32-C header, JSON payload.
func encodeRecord(rec walRecord) ([]byte, bool) {
	data, err := json.Marshal(rec)
	if err != nil || len(data) > maxWALRecord {
		return nil, false
	}
	out := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(data, castagnoli))
	copy(out[8:], data)
	return out, true
}

// append durably adds one record: write, fsync, advance. A failed or
// short write (including an armed jobs.journal.append partial-write
// fault) rolls the file back to the last intact boundary so the WAL
// stays parseable; the job itself proceeds in memory either way —
// journal trouble degrades durability, never availability.
func (jl *Journal) append(rec walRecord) {
	frame, ok := encodeRecord(rec)
	if !ok {
		jl.appendErrs.Add(1)
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if err := faultinject.Point(nil, faultinject.PointJournalAppend); err != nil {
		jl.appendErrs.Add(1)
		return
	}
	w := faultinject.LimitWriter(nil, faultinject.PointJournalAppend, jl.f)
	if _, err := w.Write(frame); err != nil {
		jl.appendErrs.Add(1)
		// A half-written record would corrupt every record after it.
		if jl.f.Truncate(jl.off) != nil {
			jl.f.Close()
			jl.f = nil
			return
		}
		jl.f.Seek(jl.off, io.SeekStart)
		return
	}
	jl.f.Sync()
	jl.off += int64(len(frame))
	jl.records++
}

// needsCompact reports whether the WAL holds enough dead weight — more
// than ~2 records per live job plus slack — to be worth rewriting.
func (jl *Journal) needsCompact(live int) bool {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f != nil && jl.records > 2*live+compactSlack
}

// compact rewrites the WAL to exactly the records build returns, using
// the temp-file + fsync + atomic-rename + dir-fsync discipline: a crash
// at any point leaves either the old WAL or the new one, never a mix.
// build runs under the journal lock so no append can land between the
// snapshot and the rewrite (which is why it must not be called with
// Manager.mu held — see the lock-order note on Journal).
func (jl *Journal) compact(build func() []walRecord) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if err := faultinject.Point(nil, faultinject.PointJournalCompact); err != nil {
		jl.compactErrs.Add(1)
		return
	}
	recs := build()
	tmp := jl.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		jl.compactErrs.Add(1)
		return
	}
	var size int64
	w := bufio.NewWriter(faultinject.LimitWriter(nil, faultinject.PointJournalCompact, f))
	n := 0
	for _, rec := range recs {
		frame, ok := encodeRecord(rec)
		if !ok {
			continue
		}
		if _, err = w.Write(frame); err != nil {
			break
		}
		size += int64(len(frame))
		n++
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, jl.path)
	}
	if err != nil {
		os.Remove(tmp)
		jl.compactErrs.Add(1)
		return
	}
	syncDir(jl.dir)
	// The old handle points at the unlinked inode; reopen the new file
	// for appends.
	nf, err := os.OpenFile(jl.path, os.O_RDWR, 0o644)
	if err != nil {
		jl.f.Close()
		jl.f = nil
		jl.compactErrs.Add(1)
		return
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		jl.f.Close()
		jl.f = nil
		jl.compactErrs.Add(1)
		return
	}
	jl.f.Close()
	jl.f, jl.off, jl.records = nf, size, n
	jl.compactions.Add(1)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// JournalStats is the `journal` block of the jobs stats: durability
// health at a glance (zero-valued with Enabled false when no journal is
// configured).
type JournalStats struct {
	Enabled bool   `json:"enabled"`
	Path    string `json:"path,omitempty"`
	// Records and SizeBytes describe the live WAL file.
	Records   int   `json:"records"`
	SizeBytes int64 `json:"size_bytes"`
	// Replayed counts jobs restored from the journal at startup;
	// Reexecuted is the subset re-enqueued because they were queued or
	// running when the previous process died.
	Replayed   uint64 `json:"replayed"`
	Reexecuted uint64 `json:"reexecuted"`
	// DedupHits counts submissions answered with an existing job via
	// Idempotency-Key.
	DedupHits   uint64 `json:"dedup_hits"`
	Compactions uint64 `json:"compactions"`
	// TornRecords counts replay recoveries: torn tails and corrupt
	// records truncated/quarantined.
	TornRecords   uint64 `json:"torn_records"`
	AppendErrors  uint64 `json:"append_errors"`
	CompactErrors uint64 `json:"compact_errors"`
}
