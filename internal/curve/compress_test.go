package curve

import (
	"bytes"
	"math/big"
	"testing"

	"zkperf/internal/ff"
)

func TestCompressRoundTrip(t *testing.T) {
	for _, c := range testCurves() {
		var g, p G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		for k := int64(1); k <= 32; k++ {
			c.G1ScalarMulBig(&p, &g, big.NewInt(k))
			var aff, back G1Affine
			c.G1ToAffine(&aff, &p)
			data := c.G1Compress(&aff)
			if len(data) != c.G1CompressedLen() {
				t.Fatalf("%s: compressed length %d", c.Name, len(data))
			}
			if err := c.G1Decompress(&back, data); err != nil {
				t.Fatalf("%s: decompress [%d]G: %v", c.Name, k, err)
			}
			if !c.Fp.Equal(&aff.X, &back.X) || !c.Fp.Equal(&aff.Y, &back.Y) {
				t.Fatalf("%s: [%d]G changed in compression round trip", c.Name, k)
			}
		}
	}
}

func TestCompressInfinity(t *testing.T) {
	c := NewBN254()
	inf := G1Affine{Inf: true}
	var back G1Affine
	if err := c.G1Decompress(&back, c.G1Compress(&inf)); err != nil || !back.Inf {
		t.Error("infinity compression round trip failed")
	}
}

func TestCompressHalvesSize(t *testing.T) {
	c := NewBN254()
	if c.G1CompressedLen() >= c.G1EncodedLen() {
		t.Errorf("compressed %d bytes vs uncompressed %d", c.G1CompressedLen(), c.G1EncodedLen())
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	c := NewBN254()
	var p G1Affine
	// Wrong length.
	if err := c.G1Decompress(&p, []byte{1, 2, 3}); err == nil {
		t.Error("short encoding accepted")
	}
	// Bad flag.
	data := make([]byte, c.G1CompressedLen())
	data[0] = 7
	if err := c.G1Decompress(&p, data); err == nil {
		t.Error("bad flag accepted")
	}
	// x not on curve: x = 0 gives y² = b = 3, a non-residue for BN254.
	data[0] = flagYEven
	for i := 1; i < len(data); i++ {
		data[i] = 0
	}
	var y2 ff.Element
	c.Fp.Set(&y2, &c.B)
	if c.Fp.Legendre(&y2) == -1 {
		if err := c.G1Decompress(&p, data); err == nil {
			t.Error("off-curve x accepted")
		}
	}
}

func TestCompressedSliceRoundTrip(t *testing.T) {
	c := NewBN254()
	points, _ := msmTestVectors(c, 20, 99)
	points[3].Inf = true
	var buf bytes.Buffer
	if err := c.WriteG1SliceCompressed(&buf, points); err != nil {
		t.Fatal(err)
	}
	// Compressed stream should be roughly half the uncompressed one.
	var unbuf bytes.Buffer
	if err := c.WriteG1Slice(&unbuf, points); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= unbuf.Len()*3/4 {
		t.Errorf("compressed %dB not much smaller than %dB", buf.Len(), unbuf.Len())
	}
	back, err := c.ReadG1SliceCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(points) {
		t.Fatal("length changed")
	}
	for i := range points {
		if points[i].Inf != back[i].Inf {
			t.Fatalf("infinity flag changed at %d", i)
		}
		if !points[i].Inf && (!c.Fp.Equal(&points[i].X, &back[i].X) || !c.Fp.Equal(&points[i].Y, &back[i].Y)) {
			t.Fatalf("point %d changed", i)
		}
	}
}
