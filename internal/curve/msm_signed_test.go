package curve

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"zkperf/internal/ff"
)

// TestSignedDigitsReconstruct: the signed-digit decomposition must satisfy
// Σ d_w·2^{cw} == scalar exactly, digits within [−2^{c−1}, 2^{c−1}].
func TestSignedDigitsReconstruct(t *testing.T) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(41)
	scalars := make([]ff.Element, 64)
	for i := range scalars {
		fr.Random(&scalars[i], rng)
	}
	// Edge scalars: 0, 1, p−1, 2^k.
	fr.Zero(&scalars[0])
	fr.One(&scalars[1])
	var one ff.Element
	fr.One(&one)
	fr.Neg(&scalars[2], &one)
	fr.SetUint64(&scalars[3], 1<<63)
	limbs := frToLimbs(fr, scalars)
	for _, c := range []int{2, 5, 11, 15} {
		digits, numWindows := signedDigits(limbs, fr.Bits(), c)
		half := 1 << uint(c-1)
		for i := range scalars {
			got := new(big.Int)
			for w := numWindows - 1; w >= 0; w-- {
				d := int(digits[w*len(scalars)+i])
				if d > half || d < -half {
					t.Fatalf("c=%d scalar %d window %d: digit %d out of range", c, i, w, d)
				}
				got.Lsh(got, uint(c))
				got.Add(got, big.NewInt(int64(d)))
			}
			want := fr.BigInt(&scalars[i])
			if got.Cmp(want) != 0 {
				t.Fatalf("c=%d scalar %d: digits reconstruct %s, want %s", c, i, got, want)
			}
		}
	}
}

// TestMSMSignedMatchesNaive cross-checks the signed-digit batch-affine
// MSM against the double-and-add reference across sizes × curves ×
// thread counts, and checks that every thread count yields the same
// group element.
func TestMSMSignedMatchesNaive(t *testing.T) {
	threadCounts := []int{1, 4, runtime.NumCPU()}
	for _, c := range testCurves() {
		for _, logN := range []int{4, 6, 9} {
			n := 1 << uint(logN)
			points, scalars := msmTestVectors(c, n, uint64(60+logN))
			naive := c.G1MSMNaive(points, scalars)
			for _, th := range threadCounts {
				t.Run(fmt.Sprintf("%s/n=2^%d/threads=%d", c.Name, logN, th), func(t *testing.T) {
					got := c.G1MSM(points, scalars, th)
					if !c.G1Equal(&got, &naive) {
						t.Fatal("MSM != naive reference")
					}
				})
			}
		}
	}
}

// TestMSMLargeLinearity covers 2^12 (where the naive reference gets
// expensive) through the linearity identity Σ(a·sᵢ+b·tᵢ)Pᵢ =
// a·ΣsᵢPᵢ + b·ΣtᵢPᵢ, which any bucket-accounting bug breaks.
func TestMSMLargeLinearity(t *testing.T) {
	c := NewBN254()
	fr := c.Fr
	const n = 1 << 12
	points, s := msmTestVectors(c, n, 71)
	rng := ff.NewRNG(72)
	tt := make([]ff.Element, n)
	for i := range tt {
		fr.Random(&tt[i], rng)
	}
	var a, b ff.Element
	fr.Random(&a, rng)
	fr.Random(&b, rng)
	comb := make([]ff.Element, n)
	var tmp ff.Element
	for i := range comb {
		fr.Mul(&comb[i], &a, &s[i])
		fr.Mul(&tmp, &b, &tt[i])
		fr.Add(&comb[i], &comb[i], &tmp)
	}
	for _, th := range []int{1, runtime.NumCPU()} {
		rs := c.G1MSM(points, s, th)
		rt := c.G1MSM(points, tt, th)
		rc := c.G1MSM(points, comb, th)
		var want, bt G1Jac
		c.G1ScalarMul(&want, &rs, &a)
		c.G1ScalarMul(&bt, &rt, &b)
		c.G1Add(&want, &want, &bt)
		if !c.G1Equal(&rc, &want) {
			t.Fatalf("threads=%d: MSM linearity identity failed at n=2^12", th)
		}
	}
}

// TestMSMDeterministic: the same inputs and thread count must give the
// exact same Jacobian coordinates — the partial combination order is
// fixed, so scheduling cannot leak into the result.
func TestMSMDeterministic(t *testing.T) {
	c := NewBN254()
	points, scalars := msmTestVectors(c, 300, 73)
	for _, th := range []int{1, 4} {
		r1 := c.G1MSM(points, scalars, th)
		r2 := c.G1MSM(points, scalars, th)
		if !c.Fp.Equal(&r1.X, &r2.X) || !c.Fp.Equal(&r1.Y, &r2.Y) || !c.Fp.Equal(&r1.Z, &r2.Z) {
			t.Fatalf("threads=%d: repeated MSM runs gave different coordinates", th)
		}
	}
}

// TestMSMBucketCollisions stresses the batch-affine scheduler's
// slow paths: repeated identical points (bucket doubling + busy queue),
// P/−P pairs (bucket annihilation), and a single repeated scalar (all
// points funneled into one bucket per window).
func TestMSMBucketCollisions(t *testing.T) {
	for _, c := range testCurves() {
		fr := c.Fr
		const n = 96
		rng := ff.NewRNG(79)

		// All points identical, all scalars identical.
		points := make([]G1Affine, n)
		scalars := make([]ff.Element, n)
		for i := range points {
			points[i] = c.G1Gen
		}
		var k ff.Element
		fr.Random(&k, rng)
		for i := range scalars {
			fr.Set(&scalars[i], &k)
		}
		got := c.G1MSM(points, scalars, 1)
		want := c.G1MSMNaive(points, scalars)
		if !c.G1Equal(&got, &want) {
			t.Fatalf("%s: repeated-point MSM != naive", c.Name)
		}

		// P and −P interleaved with the same scalar: exact cancellation.
		var negGen G1Affine
		negGen = c.G1Gen
		c.Fp.Neg(&negGen.Y, &negGen.Y)
		for i := range points {
			if i%2 == 1 {
				points[i] = negGen
			}
		}
		got = c.G1MSM(points, scalars, 1)
		if !c.G1IsInfinity(&got) {
			t.Fatalf("%s: P/−P pairs should cancel to infinity", c.Name)
		}

		// Distinct points, one shared scalar: every point lands in the
		// same bucket per window (maximum queue pressure).
		pts, _ := msmTestVectors(c, n, 83)
		got = c.G1MSM(pts, scalars, 1)
		want = c.G1MSMNaive(pts, scalars)
		if !c.G1Equal(&got, &want) {
			t.Fatalf("%s: shared-scalar MSM != naive", c.Name)
		}

		// Tiny scalars (1 and p−1) exercise digit ±1 and negation.
		small := make([]ff.Element, n)
		var one ff.Element
		fr.One(&one)
		for i := range small {
			if i%2 == 0 {
				fr.Set(&small[i], &one)
			} else {
				fr.Neg(&small[i], &one)
			}
		}
		got = c.G1MSM(pts, small, 1)
		want = c.G1MSMNaive(pts, small)
		if !c.G1Equal(&got, &want) {
			t.Fatalf("%s: ±1-scalar MSM != naive", c.Name)
		}
	}
}

// TestG2MSMSignedMatchesNaive: the generic core instantiated over the
// quadratic extension (exercises the generic batched inversion on E2).
func TestG2MSMSignedMatchesNaive(t *testing.T) {
	for _, c := range testCurves() {
		const n = 64
		rng := ff.NewRNG(89)
		points := make([]G2Affine, n)
		scalars := make([]ff.Element, n)
		var g, p G2Jac
		c.G2FromAffine(&g, &c.G2Gen)
		for i := 0; i < n; i++ {
			var k ff.Element
			c.Fr.Random(&k, rng)
			c.G2ScalarMul(&p, &g, &k)
			c.G2ToAffine(&points[i], &p)
			c.Fr.Random(&scalars[i], rng)
		}
		var want, term, pj G2Jac
		c.G2Infinity(&want)
		for i := range points {
			c.G2FromAffine(&pj, &points[i])
			c.G2ScalarMul(&term, &pj, &scalars[i])
			c.G2Add(&want, &want, &term)
		}
		for _, th := range []int{1, 4, runtime.NumCPU()} {
			got := c.G2MSM(points, scalars, th)
			if !c.G2Equal(&got, &want) {
				t.Fatalf("%s threads=%d: G2 MSM != naive reference", c.Name, th)
			}
		}
	}
}

// TestMSMCtxCancelMidKernel: cancelling while workers are inside the
// kernel stops the MSM and surfaces ctx.Err().
func TestMSMCtxCancelMidKernel(t *testing.T) {
	c := NewBN254()
	points, scalars := msmTestVectors(c, 2048, 97)

	// Already-cancelled context: immediate error, no work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.G1MSMCtx(ctx, points, scalars, 4); err == nil {
		t.Fatal("pre-cancelled ctx: expected error")
	}

	// Cancel from another goroutine mid-run. The kernel must return
	// (with an error) rather than run to completion or hang.
	ctx2, cancel2 := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel2()
	}()
	close(started)
	if _, err := c.G1MSMCtx(ctx2, points, scalars, 4); err == nil {
		// The race between cancel and completion is legal; only a
		// missing error after cancellation would be a bug. Check ctx
		// state to distinguish.
		if ctx2.Err() != nil {
			t.Log("MSM completed before cancellation took effect (legal)")
		}
	}
	cancel2()
}

// TestFrToLimbsCanonical: the direct Montgomery→canonical limb path must
// agree with an independent big.Int decomposition.
func TestFrToLimbsCanonical(t *testing.T) {
	for _, c := range testCurves() {
		fr := c.Fr
		rng := ff.NewRNG(91)
		scalars := make([]ff.Element, 32)
		for i := range scalars {
			fr.Random(&scalars[i], rng)
		}
		limbs := frToLimbs(fr, scalars)
		mask := new(big.Int).SetUint64(^uint64(0))
		for i := range scalars {
			v := fr.BigInt(&scalars[i])
			for j := 0; j < fr.NumLimbs(); j++ {
				want := new(big.Int).And(new(big.Int).Rsh(v, uint(64*j)), mask).Uint64()
				if limbs[i][j] != want {
					t.Fatalf("%s: scalar %d limb %d = %#x, want %#x", fr.Name, i, j, limbs[i][j], want)
				}
			}
		}
	}
}
