package curve

import (
	"context"
	"math/big"

	"zkperf/internal/ff"
	"zkperf/internal/parallel"
)

// GLV endomorphism scalar decomposition. Both BN254 and BLS12-381 have
// j-invariant 0 (y² = x³ + b), so the map φ(x, y) = (β·x, y) with β a
// primitive cube root of unity in the coordinate field is an automorphism
// of the curve. On the order-r subgroup it acts as multiplication by an
// eigenvalue λ with λ² + λ + 1 ≡ 0 (mod r). Decomposing a scalar k into
// k = k1 + λ·k2 with |k1|, |k2| ≈ √r (lattice reduction, precomputed
// basis) lets the MSM run over 2n points at half the bit-length — fewer
// windows over the same bucket machinery. The same construction covers G2:
// β lies in Fp ⊂ Fp2, the automorphism commutes with Frobenius and so
// preserves the G2 eigenspace, acting there as λ or λ² (= −1−λ); the
// constructor picks whichever power of β gives the same λ on both groups
// so one decomposition serves both MSMs.

// glvData holds the per-curve endomorphism constants, derived once (lazily)
// per curve instance and validated against the generators.
type glvData struct {
	lambda *big.Int   // shared eigenvalue: φ(P) = [λ]P on G1 and G2
	beta1  ff.Element // G1 endomorphism: (x, y) ↦ (β1·x, y)
	beta2  ff.Element // G2 endomorphism: (x, y) ↦ (β2·x, y), β2 ∈ Fp ⊂ Fp2

	// Reduced lattice basis for {(x, y) : x + y·λ ≡ 0 mod r}; k decomposes
	// via Babai rounding against (a1, b1), (a2, b2).
	a1, b1, a2, b2 *big.Int

	r    *big.Int
	bits int // bound on subscalar bit length (drives the MSM window count)
}

// cubeRootOfUnity finds a primitive cube root of unity mod m (m ≡ 1 mod 3)
// as g^((m−1)/3) for the first small g that gives a nontrivial root.
func cubeRootOfUnity(m *big.Int) *big.Int {
	e := new(big.Int).Sub(m, big.NewInt(1))
	e.Div(e, big.NewInt(3))
	one := big.NewInt(1)
	for g := int64(2); ; g++ {
		z := new(big.Int).Exp(big.NewInt(g), e, m)
		if z.Cmp(one) != 0 {
			return z
		}
	}
}

// glvLattice runs the extended Euclidean algorithm on (r, λ) and returns a
// reduced basis of the GLV lattice: two short vectors (a1, b1), (a2, b2)
// with a + b·λ ≡ 0 (mod r) and ‖·‖ ≈ √r (Guide to ECC, Alg. 3.74).
func glvLattice(r, lambda *big.Int) (a1, b1, a2, b2 *big.Int) {
	sqrtR := new(big.Int).Sqrt(r)
	// Remainder sequence rᵢ with cofactors tᵢ: rᵢ = sᵢ·r + tᵢ·λ.
	rPrev, rCur := new(big.Int).Set(r), new(big.Int).Set(lambda)
	tPrev, tCur := big.NewInt(0), big.NewInt(1)
	q, tmp := new(big.Int), new(big.Int)
	for rCur.Cmp(sqrtR) >= 0 {
		q.Div(rPrev, rCur)
		tmp.Mul(q, rCur)
		rPrev.Sub(rPrev, tmp)
		rPrev, rCur = rCur, rPrev
		tmp.Mul(q, tCur)
		tPrev.Sub(tPrev, tmp)
		tPrev, tCur = tCur, tPrev
	}
	// Here rCur = r_{m+1} < √r ≤ rPrev = r_m.
	a1 = new(big.Int).Set(rCur)
	b1 = new(big.Int).Neg(tCur)
	// Second vector: (r_m, −t_m) or (r_{m+2}, −t_{m+2}), whichever is
	// shorter by squared Euclidean norm.
	candA := new(big.Int).Set(rPrev)
	candB := new(big.Int).Neg(tPrev)
	q.Div(rPrev, rCur)
	rNext := new(big.Int).Mul(q, rCur)
	rNext.Sub(rPrev, rNext)
	tNext := new(big.Int).Mul(q, tCur)
	tNext.Sub(tPrev, tNext)
	tNext.Neg(tNext)
	if normSq(rNext, tNext).Cmp(normSq(candA, candB)) < 0 {
		candA, candB = rNext, tNext
	}
	return a1, b1, candA, candB
}

func normSq(a, b *big.Int) *big.Int {
	n := new(big.Int).Mul(a, a)
	t := new(big.Int).Mul(b, b)
	return n.Add(n, t)
}

// glvInit derives β, λ and the lattice basis, validating the eigenvalue
// pairing against both generators. It runs once per curve instance.
func (c *Curve) glvInit() {
	r := c.Fr.Modulus()
	lam := cubeRootOfUnity(r)
	lam2 := new(big.Int).Mul(lam, lam)
	lam2.Mod(lam2, r)

	betaBig := cubeRootOfUnity(c.Fp.Modulus())
	var beta, betaSq ff.Element
	c.Fp.SetBigInt(&beta, betaBig)
	c.Fp.Mul(&betaSq, &beta, &beta)

	// Match each group's β power with the shared eigenvalue λ: exactly one
	// of {β, β²} satisfies φ(Gen) = [λ]Gen in each group (the other gives
	// λ² = −1−λ).
	g := &glvData{lambda: lam, r: r}
	matched := false
	for _, cand := range []ff.Element{beta, betaSq} {
		if c.g1PhiMatches(&cand, lam) {
			g.beta1 = cand
			matched = true
			break
		}
	}
	if !matched {
		// λ and λ² are the only primitive cube roots; if β and β² both
		// pair with λ² on G1, swap the eigenvalue.
		lam, lam2 = lam2, lam
		g.lambda = lam
		for _, cand := range []ff.Element{beta, betaSq} {
			if c.g1PhiMatches(&cand, lam) {
				g.beta1 = cand
				matched = true
				break
			}
		}
	}
	if !matched {
		panic("curve: GLV eigenvalue matching failed on G1")
	}
	matched = false
	for _, cand := range []ff.Element{beta, betaSq} {
		if c.g2PhiMatches(&cand, lam) {
			g.beta2 = cand
			matched = true
			break
		}
	}
	if !matched {
		panic("curve: GLV eigenvalue matching failed on G2")
	}

	g.a1, g.b1, g.a2, g.b2 = glvLattice(r, lam)
	// Babai rounding below assumes det(v1, v2) = a1·b2 − a2·b1 = +r; the
	// EEA can hand back a basis with determinant −r (it does for
	// BLS12-381, whose remainder sequence collapses from √r straight to 1
	// because λ is a root of λ²∓λ+1). Negating one vector flips the sign
	// without changing the lattice.
	det := new(big.Int).Mul(g.a1, g.b2)
	det.Sub(det, new(big.Int).Mul(g.a2, g.b1))
	if det.CmpAbs(r) != 0 {
		panic("curve: GLV basis determinant != ±r")
	}
	if det.Sign() < 0 {
		g.a2.Neg(g.a2)
		g.b2.Neg(g.b2)
	}
	// Babai rounding error is bounded by the basis vectors themselves:
	// |k1| ≤ |a1| + |a2|, |k2| ≤ |b1| + |b2| (up to the rounding half-unit),
	// so two guard bits over the longest basis coordinate are enough.
	maxBits := 0
	for _, v := range []*big.Int{g.a1, g.b1, g.a2, g.b2} {
		if l := v.BitLen(); l > maxBits {
			maxBits = l
		}
	}
	g.bits = maxBits + 2
	c.glv = g
}

// g1PhiMatches reports whether (β·x, y) = [λ]G1Gen.
func (c *Curve) g1PhiMatches(beta *ff.Element, lam *big.Int) bool {
	var phi G1Affine
	c.Fp.Mul(&phi.X, &c.G1Gen.X, beta)
	c.Fp.Set(&phi.Y, &c.G1Gen.Y)
	var want, got G1Jac
	c.G1FromAffine(&got, &phi)
	c.G1FromAffine(&want, &c.G1Gen)
	c.G1ScalarMulBig(&want, &want, lam)
	return c.G1Equal(&got, &want)
}

// g2PhiMatches reports whether (β·x, y) = [λ]G2Gen for β ∈ Fp ⊂ Fp2.
func (c *Curve) g2PhiMatches(beta *ff.Element, lam *big.Int) bool {
	var phi G2Affine
	c.Tw.E2MulByElement(&phi.X, &c.G2Gen.X, beta)
	c.Tw.E2Set(&phi.Y, &c.G2Gen.Y)
	var want, got G2Jac
	c.G2FromAffine(&got, &phi)
	c.G2FromAffine(&want, &c.G2Gen)
	c.G2ScalarMulBig(&want, &want, lam)
	return c.G2Equal(&got, &want)
}

// GLV returns the curve's endomorphism data, deriving it on first use.
func (c *Curve) GLV() *glvData {
	c.glvOnce.Do(c.glvInit)
	return c.glv
}

// GLVLambda exposes the eigenvalue for tests and op-count models.
func (c *Curve) GLVLambda() *big.Int { return new(big.Int).Set(c.GLV().lambda) }

// GLVBits exposes the subscalar bit bound for tests and op-count models.
func (c *Curve) GLVBits() int { return c.GLV().bits }

// G1Phi applies the G1 endomorphism: z = φ(p) = (β·x, y) = [λ]p.
func (c *Curve) G1Phi(z, p *G1Affine) {
	z.Inf = p.Inf
	c.Fp.Mul(&z.X, &p.X, &c.GLV().beta1)
	c.Fp.Set(&z.Y, &p.Y)
}

// G2Phi applies the G2 endomorphism: z = φ(p) = (β·x, y) = [λ]p.
func (c *Curve) G2Phi(z, p *G2Affine) {
	z.Inf = p.Inf
	c.Tw.E2MulByElement(&z.X, &p.X, &c.GLV().beta2)
	c.Tw.E2Set(&z.Y, &p.Y)
}

// glvScratch is per-worker big.Int scratch for the decomposition loop, so
// the per-scalar cost is a handful of word-sliced multiplications with no
// steady-state allocation.
type glvScratch struct {
	k, c1, c2, t1, t2 big.Int
}

// Decompose splits canonical k ∈ [0, r) into (k1, sign1), (k2, sign2) with
// k ≡ ±k1 + λ·(±k2) (mod r) and both magnitudes below 2^bits. The
// magnitudes land in dst1/dst2 (little-endian limbs, zero-padded).
func (g *glvData) decompose(k *big.Int, sc *glvScratch, dst1, dst2 []uint64) (neg1, neg2 bool) {
	// Babai rounding: cᵢ = ⌊bᵢ'·k/r⌉ with (b1', b2') = (b2, −b1).
	roundDiv := func(z, num *big.Int) {
		// round(num/r) = ⌊(2·num + r) / (2r)⌋ for r > 0, any sign of num.
		z.Lsh(num, 1)
		z.Add(z, g.r)
		z.Div(z, sc.t2.Lsh(g.r, 1))
	}
	sc.t1.Mul(g.b2, k)
	roundDiv(&sc.c1, &sc.t1)
	sc.t1.Mul(g.b1, k)
	sc.t1.Neg(&sc.t1)
	roundDiv(&sc.c2, &sc.t1)

	// k1 = k − c1·a1 − c2·a2 ; k2 = −c1·b1 − c2·b2.
	sc.k.Set(k)
	sc.t1.Mul(&sc.c1, g.a1)
	sc.k.Sub(&sc.k, &sc.t1)
	sc.t1.Mul(&sc.c2, g.a2)
	sc.k.Sub(&sc.k, &sc.t1)
	neg1 = sc.k.Sign() < 0

	sc.t1.Mul(&sc.c1, g.b1)
	sc.t2.Mul(&sc.c2, g.b2)
	sc.t1.Add(&sc.t1, &sc.t2)
	sc.t1.Neg(&sc.t1)
	neg2 = sc.t1.Sign() < 0

	fillLimbs(dst1, &sc.k)
	fillLimbs(dst2, &sc.t1)
	if sc.k.BitLen() > g.bits || sc.t1.BitLen() > g.bits {
		// Mathematically impossible for k < r with a reduced basis; a
		// failure here means the precomputed constants are corrupt.
		panic("curve: GLV subscalar exceeds bit bound")
	}
	return neg1, neg2
}

// fillLimbs writes |v| into dst as little-endian limbs (zero-padded).
func fillLimbs(dst []uint64, v *big.Int) {
	words := v.Bits()
	for i := range dst {
		if i < len(words) {
			dst[i] = uint64(words[i])
		} else {
			dst[i] = 0
		}
	}
}

// glvMinPoints gates the GLV path: below this size the decomposition
// overhead and doubled point array outweigh the saved windows.
const glvMinPoints = 64

// GLVMinPoints is the MSM size at and above which the endomorphism path
// kicks in, exported so op-count and memory models can mirror the gate.
const GLVMinPoints = glvMinPoints

// glvExpand builds the doubled point/limb arrays for the endomorphism MSM:
// entry i is ±Pᵢ (sign of k1ᵢ), entry n+i is ±φ(Pᵢ) (sign of k2ᵢ). The
// decomposition is embarrassingly parallel and deterministic, so the split
// cannot perturb the MSM result.
func glvExpand[E any](ctx context.Context, ops Ops[E], g *glvData, phi func(z, p *Affine[E]), points []Affine[E], scalars []ff.Element, fr *ff.Field, threads int) ([]Affine[E], [][]uint64) {
	if len(points) != len(scalars) {
		panic("curve: MSM points/scalars length mismatch")
	}
	n := len(points)
	nl := fr.NumLimbs()
	pts2 := make([]Affine[E], 2*n)
	limbs2 := make([][]uint64, 2*n)
	backing := make([]uint64, 2*n*nl)
	for i := 0; i < 2*n; i++ {
		limbs2[i] = backing[i*nl : (i+1)*nl : (i+1)*nl]
	}
	_ = parallel.ChunksCtx(ctx, n, threads, func(lo, hi int) {
		var sc glvScratch
		var k big.Int
		var y E // hoisted: an in-loop E escapes through ops.Neg, once per point
		for i := lo; i < hi; i++ {
			fr.BigIntInto(&k, &scalars[i])
			neg1, neg2 := g.decompose(&k, &sc, limbs2[i], limbs2[n+i])
			pts2[i] = points[i]
			phi(&pts2[n+i], &points[i])
			if neg1 && !pts2[i].Inf {
				ops.Neg(&pts2[i].Y, &points[i].Y)
			}
			if neg2 && !pts2[n+i].Inf {
				ops.Neg(&y, &pts2[n+i].Y)
				pts2[n+i].Y = y
			}
		}
	})
	return pts2, limbs2
}
