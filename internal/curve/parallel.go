package curve

import "zkperf/internal/parallel"

// parallelChunks is a thin alias for parallel.Chunks so the curve kernels
// keep reading naturally; the shared fork-join implementation lives in
// internal/parallel, where the proving service worker pool and future
// kernels reuse it.
func parallelChunks(n, threads int, fn func(lo, hi int)) {
	parallel.Chunks(n, threads, fn)
}
