package curve

import "sync"

// parallelChunks splits [0, n) into contiguous chunks and runs fn on each
// with up to `threads` goroutines. threads ≤ 1 runs inline. Chunks are
// sized so every worker gets at most one — fn is expected to be coarse.
func parallelChunks(n, threads int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if threads <= 1 || n == 1 {
		fn(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
