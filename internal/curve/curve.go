package curve

import (
	"math/big"
	"sync"

	"zkperf/internal/ff"
	"zkperf/internal/tower"
)

// TwistType distinguishes the two sextic-twist shapes: a D(ivisive) twist
// has equation y² = x³ + b/ξ (BN254); an M(ultiplicative) twist has
// y² = x³ + b·ξ (BLS12-381). The pairing's untwisting map depends on it.
type TwistType int

const (
	// DTwist is the divisive twist, y² = x³ + b/ξ.
	DTwist TwistType = iota
	// MTwist is the multiplicative twist, y² = x³ + b·ξ.
	MTwist
)

// G1Affine, G1Jac, G2Affine and G2Jac are the concrete point types.
type (
	G1Affine = Affine[ff.Element]
	G1Jac    = Jac[ff.Element]
	G2Affine = Affine[tower.E2]
	G2Jac    = Jac[tower.E2]
)

// Curve bundles the fields, tower, twist and generators of one
// pairing-friendly curve, plus the pairing loop constants.
type Curve struct {
	Name string
	Fp   *ff.Field
	Fr   *ff.Field
	Tw   *tower.Tower

	B  ff.Element // G1 equation: y² = x³ + B
	B2 tower.E2   // G2 (twist) equation: y² = x³ + B2

	G1Gen G1Affine
	G2Gen G2Affine

	Twist TwistType

	// Pairing constants: the Miller loop count (6x+2 for BN, |x| for BLS)
	// and whether the curve parameter x is negative (BLS12-381).
	LoopCount *big.Int
	LoopNeg   bool
	IsBN      bool // BN curves append the two Frobenius line steps

	g1ops fpOps
	g2ops e2Ops

	// GLV endomorphism constants (β, λ, reduced lattice basis), derived
	// lazily on first MSM use and validated against the generators; see
	// glv.go.
	glvOnce sync.Once
	glv     *glvData
}

// fpOps adapts *ff.Field to the generic Ops interface.
type fpOps struct{ f *ff.Field }

func (o fpOps) Set(z, x *ff.Element)        { o.f.Set(z, x) }
func (o fpOps) SetZero(z *ff.Element)       { o.f.Zero(z) }
func (o fpOps) SetOne(z *ff.Element)        { o.f.One(z) }
func (o fpOps) Add(z, x, y *ff.Element)     { o.f.Add(z, x, y) }
func (o fpOps) Sub(z, x, y *ff.Element)     { o.f.Sub(z, x, y) }
func (o fpOps) Neg(z, x *ff.Element)        { o.f.Neg(z, x) }
func (o fpOps) Mul(z, x, y *ff.Element)     { o.f.Mul(z, x, y) }
func (o fpOps) Square(z, x *ff.Element)     { o.f.Square(z, x) }
func (o fpOps) Double(z, x *ff.Element)     { o.f.Double(z, x) }
func (o fpOps) Inverse(z, x *ff.Element)    { o.f.Inverse(z, x) }
func (o fpOps) IsZero(x *ff.Element) bool   { return o.f.IsZero(x) }
func (o fpOps) Equal(x, y *ff.Element) bool { return o.f.Equal(x, y) }

// e2Ops adapts *tower.Tower Fp2 arithmetic to the generic Ops interface.
type e2Ops struct{ t *tower.Tower }

func (o e2Ops) Set(z, x *tower.E2)        { o.t.E2Set(z, x) }
func (o e2Ops) SetZero(z *tower.E2)       { o.t.E2Zero(z) }
func (o e2Ops) SetOne(z *tower.E2)        { o.t.E2One(z) }
func (o e2Ops) Add(z, x, y *tower.E2)     { o.t.E2Add(z, x, y) }
func (o e2Ops) Sub(z, x, y *tower.E2)     { o.t.E2Sub(z, x, y) }
func (o e2Ops) Neg(z, x *tower.E2)        { o.t.E2Neg(z, x) }
func (o e2Ops) Mul(z, x, y *tower.E2)     { o.t.E2Mul(z, x, y) }
func (o e2Ops) Square(z, x *tower.E2)     { o.t.E2Square(z, x) }
func (o e2Ops) Double(z, x *tower.E2)     { o.t.E2Double(z, x) }
func (o e2Ops) Inverse(z, x *tower.E2)    { o.t.E2Inverse(z, x) }
func (o e2Ops) IsZero(x *tower.E2) bool   { return o.t.E2IsZero(x) }
func (o e2Ops) Equal(x, y *tower.E2) bool { return o.t.E2Equal(x, y) }

// NewBN254 constructs the BN254 (alt_bn128 / "BN128") curve context.
func NewBN254() *Curve {
	fp := ff.NewBN254Fp()
	fr := ff.NewBN254Fr()
	tw := tower.New(fp, 9, 1)
	c := &Curve{Name: "BN254", Fp: fp, Fr: fr, Tw: tw, Twist: DTwist, IsBN: true}
	c.g1ops = fpOps{fp}
	c.g2ops = e2Ops{tw}

	c.B = fp.MustElement("3")
	// B2 = 3/ξ for the D-twist.
	var three tower.E2
	fp.SetUint64(&three.A0, 3)
	var xiInv tower.E2
	tw.E2Inverse(&xiInv, &tw.Xi)
	tw.E2Mul(&c.B2, &three, &xiInv)

	c.G1Gen = G1Affine{
		X: fp.MustElement("1"),
		Y: fp.MustElement("2"),
	}
	c.G2Gen = G2Affine{
		X: tower.E2{
			A0: fp.MustElement("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
			A1: fp.MustElement("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
		},
		Y: tower.E2{
			A0: fp.MustElement("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
			A1: fp.MustElement("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
		},
	}

	// x = 4965661367192848881; Miller loop runs over 6x+2.
	x, _ := new(big.Int).SetString("4965661367192848881", 10)
	c.LoopCount = new(big.Int).Mul(x, big.NewInt(6))
	c.LoopCount.Add(c.LoopCount, big.NewInt(2))
	c.LoopNeg = false
	return c
}

// NewBLS12381 constructs the BLS12-381 curve context.
func NewBLS12381() *Curve {
	fp := ff.NewBLS12381Fp()
	fr := ff.NewBLS12381Fr()
	tw := tower.New(fp, 1, 1)
	c := &Curve{Name: "BLS12-381", Fp: fp, Fr: fr, Tw: tw, Twist: MTwist, IsBN: false}
	c.g1ops = fpOps{fp}
	c.g2ops = e2Ops{tw}

	c.B = fp.MustElement("4")
	// B2 = 4·ξ = 4(1+i) for the M-twist.
	var four tower.E2
	fp.SetUint64(&four.A0, 4)
	tw.E2Mul(&c.B2, &four, &tw.Xi)

	c.G1Gen = G1Affine{
		X: fp.MustElement("3685416753713387016781088315183077757961620795782546409894578378688607592378376318836054947676345821548104185464507"),
		Y: fp.MustElement("1339506544944476473020471379941921221584933875938349620426543736416511423956333506472724655353366534992391756441569"),
	}
	c.G2Gen = G2Affine{
		X: tower.E2{
			A0: fp.MustElement("352701069587466618187139116011060144890029952792775240219908644239793785735715026873347600343865175952761926303160"),
			A1: fp.MustElement("3059144344244213709971259814753781636986470325476647558659373206291635324768958432433509563104347017837885763365758"),
		},
		Y: tower.E2{
			A0: fp.MustElement("1985150602287291935568054521177171638300868978215655730859378665066344726373823718423869104263333984641494340347905"),
			A1: fp.MustElement("927553665492332455747201965776037880757740193453592970025027978793976877002675564980949289727957565575433344219582"),
		},
	}

	// x = −0xd201000000010000; the Miller loop runs over |x| and the result
	// is conjugated.
	x, _ := new(big.Int).SetString("d201000000010000", 16)
	c.LoopCount = x
	c.LoopNeg = true
	return c
}

// NewCurve returns the curve context for name ("BN254"/"BN128" or
// "BLS12-381"/"BLS12381"). It returns nil for unknown names.
func NewCurve(name string) *Curve {
	switch name {
	case "BN254", "BN128", "bn254", "bn128":
		return NewBN254()
	case "BLS12-381", "BLS12381", "bls12-381", "bls12381":
		return NewBLS12381()
	}
	return nil
}

// ---------- G1 operations ----------

// G1Infinity sets p to the identity.
func (c *Curve) G1Infinity(p *G1Jac) { jacSetInfinity[ff.Element](c.g1ops, p) }

// G1IsInfinity reports whether p is the identity.
func (c *Curve) G1IsInfinity(p *G1Jac) bool { return jacIsInfinity[ff.Element](c.g1ops, p) }

// G1FromAffine lifts an affine point into Jacobian coordinates.
func (c *Curve) G1FromAffine(z *G1Jac, a *G1Affine) { fromAffine[ff.Element](c.g1ops, z, a) }

// G1ToAffine normalizes p to affine coordinates.
func (c *Curve) G1ToAffine(z *G1Affine, p *G1Jac) { toAffine[ff.Element](c.g1ops, z, p) }

// G1Add sets z = p + q.
func (c *Curve) G1Add(z, p, q *G1Jac) { jacAdd[ff.Element](c.g1ops, z, p, q) }

// G1AddAffine sets z = p + q for affine q.
func (c *Curve) G1AddAffine(z, p *G1Jac, q *G1Affine) { jacAddAffine[ff.Element](c.g1ops, z, p, q) }

// G1Double sets z = 2p.
func (c *Curve) G1Double(z, p *G1Jac) { jacDouble[ff.Element](c.g1ops, z, p) }

// G1Neg sets z = −p.
func (c *Curve) G1Neg(z, p *G1Jac) { jacNeg[ff.Element](c.g1ops, z, p) }

// G1NegAffine sets z = −p in affine coordinates.
func (c *Curve) G1NegAffine(z, p *G1Affine) {
	z.Inf = p.Inf
	c.Fp.Set(&z.X, &p.X)
	c.Fp.Neg(&z.Y, &p.Y)
}

// G1Equal reports whether p == q as curve points.
func (c *Curve) G1Equal(p, q *G1Jac) bool { return jacEqual[ff.Element](c.g1ops, p, q) }

// G1ScalarMulBig sets z = [k]p.
func (c *Curve) G1ScalarMulBig(z, p *G1Jac, k *big.Int) {
	jacScalarMulBig[ff.Element](c.g1ops, z, p, k)
}

// G1ScalarMul sets z = [k]p for a scalar-field element k.
func (c *Curve) G1ScalarMul(z, p *G1Jac, k *ff.Element) {
	c.G1ScalarMulBig(z, p, c.Fr.BigInt(k))
}

// G1IsOnCurve reports whether the affine point satisfies the G1 equation.
func (c *Curve) G1IsOnCurve(p *G1Affine) bool { return isOnCurve[ff.Element](c.g1ops, p, &c.B) }

// G1BatchToAffine converts Jacobian points to affine with one inversion.
func (c *Curve) G1BatchToAffine(dst []G1Affine, src []G1Jac) {
	batchToAffine[ff.Element](c.g1ops, dst, src)
}

// ---------- G2 operations ----------

// G2Infinity sets p to the identity.
func (c *Curve) G2Infinity(p *G2Jac) { jacSetInfinity[tower.E2](c.g2ops, p) }

// G2IsInfinity reports whether p is the identity.
func (c *Curve) G2IsInfinity(p *G2Jac) bool { return jacIsInfinity[tower.E2](c.g2ops, p) }

// G2FromAffine lifts an affine point into Jacobian coordinates.
func (c *Curve) G2FromAffine(z *G2Jac, a *G2Affine) { fromAffine[tower.E2](c.g2ops, z, a) }

// G2ToAffine normalizes p to affine coordinates.
func (c *Curve) G2ToAffine(z *G2Affine, p *G2Jac) { toAffine[tower.E2](c.g2ops, z, p) }

// G2Add sets z = p + q.
func (c *Curve) G2Add(z, p, q *G2Jac) { jacAdd[tower.E2](c.g2ops, z, p, q) }

// G2AddAffine sets z = p + q for affine q.
func (c *Curve) G2AddAffine(z, p *G2Jac, q *G2Affine) { jacAddAffine[tower.E2](c.g2ops, z, p, q) }

// G2Double sets z = 2p.
func (c *Curve) G2Double(z, p *G2Jac) { jacDouble[tower.E2](c.g2ops, z, p) }

// G2Neg sets z = −p.
func (c *Curve) G2Neg(z, p *G2Jac) { jacNeg[tower.E2](c.g2ops, z, p) }

// G2NegAffine sets z = −p in affine coordinates.
func (c *Curve) G2NegAffine(z, p *G2Affine) {
	z.Inf = p.Inf
	c.Tw.E2Set(&z.X, &p.X)
	c.Tw.E2Neg(&z.Y, &p.Y)
}

// G2Equal reports whether p == q as curve points.
func (c *Curve) G2Equal(p, q *G2Jac) bool { return jacEqual[tower.E2](c.g2ops, p, q) }

// G2ScalarMulBig sets z = [k]p.
func (c *Curve) G2ScalarMulBig(z, p *G2Jac, k *big.Int) {
	jacScalarMulBig[tower.E2](c.g2ops, z, p, k)
}

// G2ScalarMul sets z = [k]p for a scalar-field element k.
func (c *Curve) G2ScalarMul(z, p *G2Jac, k *ff.Element) {
	c.G2ScalarMulBig(z, p, c.Fr.BigInt(k))
}

// G2IsOnCurve reports whether the affine point satisfies the twist equation.
func (c *Curve) G2IsOnCurve(p *G2Affine) bool { return isOnCurve[tower.E2](c.g2ops, p, &c.B2) }

// G2BatchToAffine converts Jacobian points to affine with one inversion.
func (c *Curve) G2BatchToAffine(dst []G2Affine, src []G2Jac) {
	batchToAffine[tower.E2](c.g2ops, dst, src)
}
