package curve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"zkperf/internal/faultinject"
	"zkperf/internal/ff"
	"zkperf/internal/tower"
)

// The fixed-base table store. Generator tables are pure functions of the
// curve — the same ~7.4k points every process, every restart — so they are
// cached process-wide and, when a directory is configured (SetTableDir,
// wired from the serving layer's artifact directory), persisted to disk so
// the precomputation is paid once ever rather than once per boot.
//
// The failure model mirrors the provesvc artifact store (ZKARTv1): writes
// are crash-safe (temp file + fsync + atomic rename + directory fsync),
// every file carries a SHA-256 payload checksum, and anything invalid is
// quarantined to *.corrupt and rebuilt — a corrupt table would silently
// commit to wrong points, which is the worst possible failure for key
// generation.
//
// File format (little-endian):
//
//	magic   [8]byte  "ZKTBLv1\n"
//	sum     [32]byte sha256 of the payload (everything after the header)
//	payload:
//	  curve   u16 len + bytes     group  u8 (1|2)
//	  window  u8                  bits   u32 (scalar width)
//	  numWindows u32              rowLen u32
//	  points  u64 len + encoded affine points (WriteG1Slice/WriteG2Slice),
//	          flattened row-major: windows[w][d] at index w·rowLen+d
var tableMagic = [8]byte{'Z', 'K', 'T', 'B', 'L', 'v', '1', '\n'}

// errTableCorrupt tags validation failures that quarantine a table file.
var errTableCorrupt = errors.New("curve: corrupt table file")

// tableCache is the process-wide generator-table registry. The data is
// immutable once built; instances bind their own Ops adapter to it
// (FixedBaseTable), so operation counters attribute to the calling curve.
var tableCache struct {
	mu  sync.Mutex
	dir string
	g1  map[string]*fixedBaseData[ff.Element]
	g2  map[string]*fixedBaseData[tower.E2]
}

// TableStats counts fixed-base generator-table provenance for the
// `artifacts` stats block: every DiskLoad is a table build that did not
// have to re-run after a restart.
type TableStats struct {
	Builds      uint64 `json:"builds"`
	DiskLoads   uint64 `json:"disk_loads"`
	DiskWrites  uint64 `json:"disk_writes"`
	Quarantined uint64 `json:"quarantined"`
	WriteErrors uint64 `json:"write_errors"`
}

var tableCounters struct {
	builds      atomic.Uint64
	diskLoads   atomic.Uint64
	diskWrites  atomic.Uint64
	quarantined atomic.Uint64
	writeErrors atomic.Uint64
}

// ReadTableStats snapshots the process-wide table counters.
func ReadTableStats() TableStats {
	return TableStats{
		Builds:      tableCounters.builds.Load(),
		DiskLoads:   tableCounters.diskLoads.Load(),
		DiskWrites:  tableCounters.diskWrites.Load(),
		Quarantined: tableCounters.quarantined.Load(),
		WriteErrors: tableCounters.writeErrors.Load(),
	}
}

// SetTableDir configures (or, with "", disables) disk persistence for
// generator tables and clears the in-memory cache so subsequent lookups
// hit the new directory. It creates dir, sweeps stale *.tmp files from
// interrupted writes, and quarantines any *.zkt that fails validation, so
// startup never trusts a torn file. Tests use the cache clearing to
// simulate a process restart in-process.
func SetTableDir(dir string) error {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	tableCache.g1 = nil
	tableCache.g2 = nil
	tableCache.dir = ""
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("curve: table dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("curve: table dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(path) // a write that never reached its rename
		case strings.HasSuffix(name, ".zkt"):
			if _, err := tableReadValidated(path); err != nil {
				tableQuarantine(path)
			}
		}
	}
	tableCache.dir = dir
	return nil
}

// tablePath names the table file for one (curve, group) pair.
func tablePath(dir, curveName string, group int) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, strings.ToLower(curveName))
	return filepath.Join(dir, fmt.Sprintf("%s.g%d.zkt", clean, group))
}

// tableQuarantine renames a corrupt file out of the cache namespace so it
// is preserved for inspection but never considered again.
func tableQuarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		os.Remove(path)
	}
	tableCounters.quarantined.Add(1)
}

// tableReadValidated reads path and returns its payload after verifying
// the magic and checksum. Validation failures wrap errTableCorrupt.
func tableReadValidated(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(tableMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d-byte file shorter than header", errTableCorrupt, len(raw))
	}
	if !bytes.Equal(raw[:len(tableMagic)], tableMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", errTableCorrupt)
	}
	payload := raw[len(tableMagic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[len(tableMagic):len(tableMagic)+sha256.Size], sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errTableCorrupt)
	}
	return payload, nil
}

// tableHeader is the decoded fixed-size part of a table payload.
type tableHeader struct {
	curve      string
	group      int
	window     int
	bits       int
	numWindows int
	rowLen     int
}

func readTableHeader(r *bytes.Reader) (tableHeader, error) {
	var h tableHeader
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return h, err
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(r, name); err != nil {
		return h, err
	}
	h.curve = string(name)
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return h, err
	}
	h.group, h.window = int(b[0]), int(b[1])
	var u [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &u); err != nil {
		return h, err
	}
	h.bits, h.numWindows, h.rowLen = int(u[0]), int(u[1]), int(u[2])
	return h, nil
}

func writeTableHeader(w *bytes.Buffer, h tableHeader) {
	binary.Write(w, binary.LittleEndian, uint16(len(h.curve)))
	w.WriteString(h.curve)
	w.WriteByte(byte(h.group))
	w.WriteByte(byte(h.window))
	binary.Write(w, binary.LittleEndian, [3]uint32{uint32(h.bits), uint32(h.numWindows), uint32(h.rowLen)})
}

// headerMatches checks the decoded header against what this build would
// construct; a mismatch (stale window width, wrong curve) is treated the
// same as corruption — quarantine and rebuild.
func (h tableHeader) matches(want tableHeader) error {
	if h != want {
		return fmt.Errorf("%w: header mismatch (have %+v, want %+v)", errTableCorrupt, h, want)
	}
	return nil
}

// sliceWindows re-slices a flat row-major point array into per-window rows.
func sliceWindows[E any](flat []Affine[E], numWindows, rowLen int) ([][]Affine[E], error) {
	if len(flat) != numWindows*rowLen {
		return nil, fmt.Errorf("%w: %d points, want %d×%d", errTableCorrupt, len(flat), numWindows, rowLen)
	}
	windows := make([][]Affine[E], numWindows)
	for w := range windows {
		windows[w] = flat[w*rowLen : (w+1)*rowLen : (w+1)*rowLen]
	}
	return windows, nil
}

// tableSave persists payload crash-safely under path. Failures are
// counted; the in-memory table is unaffected.
func tableSave(path string, payload []byte) error {
	ctx := context.Background()
	sum := sha256.Sum256(payload)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	w := faultinject.LimitWriter(ctx, faultinject.PointTableWrite, f)
	if _, err = w.Write(tableMagic[:]); err == nil {
		if _, err = w.Write(sum[:]); err == nil {
			_, err = w.Write(payload)
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// The kill-between-write window: temp file durable, rename not yet
		// performed.
		err = faultinject.Point(ctx, faultinject.PointTableRename)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// g1GenData returns the G1 generator table data for c, in order of
// preference: process cache, disk, fresh build (persisted when a dir is
// configured). The cache lock covers the whole resolution — builds happen
// at most once per curve per process.
func g1GenData(c *Curve) *fixedBaseData[ff.Element] {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	if d, ok := tableCache.g1[c.Name]; ok {
		return d
	}
	want := tableHeader{
		curve: c.Name, group: 1, window: fixedBaseWindow, bits: c.Fr.Bits(),
		numWindows: (c.Fr.Bits() + fixedBaseWindow) / fixedBaseWindow,
		rowLen:     1 << (fixedBaseWindow - 1),
	}
	var data *fixedBaseData[ff.Element]
	if tableCache.dir != "" {
		path := tablePath(tableCache.dir, c.Name, 1)
		if payload, err := tableReadValidated(path); err == nil {
			d, derr := decodeG1Table(c, payload, want)
			if derr != nil {
				tableQuarantine(path)
			} else {
				tableCounters.diskLoads.Add(1)
				data = d
			}
		}
	}
	if data == nil {
		data = newFixedBaseData[ff.Element](c.g1ops, &c.G1Gen, c.Fr.Bits())
		tableCounters.builds.Add(1)
		if tableCache.dir != "" {
			var payload bytes.Buffer
			writeTableHeader(&payload, want)
			flat := make([]G1Affine, 0, want.numWindows*want.rowLen)
			for _, row := range data.windows {
				flat = append(flat, row...)
			}
			err := c.WriteG1Slice(&payload, flat)
			if err == nil {
				err = tableSave(tablePath(tableCache.dir, c.Name, 1), payload.Bytes())
			}
			if err != nil {
				tableCounters.writeErrors.Add(1)
			} else {
				tableCounters.diskWrites.Add(1)
			}
		}
	}
	if tableCache.g1 == nil {
		tableCache.g1 = make(map[string]*fixedBaseData[ff.Element])
	}
	tableCache.g1[c.Name] = data
	return data
}

// g2GenData is the G2 analogue of g1GenData.
func g2GenData(c *Curve) *fixedBaseData[tower.E2] {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	if d, ok := tableCache.g2[c.Name]; ok {
		return d
	}
	want := tableHeader{
		curve: c.Name, group: 2, window: fixedBaseWindow, bits: c.Fr.Bits(),
		numWindows: (c.Fr.Bits() + fixedBaseWindow) / fixedBaseWindow,
		rowLen:     1 << (fixedBaseWindow - 1),
	}
	var data *fixedBaseData[tower.E2]
	if tableCache.dir != "" {
		path := tablePath(tableCache.dir, c.Name, 2)
		if payload, err := tableReadValidated(path); err == nil {
			d, derr := decodeG2Table(c, payload, want)
			if derr != nil {
				tableQuarantine(path)
			} else {
				tableCounters.diskLoads.Add(1)
				data = d
			}
		}
	}
	if data == nil {
		data = newFixedBaseData[tower.E2](c.g2ops, &c.G2Gen, c.Fr.Bits())
		tableCounters.builds.Add(1)
		if tableCache.dir != "" {
			var payload bytes.Buffer
			writeTableHeader(&payload, want)
			flat := make([]G2Affine, 0, want.numWindows*want.rowLen)
			for _, row := range data.windows {
				flat = append(flat, row...)
			}
			err := c.WriteG2Slice(&payload, flat)
			if err == nil {
				err = tableSave(tablePath(tableCache.dir, c.Name, 2), payload.Bytes())
			}
			if err != nil {
				tableCounters.writeErrors.Add(1)
			} else {
				tableCounters.diskWrites.Add(1)
			}
		}
	}
	if tableCache.g2 == nil {
		tableCache.g2 = make(map[string]*fixedBaseData[tower.E2])
	}
	tableCache.g2[c.Name] = data
	return data
}

// decodeG1Table decodes and validates one persisted G1 table payload.
func decodeG1Table(c *Curve, payload []byte, want tableHeader) (*fixedBaseData[ff.Element], error) {
	r := bytes.NewReader(payload)
	h, err := readTableHeader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	if err := h.matches(want); err != nil {
		return nil, err
	}
	if err := faultinject.Point(context.Background(), faultinject.PointTableLoad); err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	flat, err := c.ReadG1Slice(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	windows, err := sliceWindows(flat, h.numWindows, h.rowLen)
	if err != nil {
		return nil, err
	}
	// The first entry is [1]·Gen: a checksum-valid file written for a
	// different generator must still never be trusted.
	if flat[0].Inf || !c.Fp.Equal(&flat[0].X, &c.G1Gen.X) || !c.Fp.Equal(&flat[0].Y, &c.G1Gen.Y) {
		return nil, fmt.Errorf("%w: table base is not the G1 generator", errTableCorrupt)
	}
	return &fixedBaseData[ff.Element]{window: h.window, bits: h.bits, windows: windows}, nil
}

// decodeG2Table decodes and validates one persisted G2 table payload.
func decodeG2Table(c *Curve, payload []byte, want tableHeader) (*fixedBaseData[tower.E2], error) {
	r := bytes.NewReader(payload)
	h, err := readTableHeader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	if err := h.matches(want); err != nil {
		return nil, err
	}
	if err := faultinject.Point(context.Background(), faultinject.PointTableLoad); err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	flat, err := c.ReadG2Slice(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errTableCorrupt, err)
	}
	windows, err := sliceWindows(flat, h.numWindows, h.rowLen)
	if err != nil {
		return nil, err
	}
	if flat[0].Inf || !c.Tw.E2Equal(&flat[0].X, &c.G2Gen.X) || !c.Tw.E2Equal(&flat[0].Y, &c.G2Gen.Y) {
		return nil, fmt.Errorf("%w: table base is not the G2 generator", errTableCorrupt)
	}
	return &fixedBaseData[tower.E2]{window: h.window, bits: h.bits, windows: windows}, nil
}

// G1GenTable returns the (cached, persisted) fixed-base table over the G1
// generator, bound to this curve instance's field ops.
func (c *Curve) G1GenTable() *G1Table {
	return &G1Table{c: c, tab: &FixedBaseTable[ff.Element]{ops: c.g1ops, data: g1GenData(c)}}
}

// G2GenTable returns the (cached, persisted) fixed-base table over the G2
// generator, bound to this curve instance's field ops.
func (c *Curve) G2GenTable() *G2Table {
	return &G2Table{c: c, tab: &FixedBaseTable[tower.E2]{ops: c.g2ops, data: g2GenData(c)}}
}
