package curve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zkperf/internal/faultinject"
	"zkperf/internal/ff"
)

// withTableDir points the process-wide table store at a fresh directory
// for one test and restores the memory-only default afterwards.
func withTableDir(t *testing.T, dir string) {
	t.Helper()
	if err := SetTableDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { SetTableDir("") })
}

// tableMulChecks verifies a table against plain double-and-add for a few
// random scalars.
func tableMulChecks(t *testing.T, c *Curve, tab *G1Table, seed uint64) {
	t.Helper()
	rng := ff.NewRNG(seed)
	var k ff.Element
	for i := 0; i < 4; i++ {
		c.Fr.Random(&k, rng)
		var got, want G1Jac
		tab.Mul(&got, &k)
		c.G1FromAffine(&want, &c.G1Gen)
		c.G1ScalarMul(&want, &want, &k)
		if !c.G1Equal(&got, &want) {
			t.Fatalf("%s: table mul != scalar mul", c.Name)
		}
	}
}

// TestGenTableRoundTrip: building persists the table; a "restart"
// (SetTableDir clears the memory cache) loads it from disk without
// rebuilding, and the loaded table computes identical results.
func TestGenTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	withTableDir(t, dir)
	c := NewBN254()

	before := ReadTableStats()
	tab := c.G1GenTable()
	tableMulChecks(t, c, tab, 7)
	mid := ReadTableStats()
	if mid.Builds != before.Builds+1 || mid.DiskWrites != before.DiskWrites+1 {
		t.Fatalf("cold boot: builds %d→%d writes %d→%d, want +1/+1",
			before.Builds, mid.Builds, before.DiskWrites, mid.DiskWrites)
	}
	if _, err := os.Stat(tablePath(dir, c.Name, 1)); err != nil {
		t.Fatalf("persisted table missing: %v", err)
	}

	// Warm boot: fresh memory cache, same directory — zero rebuilds.
	if err := SetTableDir(dir); err != nil {
		t.Fatal(err)
	}
	tab2 := c.G1GenTable()
	tableMulChecks(t, c, tab2, 7)
	after := ReadTableStats()
	if after.Builds != mid.Builds {
		t.Fatalf("warm boot rebuilt the table: builds %d→%d, want 0 new", mid.Builds, after.Builds)
	}
	if after.DiskLoads != mid.DiskLoads+1 {
		t.Fatalf("warm boot disk loads %d→%d, want +1", mid.DiskLoads, after.DiskLoads)
	}

	// G2 follows the same path.
	g2b := ReadTableStats()
	c.G2GenTable()
	if err := SetTableDir(dir); err != nil {
		t.Fatal(err)
	}
	c.G2GenTable()
	g2a := ReadTableStats()
	if g2a.Builds != g2b.Builds+1 || g2a.DiskLoads != g2b.DiskLoads+1 {
		t.Fatalf("G2 round trip: builds +%d loads +%d, want +1/+1",
			g2a.Builds-g2b.Builds, g2a.DiskLoads-g2b.DiskLoads)
	}
}

// TestGenTableCorruptQuarantined: a bit-flipped table file must be
// quarantined to *.corrupt and rebuilt, never trusted.
func TestGenTableCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	withTableDir(t, dir)
	c := NewBN254()
	c.G1GenTable()

	path := tablePath(dir, c.Name, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	before := ReadTableStats()
	// Restart over the corrupt file: the startup scan quarantines it and
	// the next lookup rebuilds and re-persists.
	if err := SetTableDir(dir); err != nil {
		t.Fatal(err)
	}
	tab := c.G1GenTable()
	tableMulChecks(t, c, tab, 11)
	after := ReadTableStats()
	if after.Quarantined != before.Quarantined+1 {
		t.Fatalf("quarantined %d→%d, want +1", before.Quarantined, after.Quarantined)
	}
	if after.Builds != before.Builds+1 {
		t.Fatalf("builds %d→%d, want +1 (rebuild after quarantine)", before.Builds, after.Builds)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not preserved: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("rebuilt table not re-persisted: %v", err)
	}
}

// TestGenTableTornWrite: a write truncated mid-payload (the process dying
// with the temp file half-written) must leave no *.zkt behind; the table
// still serves from memory and the next clean boot rebuilds.
func TestGenTableTornWrite(t *testing.T) {
	dir := t.TempDir()
	withTableDir(t, dir)
	disarm := faultinject.Arm(faultinject.PointTableWrite,
		faultinject.Fault{Kind: faultinject.KindPartialWrite, Bytes: 64})
	defer disarm()

	c := NewBN254()
	before := ReadTableStats()
	tab := c.G1GenTable()
	tableMulChecks(t, c, tab, 13)
	after := ReadTableStats()
	if after.WriteErrors != before.WriteErrors+1 {
		t.Fatalf("write errors %d→%d, want +1", before.WriteErrors, after.WriteErrors)
	}
	if after.DiskWrites != before.DiskWrites {
		t.Fatalf("torn write counted as a disk write")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".zkt") {
			t.Fatalf("torn write left a table file: %s", ent.Name())
		}
	}
}

// TestGenTableRenameCrash: dying between the durable temp write and the
// rename leaves only a *.tmp, which the next boot sweeps before
// rebuilding.
func TestGenTableRenameCrash(t *testing.T) {
	dir := t.TempDir()
	withTableDir(t, dir)
	disarm := faultinject.Arm(faultinject.PointTableRename,
		faultinject.Fault{Kind: faultinject.KindError, Count: 1})
	defer disarm()

	c := NewBN254()
	c.G1GenTable()
	if _, err := os.Stat(tablePath(dir, c.Name, 1)); !os.IsNotExist(err) {
		t.Fatalf("rename-crash still produced a final file (err=%v)", err)
	}

	// Reboot: stray *.tmp swept, table rebuilt and persisted cleanly.
	if err := SetTableDir(dir); err != nil {
		t.Fatal(err)
	}
	c.G1GenTable()
	if _, err := os.Stat(tablePath(dir, c.Name, 1)); err != nil {
		t.Fatalf("table not persisted after reboot: %v", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("stale temp files survived the reboot sweep: %v", tmps)
	}
}

// TestGenTableCacheSharing: two instances of the same curve share one
// table build; a different curve gets its own.
func TestGenTableCacheSharing(t *testing.T) {
	withTableDir(t, t.TempDir())
	before := ReadTableStats()
	NewBN254().G1GenTable()
	NewBN254().G1GenTable()
	mid := ReadTableStats()
	if mid.Builds != before.Builds+1 {
		t.Fatalf("same-curve instances built %d tables, want 1", mid.Builds-before.Builds)
	}
	tab := NewBLS12381().G1GenTable()
	after := ReadTableStats()
	if after.Builds != mid.Builds+1 {
		t.Fatalf("distinct curve did not build its own table")
	}
	tableMulChecks(t, NewBLS12381(), tab, 17)
}
