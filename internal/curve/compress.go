package curve

import (
	"fmt"
	"io"

	"zkperf/internal/ff"
)

// Compressed point encoding: the paper's Key Takeaway 2 suggests point
// compression (citing Gorla & Massierer) to reduce the memory traffic of
// the key-heavy stages. A compressed G1 point stores only the x coordinate
// plus one parity bit for y, halving the serialized size; decompression
// recovers y with one square root (y² = x³ + b).
//
// The ablation benchmark compares zkey sizes and (de)serialization time
// between the two encodings.

// Compressed-point flag byte values.
const (
	flagInfinity = 0
	flagYEven    = 2
	flagYOdd     = 3
)

// G1CompressedLen returns the byte length of a compressed G1 encoding.
func (c *Curve) G1CompressedLen() int { return 1 + c.Fp.ByteLen() }

// G1Compress encodes p as a flag byte plus the x coordinate. The flag
// carries the parity of the canonical representation of y.
func (c *Curve) G1Compress(p *G1Affine) []byte {
	out := make([]byte, c.G1CompressedLen())
	if p.Inf {
		out[0] = flagInfinity
		return out
	}
	yBytes := c.Fp.Bytes(&p.Y)
	if yBytes[len(yBytes)-1]&1 == 0 {
		out[0] = flagYEven
	} else {
		out[0] = flagYOdd
	}
	copy(out[1:], c.Fp.Bytes(&p.X))
	return out
}

// G1Decompress recovers a point from its compressed encoding, solving
// y² = x³ + b and selecting the root with the recorded parity.
func (c *Curve) G1Decompress(p *G1Affine, data []byte) error {
	if len(data) != c.G1CompressedLen() {
		return fmt.Errorf("curve: compressed G1 length %d, want %d", len(data), c.G1CompressedLen())
	}
	switch data[0] {
	case flagInfinity:
		*p = G1Affine{Inf: true}
		return nil
	case flagYEven, flagYOdd:
	default:
		return fmt.Errorf("curve: invalid compression flag %d", data[0])
	}
	p.Inf = false
	c.Fp.SetBytes(&p.X, data[1:])
	// y² = x³ + b
	var y2 ff.Element
	c.Fp.Square(&y2, &p.X)
	c.Fp.Mul(&y2, &y2, &p.X)
	c.Fp.Add(&y2, &y2, &c.B)
	if !c.Fp.Sqrt(&p.Y, &y2) {
		return fmt.Errorf("curve: x coordinate is not on the curve")
	}
	wantOdd := data[0] == flagYOdd
	yBytes := c.Fp.Bytes(&p.Y)
	if (yBytes[len(yBytes)-1]&1 == 1) != wantOdd {
		c.Fp.Neg(&p.Y, &p.Y)
	}
	return nil
}

// WriteG1SliceCompressed writes a length-prefixed compressed point array.
func (c *Curve) WriteG1SliceCompressed(w io.Writer, ps []G1Affine) error {
	if err := writeU64(w, uint64(len(ps))); err != nil {
		return err
	}
	for i := range ps {
		if _, err := w.Write(c.G1Compress(&ps[i])); err != nil {
			return err
		}
	}
	return nil
}

// ReadG1SliceCompressed reads a length-prefixed compressed point array,
// decompressing (and thereby validating) every point.
func (c *Curve) ReadG1SliceCompressed(r io.Reader) ([]G1Affine, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	out := make([]G1Affine, n)
	buf := make([]byte, c.G1CompressedLen())
	for i := range out {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if err := c.G1Decompress(&out[i], buf); err != nil {
			return nil, err
		}
	}
	return out, nil
}
