package curve

import (
	"math/big"
	"testing"
	"testing/quick"

	"zkperf/internal/ff"
)

// Property-based tests on the group laws the protocol depends on.

// TestQuickScalarMulHomomorphism: [a+b]G == [a]G + [b]G and
// [a·b]G == [a]([b]G) for random scalars.
func TestQuickScalarMulHomomorphism(t *testing.T) {
	c := NewBN254()
	var g G1Jac
	c.G1FromAffine(&g, &c.G1Gen)
	prop := func(seed uint64) bool {
		rng := ff.NewRNG(seed)
		var a, b, apb, ab ff.Element
		c.Fr.Random(&a, rng)
		c.Fr.Random(&b, rng)
		c.Fr.Add(&apb, &a, &b)
		c.Fr.Mul(&ab, &a, &b)

		var ag, bg, sum, direct G1Jac
		c.G1ScalarMul(&ag, &g, &a)
		c.G1ScalarMul(&bg, &g, &b)
		c.G1Add(&sum, &ag, &bg)
		c.G1ScalarMul(&direct, &g, &apb)
		if !c.G1Equal(&sum, &direct) {
			return false
		}
		var nested, flat G1Jac
		c.G1ScalarMul(&nested, &bg, &a)
		c.G1ScalarMul(&flat, &g, &ab)
		return c.G1Equal(&nested, &flat)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestQuickAdditionCommutativeAssociative over random multiples of G.
func TestQuickAdditionLaws(t *testing.T) {
	c := NewBN254()
	var g G1Jac
	c.G1FromAffine(&g, &c.G1Gen)
	prop := func(ka, kb, kc uint32) bool {
		var a, b, cc G1Jac
		c.G1ScalarMulBig(&a, &g, big.NewInt(int64(ka)+1))
		c.G1ScalarMulBig(&b, &g, big.NewInt(int64(kb)+1))
		c.G1ScalarMulBig(&cc, &g, big.NewInt(int64(kc)+1))

		var ab, ba G1Jac
		c.G1Add(&ab, &a, &b)
		c.G1Add(&ba, &b, &a)
		if !c.G1Equal(&ab, &ba) {
			return false
		}
		var abc1, abc2, t1 G1Jac
		c.G1Add(&t1, &a, &b)
		c.G1Add(&abc1, &t1, &cc)
		c.G1Add(&t1, &b, &cc)
		c.G1Add(&abc2, &a, &t1)
		return c.G1Equal(&abc1, &abc2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickPointsStayOnCurve: all group operations preserve the curve
// equation.
func TestQuickPointsStayOnCurve(t *testing.T) {
	c := NewBLS12381()
	var g G1Jac
	c.G1FromAffine(&g, &c.G1Gen)
	prop := func(k uint32) bool {
		var p G1Jac
		c.G1ScalarMulBig(&p, &g, big.NewInt(int64(k)))
		var aff G1Affine
		c.G1ToAffine(&aff, &p)
		return c.G1IsOnCurve(&aff)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickMSMLinearity: MSM(points, a·s) == [a]·MSM(points, s).
func TestQuickMSMLinearity(t *testing.T) {
	c := NewBN254()
	points, scalars := msmTestVectors(c, 16, 55)
	prop := func(seed uint64) bool {
		rng := ff.NewRNG(seed)
		var a ff.Element
		c.Fr.Random(&a, rng)
		scaled := make([]ff.Element, len(scalars))
		for i := range scalars {
			c.Fr.Mul(&scaled[i], &scalars[i], &a)
		}
		lhs := c.G1MSM(points, scaled, 1)
		base := c.G1MSM(points, scalars, 1)
		var rhs G1Jac
		c.G1ScalarMul(&rhs, &base, &a)
		return c.G1Equal(&lhs, &rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
