// Package curve implements the elliptic-curve groups G1 and G2 of the
// BN254 and BLS12-381 pairing-friendly curves: affine and Jacobian point
// arithmetic, scalar multiplication, and Pippenger multi-scalar
// multiplication (MSM) — the dominant kernel of the Groth16 setup and
// proving stages that the paper characterizes.
//
// The group law is written once, generically over a coordinate-field
// adapter (Ops), and instantiated for Fp (G1) and Fp2 (G2). Both curves
// have a = 0, so the a=0 short-Weierstrass Jacobian formulas apply.
package curve

import "math/big"

// Ops is the coordinate-field adapter the generic group law is written
// against. It is implemented by fpOps (base field, G1) and e2Ops (quadratic
// extension, G2).
type Ops[E any] interface {
	Set(z, x *E)
	SetZero(z *E)
	SetOne(z *E)
	Add(z, x, y *E)
	Sub(z, x, y *E)
	Neg(z, x *E)
	Mul(z, x, y *E)
	Square(z, x *E)
	Double(z, x *E)
	Inverse(z, x *E)
	IsZero(x *E) bool
	Equal(x, y *E) bool
}

// Affine is a point in affine coordinates. The zero value is NOT the
// identity; use Inf to mark the point at infinity.
type Affine[E any] struct {
	X, Y E
	Inf  bool
}

// Jac is a point in Jacobian projective coordinates (X/Z², Y/Z³).
// Z == 0 encodes the point at infinity.
type Jac[E any] struct {
	X, Y, Z E
}

// jacSetInfinity sets p to the identity.
func jacSetInfinity[E any](ops Ops[E], p *Jac[E]) {
	ops.SetOne(&p.X)
	ops.SetOne(&p.Y)
	ops.SetZero(&p.Z)
}

// jacIsInfinity reports whether p is the identity.
func jacIsInfinity[E any](ops Ops[E], p *Jac[E]) bool { return ops.IsZero(&p.Z) }

// fromAffine lifts an affine point to Jacobian coordinates.
func fromAffine[E any](ops Ops[E], z *Jac[E], a *Affine[E]) {
	if a.Inf {
		jacSetInfinity(ops, z)
		return
	}
	ops.Set(&z.X, &a.X)
	ops.Set(&z.Y, &a.Y)
	ops.SetOne(&z.Z)
}

// toAffine normalizes a Jacobian point to affine coordinates (one field
// inversion).
func toAffine[E any](ops Ops[E], z *Affine[E], p *Jac[E]) {
	if jacIsInfinity(ops, p) {
		z.Inf = true
		return
	}
	z.Inf = false
	var zinv, zinv2, zinv3 E
	ops.Inverse(&zinv, &p.Z)
	ops.Square(&zinv2, &zinv)
	ops.Mul(&zinv3, &zinv2, &zinv)
	ops.Mul(&z.X, &p.X, &zinv2)
	ops.Mul(&z.Y, &p.Y, &zinv3)
}

// jacTemps holds the intermediates of one Jacobian group operation. The
// generic formulas call the coordinate field through the Ops interface,
// which escape analysis cannot see through, so every temporary passed by
// pointer is heap-allocated at function entry. Hot loops (MSM bucket
// accumulation runs millions of additions) route through the *T variants
// below, which draw temporaries from a caller-owned scratch instead; the
// plain wrappers keep the one-shot API and pay the allocation once.
type jacTemps[E any] struct{ v [14]E }

// jacDouble sets z = 2p using the a=0 dbl-2009-l formulas.
func jacDouble[E any](ops Ops[E], z, p *Jac[E]) {
	var tp jacTemps[E]
	jacDoubleT(ops, z, p, &tp)
}

// jacDoubleT is jacDouble drawing temporaries from tp.
func jacDoubleT[E any](ops Ops[E], z, p *Jac[E], tp *jacTemps[E]) {
	if jacIsInfinity(ops, p) {
		*z = *p
		return
	}
	a, b, c, d := &tp.v[0], &tp.v[1], &tp.v[2], &tp.v[3]
	e, f, t, t2 := &tp.v[4], &tp.v[5], &tp.v[6], &tp.v[7]
	z3 := &tp.v[8]
	ops.Square(a, &p.X) // A = X²
	ops.Square(b, &p.Y) // B = Y²
	ops.Square(c, b)    // C = B²
	// D = 2((X+B)² − A − C)
	ops.Add(t, &p.X, b)
	ops.Square(t, t)
	ops.Sub(t, t, a)
	ops.Sub(t, t, c)
	ops.Double(d, t)
	// E = 3A, F = E²
	ops.Double(e, a)
	ops.Add(e, e, a)
	ops.Square(f, e)
	// Z3 = 2·Y·Z (computed before X/Y in case z aliases p)
	ops.Mul(z3, &p.Y, &p.Z)
	ops.Double(z3, z3)
	// X3 = F − 2D
	ops.Double(t, d)
	ops.Sub(&z.X, f, t)
	// Y3 = E(D − X3) − 8C
	ops.Sub(t, d, &z.X)
	ops.Mul(t, e, t)
	ops.Double(t2, c)
	ops.Double(t2, t2)
	ops.Double(t2, t2)
	ops.Sub(&z.Y, t, t2)
	ops.Set(&z.Z, z3)
}

// jacAdd sets z = p + q using the add-2007-bl formulas, handling identity
// and doubling edge cases.
func jacAdd[E any](ops Ops[E], z, p, q *Jac[E]) {
	var tp jacTemps[E]
	jacAddT(ops, z, p, q, &tp)
}

// jacAddT is jacAdd drawing temporaries from tp.
func jacAddT[E any](ops Ops[E], z, p, q *Jac[E], tp *jacTemps[E]) {
	if jacIsInfinity(ops, p) {
		*z = *q
		return
	}
	if jacIsInfinity(ops, q) {
		*z = *p
		return
	}
	z1z1, z2z2, u1, u2 := &tp.v[0], &tp.v[1], &tp.v[2], &tp.v[3]
	s1, s2, h, i := &tp.v[4], &tp.v[5], &tp.v[6], &tp.v[7]
	j, r, v, t := &tp.v[8], &tp.v[9], &tp.v[10], &tp.v[11]
	t2, z3 := &tp.v[12], &tp.v[13]
	ops.Square(z1z1, &p.Z)
	ops.Square(z2z2, &q.Z)
	ops.Mul(u1, &p.X, z2z2)
	ops.Mul(u2, &q.X, z1z1)
	ops.Mul(t, &q.Z, z2z2)
	ops.Mul(s1, &p.Y, t)
	ops.Mul(t, &p.Z, z1z1)
	ops.Mul(s2, &q.Y, t)
	ops.Sub(h, u2, u1)
	ops.Sub(r, s2, s1)
	if ops.IsZero(h) {
		if ops.IsZero(r) {
			jacDoubleT(ops, z, p, tp)
			return
		}
		jacSetInfinity(ops, z)
		return
	}
	ops.Double(r, r) // r = 2(S2−S1)
	ops.Double(t, h)
	ops.Square(i, t) // I = (2H)²
	ops.Mul(j, h, i)
	ops.Mul(v, u1, i)
	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H — before X/Y for aliasing safety.
	ops.Add(z3, &p.Z, &q.Z)
	ops.Square(z3, z3)
	ops.Sub(z3, z3, z1z1)
	ops.Sub(z3, z3, z2z2)
	ops.Mul(z3, z3, h)
	// X3 = r² − J − 2V
	ops.Square(t, r)
	ops.Sub(t, t, j)
	ops.Double(t2, v)
	ops.Sub(&z.X, t, t2)
	// Y3 = r(V − X3) − 2·S1·J
	ops.Sub(t, v, &z.X)
	ops.Mul(t, r, t)
	ops.Mul(t2, s1, j)
	ops.Double(t2, t2)
	ops.Sub(&z.Y, t, t2)
	ops.Set(&z.Z, z3)
}

// jacAddAffine sets z = p + q for an affine q using the madd-2007-bl
// mixed-addition formulas (7M + 4S, vs 11M + 5S for the general add),
// handling identity and doubling edge cases.
func jacAddAffine[E any](ops Ops[E], z, p *Jac[E], q *Affine[E]) {
	var tp jacTemps[E]
	jacAddAffineT(ops, z, p, q, &tp)
}

// jacAddAffineT is jacAddAffine drawing temporaries from tp.
func jacAddAffineT[E any](ops Ops[E], z, p *Jac[E], q *Affine[E], tp *jacTemps[E]) {
	if q.Inf {
		*z = *p
		return
	}
	if jacIsInfinity(ops, p) {
		fromAffine(ops, z, q)
		return
	}
	z1z1, u2, s2, h := &tp.v[0], &tp.v[1], &tp.v[2], &tp.v[3]
	hh, i, j, r := &tp.v[4], &tp.v[5], &tp.v[6], &tp.v[7]
	v, t, t2 := &tp.v[8], &tp.v[9], &tp.v[10]
	z3, y1j := &tp.v[11], &tp.v[12]
	ops.Square(z1z1, &p.Z)
	ops.Mul(u2, &q.X, z1z1)
	ops.Mul(t, &p.Z, z1z1)
	ops.Mul(s2, &q.Y, t)
	ops.Sub(h, u2, &p.X)
	ops.Sub(r, s2, &p.Y)
	if ops.IsZero(h) {
		if ops.IsZero(r) {
			jacDoubleT(ops, z, p, tp)
			return
		}
		jacSetInfinity(ops, z)
		return
	}
	ops.Square(hh, h)
	ops.Double(i, hh)
	ops.Double(i, i) // I = 4·HH
	ops.Mul(j, h, i)
	ops.Double(r, r) // r = 2(S2−Y1)
	ops.Mul(v, &p.X, i)
	// Z3 = (Z1+H)² − Z1Z1 − HH — before X/Y for aliasing safety.
	ops.Add(z3, &p.Z, h)
	ops.Square(z3, z3)
	ops.Sub(z3, z3, z1z1)
	ops.Sub(z3, z3, hh)
	// X3 = r² − J − 2V
	ops.Square(t, r)
	ops.Sub(t, t, j)
	ops.Double(t2, v)
	ops.Sub(t, t, t2)
	// Y3 = r(V − X3) − 2·Y1·J
	ops.Sub(t2, v, t)
	ops.Mul(t2, r, t2)
	ops.Mul(y1j, &p.Y, j)
	ops.Double(y1j, y1j)
	ops.Sub(&z.Y, t2, y1j)
	ops.Set(&z.X, t)
	ops.Set(&z.Z, z3)
}

// jacNeg sets z = −p.
func jacNeg[E any](ops Ops[E], z, p *Jac[E]) {
	ops.Set(&z.X, &p.X)
	ops.Neg(&z.Y, &p.Y)
	ops.Set(&z.Z, &p.Z)
}

// jacEqual reports whether p and q represent the same point.
func jacEqual[E any](ops Ops[E], p, q *Jac[E]) bool {
	pInf, qInf := jacIsInfinity(ops, p), jacIsInfinity(ops, q)
	if pInf || qInf {
		return pInf == qInf
	}
	// Cross-multiply: X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³.
	var z1z1, z2z2, l, r E
	ops.Square(&z1z1, &p.Z)
	ops.Square(&z2z2, &q.Z)
	ops.Mul(&l, &p.X, &z2z2)
	ops.Mul(&r, &q.X, &z1z1)
	if !ops.Equal(&l, &r) {
		return false
	}
	var z1c, z2c E
	ops.Mul(&z1c, &z1z1, &p.Z)
	ops.Mul(&z2c, &z2z2, &q.Z)
	ops.Mul(&l, &p.Y, &z2c)
	ops.Mul(&r, &q.Y, &z1c)
	return ops.Equal(&l, &r)
}

// jacScalarMulBig sets z = [k]p for a non-negative big.Int scalar using
// left-to-right double-and-add.
func jacScalarMulBig[E any](ops Ops[E], z, p *Jac[E], k *big.Int) {
	var acc Jac[E]
	jacSetInfinity(ops, &acc)
	for i := k.BitLen() - 1; i >= 0; i-- {
		jacDouble(ops, &acc, &acc)
		if k.Bit(i) == 1 {
			jacAdd(ops, &acc, &acc, p)
		}
	}
	*z = acc
}

// isOnCurve reports whether the affine point satisfies y² = x³ + b.
func isOnCurve[E any](ops Ops[E], p *Affine[E], b *E) bool {
	if p.Inf {
		return true
	}
	var y2, x3 E
	ops.Square(&y2, &p.Y)
	ops.Square(&x3, &p.X)
	ops.Mul(&x3, &x3, &p.X)
	ops.Add(&x3, &x3, b)
	return ops.Equal(&y2, &x3)
}

// batchToAffine converts a slice of Jacobian points to affine form with a
// single batch inversion (3 multiplications per point plus one inversion,
// instead of one inversion per point).
func batchToAffine[E any](ops Ops[E], dst []Affine[E], src []Jac[E]) {
	n := len(src)
	if len(dst) != n {
		panic("curve: batchToAffine length mismatch")
	}
	zs := make([]E, n)
	for i := range src {
		ops.Set(&zs[i], &src[i].Z)
	}
	// Montgomery batch inversion over the coordinate field.
	prefix := make([]E, n)
	var acc E
	ops.SetOne(&acc)
	for i := 0; i < n; i++ {
		ops.Set(&prefix[i], &acc)
		if !ops.IsZero(&zs[i]) {
			ops.Mul(&acc, &acc, &zs[i])
		}
	}
	var inv, zinv, tmp, zinv2, zinv3 E
	ops.Inverse(&inv, &acc)
	for i := n - 1; i >= 0; i-- {
		if ops.IsZero(&zs[i]) {
			dst[i].Inf = true
			continue
		}
		ops.Mul(&zinv, &inv, &prefix[i])
		ops.Mul(&inv, &inv, &zs[i])
		dst[i].Inf = false
		ops.Square(&zinv2, &zinv)
		ops.Mul(&zinv3, &zinv2, &zinv)
		ops.Mul(&tmp, &src[i].X, &zinv2)
		ops.Set(&dst[i].X, &tmp)
		ops.Mul(&tmp, &src[i].Y, &zinv3)
		ops.Set(&dst[i].Y, &tmp)
	}
}
