package curve

import (
	"fmt"
	"io"

	"zkperf/internal/ff"
)

// Point serialization: uncompressed affine encoding with a leading flag
// byte (0 = infinity, 1 = finite), then big-endian X and Y coordinates.
// G2 coordinates serialize as A0 then A1 for each of X and Y.

// G1Bytes returns the canonical encoding of p.
func (c *Curve) G1Bytes(p *G1Affine) []byte {
	n := c.Fp.ByteLen()
	out := make([]byte, 1+2*n)
	if p.Inf {
		return out
	}
	out[0] = 1
	copy(out[1:1+n], c.Fp.Bytes(&p.X))
	copy(out[1+n:], c.Fp.Bytes(&p.Y))
	return out
}

// G1SetBytes decodes p from data, validating that the point is on the
// curve.
func (c *Curve) G1SetBytes(p *G1Affine, data []byte) error {
	n := c.Fp.ByteLen()
	if len(data) != 1+2*n {
		return fmt.Errorf("curve: G1 encoding length %d, want %d", len(data), 1+2*n)
	}
	if data[0] == 0 {
		*p = G1Affine{Inf: true}
		return nil
	}
	p.Inf = false
	c.Fp.SetBytes(&p.X, data[1:1+n])
	c.Fp.SetBytes(&p.Y, data[1+n:])
	if !c.G1IsOnCurve(p) {
		return fmt.Errorf("curve: decoded G1 point not on curve")
	}
	return nil
}

// G1EncodedLen returns the byte length of a G1 encoding.
func (c *Curve) G1EncodedLen() int { return 1 + 2*c.Fp.ByteLen() }

// G2Bytes returns the canonical encoding of p.
func (c *Curve) G2Bytes(p *G2Affine) []byte {
	n := c.Fp.ByteLen()
	out := make([]byte, 1+4*n)
	if p.Inf {
		return out
	}
	out[0] = 1
	copy(out[1:], c.Fp.Bytes(&p.X.A0))
	copy(out[1+n:], c.Fp.Bytes(&p.X.A1))
	copy(out[1+2*n:], c.Fp.Bytes(&p.Y.A0))
	copy(out[1+3*n:], c.Fp.Bytes(&p.Y.A1))
	return out
}

// G2SetBytes decodes p from data, validating curve membership.
func (c *Curve) G2SetBytes(p *G2Affine, data []byte) error {
	n := c.Fp.ByteLen()
	if len(data) != 1+4*n {
		return fmt.Errorf("curve: G2 encoding length %d, want %d", len(data), 1+4*n)
	}
	if data[0] == 0 {
		*p = G2Affine{Inf: true}
		return nil
	}
	p.Inf = false
	c.Fp.SetBytes(&p.X.A0, data[1:1+n])
	c.Fp.SetBytes(&p.X.A1, data[1+n:1+2*n])
	c.Fp.SetBytes(&p.Y.A0, data[1+2*n:1+3*n])
	c.Fp.SetBytes(&p.Y.A1, data[1+3*n:])
	if !c.G2IsOnCurve(p) {
		return fmt.Errorf("curve: decoded G2 point not on curve")
	}
	return nil
}

// G2EncodedLen returns the byte length of a G2 encoding.
func (c *Curve) G2EncodedLen() int { return 1 + 4*c.Fp.ByteLen() }

// WriteG1Slice writes a length-prefixed G1 point array.
func (c *Curve) WriteG1Slice(w io.Writer, ps []G1Affine) error {
	if err := writeU64(w, uint64(len(ps))); err != nil {
		return err
	}
	for i := range ps {
		if _, err := w.Write(c.G1Bytes(&ps[i])); err != nil {
			return err
		}
	}
	return nil
}

// sliceAllocCap bounds the eager allocation for a length-prefixed array
// read: an attacker-controlled u64 prefix must never size a make() call
// directly, so readers pre-allocate at most this many elements and grow
// by appending as real data actually arrives.
const sliceAllocCap = 1 << 16

// prealloc clamps an untrusted declared length to a safe initial
// capacity.
func prealloc(n uint64) int {
	if n > sliceAllocCap {
		return sliceAllocCap
	}
	return int(n)
}

// ReadG1Slice reads a length-prefixed G1 point array.
func (c *Curve) ReadG1Slice(r io.Reader) ([]G1Affine, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	out := make([]G1Affine, 0, prealloc(n))
	buf := make([]byte, c.G1EncodedLen())
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var p G1Affine
		if err := c.G1SetBytes(&p, buf); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteG2Slice writes a length-prefixed G2 point array.
func (c *Curve) WriteG2Slice(w io.Writer, ps []G2Affine) error {
	if err := writeU64(w, uint64(len(ps))); err != nil {
		return err
	}
	for i := range ps {
		if _, err := w.Write(c.G2Bytes(&ps[i])); err != nil {
			return err
		}
	}
	return nil
}

// ReadG2Slice reads a length-prefixed G2 point array.
func (c *Curve) ReadG2Slice(r io.Reader) ([]G2Affine, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	out := make([]G2Affine, 0, prealloc(n))
	buf := make([]byte, c.G2EncodedLen())
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var p G2Affine
		if err := c.G2SetBytes(&p, buf); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteFrSlice writes a length-prefixed scalar array.
func WriteFrSlice(w io.Writer, fr *ff.Field, xs []ff.Element) error {
	if err := writeU64(w, uint64(len(xs))); err != nil {
		return err
	}
	for i := range xs {
		if _, err := w.Write(fr.Bytes(&xs[i])); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrSlice reads a length-prefixed scalar array.
func ReadFrSlice(r io.Reader, fr *ff.Field) ([]ff.Element, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	out := make([]ff.Element, 0, prealloc(n))
	buf := make([]byte, fr.ByteLen())
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var e ff.Element
		fr.SetBytes(&e, buf)
		out = append(out, e)
	}
	return out, nil
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
