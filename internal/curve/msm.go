package curve

import (
	"context"
	"runtime"
	"sync"

	"zkperf/internal/ff"
	"zkperf/internal/telemetry"
	"zkperf/internal/tower"
)

// Multi-scalar multiplication (MSM): computes Σ kᵢ·Pᵢ with Pippenger's
// bucket algorithm. MSM dominates the Groth16 setup and proving stages —
// it is one of the two kernels (with the NTT) that hardware accelerators
// such as PipeZK target — so this implementation mirrors the structure of
// production libraries: windowed signed-digit-free bucketing with the
// window width chosen from the instance size, and optional parallelism
// across windows.

// msmWindowSize picks the Pippenger window width c for n points. The
// classic cost model minimizes n·⌈b/c⌉ + ⌈b/c⌉·2^c additions.
func msmWindowSize(n int) int {
	switch {
	case n < 8:
		return 2
	case n < 32:
		return 3
	case n < 128:
		return 5
	case n < 1024:
		return 7
	case n < 8192:
		return 9
	case n < 1<<17:
		return 11
	case n < 1<<21:
		return 13
	default:
		return 15
	}
}

// scalarDigits extracts the w-th c-bit window digit from a canonical
// little-endian limb scalar.
func windowDigit(limbs []uint64, w, c int) int {
	bitPos := w * c
	limbIdx := bitPos >> 6
	if limbIdx >= len(limbs) {
		return 0
	}
	shift := uint(bitPos & 63)
	digit := limbs[limbIdx] >> shift
	if shift+uint(c) > 64 && limbIdx+1 < len(limbs) {
		digit |= limbs[limbIdx+1] << (64 - shift)
	}
	return int(digit & ((1 << uint(c)) - 1))
}

// msm is the generic Pippenger core. scalars are given as canonical
// little-endian limb arrays of uniform length; threads bounds the number
// of concurrent window workers (≤ 1 disables parallelism). Cancellation
// is checked at window boundaries: once ctx is done no further window is
// processed, and the (partial) result must be discarded by the caller.
func msm[E any](ctx context.Context, ops Ops[E], points []Affine[E], scalars [][]uint64, scalarBits, threads int) Jac[E] {
	n := len(points)
	var result Jac[E]
	jacSetInfinity(ops, &result)
	if n == 0 {
		return result
	}
	if n != len(scalars) {
		panic("curve: MSM points/scalars length mismatch")
	}
	c := msmWindowSize(n)
	numWindows := (scalarBits + c - 1) / c
	windowSums := make([]Jac[E], numWindows)

	processWindow := func(w int) {
		buckets := make([]Jac[E], 1<<uint(c))
		occupied := make([]bool, 1<<uint(c))
		for i := range buckets {
			jacSetInfinity(ops, &buckets[i])
		}
		for i := 0; i < n; i++ {
			d := windowDigit(scalars[i], w, c)
			if d == 0 {
				continue
			}
			jacAddAffine(ops, &buckets[d], &buckets[d], &points[i])
			occupied[d] = true
		}
		// Running-sum trick: Σ d·bucket[d] via two passes of additions.
		var running, sum Jac[E]
		jacSetInfinity(ops, &running)
		jacSetInfinity(ops, &sum)
		for d := (1 << uint(c)) - 1; d >= 1; d-- {
			if occupied[d] {
				jacAdd(ops, &running, &running, &buckets[d])
			}
			jacAdd(ops, &sum, &sum, &running)
		}
		windowSums[w] = sum
	}

	if threads <= 1 || numWindows == 1 {
		for w := 0; w < numWindows; w++ {
			if ctx.Err() != nil {
				return result
			}
			processWindow(w)
		}
	} else {
		if threads > runtime.GOMAXPROCS(0)*4 {
			threads = runtime.GOMAXPROCS(0) * 4
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for w := range work {
					if ctx.Err() != nil {
						continue // drain remaining windows without work
					}
					processWindow(w)
				}
			}()
		}
		for w := 0; w < numWindows; w++ {
			work <- w
		}
		close(work)
		wg.Wait()
	}
	if ctx.Err() != nil {
		return result
	}

	// Combine windows: result = Σ_w 2^{cw} · windowSums[w], evaluated
	// Horner-style from the top window down.
	for w := numWindows - 1; w >= 0; w-- {
		if w != numWindows-1 {
			for b := 0; b < c; b++ {
				jacDouble(ops, &result, &result)
			}
		}
		jacAdd(ops, &result, &result, &windowSums[w])
	}
	return result
}

// frToLimbs converts scalar-field elements (Montgomery form) to canonical
// little-endian limb arrays for digit extraction.
func frToLimbs(fr *ff.Field, scalars []ff.Element) [][]uint64 {
	out := make([][]uint64, len(scalars))
	nl := fr.NumLimbs()
	backing := make([]uint64, len(scalars)*nl)
	for i := range scalars {
		limbs := backing[i*nl : (i+1)*nl]
		b := fr.Bytes(&scalars[i]) // canonical big-endian
		for j := 0; j < nl; j++ {
			var v uint64
			for k := 0; k < 8; k++ {
				v = v<<8 | uint64(b[len(b)-8*(j+1)+k])
			}
			limbs[j] = v
		}
		out[i] = limbs
	}
	return out
}

// G1MSM computes Σ scalars[i]·points[i] in G1 with up to threads workers.
func (c *Curve) G1MSM(points []G1Affine, scalars []ff.Element, threads int) G1Jac {
	r, _ := c.G1MSMCtx(context.Background(), points, scalars, threads)
	return r
}

// G2MSM computes Σ scalars[i]·points[i] in G2 with up to threads workers.
func (c *Curve) G2MSM(points []G2Affine, scalars []ff.Element, threads int) G2Jac {
	r, _ := c.G2MSMCtx(context.Background(), points, scalars, threads)
	return r
}

// G1MSMCtx is the cancellable G1 MSM: window workers stop picking up new
// Pippenger windows once ctx is done, and the call returns ctx.Err(). On
// error the returned point is meaningless and must be discarded. The
// telemetry probe (if one rides in ctx) is resolved once here, not per
// window.
func (c *Curve) G1MSMCtx(ctx context.Context, points []G1Affine, scalars []ff.Element, threads int) (G1Jac, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	limbs := frToLimbs(c.Fr, scalars)
	r := msm[ff.Element](ctx, c.g1ops, points, limbs, c.Fr.Bits(), threads)
	probe.Observe(telemetry.KernelMSMG1, t0, len(points))
	return r, ctx.Err()
}

// G2MSMCtx is the cancellable G2 MSM; see G1MSMCtx.
func (c *Curve) G2MSMCtx(ctx context.Context, points []G2Affine, scalars []ff.Element, threads int) (G2Jac, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	limbs := frToLimbs(c.Fr, scalars)
	r := msm[tower.E2](ctx, c.g2ops, points, limbs, c.Fr.Bits(), threads)
	probe.Observe(telemetry.KernelMSMG2, t0, len(points))
	return r, ctx.Err()
}

// G1MSMNaive is the baseline double-and-add MSM (one scalar multiplication
// per point). It exists for correctness cross-checks and for the ablation
// benchmark comparing Pippenger against the naive algorithm.
func (c *Curve) G1MSMNaive(points []G1Affine, scalars []ff.Element) G1Jac {
	var acc, term, pj G1Jac
	c.G1Infinity(&acc)
	for i := range points {
		c.G1FromAffine(&pj, &points[i])
		c.G1ScalarMul(&term, &pj, &scalars[i])
		c.G1Add(&acc, &acc, &term)
	}
	return acc
}
