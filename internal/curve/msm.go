package curve

import (
	"context"
	"sync"

	"zkperf/internal/ff"
	"zkperf/internal/parallel"
	"zkperf/internal/telemetry"
	"zkperf/internal/tower"
)

// Multi-scalar multiplication (MSM): computes Σ kᵢ·Pᵢ with Pippenger's
// bucket algorithm. MSM dominates the Groth16 setup and proving stages —
// it is one of the two kernels (with the NTT) that hardware accelerators
// such as PipeZK target — so this implementation mirrors the structure of
// production libraries: signed-digit windows (2^{c−1} buckets), bucket
// accumulation through batched-affine additions with one field inversion
// amortized over a whole round, and parallelism across windows and point
// chunks within windows.

// msmWindowSize picks the Pippenger window width c for n points. The
// classic cost model minimizes n·⌈b/c⌉ + ⌈b/c⌉·2^{c−1} additions.
func msmWindowSize(n int) int {
	switch {
	case n < 8:
		return 2
	case n < 32:
		return 3
	case n < 128:
		return 5
	case n < 1024:
		return 7
	case n < 8192:
		return 9
	case n < 1<<17:
		return 11
	case n < 1<<21:
		return 13
	default:
		return 15
	}
}

// windowDigit extracts the w-th c-bit window digit from a canonical
// little-endian limb scalar.
func windowDigit(limbs []uint64, w, c int) int {
	bitPos := w * c
	limbIdx := bitPos >> 6
	if limbIdx >= len(limbs) {
		return 0
	}
	shift := uint(bitPos & 63)
	digit := limbs[limbIdx] >> shift
	if shift+uint(c) > 64 && limbIdx+1 < len(limbs) {
		digit |= limbs[limbIdx+1] << (64 - shift)
	}
	return int(digit & ((1 << uint(c)) - 1))
}

// signedDigits decomposes every scalar into ⌈(scalarBits+1)/c⌉ signed
// c-bit digits in [−2^{c−1}, 2^{c−1}]: whenever an unsigned digit exceeds
// 2^{c−1} it becomes d − 2^c with a carry into the next window. Since
// −d·P is just d·(−P) and affine negation is free, the digit range — and
// with it the bucket count and the running-sum pass — is halved. The
// extra window absorbs the final carry: scalars are < 2^scalarBits, so
// the top digit is at most 2^{c−1} and never carries out.
func signedDigits(scalars [][]uint64, scalarBits, c int) ([]int32, int) {
	numWindows := (scalarBits + c) / c // ⌈(scalarBits+1)/c⌉
	n := len(scalars)
	digits := make([]int32, numWindows*n)
	half := 1 << uint(c-1)
	for i, limbs := range scalars {
		carry := 0
		for w := 0; w < numWindows; w++ {
			d := windowDigit(limbs, w, c) + carry
			carry = 0
			if d > half {
				d -= 1 << uint(c)
				carry = 1
			}
			digits[w*n+i] = int32(d)
		}
	}
	return digits, numWindows
}

// batchAffineCap bounds the number of deferred bucket additions flushed
// per batched inversion. The working size is min(cap, buckets/4): large
// enough to amortize the inversion (a Fermat exponentiation, ~300 field
// multiplications) down to ~1 multiplication per addition, but small
// relative to the bucket count so that most pushes land in distinct
// buckets and the (Jacobian) collision path stays rare.
const batchAffineCap = 1024

// batchSizeFor picks the flush threshold for a given bucket count.
func batchSizeFor(numBuckets int) int {
	b := numBuckets / 4
	if b > batchAffineCap {
		b = batchAffineCap
	}
	if b < 16 {
		b = 16
	}
	return b
}

// minChunkPoints floors the per-chunk point count so point-chunk
// parallelism never splits the input finer than the bucket work it has
// to repay.
const minChunkPoints = 512

// pendingOp is a bucket addition waiting on the batched inversion: add
// the (already sign-adjusted) affine point q into bucket, doubling when
// the bucket currently holds the same point.
type pendingOp[E any] struct {
	bucket int
	isDbl  bool
	q      Affine[E]
}

// msmScratch is one worker's reusable state: the affine bucket array,
// the batch-affine buffers, and the Jacobian overflow buckets that absorb
// conflicting additions. Workers pull scratch from a pool and reuse it
// across every window/chunk task they run, so buckets are allocated once
// per worker rather than once per window.
type msmScratch[E any] struct {
	batchSize  int
	buckets    []Affine[E]
	busy       []bool         // bucket has an op in the current batch
	batch      []pendingOp[E] // ops awaiting the shared inversion, ≤ 1 per bucket
	denoms     []E            // λ denominators, aligned with batch
	prefix     []E            // prefix products for the batched inversion
	bucketsJac []Jac[E]       // overflow accumulators for conflicted adds
	jacUsed    []bool         // bucketsJac[b] is live this task
	conflicted []int32        // live overflow buckets, for cheap reset

	// Reusable temporaries. The generic field ops are interface calls, so
	// any `var x E` whose address they receive is heap-allocated; with
	// millions of bucket additions per MSM that allocation traffic
	// dominates. Keeping the temporaries in the worker's scratch removes
	// it entirely from the hot path.
	jt    jacTemps[E] // Jacobian formula temporaries (overflow/running-sum adds)
	q     Affine[E]   // sign-adjusted point being enqueued
	denom E           // λ denominator staging for push
	et    [6]E        // applyBatch temporaries: acc, inv, dinv, λ, t, x3
}

// reset prepares the scratch for a new window/chunk task. Affine buckets
// clear via their Inf flags; only the overflow buckets touched by the
// previous task are re-zeroed.
func (sc *msmScratch[E]) reset(ops Ops[E]) {
	for b := range sc.buckets {
		sc.buckets[b].Inf = true
	}
	for _, b := range sc.conflicted {
		jacSetInfinity(ops, &sc.bucketsJac[b])
		sc.jacUsed[b] = false
	}
	sc.conflicted = sc.conflicted[:0]
}

// enqueue routes ±P into bucket b through the batch-affine scheduler.
// When the bucket already has an op in the current batch, the point goes
// to the bucket's Jacobian overflow accumulator instead of stalling —
// conflicts cost one mixed Jacobian addition but never shrink the batch,
// so the amortized inversion stays amortized.
func (sc *msmScratch[E]) enqueue(ops Ops[E], b int, px, py *E, neg bool) {
	q := &sc.q
	ops.Set(&q.X, px)
	if neg {
		ops.Neg(&q.Y, py)
	} else {
		ops.Set(&q.Y, py)
	}
	if sc.busy[b] {
		if !sc.jacUsed[b] {
			sc.jacUsed[b] = true
			sc.conflicted = append(sc.conflicted, int32(b))
		}
		jacAddAffineT(ops, &sc.bucketsJac[b], &sc.bucketsJac[b], q, &sc.jt)
		return
	}
	sc.push(ops, b, q)
	if len(sc.batch) >= sc.batchSize {
		sc.applyBatch(ops)
	}
}

// push runs the affine-addition case analysis against the bucket's
// current state. Cases not needing a division resolve immediately (empty
// bucket: direct set; P + (−P): infinity); the rest record their λ
// denominator and join the batch.
func (sc *msmScratch[E]) push(ops Ops[E], b int, q *Affine[E]) {
	bk := &sc.buckets[b]
	if bk.Inf {
		*bk = *q
		return
	}
	op := pendingOp[E]{bucket: b, q: *q}
	denom := &sc.denom
	if ops.Equal(&bk.X, &q.X) {
		if !ops.Equal(&bk.Y, &q.Y) || ops.IsZero(&q.Y) {
			// P + (−P), or doubling a 2-torsion point: bucket empties.
			bk.Inf = true
			return
		}
		op.isDbl = true
		ops.Double(denom, &q.Y) // λ = 3x²/2y
	} else {
		ops.Sub(denom, &q.X, &bk.X) // λ = (y₂−y₁)/(x₂−x₁)
	}
	sc.busy[b] = true
	sc.batch = append(sc.batch, op)
	sc.denoms = append(sc.denoms, *denom)
}

// applyBatch performs the deferred affine additions with one batched
// inversion (Montgomery trick over the coordinate field) and writes the
// results back into the buckets. Denominators are nonzero by the push
// case analysis.
func (sc *msmScratch[E]) applyBatch(ops Ops[E]) {
	m := len(sc.batch)
	if m == 0 {
		return
	}
	if len(sc.prefix) < m {
		sc.prefix = make([]E, m)
	}
	acc, inv, dinv := &sc.et[0], &sc.et[1], &sc.et[2]
	lambda, t, x3 := &sc.et[3], &sc.et[4], &sc.et[5]
	ops.SetOne(acc)
	for i := 0; i < m; i++ {
		ops.Set(&sc.prefix[i], acc)
		ops.Mul(acc, acc, &sc.denoms[i])
	}
	ops.Inverse(inv, acc)
	for i := m - 1; i >= 0; i-- {
		ops.Mul(dinv, inv, &sc.prefix[i])
		ops.Mul(inv, inv, &sc.denoms[i])
		op := &sc.batch[i]
		bk := &sc.buckets[op.bucket]
		if op.isDbl {
			ops.Square(t, &bk.X)
			ops.Double(lambda, t)
			ops.Add(lambda, lambda, t)
			ops.Mul(lambda, lambda, dinv)
		} else {
			ops.Sub(lambda, &op.q.Y, &bk.Y)
			ops.Mul(lambda, lambda, dinv)
		}
		ops.Square(x3, lambda)
		ops.Sub(x3, x3, &bk.X)
		ops.Sub(x3, x3, &op.q.X)
		ops.Sub(t, &bk.X, x3)
		ops.Mul(t, lambda, t)
		ops.Sub(t, t, &bk.Y)
		ops.Set(&bk.X, x3)
		ops.Set(&bk.Y, t)
		sc.busy[op.bucket] = false
	}
	sc.batch = sc.batch[:0]
	sc.denoms = sc.denoms[:0]
}

// msm is the generic Pippenger core. scalars are given as canonical
// little-endian limb arrays of uniform length; threads bounds the number
// of concurrent workers (≤ 1 runs serially). Work splits into
// numWindows × pointChunks independent tasks — the running-sum bucket
// reduction is linear, so per-chunk partial sums combine by plain
// addition — and the partials are combined in a fixed order, making the
// result identical for every thread count. Cancellation is checked at
// task boundaries; on a cancelled ctx the (partial) result must be
// discarded by the caller.
func msm[E any](ctx context.Context, ops Ops[E], points []Affine[E], scalars [][]uint64, scalarBits, threads int) Jac[E] {
	n := len(points)
	var result Jac[E]
	jacSetInfinity(ops, &result)
	if n == 0 {
		return result
	}
	if n != len(scalars) {
		panic("curve: MSM points/scalars length mismatch")
	}
	c := msmWindowSize(n)
	digits, numWindows := signedDigits(scalars, scalarBits, c)
	numBuckets := 1 << uint(c-1)

	// Point-chunk parallelism: when threads exceed the window count,
	// split each window's points so every thread still has work.
	chunks := 1
	if threads > numWindows {
		chunks = (threads + numWindows - 1) / numWindows
		if maxChunks := (n + minChunkPoints - 1) / minChunkPoints; chunks > maxChunks {
			chunks = maxChunks
		}
		if chunks < 1 {
			chunks = 1
		}
	}
	chunkSz := (n + chunks - 1) / chunks
	tasks := numWindows * chunks
	partials := make([]Jac[E], tasks)

	batchSize := batchSizeFor(numBuckets)
	pool := sync.Pool{New: func() any {
		return &msmScratch[E]{
			batchSize:  batchSize,
			buckets:    make([]Affine[E], numBuckets),
			busy:       make([]bool, numBuckets),
			batch:      make([]pendingOp[E], 0, batchSize),
			denoms:     make([]E, 0, batchSize),
			prefix:     make([]E, batchSize),
			bucketsJac: make([]Jac[E], numBuckets),
			jacUsed:    make([]bool, numBuckets),
		}
	}}

	runTask := func(sc *msmScratch[E], t int) {
		w := t / chunks
		ci := t % chunks
		lo := ci * chunkSz
		hi := lo + chunkSz
		if hi > n {
			hi = n
		}
		sc.reset(ops)
		row := digits[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			d := row[i]
			if d == 0 || points[i].Inf {
				continue
			}
			if d > 0 {
				sc.enqueue(ops, int(d)-1, &points[i].X, &points[i].Y, false)
			} else {
				sc.enqueue(ops, int(-d)-1, &points[i].X, &points[i].Y, true)
			}
		}
		sc.applyBatch(ops)
		// Running-sum trick: Σ (b+1)·bucket[b] via two passes of
		// additions, linear in the (halved) bucket count, folding in the
		// Jacobian overflow accumulators where conflicts spilled.
		var running, sum Jac[E]
		jacSetInfinity(ops, &running)
		jacSetInfinity(ops, &sum)
		for b := numBuckets - 1; b >= 0; b-- {
			if !sc.buckets[b].Inf {
				jacAddAffineT(ops, &running, &running, &sc.buckets[b], &sc.jt)
			}
			if sc.jacUsed[b] {
				jacAddT(ops, &running, &running, &sc.bucketsJac[b], &sc.jt)
			}
			jacAddT(ops, &sum, &sum, &running, &sc.jt)
		}
		partials[t] = sum
	}

	if threads <= 1 || tasks == 1 {
		sc := pool.Get().(*msmScratch[E])
		for t := 0; t < tasks; t++ {
			if ctx.Err() != nil {
				return result
			}
			runTask(sc, t)
		}
		pool.Put(sc)
	} else {
		_ = parallel.ChunksCtx(ctx, tasks, threads, func(lo, hi int) {
			sc := pool.Get().(*msmScratch[E])
			for t := lo; t < hi; t++ {
				if ctx.Err() != nil {
					break
				}
				runTask(sc, t)
			}
			pool.Put(sc)
		})
	}
	if ctx.Err() != nil {
		return result
	}

	// Combine: each window's chunk partials sum in a fixed order, then
	// Horner over windows: result = Σ_w 2^{cw}·windowSum[w].
	for w := numWindows - 1; w >= 0; w-- {
		if w != numWindows-1 {
			for b := 0; b < c; b++ {
				jacDouble(ops, &result, &result)
			}
		}
		for ci := 0; ci < chunks; ci++ {
			jacAdd(ops, &result, &result, &partials[w*chunks+ci])
		}
	}
	return result
}

// frToLimbs converts scalar-field elements (Montgomery form) to canonical
// little-endian limb arrays for digit extraction, writing limbs directly
// from the Montgomery reduction instead of round-tripping through Bytes.
func frToLimbs(fr *ff.Field, scalars []ff.Element) [][]uint64 {
	out := make([][]uint64, len(scalars))
	nl := fr.NumLimbs()
	backing := make([]uint64, len(scalars)*nl)
	for i := range scalars {
		limbs := backing[i*nl : (i+1)*nl : (i+1)*nl]
		fr.CanonicalLimbs(&scalars[i], limbs)
		out[i] = limbs
	}
	return out
}

// G1MSM computes Σ scalars[i]·points[i] in G1 with up to threads workers.
func (c *Curve) G1MSM(points []G1Affine, scalars []ff.Element, threads int) G1Jac {
	r, _ := c.G1MSMCtx(context.Background(), points, scalars, threads)
	return r
}

// G2MSM computes Σ scalars[i]·points[i] in G2 with up to threads workers.
func (c *Curve) G2MSM(points []G2Affine, scalars []ff.Element, threads int) G2Jac {
	r, _ := c.G2MSMCtx(context.Background(), points, scalars, threads)
	return r
}

// G1MSMCtx is the cancellable G1 MSM: workers stop picking up new
// window/chunk tasks once ctx is done, and the call returns ctx.Err().
// On error the returned point is meaningless and must be discarded. The
// telemetry probe (if one rides in ctx) is resolved once here, not per
// task.
// Inputs of at least glvMinPoints take the GLV endomorphism path: each
// scalar splits into two half-width subscalars, and the Pippenger core runs
// over the doubled point set with roughly half the windows (glv.go).
func (c *Curve) G1MSMCtx(ctx context.Context, points []G1Affine, scalars []ff.Element, threads int) (G1Jac, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	var r G1Jac
	if len(points) >= glvMinPoints {
		g := c.GLV()
		pts2, limbs2 := glvExpand[ff.Element](ctx, c.g1ops, g, c.G1Phi, points, scalars, c.Fr, threads)
		r = msm[ff.Element](ctx, c.g1ops, pts2, limbs2, g.bits, threads)
	} else {
		limbs := frToLimbs(c.Fr, scalars)
		r = msm[ff.Element](ctx, c.g1ops, points, limbs, c.Fr.Bits(), threads)
	}
	probe.Observe(telemetry.KernelMSMG1, t0, len(points))
	return r, ctx.Err()
}

// G2MSMCtx is the cancellable G2 MSM; see G1MSMCtx.
func (c *Curve) G2MSMCtx(ctx context.Context, points []G2Affine, scalars []ff.Element, threads int) (G2Jac, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	var r G2Jac
	if len(points) >= glvMinPoints {
		g := c.GLV()
		pts2, limbs2 := glvExpand[tower.E2](ctx, c.g2ops, g, c.G2Phi, points, scalars, c.Fr, threads)
		r = msm[tower.E2](ctx, c.g2ops, pts2, limbs2, g.bits, threads)
	} else {
		limbs := frToLimbs(c.Fr, scalars)
		r = msm[tower.E2](ctx, c.g2ops, points, limbs, c.Fr.Bits(), threads)
	}
	probe.Observe(telemetry.KernelMSMG2, t0, len(points))
	return r, ctx.Err()
}

// G1MSMNaive is the baseline double-and-add MSM (one scalar multiplication
// per point). It exists for correctness cross-checks and for the ablation
// benchmark comparing Pippenger against the naive algorithm.
func (c *Curve) G1MSMNaive(points []G1Affine, scalars []ff.Element) G1Jac {
	var acc, term, pj G1Jac
	c.G1Infinity(&acc)
	for i := range points {
		c.G1FromAffine(&pj, &points[i])
		c.G1ScalarMul(&term, &pj, &scalars[i])
		c.G1Add(&acc, &acc, &term)
	}
	return acc
}
