package curve

import (
	"math/big"
	"testing"

	"zkperf/internal/ff"
)

// TestGLVDecompose: the lattice decomposition must satisfy
// k ≡ ±k1 + λ·(±k2) (mod r) with both subscalar magnitudes within the
// precomputed bit bound, on both curves, over random and edge-case scalars.
func TestGLVDecompose(t *testing.T) {
	for _, c := range testCurves() {
		g := c.GLV()
		r := c.Fr.Modulus()
		nl := c.Fr.NumLimbs()

		edge := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			new(big.Int).Sub(r, big.NewInt(1)),
			new(big.Int).Set(g.lambda),
			new(big.Int).Sqrt(r),
		}
		rng := ff.NewRNG(97)
		var e ff.Element
		for i := 0; i < 200; i++ {
			c.Fr.Random(&e, rng)
			edge = append(edge, c.Fr.BigInt(&e))
		}

		var sc glvScratch
		dst1 := make([]uint64, nl)
		dst2 := make([]uint64, nl)
		for _, k := range edge {
			neg1, neg2 := g.decompose(k, &sc, dst1, dst2)
			k1 := limbsToBigTest(dst1)
			k2 := limbsToBigTest(dst2)
			if k1.BitLen() > g.bits || k2.BitLen() > g.bits {
				t.Fatalf("%s: subscalar exceeds bound: |k1|=%d |k2|=%d bound=%d",
					c.Name, k1.BitLen(), k2.BitLen(), g.bits)
			}
			if neg1 {
				k1.Neg(k1)
			}
			if neg2 {
				k2.Neg(k2)
			}
			// k1 + λ·k2 ≡ k (mod r)
			got := new(big.Int).Mul(g.lambda, k2)
			got.Add(got, k1)
			got.Mod(got, r)
			want := new(big.Int).Mod(k, r)
			if got.Cmp(want) != 0 {
				t.Fatalf("%s: decompose(%v) reconstructs %v, want %v", c.Name, k, got, want)
			}
		}
	}
}

// TestGLVSubscalarsHalfWidth: the whole point of GLV is half-width
// subscalars; the bound must sit well below the full scalar width.
func TestGLVSubscalarsHalfWidth(t *testing.T) {
	for _, c := range testCurves() {
		full := c.Fr.Bits()
		if b := c.GLVBits(); b > full/2+4 {
			t.Errorf("%s: GLV bit bound %d not half-width (scalar field %d bits)", c.Name, b, full)
		}
	}
}

// TestGLVPhi: the endomorphism must map curve points to curve points and
// act as multiplication by λ, on random points of both groups.
func TestGLVPhi(t *testing.T) {
	for _, c := range testCurves() {
		lam := c.GLVLambda()
		rng := ff.NewRNG(131)
		var k ff.Element
		kb := new(big.Int)
		for i := 0; i < 8; i++ {
			c.Fr.Random(&k, rng)
			c.Fr.BigIntInto(kb, &k)

			// G1: P = [k]Gen, check φ(P) on-curve and φ(P) == [λ]P.
			var pj, want G1Jac
			c.G1FromAffine(&pj, &c.G1Gen)
			c.G1ScalarMulBig(&pj, &pj, kb)
			var p, phiP G1Affine
			c.G1ToAffine(&p, &pj)
			c.G1Phi(&phiP, &p)
			if !c.G1IsOnCurve(&phiP) {
				t.Fatalf("%s: G1 φ(P) not on curve", c.Name)
			}
			c.G1ScalarMulBig(&want, &pj, lam)
			var phiJ G1Jac
			c.G1FromAffine(&phiJ, &phiP)
			if !c.G1Equal(&phiJ, &want) {
				t.Fatalf("%s: G1 φ(P) != [λ]P", c.Name)
			}

			// G2: same for the twist group.
			var qj, want2 G2Jac
			c.G2FromAffine(&qj, &c.G2Gen)
			c.G2ScalarMulBig(&qj, &qj, kb)
			var q, phiQ G2Affine
			c.G2ToAffine(&q, &qj)
			c.G2Phi(&phiQ, &q)
			if !c.G2IsOnCurve(&phiQ) {
				t.Fatalf("%s: G2 φ(Q) not on curve", c.Name)
			}
			c.G2ScalarMulBig(&want2, &qj, lam)
			var phiJ2 G2Jac
			c.G2FromAffine(&phiJ2, &phiQ)
			if !c.G2Equal(&phiJ2, &want2) {
				t.Fatalf("%s: G2 φ(Q) != [λ]Q", c.Name)
			}

			// Infinity passes through.
			inf := G1Affine{Inf: true}
			var phiInf G1Affine
			c.G1Phi(&phiInf, &inf)
			if !phiInf.Inf {
				t.Fatalf("%s: G1 φ(∞) != ∞", c.Name)
			}
		}
	}
}

func limbsToBigTest(limbs []uint64) *big.Int {
	z := new(big.Int)
	for i := len(limbs) - 1; i >= 0; i-- {
		z.Lsh(z, 64)
		z.Or(z, new(big.Int).SetUint64(limbs[i]))
	}
	return z
}
