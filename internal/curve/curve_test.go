package curve

import (
	"math/big"
	"testing"

	"zkperf/internal/ff"
)

func testCurves() []*Curve { return []*Curve{NewBN254(), NewBLS12381()} }

func TestGeneratorsOnCurve(t *testing.T) {
	for _, c := range testCurves() {
		if !c.G1IsOnCurve(&c.G1Gen) {
			t.Errorf("%s: G1 generator not on curve", c.Name)
		}
		if !c.G2IsOnCurve(&c.G2Gen) {
			t.Errorf("%s: G2 generator not on twist curve", c.Name)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	for _, c := range testCurves() {
		var g, rg G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		c.G1ScalarMulBig(&rg, &g, c.Fr.Modulus())
		if !c.G1IsInfinity(&rg) {
			t.Errorf("%s: [r]G1 != infinity", c.Name)
		}
		var g2, rg2 G2Jac
		c.G2FromAffine(&g2, &c.G2Gen)
		c.G2ScalarMulBig(&rg2, &g2, c.Fr.Modulus())
		if !c.G2IsInfinity(&rg2) {
			t.Errorf("%s: [r]G2 != infinity", c.Name)
		}
	}
}

func TestG1GroupLaws(t *testing.T) {
	for _, c := range testCurves() {
		var g, twoG, gPlusG, threeG, sum G1Jac
		c.G1FromAffine(&g, &c.G1Gen)

		c.G1Double(&twoG, &g)
		c.G1Add(&gPlusG, &g, &g)
		if !c.G1Equal(&twoG, &gPlusG) {
			t.Errorf("%s: 2G != G+G", c.Name)
		}

		c.G1Add(&threeG, &twoG, &g)
		c.G1ScalarMulBig(&sum, &g, big.NewInt(3))
		if !c.G1Equal(&threeG, &sum) {
			t.Errorf("%s: 2G+G != [3]G", c.Name)
		}

		// G + (−G) = ∞
		var negG, zero G1Jac
		c.G1Neg(&negG, &g)
		c.G1Add(&zero, &g, &negG)
		if !c.G1IsInfinity(&zero) {
			t.Errorf("%s: G + (−G) != infinity", c.Name)
		}

		// ∞ + G = G
		var inf, res G1Jac
		c.G1Infinity(&inf)
		c.G1Add(&res, &inf, &g)
		if !c.G1Equal(&res, &g) {
			t.Errorf("%s: ∞ + G != G", c.Name)
		}
	}
}

func TestG2GroupLaws(t *testing.T) {
	for _, c := range testCurves() {
		var g, twoG, gPlusG, threeG, sum G2Jac
		c.G2FromAffine(&g, &c.G2Gen)

		c.G2Double(&twoG, &g)
		c.G2Add(&gPlusG, &g, &g)
		if !c.G2Equal(&twoG, &gPlusG) {
			t.Errorf("%s: 2G2 != G2+G2", c.Name)
		}

		c.G2Add(&threeG, &twoG, &g)
		c.G2ScalarMulBig(&sum, &g, big.NewInt(3))
		if !c.G2Equal(&threeG, &sum) {
			t.Errorf("%s: 2G2+G2 != [3]G2", c.Name)
		}

		var negG, zero G2Jac
		c.G2Neg(&negG, &g)
		c.G2Add(&zero, &g, &negG)
		if !c.G2IsInfinity(&zero) {
			t.Errorf("%s: G2 + (−G2) != infinity", c.Name)
		}
	}
}

func TestScalarMulDistributive(t *testing.T) {
	for _, c := range testCurves() {
		var g G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		rng := ff.NewRNG(31)
		var a, b, apb ff.Element
		c.Fr.Random(&a, rng)
		c.Fr.Random(&b, rng)
		c.Fr.Add(&apb, &a, &b)

		var ag, bg, abg, sum G1Jac
		c.G1ScalarMul(&ag, &g, &a)
		c.G1ScalarMul(&bg, &g, &b)
		c.G1ScalarMul(&abg, &g, &apb)
		c.G1Add(&sum, &ag, &bg)
		if !c.G1Equal(&abg, &sum) {
			t.Errorf("%s: [a+b]G != [a]G + [b]G", c.Name)
		}
	}
}

func TestToAffineRoundTrip(t *testing.T) {
	for _, c := range testCurves() {
		var g, back G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		c.G1ScalarMulBig(&g, &g, big.NewInt(12345))
		var aff G1Affine
		c.G1ToAffine(&aff, &g)
		if !c.G1IsOnCurve(&aff) {
			t.Errorf("%s: [12345]G not on curve after normalization", c.Name)
		}
		c.G1FromAffine(&back, &aff)
		if !c.G1Equal(&back, &g) {
			t.Errorf("%s: affine round-trip changed the point", c.Name)
		}
	}
}

func TestBatchToAffine(t *testing.T) {
	for _, c := range testCurves() {
		const n = 17
		src := make([]G1Jac, n)
		var g G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		for i := range src {
			c.G1ScalarMulBig(&src[i], &g, big.NewInt(int64(i))) // includes [0]G = ∞
		}
		dst := make([]G1Affine, n)
		c.G1BatchToAffine(dst, src)
		if !dst[0].Inf {
			t.Errorf("%s: batch [0]G should be infinity", c.Name)
		}
		for i := 1; i < n; i++ {
			var one G1Affine
			c.G1ToAffine(&one, &src[i])
			if !c.Fp.Equal(&one.X, &dst[i].X) || !c.Fp.Equal(&one.Y, &dst[i].Y) {
				t.Errorf("%s: batch affine mismatch at %d", c.Name, i)
			}
		}
	}
}

func msmTestVectors(c *Curve, n int, seed uint64) ([]G1Affine, []ff.Element) {
	rng := ff.NewRNG(seed)
	points := make([]G1Affine, n)
	scalars := make([]ff.Element, n)
	var g, p G1Jac
	c.G1FromAffine(&g, &c.G1Gen)
	for i := 0; i < n; i++ {
		var k ff.Element
		c.Fr.Random(&k, rng)
		c.G1ScalarMul(&p, &g, &k)
		c.G1ToAffine(&points[i], &p)
		c.Fr.Random(&scalars[i], rng)
	}
	return points, scalars
}

func TestMSMMatchesNaive(t *testing.T) {
	for _, c := range testCurves() {
		for _, n := range []int{1, 2, 7, 33, 100} {
			points, scalars := msmTestVectors(c, n, uint64(n))
			fast := c.G1MSM(points, scalars, 1)
			naive := c.G1MSMNaive(points, scalars)
			if !c.G1Equal(&fast, &naive) {
				t.Errorf("%s: MSM(n=%d) != naive", c.Name, n)
			}
		}
	}
}

func TestMSMParallelMatchesSerial(t *testing.T) {
	c := NewBN254()
	points, scalars := msmTestVectors(c, 256, 77)
	serial := c.G1MSM(points, scalars, 1)
	parallel := c.G1MSM(points, scalars, 8)
	if !c.G1Equal(&serial, &parallel) {
		t.Error("parallel MSM disagrees with serial MSM")
	}
}

func TestMSMEdgeCases(t *testing.T) {
	c := NewBN254()
	// Empty input.
	res := c.G1MSM(nil, nil, 1)
	if !c.G1IsInfinity(&res) {
		t.Error("MSM of empty input should be infinity")
	}
	// All-zero scalars.
	points, scalars := msmTestVectors(c, 9, 3)
	for i := range scalars {
		c.Fr.Zero(&scalars[i])
	}
	res = c.G1MSM(points, scalars, 1)
	if !c.G1IsInfinity(&res) {
		t.Error("MSM with zero scalars should be infinity")
	}
	// Mismatched lengths must panic.
	defer func() {
		if recover() == nil {
			t.Error("MSM length mismatch should panic")
		}
	}()
	c.G1MSM(points[:3], scalars[:2], 1)
}

func TestG2MSM(t *testing.T) {
	c := NewBN254()
	const n = 20
	rng := ff.NewRNG(5)
	points := make([]G2Affine, n)
	scalars := make([]ff.Element, n)
	var g, p G2Jac
	c.G2FromAffine(&g, &c.G2Gen)
	for i := 0; i < n; i++ {
		var k ff.Element
		c.Fr.Random(&k, rng)
		c.G2ScalarMul(&p, &g, &k)
		c.G2ToAffine(&points[i], &p)
		c.Fr.Random(&scalars[i], rng)
	}
	fast := c.G2MSM(points, scalars, 1)
	// Naive reference.
	var acc, term, pj G2Jac
	c.G2Infinity(&acc)
	for i := range points {
		c.G2FromAffine(&pj, &points[i])
		c.G2ScalarMul(&term, &pj, &scalars[i])
		c.G2Add(&acc, &acc, &term)
	}
	if !c.G2Equal(&fast, &acc) {
		t.Error("G2 MSM != naive reference")
	}
}

func TestWindowDigit(t *testing.T) {
	// 0b...1111_0000_1010 with c=4: digits are 10, 0, 15, ...
	limbs := []uint64{0xF0A, 0x1}
	if d := windowDigit(limbs, 0, 4); d != 0xA {
		t.Errorf("digit 0 = %d, want 10", d)
	}
	if d := windowDigit(limbs, 1, 4); d != 0 {
		t.Errorf("digit 1 = %d, want 0", d)
	}
	if d := windowDigit(limbs, 2, 4); d != 0xF {
		t.Errorf("digit 2 = %d, want 15", d)
	}
	// Digit straddling the limb boundary: bits 60..64.
	limbs2 := []uint64{0xF000000000000000, 0x1}
	if d := windowDigit(limbs2, 12, 5); d != 0x1F {
		t.Errorf("straddling digit = %d, want 31", d)
	}
	// Out of range window.
	if d := windowDigit(limbs2, 100, 5); d != 0 {
		t.Errorf("out-of-range digit = %d, want 0", d)
	}
}

func TestNewCurveByName(t *testing.T) {
	for _, name := range []string{"BN254", "BN128", "bn254", "bn128"} {
		if c := NewCurve(name); c == nil || c.Name != "BN254" {
			t.Errorf("NewCurve(%q) failed", name)
		}
	}
	for _, name := range []string{"BLS12-381", "BLS12381", "bls12-381"} {
		if c := NewCurve(name); c == nil || c.Name != "BLS12-381" {
			t.Errorf("NewCurve(%q) failed", name)
		}
	}
	if c := NewCurve("P-256"); c != nil {
		t.Error("NewCurve should return nil for unknown curves")
	}
}

func TestFixedBaseTableMatchesScalarMul(t *testing.T) {
	for _, c := range testCurves() {
		tab := c.NewG1Table(&c.G1Gen)
		tab2 := c.NewG2Table(&c.G2Gen)
		rng := ff.NewRNG(61)
		var gj G1Jac
		c.G1FromAffine(&gj, &c.G1Gen)
		var g2j G2Jac
		c.G2FromAffine(&g2j, &c.G2Gen)
		for i := 0; i < 5; i++ {
			var k ff.Element
			c.Fr.Random(&k, rng)
			var fromTable, direct G1Jac
			tab.Mul(&fromTable, &k)
			c.G1ScalarMul(&direct, &gj, &k)
			if !c.G1Equal(&fromTable, &direct) {
				t.Fatalf("%s: G1 table mul disagrees with double-and-add", c.Name)
			}
			var fromTable2, direct2 G2Jac
			tab2.Mul(&fromTable2, &k)
			c.G2ScalarMul(&direct2, &g2j, &k)
			if !c.G2Equal(&fromTable2, &direct2) {
				t.Fatalf("%s: G2 table mul disagrees with double-and-add", c.Name)
			}
		}
		// Batch path matches the single path, including zero scalars.
		scalars := make([]ff.Element, 7)
		for i := range scalars {
			c.Fr.Random(&scalars[i], rng)
		}
		c.Fr.Zero(&scalars[3])
		batch := tab.MulBatch(scalars, 2)
		for i := range scalars {
			var single G1Jac
			tab.Mul(&single, &scalars[i])
			var aff G1Affine
			c.G1ToAffine(&aff, &single)
			if aff.Inf != batch[i].Inf {
				t.Fatalf("%s: batch infinity mismatch at %d", c.Name, i)
			}
			if !aff.Inf && (!c.Fp.Equal(&aff.X, &batch[i].X) || !c.Fp.Equal(&aff.Y, &batch[i].Y)) {
				t.Fatalf("%s: batch mismatch at %d", c.Name, i)
			}
		}
	}
}
