package curve

import (
	"context"

	"zkperf/internal/ff"
	"zkperf/internal/parallel"
	"zkperf/internal/telemetry"
	"zkperf/internal/tower"
)

// Fixed-base scalar multiplication: the Groth16 setup performs hundreds of
// thousands of scalar multiplications with the same base (the group
// generator), so a windowed precomputation table turns each one into
// ~⌈bits/c⌉ mixed additions. The table is built once per curve engine and
// shared across all setups.

// fixedBaseWindow is the table window width. 8 gives 255-entry rows and
// 32 rows for a 254-bit scalar field: ~8k precomputed points.
const fixedBaseWindow = 8

// FixedBaseTable holds the per-window multiples of one base point:
// table[w][d−1] = [d·2^{cw}]·Base for digits d in 1..2^c−1.
type FixedBaseTable[E any] struct {
	ops     Ops[E]
	windows [][]Affine[E]
	bits    int
}

// newFixedBaseTable precomputes the table for the given affine base.
func newFixedBaseTable[E any](ops Ops[E], base *Affine[E], scalarBits int) *FixedBaseTable[E] {
	c := fixedBaseWindow
	numWindows := (scalarBits + c - 1) / c
	t := &FixedBaseTable[E]{ops: ops, bits: scalarBits}
	t.windows = make([][]Affine[E], numWindows)

	var windowBase Jac[E]
	fromAffine(ops, &windowBase, base)
	rowJac := make([]Jac[E], (1<<uint(c))-1)
	for w := 0; w < numWindows; w++ {
		// Row: 1·B, 2·B, …, (2^c−1)·B where B = [2^{cw}]·base.
		var acc Jac[E]
		jacSetInfinity(ops, &acc)
		for d := 0; d < len(rowJac); d++ {
			jacAdd(ops, &acc, &acc, &windowBase)
			rowJac[d] = acc
		}
		row := make([]Affine[E], len(rowJac))
		batchToAffine(ops, row, rowJac)
		t.windows[w] = row
		// Advance the window base: B ← [2^c]·B.
		for i := 0; i < c; i++ {
			jacDouble(ops, &windowBase, &windowBase)
		}
	}
	return t
}

// mul computes [k]·Base for a canonical little-endian limb scalar.
func (t *FixedBaseTable[E]) mul(z *Jac[E], limbs []uint64) {
	ops := t.ops
	jacSetInfinity(ops, z)
	for w := range t.windows {
		d := windowDigit(limbs, w, fixedBaseWindow)
		if d == 0 {
			continue
		}
		jacAddAffine(ops, z, z, &t.windows[w][d-1])
	}
}

// G1Table is a fixed-base table over the G1 generator (or any G1 point).
type G1Table struct {
	c   *Curve
	tab *FixedBaseTable[ff.Element]
}

// G2Table is a fixed-base table over a G2 point.
type G2Table struct {
	c   *Curve
	tab *FixedBaseTable[tower.E2]
}

// NewG1Table precomputes a fixed-base table for base.
func (c *Curve) NewG1Table(base *G1Affine) *G1Table {
	return &G1Table{c: c, tab: newFixedBaseTable[ff.Element](c.g1ops, base, c.Fr.Bits())}
}

// NewG2Table precomputes a fixed-base table for base.
func (c *Curve) NewG2Table(base *G2Affine) *G2Table {
	return &G2Table{c: c, tab: newFixedBaseTable[tower.E2](c.g2ops, base, c.Fr.Bits())}
}

// Mul sets z = [k]·Base for a scalar-field element k.
func (t *G1Table) Mul(z *G1Jac, k *ff.Element) {
	limbs := frToLimbs(t.c.Fr, []ff.Element{*k})
	t.tab.mul(z, limbs[0])
}

// Mul sets z = [k]·Base for a scalar-field element k.
func (t *G2Table) Mul(z *G2Jac, k *ff.Element) {
	limbs := frToLimbs(t.c.Fr, []ff.Element{*k})
	t.tab.mul(z, limbs[0])
}

// MulBatch computes [kᵢ]·Base for every scalar, in parallel worker chunks,
// returning affine results (batch-normalized per chunk).
func (t *G1Table) MulBatch(scalars []ff.Element, threads int) []G1Affine {
	out, _ := t.MulBatchCtx(context.Background(), scalars, threads)
	return out
}

// MulBatchCtx is the cancellable MulBatch: no new chunk starts once ctx is
// done, and ctx.Err() is returned. On error the output is partial and must
// be discarded.
func (t *G1Table) MulBatchCtx(ctx context.Context, scalars []ff.Element, threads int) ([]G1Affine, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	out := make([]G1Affine, len(scalars))
	limbs := frToLimbs(t.c.Fr, scalars)
	err := parallel.ChunksCtx(ctx, len(scalars), threads, func(lo, hi int) {
		jacs := make([]G1Jac, hi-lo)
		for i := lo; i < hi; i++ {
			t.tab.mul(&jacs[i-lo], limbs[i])
		}
		batchToAffine[ff.Element](t.c.g1ops, out[lo:hi], jacs)
	})
	probe.Observe(telemetry.KernelMSMG1, t0, len(scalars))
	return out, err
}

// MulBatch computes [kᵢ]·Base for every scalar, in parallel worker chunks.
func (t *G2Table) MulBatch(scalars []ff.Element, threads int) []G2Affine {
	out, _ := t.MulBatchCtx(context.Background(), scalars, threads)
	return out
}

// MulBatchCtx is the cancellable MulBatch; see (*G1Table).MulBatchCtx.
func (t *G2Table) MulBatchCtx(ctx context.Context, scalars []ff.Element, threads int) ([]G2Affine, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	out := make([]G2Affine, len(scalars))
	limbs := frToLimbs(t.c.Fr, scalars)
	err := parallel.ChunksCtx(ctx, len(scalars), threads, func(lo, hi int) {
		jacs := make([]G2Jac, hi-lo)
		for i := lo; i < hi; i++ {
			t.tab.mul(&jacs[i-lo], limbs[i])
		}
		batchToAffine[tower.E2](t.c.g2ops, out[lo:hi], jacs)
	})
	probe.Observe(telemetry.KernelMSMG2, t0, len(scalars))
	return out, err
}
