package curve

import (
	"context"

	"zkperf/internal/ff"
	"zkperf/internal/parallel"
	"zkperf/internal/telemetry"
	"zkperf/internal/tower"
)

// Fixed-base scalar multiplication: the Groth16 setup and KZG SRS
// generation perform hundreds of thousands of scalar multiplications with
// the same base (the group generator), so a windowed precomputation table
// turns each one into ~⌈bits/c⌉ mixed additions. Tables use the same
// signed-digit windows as the MSM: digits in [−2^{c−1}, 2^{c−1}] instead
// of [0, 2^c), which halves each row (negation of an affine point is
// free) — so window 9 costs the same storage as unsigned window 8 while
// doing ~10% fewer additions per multiplication.
//
// Generator tables are shared process-wide and persisted into the
// artifact store (tablestore.go): the table data is immutable after
// construction, so instances bind their own field-op adapters to it for
// correct per-curve operation accounting.

// fixedBaseWindow is the table window width. Signed window 9 gives
// 256-entry rows and 29 rows for a 254-bit scalar field: ~7.4k
// precomputed points per table.
const fixedBaseWindow = 9

// FixedBaseWindowBits is the table window width, exported so op-count and
// memory models can mirror the table geometry: (bits+c)/c windows of
// 2^{c−1} signed-digit entries each.
const FixedBaseWindowBits = fixedBaseWindow

// fixedBaseData is the immutable precomputed table: the per-window
// multiples of one base point, windows[w][d−1] = [d·2^{cw}]·Base for
// digits d in 1..2^{c−1}. It carries no field ops, so it can be cached
// process-wide and shared across curve instances.
type fixedBaseData[E any] struct {
	window  int
	bits    int
	windows [][]Affine[E]
}

// FixedBaseTable binds a table to one curve instance's field ops.
type FixedBaseTable[E any] struct {
	ops  Ops[E]
	data *fixedBaseData[E]
}

// newFixedBaseData precomputes the signed-window table for base.
func newFixedBaseData[E any](ops Ops[E], base *Affine[E], scalarBits int) *fixedBaseData[E] {
	c := fixedBaseWindow
	// ⌈(scalarBits+1)/c⌉ windows: the extra bit absorbs the signed-digit
	// carry, mirroring signedDigits in msm.go.
	numWindows := (scalarBits + c) / c
	half := 1 << uint(c-1)
	d := &fixedBaseData[E]{window: c, bits: scalarBits}
	d.windows = make([][]Affine[E], numWindows)

	var windowBase Jac[E]
	fromAffine(ops, &windowBase, base)
	rowJac := make([]Jac[E], half)
	var tp jacTemps[E]
	for w := 0; w < numWindows; w++ {
		// Row: 1·B, 2·B, …, 2^{c−1}·B where B = [2^{cw}]·base.
		var acc Jac[E]
		jacSetInfinity(ops, &acc)
		for i := 0; i < half; i++ {
			jacAddT(ops, &acc, &acc, &windowBase, &tp)
			rowJac[i] = acc
		}
		row := make([]Affine[E], half)
		batchToAffine(ops, row, rowJac)
		d.windows[w] = row
		// Advance the window base: B ← [2^c]·B.
		for i := 0; i < c; i++ {
			jacDoubleT(ops, &windowBase, &windowBase, &tp)
		}
	}
	return d
}

// mul computes [k]·Base for a canonical little-endian limb scalar, using
// caller-owned scratch (tp, qn) so batch callers pay no per-call
// allocations.
func (t *FixedBaseTable[E]) mul(z *Jac[E], limbs []uint64, tp *jacTemps[E], qn *Affine[E]) {
	ops := t.ops
	d := t.data
	c := d.window
	half := 1 << uint(c-1)
	jacSetInfinity(ops, z)
	carry := 0
	for w := range d.windows {
		dig := windowDigit(limbs, w, c) + carry
		carry = 0
		if dig > half {
			dig -= 1 << uint(c)
			carry = 1
		}
		if dig == 0 {
			continue
		}
		if dig > 0 {
			jacAddAffineT(ops, z, z, &d.windows[w][dig-1], tp)
		} else {
			e := &d.windows[w][-dig-1]
			qn.Inf = e.Inf
			ops.Set(&qn.X, &e.X)
			ops.Neg(&qn.Y, &e.Y)
			jacAddAffineT(ops, z, z, qn, tp)
		}
	}
}

// G1Table is a fixed-base table over a G1 point.
type G1Table struct {
	c   *Curve
	tab *FixedBaseTable[ff.Element]
}

// G2Table is a fixed-base table over a G2 point.
type G2Table struct {
	c   *Curve
	tab *FixedBaseTable[tower.E2]
}

// NewG1Table precomputes a fixed-base table for base. For the group
// generator prefer G1GenTable, which caches and persists the table.
func (c *Curve) NewG1Table(base *G1Affine) *G1Table {
	data := newFixedBaseData[ff.Element](c.g1ops, base, c.Fr.Bits())
	return &G1Table{c: c, tab: &FixedBaseTable[ff.Element]{ops: c.g1ops, data: data}}
}

// NewG2Table precomputes a fixed-base table for base. For the group
// generator prefer G2GenTable, which caches and persists the table.
func (c *Curve) NewG2Table(base *G2Affine) *G2Table {
	data := newFixedBaseData[tower.E2](c.g2ops, base, c.Fr.Bits())
	return &G2Table{c: c, tab: &FixedBaseTable[tower.E2]{ops: c.g2ops, data: data}}
}

// Mul sets z = [k]·Base for a scalar-field element k.
func (t *G1Table) Mul(z *G1Jac, k *ff.Element) {
	limbs := frToLimbs(t.c.Fr, []ff.Element{*k})
	var tp jacTemps[ff.Element]
	var qn G1Affine
	t.tab.mul(z, limbs[0], &tp, &qn)
}

// Mul sets z = [k]·Base for a scalar-field element k.
func (t *G2Table) Mul(z *G2Jac, k *ff.Element) {
	limbs := frToLimbs(t.c.Fr, []ff.Element{*k})
	var tp jacTemps[tower.E2]
	var qn G2Affine
	t.tab.mul(z, limbs[0], &tp, &qn)
}

// MulBatch computes [kᵢ]·Base for every scalar, in parallel worker chunks,
// returning affine results (batch-normalized per chunk).
func (t *G1Table) MulBatch(scalars []ff.Element, threads int) []G1Affine {
	out, _ := t.MulBatchCtx(context.Background(), scalars, threads)
	return out
}

// MulBatchCtx is the cancellable MulBatch: no new chunk starts once ctx is
// done, and ctx.Err() is returned. On error the output is partial and must
// be discarded.
func (t *G1Table) MulBatchCtx(ctx context.Context, scalars []ff.Element, threads int) ([]G1Affine, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	out := make([]G1Affine, len(scalars))
	limbs := frToLimbs(t.c.Fr, scalars)
	err := parallel.ChunksCtx(ctx, len(scalars), threads, func(lo, hi int) {
		jacs := make([]G1Jac, hi-lo)
		var tp jacTemps[ff.Element]
		var qn G1Affine
		for i := lo; i < hi; i++ {
			t.tab.mul(&jacs[i-lo], limbs[i], &tp, &qn)
		}
		batchToAffine[ff.Element](t.c.g1ops, out[lo:hi], jacs)
	})
	probe.Observe(telemetry.KernelMSMG1, t0, len(scalars))
	return out, err
}

// MulBatch computes [kᵢ]·Base for every scalar, in parallel worker chunks.
func (t *G2Table) MulBatch(scalars []ff.Element, threads int) []G2Affine {
	out, _ := t.MulBatchCtx(context.Background(), scalars, threads)
	return out
}

// MulBatchCtx is the cancellable MulBatch; see (*G1Table).MulBatchCtx.
func (t *G2Table) MulBatchCtx(ctx context.Context, scalars []ff.Element, threads int) ([]G2Affine, error) {
	probe := telemetry.ProbeFromContext(ctx)
	t0 := probe.Begin()
	out := make([]G2Affine, len(scalars))
	limbs := frToLimbs(t.c.Fr, scalars)
	err := parallel.ChunksCtx(ctx, len(scalars), threads, func(lo, hi int) {
		jacs := make([]G2Jac, hi-lo)
		var tp jacTemps[tower.E2]
		var qn G2Affine
		for i := lo; i < hi; i++ {
			t.tab.mul(&jacs[i-lo], limbs[i], &tp, &qn)
		}
		batchToAffine[tower.E2](t.c.g2ops, out[lo:hi], jacs)
	})
	probe.Observe(telemetry.KernelMSMG2, t0, len(scalars))
	return out, err
}
