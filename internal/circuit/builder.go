// Package circuit is the arithmetic-circuit front-end of the zk-SNARK
// stack: the compile stage of the paper's Figure 1 workflow. It offers two
// entry points:
//
//   - a programmatic Builder API (this file), and
//   - a small circuit language with a lexer, parser and compiler
//     (lexer.go, parser.go, compile.go) standing in for circom.
//
// Both produce an r1cs.System (the "ccs") plus a witness.Program — the
// wire-solving schedule the witness stage interprets.
package circuit

import (
	"fmt"
	"math/big"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// Wire is a handle to a value inside the circuit: a sparse linear
// combination of witness variables. Constants are combinations over the
// constant-1 wire only.
type Wire struct {
	lc r1cs.LinComb
}

// Builder incrementally constructs a constraint system and its solver
// program. Declare all inputs and outputs before creating any gate.
type Builder struct {
	fr   *ff.Field
	sys  *r1cs.System
	prog *witness.Program

	gateCount int
}

// NewBuilder returns an empty builder over the scalar field fr.
func NewBuilder(fr *ff.Field) *Builder {
	return &Builder{fr: fr, sys: r1cs.NewSystem(fr), prog: &witness.Program{}}
}

// Field returns the builder's scalar field.
func (b *Builder) Field() *ff.Field { return b.fr }

// varWire returns the wire that is exactly one witness variable.
func (b *Builder) varWire(v r1cs.Variable) Wire {
	var one ff.Element
	b.fr.One(&one)
	return Wire{lc: r1cs.LinComb{{Coeff: one, Var: v}}}
}

// PublicInput declares a named public input wire.
func (b *Builder) PublicInput(name string) Wire { return b.varWire(b.sys.AddPublic(name, false)) }

// PublicOutput declares a named public output wire. Outputs are public
// wires whose value the solver computes; bind them with BindOutput.
func (b *Builder) PublicOutput(name string) Wire { return b.varWire(b.sys.AddPublic(name, true)) }

// PrivateInput declares a named private input wire.
func (b *Builder) PrivateInput(name string) Wire { return b.varWire(b.sys.AddPrivate(name)) }

// Constant returns a wire holding the constant v.
func (b *Builder) Constant(v *big.Int) Wire {
	var c ff.Element
	b.fr.SetBigInt(&c, v)
	return Wire{lc: r1cs.LinComb{{Coeff: c, Var: r1cs.ConstOne}}}
}

// ConstantUint64 returns a wire holding the constant v.
func (b *Builder) ConstantUint64(v uint64) Wire {
	return b.Constant(new(big.Int).SetUint64(v))
}

// ConstantElement returns a wire holding the field constant v.
func (b *Builder) ConstantElement(v ff.Element) Wire {
	return Wire{lc: r1cs.LinComb{{Coeff: v, Var: r1cs.ConstOne}}}
}

// normalize merges duplicate variables and drops zero coefficients.
func (b *Builder) normalize(lc r1cs.LinComb) r1cs.LinComb {
	if len(lc) <= 1 {
		return lc
	}
	idx := make(map[r1cs.Variable]int, len(lc))
	out := make(r1cs.LinComb, 0, len(lc))
	for i := range lc {
		if j, ok := idx[lc[i].Var]; ok {
			b.fr.Add(&out[j].Coeff, &out[j].Coeff, &lc[i].Coeff)
			continue
		}
		idx[lc[i].Var] = len(out)
		out = append(out, lc[i])
	}
	filtered := out[:0]
	for i := range out {
		if !b.fr.IsZero(&out[i].Coeff) {
			filtered = append(filtered, out[i])
		}
	}
	return filtered
}

// Add returns x + y (free: no constraint).
func (b *Builder) Add(x, y Wire) Wire {
	lc := make(r1cs.LinComb, 0, len(x.lc)+len(y.lc))
	lc = append(lc, x.lc...)
	lc = append(lc, y.lc...)
	return Wire{lc: b.normalize(lc)}
}

// Sub returns x − y (free).
func (b *Builder) Sub(x, y Wire) Wire {
	lc := make(r1cs.LinComb, 0, len(x.lc)+len(y.lc))
	lc = append(lc, x.lc...)
	for i := range y.lc {
		var neg ff.Element
		b.fr.Neg(&neg, &y.lc[i].Coeff)
		lc = append(lc, r1cs.Term{Coeff: neg, Var: y.lc[i].Var})
	}
	return Wire{lc: b.normalize(lc)}
}

// Neg returns −x (free).
func (b *Builder) Neg(x Wire) Wire { return b.Sub(Wire{}, x) }

// MulConst returns c·x (free).
func (b *Builder) MulConst(x Wire, c *ff.Element) Wire {
	lc := make(r1cs.LinComb, len(x.lc))
	for i := range x.lc {
		lc[i].Var = x.lc[i].Var
		b.fr.Mul(&lc[i].Coeff, &x.lc[i].Coeff, c)
	}
	return Wire{lc: b.normalize(lc)}
}

// constValue returns (v, true) if the wire is a pure constant.
func (b *Builder) constValue(x Wire) (ff.Element, bool) {
	var v ff.Element
	if len(x.lc) == 0 {
		return v, true
	}
	if len(x.lc) == 1 && x.lc[0].Var == r1cs.ConstOne {
		return x.lc[0].Coeff, true
	}
	return v, false
}

// Mul returns x·y. If either operand is constant the product is free;
// otherwise a multiplication gate is created: one internal wire, one
// constraint, one solver instruction.
func (b *Builder) Mul(x, y Wire) Wire {
	if c, ok := b.constValue(x); ok {
		return b.MulConst(y, &c)
	}
	if c, ok := b.constValue(y); ok {
		return b.MulConst(x, &c)
	}
	out := b.sys.AddInternal()
	outW := b.varWire(out)
	b.sys.AddConstraint(x.lc, y.lc, outW.lc)
	b.prog.Instructions = append(b.prog.Instructions, witness.Instruction{
		Op: witness.OpMul, L: x.lc, R: y.lc, Out: out,
	})
	b.gateCount++
	return outW
}

// Square returns x².
func (b *Builder) Square(x Wire) Wire { return b.Mul(x, x) }

// Inverse returns 1/x, constraining x·out = 1. Witness solving fails if
// x = 0.
func (b *Builder) Inverse(x Wire) Wire {
	out := b.sys.AddInternal()
	outW := b.varWire(out)
	one := b.ConstantUint64(1)
	b.sys.AddConstraint(x.lc, outW.lc, one.lc)
	b.prog.Instructions = append(b.prog.Instructions, witness.Instruction{
		Op: witness.OpInverse, L: x.lc, Out: out,
	})
	b.gateCount++
	return outW
}

// AssertEqual adds the constraint x == y.
func (b *Builder) AssertEqual(x, y Wire) {
	one := b.ConstantUint64(1)
	b.sys.AddConstraint(x.lc, one.lc, y.lc)
}

// AssertBoolean adds the constraint x·(x−1) == 0.
func (b *Builder) AssertBoolean(x Wire) {
	xm1 := b.Sub(x, b.ConstantUint64(1))
	var zero Wire
	b.sys.AddConstraint(x.lc, xm1.lc, zero.lc)
}

// BindOutput constrains a declared output wire to equal expr and records
// the solver instruction that computes it.
func (b *Builder) BindOutput(out Wire, expr Wire) error {
	if len(out.lc) != 1 || !b.fr.IsOne(&out.lc[0].Coeff) {
		return fmt.Errorf("circuit: BindOutput target must be a bare output wire")
	}
	v := out.lc[0].Var
	if int(v) > b.sys.NumPublic {
		return fmt.Errorf("circuit: BindOutput target is not a public wire")
	}
	one := b.ConstantUint64(1)
	b.sys.AddConstraint(expr.lc, one.lc, out.lc)
	b.prog.Instructions = append(b.prog.Instructions, witness.Instruction{
		Op: witness.OpLinear, L: expr.lc, Out: v,
	})
	return nil
}

// ToBits decomposes x into n little-endian boolean wires, constraining
// each bit and the recomposition Σ 2ⁱ·bᵢ == x. It uses solver hints for
// the bit values (the decomposition is not expressible as gates).
func (b *Builder) ToBits(x Wire, n int) []Wire {
	bits := make([]Wire, n)
	var sum Wire
	var pow ff.Element
	b.fr.One(&pow)
	for i := 0; i < n; i++ {
		out := b.sys.AddInternal()
		bits[i] = b.varWire(out)
		b.prog.Instructions = append(b.prog.Instructions, witness.Instruction{
			Op: witness.OpBit, L: x.lc, Out: out, Aux: i,
		})
		b.AssertBoolean(bits[i])
		sum = b.Add(sum, b.MulConst(bits[i], &pow))
		b.fr.Double(&pow, &pow)
		b.gateCount++
	}
	b.AssertEqual(sum, x)
	return bits
}

// NumGates returns the number of multiplication/hint gates created so far.
func (b *Builder) NumGates() int { return b.gateCount }

// Compile finalizes the builder, returning the constraint system and the
// solver program.
func (b *Builder) Compile() (*r1cs.System, *witness.Program) {
	return b.sys, b.prog
}
