package circuit

import (
	"math/big"
	"strings"
	"testing"

	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

func fr() *ff.Field { return ff.NewBN254Fr() }

func TestExponentiateCompileAndSolve(t *testing.T) {
	f := fr()
	for _, e := range []int{1, 2, 3, 8, 100} {
		src := ExponentiateSource(e)
		sys, prog, err := CompileSource(f, src)
		if err != nil {
			t.Fatalf("e=%d: compile: %v", e, err)
		}
		if got := sys.NumConstraints(); got != e {
			t.Errorf("e=%d: %d constraints, want %d", e, got, e)
		}
		var x ff.Element
		f.SetUint64(&x, 3)
		w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
		if err != nil {
			t.Fatalf("e=%d: solve: %v", e, err)
		}
		// y should be 3^e.
		want := new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(e)), f.Modulus())
		got := f.BigInt(&w.Public[1])
		if got.Cmp(want) != 0 {
			t.Errorf("e=%d: y = %v, want %v", e, got, want)
		}
	}
}

func TestWitnessPublicLayout(t *testing.T) {
	f := fr()
	sys, prog, err := CompileSource(f, ExponentiateSource(4))
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	f.SetUint64(&x, 2)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Public) != 1+sys.NumPublic {
		t.Errorf("public witness length %d, want %d", len(w.Public), 1+sys.NumPublic)
	}
	if !f.IsOne(&w.Full[0]) {
		t.Error("witness[0] must be the constant 1")
	}
	if len(w.Full) != sys.NumVariables() {
		t.Errorf("full witness length %d, want %d", len(w.Full), sys.NumVariables())
	}
}

func TestWitnessMissingInput(t *testing.T) {
	f := fr()
	sys, prog, _ := CompileSource(f, ExponentiateSource(4))
	if _, err := witness.Solve(sys, prog, witness.Assignment{}); err == nil {
		t.Error("Solve should fail with a missing input")
	}
}

func TestMulChain(t *testing.T) {
	f := fr()
	sys, prog, err := CompileSource(f, MulChainSource(5))
	if err != nil {
		t.Fatal(err)
	}
	var a, b ff.Element
	f.SetUint64(&a, 7)
	f.SetUint64(&b, 2)
	w, err := witness.Solve(sys, prog, witness.Assignment{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	// The loop range is [1,5): 4 iterations, so z = a·b⁵ = 7·32 = 224.
	var want ff.Element
	f.SetUint64(&want, 224)
	if !f.Equal(&w.Public[1], &want) {
		t.Errorf("z = %s, want 224", f.String(&w.Public[1]))
	}
}

func TestParserErrors(t *testing.T) {
	f := fr()
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"no circuit kw", "foo Bar {}"},
		{"unterminated", "circuit C { var x = 1;"},
		{"bad char", "circuit C { var x = 1 @ 2; }"},
		{"undeclared", "circuit C { public output y; y <== z; }"},
		{"redeclared", "circuit C { private input x; private input x; y <== x; }"},
		{"decl after logic", "circuit C { var w = 1; private input x; }"},
		{"unbound output", "circuit C { public output y; private input x; var w = x; }"},
		{"double bind", "circuit C { public output y; private input x; y <== x; y <== x; }"},
		{"assign to input", "circuit C { private input x; public output y; x = 3; y <== x; }"},
		{"bind non-output", "circuit C { private input x; public output y; x <== 3; y <== x; }"},
		{"non-const loop bound", "circuit C { private input x; public output y; for i in 1..x { } y <== x; }"},
	}
	for _, tc := range cases {
		if _, _, err := CompileSource(f, tc.src); err == nil {
			t.Errorf("%s: expected compile error, got none", tc.name)
		}
	}
}

func TestComments(t *testing.T) {
	f := fr()
	src := `// header comment
circuit C {
    private input x; // trailing comment
    public output y;
    // a full-line comment
    y <== x * x;
}`
	sys, _, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumConstraints() != 2 {
		t.Errorf("constraints = %d, want 2", sys.NumConstraints())
	}
}

func TestLoopSemantics(t *testing.T) {
	f := fr()
	// Loop bounds are [lo, hi): for i in 0..3 runs 3 times; the loop var is
	// usable as a constant.
	src := `circuit C {
    private input x;
    public output y;
    var acc = 0;
    for i in 0..3 {
        acc = acc + i * x;
    }
    y <== acc;
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	f.SetUint64(&x, 10)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	// acc = (0+1+2)·x = 30
	var want ff.Element
	f.SetUint64(&want, 30)
	if !f.Equal(&w.Public[1], &want) {
		t.Errorf("y = %s, want 30", f.String(&w.Public[1]))
	}
}

func TestNestedLoops(t *testing.T) {
	f := fr()
	src := `circuit C {
    private input x;
    public output y;
    var acc = x;
    for i in 0..3 {
        for j in 0..4 {
            acc = acc * x;
        }
    }
    y <== acc;
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumConstraints() != 13 { // 12 muls + output bind
		t.Errorf("constraints = %d, want 13", sys.NumConstraints())
	}
	var x ff.Element
	f.SetUint64(&x, 2)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(2), big.NewInt(13), f.Modulus())
	if f.BigInt(&w.Public[1]).Cmp(want) != 0 {
		t.Errorf("y = %s, want 2^13", f.String(&w.Public[1]))
	}
}

func TestAssertStatement(t *testing.T) {
	f := fr()
	src := `circuit C {
    private input x;
    public output y;
    assert x * x == 9;
    y <== x;
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	var three, four ff.Element
	f.SetUint64(&three, 3)
	f.SetUint64(&four, 4)
	if _, err := witness.Solve(sys, prog, witness.Assignment{"x": three}); err != nil {
		t.Errorf("x=3 should satisfy assert: %v", err)
	}
	if _, err := witness.Solve(sys, prog, witness.Assignment{"x": four}); err == nil {
		t.Error("x=4 should violate assert")
	}
}

func TestBuilderConstantFold(t *testing.T) {
	f := fr()
	b := NewBuilder(f)
	x := b.PrivateInput("x")
	// Multiplying by constants must not create gates.
	c2 := b.ConstantUint64(2)
	c3 := b.ConstantUint64(3)
	_ = b.Mul(c2, c3)
	_ = b.Mul(x, c2)
	if b.NumGates() != 0 {
		t.Errorf("constant multiplications created %d gates", b.NumGates())
	}
	_ = b.Mul(x, x)
	if b.NumGates() != 1 {
		t.Errorf("gate count = %d, want 1", b.NumGates())
	}
}

func TestBuilderInverse(t *testing.T) {
	f := fr()
	b := NewBuilder(f)
	y := b.PublicOutput("y")
	x := b.PrivateInput("x")
	inv := b.Inverse(x)
	if err := b.BindOutput(y, inv); err != nil {
		t.Fatal(err)
	}
	sys, prog := b.Compile()
	var five ff.Element
	f.SetUint64(&five, 5)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": five})
	if err != nil {
		t.Fatal(err)
	}
	var prod ff.Element
	f.Mul(&prod, &w.Public[1], &five)
	if !f.IsOne(&prod) {
		t.Error("inverse gate produced a non-inverse")
	}
	// Inverting zero must fail at solve time.
	var zero ff.Element
	if _, err := witness.Solve(sys, prog, witness.Assignment{"x": zero}); err == nil {
		t.Error("inverting zero should fail")
	}
}

func TestMiMCHashCircuit(t *testing.T) {
	f := fr()
	const rounds = 11
	sys, prog, err := MiMCHashCircuit(f, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumConstraints() != 4*rounds+1 {
		t.Errorf("constraints = %d, want %d", sys.NumConstraints(), 4*rounds+1)
	}
	rng := ff.NewRNG(8)
	var m ff.Element
	f.Random(&m, rng)
	w, err := witness.Solve(sys, prog, witness.Assignment{"m": m})
	if err != nil {
		t.Fatal(err)
	}
	want := MiMCHash(f, rounds, &m)
	if !f.Equal(&w.Public[1], &want) {
		t.Error("circuit MiMC disagrees with reference implementation")
	}
}

func TestMerkleCircuit(t *testing.T) {
	f := fr()
	const depth, rounds = 5, 11
	sys, prog, err := MerkleCircuit(f, depth, rounds)
	if err != nil {
		t.Fatal(err)
	}
	assign, root := MerkleAssignment(f, depth, rounds, 42)
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(&w.Public[1], &root) {
		t.Error("circuit root disagrees with reference Merkle computation")
	}
	// Corrupt one sibling: the root must change (proof of path binding).
	var bad ff.Element
	f.SetUint64(&bad, 123456)
	assign["sib2"] = bad
	w2, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatal(err)
	}
	if f.Equal(&w2.Public[1], &root) {
		t.Error("corrupted path still produced the same root")
	}
}

func TestRangeCheckCircuit(t *testing.T) {
	f := fr()
	const bits = 16
	sys, prog, err := RangeCheckCircuit(f, bits)
	if err != nil {
		t.Fatal(err)
	}
	var v, slack, max ff.Element
	f.SetUint64(&v, 1000)
	f.SetUint64(&slack, 24)
	f.SetUint64(&max, 1024)
	if _, err := witness.Solve(sys, prog, witness.Assignment{"v": v, "slack": slack, "max": max}); err != nil {
		t.Errorf("valid range assignment rejected: %v", err)
	}
	// v > max: slack would need to be negative (wraps to a huge value that
	// fails its own range check).
	f.SetUint64(&v, 2000)
	var negSlack ff.Element
	f.SetUint64(&negSlack, 976)
	f.Neg(&negSlack, &negSlack)
	if _, err := witness.Solve(sys, prog, witness.Assignment{"v": v, "slack": negSlack, "max": max}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestExponentiateSourceShape(t *testing.T) {
	src := ExponentiateSource(16)
	if !strings.Contains(src, "circuit Exponentiate") {
		t.Error("missing circuit header")
	}
	defer func() {
		if recover() == nil {
			t.Error("ExponentiateSource(0) should panic")
		}
	}()
	ExponentiateSource(0)
}
