package circuit

import (
	"fmt"
	"math/big"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// CompileSource parses and compiles circuit source text into a constraint
// system and solver program — the full compile stage of the zk-SNARK
// workflow (source → gates → R1CS).
func CompileSource(fr *ff.Field, src string) (*r1cs.System, *witness.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return CompileAST(fr, file)
}

// binding is one name in scope: exactly one of the fields is active.
type binding struct {
	wire     Wire     // signals and vars
	arr      []Wire   // signal arrays (input/output)
	arrBound []bool   // per-element bind state for output arrays
	isVar    bool     // vars may be reassigned
	isOutput bool     // outputs must be bound exactly once with <==
	bound    bool     // whether an output has been bound
	intVal   *big.Int // loop variables (compile-time integers)
}

// compiler walks the AST and drives a Builder.
type compiler struct {
	b     *Builder
	scope map[string]*binding
}

// CompileAST compiles a parsed circuit file.
func CompileAST(fr *ff.Field, file *File) (*r1cs.System, *witness.Program, error) {
	c := &compiler{b: NewBuilder(fr), scope: make(map[string]*binding)}

	// Pass 1: declarations. They must precede all other statements so the
	// R1CS wire layout (public | private | internal) is fixed up front.
	// Public wires are allocated before private ones regardless of source
	// order.
	rest := file.Body
	var decls []*DeclStmt
	for len(rest) > 0 {
		d, ok := rest[0].(*DeclStmt)
		if !ok {
			break
		}
		decls = append(decls, d)
		rest = rest[1:]
	}
	for _, s := range rest {
		if d, ok := s.(*DeclStmt); ok {
			return nil, nil, fmt.Errorf("line %d: declaration of %q must appear before circuit logic", d.Line, d.Name)
		}
	}
	for _, pass := range []bool{true, false} { // public first, then private
		for _, d := range decls {
			if d.IsPublic != pass {
				continue
			}
			if _, exists := c.scope[d.Name]; exists {
				return nil, nil, fmt.Errorf("line %d: %q redeclared", d.Line, d.Name)
			}
			size := 0
			if d.Size != nil {
				v, err := c.evalInt(d.Size)
				if err != nil {
					return nil, nil, fmt.Errorf("line %d: array size: %v", d.Line, err)
				}
				if !v.IsInt64() || v.Int64() < 1 || v.Int64() > 1<<24 {
					return nil, nil, fmt.Errorf("line %d: array size %v out of range", d.Line, v)
				}
				size = int(v.Int64())
			}
			alloc := func(name string) (Wire, bool, error) {
				switch {
				case d.IsInput && d.IsPublic:
					return c.b.PublicInput(name), false, nil
				case d.IsInput:
					return c.b.PrivateInput(name), false, nil
				case d.IsPublic:
					return c.b.PublicOutput(name), true, nil
				}
				return Wire{}, false, fmt.Errorf("line %d: output %q cannot be private", d.Line, d.Name)
			}
			bind := &binding{}
			if size > 0 {
				bind.arr = make([]Wire, size)
				bind.arrBound = make([]bool, size)
				for i := range bind.arr {
					w, isOut, err := alloc(fmt.Sprintf("%s[%d]", d.Name, i))
					if err != nil {
						return nil, nil, err
					}
					bind.arr[i] = w
					bind.isOutput = isOut
				}
			} else {
				w, isOut, err := alloc(d.Name)
				if err != nil {
					return nil, nil, err
				}
				bind.wire = w
				bind.isOutput = isOut
			}
			c.scope[d.Name] = bind
		}
	}

	if err := c.stmts(rest); err != nil {
		return nil, nil, err
	}

	for name, bind := range c.scope {
		if !bind.isOutput {
			continue
		}
		if bind.arr == nil && !bind.bound {
			return nil, nil, fmt.Errorf("output %q is never bound with <==", name)
		}
		for i, ok := range bind.arrBound {
			if !ok {
				return nil, nil, fmt.Errorf("output %q[%d] is never bound with <==", name, i)
			}
		}
	}

	sys, prog := c.b.Compile()
	return sys, prog, nil
}

func (c *compiler) stmts(body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarStmt:
		if _, exists := c.scope[st.Name]; exists {
			return fmt.Errorf("line %d: %q redeclared", st.Line, st.Name)
		}
		w, err := c.expr(st.Init)
		if err != nil {
			return err
		}
		c.scope[st.Name] = &binding{wire: w, isVar: true}
		return nil

	case *AssignStmt:
		bind, ok := c.scope[st.Name]
		if !ok {
			return fmt.Errorf("line %d: assignment to undeclared %q", st.Line, st.Name)
		}
		w, err := c.expr(st.Expr)
		if err != nil {
			return err
		}
		if st.Bind {
			if !bind.isOutput {
				return fmt.Errorf("line %d: '<==' target %q is not an output", st.Line, st.Name)
			}
			target := bind.wire
			if st.Index != nil {
				if bind.arr == nil {
					return fmt.Errorf("line %d: %q is not an array", st.Line, st.Name)
				}
				i, err := c.arrayIndex(st.Index, len(bind.arr), st.Line, st.Name)
				if err != nil {
					return err
				}
				if bind.arrBound[i] {
					return fmt.Errorf("line %d: output %q[%d] bound twice", st.Line, st.Name, i)
				}
				bind.arrBound[i] = true
				target = bind.arr[i]
			} else {
				if bind.arr != nil {
					return fmt.Errorf("line %d: output array %q needs an index", st.Line, st.Name)
				}
				if bind.bound {
					return fmt.Errorf("line %d: output %q bound twice", st.Line, st.Name)
				}
				bind.bound = true
			}
			if err := c.b.BindOutput(target, w); err != nil {
				return fmt.Errorf("line %d: %v", st.Line, err)
			}
			return nil
		}
		if st.Index != nil {
			return fmt.Errorf("line %d: cannot reassign signal array element %q", st.Line, st.Name)
		}
		if !bind.isVar {
			return fmt.Errorf("line %d: %q is not a var (use '<==' for outputs)", st.Line, st.Name)
		}
		bind.wire = w
		return nil

	case *ForStmt:
		lo, err := c.evalInt(st.Lo)
		if err != nil {
			return err
		}
		hi, err := c.evalInt(st.Hi)
		if err != nil {
			return err
		}
		if _, exists := c.scope[st.Var]; exists {
			return fmt.Errorf("line %d: loop variable %q shadows an existing name", st.Line, st.Var)
		}
		iv := new(big.Int).Set(lo)
		loopBind := &binding{intVal: iv}
		c.scope[st.Var] = loopBind
		for iv.Cmp(hi) < 0 {
			if err := c.stmts(st.Body); err != nil {
				return err
			}
			iv.Add(iv, big.NewInt(1))
		}
		delete(c.scope, st.Var)
		return nil

	case *AssertStmt:
		a, err := c.expr(st.A)
		if err != nil {
			return err
		}
		b, err := c.expr(st.B)
		if err != nil {
			return err
		}
		c.b.AssertEqual(a, b)
		return nil
	}
	return fmt.Errorf("internal: unknown statement %T", s)
}

// expr compiles an expression to a circuit wire.
func (c *compiler) expr(e Expr) (Wire, error) {
	switch ex := e.(type) {
	case *NumExpr:
		return c.b.Constant(ex.Value), nil
	case *IdentExpr:
		bind, ok := c.scope[ex.Name]
		if !ok {
			return Wire{}, fmt.Errorf("line %d: undeclared identifier %q", ex.Line, ex.Name)
		}
		if bind.intVal != nil {
			return c.b.Constant(bind.intVal), nil
		}
		if bind.arr != nil {
			return Wire{}, fmt.Errorf("line %d: array %q needs an index", ex.Line, ex.Name)
		}
		return bind.wire, nil
	case *IndexExpr:
		bind, ok := c.scope[ex.Name]
		if !ok {
			return Wire{}, fmt.Errorf("line %d: undeclared identifier %q", ex.Line, ex.Name)
		}
		if bind.arr == nil {
			return Wire{}, fmt.Errorf("line %d: %q is not an array", ex.Line, ex.Name)
		}
		i, err := c.arrayIndex(ex.Index, len(bind.arr), ex.Line, ex.Name)
		if err != nil {
			return Wire{}, err
		}
		return bind.arr[i], nil
	case *NegExpr:
		a, err := c.expr(ex.A)
		if err != nil {
			return Wire{}, err
		}
		return c.b.Neg(a), nil
	case *BinExpr:
		a, err := c.expr(ex.A)
		if err != nil {
			return Wire{}, err
		}
		b, err := c.expr(ex.B)
		if err != nil {
			return Wire{}, err
		}
		switch ex.Op {
		case '+':
			return c.b.Add(a, b), nil
		case '-':
			return c.b.Sub(a, b), nil
		case '*':
			return c.b.Mul(a, b), nil
		}
		return Wire{}, fmt.Errorf("line %d: unknown operator %q", ex.Line, ex.Op)
	}
	return Wire{}, fmt.Errorf("internal: unknown expression %T", e)
}

// arrayIndex evaluates a compile-time array index and bounds-checks it.
func (c *compiler) arrayIndex(e Expr, size, line int, name string) (int, error) {
	v, err := c.evalInt(e)
	if err != nil {
		return 0, fmt.Errorf("line %d: index of %q: %v", line, name, err)
	}
	if !v.IsInt64() || v.Int64() < 0 || v.Int64() >= int64(size) {
		return 0, fmt.Errorf("line %d: index %v out of range for %q[%d]", line, v, name, size)
	}
	return int(v.Int64()), nil
}

// evalInt evaluates a compile-time integer expression (loop bounds).
func (c *compiler) evalInt(e Expr) (*big.Int, error) {
	switch ex := e.(type) {
	case *NumExpr:
		return ex.Value, nil
	case *IdentExpr:
		bind, ok := c.scope[ex.Name]
		if !ok || bind.intVal == nil {
			return nil, fmt.Errorf("line %d: %q is not a compile-time integer", ex.Line, ex.Name)
		}
		return new(big.Int).Set(bind.intVal), nil
	case *NegExpr:
		v, err := c.evalInt(ex.A)
		if err != nil {
			return nil, err
		}
		return new(big.Int).Neg(v), nil
	case *BinExpr:
		a, err := c.evalInt(ex.A)
		if err != nil {
			return nil, err
		}
		b, err := c.evalInt(ex.B)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case '+':
			return new(big.Int).Add(a, b), nil
		case '-':
			return new(big.Int).Sub(a, b), nil
		case '*':
			return new(big.Int).Mul(a, b), nil
		}
	}
	return nil, fmt.Errorf("loop bounds must be compile-time integer expressions")
}
