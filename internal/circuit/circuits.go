package circuit

import (
	"fmt"
	"strings"

	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/witness"
)

// This file provides the benchmark circuits used throughout the analysis
// framework and examples. ExponentiateSource generates the paper's
// workload; the builder-based constructors provide realistic application
// circuits (hashing, Merkle membership, range checks).

// ExponentiateSource returns circuit-language source for y = x^e — the
// paper's benchmark circuit (Section IV-A). Compiling it yields exactly e
// constraints: e−1 multiplication gates plus the output binding, matching
// the paper's convention that e equals the number of constraints.
func ExponentiateSource(e int) string {
	if e < 1 {
		panic("circuit: exponent must be >= 1")
	}
	var sb strings.Builder
	sb.WriteString("// y = x^e exponentiation benchmark circuit\n")
	sb.WriteString("circuit Exponentiate {\n")
	sb.WriteString("    private input x;\n")
	sb.WriteString("    public output y;\n")
	sb.WriteString("    var w = x;\n")
	fmt.Fprintf(&sb, "    for i in 1..%d {\n", e)
	sb.WriteString("        w = w * x;\n")
	sb.WriteString("    }\n")
	sb.WriteString("    y <== w;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// MulChainSource returns source for a chain of n private multiplications
// z = a·b, z = z·b, ... — a second simple workload shape with two inputs.
func MulChainSource(n int) string {
	var sb strings.Builder
	sb.WriteString("circuit MulChain {\n")
	sb.WriteString("    private input a;\n")
	sb.WriteString("    private input b;\n")
	sb.WriteString("    public output z;\n")
	sb.WriteString("    var w = a * b;\n")
	fmt.Fprintf(&sb, "    for i in 1..%d {\n", n)
	sb.WriteString("        w = w * b;\n")
	sb.WriteString("    }\n")
	sb.WriteString("    z <== w;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// MiMCRounds is the default number of rounds for the MiMC permutation.
// Real deployments use ~91 rounds for 128-bit security on BN254; the value
// is configurable in the constructors.
const MiMCRounds = 91

// mimcConstants derives the per-round constants deterministically.
func mimcConstants(fr *ff.Field, rounds int) []ff.Element {
	rng := ff.NewRNG(0x4d694d43) // "MiMC"
	cs := make([]ff.Element, rounds)
	for i := range cs {
		fr.Random(&cs[i], rng)
	}
	return cs
}

// mimcPermWire builds the MiMC-x⁷ permutation over a wire inside b:
// per round, t = state + key + c_i; state = t⁷ (4 multiplication gates).
func mimcPermWire(b *Builder, state, key Wire, cs []ff.Element) Wire {
	for i := range cs {
		t := b.Add(b.Add(state, key), b.ConstantElement(cs[i]))
		t2 := b.Mul(t, t)
		t4 := b.Mul(t2, t2)
		t6 := b.Mul(t4, t2)
		state = b.Mul(t6, t)
	}
	return state
}

// MiMCHashCircuit builds a circuit proving knowledge of a preimage m with
// MiMC(m) = h: private input m, public output h (Miyaguchi–Preneel-style
// feed-forward h = perm(m) + m).
func MiMCHashCircuit(fr *ff.Field, rounds int) (*r1cs.System, *witness.Program, error) {
	b := NewBuilder(fr)
	h := b.PublicOutput("h")
	m := b.PrivateInput("m")
	zero := b.ConstantUint64(0)
	perm := mimcPermWire(b, m, zero, mimcConstants(fr, rounds))
	digest := b.Add(perm, m)
	if err := b.BindOutput(h, digest); err != nil {
		return nil, nil, err
	}
	sys, prog := b.Compile()
	return sys, prog, nil
}

// MiMCHash computes the same hash outside the circuit (reference
// implementation, used by examples and tests to cross-check the solver).
func MiMCHash(fr *ff.Field, rounds int, m *ff.Element) ff.Element {
	cs := mimcConstants(fr, rounds)
	var state ff.Element
	fr.Set(&state, m)
	for i := range cs {
		var t, t2, t4, t6 ff.Element
		fr.Add(&t, &state, &cs[i])
		fr.Square(&t2, &t)
		fr.Square(&t4, &t2)
		fr.Mul(&t6, &t4, &t2)
		fr.Mul(&state, &t6, &t)
	}
	var out ff.Element
	fr.Add(&out, &state, m)
	return out
}

// mimcHash2 compresses two field elements: H(l, r) = perm(l + r) + l + r.
func mimcHash2(fr *ff.Field, rounds int, l, r *ff.Element) ff.Element {
	var sum ff.Element
	fr.Add(&sum, l, r)
	return MiMCHash(fr, rounds, &sum)
}

// MerkleCircuit builds a Merkle-membership circuit of the given depth:
// the prover shows a private leaf hashes up a private authentication path
// to a public root. Path direction bits are private boolean inputs.
//
// Input names: "leaf", "sib0".."sib{depth-1}", "dir0".."dir{depth-1}";
// output name: "root".
func MerkleCircuit(fr *ff.Field, depth, rounds int) (*r1cs.System, *witness.Program, error) {
	b := NewBuilder(fr)
	root := b.PublicOutput("root")
	leaf := b.PrivateInput("leaf")
	sibs := make([]Wire, depth)
	dirs := make([]Wire, depth)
	for i := 0; i < depth; i++ {
		sibs[i] = b.PrivateInput(fmt.Sprintf("sib%d", i))
	}
	for i := 0; i < depth; i++ {
		dirs[i] = b.PrivateInput(fmt.Sprintf("dir%d", i))
	}
	cs := mimcConstants(fr, rounds)
	zero := b.ConstantUint64(0)
	cur := leaf
	for i := 0; i < depth; i++ {
		b.AssertBoolean(dirs[i])
		// dir = 0: (cur, sib); dir = 1: (sib, cur). Linear select:
		// left = cur + dir·(sib − cur), right = sib + dir·(cur − sib).
		diff := b.Sub(sibs[i], cur)
		dTimes := b.Mul(dirs[i], diff)
		left := b.Add(cur, dTimes)
		right := b.Sub(b.Add(sibs[i], cur), left)
		sum := b.Add(left, right)
		perm := mimcPermWire(b, sum, zero, cs)
		cur = b.Add(perm, sum)
	}
	if err := b.BindOutput(root, cur); err != nil {
		return nil, nil, err
	}
	sys, prog := b.Compile()
	return sys, prog, nil
}

// MerkleAssignment computes a consistent assignment for MerkleCircuit:
// a random tree path with the given leaf, returning the assignment and the
// resulting root.
func MerkleAssignment(fr *ff.Field, depth, rounds int, seed uint64) (witness.Assignment, ff.Element) {
	rng := ff.NewRNG(seed)
	assign := witness.Assignment{}
	var leaf ff.Element
	fr.Random(&leaf, rng)
	assign["leaf"] = leaf
	cur := leaf
	for i := 0; i < depth; i++ {
		var sib, dir ff.Element
		fr.Random(&sib, rng)
		dirBit := rng.Uint64() & 1
		fr.SetUint64(&dir, dirBit)
		assign[fmt.Sprintf("sib%d", i)] = sib
		assign[fmt.Sprintf("dir%d", i)] = dir
		if dirBit == 0 {
			cur = mimcHash2(fr, rounds, &cur, &sib)
		} else {
			cur = mimcHash2(fr, rounds, &sib, &cur)
		}
	}
	return assign, cur
}

// RangeCheckCircuit proves a private value fits in `bits` bits: private
// input v, no outputs beyond the implied constraints. A public input "max"
// is included so the statement has public content: the circuit asserts
// v + slack == max for a private slack also range-checked — i.e. v ≤ max.
func RangeCheckCircuit(fr *ff.Field, bits int) (*r1cs.System, *witness.Program, error) {
	b := NewBuilder(fr)
	max := b.PublicInput("max")
	v := b.PrivateInput("v")
	slack := b.PrivateInput("slack")
	b.ToBits(v, bits)
	b.ToBits(slack, bits)
	b.AssertEqual(b.Add(v, slack), max)
	sys, prog := b.Compile()
	return sys, prog, nil
}
