package circuit

import (
	"fmt"
	"testing"

	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

// TestArrayDotProduct writes a dot product in the circuit language:
// z = Σ a[i]·b[i] over two private 8-element vectors.
func TestArrayDotProduct(t *testing.T) {
	f := fr()
	src := `circuit Dot {
    private input a[8];
    private input b[8];
    public output z;
    var acc = 0;
    for i in 0..8 {
        acc = acc + a[i] * b[i];
    }
    z <== acc;
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPrivate != 16 {
		t.Errorf("private wires = %d, want 16", sys.NumPrivate)
	}
	assign := witness.Assignment{}
	want := uint64(0)
	for i := 0; i < 8; i++ {
		var av, bv ff.Element
		f.SetUint64(&av, uint64(i+1))
		f.SetUint64(&bv, uint64(2*i+1))
		assign[fmt.Sprintf("a[%d]", i)] = av
		assign[fmt.Sprintf("b[%d]", i)] = bv
		want += uint64(i+1) * uint64(2*i+1)
	}
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatal(err)
	}
	var wantE ff.Element
	f.SetUint64(&wantE, want)
	if !f.Equal(&w.Public[1], &wantE) {
		t.Errorf("z = %s, want %d", f.String(&w.Public[1]), want)
	}
}

// TestArrayOutputs: each output element bound separately inside a loop.
func TestArrayOutputs(t *testing.T) {
	f := fr()
	src := `circuit Squares {
    private input x;
    public output y[4];
    var w = x;
    for i in 0..4 {
        w = w * x;
        y[i] <== w;
    }
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	f.SetUint64(&x, 2)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	// y[i] = 2^{i+2}.
	for i := 0; i < 4; i++ {
		var want ff.Element
		f.SetUint64(&want, 1<<(i+2))
		if !f.Equal(&w.Public[1+i], &want) {
			t.Errorf("y[%d] = %s, want %d", i, f.String(&w.Public[1+i]), 1<<(i+2))
		}
	}
}

// TestMerkleInDSL writes a small hash-chain membership circuit in the
// language using arrays (a simplified Merkle walk with x² + sib folding).
func TestMerkleInDSL(t *testing.T) {
	f := fr()
	src := `circuit Chain {
    private input leaf;
    private input sib[5];
    public output root;
    var cur = leaf;
    for i in 0..5 {
        cur = cur * cur + sib[i];
    }
    root <== cur;
}`
	sys, prog, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	assign := witness.Assignment{}
	var leaf ff.Element
	f.SetUint64(&leaf, 3)
	assign["leaf"] = leaf
	// Reference computation.
	var cur ff.Element
	f.Set(&cur, &leaf)
	for i := 0; i < 5; i++ {
		var sib ff.Element
		f.SetUint64(&sib, uint64(10+i))
		assign[fmt.Sprintf("sib[%d]", i)] = sib
		var sq ff.Element
		f.Square(&sq, &cur)
		f.Add(&cur, &sq, &sib)
	}
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(&w.Public[1], &cur) {
		t.Error("DSL hash chain disagrees with reference")
	}
}

func TestArrayErrors(t *testing.T) {
	f := fr()
	cases := []struct{ name, src string }{
		{"index out of range",
			"circuit C { private input a[4]; public output y; y <== a[4]; }"},
		{"negative index",
			"circuit C { private input a[4]; public output y; y <== a[0-1]; }"},
		{"array without index",
			"circuit C { private input a[4]; public output y; y <== a; }"},
		{"index non-array",
			"circuit C { private input x; public output y; y <== x[0]; }"},
		{"non-const index",
			"circuit C { private input a[4]; private input j; public output y; y <== a[j]; }"},
		{"unbound output element",
			"circuit C { private input x; public output y[2]; y[0] <== x; }"},
		{"double-bound element",
			"circuit C { private input x; public output y[1]; y[0] <== x; y[0] <== x; }"},
		{"bind array without index",
			"circuit C { private input x; public output y[2]; y <== x; }"},
		{"assign to input element",
			"circuit C { private input a[2]; public output y; a[0] = 3; y <== a[1]; }"},
		{"zero size",
			"circuit C { private input a[0]; public output y; y <== 1; }"},
		{"unterminated index",
			"circuit C { private input a[4]; public output y; y <== a[1; }"},
	}
	for _, tc := range cases {
		if _, _, err := CompileSource(f, tc.src); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

// TestArraySizeFromExpression: sizes may be compile-time expressions.
func TestArraySizeFromExpression(t *testing.T) {
	f := fr()
	src := `circuit C {
    private input a[2*3+2];
    public output z;
    var acc = 0;
    for i in 0..8 {
        acc = acc + a[i];
    }
    z <== acc;
}`
	sys, _, err := CompileSource(f, src)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPrivate != 8 {
		t.Errorf("array size expression: %d wires, want 8", sys.NumPrivate)
	}
}
