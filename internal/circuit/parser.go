package circuit

import (
	"fmt"
	"math/big"
)

// AST node types for the circuit language.

// File is a parsed circuit file.
type File struct {
	Name string
	Body []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares an input or output signal, or an array of them when
// Size is non-nil (a compile-time integer expression).
type DeclStmt struct {
	Name     string
	IsInput  bool // input vs output
	IsPublic bool
	Size     Expr // nil for scalars
	Line     int
}

// VarStmt declares a mutable circuit variable.
type VarStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt re-binds a var (Op '=') or binds an output (Op '<==').
// Index is non-nil when the target is an array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar targets
	Bind  bool // true for <==
	Expr  Expr
	Line  int
}

// ForStmt is a compile-time-unrolled loop: for Var in Lo..Hi { Body }.
// The range is inclusive of Lo and exclusive of Hi.
type ForStmt struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Line   int
}

// AssertStmt is assert A == B.
type AssertStmt struct {
	A, B Expr
	Line int
}

func (*DeclStmt) stmtNode()   {}
func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*ForStmt) stmtNode()    {}
func (*AssertStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Value *big.Int
	Line  int
}

// IdentExpr references a signal, var or loop variable.
type IdentExpr struct {
	Name string
	Line int
}

// IndexExpr references an array element with a compile-time index.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// BinExpr is A op B with op in {+, -, *}.
type BinExpr struct {
	Op   byte
	A, B Expr
	Line int
}

// NegExpr is -A.
type NegExpr struct {
	A    Expr
	Line int
}

func (*NumExpr) exprNode()   {}
func (*IdentExpr) exprNode() {}
func (*IndexExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*NegExpr) exprNode()   {}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses circuit source text into an AST.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("line %d: expected %s, found %s", t.line, what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("line %d: expected %q, found %s", t.line, kw, t)
	}
	return nil
}

func (p *parser) parseFile() (*File, error) {
	if err := p.expectKeyword("circuit"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "circuit name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokEOF {
		return nil, fmt.Errorf("line %d: trailing input after circuit body: %s", t.line, t)
	}
	return &File{Name: name.text, Body: body}, nil
}

// parseBlock parses statements until the closing '}' (which it consumes).
func (p *parser) parseBlock() ([]Stmt, error) {
	var stmts []Stmt
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			return stmts, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("line %d: unexpected end of input, missing '}'", t.line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "public", "private", "input", "output":
			return p.parseDecl()
		case "var":
			return p.parseVar()
		case "for":
			return p.parseFor()
		case "assert":
			return p.parseAssert()
		}
		return nil, fmt.Errorf("line %d: unexpected keyword %q", t.line, t.text)
	}
	if t.kind == tokIdent {
		return p.parseAssign()
	}
	return nil, fmt.Errorf("line %d: unexpected %s", t.line, t)
}

func (p *parser) parseDecl() (Stmt, error) {
	t := p.next() // public | private | input | output
	d := &DeclStmt{Line: t.line}
	explicitVis := false
	if t.text == "public" || t.text == "private" {
		d.IsPublic = t.text == "public"
		explicitVis = true
		t = p.next()
		if t.kind != tokKeyword || (t.text != "input" && t.text != "output") {
			return nil, fmt.Errorf("line %d: expected 'input' or 'output', found %s", t.line, t)
		}
	}
	d.IsInput = t.text == "input"
	if !explicitVis {
		// Defaults follow circom: inputs private, outputs public.
		d.IsPublic = !d.IsInput
	}
	name, err := p.expect(tokIdent, "signal name")
	if err != nil {
		return nil, err
	}
	d.Name = name.text
	if p.peek().kind == tokLBrack {
		p.next()
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		d.Size = size
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseVar() (Stmt, error) {
	t := p.next() // var
	name, err := p.expect(tokIdent, "variable name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &VarStmt{Name: name.text, Init: init, Line: t.line}, nil
}

func (p *parser) parseAssign() (Stmt, error) {
	name := p.next()
	var index Expr
	if p.peek().kind == tokLBrack {
		p.next()
		var err error
		index, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
	}
	op := p.next()
	if op.kind != tokAssign && op.kind != tokBind {
		return nil, fmt.Errorf("line %d: expected '=' or '<==', found %s", op.line, op)
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name.text, Index: index, Bind: op.kind == tokBind, Expr: expr, Line: name.line}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	name, err := p.expect(tokIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDotDot, "'..'"); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: name.text, Lo: lo, Hi: hi, Body: body, Line: t.line}, nil
}

func (p *parser) parseAssert() (Stmt, error) {
	t := p.next() // assert
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq, "'=='"); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &AssertStmt{A: a, B: b, Line: t.line}, nil
}

// parseExpr handles + and − at the lowest precedence.
func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := byte('+')
		if t.kind == tokMinus {
			op = '-'
		}
		lhs = &BinExpr{Op: op, A: lhs, B: rhs, Line: t.line}
	}
}

// parseTerm handles *.
func (p *parser) parseTerm() (Expr, error) {
	lhs, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokStar {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: '*', A: lhs, B: rhs, Line: t.line}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, ok := new(big.Int).SetString(t.text, 0)
		if !ok {
			return nil, fmt.Errorf("line %d: invalid number %q", t.line, t.text)
		}
		return &NumExpr{Value: v, Line: t.line}, nil
	case tokIdent:
		if p.peek().kind == tokLBrack {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	case tokMinus:
		a, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &NegExpr{A: a, Line: t.line}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("line %d: unexpected %s in expression", t.line, t)
}
