package circuit

import (
	"fmt"
	"unicode"
)

// The circuit language is a small circom-like DSL:
//
//	circuit Exponentiate {
//	    private input x;
//	    public output y;
//	    var w = x;
//	    for i in 1..8 {
//	        w = w * x;
//	    }
//	    y <== w;
//	}
//
// Tokens below; // comments run to end of line.

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokSemi    // ;
	tokAssign  // =
	tokBind    // <==
	tokEq      // ==
	tokPlus    // +
	tokMinus   // −
	tokStar    // *
	tokDotDot  // ..
	tokKeyword // circuit, public, private, input, output, var, for, in, assert
)

var keywords = map[string]bool{
	"circuit": true, "public": true, "private": true,
	"input": true, "output": true, "var": true,
	"for": true, "in": true, "assert": true,
}

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer converts source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// Next returns the next token, or an error for unrecognized input.
func (l *lexer) Next() (token, error) {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == '\n':
			l.line++
			l.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	ch := l.src[l.pos]
	start := l.pos
	mk := func(kind tokenKind, n int) (token, error) {
		l.pos += n
		return token{kind: kind, text: l.src[start:l.pos], line: l.line}, nil
	}
	switch {
	case ch == '{':
		return mk(tokLBrace, 1)
	case ch == '}':
		return mk(tokRBrace, 1)
	case ch == '(':
		return mk(tokLParen, 1)
	case ch == ')':
		return mk(tokRParen, 1)
	case ch == '[':
		return mk(tokLBrack, 1)
	case ch == ']':
		return mk(tokRBrack, 1)
	case ch == ';':
		return mk(tokSemi, 1)
	case ch == '+':
		return mk(tokPlus, 1)
	case ch == '-':
		return mk(tokMinus, 1)
	case ch == '*':
		return mk(tokStar, 1)
	case ch == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.':
		return mk(tokDotDot, 2)
	case ch == '<' && l.pos+2 < len(l.src) && l.src[l.pos+1] == '=' && l.src[l.pos+2] == '=':
		return mk(tokBind, 3)
	case ch == '=' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
		return mk(tokEq, 2)
	case ch == '=':
		return mk(tokAssign, 1)
	case unicode.IsDigit(rune(ch)):
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) ||
			l.src[l.pos] == 'x' || isHexDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsLetter(rune(ch)) || ch == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) ||
			unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, ch)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// lexAll tokenizes the whole source (convenience for the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
