package circuit

import (
	"zkperf/internal/ff"
	"zkperf/internal/r1cs"
	"zkperf/internal/trace"
	"zkperf/internal/witness"
)

// CompileSourceTraced is CompileSource with instrumentation. The compile
// stage's behaviour — heavy dynamic allocation (AST nodes, linear
// combinations), bulk copies, and pointer-heavy tree walks — is what makes
// it data-flow intensive with prominent malloc/memcpy time in the paper's
// code analysis.
//
// Parsing and compilation run inside timed scopes; the allocation, copy
// and access events are derived from the real artifact sizes (source
// bytes, AST statements, constraints, sparse terms) after the run.
func CompileSourceTraced(fr *ff.Field, src string, rec *trace.Recorder) (*r1cs.System, *witness.Program, error) {
	if rec == nil {
		return CompileSource(fr, src)
	}
	var file *File
	var err error
	rec.PhaseRun("malloc/parse", 1, func() {
		file, err = Parse(src)
	})
	if err != nil {
		return nil, nil, err
	}

	var sys *r1cs.System
	var prog *witness.Program
	// Constraint generation from an unrolled loop body is independent per
	// iteration in principle, but the shared wire allocator serializes
	// most of it; circom's compiler is effectively single-threaded with
	// small parallel islands.
	rec.PhaseRun("bigint/constraint-gen", 2, func() {
		sys, prog, err = CompileAST(fr, file)
	})
	if err != nil {
		return nil, nil, err
	}

	// Lexing: one sequential pass over the source bytes.
	srcBytes := int64(len(src))
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "compile.source",
		RegionBytes: srcBytes, ElemSize: 64, Touches: srcBytes/64 + 1})
	rec.Branch(srcBytes / 4) // per-character class tests

	// AST construction and walking: one allocation per statement executed
	// (loop bodies are revisited per unrolled iteration) and dependent
	// pointer loads per visit.
	stmts := countStmts(file.Body)
	st := sys.Stats()
	execNodes := int64(st.Constraints)*3 + int64(stmts)
	rec.AllocN(execNodes, 96)
	// The compiler walks the expression graph once per pass (scoping,
	// constant folding, unrolling, lowering, normalization, emission —
	// six dependent-pointer traversals).
	const compilerPasses = 6
	// circom spends on the order of 10⁴ machine instructions per
	// constraint (template instantiation, symbol management, field
	// normalization in a general-purpose bignum representation); the Go
	// compiler here is far leaner, so the difference is added in circom's
	// measured data-flow-heavy proportions.
	perC := int64(st.Constraints)
	rec.InstrBulk(perC*8000, perC*5800, perC*11200)
	// Each node visit dereferences its children, symbol entries and
	// coefficient storage — about nine dependent loads per visit.
	const nodeTouches = 9
	rec.Access(trace.Access{Kind: trace.PointerChase, Region: "compile.ast",
		RegionBytes: execNodes * 96, ElemSize: 96, Touches: execNodes * compilerPasses * nodeTouches})
	rec.Dispatch(execNodes * compilerPasses) // visitor dispatch per node per pass

	// Constraint emission: append-heavy sequential writes of sparse terms,
	// plus the copies the slice growth implies (amortized ~2× the data).
	termBytes := int64(st.NonZeroTerms) * 40
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "r1cs.terms",
		RegionBytes: termBytes, ElemSize: 40, Touches: int64(st.NonZeroTerms), Write: true})
	rec.Copy("compile.growth", termBytes)
	rec.Branch(int64(st.NonZeroTerms))

	return sys, prog, nil
}

// countStmts counts AST statements recursively (loop bodies once).
func countStmts(body []Stmt) int {
	n := 0
	for _, s := range body {
		n++
		if f, ok := s.(*ForStmt); ok {
			n += countStmts(f.Body)
		}
	}
	return n
}
